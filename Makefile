# Developer entry points. CI runs these same targets, so a green `make lint
# test` locally is a green pipeline — no CI-only tool versions to chase.

# External analyzers are version-pinned here and run via `go run pkg@version`,
# so local runs and CI agree bit-for-bit on what they check. Bump the pins in
# this file only.
STATICCHECK := honnef.co/go/tools/cmd/staticcheck@2025.1.1
GOVULNCHECK := golang.org/x/vuln/cmd/govulncheck@v1.1.4

.PHONY: build test lint lint-extra fmt

build:
	go build ./...

test:
	go test ./...

# lint is the offline gate: formatting, go vet, and the repository's own
# dispersalvet suite (see docs/static-analysis.md). It needs nothing beyond
# the Go toolchain and must stay runnable without network access.
lint:
	test -z "$$(gofmt -l .)" || { gofmt -l .; exit 1; }
	go vet ./...
	go run ./cmd/dispersalvet ./...

# lint-extra adds the pinned external analyzers. `go run pkg@version`
# downloads on first use, so this target needs network access (CI always
# runs it; locally it is best-effort).
lint-extra:
	go run $(STATICCHECK) ./...
	go run $(GOVULNCHECK) ./...

fmt:
	gofmt -w .
