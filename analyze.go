package dispersal

import (
	"context"
	"sync/atomic"

	"dispersal/internal/ess"
	"dispersal/internal/ifd"
	"dispersal/internal/memo"
	"dispersal/internal/optimize"
)

// Analysis is a memoizing analysis session over one Game. Each derived
// quantity — the IFD, sigma*, the coverage optimum, the welfare optimum and
// the SPoA — is computed lazily on first use and cached for the session's
// lifetime, so audits and ratio queries stop paying the solver cost
// repeatedly. All methods are safe for concurrent use: under concurrent
// access each solver runs exactly once (singleflight semantics; latecomers
// block until the first computation lands and then read the cache).
//
// Successful results are cached forever; failed computations are not, so a
// MaxWelfareContext call aborted by a cancelled context does not poison the
// session and a later call recomputes.
//
// Returned strategies are defensive copies — callers may mutate them freely
// without corrupting the cache.
type Analysis struct {
	g *Game

	ifd     memo.Cell[ifdResult]
	sigma   memo.Cell[sigmaResult]
	opt     memo.Cell[optResult]
	welfare memo.Cell[optResult]
	spoa    memo.Cell[SPoAInstance]

	// solves counts underlying solver invocations across all quantities;
	// the memoization tests assert it stays at one per quantity under
	// concurrent access.
	solves atomic.Int64
}

type ifdResult struct {
	p  Strategy
	nu float64
}

type sigmaResult struct {
	p     Strategy
	w     int
	alpha float64
}

type optResult struct {
	p   Strategy
	val float64
}

// Analyze opens a memoizing analysis session on the game. Sessions are
// cheap: no solver runs until a quantity is first requested.
func (g *Game) Analyze() *Analysis {
	return &Analysis{g: g}
}

// Game returns the session's underlying game.
func (a *Analysis) Game() *Game { return a.g }

// Solves reports how many underlying solver invocations the session has
// performed so far — at most one per distinct quantity, however many calls
// and goroutines queried it.
func (a *Analysis) Solves() int64 { return a.solves.Load() }

// cachedIFD is the single fill path of the IFD cell, shared by IFD,
// IFDContext and ESSAuditContext. Like the SPoA cell, the filling caller's
// ctx governs the solve; a cancellation is not cached, so a later call
// recomputes.
func (a *Analysis) cachedIFD(ctx context.Context) (ifdResult, error) {
	return a.ifd.Get(func() (ifdResult, error) {
		a.solves.Add(1)
		p, nu, err := a.g.IFDContext(ctx)
		return ifdResult{p: p, nu: nu}, err
	})
}

// cachedSPoA is the single fill path of the SPoA cell, shared by SPoA,
// SPoAContext and Ratio. The computation goes through the game's warm-state
// threading (Game.SPoAContext), so a session whose IFD cell already filled
// hands the SPoA's internal equilibrium re-solve a same-landscape seed.
func (a *Analysis) cachedSPoA(ctx context.Context) (SPoAInstance, error) {
	return a.spoa.Get(func() (SPoAInstance, error) {
		a.solves.Add(1)
		return a.g.SPoAContext(ctx)
	})
}

// IFD returns the game's Ideal Free Distribution and the common equilibrium
// payoff nu, solving at most once per session.
func (a *Analysis) IFD() (Strategy, float64, error) {
	return a.IFDContext(context.Background())
}

// IFDContext is IFD under a context; a solve aborted by cancellation is not
// cached.
func (a *Analysis) IFDContext(ctx context.Context) (Strategy, float64, error) {
	r, err := a.cachedIFD(ctx)
	if err != nil {
		return nil, 0, err
	}
	return r.p.Clone(), r.nu, nil
}

// SigmaStar returns the closed-form exclusive-policy IFD on the game's
// values with its support size W and normalization alpha, solving at most
// once per session.
func (a *Analysis) SigmaStar() (Strategy, int, float64, error) {
	r, err := a.sigma.Get(func() (sigmaResult, error) {
		a.solves.Add(1)
		p, res, err := ifd.Exclusive(a.g.f, a.g.k)
		return sigmaResult{p: p, w: res.W, alpha: res.Alpha}, err
	})
	if err != nil {
		return nil, 0, 0, err
	}
	return r.p.Clone(), r.w, r.alpha, nil
}

// OptimalCoverage returns the coverage-maximizing symmetric strategy and
// its coverage, solving at most once per session.
func (a *Analysis) OptimalCoverage() (Strategy, float64, error) {
	r, err := a.opt.Get(func() (optResult, error) {
		a.solves.Add(1)
		p, cover, err := a.g.OptimalCoverage()
		return optResult{p: p, val: cover}, err
	})
	if err != nil {
		return nil, 0, err
	}
	return r.p.Clone(), r.val, nil
}

// MaxWelfareContext returns the welfare-maximizing symmetric strategy and
// its welfare value, solving at most once per session. The restart count and
// seed come from the game's options. A cancellation error is not cached: the
// next call restarts the optimization.
func (a *Analysis) MaxWelfareContext(ctx context.Context) (Strategy, float64, error) {
	r, err := a.welfare.Get(func() (optResult, error) {
		a.solves.Add(1)
		p, val, err := optimize.MaxWelfareContext(ctx, a.g.f, a.g.k, a.g.c, a.g.opt.restarts, a.g.opt.seed)
		return optResult{p: p, val: val}, err
	})
	if err != nil {
		return nil, 0, err
	}
	return r.p.Clone(), r.val, nil
}

// SPoA returns the game's Symmetric Price of Anarchy instance, solving at
// most once per session. The instance's internal equilibrium and optimum
// solves run inside that single computation, but they warm-start from the
// game's accumulated solver-core state — a session that solved its IFD
// first makes the SPoA's equilibrium re-solve nearly free.
func (a *Analysis) SPoA() (SPoAInstance, error) {
	return a.SPoAContext(context.Background())
}

// SPoAContext is SPoA under a context.
func (a *Analysis) SPoAContext(ctx context.Context) (SPoAInstance, error) {
	inst, err := a.cachedSPoA(ctx)
	if err != nil {
		return SPoAInstance{}, err
	}
	return cloneInstance(inst), nil
}

// Ratio returns just the SPoA ratio, memoized like SPoA.
func (a *Analysis) Ratio() (float64, error) {
	inst, err := a.cachedSPoA(context.Background())
	return inst.Ratio, err
}

// ESSAuditContext audits the memoized IFD against the provided mutants
// (nil selects the option-configured automatic panel). The resident solve is
// shared with the session's IFD cell; the audit itself depends on the
// mutant panel and is recomputed per call.
func (a *Analysis) ESSAuditContext(ctx context.Context, mutants []Strategy) (ESSReport, error) {
	r, err := a.cachedIFD(ctx)
	if err != nil {
		return ESSReport{}, err
	}
	if mutants == nil {
		mutants = ess.MutantFamily(newRand(a.g.opt.seed), r.p, a.g.f, a.g.opt.mutants)
	}
	return ess.AuditContext(ctx, a.g.f, a.g.c, a.g.k, r.p, mutants, a.g.opt.tol)
}

// ESSAudit is ESSAuditContext with a background context.
func (a *Analysis) ESSAudit(mutants []Strategy) (ESSReport, error) {
	return a.ESSAuditContext(context.Background(), mutants)
}

// Welfare returns the symmetric welfare of p on the session's game
// (uncached: it is a closed-form evaluation, not a solve).
func (a *Analysis) Welfare(p Strategy) (float64, error) { return a.g.Welfare(p) }

// Coverage returns Cover(p) on the session's game (uncached, closed form).
func (a *Analysis) Coverage(p Strategy) (float64, error) { return a.g.Coverage(p) }

func cloneInstance(inst SPoAInstance) SPoAInstance {
	out := inst
	out.F = inst.F.Clone()
	out.Equilibrium = inst.Equilibrium.Clone()
	out.Optimum = inst.Optimum.Clone()
	return out
}
