package dispersal

import (
	"context"
	"math"
	"sync"
	"testing"

	"dispersal/internal/site"
)

func TestAnalysisMatchesGameMethods(t *testing.T) {
	g := MustGame(site.Geometric(12, 1, 0.8), 4, Sharing())
	a := g.Analyze()

	wantIFD, wantNu, err := g.IFD()
	if err != nil {
		t.Fatal(err)
	}
	gotIFD, gotNu, err := a.IFD()
	if err != nil {
		t.Fatal(err)
	}
	if gotIFD.LInf(wantIFD) != 0 || gotNu != wantNu {
		t.Fatalf("Analysis.IFD diverges from Game.IFD: %v vs %v", gotIFD, wantIFD)
	}

	wantOpt, wantCover, err := g.OptimalCoverage()
	if err != nil {
		t.Fatal(err)
	}
	gotOpt, gotCover, err := a.OptimalCoverage()
	if err != nil {
		t.Fatal(err)
	}
	if gotOpt.LInf(wantOpt) != 0 || gotCover != wantCover {
		t.Fatal("Analysis.OptimalCoverage diverges from Game.OptimalCoverage")
	}

	wantInst, err := g.SPoA()
	if err != nil {
		t.Fatal(err)
	}
	gotInst, err := a.SPoA()
	if err != nil {
		t.Fatal(err)
	}
	if gotInst.Ratio != wantInst.Ratio {
		t.Fatalf("Analysis.SPoA ratio %v != Game.SPoA ratio %v", gotInst.Ratio, wantInst.Ratio)
	}

	wantSigma, wantW, wantAlpha, err := g.SigmaStar()
	if err != nil {
		t.Fatal(err)
	}
	gotSigma, gotW, gotAlpha, err := a.SigmaStar()
	if err != nil {
		t.Fatal(err)
	}
	if gotSigma.LInf(wantSigma) != 0 || gotW != wantW || gotAlpha != wantAlpha {
		t.Fatal("Analysis.SigmaStar diverges from Game.SigmaStar")
	}
}

// TestAnalysisMemoizesConcurrently is the memoization contract: under heavy
// concurrent access every solver runs exactly once. Run with -race.
func TestAnalysisMemoizesConcurrently(t *testing.T) {
	g := MustGame(site.Geometric(20, 1, 0.85), 5, Sharing())
	a := g.Analyze()

	const goroutines = 32
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				if _, _, err := a.IFD(); err != nil {
					t.Error(err)
				}
				if _, _, err := a.OptimalCoverage(); err != nil {
					t.Error(err)
				}
				if _, err := a.SPoA(); err != nil {
					t.Error(err)
				}
				if _, _, _, err := a.SigmaStar(); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()

	// Four distinct quantities were queried 32*8 times each; each solver
	// must have run exactly once.
	if got := a.Solves(); got != 4 {
		t.Fatalf("Analysis performed %d solves, want exactly 4", got)
	}
}

func TestAnalysisReturnsDefensiveCopies(t *testing.T) {
	g := MustGame(Values{1, 0.5}, 2, Exclusive())
	a := g.Analyze()
	p1, _, err := a.IFD()
	if err != nil {
		t.Fatal(err)
	}
	p1[0] = math.NaN() // corrupt the caller's copy
	p2, _, err := a.IFD()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(p2[0]) {
		t.Fatal("mutating a returned strategy corrupted the Analysis cache")
	}
}

func TestAnalysisESSAuditReusesResident(t *testing.T) {
	g := MustGame(site.Geometric(8, 1, 0.7), 3, Exclusive(), WithMutants(12))
	a := g.Analyze()
	rep1, err := a.ESSAudit(nil)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := a.ESSAudit(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Failures != 0 || rep2.Failures != 0 {
		t.Fatalf("sigma* invaded under the exclusive policy: %+v", rep1)
	}
	if rep1.Mutants != rep2.Mutants {
		t.Fatalf("option-seeded panels differ between calls: %d vs %d", rep1.Mutants, rep2.Mutants)
	}
	// Both audits and any IFD queries share one resident solve.
	if got := a.Solves(); got != 1 {
		t.Fatalf("ESS audits performed %d solves, want 1", got)
	}
}

// TestAnalysisDoesNotCacheCancellation: a cancelled MaxWelfareContext must
// not poison the session.
func TestAnalysisDoesNotCacheCancellation(t *testing.T) {
	g := MustGame(site.Geometric(10, 1, 0.8), 4, Sharing())
	a := g.Analyze()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := a.MaxWelfareContext(ctx); err == nil {
		t.Fatal("cancelled MaxWelfareContext succeeded")
	}
	p, val, err := a.MaxWelfareContext(context.Background())
	if err != nil {
		t.Fatalf("retry after cancellation failed: %v", err)
	}
	if len(p) != 10 || val <= 0 {
		t.Fatalf("degenerate welfare optimum after retry: p=%v val=%v", p, val)
	}
}
