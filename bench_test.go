// Benchmarks regenerating every figure and experiment of the paper (one
// per entry in docs/ARCHITECTURE.md's experiment index), plus scaling benchmarks of
// the core solvers. Run with:
//
//	go test -bench=. -benchmem
package dispersal

import (
	"context"
	"fmt"
	"testing"

	"dispersal/internal/experiments"
	"dispersal/internal/game"
	"dispersal/internal/ifd"
	"dispersal/internal/optimize"
	"dispersal/internal/policy"
	"dispersal/internal/search"
	"dispersal/internal/site"
	"dispersal/internal/spoa"
)

// benchReport runs one experiment entry point under the benchmark loop and
// fails the bench if the experiment stops reproducing the paper.
func benchReport(b *testing.B, run func() (experiments.Report, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := run()
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Pass {
			b.Fatalf("%s no longer reproduces the paper", rep.ID)
		}
	}
}

// BenchmarkFigure1Left regenerates E1 (Figure 1, f2 = 0.3).
func BenchmarkFigure1Left(b *testing.B) { benchReport(b, experiments.E1Figure1Left) }

// BenchmarkFigure1Right regenerates E2 (Figure 1, f2 = 0.5).
func BenchmarkFigure1Right(b *testing.B) { benchReport(b, experiments.E2Figure1Right) }

// BenchmarkObservation1 regenerates E3.
func BenchmarkObservation1(b *testing.B) { benchReport(b, experiments.E3Observation1) }

// BenchmarkTheorem3ESS regenerates E4.
func BenchmarkTheorem3ESS(b *testing.B) { benchReport(b, experiments.E4Theorem3ESS) }

// BenchmarkTheorem4Optimality regenerates E5.
func BenchmarkTheorem4Optimality(b *testing.B) { benchReport(b, experiments.E5Theorem4Optimality) }

// BenchmarkCorollary5 regenerates E6.
func BenchmarkCorollary5(b *testing.B) { benchReport(b, experiments.E6Corollary5) }

// BenchmarkTheorem6Criticality regenerates E7.
func BenchmarkTheorem6Criticality(b *testing.B) { benchReport(b, experiments.E7Theorem6Criticality) }

// BenchmarkSharingSPoABound regenerates E8.
func BenchmarkSharingSPoABound(b *testing.B) { benchReport(b, experiments.E8SharingSPoABound) }

// BenchmarkConstantPolicyAnarchy regenerates E9.
func BenchmarkConstantPolicyAnarchy(b *testing.B) {
	benchReport(b, experiments.E9ConstantPolicyAnarchy)
}

// BenchmarkMonteCarloEngine regenerates E10.
func BenchmarkMonteCarloEngine(b *testing.B) { benchReport(b, experiments.E10MonteCarloValidation) }

// BenchmarkReplicatorConvergence regenerates E11.
func BenchmarkReplicatorConvergence(b *testing.B) {
	benchReport(b, experiments.E11ReplicatorConvergence)
}

// BenchmarkBayesianSearch regenerates E12.
func BenchmarkBayesianSearch(b *testing.B) { benchReport(b, experiments.E12BayesianSearch) }

// BenchmarkGrantMechanism regenerates E13.
func BenchmarkGrantMechanism(b *testing.B) { benchReport(b, experiments.E13GrantMechanism) }

// BenchmarkTravelCosts regenerates E14 (Section 5.1 extension ablation).
func BenchmarkTravelCosts(b *testing.B) { benchReport(b, experiments.E14TravelCosts) }

// BenchmarkCapacityConstraint regenerates E15 (Section 5.1 extension
// ablation).
func BenchmarkCapacityConstraint(b *testing.B) { benchReport(b, experiments.E15CapacityConstraint) }

// BenchmarkSpeciesCompetition regenerates E16 (Section 5.2 extension).
func BenchmarkSpeciesCompetition(b *testing.B) { benchReport(b, experiments.E16SpeciesCompetition) }

// BenchmarkPureEquilibria regenerates E17 (Section 1.2 discussion).
func BenchmarkPureEquilibria(b *testing.B) { benchReport(b, experiments.E17PureEquilibria) }

// BenchmarkAsymptotics regenerates E18 (large-k structure of sigma*).
func BenchmarkAsymptotics(b *testing.B) { benchReport(b, experiments.E18Asymptotics) }

// BenchmarkRepeatedDepletion regenerates E19 (depletion-regrowth harvest).
func BenchmarkRepeatedDepletion(b *testing.B) { benchReport(b, experiments.E19RepeatedDepletion) }

// BenchmarkNoisyValues regenerates E20 (robustness to value noise).
func BenchmarkNoisyValues(b *testing.B) { benchReport(b, experiments.E20NoisyValues) }

// BenchmarkCompetitionSweep regenerates E21 (Figure 1 generalized to k>2).
func BenchmarkCompetitionSweep(b *testing.B) {
	benchReport(b, experiments.E21CompetitionSweepLargerGames)
}

// BenchmarkMechanismDiscovery regenerates E22 (policy search finds Cexc).
func BenchmarkMechanismDiscovery(b *testing.B) { benchReport(b, experiments.E22MechanismDiscovery) }

// BenchmarkInverseIFD regenerates E23 (occupancy -> values inversion).
func BenchmarkInverseIFD(b *testing.B) { benchReport(b, experiments.E23InverseIFD) }

// BenchmarkDriftingLandscape regenerates E24 (warm-start trajectory vs
// frame-wise cold solves under drifting f).
func BenchmarkDriftingLandscape(b *testing.B) { benchReport(b, experiments.E24DriftingLandscape) }

// --- Core-solver scaling benchmarks -------------------------------------

// BenchmarkSigmaStarClosedForm measures the paper's pseudocode across
// problem sizes.
func BenchmarkSigmaStarClosedForm(b *testing.B) {
	for _, m := range []int{10, 100, 1000, 10000} {
		f := site.Zipf(m, 1, 1)
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := ifd.Exclusive(f, 16); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGeneralIFDSolver measures the bisection solver on the sharing
// policy across sizes.
func BenchmarkGeneralIFDSolver(b *testing.B) {
	for _, m := range []int{10, 100, 1000} {
		f := site.Zipf(m, 1, 1)
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := ifd.Solve(f, 8, policy.Sharing{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMaxCoverageWaterFilling measures the KKT optimizer.
func BenchmarkMaxCoverageWaterFilling(b *testing.B) {
	for _, m := range []int{10, 100, 1000, 10000} {
		f := site.Geometric(m, 1, 0.999)
		b.Run(fmt.Sprintf("M=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := optimize.MaxCoverage(f, 16); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMonteCarloThroughput measures simulated rounds/op across worker
// counts (the engine's parallel-scaling story).
func BenchmarkMonteCarloThroughput(b *testing.B) {
	f := site.Zipf(100, 1, 1)
	p, _, err := ifd.Exclusive(f, 16)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := game.Config{F: f, K: 16, C: policy.Exclusive{},
				Rounds: 20000, Workers: workers, Seed: 1}
			for i := 0; i < b.N; i++ {
				if _, err := game.Simulate(cfg, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSPoAWorstCaseSearch measures the adversarial value-function
// search.
func BenchmarkSPoAWorstCaseSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := spoa.WorstCase(policy.Sharing{}, 4, []int{2, 8, 16}, 50, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchSubstrate measures one full search experiment.
func BenchmarkSearchSubstrate(b *testing.B) {
	prior := site.Zipf(50, 1, 1)
	for i := 0; i < b.N; i++ {
		if _, err := search.Run(search.Config{
			Prior: prior, K: 4, Algorithm: search.StrategyAStar, Trials: 500, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Analysis session vs repeated Game calls ----------------------------

// analysisWorkload is a typical audit session: equilibrium, optimum, SPoA
// ratio and an ESS audit, each consulted several times (as report
// generators and dashboards do).
const analysisQueriesPerQuantity = 8

// BenchmarkRepeatedGameCalls pays the solver cost on every query — the
// pre-Analysis API usage pattern.
func BenchmarkRepeatedGameCalls(b *testing.B) {
	f := site.Geometric(40, 1, 0.9)
	g := MustGame(f, 8, Sharing(), WithMutants(16))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for q := 0; q < analysisQueriesPerQuantity; q++ {
			if _, _, err := g.IFD(); err != nil {
				b.Fatal(err)
			}
			if _, _, err := g.OptimalCoverage(); err != nil {
				b.Fatal(err)
			}
			if _, err := g.SPoA(); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := g.ESSAuditContext(context.Background(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalysisSession runs the identical workload through a memoizing
// Analysis: each solver runs once per iteration regardless of query count.
func BenchmarkAnalysisSession(b *testing.B) {
	f := site.Geometric(40, 1, 0.9)
	g := MustGame(f, 8, Sharing(), WithMutants(16))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := g.Analyze()
		for q := 0; q < analysisQueriesPerQuantity; q++ {
			if _, _, err := a.IFD(); err != nil {
				b.Fatal(err)
			}
			if _, _, err := a.OptimalCoverage(); err != nil {
				b.Fatal(err)
			}
			if _, err := a.SPoA(); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := a.ESSAuditContext(context.Background(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepBatch measures the batch layer end to end: a grid of games
// analyzed across the worker pool.
func BenchmarkSweepBatch(b *testing.B) {
	specs := make([]Spec, 32)
	for i := range specs {
		specs[i] = Spec{Values: site.Geometric(10+i%7, 1, 0.8), K: 2 + i%5, Policy: Sharing()}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Sweep(context.Background(), specs,
			func(_ context.Context, a *Analysis) (float64, error) {
				inst, err := a.SPoA()
				return inst.Ratio, err
			})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// benchDriftGrid is the locality-chain workload: one shape, many drifted
// landscapes, shuffled so input order is not locality order.
func benchDriftGrid(n int) []Spec {
	base := site.Geometric(24, 1, 0.88)
	specs := make([]Spec, n)
	for i := range specs {
		t := (i * 7) % n
		specs[i] = Spec{Values: Values(site.Drifted(base, t, 0.04)), K: 24, Policy: Sharing()}
	}
	return specs
}

// benchSweepChain runs the drift grid sequentially, chained or not, so the
// pair of benchmarks isolates what the greedy locality chain buys.
func benchSweepChain(b *testing.B, chained bool) {
	specs := benchDriftGrid(48)
	opts := []Option{WithWorkers(1), WithWarmChaining(chained)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Sweep(context.Background(), specs,
			func(_ context.Context, a *Analysis) (float64, error) {
				_, nu, err := a.IFD()
				return nu, err
			}, opts...)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkSweepDriftGridChained measures the sequential drift grid with
// nearest-neighbour warm chaining (each item seeding the next)...
func BenchmarkSweepDriftGridChained(b *testing.B) { benchSweepChain(b, true) }

// BenchmarkSweepDriftGridCold ...against the same grid solved item by item
// from scratch.
func BenchmarkSweepDriftGridCold(b *testing.B) { benchSweepChain(b, false) }
