package main

// Subcommands for the model extensions: travel costs, consumption capacity,
// two-species competition, pure-equilibrium enumeration, Bayesian search,
// and large-k asymptotics.

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dispersal/internal/asymptotic"
	"dispersal/internal/capacity"
	"dispersal/internal/cliutil"
	"dispersal/internal/coverage"
	"dispersal/internal/pureeq"
	"dispersal/internal/repeated"
	"dispersal/internal/search"
	"dispersal/internal/species"
	"dispersal/internal/table"
	"dispersal/internal/travelcost"
)

func cmdTravelCost(args []string) error {
	fs := flag.NewFlagSet("travelcost", flag.ContinueOnError)
	g := addGameFlags(fs, true)
	costs := fs.String("t", "", "comma-separated travel costs t(x) >= 0 (default all zero)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, k, c, err := g.parse()
	if err != nil {
		return err
	}
	t := travelcost.Uniform(len(f), 0)
	if *costs != "" {
		t, err = parseCosts(*costs, len(f))
		if err != nil {
			return err
		}
	}
	p, nu, err := travelcost.Solve(f, t, k, c)
	if err != nil {
		return err
	}
	fmt.Printf("travel-cost IFD:\n  p  = %s\n  nu = %.9g\n", cliutil.FormatStrategy(p), nu)
	fmt.Printf("  coverage (values only) = %.9g\n", coverage.Cover(f, p, k))
	eq, opt, err := travelcost.CoverageDistortion(f, t, k)
	if err != nil {
		return err
	}
	fmt.Printf("  vs cost-free optimum   = %.9g (fraction %.6f)\n", opt, eq/opt)
	return nil
}

func cmdCapacity(args []string) error {
	fs := flag.NewFlagSet("capacity", flag.ContinueOnError)
	g := addGameFlags(fs, false)
	cap := fs.Float64("cap", 0.5, "per-individual consumption capacity")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, k, _, err := g.parse()
	if err != nil {
		return err
	}
	sCons, optCons, ratio, err := capacity.SigmaStarGap(f, k, *cap)
	if err != nil {
		return err
	}
	p, _, err := capacity.MaxConsumption(f, k, *cap)
	if err != nil {
		return err
	}
	tb := table.New("quantity", "value")
	tb.AddRowf("capacity", *cap)
	tb.AddRowf("Consume(sigma*)", sCons)
	tb.AddRowf("optimal consumption", optCons)
	tb.AddRowf("sigma* / optimum", ratio)
	tb.AddRowf("consumption-optimal p", cliutil.FormatStrategy(p))
	return tb.Render(os.Stdout)
}

func cmdSpecies(args []string) error {
	fs := flag.NewFlagSet("species", flag.ContinueOnError)
	values := fs.String("f", "1,0.9,0.8,0.7", "shared patch values")
	ka := fs.Int("ka", 4, "species A group size")
	kb := fs.Int("kb", 4, "species B group size")
	pa := fs.String("policyA", "exclusive", "species A congestion policy")
	pb := fs.String("policyB", "sharing", "species B congestion policy")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := cliutil.ParseValues(*values)
	if err != nil {
		return err
	}
	ca, err := cliutil.ParsePolicy(*pa)
	if err != nil {
		return err
	}
	cb, err := cliutil.ParsePolicy(*pb)
	if err != nil {
		return err
	}
	out, err := species.Intakes(f,
		species.Species{Name: "A", K: *ka, C: ca},
		species.Species{Name: "B", K: *kb, C: cb})
	if err != nil {
		return err
	}
	tb := table.New("feeding order", "A ("+ca.Name()+")", "B ("+cb.Name()+")")
	tb.AddRowf("A first", out.AFirst.A, out.AFirst.B)
	tb.AddRowf("B first", out.BFirst.A, out.BFirst.B)
	tb.AddRowf("alternating", out.Alternating.A, out.Alternating.B)
	return tb.Render(os.Stdout)
}

func cmdPure(args []string) error {
	fs := flag.NewFlagSet("pure", flag.ContinueOnError)
	g := addGameFlags(fs, true)
	limit := fs.Int("limit", 0, "profile-space cap M^k (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, k, c, err := g.parse()
	if err != nil {
		return err
	}
	sum, err := pureeq.Enumerate(f, k, c, *limit)
	if err != nil {
		return err
	}
	fmt.Printf("profiles examined: %d\n", sum.Profiles)
	fmt.Printf("pure Nash equilibria: %d (k! = %d)\n", sum.Equilibria, pureeq.Factorial(k))
	if sum.Equilibria > 0 {
		fmt.Printf("coverage range: [%.6g, %.6g]\n", sum.WorstCoverage, sum.BestCoverage)
		fmt.Printf("example equilibria (player -> site, 1-based):\n")
		for _, w := range sum.Witnesses {
			parts := make([]string, len(w))
			for i, x := range w {
				parts[i] = strconv.Itoa(x + 1)
			}
			fmt.Printf("  (%s)\n", strings.Join(parts, " "))
		}
	}
	return nil
}

func cmdSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ContinueOnError)
	values := fs.String("f", "", "box prior weights (default zipf over -m boxes)")
	m := fs.Int("m", 25, "number of boxes when -f is not given")
	k := fs.Int("k", 4, "number of searchers")
	trials := fs.Int("trials", 20000, "Monte-Carlo trials")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var prior []float64
	if *values != "" {
		f, err := cliutil.ParseValues(*values)
		if err != nil {
			return err
		}
		prior = f
	} else {
		prior = zipfPrior(*m)
	}
	tb := table.New("algorithm", "mean rounds", "95% CI", "found frac")
	for _, a := range []search.Algorithm{
		search.StrategyCoordinated, search.StrategyAStar, search.StrategyPrior,
		search.StrategyUniform, search.StrategyGreedy,
	} {
		res, err := search.Run(search.Config{
			Prior: prior, K: *k, Algorithm: a, Trials: *trials, Seed: *seed,
		})
		if err != nil {
			return err
		}
		tb.AddRowf(a.String(), res.Time.Mean, res.Time.CI95, res.FoundFrac)
	}
	return tb.Render(os.Stdout)
}

func cmdAsymptotic(args []string) error {
	fs := flag.NewFlagSet("asymptotic", flag.ContinueOnError)
	g := addGameFlags(fs, false)
	kMax := fs.Int("kmax", 256, "largest k in the sweep")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, _, _, err := g.parse()
	if err != nil {
		return err
	}
	tb := table.New("k", "support W", "approx W", "coverage", "miss", "nu")
	for k := 2; k <= *kMax; k *= 2 {
		wExact, err := asymptotic.SupportSize(f, k)
		if err != nil {
			return err
		}
		wApprox, err := asymptotic.ApproxSupportSize(f, k)
		if err != nil {
			return err
		}
		miss, pred, err := asymptotic.MissIdentity(f, k)
		if err != nil {
			return err
		}
		tb.AddRowf(k, wExact, wApprox, f.Sum()-miss, miss, pred/float64(max(wExact-1, 1)))
	}
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	if kFull, err := asymptotic.PlayersForFullSupport(f, 1<<16); err == nil {
		fmt.Printf("smallest k with full support: %d\n", kFull)
	}
	return nil
}

func cmdRepeated(args []string) error {
	fs := flag.NewFlagSet("repeated", flag.ContinueOnError)
	g := addGameFlags(fs, true)
	regrowth := fs.Float64("r", 0.2, "per-bout regrowth fraction in [0,1]")
	bouts := fs.Int("bouts", 800, "number of foraging bouts")
	adaptive := fs.Bool("adaptive", true, "re-equilibrate on current stocks each bout")
	stochastic := fs.Bool("stochastic", false, "use the Monte-Carlo simulator instead of the mean field")
	seed := fs.Uint64("seed", 1, "random seed (stochastic mode)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, k, c, err := g.parse()
	if err != nil {
		return err
	}
	cfg := repeated.Config{
		F: f, K: k, C: c, Regrowth: *regrowth, Bouts: *bouts,
		Adaptive: *adaptive, Seed: *seed,
	}
	var res repeated.Result
	if *stochastic {
		res, err = repeated.Simulate(cfg)
	} else {
		res, err = repeated.MeanField(cfg)
	}
	if err != nil {
		return err
	}
	tb := table.New("quantity", "value")
	tb.AddRowf("mode", map[bool]string{true: "stochastic", false: "mean-field"}[*stochastic])
	tb.AddRowf("harvest per bout", res.Harvest.Mean)
	tb.AddRowf("harvest stddev", res.Harvest.StdDev)
	tb.AddRowf("mean total stock", res.MeanStock)
	return tb.Render(os.Stdout)
}

func parseCosts(s string, m int) (travelcost.Costs, error) {
	parts := strings.Split(s, ",")
	if len(parts) != m {
		return nil, fmt.Errorf("expected %d costs, got %d", m, len(parts))
	}
	t := make(travelcost.Costs, m)
	for i, raw := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil {
			return nil, fmt.Errorf("cost %d (%q): %w", i+1, raw, err)
		}
		t[i] = v
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func zipfPrior(m int) []float64 {
	out := make([]float64, m)
	for i := range out {
		out[i] = 1 / float64(i+1)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
