// Command dispersal is the interactive CLI of the library: it computes
// IFDs, optimal-coverage strategies, prices of anarchy, ESS audits, and
// Monte-Carlo simulations for user-specified games.
//
// Usage:
//
//	dispersal <subcommand> [flags]
//
// Subcommands:
//
//	ifd       compute the Ideal Free Distribution (symmetric equilibrium)
//	optimal   compute the coverage-optimal symmetric strategy sigma*
//	spoa      compute the symmetric price of anarchy of a policy
//	ess       audit the equilibrium for evolutionary stability
//	simulate  run the parallel Monte-Carlo engine
//
// Common flags: -f comma-separated site values (non-increasing, positive),
// -k player count, -policy policy spec (see -h of each subcommand).
package main

import (
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"strconv"
	"strings"

	"dispersal/internal/cliutil"
	"dispersal/internal/coverage"
	"dispersal/internal/ess"
	"dispersal/internal/game"
	"dispersal/internal/ifd"
	"dispersal/internal/optimize"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/spoa"
	"dispersal/internal/strategy"
	"dispersal/internal/table"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dispersal:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "ifd":
		return cmdIFD(args[1:])
	case "optimal":
		return cmdOptimal(args[1:])
	case "spoa":
		return cmdSPoA(args[1:])
	case "ess":
		return cmdESS(args[1:])
	case "simulate":
		return cmdSimulate(args[1:])
	case "travelcost":
		return cmdTravelCost(args[1:])
	case "capacity":
		return cmdCapacity(args[1:])
	case "species":
		return cmdSpecies(args[1:])
	case "repeated":
		return cmdRepeated(args[1:])
	case "pure":
		return cmdPure(args[1:])
	case "search":
		return cmdSearch(args[1:])
	case "asymptotic":
		return cmdAsymptotic(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `dispersal — the Collet-Korman dispersal game toolbox

subcommands:
  ifd       -f 1,0.5 -k 2 -policy exclusive    symmetric equilibrium
  optimal   -f 1,0.5 -k 2                      coverage-optimal sigma*
  spoa      -f 1,0.5 -k 2 -policy sharing      symmetric price of anarchy
  ess       -f 1,0.5 -k 2 -mutants 50          ESS audit of the equilibrium
  simulate  -f 1,0.5 -k 2 -policy exclusive -rounds 100000   Monte-Carlo

extensions:
  travelcost -f 1,0.5 -k 2 -t 0.2,0       IFD with per-site visiting costs
  capacity   -f 1,0.5 -k 4 -cap 0.25      consumption-capacity analysis
  species    -f 1,0.9 -ka 4 -kb 4 -policyA exclusive -policyB sharing
  pure       -f 1,0.8,0.6 -k 3            enumerate pure Nash equilibria
  search     -m 25 -k 4                   Bayesian-search comparison
  repeated   -f 1,0.8 -k 2 -r 0.2         depletion-regrowth foraging
  asymptotic -f 1,0.9,0.8 -kmax 256       large-k structure of sigma*

policies: exclusive | sharing | constant | twopoint:<c2> | powerlaw:<beta>
          | cooperative:<gamma> | aggressive:<penalty>
`)
}

// gameFlags adds the common -f/-k/-policy flags to a FlagSet.
type gameFlags struct {
	values *string
	k      *int
	policy *string
}

func addGameFlags(fs *flag.FlagSet, withPolicy bool) gameFlags {
	g := gameFlags{
		values: fs.String("f", "1,0.5", "comma-separated site values, non-increasing"),
		k:      fs.Int("k", 2, "number of players"),
	}
	if withPolicy {
		g.policy = fs.String("policy", "exclusive", "congestion policy spec")
	}
	return g
}

func (g gameFlags) parse() (site.Values, int, policy.Congestion, error) {
	f, err := cliutil.ParseValues(*g.values)
	if err != nil {
		return nil, 0, nil, err
	}
	if *g.k < 1 {
		return nil, 0, nil, fmt.Errorf("k must be >= 1")
	}
	var c policy.Congestion = policy.Exclusive{}
	if g.policy != nil {
		c, err = cliutil.ParsePolicy(*g.policy)
		if err != nil {
			return nil, 0, nil, err
		}
	}
	return f, *g.k, c, nil
}

func cmdIFD(args []string) error {
	fs := flag.NewFlagSet("ifd", flag.ContinueOnError)
	g := addGameFlags(fs, true)
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, k, c, err := g.parse()
	if err != nil {
		return err
	}
	eq, nu, err := ifd.Solve(f, k, c)
	if err != nil {
		return err
	}
	fmt.Printf("game: M=%d sites, k=%d players, policy=%s\n", len(f), k, c.Name())
	fmt.Printf("IFD (unique symmetric Nash equilibrium):\n  p  = %s\n", cliutil.FormatStrategy(eq))
	fmt.Printf("  nu = %.9g (common equilibrium payoff)\n", nu)
	fmt.Printf("  coverage = %.9g\n", coverage.Cover(f, eq, k))
	if w, ok := eq.IsPrefixSupport(1e-9); ok {
		fmt.Printf("  support  = sites 1..%d\n", w)
	}
	return nil
}

func cmdOptimal(args []string) error {
	fs := flag.NewFlagSet("optimal", flag.ContinueOnError)
	g := addGameFlags(fs, false)
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, k, _, err := g.parse()
	if err != nil {
		return err
	}
	p, res, err := ifd.Exclusive(f, k)
	if err != nil {
		return err
	}
	fmt.Printf("sigma* (coverage-optimal symmetric strategy, Theorem 4):\n")
	fmt.Printf("  p = %s\n", cliutil.FormatStrategy(p))
	fmt.Printf("  W = %d sites in support, alpha = %.9g\n", res.W, res.Alpha)
	fmt.Printf("  coverage = %.9g\n", coverage.Cover(f, p, k))
	fmt.Printf("  Observation-1 bound (1-1/e)*best-k = %.9g\n", coverage.ObservationOneBound(f, k))
	// Cross-check through the independent water-filling optimizer.
	q, _, err := optimize.MaxCoverage(f, k)
	if err != nil {
		return err
	}
	fmt.Printf("  KKT optimizer agreement (L-inf)   = %.3g\n", p.LInf(q))
	return nil
}

func cmdSPoA(args []string) error {
	fs := flag.NewFlagSet("spoa", flag.ContinueOnError)
	g := addGameFlags(fs, true)
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, k, c, err := g.parse()
	if err != nil {
		return err
	}
	inst, err := spoa.Compute(f, k, c)
	if err != nil {
		return err
	}
	tb := table.New("quantity", "value")
	tb.AddRowf("policy", c.Name())
	tb.AddRowf("equilibrium coverage", inst.EqCoverage)
	tb.AddRowf("optimal coverage", inst.OptCoverage)
	tb.AddRowf("SPoA", inst.Ratio)
	return tb.Render(os.Stdout)
}

func cmdESS(args []string) error {
	fs := flag.NewFlagSet("ess", flag.ContinueOnError)
	g := addGameFlags(fs, true)
	mutants := fs.Int("mutants", 50, "number of random mutants to audit")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, k, c, err := g.parse()
	if err != nil {
		return err
	}
	resident, _, err := ifd.Solve(f, k, c)
	if err != nil {
		return err
	}
	rng := newRand(*seed)
	panel := ess.MutantFamily(rng, resident, f, *mutants)
	rep, err := ess.Audit(f, c, k, resident, panel, 1e-9)
	if err != nil {
		return err
	}
	fmt.Printf("resident (IFD) = %s\n", cliutil.FormatStrategy(resident))
	fmt.Printf("mutants tested = %d\n", rep.Mutants)
	fmt.Printf("invasions      = %d\n", rep.Failures)
	fmt.Printf("worst margin   = %.3e\n", rep.WorstMargin)
	if rep.Failures > 0 {
		fmt.Printf("first invader  = %s (%s)\n", cliutil.FormatStrategy(rep.FirstFailure), rep.FirstFailureReason)
	} else {
		fmt.Println("verdict        = evolutionarily stable against the panel")
	}
	return nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	g := addGameFlags(fs, true)
	rounds := fs.Int("rounds", 100000, "number of one-shot games")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	strat := fs.String("strategy", "", "strategy to simulate as comma-separated probabilities (default: the IFD)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, k, c, err := g.parse()
	if err != nil {
		return err
	}
	var p strategy.Strategy
	if *strat == "" {
		p, _, err = ifd.Solve(f, k, c)
	} else {
		p, err = parseStrategy(*strat)
	}
	if err != nil {
		return err
	}
	res, err := game.Simulate(game.Config{
		F: f, K: k, C: c, Rounds: *rounds, Seed: *seed, Workers: *workers,
	}, p)
	if err != nil {
		return err
	}
	tb := table.New("statistic", "mean", "stddev", "95% CI")
	tb.AddRowf("coverage", res.Coverage.Mean, res.Coverage.StdDev, res.Coverage.CI95)
	tb.AddRowf("payoff/player", res.Payoff.Mean, res.Payoff.StdDev, res.Payoff.CI95)
	tb.AddRowf("colliding frac", res.CollisionFrac.Mean, res.CollisionFrac.StdDev, res.CollisionFrac.CI95)
	tb.AddRowf("distinct sites", res.DistinctSites.Mean, res.DistinctSites.StdDev, res.DistinctSites.CI95)
	if err := tb.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("analytic coverage = %.9g\n", coverage.Cover(f, p, k))
	return nil
}

// parseStrategy parses a comma-separated probability vector (unlike site
// values, strategies need not be sorted and may contain zeros).
func parseStrategy(s string) (strategy.Strategy, error) {
	parts := strings.Split(s, ",")
	p := make(strategy.Strategy, 0, len(parts))
	for i, raw := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil {
			return nil, fmt.Errorf("strategy entry %d (%q): %w", i+1, raw, err)
		}
		p = append(p, v)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// newRand builds a deterministic generator for the ESS mutant panel.
func newRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0x2545f4914f6cdd1d))
}
