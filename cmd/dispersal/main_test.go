package main

import (
	"os"
	"strings"
	"testing"
)

// runQuiet executes run() with stdout redirected to /dev/null so test logs
// stay readable; the assertions here are about error behaviour and flag
// plumbing, not output formatting.
func runQuiet(t *testing.T, args ...string) error {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	return run(args)
}

func TestEverySubcommandRuns(t *testing.T) {
	cases := [][]string{
		{"ifd", "-f", "1,0.5", "-k", "2", "-policy", "exclusive"},
		{"ifd", "-f", "1,0.5", "-k", "3", "-policy", "twopoint:-0.25"},
		{"optimal", "-f", "1,0.8,0.3", "-k", "3"},
		{"spoa", "-f", "1,0.9,0.8", "-k", "3", "-policy", "sharing"},
		{"ess", "-f", "1,0.5", "-k", "2", "-mutants", "10"},
		{"simulate", "-f", "1,0.5", "-k", "2", "-rounds", "2000"},
		{"simulate", "-f", "1,0.5", "-k", "2", "-rounds", "1000", "-strategy", "0.3,0.7"},
		{"travelcost", "-f", "1,0.5", "-k", "2", "-t", "0.2,0"},
		{"travelcost", "-f", "1,0.5", "-k", "2"},
		{"capacity", "-f", "1,0.3", "-k", "4", "-cap", "0.25"},
		{"species", "-f", "1,0.9,0.8", "-ka", "3", "-kb", "3"},
		{"pure", "-f", "1,0.8,0.6", "-k", "2"},
		{"search", "-m", "10", "-k", "2", "-trials", "300"},
		{"asymptotic", "-f", "1,0.9,0.8", "-kmax", "8"},
		{"repeated", "-f", "1,0.8", "-k", "2", "-r", "0.5", "-bouts", "50"},
		{"repeated", "-f", "1,0.8", "-k", "2", "-r", "0.5", "-bouts", "50", "-stochastic"},
		{"help"},
	}
	for _, args := range cases {
		if err := runQuiet(t, args...); err != nil {
			t.Errorf("run(%v) = %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus"},
		{"ifd", "-f", "0.5,1"}, // unsorted values
		{"ifd", "-f", "1,0.5", "-k", "0"},
		{"ifd", "-policy", "bogus"},
		{"simulate", "-strategy", "0.5,0.6"}, // not a distribution
		{"travelcost", "-f", "1,0.5", "-t", "0.1"},    // wrong cost count
		{"travelcost", "-f", "1,0.5", "-t", "-0.1,0"}, // negative cost
		{"capacity", "-cap", "-1"},
		{"species", "-policyA", "nope"},
		{"pure", "-f", "1,0.9", "-k", "30"}, // blows the enumeration limit
		{"repeated", "-r", "2"},
		{"search", "-f", "0.5,1"},
	}
	for _, args := range cases {
		if err := runQuiet(t, args...); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestParseStrategy(t *testing.T) {
	p, err := parseStrategy("0.25, 0.75")
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 0.25 || p[1] != 0.75 {
		t.Errorf("parsed %v", p)
	}
	if _, err := parseStrategy("0.5,abc"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := parseStrategy("0.5,0.6"); err == nil {
		t.Error("non-distribution accepted")
	}
}

func TestParseCosts(t *testing.T) {
	c, err := parseCosts("0.1, 0", 2)
	if err != nil {
		t.Fatal(err)
	}
	if c[0] != 0.1 || c[1] != 0 {
		t.Errorf("parsed %v", c)
	}
	if _, err := parseCosts("0.1", 2); err == nil {
		t.Error("wrong count accepted")
	}
	if _, err := parseCosts("x,y", 2); err == nil {
		t.Error("garbage accepted")
	}
}

func TestZipfPrior(t *testing.T) {
	p := zipfPrior(4)
	if len(p) != 4 || p[0] != 1 || p[3] != 0.25 {
		t.Errorf("zipfPrior = %v", p)
	}
	// Must be non-increasing (site.Values convention).
	for i := 1; i < len(p); i++ {
		if p[i] > p[i-1] {
			t.Fatal("not sorted")
		}
	}
}

func TestUsageMentionsEverySubcommand(t *testing.T) {
	// The usage text is the CLI's contract; keep it in sync with run().
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	usage()
	w.Close()
	os.Stderr = old
	buf := make([]byte, 1<<16)
	n, _ := r.Read(buf)
	text := string(buf[:n])
	for _, sub := range []string{"ifd", "optimal", "spoa", "ess", "simulate",
		"travelcost", "capacity", "species", "pure", "search", "asymptotic"} {
		if !strings.Contains(text, sub) {
			t.Errorf("usage text missing %q", sub)
		}
	}
}
