// Command dispersald serves dispersal-game analysis over HTTP: a cached,
// batching front-end to the library's equilibrium, coverage-optimum and
// SPoA solvers.
//
// Usage:
//
//	dispersald [-addr HOST:PORT] [-workers N] [-cache-size N]
//	           [-warm-cache-size N] [-timeout D]
//
// Endpoints (see internal/server and docs/http-api.md):
//
//	POST /v1/analyze     one game spec -> IFD, coverage optimum, SPoA
//	POST /v1/sweep       {"specs": [...]} -> per-item analyses
//	POST /v1/trajectory  {"spec": ..., "frames": [...]} or
//	                     {"spec": ..., "deltas": [...]} -> one NDJSON line
//	                     per drifting-landscape frame, warm-start solved
//	GET  /healthz        liveness
//	GET  /statsz         cache, warm-cache and request counters
//
// Identical specs (trajectory frames included) share one cache entry and
// concurrent identical requests solve once (singleflight); near-identical
// specs additionally share warm solver state through a locality-keyed
// cache (-warm-cache-size), so nearby landscapes seed each other's solves.
// -timeout is the per-request deadline delivered to every solver through
// its context.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dispersal/internal/server"
)

func main() {
	addr := flag.String("addr", ":8257", "listen address")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache-size", 4096, "total cached analyses (<= 0 selects the default)")
	warmCacheSize := flag.Int("warm-cache-size", 1024, "locality-keyed warm solver states (<= 0 selects the default)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request solver deadline (0 = none)")
	quiet := flag.Bool("quiet", false, "suppress per-request logging")
	flag.Parse()

	logger := log.New(os.Stderr, "dispersald: ", log.LstdFlags)
	logf := logger.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	srv := server.New(server.Config{
		Workers:       *workers,
		CacheSize:     *cacheSize,
		WarmCacheSize: *warmCacheSize,
		Timeout:       *timeout,
		Logf:          logf,
	})
	// WriteTimeout must outlast the solver deadline, or slow (legitimate)
	// solves would be cut off mid-response; the margin covers decode and
	// response writing. With -timeout 0 there is no solver bound, so fall
	// back to a generous fixed ceiling rather than none at all.
	writeTimeout := 5 * time.Minute
	if *timeout > 0 {
		writeTimeout = *timeout + time.Minute
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (workers=%d cache-size=%d timeout=%s)",
			*addr, *workers, *cacheSize, *timeout)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "dispersald:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		logger.Printf("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "dispersald: shutdown:", err)
			os.Exit(1)
		}
	}
}
