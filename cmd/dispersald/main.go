// Command dispersald serves dispersal-game analysis over HTTP: a cached,
// batching front-end to the library's equilibrium, coverage-optimum and
// SPoA solvers.
//
// Usage:
//
//	dispersald [-addr HOST:PORT] [-workers N] [-cache-size N]
//	           [-warm-cache-size N] [-timeout D]
//	           [-state-dir DIR] [-snapshot-interval D]
//	           [-fleet URL,URL,... -self URL] [-peers HOST:PORT,...]
//	           [-peer-timeout D]
//	           [-max-sessions N] [-client-rate R] [-frame-budget N]
//	           [-log-level LEVEL] [-pprof HOST:PORT]
//
// Endpoints (see internal/server and docs/http-api.md):
//
//	POST /v1/analyze     one game spec -> IFD, coverage optimum, SPoA
//	POST /v1/sweep       {"specs": [...]} -> per-item analyses
//	POST /v1/trajectory  {"spec": ..., "frames": [...]} or
//	                     {"spec": ..., "deltas": [...]} -> one NDJSON line
//	                     per drifting-landscape frame, warm-start solved
//	GET  /v1/warmstate   peer exchange, pull: warm solver state for one
//	                     ?key=<locality key> (binary statewire payload)
//	POST /v1/warmstate   peer exchange, push (fleet mode): a statewire
//	                     envelope of states replicated here proactively
//	GET  /healthz        liveness
//	GET  /statsz         cache, warm-cache, federation, ring, request and
//	                     runtime counters plus latency summaries
//	GET  /metricsz       Prometheus text exposition: request/stage latency
//	                     histograms, counters, runtime gauges
//	GET  /tracez         recent per-request span traces (?min_ms=, ?limit=)
//
// Every request carries an X-Request-ID (the client's, when usable, else
// minted), echoed on the response, stamped on every log line and trace,
// and propagated on peer warm-state hops — one slow request correlates
// across every replica it touched. Logs are structured key=value lines
// (log/slog) on stderr at -log-level (debug, info, warn, error); -quiet is
// shorthand for -log-level error. -pprof serves net/http/pprof on a side
// listener for live profiling.
//
// Identical specs (trajectory frames included) share one cache entry and
// concurrent identical requests solve once (singleflight); near-identical
// specs additionally share warm solver state through a locality-keyed
// cache (-warm-cache-size), so nearby landscapes seed each other's solves.
// -timeout is the per-request deadline delivered to every solver through
// its context.
//
// Trajectory streams are multi-tenant sessions: each client (X-Client-Key
// header, else remote host) draws stream frames from a token bucket of
// -frame-budget frames refilled at -client-rate frames/second, and at most
// -max-sessions streams are attached at once — refusals are typed 429s
// with a Retry-After header. Admitted streams solve their frames
// round-robin on the -workers pool (short streams finish early under a
// greedy neighbor), byte-identical concurrent streams coalesce onto one
// solve per frame, and a disconnected stream can resume with
// ?session=<id>&resume=<seq> (410 once expired or out of replay window).
//
// The warm state federates across processes: with -state-dir it is
// snapshotted to disk every -snapshot-interval (and on shutdown) and loaded
// back at boot, so a restarted replica serves its first repeat-locality
// request warm. With -fleet (the full replica list, self included, named
// again by -self) the replicas divide the warm keyspace by consistent
// hashing: a local warm miss asks only the key's owner (one successor
// fallback on owner error), and every fresh solve is pushed to the key's
// owner and its followers, so the fleet warms itself ahead of demand. The
// legacy -peers flag instead polls every listed sibling on each miss. All
// paths are best-effort seeds — a stale snapshot or a lying peer can only
// cost a warm attempt, never change a result.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dispersal/internal/peer"
	"dispersal/internal/ring"
	"dispersal/internal/server"
)

func main() {
	addr := flag.String("addr", ":8257", "listen address")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache-size", 4096, "total cached analyses (<= 0 selects the default)")
	warmCacheSize := flag.Int("warm-cache-size", 1024, "locality-keyed warm solver states (<= 0 selects the default)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request solver deadline (0 = none)")
	stateDir := flag.String("state-dir", "", "persist the warm cache in this directory across restarts (empty = in-memory only)")
	snapshotInterval := flag.Duration("snapshot-interval", 30*time.Second, "warm-state snapshot cadence under -state-dir (<= 0 selects the default)")
	fleet := flag.String("fleet", "", "comma-separated base URLs of every replica in an ownership-routed fleet, self included (requires -self)")
	self := flag.String("self", "", "this replica's own entry in -fleet (its advertised base URL)")
	peers := flag.String("peers", "", "comma-separated sibling replicas (host:port) polled for warm state on local misses; ignored with -fleet")
	peerTimeout := flag.Duration("peer-timeout", 250*time.Millisecond, "deadline for one whole peer warm-state fetch round (<= 0 selects the default)")
	maxSessions := flag.Int("max-sessions", 256, "concurrently attached trajectory streams (<= 0 selects the default)")
	clientRate := flag.Float64("client-rate", 512, "per-client trajectory frame budget refill, frames per second (<= 0 selects the default)")
	frameBudget := flag.Int("frame-budget", 4096, "per-client trajectory token bucket capacity, frames (<= 0 selects the default)")
	quiet := flag.Bool("quiet", false, "suppress per-request logging (shorthand for -log-level error)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this side address (empty = disabled)")
	flag.Parse()

	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	// Fail fast on an unusable fleet: the server would log and run
	// standalone, but a misconfigured flag deserves a hard error at the
	// operator's terminal, not a silently degraded warm tier.
	fleetList := peer.NormalizeAddrs(strings.Split(*fleet, ","))
	if len(fleetList) > 0 || *self != "" {
		if _, err := ring.New(fleetList, peer.NormalizeAddr(*self)); err != nil {
			fmt.Fprintln(os.Stderr, "dispersald: -fleet/-self:", err)
			os.Exit(2)
		}
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintln(os.Stderr, "dispersald: -log-level:", err)
		os.Exit(2)
	}
	if *quiet && level < slog.LevelError {
		level = slog.LevelError
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	srv := server.New(server.Config{
		Workers:          *workers,
		CacheSize:        *cacheSize,
		WarmCacheSize:    *warmCacheSize,
		Timeout:          *timeout,
		StateDir:         *stateDir,
		SnapshotInterval: *snapshotInterval,
		Peers:            peerList,
		Fleet:            fleetList,
		SelfID:           *self,
		PeerTimeout:      *peerTimeout,
		MaxSessions:      *maxSessions,
		ClientRate:       *clientRate,
		FrameBudget:      *frameBudget,
		Logger:           logger,
	})
	// closeSrv writes the final warm-state snapshot; every exit path below
	// runs it (the error paths os.Exit, which skips defers).
	closeSrv := func() {
		if err := srv.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dispersald: warm-state snapshot:", err)
		}
	}
	// WriteTimeout must outlast the solver deadline, or slow (legitimate)
	// solves would be cut off mid-response; the margin covers decode and
	// response writing. With -timeout 0 there is no solver bound, so fall
	// back to a generous fixed ceiling rather than none at all.
	writeTimeout := 5 * time.Minute
	if *timeout > 0 {
		writeTimeout = *timeout + time.Minute
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		// The profiler gets its own mux on its own listener so the serving
		// port never exposes it; registration is explicit rather than the
		// net/http/pprof DefaultServeMux side effect.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil {
				logger.Warn("pprof listener failed", "addr", *pprofAddr, "err", err)
			}
		}()
	}

	errc := make(chan error, 1)
	go func() {
		logger.Info("dispersald listening",
			"addr", *addr, "workers", *workers, "cache_size", *cacheSize,
			"warm_cache_size", *warmCacheSize, "timeout", *timeout,
			"state_dir", *stateDir, "fleet", len(fleetList), "peers", len(peerList),
			"max_sessions", *maxSessions, "client_rate", *clientRate,
			"frame_budget", *frameBudget, "log_level", level.String(),
			"pprof", *pprofAddr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			closeSrv()
			fmt.Fprintln(os.Stderr, "dispersald:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		logger.Info("shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			closeSrv()
			fmt.Fprintln(os.Stderr, "dispersald: shutdown:", err)
			os.Exit(1)
		}
	}
	closeSrv()
}
