// Command dispersalvet is the repository's domain-specific vet: a
// multichecker over the internal/analyzers suite, proving the warm-serving
// invariants (codec field coverage, canonical-key determinism, cancellable
// solver loops, tolerance-gated float comparisons, supervised goroutines,
// seeded randomness) across every package at once.
//
// Usage:
//
//	go run ./cmd/dispersalvet ./...
//	go run ./cmd/dispersalvet -run 'floateq|ctxloop' ./internal/solve
//	go run ./cmd/dispersalvet -list
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure. Patterns are
// "./..." or "./"-relative package directories; analyzers whose invariant
// spans specific packages (statecoverage, canonicalrange) see the whole
// loaded program, so running on "./..." is the configuration CI enforces.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"dispersal/internal/analyzers"
	"dispersal/internal/analyzers/framework"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("dispersalvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the analyzer catalogue and exit")
	runPat := fs.String("run", "", "only run analyzers whose name matches this regexp")
	dir := fs.String("C", ".", "module root to analyze")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analyzers.All()
	if *runPat != "" {
		re, err := regexp.Compile(*runPat)
		if err != nil {
			fmt.Fprintf(stderr, "dispersalvet: bad -run pattern: %v\n", err)
			return 2
		}
		var kept []*framework.Analyzer
		for _, a := range suite {
			if re.MatchString(a.Name) {
				kept = append(kept, a)
			}
		}
		suite = kept
	}

	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	prog, err := framework.LoadModule(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "dispersalvet: %v\n", err)
		return 2
	}
	diags, err := framework.Run(prog, suite)
	if err != nil {
		fmt.Fprintf(stderr, "dispersalvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "dispersalvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
