package main

import (
	"testing"

	"dispersal/internal/analyzers"
	"dispersal/internal/analyzers/framework"
)

// TestRepoIsClean runs the full suite over the whole module — the same
// configuration CI enforces — and requires zero findings. If an invariant
// regresses anywhere in the repo, this test names the exact position.
func TestRepoIsClean(t *testing.T) {
	prog, err := framework.LoadModule("../..", "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags, err := framework.Run(prog, analyzers.All())
	if err != nil {
		t.Fatalf("run suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
