// Command figures regenerates the paper's Figure 1 (both panels) as CSV
// data, SVG renderings, and terminal ASCII charts.
//
// Usage:
//
//	figures [-out DIR] [-points N] [-ascii]
//
// Files written to DIR (default "out"):
//
//	figure1_left.csv / figure1_left.svg    (f = (1, 0.3))
//	figure1_right.csv / figure1_right.svg  (f = (1, 0.5))
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dispersal/internal/experiments"
	"dispersal/internal/plot"
)

func main() {
	out := flag.String("out", "out", "output directory")
	points := flag.Int("points", experiments.Figure1Points, "points on the c-grid")
	ascii := flag.Bool("ascii", true, "also print ASCII charts to stdout")
	flag.Parse()
	if err := run(*out, *points, *ascii); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(outDir string, points int, ascii bool) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	panels := []struct {
		name string
		f2   float64
	}{
		{"figure1_left", 0.3},
		{"figure1_right", 0.5},
	}
	for _, p := range panels {
		panel, err := experiments.Figure1Panel(p.f2, points)
		if err != nil {
			return fmt.Errorf("%s: %w", p.name, err)
		}
		if err := writeChart(outDir, p.name, panel.Chart(), ascii); err != nil {
			return err
		}
	}

	// The derived extension figure (E21): the Figure 1 shape at k > 2.
	sweep, err := experiments.E21CompetitionSweepLargerGames()
	if err != nil {
		return err
	}
	for i, chart := range sweep.Charts {
		name := "competition_sweep"
		if i > 0 {
			name = fmt.Sprintf("competition_sweep_%d", i+1)
		}
		if err := writeChart(outDir, name, chart, ascii); err != nil {
			return err
		}
	}
	return nil
}

// writeChart emits one chart as CSV + SVG files and optionally as an ASCII
// rendering on stdout.
func writeChart(outDir, name string, chart *plot.Chart, ascii bool) error {
	csvPath := filepath.Join(outDir, name+".csv")
	cf, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	if err := chart.WriteCSV(cf); err != nil {
		cf.Close()
		return err
	}
	if err := cf.Close(); err != nil {
		return err
	}

	svgPath := filepath.Join(outDir, name+".svg")
	sf, err := os.Create(svgPath)
	if err != nil {
		return err
	}
	if err := chart.RenderSVG(sf, 640, 480); err != nil {
		sf.Close()
		return err
	}
	if err := sf.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s and %s\n", csvPath, svgPath)

	if ascii {
		fmt.Println()
		if err := chart.RenderASCII(os.Stdout, 72, 18); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
