package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesAllFigureFiles(t *testing.T) {
	dir := t.TempDir()
	// Small grid to keep the test fast; ascii disabled to avoid noise.
	if err := run(dir, 11, false); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"figure1_left.csv", "figure1_left.svg",
		"figure1_right.csv", "figure1_right.svg",
		"competition_sweep.csv", "competition_sweep.svg",
	}
	for _, name := range want {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("missing output %s: %v", name, err)
			continue
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", name)
		}
		if strings.HasSuffix(name, ".svg") && !strings.Contains(string(data), "<svg") {
			t.Errorf("%s is not an SVG", name)
		}
		if strings.HasSuffix(name, ".csv") && !strings.Contains(string(data), ",") {
			t.Errorf("%s is not a CSV", name)
		}
	}
}

func TestRunCSVHasThreeSeries(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 5, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure1_left.csv"))
	if err != nil {
		t.Fatal(err)
	}
	header := strings.Split(strings.Split(string(data), "\n")[0], ",")
	if len(header) != 4 { // c + 3 series
		t.Errorf("header = %v", header)
	}
}

func TestRunBadDirectory(t *testing.T) {
	if err := run("/dev/null/nope", 5, false); err == nil {
		t.Error("invalid output directory accepted")
	}
}
