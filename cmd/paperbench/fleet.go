package main

// The -fleet benchmark: proof that ownership routing beats the pull
// topology it replaced. Two in-process 3-replica fleets serve the same
// shuffled drift grid — L distinct localities, each visited once per
// replica with a drifted-but-same-bucket landscape. The ownership fleet
// (-fleet/-self wiring: ring-routed fetches plus solver->owner->follower
// pushes) must turn the repeat visits into LOCAL warm hits, because the
// first solve was pushed to every replica ahead of demand; the pull fleet
// (-peers wiring) can only fetch on each miss, so its repeat visits stay
// peer-seeded at best. The benchmark gates on the local warm-hit gap and
// on the peer fan-out per fetch round (requests-per-miss), which ownership
// routing pins at one.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"dispersal"
	"dispersal/internal/server"
	"dispersal/internal/site"
	"dispersal/internal/speccodec"
)

// The fleet workload: landscapes small enough that 6L solves stay quick —
// the benchmark measures routing, not solver latency.
const (
	fleetSites    = 32
	fleetK        = 24
	fleetReplicas = 3
	// fleetSettle is how long the benchmark waits after each request for
	// the (asynchronous, best-effort) pushes to land before the next visit.
	fleetSettle = 25 * time.Millisecond
)

// fleetReplicaStats is the slice of /statsz the benchmark asserts on.
type fleetReplicaStats struct {
	WarmCache struct {
		Seeded   int64 `json:"seeded"`
		Fallback int64 `json:"fallback"`
	} `json:"warm_cache"`
	Peers struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Seeded    int64 `json:"seeded"`
		Fallbacks int64 `json:"fallbacks"`
	} `json:"peers"`
	Ring struct {
		PushesSent    int64 `json:"pushes_sent"`
		PushesApplied int64 `json:"pushes_applied"`
		Forwarded     int64 `json:"forwarded"`
		PushesDropped int64 `json:"pushes_dropped"`
		PushErrors    int64 `json:"push_errors"`
	} `json:"ring"`
	Solves int64 `json:"solves"`
}

// benchFleet is one running 3-replica topology.
type benchFleet struct {
	urls []string
	// warmGETs counts GET /v1/warmstate requests each replica received —
	// the fan-out numerator, measured at the only place it cannot lie.
	warmGETs []atomic.Int64
	closers  []func()
}

func (f *benchFleet) close() {
	for _, c := range f.closers {
		c()
	}
}

// bootBenchFleet starts fleetReplicas dispersald servers on real
// listeners, wired as an ownership fleet (-fleet/-self) or a pull mesh
// (-peers), each behind a middleware that counts warm-state GETs.
func bootBenchFleet(ownership bool) (*benchFleet, error) {
	f := &benchFleet{
		urls:     make([]string, fleetReplicas),
		warmGETs: make([]atomic.Int64, fleetReplicas),
	}
	listeners := make([]net.Listener, fleetReplicas)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.close()
			return nil, err
		}
		listeners[i] = l
		f.urls[i] = "http://" + l.Addr().String()
		f.closers = append(f.closers, func() { l.Close() })
	}
	for i := range listeners {
		cfg := server.Config{Timeout: time.Minute, PeerTimeout: 2 * time.Second}
		if ownership {
			cfg.Fleet = f.urls
			cfg.SelfID = f.urls[i]
		} else {
			for j, u := range f.urls {
				if j != i {
					cfg.Peers = append(cfg.Peers, u)
				}
			}
		}
		srv := server.New(cfg)
		counter := &f.warmGETs[i]
		hs := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodGet && r.URL.Path == "/v1/warmstate" {
				counter.Add(1)
			}
			srv.ServeHTTP(w, r)
		})}
		go hs.Serve(listeners[i])
		f.closers = append(f.closers, func() {
			hs.Close()
			srv.Close()
		})
	}
	return f, nil
}

// fleetVisit is one request of the drift grid: a spec body for a specific
// replica.
type fleetVisit struct {
	replica int
	body    []byte
}

// buildFleetGrid makes L distinct localities and one visit per replica per
// locality: visit 0 is the base landscape, the others are drifted within
// the same locality bucket (so only the warm tier can connect them) but
// under different exact cache keys (so every visit really solves).
func buildFleetGrid(localities int) ([]fleetVisit, error) {
	seen := make(map[string]bool, localities)
	visits := make([]fleetVisit, 0, localities*fleetReplicas)
	for l := 0; l < localities; l++ {
		base := dispersal.Values(site.Geometric(fleetSites, 1+float64(l), 0.8+0.01*float64(l%10)))
		spec := dispersal.Spec{Values: base, K: fleetK, Policy: dispersal.Sharing()}
		baseKey, err := speccodec.LocalityKey(spec)
		if err != nil {
			return nil, err
		}
		if seen[baseKey] {
			return nil, fmt.Errorf("localities %d and an earlier one share bucket %s; grid too dense", l, baseKey)
		}
		seen[baseKey] = true
		for v := 0; v < fleetReplicas; v++ {
			values := base
			if v > 0 {
				// Shrink the drift until no site crosses a bucket edge,
				// exactly like the -restart benchmark's repeat request.
				drifted := make(dispersal.Values, len(base))
				for eps := 3e-4 * float64(v); ; eps /= 4 {
					if eps < 1e-12 {
						return nil, fmt.Errorf("locality %d: could not construct a repeat-locality drift", l)
					}
					for i, val := range base {
						drifted[i] = val * (1 + eps)
					}
					key, err := speccodec.LocalityKey(dispersal.Spec{Values: drifted, K: fleetK, Policy: dispersal.Sharing()})
					if err != nil {
						return nil, err
					}
					if key == baseKey {
						break
					}
				}
				values = drifted
			}
			body, err := speccodec.Encode(dispersal.Spec{Values: values, K: fleetK, Policy: dispersal.Sharing()})
			if err != nil {
				return nil, err
			}
			visits = append(visits, fleetVisit{replica: v, body: body})
		}
	}
	return visits, nil
}

// fleetOutcome is one topology's aggregate scorecard over the grid.
type fleetOutcome struct {
	localSeeded int64 // warm solves seeded from the replica's own cache
	peerSeeded  int64 // warm solves seeded by a network fetch
	rounds      int64 // fetch rounds that went to the network
	warmGETs    int64 // warm-state GETs received fleet-wide
	solves      int64
	fallbacks   int64
	pushErrors  int64
	dropped     int64
	applied     int64
}

// localHitRate is the fraction of visits answered off the replica's own
// warm cache.
func (o fleetOutcome) localHitRate(visits int) float64 {
	return float64(o.localSeeded) / float64(visits)
}

// fanOut is the mean warm-state GETs per fetch round — the requests-per-
// miss the topology costs the fleet.
func (o fleetOutcome) fanOut() float64 {
	if o.rounds == 0 {
		return 0
	}
	return float64(o.warmGETs) / float64(o.rounds)
}

// runGrid serves every visit in order against the fleet and aggregates
// the outcome from each replica's /statsz.
func runGrid(ctx context.Context, f *benchFleet, visits []fleetVisit) (fleetOutcome, error) {
	var out fleetOutcome
	for _, v := range visits {
		if err := analyzeOnce(ctx, f.urls[v.replica], v.body); err != nil {
			return out, err
		}
		// Let the asynchronous pushes land before the next visit; the pull
		// fleet gets the same pause, which it has no use for.
		select {
		case <-time.After(fleetSettle):
		case <-ctx.Done():
			return out, ctx.Err()
		}
	}
	for i, u := range f.urls {
		var s fleetReplicaStats
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u+"/statsz", nil)
		if err != nil {
			return out, err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return out, err
		}
		payload, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return out, err
		}
		if err := json.Unmarshal(payload, &s); err != nil {
			return out, fmt.Errorf("statsz from replica %d: %w", i, err)
		}
		out.localSeeded += s.WarmCache.Seeded - s.Peers.Seeded
		out.peerSeeded += s.Peers.Seeded
		out.rounds += s.Peers.Hits + s.Peers.Misses
		out.warmGETs += f.warmGETs[i].Load()
		out.solves += s.Solves
		out.fallbacks += s.Peers.Fallbacks
		out.pushErrors += s.Ring.PushErrors
		out.dropped += s.Ring.PushesDropped
		out.applied += s.Ring.PushesApplied
	}
	return out, nil
}

// runFleetBench drives the same shuffled drift grid through an ownership
// fleet and a pull fleet and gates on the routing advantage: a local
// warm-hit rate at least minHitGain above the pull fleet's, and a peer
// fan-out of one request per round against the pull fleet's strictly
// higher cost.
func runFleetBench(ctx context.Context, localities int, minHitGain float64) error {
	if localities < 2 {
		return fmt.Errorf("-fleet-localities must be >= 2, got %d", localities)
	}
	visits, err := buildFleetGrid(localities)
	if err != nil {
		return err
	}
	// One shared shuffle (seeded: the benchmark must be reproducible), so
	// both topologies serve the identical request sequence.
	rng := rand.New(rand.NewSource(7))
	rng.Shuffle(len(visits), func(i, j int) { visits[i], visits[j] = visits[j], visits[i] })
	fmt.Printf("fleet benchmark: %d replicas, %d localities x %d visits (M=%d sites, k=%d, sharing), shuffled\n\n",
		fleetReplicas, localities, fleetReplicas, fleetSites, fleetK)

	run := func(ownership bool) (fleetOutcome, error) {
		f, err := bootBenchFleet(ownership)
		if err != nil {
			return fleetOutcome{}, err
		}
		defer f.close()
		return runGrid(ctx, f, visits)
	}
	own, err := run(true)
	if err != nil {
		return fmt.Errorf("ownership fleet: %w", err)
	}
	pull, err := run(false)
	if err != nil {
		return fmt.Errorf("pull fleet: %w", err)
	}

	n := len(visits)
	fmt.Printf("ownership fleet: local warm-hit rate %.2f (%d/%d), peer-seeded %d, fan-out %.2f GETs/round (%d GETs / %d rounds), fallbacks %d, pushes applied %d\n",
		own.localHitRate(n), own.localSeeded, n, own.peerSeeded, own.fanOut(), own.warmGETs, own.rounds, own.fallbacks, own.applied)
	fmt.Printf("pull fleet:      local warm-hit rate %.2f (%d/%d), peer-seeded %d, fan-out %.2f GETs/round (%d GETs / %d rounds)\n",
		pull.localHitRate(n), pull.localSeeded, n, pull.peerSeeded, pull.fanOut(), pull.warmGETs, pull.rounds)
	fmt.Printf("local warm-hit gain: %+.2f; fan-out saved per round: %.2f\n",
		own.localHitRate(n)-pull.localHitRate(n), pull.fanOut()-own.fanOut())

	if own.solves != int64(n) || pull.solves != int64(n) {
		return fmt.Errorf("grid did not force one solve per visit (ownership %d, pull %d, want %d): the exact cache answered; the comparison is void",
			own.solves, pull.solves, n)
	}
	if own.pushErrors != 0 || own.dropped != 0 {
		return fmt.Errorf("ownership fleet shed pushes on a healthy grid (errors=%d dropped=%d)", own.pushErrors, own.dropped)
	}
	if gain := own.localHitRate(n) - pull.localHitRate(n); gain < minHitGain {
		return fmt.Errorf("ownership local warm-hit gain %.2f is below the %.2f target (%.2f vs %.2f)",
			gain, minHitGain, own.localHitRate(n), pull.localHitRate(n))
	}
	if own.rounds > 0 && own.fanOut() > 1.01 {
		return fmt.Errorf("ownership fan-out %.2f GETs/round; ownership routing must ask exactly the owner", own.fanOut())
	}
	if pull.rounds > 0 && own.rounds > 0 && pull.fanOut() <= own.fanOut() {
		return fmt.Errorf("pull fan-out %.2f is not above ownership's %.2f; the comparison is void", pull.fanOut(), own.fanOut())
	}
	return nil
}
