// Command paperbench runs the full paper-reproduction suite (experiments
// E1-E23 of the experiment index in docs/ARCHITECTURE.md) and renders the results, optionally regenerating
// EXPERIMENTS.md.
//
// Usage:
//
//	paperbench [-md FILE] [-quiet] [-workers N] [-timeout D]
//	           [-server URL] [-trajectory] [-frames N]
//
// With -md, a Markdown report (the repository's EXPERIMENTS.md) is written
// to FILE in addition to the terminal report. -workers fans the independent
// experiments out across a bounded pool (0 = GOMAXPROCS, 1 = sequential);
// -timeout bounds the whole suite, and Ctrl-C cancels it cleanly — both are
// delivered to every experiment through its context.
//
// With -server URL, paperbench targets a running dispersald instead of the
// local solvers: it health-checks the server, POSTs a standard spec grid to
// /v1/sweep twice — a cold pass that solves and a warm pass that must be
// served from cache — and reports both latencies plus the server's /statsz
// counters. A warm pass that still misses the cache is an error.
//
// With -trajectory, paperbench benchmarks the warm-start solver on a
// drifting landscape: it solves the same -frames frame sequence (default
// 64) cold — one fresh game per frame — and warm through Game.Trajectory,
// verifies the two agree to solver tolerance on every frame, and reports
// the speedup, failing below -min-speedup (default 3x). It then repeats
// the comparison for the full-analysis path (IFD plus SPoA per frame, the
// work one /v1/trajectory frame performs), failing below
// -min-spoa-speedup (default 2x).
//
// With -sessions, paperbench boots an in-process dispersald and proves the
// session layer's claims over live HTTP: -session-streams identical
// concurrent -session-frames-frame streams must coalesce onto ~one solve
// per unique frame (gated by -min-coalesce-ratio on the fraction of frames
// answered without fresh solver work), and four short streams racing one
// greedy stream on a 2-slot scheduler must all finish while the greedy
// stream is still in its first half.
//
// With -obs-overhead, paperbench proves the observability kernel is cheap
// enough to leave on: it streams a warm trajectory through a live
// instrumented dispersald to measure the median per-frame solve time, times
// the exact per-frame instrumentation sequence (spans, stage and frame
// histograms, counters, plus amortized request-ID/trace/ring work) in a
// tight loop -obs-passes times, and fails when the instrumentation-to-frame
// time ratio exceeds -max-obs-overhead (default 2%).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"dispersal/internal/experiments"
)

func main() {
	mdPath := flag.String("md", "", "write a Markdown report to this path")
	quiet := flag.Bool("quiet", false, "only print the summary")
	workers := flag.Int("workers", 0, "experiment worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	timeout := flag.Duration("timeout", 0, "abort the suite after this long (0 = no limit)")
	serverURL := flag.String("server", "", "benchmark a running dispersald at this base URL instead of solving locally")
	trajectory := flag.Bool("trajectory", false, "benchmark warm-start trajectory solving against per-frame cold solves")
	frames := flag.Int("frames", 64, "frame count for the -trajectory benchmark")
	minSpeedup := flag.Float64("min-speedup", 3, "fail -trajectory when the warm-start speedup is below this (0 disables)")
	minSPoASpeedup := flag.Float64("min-spoa-speedup", 2, "fail -trajectory when the full-analysis (SPoA path) warm speedup is below this (0 disables)")
	restart := flag.Bool("restart", false, "prove warm-state snapshot persistence: reboot a replica from its -state-dir snapshot and require its first repeat-locality request to solve warm")
	minRestartSpeedup := flag.Float64("min-restart-speedup", 0, "fail -restart when the rebooted replica's first request is not this much faster than a stateless boot's (0 disables)")
	fleetMode := flag.Bool("fleet", false, "prove ownership routing beats the pull topology: serve a shuffled drift grid through a 3-replica push fleet and a 3-replica pull fleet and compare local warm-hit rate and peer fan-out")
	fleetLocalities := flag.Int("fleet-localities", 12, "distinct locality buckets in the -fleet drift grid (each visited once per replica)")
	minFleetHitGain := flag.Float64("min-fleet-hit-gain", 0.3, "fail -fleet when the ownership fleet's local warm-hit rate does not beat the pull fleet's by this margin")
	sessions := flag.Bool("sessions", false, "prove session coalescing and fair scheduling over live HTTP: identical concurrent streams must share one solve per frame, short streams must finish under a greedy neighbor")
	sessionStreams := flag.Int("session-streams", 8, "identical concurrent streams in the -sessions coalescing phase")
	sessionFrames := flag.Int("session-frames", 32, "frames per stream in the -sessions coalescing phase")
	minCoalesceRatio := flag.Float64("min-coalesce-ratio", 0.8, "fail -sessions when the coalesced-frame ratio is below this (0 disables)")
	obsOverhead := flag.Bool("obs-overhead", false, "prove the observability kernel is cheap: gate the per-frame instrumentation cost against the live warm trajectory frame time")
	obsFrames := flag.Int("obs-frames", 48, "frames in the -obs-overhead warm trajectory pass")
	obsPasses := flag.Int("obs-passes", 7, "microbench passes in the -obs-overhead benchmark (median kept)")
	maxObsOverhead := flag.Float64("max-obs-overhead", 0.02, "fail -obs-overhead when the median instrumentation overhead exceeds this fraction (0 disables)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *serverURL != "" {
		if err := runServerBench(ctx, *serverURL); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		return
	}

	if *trajectory {
		if err := runTrajectoryBench(ctx, *frames, *minSpeedup, *minSPoASpeedup); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		return
	}

	if *restart {
		if err := runRestartBench(ctx, *minRestartSpeedup); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		return
	}

	if *fleetMode {
		if err := runFleetBench(ctx, *fleetLocalities, *minFleetHitGain); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		return
	}

	if *sessions {
		if err := runSessionsBench(ctx, *sessionStreams, *sessionFrames, *minCoalesceRatio); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		return
	}

	if *obsOverhead {
		if err := runObsOverheadBench(ctx, *obsFrames, *obsPasses, *maxObsOverhead); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		return
	}

	if err := run(ctx, *mdPath, *quiet, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, mdPath string, quiet bool, workers int) error {
	start := time.Now()
	reports, abortErr := experiments.AllContext(ctx, workers)
	if !quiet {
		for i := range reports {
			if err := reports[i].Render(os.Stdout); err != nil {
				return err
			}
		}
	}
	fmt.Print(experiments.Summary(reports))
	fmt.Printf("total time: %s\n", time.Since(start).Round(time.Millisecond))

	if abortErr != nil {
		return fmt.Errorf("suite aborted: %w", abortErr)
	}

	if mdPath != "" {
		var b strings.Builder
		writeMarkdownHeader(&b)
		for i := range reports {
			if err := reports[i].RenderMarkdown(&b); err != nil {
				return err
			}
		}
		writeMarkdownFooter(&b, reports)
		if err := os.WriteFile(mdPath, []byte(b.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", mdPath)
	}

	for _, r := range reports {
		if !r.Pass {
			return fmt.Errorf("experiment %s failed", r.ID)
		}
	}
	return nil
}

func writeMarkdownHeader(b *strings.Builder) {
	b.WriteString(`# EXPERIMENTS — paper vs. measured

Reproduction record for *"Intense Competition can Drive Selfish Explorers to
Optimize Coverage"* (Collet & Korman, SPAA 2018). Each section below is one
experiment from the index in docs/ARCHITECTURE.md; this file is regenerated by

` + "```" + `
go run ./cmd/paperbench -md EXPERIMENTS.md
` + "```" + `

The paper's quantitative evaluation is Figure 1; its remaining claims are
theorems, each of which is checked numerically here. "Pass" means the
paper's qualitative claim (who wins, where the optimum sits, which bounds
hold) reproduces exactly; absolute values are exact as well since the
figure's quantities have closed forms.

`)
}

func writeMarkdownFooter(b *strings.Builder, reports []experiments.Report) {
	b.WriteString("## Summary\n\n```\n")
	b.WriteString(experiments.Summary(reports))
	b.WriteString("```\n")
}
