package main

// The -obs-overhead benchmark: proof that the observability kernel is
// cheap enough to leave on. Wall-clock A/B runs of an instrumented vs an
// uninstrumented server cannot resolve the true cost — the kernel's
// per-frame work is a few microseconds against millisecond frames, far
// below ambient scheduling noise on a shared machine — so the benchmark
// measures the ratio directly from its two stable parts:
//
//   - the denominator: the median server-reported per-frame solve time of
//     a real warm trajectory stream against a live instrumented dispersald
//     (so the anchor is the genuine warm path, HTTP and all);
//   - the numerator: the exact per-frame instrumentation sequence that
//     path executes — spans opened and closed, stage/frame histograms
//     observed, counters bumped, and (amortized per request) an ID minted,
//     a trace built, finished and ring-recorded — timed over many tight
//     iterations.
//
// Their ratio is the instrumentation tax on one warm frame. The run fails
// when it exceeds -max-obs-overhead (default 2%); -obs-passes repeats the
// microbench and keeps the median.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"

	"dispersal/internal/obs"
	"dispersal/internal/server"
)

// bootBenchServer starts one in-process dispersald on a loopback listener
// and returns its base URL plus a shutdown func.
func bootBenchServer(disableObs bool) (string, func(), error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	srv := server.New(server.Config{Workers: 2, Timeout: time.Minute, DisableObs: disableObs})
	hs := &http.Server{Handler: srv}
	go hs.Serve(l)
	stop := func() {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutCtx)
		srv.Close()
	}
	return "http://" + l.Addr().String(), stop, nil
}

// framePass streams one warm trajectory through url and returns the
// server-reported per-frame solve times, in frame order.
func framePass(ctx context.Context, url, body string, frames int) ([]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/trajectory", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-Key", "obsbench")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		payload, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("trajectory stream: status %d: %s", resp.StatusCode, payload)
	}
	// The done line's "cached" is a count where a frame line's is a bool,
	// so classify the line first and only then decode the frame fields.
	var probe struct {
		Done  bool   `json:"done"`
		Error string `json:"error"`
	}
	var line struct {
		Frame     int     `json:"frame"`
		Cached    bool    `json:"cached"`
		ElapsedMS float64 `json:"elapsed_ms"`
	}
	elapsed := make([]float64, 0, frames)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			return nil, fmt.Errorf("trajectory line: %w", err)
		}
		if probe.Error != "" {
			return nil, fmt.Errorf("trajectory stream: %s", probe.Error)
		}
		if probe.Done {
			continue
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("trajectory frame line: %w", err)
		}
		if line.Cached {
			return nil, fmt.Errorf("frame %d answered from cache; the bench needs every frame on the warm solve path", line.Frame)
		}
		elapsed = append(elapsed, line.ElapsedMS)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(elapsed) != frames {
		return nil, fmt.Errorf("trajectory delivered %d frames, want %d", len(elapsed), frames)
	}
	return elapsed, nil
}

// frameObsCost times the per-frame instrumentation sequence of the warm
// trajectory path over iters iterations and returns the cost of one
// frame's worth. The sequence deliberately overcounts — it includes the
// request-scoped work (ID minting, trace construction, finish, ring
// record) amortized over framesPerReq, plus the seed-lookup spans only a
// stream's first frame performs — so the gate bounds the cost from above.
func frameObsCost(iters, framesPerReq int) time.Duration {
	reg := obs.NewRegistry()
	ring := obs.NewRing(obs.DefaultRingSize)
	stage := func(s string) *obs.Histogram {
		return reg.Histogram("bench_stage_seconds", "bench", obs.L("stage", s))
	}
	stages := []*obs.Histogram{
		stage("decode"), stage("queue_wait"), stage("seed_local"), stage("seed_peer"),
		stage("solve_eq"), stage("solve_opt"), stage("push_enqueue"), stage("write"),
	}
	frame := reg.Histogram("bench_frame_seconds", "bench")
	reqHist := reg.Histogram("bench_request_seconds", "bench")
	solves := reg.Counter("bench_solves_total", "bench")

	tr := obs.NewTrace("bench", obs.NewRequestID())
	start := time.Now()
	for i := 0; i < iters; i++ {
		if i%framesPerReq == 0 {
			// Request rollover: finish and record the old trace, mint and
			// accept an ID, observe the request histogram, start fresh.
			ring.Add(tr.Finish())
			rid := obs.AcceptRequestID(obs.NewRequestID())
			reqHist.Observe(time.Since(start))
			tr = obs.NewTrace("bench", rid)
		}
		for _, h := range stages {
			sp := tr.StartSpan("stage")
			h.Observe(sp.End())
		}
		frame.Observe(time.Since(start))
		solves.Inc()
	}
	return time.Since(start) / time.Duration(iters)
}

func runObsOverheadBench(ctx context.Context, frames, passes int, maxOverhead float64) error {
	url, stop, err := bootBenchServer(false)
	if err != nil {
		return err
	}
	defer stop()

	fmt.Printf("obs overhead bench: %d warm trajectory frames vs the per-frame instrumentation sequence (%d microbench passes)\n",
		frames, passes)

	// Denominator: real warm frames against the live instrumented server.
	// One throwaway pass absorbs first-run costs, then the measured pass
	// (a distinct spec, so nothing is cached) supplies the median frame.
	if _, err := framePass(ctx, url, sessionBody(sessionK, frames, 0.01), frames); err != nil {
		return fmt.Errorf("warm-up: %w", err)
	}
	elapsed, err := framePass(ctx, url, sessionBody(sessionK+1, frames, 0.01), frames)
	if err != nil {
		return err
	}
	sort.Float64s(elapsed)
	medianFrameMS := elapsed[len(elapsed)/2]
	if medianFrameMS <= 0 {
		return fmt.Errorf("median warm frame time is %.3fms; cannot anchor the overhead ratio", medianFrameMS)
	}

	// Numerator: the instrumentation sequence, median of -obs-passes tight
	// runs.
	const iters = 20000
	costs := make([]time.Duration, passes)
	for p := range costs {
		costs[p] = frameObsCost(iters, frames)
	}
	sort.Slice(costs, func(i, j int) bool { return costs[i] < costs[j] })
	perFrame := costs[len(costs)/2]

	overhead := float64(perFrame) / (medianFrameMS * float64(time.Millisecond))
	fmt.Printf("  median warm frame: %.3fms; per-frame instrumentation: %s; overhead %.3f%% (gate %.0f%%)\n",
		medianFrameMS, perFrame.Round(time.Nanosecond), overhead*100, maxOverhead*100)
	if maxOverhead > 0 && overhead > maxOverhead {
		return fmt.Errorf("instrumentation overhead %.3f%% exceeds the %.0f%% gate",
			overhead*100, maxOverhead*100)
	}
	fmt.Println("obs overhead bench: PASS")
	return nil
}
