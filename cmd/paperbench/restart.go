package main

// The -restart benchmark: proof that warm-state snapshot persistence
// (-state-dir) survives a reboot. An in-process dispersald replica is
// warmed, shut down (writing its final snapshot), and rebooted from the
// same state directory; its very first repeat-locality request must report
// a snapshot-seeded warm solve, and is timed against the same request on a
// replica booted with no state at all.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"dispersal"
	"dispersal/internal/server"
	"dispersal/internal/site"
	"dispersal/internal/speccodec"
)

// The restart workload: one game heavy enough that a warm seed is worth
// measuring (the nu bisection and per-site inversions dominate), drifted
// slightly between the pre- and post-restart requests so the exact result
// cache cannot answer and only the persisted warm state can help.
const (
	restartSites = 96
	restartK     = 160
)

// restartStats is the slice of /statsz the benchmark asserts on.
type restartStats struct {
	WarmCache struct {
		Seeded   int64 `json:"seeded"`
		Fallback int64 `json:"fallback"`
		Loaded   int64 `json:"loaded"`
	} `json:"warm_cache"`
	Solves int64 `json:"solves"`
}

// runRestartBench boots replica A on a fresh state directory, warms it with
// one solve, shuts it down, boots replica B on the same directory and
// replica C on none, and issues the same near-identical request to both.
// B must answer warm (seeded from the snapshot); the reported speedup is
// B's latency versus C's. A missing warm seed is an error; a speedup below
// minSpeedup (0 disables) is too.
func runRestartBench(ctx context.Context, minSpeedup float64) error {
	dir, err := os.MkdirTemp("", "dispersal-restart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	base := dispersal.Values(site.Geometric(restartSites, 1, 0.97))
	warmBody, err := speccodec.Encode(dispersal.Spec{Values: base, K: restartK, Policy: dispersal.Sharing()})
	if err != nil {
		return err
	}
	// The post-restart request: every value nudged by a small factor — a
	// different exact cache key in, provably, the same locality buckets.
	// The nudge shrinks until no site crosses a bucket edge (a fixed eps
	// would flip a bucket whenever some ln(f(x)) sits near one).
	baseSpec := dispersal.Spec{Values: base, K: restartK, Policy: dispersal.Sharing()}
	baseKey, err := speccodec.LocalityKey(baseSpec)
	if err != nil {
		return err
	}
	drifted := make(dispersal.Values, len(base))
	for eps := 5e-4; ; eps /= 4 {
		if eps < 1e-12 {
			return fmt.Errorf("could not construct a repeat-locality drift")
		}
		for i, v := range base {
			drifted[i] = v * (1 + eps)
		}
		key, err := speccodec.LocalityKey(dispersal.Spec{Values: drifted, K: restartK, Policy: dispersal.Sharing()})
		if err != nil {
			return err
		}
		if key == baseKey {
			break
		}
	}
	repeatBody, err := speccodec.Encode(dispersal.Spec{Values: drifted, K: restartK, Policy: dispersal.Sharing()})
	if err != nil {
		return err
	}

	boot := func(stateDir string) (*server.Server, *httptest.Server) {
		srv := server.New(server.Config{Timeout: 5 * time.Minute, StateDir: stateDir})
		return srv, httptest.NewServer(srv)
	}
	fmt.Printf("restart benchmark: M=%d sites, k=%d players, sharing policy, state dir %s\n\n",
		restartSites, restartK, dir)

	// Replica A: solve once, shut down cleanly (final snapshot).
	a, tsA := boot(dir)
	warmStart := time.Now()
	if err := analyzeOnce(ctx, tsA.URL, warmBody); err != nil {
		return fmt.Errorf("warming replica: %w", err)
	}
	fmt.Printf("replica A: warmed with 1 solve in %s, shutting down\n", time.Since(warmStart).Round(time.Millisecond))
	tsA.Close()
	if err := a.Close(); err != nil {
		return fmt.Errorf("snapshot on shutdown: %w", err)
	}

	// Replica B: rebooted from A's snapshot; its FIRST request must be
	// warm.
	b, tsB := boot(dir)
	defer b.Close()
	defer tsB.Close()
	bStart := time.Now()
	if err := analyzeOnce(ctx, tsB.URL, repeatBody); err != nil {
		return fmt.Errorf("post-restart analyze: %w", err)
	}
	warmDur := time.Since(bStart)
	bStats, err := fetchRestartStats(ctx, tsB.URL)
	if err != nil {
		return err
	}

	// Replica C: the control — same request, no state directory.
	c, tsC := boot("")
	defer c.Close()
	defer tsC.Close()
	cStart := time.Now()
	if err := analyzeOnce(ctx, tsC.URL, repeatBody); err != nil {
		return fmt.Errorf("cold-control analyze: %w", err)
	}
	coldDur := time.Since(cStart)

	speedup := float64(coldDur) / float64(warmDur)
	fmt.Printf("replica B (rebooted, -state-dir): first request in %s, loaded=%d seeded=%d fallback=%d\n",
		warmDur.Round(time.Microsecond), bStats.WarmCache.Loaded, bStats.WarmCache.Seeded, bStats.WarmCache.Fallback)
	fmt.Printf("replica C (cold boot, no state):  first request in %s\n", coldDur.Round(time.Microsecond))
	fmt.Printf("restart warm speedup: %.2fx\n", speedup)

	if bStats.WarmCache.Loaded < 1 {
		return fmt.Errorf("rebooted replica loaded no snapshot states")
	}
	if bStats.WarmCache.Seeded != 1 {
		return fmt.Errorf("rebooted replica's first repeat-locality request was not warm-seeded (seeded=%d, fallback=%d)",
			bStats.WarmCache.Seeded, bStats.WarmCache.Fallback)
	}
	if minSpeedup > 0 && speedup < minSpeedup {
		return fmt.Errorf("restart warm speedup %.2fx is below the %.1fx target", speedup, minSpeedup)
	}
	return nil
}

// analyzeOnce POSTs one spec to /v1/analyze and fails on any non-200.
func analyzeOnce(ctx context.Context, baseURL string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/analyze", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("analyze: %s: %s", resp.Status, bytes.TrimSpace(payload))
	}
	return nil
}

// fetchRestartStats reads the warm-cache slice of /statsz.
func fetchRestartStats(ctx context.Context, baseURL string) (restartStats, error) {
	var out restartStats
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/statsz", nil)
	if err != nil {
		return out, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(payload, &out); err != nil {
		return out, fmt.Errorf("statsz: %w", err)
	}
	return out, nil
}
