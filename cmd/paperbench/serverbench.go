package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"dispersal"
	"dispersal/internal/speccodec"
)

// benchSpecs is the standard grid POSTed to a dispersald under -server: the
// familiar two-site, geometric, Zipf and uniform landscapes crossed with the
// paper's central policies, tagged for the per-item report.
func benchSpecs() []dispersal.Spec {
	families := []struct {
		name string
		f    dispersal.Values
	}{
		{"two-site f2=0.3", dispersal.Values{1, 0.3}},
		{"two-site f2=0.5", dispersal.Values{1, 0.5}},
		{"geometric(12, 0.8)", geometric(12, 0.8)},
		{"zipf(16)", zipf(16)},
		{"uniform(8)", uniform(8)},
	}
	policies := []struct {
		name string
		c    dispersal.Congestion
	}{
		{"exclusive", dispersal.Exclusive()},
		{"sharing", dispersal.Sharing()},
		{"twopoint(0.25)", dispersal.TwoPoint(0.25)},
		{"powerlaw(2)", dispersal.PowerLaw(2)},
	}
	var specs []dispersal.Spec
	for _, k := range []int{2, 4, 8} {
		for _, fam := range families {
			for _, pol := range policies {
				specs = append(specs, dispersal.Spec{
					Values: fam.f,
					K:      k,
					Policy: pol.c,
					Tag:    fmt.Sprintf("%s/%s/k=%d", fam.name, pol.name, k),
				})
			}
		}
	}
	return specs
}

func geometric(m int, ratio float64) dispersal.Values {
	out := make(dispersal.Values, m)
	v := 1.0
	for i := range out {
		out[i] = v
		v *= ratio
	}
	return out
}

func zipf(m int) dispersal.Values {
	out := make(dispersal.Values, m)
	for i := range out {
		out[i] = 1 / float64(i+1)
	}
	return out
}

func uniform(m int) dispersal.Values {
	out := make(dispersal.Values, m)
	for i := range out {
		out[i] = 1
	}
	return out
}

// sweepStats summarizes one /v1/sweep pass.
type sweepStats struct {
	elapsed time.Duration
	cached  int
	errors  int
	total   int
}

// runServerBench drives a running dispersald: health check, cold sweep,
// warm sweep (which must be fully cached), stats.
func runServerBench(ctx context.Context, baseURL string) error {
	base := strings.TrimRight(baseURL, "/")
	client := &http.Client{Timeout: 5 * time.Minute}

	if err := checkHealth(ctx, client, base); err != nil {
		return err
	}
	specs := benchSpecs()
	body, err := sweepBody(specs)
	if err != nil {
		return err
	}
	fmt.Printf("benchmarking %s with %d specs\n", base, len(specs))

	cold, err := postSweep(ctx, client, base, body)
	if err != nil {
		return fmt.Errorf("cold sweep: %w", err)
	}
	fmt.Printf("cold: %8s  cached %d/%d, %d errors\n", cold.elapsed.Round(time.Millisecond), cold.cached, cold.total, cold.errors)

	warm, err := postSweep(ctx, client, base, body)
	if err != nil {
		return fmt.Errorf("warm sweep: %w", err)
	}
	fmt.Printf("warm: %8s  cached %d/%d, %d errors\n", warm.elapsed.Round(time.Millisecond), warm.cached, warm.total, warm.errors)
	if warm.cached != warm.total {
		return fmt.Errorf("warm sweep missed the cache: only %d/%d items cached", warm.cached, warm.total)
	}
	if cold.errors > 0 || warm.errors > 0 {
		return fmt.Errorf("sweep items failed: %d cold, %d warm", cold.errors, warm.errors)
	}

	return printStats(ctx, client, base)
}

func checkHealth(ctx context.Context, client *http.Client, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("health check: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("health check: %s", resp.Status)
	}
	return nil
}

// sweepBody renders the /v1/sweep request from the spec grid through the
// shared wire codec.
func sweepBody(specs []dispersal.Spec) ([]byte, error) {
	raws := make([]json.RawMessage, len(specs))
	for i, s := range specs {
		b, err := speccodec.Encode(s)
		if err != nil {
			return nil, fmt.Errorf("spec %d (%s): %w", i, s.Tag, err)
		}
		raws[i] = b
	}
	return json.Marshal(map[string][]json.RawMessage{"specs": raws})
}

func postSweep(ctx context.Context, client *http.Client, base string, body []byte) (sweepStats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/sweep", bytes.NewReader(body))
	if err != nil {
		return sweepStats{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return sweepStats{}, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return sweepStats{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return sweepStats{}, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(payload))
	}
	var decoded struct {
		Results []struct {
			Cached bool   `json:"cached"`
			Error  string `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(payload, &decoded); err != nil {
		return sweepStats{}, err
	}
	st := sweepStats{elapsed: time.Since(start), total: len(decoded.Results)}
	for _, r := range decoded.Results {
		if r.Cached {
			st.cached++
		}
		if r.Error != "" {
			st.errors++
		}
	}
	return st, nil
}

func printStats(ctx context.Context, client *http.Client, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/statsz", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("statsz: %w", err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("statsz: %s", resp.Status)
	}
	fmt.Printf("statsz: %s\n", bytes.TrimSpace(payload))
	return nil
}
