package main

// The -sessions benchmark: proof that the session layer's two headline
// claims hold over real HTTP against a live server, with gates.
//
// Coalescing: -session-streams identical concurrent trajectory streams of
// -session-frames frames each must cost ~one solve per unique frame. The
// benchmark reports the coalesced ratio — the fraction of served frames
// answered without fresh solver work (chain follows, cache hits,
// singleflight collapses) — and fails below -min-coalesce-ratio. With S
// streams the ideal ratio is (S-1)/S: every frame of every follower.
//
// Fairness: one greedy stream and four short streams (all with distinct
// specs, so no coalescing applies) run concurrently on a 2-slot scheduler;
// every short stream must complete while the greedy stream is still
// running, and the benchmark reports how far the greedy stream had
// advanced when the last short finished.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dispersal/internal/server"
	"dispersal/internal/site"
)

const (
	sessionSites = 16
	sessionK     = 8
)

// sessionStatsz is the slice of /statsz the benchmark asserts on.
type sessionStatsz struct {
	Sessions struct {
		Active    int   `json:"active"`
		Opened    int64 `json:"opened"`
		Coalesced int64 `json:"coalesced"`
		Rejected  int64 `json:"rejected"`
		Resumed   int64 `json:"resumed"`
	} `json:"sessions"`
	Solves   int64 `json:"solves"`
	Requests struct {
		TrajectoryFrames int64 `json:"trajectory_frames"`
	} `json:"requests"`
}

// sessionBody builds one trajectory request body over the standard drift
// model. k distinguishes streams that must not share cache entries.
func sessionBody(k, frames int, amp float64) string {
	base := site.Geometric(sessionSites, 1, 0.85)
	fr := make([][]float64, frames)
	for t := range fr {
		fr[t] = site.Drifted(base, t, amp)
	}
	req := map[string]any{
		"spec": map[string]any{
			"values": base,
			"k":      k,
			"policy": map[string]any{"name": "sharing"},
		},
		"frames": fr,
	}
	b, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// postSession POSTs one trajectory for a client and fully drains the NDJSON
// stream, returning the line count (frames + done). onAdmit, when non-nil,
// runs once the response headers arrive — the server sends them at
// admission, before the first solve, so this marks the stream entering the
// scheduler.
func postSession(ctx context.Context, url, body, client string, progress *atomic.Int64, onAdmit func()) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/trajectory", strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-Key", client)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if onAdmit != nil {
		onAdmit()
	}
	if resp.StatusCode != http.StatusOK {
		payload, _ := io.ReadAll(resp.Body)
		return 0, fmt.Errorf("trajectory stream for %s: status %d: %s", client, resp.StatusCode, payload)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		lines++
		if progress != nil {
			progress.Add(1)
		}
	}
	return lines, sc.Err()
}

func sessionStats(url string) (sessionStatsz, error) {
	var st sessionStatsz
	resp, err := http.Get(url + "/statsz")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return st, err
	}
	return st, json.Unmarshal(payload, &st)
}

func runSessionsBench(ctx context.Context, streams, frames int, minCoalesceRatio float64) error {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := server.New(server.Config{Workers: 2, Timeout: time.Minute})
	hs := &http.Server{Handler: srv}
	go hs.Serve(l)
	url := "http://" + l.Addr().String()
	defer func() {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutCtx)
		srv.Close()
	}()

	fmt.Printf("session bench: %d identical concurrent streams x %d frames @ %s\n", streams, frames, url)

	// Phase 1: coalescing. All streams byte-identical, distinct clients.
	body := sessionBody(sessionK, frames, 0.01)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lines, err := postSession(ctx, url, body, fmt.Sprintf("bench%d", i), nil, nil)
			if err == nil && lines != frames+1 {
				err = fmt.Errorf("stream %d delivered %d lines, want %d", i, lines, frames+1)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start)

	st, err := sessionStats(url)
	if err != nil {
		return fmt.Errorf("statsz: %w", err)
	}
	served := st.Requests.TrajectoryFrames
	if served != int64(streams*frames) {
		return fmt.Errorf("server served %d frames, want %d", served, streams*frames)
	}
	ratio := float64(st.Sessions.Coalesced) / float64(served)
	solvesPerFrame := float64(st.Solves) / float64(frames)
	fmt.Printf("  coalescing: %d frames served, %d solves (%.2f per unique frame), coalesced ratio %.3f in %s\n",
		served, st.Solves, solvesPerFrame, ratio, elapsed.Round(time.Millisecond))
	if minCoalesceRatio > 0 && ratio < minCoalesceRatio {
		return fmt.Errorf("coalesced ratio %.3f below the %.2f gate: identical concurrent streams are re-solving frames",
			ratio, minCoalesceRatio)
	}

	// Phase 2: fairness. Distinct specs (different player counts), one
	// greedy stream against four short ones on the same 2-slot scheduler.
	const shorts, shortFrames = 4, 8
	greedyFrames := 4 * frames
	var greedySeen atomic.Int64
	greedyErr := make(chan error, 1)
	go func() {
		lines, err := postSession(ctx, url, sessionBody(sessionK+1, greedyFrames, 0.01), "greedy", &greedySeen, nil)
		if err == nil && lines != greedyFrames+1 {
			err = fmt.Errorf("greedy stream delivered %d lines, want %d", lines, greedyFrames+1)
		}
		greedyErr <- err
	}()
	// Each short stream measures the greedy stream's progress between its
	// own admission and its completion — connection setup and the greedy
	// head start are not the scheduler's doing.
	advanced := make([]int64, shorts)
	sErrs := make([]error, shorts)
	wg = sync.WaitGroup{}
	for i := 0; i < shorts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var admitted int64
			_, err := postSession(ctx, url, sessionBody(sessionK+2+i, shortFrames, 0.01), fmt.Sprintf("short%d", i),
				nil, func() { admitted = greedySeen.Load() })
			advanced[i] = greedySeen.Load() - admitted
			sErrs[i] = err
		}(i)
	}
	wg.Wait()
	if err := <-greedyErr; err != nil {
		return err
	}
	for _, err := range sErrs {
		if err != nil {
			return err
		}
	}
	worst := int64(0)
	for _, g := range advanced {
		if g > worst {
			worst = g
		}
	}
	fmt.Printf("  fairness: greedy stream advanced at most %d of its %d frames while a short %d-frame stream ran\n",
		worst, greedyFrames, shortFrames)
	// Round-robin holds the greedy stream to ~one frame per short frame
	// (per scheduling round); half the greedy stream is an enormous margin
	// over those ~8 rounds, so crossing it means scheduling is effectively
	// run-to-completion (starvation), not round-robin.
	if worst >= int64(greedyFrames)/2 {
		return fmt.Errorf("short streams starved: greedy advanced %d frames during one short stream", worst)
	}
	fmt.Println("session bench: PASS")
	return nil
}
