package main

// The -trajectory benchmark: warm-start trajectory solving versus per-frame
// cold solves on a drifting landscape, the hot path of clients that
// re-query as site values drift (seasonal depletion, foraging pressure).

import (
	"context"
	"fmt"
	"math"
	"time"

	"dispersal"
	"dispersal/internal/ifd"
	"dispersal/internal/site"
	"dispersal/internal/spoa"
)

// The standard drifting-landscape workload: a 32-site geometric landscape,
// heavy competition (k = 48) under the sharing policy, and a ±1.5% smooth
// per-site oscillation (site.Drifted, the E24 drift model) that keeps every
// frame sorted.
const (
	trajectorySites = 32
	trajectoryK     = 48
	trajectoryAmp   = 0.015
)

// driftFrames builds the deterministic frame sequence of the benchmark.
func driftFrames(m, n int, amp float64) []dispersal.Values {
	base := site.Geometric(m, 1, 0.9)
	frames := make([]dispersal.Values, n)
	for t := range frames {
		frames[t] = dispersal.Values(site.Drifted(base, t, amp))
	}
	return frames
}

// runTrajectoryBench solves the same drifting sequence twice — cold, one
// fresh game per frame; warm, one Game.Trajectory chain — verifies the two
// agree to solver tolerance on every frame, and reports the speedup; then
// repeats the exercise for the full-analysis path (IFD plus SPoA per
// frame, the work one /v1/trajectory frame performs). A measured speedup
// below minSpeedup — or a full-analysis speedup below minSPoASpeedup — is
// an error (0 disables either check), so the benchmark doubles as a
// regression gate for the warm-start paths.
func runTrajectoryBench(ctx context.Context, frames int, minSpeedup, minSPoASpeedup float64) error {
	if frames < 2 {
		return fmt.Errorf("trajectory benchmark needs at least 2 frames, got %d", frames)
	}
	seq := driftFrames(trajectorySites, frames, trajectoryAmp)
	pol := dispersal.Sharing()
	fmt.Printf("trajectory benchmark: M=%d sites, k=%d players, %s policy, %d frames of ±%.1f%% drift\n\n",
		trajectorySites, trajectoryK, pol.Name(), frames, 100*trajectoryAmp)

	// Cold pass: every frame from scratch.
	coldNus := make([]float64, frames)
	coldPs := make([]dispersal.Strategy, frames)
	coldStart := time.Now()
	for i, f := range seq {
		g, err := dispersal.NewGame(f, trajectoryK, pol)
		if err != nil {
			return fmt.Errorf("frame %d: %w", i, err)
		}
		p, nu, err := g.IFDContext(ctx)
		if err != nil {
			return fmt.Errorf("cold frame %d: %w", i, err)
		}
		coldNus[i], coldPs[i] = nu, p
	}
	cold := time.Since(coldStart)

	// Warm pass: one chained trajectory.
	base, err := dispersal.NewGame(seq[0], trajectoryK, pol)
	if err != nil {
		return err
	}
	warmStart := time.Now()
	analyses, err := base.Trajectory(ctx, seq)
	if err != nil {
		return fmt.Errorf("warm trajectory: %w", err)
	}
	warm := time.Since(warmStart)

	// Equivalence check: the speedup must not have bought a different
	// answer.
	warmed := 0
	worstNu, worstP := 0.0, 0.0
	for i, a := range analyses {
		p, nu, err := a.IFD()
		if err != nil {
			return fmt.Errorf("warm frame %d: %w", i, err)
		}
		if d := math.Abs(nu-coldNus[i]) / (1 + math.Abs(coldNus[i])); d > worstNu {
			worstNu = d
		}
		if d := p.LInf(coldPs[i]); d > worstP {
			worstP = d
		}
		if a.Game().Warmed() {
			warmed++
		}
	}
	if worstNu > 1e-9 || worstP > 1e-6 {
		return fmt.Errorf("warm trajectory diverged from cold solves: |dnu| = %g, LInf(p) = %g", worstNu, worstP)
	}

	speedup := float64(cold) / float64(warm)
	fmt.Printf("cold: %d frames in %s (%s/frame)\n", frames, cold.Round(time.Millisecond), (cold / time.Duration(frames)).Round(time.Microsecond))
	fmt.Printf("warm: %d frames in %s (%s/frame), %d/%d warm-started\n", frames, warm.Round(time.Millisecond), (warm / time.Duration(frames)).Round(time.Microsecond), warmed, frames)
	fmt.Printf("warm-start speedup: %.2fx\n", speedup)
	fmt.Printf("equivalence: max |dnu|/(1+|nu|) = %.2g, max LInf(p) = %.2g across all frames\n", worstNu, worstP)
	if warmed < frames-2 {
		return fmt.Errorf("warm path engaged on only %d/%d frames", warmed, frames)
	}
	if minSpeedup > 0 && speedup < minSpeedup {
		return fmt.Errorf("warm-start speedup %.2fx is below the %.1fx target", speedup, minSpeedup)
	}
	fmt.Println()
	return runFullAnalysisBench(ctx, seq, minSPoASpeedup)
}

// runFullAnalysisBench measures the SPoA path: every frame computes the
// full analysis a /v1/trajectory frame serves (IFD plus SPoA, i.e. the
// equilibrium, the coverage optimum, and the SPoA's internal equilibrium
// re-solve). Cold runs the pre-warm-core pipeline — an independent
// equilibrium solve and a cold spoa.ComputeContext per frame, nothing
// shared. Warm chains evolved games, so the solver-core state threads the
// equilibrium across frames, the optimum across frames, and both into the
// SPoA's re-solve within each frame.
func runFullAnalysisBench(ctx context.Context, seq []dispersal.Values, minSpeedup float64) error {
	frames := len(seq)
	pol := dispersal.Sharing()
	fmt.Printf("full-analysis (SPoA path) benchmark: same %d frames, IFD + SPoA per frame\n\n", frames)

	type frameResult struct {
		nu   float64
		eq   dispersal.Strategy
		inst dispersal.SPoAInstance
	}

	// Cold pass: independent equilibrium and SPoA solves per frame.
	cold := make([]frameResult, frames)
	coldStart := time.Now()
	for i, f := range seq {
		eq, nu, err := ifd.SolveContext(ctx, f, trajectoryK, pol)
		if err != nil {
			return fmt.Errorf("cold frame %d: %w", i, err)
		}
		inst, err := spoa.ComputeContext(ctx, f, trajectoryK, pol)
		if err != nil {
			return fmt.Errorf("cold frame %d spoa: %w", i, err)
		}
		cold[i] = frameResult{nu: nu, eq: eq, inst: inst}
	}
	coldDur := time.Since(coldStart)

	// Warm pass: one evolution chain, each frame doing the same two
	// queries through the solver-core state.
	base, err := dispersal.NewGame(seq[0], trajectoryK, pol)
	if err != nil {
		return err
	}
	warmed := 0
	worstNu, worstP, worstRatio := 0.0, 0.0, 0.0
	cur := base
	warmStart := time.Now()
	for i, f := range seq {
		next, err := cur.EvolveTo(f)
		if err != nil {
			return fmt.Errorf("warm frame %d: %w", i, err)
		}
		a := next.Analyze()
		eq, nu, err := a.IFDContext(ctx)
		if err != nil {
			return fmt.Errorf("warm frame %d: %w", i, err)
		}
		inst, err := a.SPoAContext(ctx)
		if err != nil {
			return fmt.Errorf("warm frame %d spoa: %w", i, err)
		}
		if next.Warmed() {
			warmed++
		}
		if d := math.Abs(nu-cold[i].nu) / (1 + math.Abs(cold[i].nu)); d > worstNu {
			worstNu = d
		}
		if d := eq.LInf(cold[i].eq); d > worstP {
			worstP = d
		}
		if d := math.Abs(inst.Ratio-cold[i].inst.Ratio) / (1 + cold[i].inst.Ratio); d > worstRatio {
			worstRatio = d
		}
		cur = next
	}
	warmDur := time.Since(warmStart)

	if worstNu > 1e-9 || worstP > 1e-6 || worstRatio > 1e-9 {
		return fmt.Errorf("warm full analysis diverged from cold: |dnu| = %g, LInf(p) = %g, |dratio| = %g",
			worstNu, worstP, worstRatio)
	}
	speedup := float64(coldDur) / float64(warmDur)
	fmt.Printf("cold: %d frames in %s (%s/frame)\n", frames, coldDur.Round(time.Millisecond), (coldDur / time.Duration(frames)).Round(time.Microsecond))
	fmt.Printf("warm: %d frames in %s (%s/frame), %d/%d warm-started\n", frames, warmDur.Round(time.Millisecond), (warmDur / time.Duration(frames)).Round(time.Microsecond), warmed, frames)
	fmt.Printf("SPoA-path warm speedup: %.2fx\n", speedup)
	fmt.Printf("equivalence: max |dnu| = %.2g, max LInf(p) = %.2g, max |dratio| = %.2g\n", worstNu, worstP, worstRatio)
	if warmed < frames-2 {
		return fmt.Errorf("warm path engaged on only %d/%d full-analysis frames", warmed, frames)
	}
	if minSpeedup > 0 && speedup < minSpeedup {
		return fmt.Errorf("SPoA-path warm speedup %.2fx is below the %.1fx target", speedup, minSpeedup)
	}
	return nil
}
