package dispersal

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"dispersal/internal/site"
)

// cancelledCtx returns an already-cancelled context.
func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// TestSimulateContextCancellation: a cancelled Simulate returns ctx.Err()
// promptly instead of burning through the remaining rounds.
func TestSimulateContextCancellation(t *testing.T) {
	g := MustGame(site.Zipf(50, 1, 1), 8, Exclusive(), WithWorkers(2))
	p, _, err := g.IFD()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := g.SimulateContext(cancelledCtx(), p, 1000); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Simulate: err = %v, want context.Canceled", err)
	}

	// Mid-flight cancellation: a deadline far shorter than the full run.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = g.SimulateContext(ctx, p, 200_000_000) // hours of work uncancelled
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
}

func TestReplicatorContextCancellation(t *testing.T) {
	g := MustGame(site.Geometric(30, 1, 0.9), 6, Sharing())
	if _, err := g.ReplicatorContext(cancelledCtx(), uniformStrategy(30), ReplicatorOptions{Steps: 1_000_000, Tol: 1e-300}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := g.ReplicatorContext(ctx, uniformStrategy(30), ReplicatorOptions{Steps: 100_000_000, Tol: 1e-300})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
}

func uniformStrategy(m int) Strategy {
	p := make(Strategy, m)
	for i := range p {
		p[i] = 1 / float64(m)
	}
	return p
}

func TestLongRunningEntryPointsHonourCancelledContext(t *testing.T) {
	g := MustGame(site.Geometric(10, 1, 0.8), 4, Sharing())
	ctx := cancelledCtx()

	if _, _, err := g.MaxWelfareContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("MaxWelfareContext: %v", err)
	}
	if _, err := g.ESSAuditContext(ctx, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("ESSAuditContext: %v", err)
	}
	if _, err := g.SPoAContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("SPoAContext: %v", err)
	}
	if _, err := g.PureEquilibriaContext(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Errorf("PureEquilibriaContext: %v", err)
	}
	if _, err := g.DesignOptimalPolicyContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("DesignOptimalPolicyContext: %v", err)
	}
	if _, err := g.SimulateProfileContext(ctx, profileOf(g, 4), 1000); !errors.Is(err, context.Canceled) {
		t.Errorf("SimulateProfileContext: %v", err)
	}
}

func profileOf(g *Game, k int) []Strategy {
	p, _, err := g.IFD()
	if err != nil {
		panic(err)
	}
	out := make([]Strategy, k)
	for i := range out {
		out[i] = p
	}
	return out
}

// TestContextFormsAgreeWithBackgroundForms: the new context entry points
// with a background context must return what the legacy wrappers return
// (the wrappers delegate, so this pins the refactor). SPoA agrees to
// solver tolerance rather than bit-for-bit: the second computation
// warm-starts from the state the first one recorded on the game.
func TestContextFormsAgreeWithBackgroundForms(t *testing.T) {
	g := MustGame(site.Geometric(8, 1, 0.75), 3, TwoPoint(0.25))
	ctx := context.Background()

	inst1, err := g.SPoA()
	if err != nil {
		t.Fatal(err)
	}
	inst2, err := g.SPoAContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(inst1.Ratio-inst2.Ratio) / (1 + inst1.Ratio); d > 1e-9 {
		t.Fatalf("SPoA %v != SPoAContext %v (relative gap %g)", inst1.Ratio, inst2.Ratio, d)
	}

	sum1, err := g.PureEquilibria(0)
	if err != nil {
		t.Fatal(err)
	}
	sum2, err := g.PureEquilibriaContext(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum1.Equilibria != sum2.Equilibria {
		t.Fatalf("PureEquilibria %d != PureEquilibriaContext %d", sum1.Equilibria, sum2.Equilibria)
	}
}

func TestGameOptionsValidation(t *testing.T) {
	cases := []Option{WithWorkers(-1), WithTolerance(0), WithTolerance(-1), WithRestarts(-1), WithMutants(-2)}
	for i, opt := range cases {
		if _, err := NewGame(Values{1, 0.5}, 2, Exclusive(), opt); !errors.Is(err, ErrOption) {
			t.Errorf("case %d: err = %v, want ErrOption", i, err)
		}
	}
	g, err := NewGame(Values{1, 0.5}, 2, Exclusive(),
		WithWorkers(2), WithTolerance(1e-8), WithSeed(42), WithRestarts(3), WithMutants(10))
	if err != nil {
		t.Fatal(err)
	}
	if g.opt.workers != 2 || g.opt.tol != 1e-8 || g.opt.seed != 42 || g.opt.restarts != 3 || g.opt.mutants != 10 {
		t.Fatalf("options not applied: %+v", g.opt)
	}
}

// TestOptionSeedDrivesDeterminism: equal seeds give equal results, distinct
// seeds give distinct simulation streams.
func TestOptionSeedDrivesDeterminism(t *testing.T) {
	f := site.Geometric(10, 1, 0.8)
	mk := func(seed uint64) SimulationResult {
		g := MustGame(f, 4, Sharing(), WithSeed(seed))
		p, _, err := g.IFD()
		if err != nil {
			t.Fatal(err)
		}
		res, err := g.SimulateContext(context.Background(), p, 5000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b, c := mk(1), mk(1), mk(2)
	if a.Coverage.Mean != b.Coverage.Mean {
		t.Fatalf("same seed, different results: %v vs %v", a.Coverage.Mean, b.Coverage.Mean)
	}
	if a.Coverage.Mean == c.Coverage.Mean {
		t.Fatalf("different seeds, identical stream: %v", a.Coverage.Mean)
	}
}
