// Package dispersal is a Go implementation of the dispersal game of
//
//	Simon Collet and Amos Korman,
//	"Intense Competition can Drive Selfish Explorers to Optimize Coverage",
//	SPAA 2018 (arXiv:1805.01319),
//
// together with everything needed to reproduce the paper's results: Ideal
// Free Distribution solvers, the closed-form optimal strategy sigma*, ESS
// audits, Symmetric Price of Anarchy computation, a parallel Monte-Carlo
// game engine, evolutionary dynamics, and the Bayesian-search and
// grant-mechanism substrates the paper connects to.
//
// The central object is Game: M sites of values f(1) >= ... >= f(M) > 0,
// k players, and a congestion reward policy I(x, l) = f(x) * C(l).
//
//	g, err := dispersal.NewGame(dispersal.Values{1, 0.5}, 2, dispersal.Exclusive())
//	sigma, _ := g.IFD()          // the unique symmetric equilibrium
//	p, cover, _ := g.OptimalCoverage() // the best symmetric coverage
//	ratio, _ := g.SPoA()         // == 1 for the exclusive policy (Cor. 5)
//
// The headline results of the paper, in API form:
//   - Theorem 3: under Exclusive(), Game.ESSAudit reports no successful
//     invader of the IFD.
//   - Theorem 4: Game.IFD and Game.OptimalCoverage coincide under
//     Exclusive().
//   - Corollary 5: Game.SPoA returns 1 under Exclusive().
//   - Theorem 6: for any other congestion policy some Game has SPoA > 1
//     (see spoa.WorstCase via Game.SPoA on slow-decay values).
package dispersal

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"dispersal/internal/coverage"
	"dispersal/internal/dynamics"
	"dispersal/internal/ess"
	"dispersal/internal/game"
	"dispersal/internal/ifd"
	"dispersal/internal/optimize"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/solve"
	"dispersal/internal/spoa"
	"dispersal/internal/strategy"
)

// Re-exported core types. These aliases are the public names of the
// library's domain types; the implementations live in focused internal
// packages.
type (
	// Values is a site-value function f(1) >= ... >= f(M) > 0.
	Values = site.Values
	// Strategy is a mixed strategy (probability distribution) over sites.
	Strategy = strategy.Strategy
	// Congestion is a congestion function C(l) with C(1) = 1,
	// non-increasing.
	Congestion = policy.Congestion
	// SimulationResult aggregates Monte-Carlo statistics.
	SimulationResult = game.Result
	// ESSReport summarizes an uninvadability audit.
	ESSReport = ess.AuditReport
	// SPoAInstance is a priced game instance (equilibrium vs optimum).
	SPoAInstance = spoa.Instance
)

// Exclusive returns the paper's critical "Judgment of Solomon" policy:
// full reward alone, nothing under any collision.
func Exclusive() Congestion { return policy.Exclusive{} }

// Sharing returns the scramble-competition policy C(l) = 1/l.
func Sharing() Congestion { return policy.Sharing{} }

// Constant returns the congestion-free policy C == 1.
func Constant() Congestion { return policy.Constant{} }

// TwoPoint returns the Figure 1 family: C(1) = 1, C(l >= 2) = c2.
func TwoPoint(c2 float64) Congestion { return policy.TwoPoint{C2: c2} }

// PowerLaw returns C(l) = l^(-beta).
func PowerLaw(beta float64) Congestion { return policy.PowerLaw{Beta: beta} }

// Cooperative returns C(l) = gamma^(l-1) (each extra visitor costs a factor
// gamma < 1 — milder than equal sharing).
func Cooperative(gamma float64) Congestion { return policy.Cooperative{Gamma: gamma} }

// Aggressive returns C(1) = 1, C(l) = -penalty*(l-1): collisions injure.
func Aggressive(penalty float64) Congestion { return policy.Aggressive{Penalty: penalty} }

// Game is an instance of the dispersal game.
type Game struct {
	f   site.Values
	k   int
	c   policy.Congestion
	opt gameOptions

	// parent, when non-nil, is the game this one evolved from (Evolve /
	// EvolveTo): its most recent solver-core state seeds this game's first
	// solve through the warm-start path. The link is dropped once this
	// game records a solve of its own, so long evolution chains do not
	// retain every ancestor — descendants only ever need the nearest
	// solved game.
	parent atomic.Pointer[Game]
	// state accumulates this game's solver-core record (solve.State): the
	// equilibrium after an IFD solve, the coverage optimum and equilibrium
	// after a SPoA, the sigma* structure after an exclusive solve. Each
	// solver consumes the parts it can and merges its own back in, so
	// later solves on this game — and first solves on games evolved from
	// it — warm-start from everything already established.
	state atomic.Pointer[solve.State]
	// seed, when non-nil, is an externally provided solver-core state
	// (SeedState) — typically recovered from a warm cache keyed by
	// landscape locality — consumed by this game's own first solves.
	seed atomic.Pointer[solve.State]
}

// ErrNilPolicy is returned by NewGame when no congestion policy is given.
var ErrNilPolicy = errors.New("dispersal: nil congestion policy")

// NewGame validates and constructs a game. f must be sorted non-increasing
// and strictly positive, k >= 1, and c a valid congestion policy up to k.
// Functional options (WithWorkers, WithTolerance, WithSeed, WithRestarts,
// WithMutants) tune the game's solvers and simulators; omitted options keep
// the library defaults.
func NewGame(f Values, k int, c Congestion, opts ...Option) (*Game, error) {
	if c == nil {
		return nil, ErrNilPolicy
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("dispersal: player count k must be >= 1, got %d", k)
	}
	if err := policy.Validate(c, k); err != nil {
		return nil, err
	}
	o := defaultGameOptions()
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	return &Game{f: f.Clone(), k: k, c: c, opt: o}, nil
}

// MustGame is NewGame that panics on error; intended for examples and tests.
func MustGame(f Values, k int, c Congestion, opts ...Option) *Game {
	g, err := NewGame(f, k, c, opts...)
	if err != nil {
		panic(err)
	}
	return g
}

// Values returns a copy of the game's site values.
func (g *Game) Values() Values { return g.f.Clone() }

// Players returns k.
func (g *Game) Players() int { return g.k }

// Policy returns the game's congestion policy.
func (g *Game) Policy() Congestion { return g.c }

// String implements fmt.Stringer.
func (g *Game) String() string {
	return fmt.Sprintf("dispersal.Game{M=%d, k=%d, C=%s}", len(g.f), g.k, g.c.Name())
}

// IFD returns the game's Ideal Free Distribution — its unique symmetric
// Nash equilibrium (Observation 2) — and the common equilibrium payoff nu.
func (g *Game) IFD() (Strategy, float64, error) {
	return g.IFDContext(context.Background())
}

// IFDContext is IFD under a context: on non-exclusive policies the
// equilibrium search honors cancellation between its numeric steps, so a
// deadline stops the solve on large games. (The exclusive policy's IFD is
// closed form and returns promptly regardless.)
//
// A game built by Evolve or EvolveTo warm-starts its first solve from the
// nearest solved ancestor in its evolution chain; a game built directly by
// NewGame always solves cold. Either way the result matches a cold solve
// within the solver tolerance, and every successful solve is recorded so
// games evolved from this one can warm-start in turn.
func (g *Game) IFDContext(ctx context.Context) (Strategy, float64, error) {
	seed := g.warmSeed()
	if policy.IsExclusive(g.c, g.k) {
		// Closed form — but its support boundary W is trackable: seeded
		// from a nearby solve's sigma* structure, the boundary walk costs
		// O(drift) instead of the cold scan's O(W^2).
		p, res, warmed, err := ifd.ExclusiveWarm(seed, g.f, g.k)
		if err != nil {
			return nil, 0, err
		}
		g.storeState(solve.New(g.f, g.k, g.c).
			WithSigma(res.W, res.Alpha, res.Nu).
			WithEq(p, res.Nu, warmed))
		g.retainSeed(seed)
		g.parent.Store(nil)
		return p, res.Nu, nil
	}
	p, nu, st, err := ifd.SolveWarm(ctx, seed, g.f, g.k, g.c)
	if err != nil {
		return nil, 0, err
	}
	g.storeState(st)
	// This game now carries its own state; descendants seed from it
	// directly, so release the ancestor chain for the GC — but keep the
	// consumed seed itself: it may carry parts this solve did not produce
	// (the previous frame's coverage optimum, sigma* structure) that a
	// later SPoA or sigma* query on this game still wants to seed from.
	g.retainSeed(seed)
	g.parent.Store(nil)
	return p, nu, nil
}

// retainSeed parks the state a solve consumed in the external-seed slot, so
// derived solves can still reach its remaining parts after the ancestor
// chain is released. Memory stays bounded: one state per game, and the
// ancestor Game objects themselves are freed.
func (g *Game) retainSeed(seed *solve.State) {
	if seed != nil {
		g.seed.Store(seed)
	}
}

// storeState merges st into the game's accumulated solver-core state, so
// parts recorded by different solvers (equilibrium, coverage optimum,
// sigma* structure) survive each other.
func (g *Game) storeState(st *solve.State) {
	for {
		cur := g.state.Load()
		if g.state.CompareAndSwap(cur, solve.Merge(st, cur)) {
			return
		}
	}
}

// warmSeed returns the state seeding this game's own equilibrium solve:
// the nearest state up the evolution chain that carries an equilibrium (or
// sigma*) part — the previous frame of a trajectory, whose drift is
// smallest — else an explicit SeedState record from a warm cache. The
// game's own record is deliberately excluded — a game built directly by
// NewGame keeps solving cold, so repeated Game.IFD calls stay bit-for-bit
// deterministic; only evolved or explicitly seeded games inherit state.
func (g *Game) warmSeed() *solve.State {
	for cur := g.parent.Load(); cur != nil; cur = cur.parent.Load() {
		if st := cur.state.Load(); st.HasEq() || st.HasSigma() {
			return st
		}
	}
	return g.seed.Load()
}

// inheritedState returns the nearest state this game did not record
// itself: the evolution chain's, else the retained/external seed. It is
// the secondary seed of derived solves — the place a previous frame's
// optimum or sigma* part lives after this game's own solves recorded only
// an equilibrium.
func (g *Game) inheritedState() *solve.State {
	for cur := g.parent.Load(); cur != nil; cur = cur.parent.Load() {
		if st := cur.state.Load(); st != nil {
			return st
		}
	}
	return g.seed.Load()
}

// Warmed reports whether this game's most recent equilibrium solve took the
// warm-start path (false before any solve, after a cold solve, or after a
// bracket-failure fallback).
func (g *Game) Warmed() bool { return g.state.Load().Warmed() }

// SeedWarm records an externally known equilibrium of this game — typically
// one recovered from a result cache — so that games evolved from it can
// warm-start without this game ever solving locally. p must be the game's
// equilibrium strategy and nu its equilibrium value; a wrong seed cannot
// corrupt later solves (warm brackets are verified and fall back cold), it
// can only waste the warm attempt.
func (g *Game) SeedWarm(p Strategy, nu float64) {
	g.storeState(ifd.NewWarmState(g.f, g.k, g.c, p, nu))
	g.parent.Store(nil) // descendants seed from this state directly
}

// SeedState hands the game a solver-core state from a previous solve of a
// nearby landscape — typically recovered from a locality-keyed warm cache —
// so that this game's own first solves (IFD, SPoA, sigma*) warm-start from
// it. Unlike SeedWarm, the state need not describe this game's exact
// landscape: every warm path verifies its bracket against the actual
// landscape and falls back to a cold solve, so a stale or distant seed can
// waste the warm attempt but never change a result beyond solver
// tolerance. A nil st is ignored.
func (g *Game) SeedState(st *solve.State) {
	if st == nil {
		return
	}
	g.seed.Store(st)
}

// StateSnapshot returns the game's accumulated solver-core state: the
// equilibrium, coverage-optimum and sigma* parts recorded by the solves
// performed so far (nil before any solve). The state is immutable and safe
// to share — hand it to another game's SeedState, or to a warm cache, to
// propagate this game's work.
func (g *Game) StateSnapshot() *solve.State { return g.state.Load() }

// SigmaStar returns the closed-form IFD of the exclusive policy on this
// game's values (regardless of the game's own policy), with its support
// size W and normalization alpha. This is the paper's Algorithm sigma*.
// The support boundary is tracked incrementally from the game's accumulated
// state (or its evolution chain) when possible; the first solve on a fresh
// game runs the cold closed form.
func (g *Game) SigmaStar() (Strategy, int, float64, error) {
	p, res, _, err := ifd.ExclusiveWarm(g.sigmaSeed(), g.f, g.k)
	if err != nil {
		return nil, 0, 0, err
	}
	g.storeState(solve.New(g.f, g.k, g.c).WithSigma(res.W, res.Alpha, res.Nu))
	return p, res.W, res.Alpha, nil
}

// sigmaSeed returns the nearest state carrying a sigma* part: the game's
// own, the evolution chain's, or an explicit SeedState record.
func (g *Game) sigmaSeed() *solve.State {
	if st := g.state.Load(); st.HasSigma() {
		return st
	}
	for cur := g.parent.Load(); cur != nil; cur = cur.parent.Load() {
		if st := cur.state.Load(); st.HasSigma() {
			return st
		}
	}
	if st := g.seed.Load(); st.HasSigma() {
		return st
	}
	return nil
}

// Coverage returns Cover(p) = sum_x f(x) (1 - (1-p(x))^k) for this game.
func (g *Game) Coverage(p Strategy) (float64, error) {
	return coverage.CoverChecked(g.f, p, g.k)
}

// OptimalCoverage returns the symmetric strategy maximizing coverage and
// its coverage value. By Theorem 4 this equals SigmaStar.
func (g *Game) OptimalCoverage() (Strategy, float64, error) {
	p, _, err := optimize.MaxCoverage(g.f, g.k)
	if err != nil {
		return nil, 0, err
	}
	return p, coverage.Cover(g.f, p, g.k), nil
}

// ExpectedPayoff returns the expected payoff of a focal player using rho
// while all other players use p.
func (g *Game) ExpectedPayoff(rho, p Strategy) (float64, error) {
	if len(rho) != len(g.f) || len(p) != len(g.f) {
		return 0, coverage.ErrDim
	}
	return coverage.ExpectedPayoff(g.f, rho, p, g.k, g.c), nil
}

// Welfare returns the symmetric individual welfare sum_x p(x) nu_p(x).
func (g *Game) Welfare(p Strategy) (float64, error) {
	return g.ExpectedPayoff(p, p)
}

// MaxWelfareContext returns the symmetric strategy maximizing Welfare and
// its value (the "Welfare Optimum" curve of Figure 1). The number of random
// restarts and their seed come from the game's WithRestarts and WithSeed
// options; ctx cancels the multi-start search between (and inside) ascents.
//
// The multi-start search is threaded through the game's solver-core state
// like every other solver: the accumulated equilibrium and coverage-optimum
// parts (from this game's own solves, its evolution chain, or a SeedState
// record) become start points, replacing the search's internal cold IFD
// solve. On a game with no state the search is exactly the cold one; on a
// game whose IFD this process already solved, the seeded start is that
// exact equilibrium, so the result is unchanged and the redundant solve is
// gone.
func (g *Game) MaxWelfareContext(ctx context.Context) (Strategy, float64, error) {
	prev := solve.Merge(g.state.Load(), g.inheritedState())
	p, v, _, err := optimize.MaxWelfareWarm(ctx, prev, g.f, g.k, g.c, g.opt.restarts, g.opt.seed)
	return p, v, err
}

// MaxWelfare returns the symmetric strategy maximizing Welfare and its
// value.
//
// Deprecated: the positional seed overrides the game's WithSeed option and
// the restart count is fixed at the old hard-coded 8. Use
// MaxWelfareContext with WithRestarts/WithSeed instead.
func (g *Game) MaxWelfare(seed uint64) (Strategy, float64, error) {
	return optimize.MaxWelfare(g.f, g.k, g.c, 8, seed)
}

// SPoA returns the Symmetric Price of Anarchy of this game: the ratio of
// the optimal symmetric coverage to the coverage of the worst symmetric
// equilibrium under the game's policy.
func (g *Game) SPoA() (SPoAInstance, error) {
	return g.SPoAContext(context.Background())
}

// SPoAContext is SPoA under a context. The computation is threaded through
// the game's solver-core state: its internal equilibrium and optimum solves
// warm-start from the game's accumulated state (an earlier IFD solve, a
// SPoA on an ancestor in the evolution chain, or a SeedState record), and
// the combined state is recorded for later solves and descendants. Results
// match a cold computation within the solvers' shared tolerance.
func (g *Game) SPoAContext(ctx context.Context) (SPoAInstance, error) {
	// The game's own state is the primary seed (its equilibrium is this
	// exact landscape's — nearly free to re-verify); the inherited state
	// supplies whatever parts the own solves have not produced, typically
	// the previous frame's coverage optimum.
	inherited := g.inheritedState()
	inst, st, err := spoa.ComputeWarm(ctx, g.state.Load(), g.f, g.k, g.c, inherited)
	if err != nil {
		return SPoAInstance{}, err
	}
	g.storeState(st)
	g.retainSeed(inherited)
	g.parent.Store(nil)
	return inst, nil
}

// ESSAuditContext tests the game's IFD against the provided mutants
// (Section 1.4 characterization). Pass nil to use an automatically generated
// panel of structured plus random mutants; the random-panel size and seed
// come from the game's WithMutants and WithSeed options, and ties are broken
// at the WithTolerance tolerance. ctx cancels the audit between mutants.
func (g *Game) ESSAuditContext(ctx context.Context, mutants []Strategy) (ESSReport, error) {
	resident, _, err := g.IFD()
	if err != nil {
		return ESSReport{}, err
	}
	if mutants == nil {
		mutants = ess.MutantFamily(newRand(g.opt.seed), resident, g.f, g.opt.mutants)
	}
	return ess.AuditContext(ctx, g.f, g.c, g.k, resident, mutants, g.opt.tol)
}

// ESSAudit tests the game's IFD against the provided mutants; pass nil to
// use an automatically generated panel of nMutants random plus structured
// mutants.
//
// Deprecated: the positional nMutants and seed override the game's
// WithMutants and WithSeed options. Use ESSAuditContext instead.
func (g *Game) ESSAudit(mutants []Strategy, nMutants int, seed uint64) (ESSReport, error) {
	resident, _, err := g.IFD()
	if err != nil {
		return ESSReport{}, err
	}
	if mutants == nil {
		mutants = ess.MutantFamily(newRand(seed), resident, g.f, nMutants)
	}
	return ess.Audit(g.f, g.c, g.k, resident, mutants, 1e-9)
}

// SimulateContext runs the parallel Monte-Carlo engine for rounds one-shot
// games with every player using p. The worker-pool size and the
// deterministic seed come from the game's WithWorkers and WithSeed options;
// a cancelled or expired ctx stops the workers promptly and returns
// ctx.Err().
func (g *Game) SimulateContext(ctx context.Context, p Strategy, rounds int) (SimulationResult, error) {
	return game.SimulateContext(ctx, game.Config{
		F: g.f, K: g.k, C: g.c, Rounds: rounds,
		Workers: g.opt.workers, Seed: g.opt.seed,
	}, p)
}

// Simulate runs the parallel Monte-Carlo engine for rounds one-shot games
// with every player using p. The explicit seed overrides the game's
// WithSeed option.
func (g *Game) Simulate(p Strategy, rounds int, seed uint64) (SimulationResult, error) {
	return game.Simulate(game.Config{
		F: g.f, K: g.k, C: g.c, Rounds: rounds,
		Workers: g.opt.workers, Seed: seed,
	}, p)
}

// SimulateProfileContext runs the engine with per-player strategies under a
// context, with workers and seed from the game's options.
func (g *Game) SimulateProfileContext(ctx context.Context, profile []Strategy, rounds int) (SimulationResult, error) {
	return game.SimulateProfileContext(ctx, game.Config{
		F: g.f, K: g.k, C: g.c, Rounds: rounds,
		Workers: g.opt.workers, Seed: g.opt.seed,
	}, profile)
}

// SimulateProfile runs the engine with per-player strategies. The explicit
// seed overrides the game's WithSeed option.
func (g *Game) SimulateProfile(profile []Strategy, rounds int, seed uint64) (SimulationResult, error) {
	return game.SimulateProfile(game.Config{
		F: g.f, K: g.k, C: g.c, Rounds: rounds,
		Workers: g.opt.workers, Seed: seed,
	}, profile)
}

// ReplicatorContext integrates replicator dynamics from init under a
// context and returns the final state; a cancelled ctx stops the
// integration promptly.
func (g *Game) ReplicatorContext(ctx context.Context, init Strategy, opts dynamics.ReplicatorOptions) (dynamics.ReplicatorResult, error) {
	return dynamics.ReplicatorContext(ctx, g.f, g.k, g.c, init, opts)
}

// Replicator integrates replicator dynamics from init and returns the final
// state; with defaultOpts (zero value) it runs until drift vanishes.
func (g *Game) Replicator(init Strategy, opts dynamics.ReplicatorOptions) (dynamics.ReplicatorResult, error) {
	return dynamics.Replicator(g.f, g.k, g.c, init, opts)
}

// ReplicatorOptions re-exports the dynamics options type for callers of
// Game.Replicator.
type ReplicatorOptions = dynamics.ReplicatorOptions
