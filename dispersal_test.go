package dispersal

import (
	"errors"
	"math"
	"strings"
	"testing"

	"dispersal/internal/site"
)

func TestNewGameValidation(t *testing.T) {
	if _, err := NewGame(Values{1, 0.5}, 2, nil); !errors.Is(err, ErrNilPolicy) {
		t.Errorf("nil policy: %v", err)
	}
	if _, err := NewGame(Values{0.5, 1}, 2, Exclusive()); err == nil {
		t.Error("unsorted values accepted")
	}
	if _, err := NewGame(Values{1, 0.5}, 0, Exclusive()); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewGame(nil, 2, Exclusive()); err == nil {
		t.Error("nil values accepted")
	}
	g, err := NewGame(Values{1, 0.5}, 2, Exclusive())
	if err != nil {
		t.Fatal(err)
	}
	if g.Players() != 2 || len(g.Values()) != 2 {
		t.Errorf("game metadata: %v", g)
	}
}

func TestMustGamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGame did not panic on invalid input")
		}
	}()
	MustGame(nil, 2, Exclusive())
}

func TestGameIsDefensivelyCopied(t *testing.T) {
	f := Values{1, 0.5}
	g := MustGame(f, 2, Exclusive())
	f[0] = 99
	if g.Values()[0] != 1 {
		t.Error("game aliases the caller's value slice")
	}
	v := g.Values()
	v[0] = 77
	if g.Values()[0] != 1 {
		t.Error("Values() exposes internal state")
	}
}

func TestGameString(t *testing.T) {
	g := MustGame(Values{1, 0.5}, 3, Sharing())
	s := g.String()
	if !strings.Contains(s, "M=2") || !strings.Contains(s, "k=3") || !strings.Contains(s, "sharing") {
		t.Errorf("String() = %q", s)
	}
}

func TestTheoremsEndToEnd(t *testing.T) {
	// The paper's four main results through the public API only.
	g := MustGame(site.SlowDecay(12, 3), 3, Exclusive())

	// Theorem 4 / Corollary 5: IFD == optimal coverage, SPoA == 1.
	eq, nu, err := g.IFD()
	if err != nil {
		t.Fatal(err)
	}
	if nu <= 0 {
		t.Errorf("nu = %v", nu)
	}
	opt, optCover, err := g.OptimalCoverage()
	if err != nil {
		t.Fatal(err)
	}
	if d := eq.LInf(opt); d > 1e-9 {
		t.Errorf("Theorem 4 violated through facade: IFD vs optimum differ by %v", d)
	}
	inst, err := g.SPoA()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inst.Ratio-1) > 1e-6 {
		t.Errorf("Corollary 5: SPoA = %v", inst.Ratio)
	}
	eqCover, err := g.Coverage(eq)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eqCover-optCover) > 1e-9 {
		t.Errorf("coverages differ: %v vs %v", eqCover, optCover)
	}

	// Theorem 3: the IFD is uninvadable.
	rep, err := g.ESSAudit(nil, 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures > 0 {
		t.Errorf("Theorem 3: %d mutants invade (%s)", rep.Failures, rep.FirstFailureReason)
	}

	// Theorem 6: sharing on the same values has SPoA > 1.
	gs := MustGame(g.Values(), 3, Sharing())
	instS, err := gs.SPoA()
	if err != nil {
		t.Fatal(err)
	}
	if instS.Ratio <= 1 {
		t.Errorf("Theorem 6: sharing SPoA = %v", instS.Ratio)
	}
}

func TestSigmaStarAccessors(t *testing.T) {
	g := MustGame(Values{1, 0.3}, 2, Sharing()) // policy irrelevant to SigmaStar
	p, w, alpha, err := g.SigmaStar()
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 {
		t.Errorf("W = %d", w)
	}
	if math.Abs(alpha-0.3/1.3) > 1e-12 {
		t.Errorf("alpha = %v", alpha)
	}
	if math.Abs(p[0]-(1-alpha)) > 1e-12 {
		t.Errorf("p = %v", p)
	}
}

func TestPolicyConstructors(t *testing.T) {
	cases := []struct {
		c    Congestion
		l    int
		want float64
	}{
		{Exclusive(), 2, 0},
		{Sharing(), 4, 0.25},
		{Constant(), 9, 1},
		{TwoPoint(-0.3), 5, -0.3},
		{PowerLaw(2), 2, 0.25},
		{Cooperative(0.5), 3, 0.25},
		{Aggressive(1), 3, -2},
	}
	for _, c := range cases {
		if got := c.c.At(c.l); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s.At(%d) = %v, want %v", c.c.Name(), c.l, got, c.want)
		}
		if c.c.At(1) != 1 {
			t.Errorf("%s.At(1) != 1", c.c.Name())
		}
	}
}

func TestWelfareAndMaxWelfare(t *testing.T) {
	g := MustGame(Values{1, 0.5}, 2, Exclusive())
	p, v, err := g.MaxWelfare(1)
	if err != nil {
		t.Fatal(err)
	}
	// Closed form: max of q(1-q)(1+0.5) at q = 1/2.
	if math.Abs(v-0.375) > 1e-9 {
		t.Errorf("max welfare = %v, want 0.375", v)
	}
	w, err := g.Welfare(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-v) > 1e-12 {
		t.Errorf("Welfare(argmax) = %v != %v", w, v)
	}
}

func TestExpectedPayoffDimCheck(t *testing.T) {
	g := MustGame(Values{1, 0.5}, 2, Exclusive())
	if _, err := g.ExpectedPayoff(Strategy{1}, Strategy{0.5, 0.5}); err == nil {
		t.Error("dim mismatch accepted")
	}
}

func TestSimulateThroughFacade(t *testing.T) {
	g := MustGame(Values{1, 0.5}, 2, Exclusive())
	eq, nu, err := g.IFD()
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Simulate(eq, 100_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Payoff.Mean-nu) > 4*res.Payoff.CI95+1e-9 {
		t.Errorf("simulated payoff %v vs nu %v", res.Payoff.Mean, nu)
	}
	// Asymmetric profile.
	res2, err := g.SimulateProfile([]Strategy{{1, 0}, {0, 1}}, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Coverage.Mean != 1.5 {
		t.Errorf("disjoint profile coverage = %v", res2.Coverage.Mean)
	}
}

func TestReplicatorThroughFacade(t *testing.T) {
	g := MustGame(Values{1, 0.3}, 2, Exclusive())
	eq, _, err := g.IFD()
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Replicator(Strategy{0.5, 0.5}, ReplicatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Final.TV(eq); d > 1e-6 {
		t.Errorf("replicator end state off the IFD by %v", d)
	}
}

func TestIFDGeneralPolicyThroughFacade(t *testing.T) {
	g := MustGame(Values{1, 0.8}, 2, Sharing())
	eq, _, err := g.IFD()
	if err != nil {
		t.Fatal(err)
	}
	// Hand-computed interior equilibrium (see ifd tests): p1 = 2/3.
	if math.Abs(eq[0]-2.0/3) > 1e-6 {
		t.Errorf("sharing IFD = %v, want p1=2/3", eq)
	}
}
