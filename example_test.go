package dispersal_test

import (
	"fmt"

	"dispersal"
)

// The two-site, two-player game of Figure 1's left panel under the
// exclusive policy: the equilibrium is the coverage optimum.
func ExampleNewGame() {
	g, err := dispersal.NewGame(dispersal.Values{1, 0.3}, 2, dispersal.Exclusive())
	if err != nil {
		panic(err)
	}
	fmt.Println(g)
	// Output:
	// dispersal.Game{M=2, k=2, C=exclusive}
}

func ExampleGame_IFD() {
	g := dispersal.MustGame(dispersal.Values{1, 0.3}, 2, dispersal.Exclusive())
	sigma, nu, _ := g.IFD()
	fmt.Printf("sigma* = [%.4f %.4f], nu = %.4f\n", sigma[0], sigma[1], nu)
	// Output:
	// sigma* = [0.7692 0.2308], nu = 0.2308
}

func ExampleGame_SPoA() {
	f := dispersal.Values{1, 0.95, 0.9, 0.85, 0.8, 0.75}
	exclusive := dispersal.MustGame(f, 3, dispersal.Exclusive())
	sharing := dispersal.MustGame(f, 3, dispersal.Sharing())

	a, _ := exclusive.SPoA()
	b, _ := sharing.SPoA()
	fmt.Printf("exclusive: %.4f\n", a.Ratio)
	fmt.Printf("sharing:   %.4f (> 1)\n", b.Ratio)
	// Output:
	// exclusive: 1.0000
	// sharing:   1.0162 (> 1)
}

func ExampleGame_OptimalCoverage() {
	g := dispersal.MustGame(dispersal.Values{1, 0.3}, 2, dispersal.Exclusive())
	p, cover, _ := g.OptimalCoverage()
	sigma, _, _ := g.IFD()
	fmt.Printf("optimum = [%.4f %.4f], coverage %.4f\n", p[0], p[1], cover)
	fmt.Printf("equals the equilibrium (Theorem 4): %v\n", sigma.LInf(p) < 1e-9)
	// Output:
	// optimum = [0.7692 0.2308], coverage 1.0692
	// equals the equilibrium (Theorem 4): true
}

func ExampleGame_ESSAudit() {
	g := dispersal.MustGame(dispersal.Values{1, 0.5, 0.25}, 3, dispersal.Exclusive())
	rep, _ := g.ESSAudit(nil, 40, 7)
	fmt.Printf("mutants defeated: %v (invasions: %d)\n", rep.Failures == 0, rep.Failures)
	// Output:
	// mutants defeated: true (invasions: 0)
}

func ExampleGame_PureEquilibria() {
	g := dispersal.MustGame(dispersal.Values{1, 0.8, 0.6}, 2, dispersal.Exclusive())
	sum, _ := g.PureEquilibria(0)
	fmt.Printf("pure equilibria: %d, coverage %.1f\n", sum.Equilibria, sum.BestCoverage)
	// Output:
	// pure equilibria: 2, coverage 1.8
}
