package dispersal_test

import (
	"context"
	"fmt"

	"dispersal"
)

// The two-site, two-player game of Figure 1's left panel under the
// exclusive policy: the equilibrium is the coverage optimum.
func ExampleNewGame() {
	g, err := dispersal.NewGame(dispersal.Values{1, 0.3}, 2, dispersal.Exclusive())
	if err != nil {
		panic(err)
	}
	fmt.Println(g)
	// Output:
	// dispersal.Game{M=2, k=2, C=exclusive}
}

func ExampleGame_IFD() {
	g := dispersal.MustGame(dispersal.Values{1, 0.3}, 2, dispersal.Exclusive())
	sigma, nu, _ := g.IFD()
	fmt.Printf("sigma* = [%.4f %.4f], nu = %.4f\n", sigma[0], sigma[1], nu)
	// Output:
	// sigma* = [0.7692 0.2308], nu = 0.2308
}

func ExampleGame_SPoA() {
	f := dispersal.Values{1, 0.95, 0.9, 0.85, 0.8, 0.75}
	exclusive := dispersal.MustGame(f, 3, dispersal.Exclusive())
	sharing := dispersal.MustGame(f, 3, dispersal.Sharing())

	a, _ := exclusive.SPoA()
	b, _ := sharing.SPoA()
	fmt.Printf("exclusive: %.4f\n", a.Ratio)
	fmt.Printf("sharing:   %.4f (> 1)\n", b.Ratio)
	// Output:
	// exclusive: 1.0000
	// sharing:   1.0162 (> 1)
}

func ExampleGame_OptimalCoverage() {
	g := dispersal.MustGame(dispersal.Values{1, 0.3}, 2, dispersal.Exclusive())
	p, cover, _ := g.OptimalCoverage()
	sigma, _, _ := g.IFD()
	fmt.Printf("optimum = [%.4f %.4f], coverage %.4f\n", p[0], p[1], cover)
	fmt.Printf("equals the equilibrium (Theorem 4): %v\n", sigma.LInf(p) < 1e-9)
	// Output:
	// optimum = [0.7692 0.2308], coverage 1.0692
	// equals the equilibrium (Theorem 4): true
}

func ExampleGame_ESSAuditContext() {
	g := dispersal.MustGame(dispersal.Values{1, 0.5, 0.25}, 3, dispersal.Exclusive(),
		dispersal.WithMutants(40), dispersal.WithSeed(7))
	rep, _ := g.ESSAuditContext(context.Background(), nil)
	fmt.Printf("mutants defeated: %v (invasions: %d)\n", rep.Failures == 0, rep.Failures)
	// Output:
	// mutants defeated: true (invasions: 0)
}

// Analyze opens a memoizing session: each quantity is solved once, however
// many times (and from however many goroutines) it is queried.
func ExampleGame_Analyze() {
	g := dispersal.MustGame(dispersal.Values{1, 0.6, 0.3}, 4, dispersal.Sharing())
	a := g.Analyze()

	_, nu, _ := a.IFD() // solves
	a.IFD()             // cached
	inst, _ := a.SPoA() // one more solve
	a.Ratio()           // cached, shares the SPoA cell

	fmt.Printf("nu = %.4f, SPoA = %.4f, solver runs = %d\n", nu, inst.Ratio, a.Solves())
	// Output:
	// nu = 0.3660, SPoA = 1.0784, solver runs = 2
}

// Sweep evaluates a batch of game specs across a bounded worker pool; each
// item gets its own memoizing Analysis.
func ExampleSweep() {
	specs := []dispersal.Spec{
		{Values: dispersal.Values{1, 0.3}, K: 2, Policy: dispersal.TwoPoint(-0.25), Tag: "c=-0.25"},
		{Values: dispersal.Values{1, 0.3}, K: 2, Policy: dispersal.Exclusive(), Tag: "c=0"},
		{Values: dispersal.Values{1, 0.3}, K: 2, Policy: dispersal.TwoPoint(0.25), Tag: "c=+0.25"},
	}
	results, err := dispersal.Sweep(context.Background(), specs,
		func(ctx context.Context, a *dispersal.Analysis) (float64, error) {
			inst, err := a.SPoAContext(ctx)
			return inst.Ratio, err
		},
		dispersal.WithWorkers(2))
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("%s: SPoA %.4f\n", r.Tag, r.Value)
	}
	// Output:
	// c=-0.25: SPoA 1.0143
	// c=0: SPoA 1.0000
	// c=+0.25: SPoA 1.0408
}

// Evolve chains games over a drifting landscape: the evolved game's first
// equilibrium solve warm-starts from its parent's solution.
func ExampleGame_Evolve() {
	g := dispersal.MustGame(dispersal.Values{1, 0.8, 0.6, 0.4}, 6, dispersal.Sharing())
	_, nu0, _ := g.IFD() // cold solve, recorded for the children

	g2, _ := g.Evolve(dispersal.Values{0.02, -0.01, 0.01, -0.005})
	_, nu1, _ := g2.IFD() // warm-started from g's solution

	fmt.Printf("nu drifted %.4f -> %.4f (warm-started: %v)\n", nu0, nu1, g2.Warmed())
	// Output:
	// nu drifted 0.3685 -> 0.3698 (warm-started: true)
}

func ExampleGame_PureEquilibria() {
	g := dispersal.MustGame(dispersal.Values{1, 0.8, 0.6}, 2, dispersal.Exclusive())
	sum, _ := g.PureEquilibria(0)
	fmt.Printf("pure equilibria: %d, coverage %.1f\n", sum.Equilibria, sum.BestCoverage)
	// Output:
	// pure equilibria: 2, coverage 1.8
}
