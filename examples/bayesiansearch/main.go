// Bayesian search: the connection to parallel search without coordination
// (Section 2.1 of the paper; Korman-Rodeh SIROCCO 2017).
//
// A treasure is hidden in one of M boxes according to a known prior; k
// searchers, unable to coordinate, each open one box per round. The paper
// notes that sigma* — the optimal dispersal strategy — is exactly round one
// of the A* search algorithm. This example checks the identity and races
// sigma*-based search against baselines.
//
// Run with: go run ./examples/bayesiansearch
package main

import (
	"fmt"
	"log"
	"os"

	"dispersal/internal/ifd"
	"dispersal/internal/search"
	"dispersal/internal/site"
	"dispersal/internal/table"
)

func main() {
	prior := site.Zipf(25, 1, 1) // Zipfian prior over 25 boxes
	const k = 4

	// The identity: round 1 of the search algorithm == sigma*.
	round1, err := search.RoundOneDistribution(prior, k)
	if err != nil {
		log.Fatal(err)
	}
	sigma, res, err := ifd.Exclusive(prior, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("boxes: %d, searchers: %d\n", len(prior), k)
	fmt.Printf("sigma* support: boxes 1..%d; round-1 law == sigma*: %v\n\n",
		res.W, round1.LInf(sigma) == 0)

	tb := table.New("algorithm", "mean rounds to find", "95% CI", "vs coordinated")
	var coordMean float64
	algos := []search.Algorithm{
		search.StrategyCoordinated,
		search.StrategyAStar,
		search.StrategyPrior,
		search.StrategyUniform,
		search.StrategyGreedy,
	}
	for _, a := range algos {
		r, err := search.Run(search.Config{
			Prior: prior, K: k, Algorithm: a, Trials: 30_000, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		if a == search.StrategyCoordinated {
			coordMean = r.Time.Mean
		}
		tb.AddRowf(a.String(), r.Time.Mean, r.Time.CI95, fmt.Sprintf("%.2fx", r.Time.Mean/coordMean))
	}
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncoordinated search is the (unreachable) lower bound; greedy searchers")
	fmt.Println("all collide on the best boxes and uniform ones ignore the prior.")
	fmt.Println("note: only round 1 of the true A* is specified by the paper (== sigma*);")
	fmt.Println("the multi-round extension here re-applies sigma* myopically to each")
	fmt.Println("searcher's residual prior, which is not the full A* schedule — on")
	fmt.Println("fat-tailed priors it can trail simple prior-sampling in later rounds.")
}
