// Depletion: repeated foraging over regrowing patches (the "other forms of
// repetition" left open in Section 5.1 of the paper).
//
// Patches lose their stock when visited and recover a fraction r of the
// deficit between bouts. Species re-equilibrate on the current stocks every
// bout. In steady state the harvest equals the regrowth inflow, so the
// policy that covers the current stocks best — the exclusive policy, by
// Theorem 4 — sustains the highest long-run harvest.
//
// Run with: go run ./examples/depletion
package main

import (
	"fmt"
	"log"
	"os"

	"dispersal/internal/policy"
	"dispersal/internal/repeated"
	"dispersal/internal/site"
	"dispersal/internal/table"
)

func main() {
	f := site.Geometric(8, 1, 0.8)
	const k = 4
	fmt.Printf("patches: %d (values %.3g..%.3g), foragers per bout: %d\n\n", len(f), f[0], f[len(f)-1], k)

	policies := []policy.Congestion{
		policy.Exclusive{},
		policy.Sharing{},
		policy.Constant{},
	}
	tb := table.New("regrowth r", "exclusive harvest", "sharing harvest", "constant harvest")
	for _, r := range []float64{0.05, 0.1, 0.2, 0.5, 1.0} {
		row := make([]any, 0, 4)
		row = append(row, r)
		for _, c := range policies {
			res, err := repeated.MeanField(repeated.Config{
				F: f, K: k, C: c, Regrowth: r, Bouts: 800, Adaptive: true,
			})
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, res.Harvest.Mean)
		}
		tb.AddRowf(row...)
	}
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nslow regrowth punishes redundant visits hardest: the exclusive")
	fmt.Println("policy's collision aversion keeps stocks grazed down evenly and")
	fmt.Println("converts the regrowth into harvest at the highest rate.")

	// A stochastic run for one setting, to show the simulator.
	res, err := repeated.Simulate(repeated.Config{
		F: f, K: k, C: policy.Exclusive{}, Regrowth: 0.2, Bouts: 5000, Seed: 1, Adaptive: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstochastic check (r=0.2, exclusive): harvest %.4f +- %.4f per bout\n",
		res.Harvest.Mean, res.Harvest.CI95)
}
