// Foraging: the paper's motivating ecology scenario (Sections 1 and 5.2).
//
// A colony of bats splits nightly into groups of k = 8 that forage over a
// field of 40 patches with heavy-tailed quality. We compare how three
// "species" — differing only in their collision attitude (aggressive,
// exclusive-level, and peaceful sharing) — cover the field at their
// respective evolutionary equilibria, reproducing the paper's takeaway that
// the more competitive species covers the resources better.
//
// Run with: go run ./examples/foraging
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"os"

	"dispersal"
	"dispersal/internal/site"
	"dispersal/internal/table"
)

func main() {
	const (
		patches = 40
		bats    = 8
	)
	// Heavy-tailed patch quality, as in natural resource landscapes.
	rng := rand.New(rand.NewPCG(2018, 5))
	field := site.RandomExponential(rng, patches, 1.0)
	total := field.Sum()

	species := []struct {
		name     string
		attitude dispersal.Congestion
		story    string
	}{
		{"peaceful (sharing)", dispersal.Sharing(), "colliding bats split the patch"},
		{"moderate", dispersal.TwoPoint(0.2), "collisions waste most of the patch"},
		{"solomon (exclusive)", dispersal.Exclusive(), "colliding bats get nothing"},
		{"vicious (aggressive)", dispersal.Aggressive(0.5), "collisions injure"},
	}

	tb := table.New("species", "collision rule", "equilibrium coverage", "% of field", "per-bat payoff")
	var exclusiveCover float64
	for _, sp := range species {
		g, err := dispersal.NewGame(field, bats, sp.attitude)
		if err != nil {
			log.Fatal(err)
		}
		eq, nu, err := g.IFD()
		if err != nil {
			log.Fatal(err)
		}
		cover, err := g.Coverage(eq)
		if err != nil {
			log.Fatal(err)
		}
		if sp.name == "solomon (exclusive)" {
			exclusiveCover = cover
		}
		tb.AddRowf(sp.name, sp.story, cover, 100*cover/total, nu)
	}
	fmt.Printf("field: %d patches, total value %.3f; %d bats per group\n\n", patches, total, bats)
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The group-level ceiling, for context.
	g, err := dispersal.NewGame(field, bats, dispersal.Exclusive())
	if err != nil {
		log.Fatal(err)
	}
	_, best, err := g.OptimalCoverage()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest possible symmetric coverage: %.4f\n", best)
	fmt.Printf("the exclusive-policy species achieves it exactly: %.4f (Theorem 4)\n", exclusiveCover)
	fmt.Println("\npaper's takeaway: a species whose conspecific collisions are costly")
	fmt.Println("(at the Judgment-of-Solomon level) covers the shared field optimally,")
	fmt.Println("out-consuming a peaceful species feeding on the same patches.")
}
