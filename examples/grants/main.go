// Grants: the research-funding scenario from the paper's introduction and
// Section 1.6 (after Kleinberg & Oren).
//
// A foundation wants k researchers to spread over research topics of
// differing importance so that the community's total covered importance is
// maximal. Two mechanisms are compared:
//
//  1. Reward redesign (Kleinberg-Oren): keep "credit sharing" (collided
//     topics split credit) and re-choose the grant sizes — which requires
//     knowing how many researchers will show up.
//  2. Congestion redesign (this paper): keep grants equal to topic
//     importance and make credit exclusive — scooped researchers get
//     nothing. No knowledge of k needed.
//
// Run with: go run ./examples/grants
package main

import (
	"fmt"
	"log"
	"os"

	"dispersal/internal/grants"
	"dispersal/internal/site"
	"dispersal/internal/table"
)

func main() {
	const trueK = 6
	// Topic importances: a few hot topics, a long tail of niche ones.
	topics := site.Zipf(18, 1, 0.6)

	out, err := grants.Compare(topics, trueK)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topics: %d, researchers: %d, optimal coverage: %.4f\n\n", len(topics), trueK, out.OptCoverage)

	tb := table.New("mechanism", "coverage", "fraction of optimum", "needs k?")
	tb.AddRowf("do nothing (credit sharing)", out.SharingCoverage, out.SharingCoverage/out.OptCoverage, "no")
	tb.AddRowf("redesign grant sizes [KO11]", out.GrantCoverage, out.GrantCoverage/out.OptCoverage, "YES")
	tb.AddRowf("exclusive credit (this paper)", out.ExclusiveCoverage, out.ExclusiveCoverage/out.OptCoverage, "no")
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// What happens when the foundation guesses k wrong?
	fmt.Printf("\nsensitivity: grants were designed for k' researchers, %d showed up\n\n", trueK)
	tb2 := table.New("designed for k'", "grant mechanism", "exclusive policy")
	for _, designK := range []int{2, 3, 4, 6, 9, 12} {
		gFrac, eFrac, err := grants.MisestimatedK(topics, designK, trueK)
		if err != nil {
			log.Fatal(err)
		}
		tb2.AddRowf(designK, fmt.Sprintf("%.4f of optimum", gFrac), fmt.Sprintf("%.4f of optimum", eFrac))
	}
	if err := tb2.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe congestion-policy mechanism is invariant to the misestimate;")
	fmt.Println("the reward-redesign mechanism degrades away from k' = k.")
}
