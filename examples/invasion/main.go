// Invasion: evolutionary stability in a finite population (Theorem 3).
//
// A population of 2000 foragers plays sigma* under the exclusive policy. We
// inject a 10% minority of mutants that overweight the best patch and watch
// Wright-Fisher selection push them out; then we flip roles and watch
// sigma* invade a uniform-playing resident population. The trajectories are
// rendered as ASCII charts.
//
// Run with: go run ./examples/invasion
package main

import (
	"fmt"
	"log"
	"os"

	"dispersal/internal/dynamics"
	"dispersal/internal/ifd"
	"dispersal/internal/plot"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/strategy"
)

func main() {
	f := site.TwoSite(0.5)
	const k = 2
	sigma, _, err := ifd.Exclusive(f, k)
	if err != nil {
		log.Fatal(err)
	}
	greedyMutant := strategy.Strategy{0.95, 0.05}

	fmt.Printf("patches f = %v, group size k = %d, policy = exclusive\n", f, k)
	fmt.Printf("resident sigma* = [%.4f %.4f], mutant = %v\n\n", sigma[0], sigma[1], greedyMutant)

	runAndPlot("mutant vs sigma*-resident (Theorem 3: repelled)", dynamics.InvasionConfig{
		F: f, K: k, C: policy.Exclusive{},
		Resident: sigma, Mutant: greedyMutant,
		PopSize: 2000, InitialMutantFrac: 0.10,
		Generations: 250, GamesPerGen: 8, Selection: 3, Seed: 7,
	})

	runAndPlot("sigma*-mutant vs uniform resident (invades)", dynamics.InvasionConfig{
		F: f, K: k, C: policy.Exclusive{},
		Resident: strategy.Uniform(2), Mutant: sigma,
		PopSize: 2000, InitialMutantFrac: 0.10,
		Generations: 250, GamesPerGen: 8, Selection: 3, Seed: 11,
	})
}

func runAndPlot(title string, cfg dynamics.InvasionConfig) {
	res, err := dynamics.Invasion(cfg)
	if err != nil {
		log.Fatal(err)
	}
	xs := make([]float64, len(res.MutantFrac))
	for i := range xs {
		xs[i] = float64(i)
	}
	chart := &plot.Chart{
		Title:  title,
		XLabel: "generation",
		YLabel: "mutant fraction",
		Series: []plot.Series{{Name: "mutant fraction", X: xs, Y: res.MutantFrac}},
	}
	if err := chart.RenderASCII(os.Stdout, 72, 14); err != nil {
		log.Fatal(err)
	}
	switch {
	case res.Extinct:
		fmt.Printf("-> mutant extinct after %d generations\n\n", len(res.MutantFrac)-1)
	case res.Fixed:
		fmt.Printf("-> mutant fixed after %d generations\n\n", len(res.MutantFrac)-1)
	default:
		fmt.Printf("-> final mutant fraction: %.3f\n\n", res.MutantFrac[len(res.MutantFrac)-1])
	}
}
