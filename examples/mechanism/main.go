// Mechanism: discovering the Judgment-of-Solomon policy by optimization.
//
// A mechanism designer wants selfish explorers to cover sites as well as
// possible, and can only choose how harshly collisions are punished — the
// congestion function C(l). Knowing nothing of the paper's Theorems 4 and
// 6, the designer runs a blind coordinate-descent search over table
// policies, scoring each candidate by the coverage of its equilibrium.
// The search converges to C(l >= 2) = 0: the exclusive policy.
//
// Run with: go run ./examples/mechanism
package main

import (
	"fmt"
	"log"
	"os"

	"dispersal"
	"dispersal/internal/table"
)

func main() {
	landscapes := []struct {
		name string
		f    dispersal.Values
		k    int
	}{
		{"two sites (1, 0.3)", dispersal.Values{1, 0.3}, 2},
		{"eight geometric sites", dispersal.Values{1, 0.75, 0.5625, 0.4219, 0.3164, 0.2373, 0.178, 0.1335}, 3},
		{"five zipf sites", dispersal.Values{1, 0.5, 1.0 / 3, 0.25, 0.2}, 4},
	}

	tb := table.New("landscape", "k", "levels C(2..k) found", "designed coverage", "sigma* coverage")
	for _, l := range landscapes {
		g, err := dispersal.NewGame(l.f, l.k, dispersal.Sharing()) // designer starts from sharing
		if err != nil {
			log.Fatal(err)
		}
		design, err := g.DesignOptimalPolicy(42)
		if err != nil {
			log.Fatal(err)
		}
		_, optCover, err := g.OptimalCoverage()
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRowf(l.name, l.k, fmt.Sprintf("%.4f", design.Levels), design.Coverage, optCover)
	}
	if err := tb.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nevery search lands on all-zero collision rewards — the exclusive")
	fmt.Println("policy — and exactly the optimal coverage, as Theorems 4 and 6 predict:")
	fmt.Println("punish collisions totally (but not more) and selfish equilibrium")
	fmt.Println("behaviour becomes group-optimal.")
}
