// Quickstart: the paper's headline results in thirty lines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dispersal"
)

func main() {
	// Two patches of food: a rich one (value 1) and a poorer one (0.5).
	// Two animals disperse over them under the "Judgment of Solomon"
	// exclusive policy: an animal alone on a patch eats everything; two
	// animals on the same patch fight and get nothing.
	g, err := dispersal.NewGame(dispersal.Values{1, 0.5}, 2, dispersal.Exclusive())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g)

	// The unique symmetric equilibrium (the Ideal Free Distribution).
	sigma, nu, err := g.IFD()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("equilibrium strategy sigma* = %.4f (each player gets %.4f)\n", sigma, nu)

	// Theorem 4: that equilibrium maximizes the group's coverage.
	opt, cover, err := g.OptimalCoverage()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal symmetric strategy  = %.4f (coverage %.4f)\n", opt, cover)

	// Corollary 5: the price of anarchy is exactly 1.
	inst, err := g.SPoA()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("symmetric price of anarchy  = %.6f\n", inst.Ratio)

	// Compare with the classical sharing policy on the same patches.
	gs, err := dispersal.NewGame(g.Values(), 2, dispersal.Sharing())
	if err != nil {
		log.Fatal(err)
	}
	instS, err := gs.SPoA()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("...under sharing instead    = %.6f (coverage lost to anarchy)\n", instS.Ratio)

	// And validate the equilibrium payoff empirically.
	res, err := g.Simulate(sigma, 200_000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated payoff/player     = %.4f +- %.4f (analytic %.4f)\n",
		res.Payoff.Mean, res.Payoff.CI95, nu)
}
