package dispersal

// Public entry points for the model extensions (paper Sections 1.2, 5.1,
// 5.2): travel costs, consumption capacity, interspecies competition, and
// pure-equilibrium enumeration. Each wraps the corresponding internal
// subsystem; see docs/ARCHITECTURE.md for the modelling details.

import (
	"context"

	"dispersal/internal/capacity"
	"dispersal/internal/infer"
	"dispersal/internal/mechanism"
	"dispersal/internal/pureeq"
	"dispersal/internal/species"
	"dispersal/internal/travelcost"
)

// TravelCosts is a per-site visiting-cost vector t(x) >= 0 (Section 5.1
// extension): the payoff becomes f(x)*C(l) - t(x).
type TravelCosts = travelcost.Costs

// IFDWithTravelCosts returns the unique symmetric equilibrium of this game
// extended with travel costs t, and its equilibrium payoff. Unlike the base
// game, the support need not be a prefix of the sites, and the exclusive
// policy no longer guarantees optimal coverage (experiment E14).
func (g *Game) IFDWithTravelCosts(t TravelCosts) (Strategy, float64, error) {
	return travelcost.Solve(g.f, t, g.k, g.c)
}

// Consumption returns the expected group consumption of strategy p when
// each individual can consume at most cap value units at its site
// (Section 5.1 extension). cap = math.Inf(1) recovers Coverage exactly.
func (g *Game) Consumption(p Strategy, cap float64) (float64, error) {
	return capacity.Consumption(g.f, p, g.k, cap)
}

// MaxConsumption returns the symmetric strategy maximizing Consumption at
// capacity cap, and its value. At finite capacities this differs from
// SigmaStar (experiment E15).
func (g *Game) MaxConsumption(cap float64) (Strategy, float64, error) {
	return capacity.MaxConsumption(g.f, g.k, cap)
}

// CompetingSpecies describes one species in the two-species competition of
// Section 5.2.
type CompetingSpecies = species.Species

// SpeciesOutcome reports expected per-bout intakes of two species under
// each feeding order.
type SpeciesOutcome = species.Outcome

// CompeteSpecies computes the exact expected intakes of two species
// foraging over this game's patches at different times of day, each playing
// its own within-species equilibrium (Section 5.2). The game's own k and
// policy are not used — each species carries its own.
func (g *Game) CompeteSpecies(a, b CompetingSpecies) (SpeciesOutcome, error) {
	return species.Intakes(g.f, a, b)
}

// PureEquilibria enumerates all pure Nash equilibria of this game by brute
// force over the M^k profiles (Section 1.2). limit bounds the state space
// (<= 0 uses the package default).
func (g *Game) PureEquilibria(limit int) (pureeq.Summary, error) {
	return pureeq.Enumerate(g.f, g.k, g.c, limit)
}

// PureEquilibriaContext is PureEquilibria under a context: the exponential
// profile scan aborts promptly when ctx is cancelled, making deadlines an
// alternative to the hard state-space limit.
func (g *Game) PureEquilibriaContext(ctx context.Context, limit int) (pureeq.Summary, error) {
	return pureeq.EnumerateContext(ctx, g.f, g.k, g.c, limit)
}

// PureEquilibriaSummary re-exports the enumeration summary type.
type PureEquilibriaSummary = pureeq.Summary

// PolicyDesign is a congestion policy found by DesignOptimalPolicy.
type PolicyDesign = mechanism.Design

// DesignOptimalPolicyContext searches the space of table congestion
// policies for the one whose equilibrium maximizes coverage on this game's
// values, seeded by the game's WithSeed option. By Theorems 4 and 6 the
// search converges to the exclusive policy; exposing the optimizer lets
// users verify that claim on their own landscapes (experiment E22). ctx
// cancels the search between coordinate-descent sweeps.
func (g *Game) DesignOptimalPolicyContext(ctx context.Context) (PolicyDesign, error) {
	return mechanism.OptimizeContext(ctx, g.f, g.k, mechanism.Options{Seed: g.opt.seed})
}

// DesignOptimalPolicy searches the policy space with an explicit seed.
//
// Deprecated: the positional seed overrides the game's WithSeed option. Use
// DesignOptimalPolicyContext instead.
func (g *Game) DesignOptimalPolicy(seed uint64) (PolicyDesign, error) {
	return mechanism.Optimize(g.f, g.k, mechanism.Options{Seed: seed})
}

// ValueEstimate is an inverse-IFD estimate of relative site values.
type ValueEstimate = infer.Estimate

// InferValues recovers relative site values from observed per-player
// occupancy probabilities, assuming the population plays the symmetric
// equilibrium of policy c with k players per game (the empirical IFD
// methodology; experiment E23).
func InferValues(occupancy []float64, k int, c Congestion) (ValueEstimate, error) {
	return infer.Values(occupancy, k, c, 1e-6)
}
