package dispersal

import (
	"math"
	"testing"
)

func TestIFDWithTravelCostsThroughFacade(t *testing.T) {
	g := MustGame(Values{1, 0.5}, 2, Exclusive())
	// Zero costs reproduce the base IFD.
	base, nuBase, err := g.IFD()
	if err != nil {
		t.Fatal(err)
	}
	p, nu, err := g.IFDWithTravelCosts(TravelCosts{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if d := base.LInf(p); d > 1e-7 {
		t.Errorf("zero-cost IFD off by %v", d)
	}
	if math.Abs(nu-nuBase) > 1e-6 {
		t.Errorf("nu %v vs %v", nu, nuBase)
	}
	// A prohibitive cost on site 1 pushes all mass to site 2.
	p2, _, err := g.IFDWithTravelCosts(TravelCosts{0.9, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p2[1] < 0.9 {
		t.Errorf("blocked site still explored: %v", p2)
	}
}

func TestConsumptionThroughFacade(t *testing.T) {
	g := MustGame(Values{1, 0.5}, 2, Exclusive())
	u := Strategy{0.5, 0.5}
	unbounded, err := g.Consumption(u, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	cover, err := g.Coverage(u)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(unbounded-cover) > 1e-12 {
		t.Errorf("unbounded consumption %v != coverage %v", unbounded, cover)
	}
	bounded, err := g.Consumption(u, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if bounded >= unbounded {
		t.Errorf("capacity did not bind: %v >= %v", bounded, unbounded)
	}
	// Optimal consumption at the bound is at least sigma*'s.
	_, opt, err := g.MaxConsumption(0.1)
	if err != nil {
		t.Fatal(err)
	}
	sigma, _, _, err := g.SigmaStar()
	if err != nil {
		t.Fatal(err)
	}
	sCons, err := g.Consumption(sigma, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if opt < sCons-1e-9 {
		t.Errorf("MaxConsumption %v below sigma* consumption %v", opt, sCons)
	}
}

func TestCompeteSpeciesThroughFacade(t *testing.T) {
	g := MustGame(Values{1, 0.9, 0.8, 0.7}, 2, Exclusive())
	out, err := g.CompeteSpecies(
		CompetingSpecies{Name: "solomon", K: 3, C: Exclusive()},
		CompetingSpecies{Name: "peaceful", K: 3, C: Sharing()},
	)
	if err != nil {
		t.Fatal(err)
	}
	if out.Alternating.A <= out.Alternating.B {
		t.Errorf("exclusive species should win: %+v", out.Alternating)
	}
}

func TestDesignOptimalPolicyThroughFacade(t *testing.T) {
	g := MustGame(Values{1, 0.5}, 2, Sharing())
	d, err := g.DesignOptimalPolicy(3)
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxLevelMagnitude() > 0.05 {
		t.Errorf("designer missed the exclusive policy: levels %v", d.Levels)
	}
	_, optCover, err := g.OptimalCoverage()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Coverage-optCover) > 1e-4 {
		t.Errorf("designed coverage %v vs optimum %v", d.Coverage, optCover)
	}
}

func TestInferValuesThroughFacade(t *testing.T) {
	g := MustGame(Values{1, 0.5}, 3, Exclusive())
	eq, _, err := g.IFD()
	if err != nil {
		t.Fatal(err)
	}
	est, err := InferValues(eq, 3, Exclusive())
	if err != nil {
		t.Fatal(err)
	}
	worst, err := est.MaxRelativeError(g.Values())
	if err != nil {
		t.Fatal(err)
	}
	if worst > 1e-9 {
		t.Errorf("inversion error %v", worst)
	}
}

func TestPureEquilibriaThroughFacade(t *testing.T) {
	g := MustGame(Values{1, 0.8, 0.6}, 2, Exclusive())
	sum, err := g.PureEquilibria(0)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Equilibria != 2 { // the 2! assignments onto the top-2 sites
		t.Errorf("pure equilibria = %d, want 2", sum.Equilibria)
	}
	if sum.BestCoverage != 1.8 {
		t.Errorf("coverage = %v, want 1.8", sum.BestCoverage)
	}
}
