module dispersal

go 1.24
