package dispersal

// Cross-module integration tests: every pipeline a downstream user would
// compose (equilibrium -> simulation -> inference; dynamics -> equilibrium;
// policy design -> equilibrium -> coverage) on games larger than the unit
// tests use. Long-running cases are guarded by testing.Short.

import (
	"math"
	"math/rand/v2"
	"testing"

	"dispersal/internal/site"
)

func TestPipelineEquilibriumSimulationInference(t *testing.T) {
	// Theory -> engine -> inverse theory on a mid-sized game.
	f := Values(site.Zipf(15, 2, 0.8))
	g := MustGame(f, 6, Exclusive())
	sigma, nu, err := g.IFD()
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Simulate(sigma, 400_000, 99)
	if err != nil {
		t.Fatal(err)
	}
	// Simulated payoff matches nu.
	if d := math.Abs(res.Payoff.Mean - nu); d > 4*res.Payoff.CI95+1e-9 {
		t.Errorf("payoff %v vs nu %v", res.Payoff.Mean, nu)
	}
	// Observed occupancy inverts back to the values.
	est, err := InferValues(res.Occupancy, 6, Exclusive())
	if err != nil {
		t.Fatal(err)
	}
	worst, err := est.MaxRelativeError(f)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 0.05 {
		t.Errorf("inferred values off by %v", worst)
	}
}

func TestPipelineDynamicsAgreeWithSolver(t *testing.T) {
	// Replicator dynamics from three different starts all land on the
	// solver's IFD, for a non-trivial policy.
	f := Values(site.Geometric(7, 1, 0.8))
	g := MustGame(f, 4, TwoPoint(-0.2))
	eq, _, err := g.IFD()
	if err != nil {
		t.Fatal(err)
	}
	starts := []Strategy{
		{1.0 / 7, 1.0 / 7, 1.0 / 7, 1.0 / 7, 1.0 / 7, 1.0 / 7, 1.0 / 7},
		{0.9, 0.1, 0, 0, 0, 0, 0},
		{0.05, 0.05, 0.05, 0.05, 0.1, 0.2, 0.5},
	}
	for i, s := range starts {
		r, err := g.Replicator(s, ReplicatorOptions{Steps: 80000, Floor: 1e-9})
		if err != nil {
			t.Fatal(err)
		}
		if d := r.Final.TV(eq); d > 1e-4 {
			t.Errorf("start %d: TV to IFD = %v", i, d)
		}
	}
}

func TestPipelinePolicyDesignOnRandomLandscape(t *testing.T) {
	if testing.Short() {
		t.Skip("policy design is slow; run without -short")
	}
	rng := rand.New(rand.NewPCG(77, 77))
	f := Values(site.Random(rng, 6, 0.3, 2))
	g := MustGame(f, 3, Sharing())
	d, err := g.DesignOptimalPolicy(5)
	if err != nil {
		t.Fatal(err)
	}
	_, optCover, err := g.OptimalCoverage()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Coverage-optCover) > 1e-3 {
		t.Errorf("designed %v vs optimal %v (levels %v)", d.Coverage, optCover, d.Levels)
	}
}

func TestLargeGameSolversScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-game sweep; run without -short")
	}
	// 10k sites, 64 players: closed form, optimizer, and coverage stay
	// consistent at scale.
	f := Values(site.Zipf(10_000, 1, 0.9))
	g := MustGame(f, 64, Exclusive())
	sigma, _, err := g.IFD()
	if err != nil {
		t.Fatal(err)
	}
	opt, optCover, err := g.OptimalCoverage()
	if err != nil {
		t.Fatal(err)
	}
	if d := sigma.LInf(opt); d > 1e-8 {
		t.Errorf("Theorem 4 at scale: deviation %v", d)
	}
	eqCover, err := g.Coverage(sigma)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eqCover-optCover) > 1e-8*optCover {
		t.Errorf("coverages diverge at scale: %v vs %v", eqCover, optCover)
	}
	bound := (1 - 1/math.E) * f.PrefixSum(64)
	if eqCover <= bound {
		t.Errorf("Observation 1 fails at scale: %v <= %v", eqCover, bound)
	}
}

func TestConcurrentGamesAreIndependent(t *testing.T) {
	// Games are safe to use from concurrent goroutines (read-only state).
	f := Values{1, 0.7, 0.4}
	g := MustGame(f, 3, Exclusive())
	const n = 16
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(seed uint64) {
			eq, _, err := g.IFD()
			if err != nil {
				errs <- err
				return
			}
			_, err = g.Simulate(eq, 5_000, seed)
			errs <- err
		}(uint64(i))
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
