// Package analyzers registers the dispersalvet suite: the six
// domain-specific invariant checkers that turn the warm-serving guarantees
// the tests can only sample into whole-repository build gates.
//
// Each analyzer lives in its own subpackage with analysistest-style
// testdata; this package pins the production configuration (which module
// packages each invariant spans). cmd/dispersalvet runs All as a
// multichecker; see docs/static-analysis.md for the invariant catalogue.
package analyzers

import (
	"dispersal/internal/analyzers/canonicalrange"
	"dispersal/internal/analyzers/ctxloop"
	"dispersal/internal/analyzers/floateq"
	"dispersal/internal/analyzers/framework"
	"dispersal/internal/analyzers/nakedgoroutine"
	"dispersal/internal/analyzers/seededrand"
	"dispersal/internal/analyzers/statecoverage"
)

// All returns the production-configured analyzer suite, in stable order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		statecoverage.Default(),
		canonicalrange.Default(),
		ctxloop.Default(),
		floateq.Default(),
		nakedgoroutine.Default(),
		seededrand.Default(),
	}
}
