package analyzers_test

import (
	"testing"

	"dispersal/internal/analyzers"
)

// TestAllRegistersSuite pins the multichecker roster: exactly these six
// analyzers, in this order, each with documentation and a run function. A
// new analyzer must be added here deliberately; a dropped one fails loudly.
func TestAllRegistersSuite(t *testing.T) {
	want := []string{
		"statecoverage",
		"canonicalrange",
		"ctxloop",
		"floateq",
		"nakedgoroutine",
		"seededrand",
	}
	all := analyzers.All()
	if len(all) != len(want) {
		t.Fatalf("All() registered %d analyzers, want %d", len(all), len(want))
	}
	seen := make(map[string]bool)
	for i, a := range all {
		if a == nil {
			t.Fatalf("All()[%d] is nil", i)
		}
		if a.Name != want[i] {
			t.Errorf("All()[%d].Name = %q, want %q", i, a.Name, want[i])
		}
		if seen[a.Name] {
			t.Errorf("analyzer %q registered twice", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run function", a.Name)
		}
	}
}
