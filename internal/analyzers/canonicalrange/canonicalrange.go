// Package canonicalrange defines the dispersalvet analyzer that keeps the
// canonical encoders deterministic.
//
// Invariant: no map iteration in the canonical-codec packages
// (internal/speccodec, internal/statewire), nor in any module function
// reachable from the key builders speccodec.CacheKey / LocalityKey /
// FrameKey. Go randomizes map iteration order per range statement, so a
// single `for k := range m` on a key-building path makes two replicas
// compute different bytes for the same game — and every layer above
// (rescache identity, warmcache locality buckets, peer /v1/warmstate
// exchange, statestore snapshots) silently stops matching across the
// fleet. The tests fuzz the codecs but can only sample; this analyzer makes
// determinism a property of the call graph.
//
// Reachability is computed over module-local declarations (standard-library
// calls such as encoding/json, which sorts map keys itself, are trusted);
// dynamic calls through interfaces or function values are not followed —
// keep key-building paths concrete.
package canonicalrange

import (
	"go/ast"
	"go/token"
	"go/types"

	"dispersal/internal/analyzers/framework"
)

// New returns the analyzer: packages matching scope are blanket-banned from
// ranging over maps, and the call graph from rootPkg's rootFuncs is swept
// wherever it leads in the module.
func New(scope []string, rootPkg string, rootFuncs []string) *framework.Analyzer {
	a := &framework.Analyzer{
		Name: "canonicalrange",
		Doc: "flag `range` over a map in the canonical-codec packages or in " +
			"any function reachable from the cache/locality/frame key builders: " +
			"map iteration order is randomized, so one such loop breaks " +
			"byte-identical keys across replicas",
	}
	a.Run = func(pass *framework.Pass) error {
		root := pass.Prog.Lookup(rootPkg)
		if root == nil {
			// Partial load without the key builders: fall back to the
			// blanket rule, each scope package checking itself.
			if framework.PathMatches(pass.Pkg.Path, scope) {
				scanPkg(pass, pass.Pkg, make(map[token.Pos]bool))
			}
			return nil
		}
		// Full program: run everything once, from the root package's pass.
		if pass.Pkg != root {
			return nil
		}
		seen := make(map[token.Pos]bool)
		for _, pkg := range pass.Prog.Packages() {
			if framework.PathMatches(pkg.Path, scope) {
				scanPkg(pass, pkg, seen)
			}
		}
		sweepFromRoots(pass, root, rootFuncs, seen)
		return nil
	}
	return a
}

// scanPkg applies the blanket rule to one package.
func scanPkg(pass *framework.Pass, pkg *framework.Package, seen map[token.Pos]bool) {
	framework.InspectFiles(pkg, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !rangesOverMap(pkg.Info, rs) || seen[rs.Pos()] {
			return true
		}
		seen[rs.Pos()] = true
		pass.Reportf(rs.Pos(),
			"range over a map in canonical-codec package %s: iteration order is non-deterministic; iterate a sorted key slice instead", pkg.Path)
		return true
	})
}

// sweepFromRoots walks the module-local call graph from each root function
// and flags map ranges anywhere it reaches.
func sweepFromRoots(pass *framework.Pass, root *framework.Package, rootFuncs []string, seen map[token.Pos]bool) {
	visited := make(map[*types.Func]bool)
	var visit func(fn *types.Func, rootName string)
	visit = func(fn *types.Func, rootName string) {
		if fn == nil || visited[fn] {
			return
		}
		visited[fn] = true
		pkg, decl := pass.Prog.DeclOf(fn)
		if decl == nil || decl.Body == nil {
			return // standard library or synthesized: trusted / unreachable
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.RangeStmt:
				if rangesOverMap(pkg.Info, x) && !seen[x.Pos()] {
					seen[x.Pos()] = true
					pass.Reportf(x.Pos(),
						"range over a map in %s, reachable from %s: iteration order is non-deterministic and poisons canonical keys", fn.Name(), rootName)
				}
			case *ast.CallExpr:
				visit(framework.CalleeOf(pkg.Info, x), rootName)
			}
			return true
		})
	}
	for _, name := range rootFuncs {
		obj, _ := root.Types.Scope().Lookup(name).(*types.Func)
		if obj == nil {
			pass.Reportf(token.NoPos, "root function %s.%s not found", root.Path, name)
			continue
		}
		visit(obj, root.Types.Name()+"."+name)
	}
}

func rangesOverMap(info *types.Info, rs *ast.RangeStmt) bool {
	tv, ok := info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// Default is the registry instance: the two canonical codec packages under
// the blanket rule, plus everything reachable from the three key builders.
func Default() *framework.Analyzer {
	return New(
		[]string{"internal/speccodec", "internal/statewire"},
		"internal/speccodec",
		[]string{"CacheKey", "LocalityKey", "FrameKey"},
	)
}
