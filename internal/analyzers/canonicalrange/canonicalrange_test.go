package canonicalrange_test

import (
	"path/filepath"
	"testing"

	"dispersal/internal/analyzers/canonicalrange"
	"dispersal/internal/analyzers/framework"
)

func TestCanonicalRange(t *testing.T) {
	a := canonicalrange.New([]string{"codec"}, "keys", []string{"CacheKey", "FrameKey"})
	framework.RunTest(t, filepath.Join("testdata", "src"), a, "codec", "keys", "helperx")
}
