// Package codec is a scope package under the blanket rule: any map range
// here is a violation, whether or not a key builder reaches it. The fix
// inside a codec package is to take deterministic structures (slices) as
// input, not to sort after iterating.
package codec

// Pair is an ordered entry.
type Pair struct {
	Key string
	Val int
}

// BadJoin ranges a map directly.
func BadJoin(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over a map in canonical-codec package codec`
		total += v
	}
	return total
}

// BadCollect ranges a map even just to collect keys: still order-dependent
// until the sort, and the blanket rule stays simple by flagging all of it.
func BadCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want `range over a map in canonical-codec package codec`
		keys = append(keys, k)
	}
	return keys
}

// GoodJoin takes an already-ordered slice of pairs: deterministic, clean.
func GoodJoin(pairs []Pair) int {
	total := 0
	for _, p := range pairs {
		total += p.Val
	}
	return total
}
