// Package helperx is outside the blanket scope; only what the key builders
// reach is checked here.
package helperx

import "strconv"

// Fingerprint is reached from keys.CacheKey and ranges a map: flagged.
func Fingerprint(m map[string]int) string {
	out := ""
	for k, v := range m { // want `range over a map in Fingerprint, reachable from keys.CacheKey`
		out += k + "=" + strconv.Itoa(v) + ";"
	}
	return out
}

// Unreached also ranges a map but no key builder can get here: clean.
func Unreached(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
