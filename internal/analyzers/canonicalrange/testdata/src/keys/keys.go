// Package keys is the root package: its key builders are swept through the
// call graph, including into packages outside the blanket scope.
package keys

import "helperx"

// CacheKey is a root function. It is clean itself but calls into helperx.
func CacheKey(m map[string]int) string {
	return "cache|" + helperx.Fingerprint(m)
}

// FrameKey is a root that stays on clean paths only.
func FrameKey(parts []string) string {
	out := "frame"
	for _, p := range parts {
		out += "|" + p
	}
	return out
}
