// Package ctxloop defines the dispersalvet analyzer that keeps solver hot
// loops cancellable.
//
// Invariant: in the solver packages, a loop whose iteration count is not
// structurally bounded honours context cancellation. Two rules enforce it:
//
//  1. Unbounded numeric loops. A `for cond { ... }` or bare `for { ... }`
//     (no init, no post) is flagged when the condition involves
//     floating-point values — or there is no condition at all — and neither
//     the condition nor the body consults a context.Context. Float-driven
//     conditions ("for hi-lo > tol") are exactly the loops that spin
//     forever when a tolerance underflows the local float spacing or a NaN
//     sneaks in; they must either check ctx or be rewritten as a counted
//     loop with an explicit iteration budget (the solve.BisectExcess
//     idiom: `for iter := 0; iter < 200; iter++`). Condition-only loops
//     over pure integer state ("for w+1 <= m && ...") step a counter
//     toward a bound and are exempt.
//
//  2. Ignored contexts. A function that accepts a context.Context and
//     contains at least one loop must use its context somewhere — checking
//     ctx.Err(), selecting on ctx.Done(), or passing ctx to a callee that
//     does. Accepting ctx and looping without ever consulting it is how a
//     "cancellable" API regresses into an uncancellable one while keeping
//     its signature.
package ctxloop

import (
	"go/ast"
	"go/types"

	"dispersal/internal/analyzers/framework"
)

// New returns the analyzer covering packages matching scope.
func New(scope []string) *framework.Analyzer {
	a := &framework.Analyzer{
		Name: "ctxloop",
		Doc: "flag potentially unbounded solver loops that ignore context " +
			"cancellation: float-conditioned or infinite `for` loops must check " +
			"ctx.Err()/ctx.Done() or carry an explicit iteration cap, and a " +
			"function that takes a ctx and loops must consult it",
	}
	a.Run = func(pass *framework.Pass) error {
		if !framework.PathMatches(pass.Pkg.Path, scope) {
			return nil
		}
		for _, file := range pass.Pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkFunc(pass, fd)
			}
		}
		return nil
	}
	return a
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info

	// Rule 1: unbounded numeric loops must reference a context.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Init != nil || loop.Post != nil {
			return true
		}
		if loop.Cond != nil && !mentionsFloat(info, loop.Cond) {
			return true // integer-stepped condition loop: structurally convergent
		}
		if referencesContext(info, loop.Cond) || referencesContext(info, loop.Body) {
			return true
		}
		what := "infinite `for` loop"
		if loop.Cond != nil {
			what = "float-conditioned `for` loop"
		}
		pass.Reportf(loop.Pos(),
			"%s has no cancellation path: check ctx.Err()/select on ctx.Done() inside, or rewrite as a counted loop with an iteration cap", what)
		return true
	})

	// Rule 2: a ctx-accepting function that loops must consult its ctx.
	ctxParams := contextParams(info, fd)
	if len(ctxParams) == 0 {
		return
	}
	hasLoop := false
	usesCtx := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			hasLoop = true
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil && ctxParams[obj] {
				usesCtx = true
			}
		}
		return true
	})
	if hasLoop && !usesCtx {
		pass.Reportf(fd.Pos(),
			"%s accepts a context.Context and loops but never consults it; thread ctx into the loop or drop the parameter", fd.Name.Name)
	}
}

// contextParams collects the function's parameters of type context.Context.
func contextParams(info *types.Info, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := info.Defs[name]
			if obj != nil && isContextType(obj.Type()) {
				out[obj] = true
			}
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// referencesContext reports whether any identifier of type context.Context
// appears under n — a ctx.Err() check, a select on ctx.Done(), or ctx
// passed onward all qualify.
func referencesContext(info *types.Info, n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok || found {
			return !found
		}
		if obj := info.Uses[id]; obj != nil && isContextType(obj.Type()) {
			found = true
		}
		return !found
	})
	return found
}

// mentionsFloat reports whether any subexpression of e has floating-point
// type.
func mentionsFloat(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok || found {
			return !found
		}
		if tv, ok := info.Types[expr]; ok && tv.Type != nil {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				found = true
			}
		}
		return !found
	})
	return found
}

// Default is the registry instance covering the solver hot-path packages.
func Default() *framework.Analyzer {
	return New([]string{
		"internal/solve",
		"internal/ifd",
		"internal/spoa",
		"internal/optimize",
		"internal/pureeq",
		"internal/dynamics",
		"internal/session",
		"internal/obs",
	})
}
