package ctxloop_test

import (
	"path/filepath"
	"testing"

	"dispersal/internal/analyzers/ctxloop"
	"dispersal/internal/analyzers/framework"
)

func TestCtxLoop(t *testing.T) {
	framework.RunTest(t, filepath.Join("testdata", "src"), ctxloop.New([]string{"hot"}), "hot")
}
