// Package hot seeds violations and non-violations for the ctxloop
// analyzer.
package hot

import "context"

// BisectNoCancel spins on a float condition with no cancellation path.
func BisectNoCancel(f func(float64) float64, lo, hi, tol float64) float64 {
	for hi-lo > tol { // want `float-conditioned .for. loop has no cancellation path`
		mid := lo + (hi-lo)/2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// SpinForever has no condition and no cancellation path at all.
func SpinForever(step func()) {
	for { // want `infinite .for. loop has no cancellation path`
		step()
	}
}

// BisectCtx checks its context inside the loop: fine.
func BisectCtx(ctx context.Context, f func(float64) float64, lo, hi, tol float64) (float64, error) {
	for hi-lo > tol {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		mid := lo + (hi-lo)/2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// PumpCtx selects on ctx.Done: fine.
func PumpCtx(ctx context.Context, in <-chan float64) float64 {
	total := 0.0
	for {
		select {
		case v := <-in:
			total += v
		case <-ctx.Done():
			return total
		}
	}
}

// Counted carries an explicit iteration budget: fine, even on a float
// condition.
func Counted(f func(float64) float64, lo, hi, tol float64) float64 {
	for iter := 0; iter < 200 && hi-lo > tol; iter++ {
		mid := lo + (hi-lo)/2
		if f(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// BoundaryWalk steps an integer counter in the post clause: structurally a
// bounded walk, fine.
func BoundaryWalk(w, m int, s func(int) float64) int {
	for ; w+1 <= m && s(w+1) <= 1; w++ {
	}
	return w
}

// IntHalving is a condition-only loop over pure integer state: fine.
func IntHalving(n int) int {
	steps := 0
	for n > 1 {
		n /= 2
		steps++
	}
	return steps
}

// SumIgnoringCtx accepts a context, loops, and never consults it.
func SumIgnoringCtx(ctx context.Context, xs []float64) float64 { // want `accepts a context.Context and loops but never consults it`
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}

// SumForwardingCtx passes its context to a callee: fine.
func SumForwardingCtx(ctx context.Context, xs []float64) (float64, error) {
	total := 0.0
	for _, x := range xs {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		total += x
	}
	return total, nil
}

// NoLoops accepts a context and has no loops: no opinion.
func NoLoops(ctx context.Context) error {
	return ctx.Err()
}
