// Package floateq defines the dispersalvet analyzer that bans raw float
// equality in the solver packages.
//
// Invariant: solver code never compares floating-point values with == or !=
// outside the allowlisted helpers of internal/numeric. Raw float equality
// is how warm/cold equivalence quietly breaks: two mathematically equal
// quantities computed along different paths (a cold bisection vs a
// warm-seeded one) differ in their last ulps, so an == that happens to hold
// on the cold path silently flips on the warm path. Every comparison must
// go through a named decision point: numeric.AlmostEqual for tolerance
// semantics, or numeric.EqualExact where bit identity is the point (e.g.
// detecting a constant congestion policy, where a tolerance would change
// which solver runs).
//
// Comparisons against the literal constant 0 are allowed: exact-zero is a
// sentinel, not an approximation (a binomial weight that is identically
// zero, a mass that was never assigned), and both paths compute it exactly.
package floateq

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"dispersal/internal/analyzers/framework"
)

// New returns the analyzer covering packages matching scope, with packages
// matching exempt (the tolerance-helper home, internal/numeric) excluded.
func New(scope, exempt []string) *framework.Analyzer {
	a := &framework.Analyzer{
		Name: "floateq",
		Doc: "flag ==/!= on floating-point operands in solver packages: use " +
			"numeric.AlmostEqual (tolerance) or numeric.EqualExact (intentional " +
			"bit identity); comparisons against the literal 0 are allowed",
	}
	a.Run = func(pass *framework.Pass) error {
		if !framework.PathMatches(pass.Pkg.Path, scope) || framework.PathMatches(pass.Pkg.Path, exempt) {
			return nil
		}
		info := pass.Pkg.Info
		framework.InspectFiles(pass.Pkg, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if !isFloat(info, cmp.X) && !isFloat(info, cmp.Y) {
				return true
			}
			if isZeroConst(info, cmp.X) || isZeroConst(info, cmp.Y) {
				return true
			}
			pass.Reportf(cmp.OpPos,
				"floating-point %s comparison: use numeric.AlmostEqual for tolerance or numeric.EqualExact for intentional bit identity",
				cmp.Op)
			return true
		})
		return nil
	}
	return a
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// Default is the registry instance: every equilibrium-adjacent solver
// package is in scope; internal/numeric hosts the allowlisted helpers.
func Default() *framework.Analyzer {
	return New([]string{
		"internal/solve",
		"internal/ifd",
		"internal/spoa",
		"internal/optimize",
		"internal/pureeq",
		"internal/dynamics",
	}, []string{"internal/numeric"})
}
