package floateq_test

import (
	"path/filepath"
	"testing"

	"dispersal/internal/analyzers/floateq"
	"dispersal/internal/analyzers/framework"
)

func TestFloatEq(t *testing.T) {
	a := floateq.New([]string{"solverpkg", "numeric"}, []string{"numeric"})
	framework.RunTest(t, filepath.Join("testdata", "src"), a, "solverpkg", "numeric")
}
