// Package numeric stands in for the real tolerance-helper home: float
// equality here is the allowlisted implementation, not a violation.
package numeric

// EqualExact is the allowlisted exact comparison.
func EqualExact(a, b float64) bool { return a == b }

// AlmostEqual is the allowlisted tolerance comparison.
func AlmostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
