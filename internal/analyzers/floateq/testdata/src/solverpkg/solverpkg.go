// Package solverpkg seeds violations and non-violations for the floateq
// analyzer.
package solverpkg

type values []float64

// Bad compares floats exactly.
func Bad(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

// BadNeq compares through a named float slice's elements.
func BadNeq(f values, i, j int) bool {
	return f[i] != f[j] // want `floating-point != comparison`
}

// BadConst compares against a non-zero constant: still an approximation
// trap, still flagged.
func BadConst(a float64) bool {
	return a == 1.5 // want `floating-point == comparison`
}

// ZeroSentinel is allowed: exact zero is a sentinel, not an approximation.
func ZeroSentinel(w float64) bool {
	return w == 0
}

// ZeroSentinelNeq is allowed on either side.
func ZeroSentinelNeq(w float64) bool {
	return 0.0 != w
}

// Ints are no business of this analyzer.
func Ints(a, b int) bool {
	return a == b
}

// Strings neither.
func Strings(a, b string) bool {
	return a == b
}
