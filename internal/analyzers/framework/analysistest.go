package framework

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// RunTest loads the packages named by importPaths from an
// analysistest-style source root (srcRoot/<importPath>/*.go), runs the
// analyzer over everything loaded, and matches the findings against
// `// want` comments, x/tools-style:
//
//	knownPolicies[name] = p // want `range over map`
//	for {                   // want "unbounded" "second expectation"
//
// Each quoted string is a regexp that must match the message of exactly one
// finding on the comment's line; findings with no expectation and
// expectations with no finding both fail the test.
func RunTest(t *testing.T, srcRoot string, a *Analyzer, importPaths ...string) {
	t.Helper()
	prog, err := LoadDirs(srcRoot, importPaths...)
	if err != nil {
		t.Fatalf("loading %v from %s: %v", importPaths, srcRoot, err)
	}
	diags, err := Run(prog, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, pkg := range prog.Packages() {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					patterns, ok := wantPatterns(c.Text)
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, p := range patterns {
						re, err := regexp.Compile(p)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, p, err)
						}
						k := key{pos.Filename, pos.Line}
						wants[k] = append(wants[k], re)
					}
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: no finding matched want %q", k.file, k.line, re)
		}
	}
}

// wantPatterns extracts the expectation regexps from one comment's text:
// a line comment of the form `// want "p1" "p2"` or backquoted patterns.
func wantPatterns(text string) ([]string, bool) {
	body, ok := strings.CutPrefix(text, "//")
	if !ok {
		return nil, false
	}
	body, ok = strings.CutPrefix(strings.TrimSpace(body), "want ")
	if !ok {
		return nil, false
	}
	var out []string
	rest := strings.TrimSpace(body)
	for rest != "" {
		switch rest[0] {
		case '"':
			end := 1
			for end < len(rest) && (rest[end] != '"' || rest[end-1] == '\\') {
				end++
			}
			if end >= len(rest) {
				return nil, false
			}
			q, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				return nil, false
			}
			out = append(out, q)
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, false
			}
			out = append(out, rest[1:1+end])
			rest = strings.TrimSpace(rest[end+2:])
		default:
			return nil, false
		}
	}
	return out, len(out) > 0
}

// InspectFiles walks every file of pkg with fn, a convenience shared by the
// analyzers.
func InspectFiles(pkg *Package, fn func(ast.Node) bool) {
	for _, f := range pkg.Files {
		ast.Inspect(f, fn)
	}
}
