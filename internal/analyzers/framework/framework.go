// Package framework is the repository's in-tree static-analysis kernel: a
// deliberately small, standard-library-only analogue of
// golang.org/x/tools/go/analysis plus the loader and test harness the
// dispersalvet analyzers (internal/analyzers/...) run on.
//
// Why not x/tools: the build environment this repository pins is fully
// offline — the module has no dependencies and must stay buildable without a
// module proxy — so the suite is built on go/parser + go/types directly.
// The shapes mirror x/tools on purpose (Analyzer with a Run func, a Pass
// carrying type information, Reportf diagnostics, an analysistest-style
// `// want` runner), so migrating to the real framework later is a
// mechanical translation, and so anyone who has written a vet check feels
// at home here.
//
// The one deliberate divergence: a Pass carries the whole loaded Program,
// not just one package. The dispersal invariants are cross-package by
// nature — "every solve.State field crosses statewire.Encode/Decode",
// "nothing reachable from speccodec.CacheKey ranges over a map" — and a
// per-package fact store would only reintroduce the plumbing x/tools needs
// for that. Analyzers here may freely inspect any loaded package and report
// at any position.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters. By
	// convention a single lowercase word ("floateq").
	Name string
	// Doc is the one-paragraph description printed by dispersalvet -list:
	// the invariant, why it matters, and how to satisfy the checker.
	Doc string
	// Run inspects one package and reports findings on the pass. It is
	// called once per loaded package; analyzers whose invariant lives in
	// specific packages return early on the rest. Returning an error aborts
	// the whole run (reserved for internal failures, not findings).
	Run func(*Pass) error
}

// A Pass carries one package of a loaded program through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to every package of prog and returns the
// findings sorted by position. Analyzer errors (internal failures) abort.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range prog.Packages() {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// PathMatches reports whether a package import path falls in scope, where
// scope entries are either full import paths ("dispersal/internal/solve")
// or path suffixes starting at a path-segment boundary ("internal/solve",
// "solve"). Suffix matching is what lets the same analyzer instance cover
// both the real module path and the short import paths of analysistest
// testdata packages.
func PathMatches(path string, scope []string) bool {
	for _, s := range scope {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// FuncFor resolves the *types.Func defined by decl in pkg, or nil for
// declarations without an object (should not happen for well-typed code).
func (pkg *Package) FuncFor(decl *ast.FuncDecl) *types.Func {
	if obj, ok := pkg.Info.Defs[decl.Name].(*types.Func); ok {
		return obj
	}
	return nil
}

// DeclOf returns the syntax of fn's declaration and the package holding
// it, for functions declared in a loaded (module-local) package; nil for
// standard-library and synthesized functions. The index is built lazily on
// first use.
func (p *Program) DeclOf(fn *types.Func) (*Package, *ast.FuncDecl) {
	if p.decls == nil {
		p.decls = make(map[*types.Func]declSite)
		for _, pkg := range p.Packages() {
			for _, file := range pkg.Files {
				for _, d := range file.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok {
						continue
					}
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						p.decls[obj] = declSite{pkg, fd}
					}
				}
			}
		}
	}
	site := p.decls[fn]
	return site.pkg, site.decl
}

type declSite struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// CalleeOf resolves the *types.Func a call expression invokes, through
// plain idents, package selectors and method selections. It returns nil
// for calls of function values, built-ins and type conversions.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
