package framework

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Program is a set of type-checked packages sharing one FileSet, loaded
// either from the module tree (LoadModule) or from an analysistest-style
// testdata/src tree (LoadDirs).
type Program struct {
	Fset *token.FileSet

	pkgs  map[string]*Package
	order []string
	decls map[*types.Func]declSite
}

// A Package is one loaded, type-checked package: its syntax (non-test files
// only — the invariants gate production code) and its type information.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Packages returns the loaded packages in deterministic (load) order.
func (p *Program) Packages() []*Package {
	out := make([]*Package, 0, len(p.order))
	for _, path := range p.order {
		out = append(out, p.pkgs[path])
	}
	return out
}

// Lookup returns the loaded package whose import path equals path or ends
// in "/"+path, or nil. The suffix form serves analyzers configured with the
// real module paths when they run over short-pathed testdata packages, and
// vice versa.
func (p *Program) Lookup(path string) *Package {
	if pkg, ok := p.pkgs[path]; ok {
		return pkg
	}
	for _, candidate := range p.order {
		if strings.HasSuffix(candidate, "/"+path) {
			return p.pkgs[candidate]
		}
	}
	return nil
}

// loader resolves and type-checks packages on demand. It implements
// types.Importer: module-local (or testdata-local) import paths load from
// source here; everything else falls through to the standard library's
// source importer, which compiles GOROOT packages from source — the only
// importer that works without compiled export data or a module proxy.
type loader struct {
	fset    *token.FileSet
	resolve func(path string) (dir string, ok bool)
	std     types.Importer

	pkgs    map[string]*Package
	loading map[string]bool
	order   []string
}

func newLoader(resolve func(string) (string, bool)) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		resolve: resolve,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// Import satisfies types.Importer for the type-checker's benefit.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir, ok := l.resolve(path); ok {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the package rooted at dir under the given
// import path, memoized.
func (l *loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}

	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	l.order = append(l.order, path)
	return pkg, nil
}

func (l *loader) program() *Program {
	order := append([]string(nil), l.order...)
	sort.Strings(order)
	return &Program{Fset: l.fset, pkgs: l.pkgs, order: order}
}

// goFileNames lists the package's production sources: .go files that are
// neither tests nor editor droppings, sorted for determinism.
func goFileNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// ModulePath reads the module path out of root's go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", root)
}

// LoadModule loads and type-checks the module rooted at root. Patterns are
// either "./..." (every package under root) or "./"-relative package
// directories; an empty pattern list means "./...".
func LoadModule(root string, patterns ...string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}

	resolve := func(path string) (string, bool) {
		if path == modPath {
			return root, true
		}
		if rest, ok := strings.CutPrefix(path, modPath+"/"); ok {
			dir := filepath.Join(root, filepath.FromSlash(rest))
			if hasGoFiles(dir) {
				return dir, true
			}
		}
		return "", false
	}
	l := newLoader(resolve)

	var dirs []string
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			all, err := packageDirs(root)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, all...)
		default:
			dirs = append(dirs, filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pat, "./"))))
		}
	}

	for _, dir := range dirs {
		if !hasGoFiles(dir) {
			return nil, fmt.Errorf("no buildable Go files in %s", dir)
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		if _, err := l.load(path, dir); err != nil {
			return nil, err
		}
	}
	return l.program(), nil
}

// LoadDirs loads packages from an analysistest-style source root: import
// path p lives in srcRoot/p. Imports between testdata packages resolve the
// same way; anything unresolved falls through to the standard library.
func LoadDirs(srcRoot string, importPaths ...string) (*Program, error) {
	srcRoot, err := filepath.Abs(srcRoot)
	if err != nil {
		return nil, err
	}
	resolve := func(path string) (string, bool) {
		dir := filepath.Join(srcRoot, filepath.FromSlash(path))
		return dir, hasGoFiles(dir)
	}
	l := newLoader(resolve)
	for _, path := range importPaths {
		dir, ok := resolve(path)
		if !ok {
			return nil, fmt.Errorf("no buildable Go files for %q under %s", path, srcRoot)
		}
		if _, err := l.load(path, dir); err != nil {
			return nil, err
		}
	}
	return l.program(), nil
}

// packageDirs walks root collecting every directory holding production Go
// files, skipping testdata trees, VCS metadata and hidden directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	names, err := goFileNames(dir)
	return err == nil && len(names) > 0
}
