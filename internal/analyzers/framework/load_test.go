package framework_test

import (
	"testing"

	"dispersal/internal/analyzers/framework"
)

// TestLoadModule type-checks the entire repository through the framework
// loader — the same load dispersalvet performs — proving the source-importer
// fallback covers every standard-library dependency the module uses.
func TestLoadModule(t *testing.T) {
	prog, err := framework.LoadModule("../../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs := prog.Packages()
	if len(pkgs) < 30 {
		t.Fatalf("loaded only %d packages, expected the full module", len(pkgs))
	}
	for _, want := range []string{
		"dispersal",
		"dispersal/internal/solve",
		"dispersal/internal/statewire",
		"dispersal/internal/speccodec",
	} {
		if prog.Lookup(want) == nil {
			t.Errorf("package %s not loaded", want)
		}
	}
	// Suffix lookup is what lets analyzers configured with real module
	// paths resolve short-pathed testdata packages and vice versa.
	if got := prog.Lookup("internal/solve"); got == nil || got.Path != "dispersal/internal/solve" {
		t.Errorf("suffix lookup internal/solve = %v", got)
	}
}

func TestPathMatches(t *testing.T) {
	cases := []struct {
		path  string
		scope []string
		want  bool
	}{
		{"dispersal/internal/solve", []string{"internal/solve"}, true},
		{"dispersal/internal/solve", []string{"solve"}, true},
		{"solve", []string{"solve"}, true},
		{"dispersal/internal/resolve", []string{"solve"}, false},
		{"dispersal/internal/solver", []string{"solve"}, false},
		{"dispersal/internal/solve", nil, false},
	}
	for _, c := range cases {
		if got := framework.PathMatches(c.path, c.scope); got != c.want {
			t.Errorf("PathMatches(%q, %v) = %v, want %v", c.path, c.scope, got, c.want)
		}
	}
}
