// Package nakedgoroutine defines the dispersalvet analyzer that bans
// unsupervised goroutines in the serving-layer packages.
//
// Invariant: every `go` statement in the server, peer, statestore and sweep
// packages launches a function with panic supervision — a deferred recover
// somewhere in its body (directly, or via a deferred call to a helper that
// recovers). These packages sit under singleflight collapsing, bounded
// worker pools and snapshot tickers: a panicking naked goroutine either
// kills the whole replica (Go's default) or, if the panic escapes a path
// that was supposed to close a done-channel or call wg.Done via defer,
// leaves every collapsed waiter blocked forever. Supervision turns a
// poisoned request into an error the batch machinery already knows how to
// route.
//
// The analyzer resolves `go f()` through module-local declarations; a `go`
// on a function value it cannot resolve is flagged too, because it cannot
// be proven supervised.
package nakedgoroutine

import (
	"go/ast"
	"go/types"

	"dispersal/internal/analyzers/framework"
)

// New returns the analyzer covering packages matching scope.
func New(scope []string) *framework.Analyzer {
	a := &framework.Analyzer{
		Name: "nakedgoroutine",
		Doc: "flag `go` statements without panic supervision in the serving " +
			"packages: the goroutine body (or the named function it calls) must " +
			"defer a recover so a panic becomes a routed error instead of a " +
			"process kill or a deadlocked singleflight waiter",
	}
	a.Run = func(pass *framework.Pass) error {
		if !framework.PathMatches(pass.Pkg.Path, scope) {
			return nil
		}
		framework.InspectFiles(pass.Pkg, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, info := goroutineBody(pass, g)
			if body == nil {
				pass.Reportf(g.Pos(),
					"goroutine target cannot be resolved to a declaration; launch a function literal or module-local function with a deferred recover")
				return true
			}
			if !supervised(pass, info, body) {
				pass.Reportf(g.Pos(),
					"unsupervised goroutine: defer a recover in its body so a panic is routed as an error instead of killing the replica")
			}
			return true
		})
		return nil
	}
	return a
}

// goroutineBody resolves the body the `go` statement will run: the literal
// itself, or the declaration of the named module-local function it calls.
func goroutineBody(pass *framework.Pass, g *ast.GoStmt) (*ast.BlockStmt, *types.Info) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body, pass.Pkg.Info
	}
	fn := framework.CalleeOf(pass.Pkg.Info, g.Call)
	if fn == nil {
		return nil, nil
	}
	pkg, decl := pass.Prog.DeclOf(fn)
	if decl == nil || decl.Body == nil {
		return nil, nil
	}
	return decl.Body, pkg.Info
}

// supervised reports whether body defers a recover: a `defer func() { ...
// recover() ... }()` or a `defer helper()` where helper's (module-local)
// body calls recover.
func supervised(pass *framework.Pass, info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(d.Call.Fun).(type) {
		case *ast.FuncLit:
			if callsRecover(info, fun.Body) {
				found = true
			}
		default:
			if fn := framework.CalleeOf(info, d.Call); fn != nil {
				if pkg, decl := pass.Prog.DeclOf(fn); decl != nil && decl.Body != nil {
					if callsRecover(pkg.Info, decl.Body) {
						found = true
					}
				}
			}
		}
		return true
	})
	return found
}

func callsRecover(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "recover" {
				found = true
			}
		}
		return true
	})
	return found
}

// Default is the registry instance covering the serving-layer packages
// whose goroutines sit behind singleflight waiters and worker pools.
func Default() *framework.Analyzer {
	return New([]string{
		"internal/server",
		"internal/session",
		"internal/peer",
		"internal/ring",
		"internal/statestore",
		"internal/sweep",
		"internal/obs",
	})
}
