package nakedgoroutine_test

import (
	"path/filepath"
	"testing"

	"dispersal/internal/analyzers/framework"
	"dispersal/internal/analyzers/nakedgoroutine"
)

func TestNakedGoroutine(t *testing.T) {
	a := nakedgoroutine.New([]string{"srv"})
	framework.RunTest(t, filepath.Join("testdata", "src"), a, "srv")
}
