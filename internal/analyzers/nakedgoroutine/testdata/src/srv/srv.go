// Package srv seeds violations and non-violations for the nakedgoroutine
// analyzer.
package srv

import "log"

// rescue is a module-local recover helper; deferring it counts as
// supervision.
func rescue() {
	if r := recover(); r != nil {
		log.Printf("recovered: %v", r)
	}
}

// worker has its own defer-recover, so launching it bare is fine.
func worker(ch chan<- int) {
	defer func() {
		if r := recover(); r != nil {
			log.Printf("worker: %v", r)
		}
	}()
	ch <- 1
}

// nakedWorker has no supervision of its own.
func nakedWorker(ch chan<- int) {
	ch <- 1
}

// Naked launches an unsupervised literal.
func Naked(ch chan<- int) {
	go func() { // want `unsupervised goroutine`
		ch <- 1
	}()
}

// NakedNamed launches an unsupervised module-local function.
func NakedNamed(ch chan<- int) {
	go nakedWorker(ch) // want `unsupervised goroutine`
}

// SupervisedLit defers a recover literal first thing: fine.
func SupervisedLit(ch chan<- int) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				log.Printf("supervised: %v", r)
			}
		}()
		ch <- 1
	}()
}

// SupervisedHelper defers the module-local rescue helper: fine.
func SupervisedHelper(ch chan<- int) {
	go func() {
		defer rescue()
		ch <- 1
	}()
}

// SupervisedNamed launches a function whose body carries its own
// defer-recover: fine.
func SupervisedNamed(ch chan<- int) {
	go worker(ch)
}

// Opaque launches something the analyzer cannot see into; it must assume
// the worst.
func Opaque(f func()) {
	go f() // want `cannot be resolved`
}
