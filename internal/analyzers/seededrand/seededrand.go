// Package seededrand defines the dispersalvet analyzer that bans the
// process-global math/rand sources from this repository.
//
// Invariant: every random draw in solver and experiment code flows from an
// explicitly seeded generator (the root package's newRand/deriveSeed
// plumbing), never from the shared global source. The global source is
// seeded per process and shared across goroutines, so any call into it
// makes runs irreproducible — and reproducibility is load-bearing here: the
// golden report tests, the warm/cold equivalence properties and the
// locality-chained sweeps all assume a spec plus a seed pins every byte of
// the output.
//
// The analyzer flags any call to a package-level function of math/rand or
// math/rand/v2 other than the constructors (New, NewPCG, NewChaCha8,
// NewSource, NewZipf). Methods on an explicit *rand.Rand are always fine.
package seededrand

import (
	"go/ast"

	"dispersal/internal/analyzers/framework"
)

// constructors are the package-level functions of math/rand{,/v2} that do
// not touch the global source: they build explicit generators, which is
// exactly what the invariant demands.
var constructors = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewSource":  true,
	"NewZipf":    true,
}

// New returns the analyzer restricted to packages matching scope
// (framework.PathMatches); a nil scope covers every loaded package.
func New(scope []string) *framework.Analyzer {
	a := &framework.Analyzer{
		Name: "seededrand",
		Doc: "flag math/rand global-source calls (rand.IntN, rand.Float64, " +
			"rand.Shuffle, ...): draws must come from an explicitly seeded " +
			"*rand.Rand so every run is reproducible from its spec seed",
	}
	a.Run = func(pass *framework.Pass) error {
		if scope != nil && !framework.PathMatches(pass.Pkg.Path, scope) {
			return nil
		}
		framework.InspectFiles(pass.Pkg, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := framework.CalleeOf(pass.Pkg.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if fn.Signature().Recv() != nil || constructors[fn.Name()] {
				return true
			}
			pass.Reportf(call.Pos(),
				"call to %s.%s uses the process-global random source; thread an explicitly seeded *rand.Rand instead",
				path, fn.Name())
			return true
		})
		return nil
	}
	return a
}

// Default is the registry instance: every package of the module is in
// scope — nothing in a reproducibility-gated repository should draw from
// the global source.
func Default() *framework.Analyzer { return New(nil) }
