package seededrand_test

import (
	"path/filepath"
	"testing"

	"dispersal/internal/analyzers/framework"
	"dispersal/internal/analyzers/seededrand"
)

func TestSeededRand(t *testing.T) {
	framework.RunTest(t, filepath.Join("testdata", "src"), seededrand.New(nil), "a")
}

// TestScope proves the scope filter: the same violations go unreported when
// the package is out of scope.
func TestScope(t *testing.T) {
	a := seededrand.New([]string{"somewhere/else"})
	prog, err := framework.LoadDirs(filepath.Join("testdata", "src"), "a")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := framework.Run(prog, []*framework.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("out-of-scope package still reported: %v", diags)
	}
}
