// Package a seeds violations and non-violations for the seededrand
// analyzer: global-source draws are flagged, explicit generators are not.
package a

import "math/rand/v2"

// Bad draws from the process-global source.
func Bad() int {
	return rand.IntN(10) // want `process-global random source`
}

// BadShuffle mutates through the global source.
func BadShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want `process-global random source`
		xs[i], xs[j] = xs[j], xs[i]
	})
}

// Good threads an explicit generator.
func Good(r *rand.Rand) float64 {
	return r.Float64()
}

// GoodNew builds an explicitly seeded generator: constructors are allowed.
func GoodNew(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 1))
}
