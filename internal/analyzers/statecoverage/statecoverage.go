// Package statecoverage defines the dispersalvet analyzer that makes
// solver-state/wire-codec drift a build-time failure.
//
// Invariant: every field of internal/solve.State — the equilibrium,
// coverage-optimum and sigma* parts included — crosses the statewire
// boundary. solve.State keeps its fields unexported behind accessor and
// builder methods, so the analyzer proves coverage through them:
//
//   - for Encode, every State field must have at least one reader (an
//     exported method or function of the solve package whose body reads the
//     field) that Encode transitively calls;
//   - for Decode, every field must have at least one writer (a constructor
//     or With* builder assigning the field) that Decode transitively calls.
//
// Adding a field to State without threading it through the codec —
// historically a fuzz-lottery bug: states round-trip "successfully" while
// silently dropping the new part, and every federated replica then warms
// from truncated state — now fails the lint gate naming the field.
//
// Whole-struct copies (`out := *s`) deliberately do not count as coverage:
// only a per-field read or write proves the codec knows the field exists.
package statecoverage

import (
	"fmt"
	"go/ast"
	"go/types"

	"dispersal/internal/analyzers/framework"
)

// Config names the two packages and three declarations the invariant spans.
// Paths may be suffixes (framework.PathMatches-style), which is how the
// testdata packages stand in for the real ones.
type Config struct {
	SolvePath string // package defining the state struct
	WirePath  string // package defining the codec
	StateName string // the state struct type
	Encode    string // the encoder entry point
	Decode    string // the decoder entry point
}

// New returns the analyzer for cfg.
func New(cfg Config) *framework.Analyzer {
	a := &framework.Analyzer{
		Name: "statecoverage",
		Doc: "prove every field of the solver state crosses the wire codec: " +
			"each field needs a reader reachable from Encode and a writer " +
			"reachable from Decode, so adding a State field without codec " +
			"support fails the build gate instead of silently truncating " +
			"federated warm state",
	}
	a.Run = func(pass *framework.Pass) error {
		wire := pass.Prog.Lookup(cfg.WirePath)
		if wire == nil || pass.Pkg != wire {
			return nil
		}
		solve := pass.Prog.Lookup(cfg.SolvePath)
		if solve == nil {
			return nil // partial load without the state package
		}

		stateFields, err := fieldsOf(solve, cfg.StateName)
		if err != nil {
			return err
		}
		readers, writers := classifyAccessors(solve, stateFields)

		encodeDecl := topLevelFunc(wire, cfg.Encode)
		decodeDecl := topLevelFunc(wire, cfg.Decode)
		if encodeDecl == nil || decodeDecl == nil {
			return fmt.Errorf("codec package %s lacks %s or %s", wire.Path, cfg.Encode, cfg.Decode)
		}
		encodeCalls := solveCallees(pass.Prog, wire, solve, encodeDecl)
		decodeCalls := solveCallees(pass.Prog, wire, solve, decodeDecl)

		for _, field := range stateFields {
			if !intersects(readers[field], encodeCalls) {
				pass.Reportf(encodeDecl.Pos(),
					"state field %s is never read by %s: no solve accessor reading it is called, so the field is silently dropped on the wire",
					field.Name(), cfg.Encode)
			}
			if !intersects(writers[field], decodeCalls) {
				pass.Reportf(decodeDecl.Pos(),
					"state field %s is never written by %s: no solve constructor or builder assigning it is called, so decoded states silently lose the field",
					field.Name(), cfg.Decode)
			}
		}
		return nil
	}
	return a
}

// fieldsOf returns the field objects of the named struct type.
func fieldsOf(pkg *framework.Package, name string) ([]*types.Var, error) {
	obj, ok := pkg.Types.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil, fmt.Errorf("type %s not found in %s", name, pkg.Path)
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, fmt.Errorf("%s.%s is not a struct", pkg.Path, name)
	}
	fields := make([]*types.Var, 0, st.NumFields())
	for i := 0; i < st.NumFields(); i++ {
		fields = append(fields, st.Field(i))
	}
	return fields, nil
}

// classifyAccessors maps each state field to the solve-package functions
// that read it and those that write it. A write is an assignment through a
// selector or a keyed composite-literal element; any other selector
// occurrence is a read.
func classifyAccessors(pkg *framework.Package, fields []*types.Var) (readers, writers map[*types.Var]map[*types.Func]bool) {
	isField := make(map[types.Object]*types.Var, len(fields))
	for _, f := range fields {
		isField[f] = f
	}
	fieldByName := make(map[string]*types.Var, len(fields))
	for _, f := range fields {
		fieldByName[f.Name()] = f
	}
	readers = make(map[*types.Var]map[*types.Func]bool)
	writers = make(map[*types.Var]map[*types.Func]bool)
	add := func(m map[*types.Var]map[*types.Func]bool, f *types.Var, fn *types.Func) {
		if m[f] == nil {
			m[f] = make(map[*types.Func]bool)
		}
		m[f][fn] = true
	}

	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := pkg.FuncFor(fd)
			if fn == nil {
				continue
			}
			// Pass 1: collect the selector expressions in write position.
			written := make(map[ast.Expr]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range x.Lhs {
						written[ast.Unparen(lhs)] = true
					}
				case *ast.IncDecStmt:
					written[ast.Unparen(x.X)] = true
				}
				return true
			})
			// Pass 2: classify every state-field selector, and catch keyed
			// composite literals of the state type (constructor writes).
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.SelectorExpr:
					obj := pkg.Info.Uses[x.Sel]
					if obj == nil {
						if sel, ok := pkg.Info.Selections[x]; ok {
							obj = sel.Obj()
						}
					}
					if f, ok := isField[obj]; ok {
						if written[x] {
							add(writers, f, fn)
						} else {
							add(readers, f, fn)
						}
					}
				case *ast.CompositeLit:
					for _, elt := range x.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := kv.Key.(*ast.Ident)
						if !ok {
							continue
						}
						if obj := pkg.Info.Uses[key]; obj != nil {
							if f, ok := isField[obj]; ok {
								add(writers, f, fn)
							}
						} else if f, ok := fieldByName[key.Name]; ok && litIsState(pkg.Info, x, f) {
							add(writers, f, fn)
						}
					}
				}
				return true
			})
		}
	}
	return readers, writers
}

// litIsState reports whether the composite literal builds the struct
// holding field f (directly or via a pointer).
func litIsState(info *types.Info, lit *ast.CompositeLit, f *types.Var) bool {
	tv, ok := info.Types[lit]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i) == f {
			return true
		}
	}
	return false
}

func topLevelFunc(pkg *framework.Package, name string) *ast.FuncDecl {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}

// solveCallees returns the set of solve-package functions the declaration
// transitively calls, following wire-package-local calls.
func solveCallees(prog *framework.Program, wire, solve *framework.Package, root *ast.FuncDecl) map[*types.Func]bool {
	out := make(map[*types.Func]bool)
	visited := make(map[*ast.FuncDecl]bool)
	var visit func(fd *ast.FuncDecl)
	visit = func(fd *ast.FuncDecl) {
		if fd == nil || fd.Body == nil || visited[fd] {
			return
		}
		visited[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := framework.CalleeOf(wire.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg() {
			case solve.Types:
				out[fn] = true
			case wire.Types:
				_, decl := prog.DeclOf(fn)
				visit(decl)
			}
			return true
		})
	}
	visit(root)
	return out
}

func intersects(set map[*types.Func]bool, called map[*types.Func]bool) bool {
	for fn := range set {
		if called[fn] {
			return true
		}
	}
	return false
}

// Default is the registry instance bound to the real solver-state and wire
// packages.
func Default() *framework.Analyzer {
	return New(Config{
		SolvePath: "internal/solve",
		WirePath:  "internal/statewire",
		StateName: "State",
		Encode:    "Encode",
		Decode:    "Decode",
	})
}
