package statecoverage_test

import (
	"path/filepath"
	"testing"

	"dispersal/internal/analyzers/framework"
	"dispersal/internal/analyzers/statecoverage"
)

func config(tree string) statecoverage.Config {
	return statecoverage.Config{
		SolvePath: tree + "/slv",
		WirePath:  tree + "/wire",
		StateName: "State",
		Encode:    "Encode",
		Decode:    "Decode",
	}
}

// TestBadCodec proves the analyzer names a field the codec drops in each
// direction.
func TestBadCodec(t *testing.T) {
	a := statecoverage.New(config("bad"))
	framework.RunTest(t, filepath.Join("testdata", "src"), a, "bad/slv", "bad/wire")
}

// TestGoodCodec proves full coverage — including a read through a
// codec-local helper — is accepted.
func TestGoodCodec(t *testing.T) {
	a := statecoverage.New(config("good"))
	framework.RunTest(t, filepath.Join("testdata", "src"), a, "good/slv", "good/wire")
}
