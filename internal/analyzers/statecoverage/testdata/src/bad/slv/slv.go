// Package slv is a miniature solver-state package: fields unexported,
// access through methods, mirroring the real internal/solve.State.
package slv

// State is the solver state. The sigma field is the one the bad codec
// forgets.
type State struct {
	name  string
	nu    float64
	sigma []float64
}

// New builds a state with the scalar parts.
func New(name string, nu float64) State {
	return State{name: name, nu: nu}
}

// Name reads the name field.
func (s State) Name() string { return s.name }

// Nu reads the nu field.
func (s State) Nu() float64 { return s.nu }

// Sigma reads the sigma field — defined, but the bad Encode never calls it.
func (s State) Sigma() []float64 { return s.sigma }

// WithSigma writes the sigma field — defined, but the bad Decode never
// calls it.
func (s State) WithSigma(sig []float64) State {
	s.sigma = sig
	return s
}
