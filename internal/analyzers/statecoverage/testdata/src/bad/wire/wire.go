// Package wire is a codec that silently drops the sigma field in both
// directions: the round-trip "works" and loses data.
package wire

import (
	"strconv"
	"strings"

	"bad/slv"
)

// Encode serializes a state — but never reads sigma.
func Encode(s slv.State) string { // want `state field sigma is never read by Encode`
	return s.Name() + "|" + strconv.FormatFloat(s.Nu(), 'g', -1, 64)
}

// Decode parses a state — but never writes sigma.
func Decode(blob string) slv.State { // want `state field sigma is never written by Decode`
	parts := strings.SplitN(blob, "|", 2)
	nu, _ := strconv.ParseFloat(parts[1], 64)
	return slv.New(parts[0], nu)
}
