// Package wire covers every state field: sigma is read through a codec-local
// helper (the analyzer must follow wire-internal calls) and written back via
// the WithSigma builder.
package wire

import (
	"strconv"
	"strings"

	"good/slv"
)

// Encode serializes every field; the sigma read happens inside encodeSigma.
func Encode(s slv.State) string {
	return s.Name() + "|" + strconv.FormatFloat(s.Nu(), 'g', -1, 64) + "|" + encodeSigma(s)
}

func encodeSigma(s slv.State) string {
	parts := make([]string, 0, len(s.Sigma()))
	for _, v := range s.Sigma() {
		parts = append(parts, strconv.FormatFloat(v, 'g', -1, 64))
	}
	return strings.Join(parts, ",")
}

// Decode writes every field back.
func Decode(blob string) slv.State {
	parts := strings.SplitN(blob, "|", 3)
	nu, _ := strconv.ParseFloat(parts[1], 64)
	s := slv.New(parts[0], nu)
	var sigma []float64
	for _, p := range strings.Split(parts[2], ",") {
		if p == "" {
			continue
		}
		v, _ := strconv.ParseFloat(p, 64)
		sigma = append(sigma, v)
	}
	return s.WithSigma(sigma)
}
