// Package asymptotic analyzes the large-k behaviour of the paper's optimal
// strategy sigma* — material the paper does not spell out but that follows
// from its closed form, and that a user sizing a deployment (how many
// explorers do I need?) would want:
//
//   - Support growth: W(k) is the largest y with
//     sum_{x<=y} (1 - (f(y)/f(x))^(1/(k-1))) <= 1; a first-order expansion
//     of the exponent gives the log-criterion
//     W(k) ~ max{ y : sum_{x<=y} ln(f(x)/f(y)) <= k-1 }.
//   - The exact miss identity: writing nu = alpha^(k-1) for the equilibrium
//     payoff, the uncovered value satisfies
//     Miss(sigma*) = (W-1)*nu + sum_{x>W} f(x)
//     exactly, because (1-sigma*(x))^k = alpha^k f(x)^(-k/(k-1)) sums
//     against f(x) to alpha^k * sum f(x)^(-1/(k-1)) = (W-1)*alpha^(k-1).
//   - The uniform limit: once W = M, sigma* approaches the uniform
//     distribution at rate 1/(k-1), with
//     lim (k-1) * (sigma*(x) - 1/M) = ((M-1)/M) * (ln f(x) - avg ln f) —
//     see LimitCorrection.
//
// Experiment E18 verifies all three numerically.
package asymptotic

import (
	"errors"
	"fmt"
	"math"

	"dispersal/internal/coverage"
	"dispersal/internal/ifd"
	"dispersal/internal/numeric"
	"dispersal/internal/site"
)

// ErrPlayers is returned for invalid player counts.
var ErrPlayers = errors.New("asymptotic: player count k must be >= 2")

// SupportSize returns the exact support size W(k) of sigma*.
func SupportSize(f site.Values, k int) (int, error) {
	_, res, err := ifd.Exclusive(f, k)
	if err != nil {
		return 0, err
	}
	return res.W, nil
}

// ApproxSupportSize returns the first-order (log-criterion) approximation
// of W(k): the largest y with sum_{x<=y} ln(f(x)/f(y)) <= k-1.
func ApproxSupportSize(f site.Values, k int) (int, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	if k < 2 {
		return 0, fmt.Errorf("%w: k=%d", ErrPlayers, k)
	}
	w := 1
	for y := 2; y <= len(f); y++ {
		var s numeric.Accumulator
		for x := 0; x < y; x++ {
			s.Add(math.Log(f[x] / f[y-1]))
		}
		if s.Sum() <= float64(k-1) {
			w = y
		} else {
			break
		}
	}
	return w, nil
}

// MissIdentity returns the exact uncovered value Miss(sigma*) and its
// closed-form prediction (W-1)*nu + sum_{x>W} f(x). The two agree to
// machine precision for every game; the test suite asserts it.
func MissIdentity(f site.Values, k int) (measured, predicted float64, err error) {
	sigma, res, err := ifd.Exclusive(f, k)
	if err != nil {
		return 0, 0, err
	}
	measured = coverage.Miss(f, sigma, k)
	var tail numeric.Accumulator
	for x := res.W; x < len(f); x++ {
		tail.Add(f[x])
	}
	predicted = float64(res.W-1)*res.Nu + tail.Sum()
	return measured, predicted, nil
}

// LimitCorrection returns, for a game with full support (W = M), the
// predicted first-order deviation of sigma* from uniform:
//
//	sigma*(x) ~ 1/M + d[x] / (k-1),
//	d[x] = ((M-1)/M) * (ln f(x) - (1/M) sum_y ln f(y)),
//
// (expand f^(-1/(k-1)) = exp(-ln f/(k-1)) to first order in 1/(k-1) inside
// the paper's closed form), so that (k-1)*(sigma*(x) - 1/M) -> d[x].
func LimitCorrection(f site.Values) []float64 {
	m := len(f)
	logs := make([]float64, m)
	var mean numeric.Accumulator
	for x, v := range f {
		logs[x] = math.Log(v)
		mean.Add(logs[x])
	}
	mu := mean.Sum() / float64(m)
	scale := float64(m-1) / float64(m)
	for x := range logs {
		logs[x] = scale * (logs[x] - mu)
	}
	return logs
}

// ScaledDeviation returns (k-1) * (sigma*(x) - 1/M) for each site, the
// quantity that converges to LimitCorrection. It errors if the support is
// not yet full at this k (the limit statement assumes W = M).
func ScaledDeviation(f site.Values, k int) ([]float64, error) {
	sigma, res, err := ifd.Exclusive(f, k)
	if err != nil {
		return nil, err
	}
	m := len(f)
	if res.W != m {
		return nil, fmt.Errorf("asymptotic: support W=%d < M=%d at k=%d; increase k", res.W, m, k)
	}
	out := make([]float64, m)
	for x := range sigma {
		out[x] = float64(k-1) * (sigma[x] - 1/float64(m))
	}
	return out, nil
}

// PlayersForFullSupport returns the smallest k at which sigma* explores
// every site (W = M), found by doubling + binary search; maxK bounds the
// search (<= 0 uses 1<<20).
func PlayersForFullSupport(f site.Values, maxK int) (int, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	if maxK <= 0 {
		maxK = 1 << 20
	}
	m := len(f)
	if m == 1 {
		return 1, nil
	}
	full := func(k int) (bool, error) {
		w, err := SupportSize(f, k)
		if err != nil {
			return false, err
		}
		return w == m, nil
	}
	// Doubling to bracket.
	hi := 2
	for {
		ok, err := full(hi)
		if err != nil {
			return 0, err
		}
		if ok {
			break
		}
		if hi >= maxK {
			return 0, fmt.Errorf("asymptotic: no full support up to k=%d", maxK)
		}
		hi *= 2
		if hi > maxK {
			hi = maxK
		}
	}
	lo := hi / 2
	if lo < 2 {
		lo = 2
	}
	// Binary search for the threshold (full(k) is monotone in k: more
	// players flatten the equilibrium and can only widen the support).
	for lo < hi {
		mid := lo + (hi-lo)/2
		ok, err := full(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return hi, nil
}
