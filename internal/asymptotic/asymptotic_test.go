package asymptotic

import (
	"math"
	"math/rand/v2"
	"testing"

	"dispersal/internal/numeric"
	"dispersal/internal/site"
)

func TestMissIdentityExact(t *testing.T) {
	// Miss(sigma*) == (W-1)*nu + tail, to machine precision, for random
	// games — a strong structural check on the closed form.
	rng := rand.New(rand.NewPCG(18, 5))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.IntN(30)
		k := 2 + rng.IntN(20)
		f := site.Random(rng, m, 0.05, 5)
		measured, predicted, err := MissIdentity(f, k)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqual(measured, predicted, 1e-9) {
			t.Fatalf("M=%d k=%d: miss %v != predicted %v", m, k, measured, predicted)
		}
	}
}

func TestApproxSupportSizeTracksExact(t *testing.T) {
	f := site.Geometric(40, 1, 0.9)
	for _, k := range []int{2, 4, 8, 16, 32, 64} {
		exact, err := SupportSize(f, k)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := ApproxSupportSize(f, k)
		if err != nil {
			t.Fatal(err)
		}
		// First-order approximation: allow a small absolute slack that
		// shrinks relative to W.
		diff := exact - approx
		if diff < 0 {
			diff = -diff
		}
		if diff > 2+exact/5 {
			t.Errorf("k=%d: exact W=%d, approx=%d", k, exact, approx)
		}
	}
}

func TestSupportSizeMonotoneInK(t *testing.T) {
	f := site.Zipf(25, 1, 1)
	prev := 0
	for _, k := range []int{2, 3, 5, 9, 17, 33} {
		w, err := SupportSize(f, k)
		if err != nil {
			t.Fatal(err)
		}
		if w < prev {
			t.Fatalf("support shrank at k=%d: %d < %d", k, w, prev)
		}
		prev = w
	}
}

func TestScaledDeviationConvergesToLimitCorrection(t *testing.T) {
	f := site.Values{1, 0.8, 0.6, 0.4}
	want := LimitCorrection(f)
	var prevErr float64 = math.Inf(1)
	for _, k := range []int{8, 32, 128, 512} {
		got, err := ScaledDeviation(f, k)
		if err != nil {
			t.Fatal(err)
		}
		var worst float64
		for x := range got {
			if d := math.Abs(got[x] - want[x]); d > worst {
				worst = d
			}
		}
		if worst > prevErr+1e-9 {
			t.Fatalf("k=%d: deviation error grew: %v after %v", k, worst, prevErr)
		}
		prevErr = worst
	}
	if prevErr > 0.02 {
		t.Errorf("limit error at k=512 still %v", prevErr)
	}
}

func TestScaledDeviationRequiresFullSupport(t *testing.T) {
	f := site.Geometric(30, 1, 0.2) // steep: W << M at small k
	if _, err := ScaledDeviation(f, 2); err == nil {
		t.Error("partial support accepted")
	}
}

func TestLimitCorrectionZeroMean(t *testing.T) {
	f := site.Zipf(9, 1, 1)
	d := LimitCorrection(f)
	var sum float64
	for _, v := range d {
		sum += v
	}
	if math.Abs(sum) > 1e-9 {
		t.Errorf("corrections sum to %v, want 0", sum)
	}
	// Decreasing values => decreasing corrections.
	for i := 1; i < len(d); i++ {
		if d[i] > d[i-1]+1e-12 {
			t.Fatalf("corrections not ordered at %d", i)
		}
	}
}

func TestPlayersForFullSupport(t *testing.T) {
	f := site.Geometric(10, 1, 0.5)
	kFull, err := PlayersForFullSupport(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Verify the threshold is tight.
	w, err := SupportSize(f, kFull)
	if err != nil {
		t.Fatal(err)
	}
	if w != 10 {
		t.Errorf("W(kFull)=%d, want 10", w)
	}
	if kFull > 2 {
		wBefore, err := SupportSize(f, kFull-1)
		if err != nil {
			t.Fatal(err)
		}
		if wBefore == 10 {
			t.Errorf("threshold not minimal: W(k-1)=%d", wBefore)
		}
	}
}

func TestPlayersForFullSupportUniformValues(t *testing.T) {
	// Equal values: full support at every k >= 2.
	f := site.Uniform(5, 1)
	kFull, err := PlayersForFullSupport(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if kFull != 2 {
		t.Errorf("kFull = %d, want 2", kFull)
	}
}

func TestPlayersForFullSupportSingleSite(t *testing.T) {
	kFull, err := PlayersForFullSupport(site.Values{3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if kFull != 1 {
		t.Errorf("kFull = %d, want 1", kFull)
	}
}

func TestPlayersForFullSupportRespectsMaxK(t *testing.T) {
	// An extremely steep landscape needs a huge k; a tiny cap must error.
	f := site.Geometric(20, 1, 1e-6)
	if _, err := PlayersForFullSupport(f, 4); err == nil {
		t.Error("capped search should fail")
	}
}

func TestApproxSupportSizeErrors(t *testing.T) {
	if _, err := ApproxSupportSize(site.Values{1, 0.5}, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := ApproxSupportSize(site.Values{0.5, 1}, 3); err == nil {
		t.Error("unsorted accepted")
	}
}
