// Package capacity implements the second relaxation the paper proposes in
// Section 5.1: "there is a maximum capacity of consumption per individual".
// The coverage functional generalizes to the expected group consumption
//
//	Consume(p) = sum_x E[ min(f(x), Cap * N_x) ],  N_x ~ Binomial(k, p(x)),
//
// where Cap is the most one individual can consume at a site. Cap = +Inf
// recovers the paper's coverage (a single visitor consumes the full site);
// finite Cap rewards sending several players to rich sites, so the
// coverage-optimal sigma* is no longer consumption-optimal — this package
// quantifies the divergence (experiment E15).
package capacity

import (
	"errors"
	"fmt"
	"math"

	"dispersal/internal/coverage"
	"dispersal/internal/numeric"
	"dispersal/internal/optimize"
	"dispersal/internal/site"
	"dispersal/internal/strategy"
)

// Errors returned by the package.
var (
	ErrCap     = errors.New("capacity: per-individual capacity must be positive")
	ErrPlayers = errors.New("capacity: player count k must be >= 1")
	ErrDim     = errors.New("capacity: strategy and value dimensions differ")
)

// Consumption returns the expected group consumption of symmetric strategy
// p with per-individual capacity cap. cap = math.Inf(1) reproduces
// coverage.Cover exactly.
func Consumption(f site.Values, p strategy.Strategy, k int, cap float64) (float64, error) {
	if len(f) != len(p) {
		return 0, ErrDim
	}
	if k < 1 {
		return 0, fmt.Errorf("%w: k=%d", ErrPlayers, k)
	}
	if cap <= 0 || math.IsNaN(cap) {
		return 0, fmt.Errorf("%w: cap=%v", ErrCap, cap)
	}
	if math.IsInf(cap, 1) {
		return coverage.Cover(f, p, k), nil
	}
	var acc numeric.Accumulator
	for x := range f {
		acc.Add(siteConsumption(f[x], p[x], k, cap))
	}
	return acc.Sum(), nil
}

// siteConsumption is E[min(fx, cap*N)] with N ~ Binomial(k, q).
func siteConsumption(fx, q float64, k int, cap float64) float64 {
	// Visitors beyond ceil(fx/cap) add nothing; exploit that to shorten
	// the sum when cap is large.
	full := int(math.Ceil(fx / cap))
	var acc numeric.Accumulator
	tailMass := 1.0 // P[N >= full]
	for n := 0; n < full && n <= k; n++ {
		w := numeric.BinomialPMF(k, n, q)
		acc.Add(w * cap * float64(n))
		tailMass -= w
	}
	if full <= k && tailMass > 0 {
		acc.Add(tailMass * fx)
	}
	return acc.Sum()
}

// marginal returns the derivative of siteConsumption with respect to q:
// d/dq E[phi(N)] = k * E[phi(N'+1) - phi(N')], N' ~ Binomial(k-1, q), with
// phi(n) = min(fx, cap*n).
func marginal(fx, q float64, k int, cap float64) float64 {
	phi := func(n int) float64 { return math.Min(fx, cap*float64(n)) }
	var acc numeric.Accumulator
	for n := 0; n <= k-1; n++ {
		w := numeric.BinomialPMF(k-1, n, q)
		if w == 0 {
			continue
		}
		acc.Add(w * (phi(n+1) - phi(n)))
	}
	return float64(k) * acc.Sum()
}

// MaxConsumption returns the symmetric strategy maximizing Consumption and
// its value. The objective is separable and concave in p (min(f, cap*n) is
// concave in n, and binomial expectations of concave functions are concave
// in the success probability), so projected gradient from the uniform
// start converges to the global optimum; extra starts guard the boundary.
func MaxConsumption(f site.Values, k int, cap float64) (strategy.Strategy, float64, error) {
	if err := f.Validate(); err != nil {
		return nil, 0, err
	}
	if k < 1 {
		return nil, 0, fmt.Errorf("%w: k=%d", ErrPlayers, k)
	}
	if cap <= 0 || math.IsNaN(cap) {
		return nil, 0, fmt.Errorf("%w: cap=%v", ErrCap, cap)
	}
	m := len(f)
	if math.IsInf(cap, 1) {
		p, _, err := optimize.MaxCoverage(f, k)
		if err != nil {
			return nil, 0, err
		}
		return p, coverage.Cover(f, p, k), nil
	}
	obj := func(p strategy.Strategy) float64 {
		var acc numeric.Accumulator
		for x := range p {
			acc.Add(siteConsumption(f[x], p[x], k, cap))
		}
		return acc.Sum()
	}
	grad := func(p strategy.Strategy, g []float64) {
		for x := range p {
			g[x] = marginal(f[x], p[x], k, cap)
		}
	}
	starts := []strategy.Strategy{
		strategy.Uniform(m),
		strategy.UniformFirst(m, minInt(k, m)),
		strategy.Delta(m, 0),
	}
	if sigma, _, err := optimize.MaxCoverage(f, k); err == nil {
		starts = append(starts, sigma)
	}
	if prop, err := strategy.Proportional(f); err == nil {
		starts = append(starts, prop)
	}
	var best strategy.Strategy
	bestVal := math.Inf(-1)
	for _, s := range starts {
		p, v := optimize.ProjectedGradient(obj, grad, s, optimize.PGOptions{MaxIter: 5000})
		if v > bestVal {
			best, bestVal = p.Clone(), v
		}
	}
	return best, bestVal, nil
}

// SigmaStarGap reports how far the paper's sigma* falls below the
// consumption optimum at capacity cap: it returns Consumption(sigma*),
// the optimal consumption, and their ratio (<= 1).
func SigmaStarGap(f site.Values, k int, cap float64) (sigmaCons, optCons, ratio float64, err error) {
	sigma, _, err := optimize.MaxCoverage(f, k)
	if err != nil {
		return 0, 0, 0, err
	}
	sigmaCons, err = Consumption(f, sigma, k, cap)
	if err != nil {
		return 0, 0, 0, err
	}
	_, optCons, err = MaxConsumption(f, k, cap)
	if err != nil {
		return 0, 0, 0, err
	}
	if optCons <= 0 {
		return sigmaCons, optCons, 1, nil
	}
	return sigmaCons, optCons, sigmaCons / optCons, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
