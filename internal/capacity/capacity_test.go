package capacity

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"dispersal/internal/coverage"
	"dispersal/internal/numeric"
	"dispersal/internal/optimize"
	"dispersal/internal/site"
	"dispersal/internal/strategy"
)

func TestInfiniteCapacityEqualsCoverage(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 5))
	for trial := 0; trial < 25; trial++ {
		m := 1 + rng.IntN(10)
		k := 1 + rng.IntN(8)
		f := site.Random(rng, m, 0.2, 3)
		p := randomStrategy(rng, m)
		got, err := Consumption(f, p, k, math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		want := coverage.Cover(f, p, k)
		if !numeric.AlmostEqual(got, want, 1e-10) {
			t.Fatalf("inf-cap consumption %v != coverage %v", got, want)
		}
	}
}

func TestLargeFiniteCapacityApproachesCoverage(t *testing.T) {
	f := site.Values{1, 0.5}
	p := strategy.Uniform(2)
	got, err := Consumption(f, p, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := coverage.Cover(f, p, 3)
	if !numeric.AlmostEqual(got, want, 1e-9) {
		t.Errorf("cap=100: %v vs %v", got, want)
	}
}

func TestConsumptionHandComputed(t *testing.T) {
	// One site of value 1, k=2, cap=0.4, p=(1): N=2 surely, consumption
	// min(1, 0.8) = 0.8.
	f := site.Values{1}
	p := strategy.Strategy{1}
	got, err := Consumption(f, p, 2, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(got, 0.8, 1e-12) {
		t.Errorf("consumption = %v, want 0.8", got)
	}
	// cap=0.6: min(1, 1.2) = 1.
	got, err = Consumption(f, p, 2, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(got, 1, 1e-12) {
		t.Errorf("consumption = %v, want 1", got)
	}
}

func TestConsumptionBinomialMixture(t *testing.T) {
	// Two sites, k=2, p=(1/2,1/2), cap=0.3, f=(1, 1).
	// Per site: N ~ Bin(2, 1/2): P(0)=1/4 -> 0, P(1)=1/2 -> 0.3, P(2)=1/4 -> 0.6.
	// E = 0.15+0.15 = 0.3 per site, 0.6 total.
	f := site.Values{1, 1}
	p := strategy.Uniform(2)
	got, err := Consumption(f, p, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(got, 0.6, 1e-12) {
		t.Errorf("consumption = %v, want 0.6", got)
	}
}

func TestConsumptionMonotoneInCap(t *testing.T) {
	f := site.Geometric(4, 1, 0.6)
	p := strategy.Uniform(4)
	prev := 0.0
	for _, cap := range []float64{0.05, 0.1, 0.2, 0.5, 1, 5} {
		got, err := Consumption(f, p, 3, cap)
		if err != nil {
			t.Fatal(err)
		}
		if got < prev-1e-12 {
			t.Fatalf("consumption decreased at cap=%v", cap)
		}
		prev = got
	}
}

func TestConsumptionErrors(t *testing.T) {
	f := site.Values{1, 0.5}
	if _, err := Consumption(f, strategy.Uniform(3), 2, 1); !errors.Is(err, ErrDim) {
		t.Error("dim mismatch accepted")
	}
	if _, err := Consumption(f, strategy.Uniform(2), 0, 1); !errors.Is(err, ErrPlayers) {
		t.Error("k=0 accepted")
	}
	if _, err := Consumption(f, strategy.Uniform(2), 2, 0); !errors.Is(err, ErrCap) {
		t.Error("cap=0 accepted")
	}
	if _, err := Consumption(f, strategy.Uniform(2), 2, math.NaN()); !errors.Is(err, ErrCap) {
		t.Error("NaN cap accepted")
	}
}

func TestMarginalMatchesFiniteDifference(t *testing.T) {
	for _, cap := range []float64{0.2, 0.5, 2} {
		for _, q := range []float64{0.1, 0.4, 0.8} {
			h := 1e-6
			fd := (siteConsumption(1, q+h, 5, cap) - siteConsumption(1, q-h, 5, cap)) / (2 * h)
			got := marginal(1, q, 5, cap)
			if !numeric.AlmostEqual(got, fd, 1e-4) {
				t.Errorf("cap=%v q=%v: marginal %v, fd %v", cap, q, got, fd)
			}
		}
	}
}

func TestMaxConsumptionInfiniteCapMatchesSigmaStar(t *testing.T) {
	f := site.Geometric(6, 1, 0.7)
	k := 3
	p, v, err := MaxConsumption(f, k, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	sigma, _, err := optimize.MaxCoverage(f, k)
	if err != nil {
		t.Fatal(err)
	}
	if d := p.LInf(sigma); d > 1e-9 {
		t.Errorf("inf-cap optimum differs from sigma* by %v", d)
	}
	if !numeric.AlmostEqual(v, coverage.Cover(f, sigma, k), 1e-9) {
		t.Errorf("value %v", v)
	}
}

func TestMaxConsumptionBeatsSigmaStarAtSmallCap(t *testing.T) {
	// With a tight per-individual capacity and a dominant site, the
	// optimal plan sends more players to the rich site than sigma* does.
	f := site.Values{1, 0.1}
	k := 4
	cap := 0.25
	sCons, optCons, ratio, err := SigmaStarGap(f, k, cap)
	if err != nil {
		t.Fatal(err)
	}
	if ratio >= 1-1e-6 {
		t.Errorf("expected a strict gap: sigma* %v, optimum %v, ratio %v", sCons, optCons, ratio)
	}
	if sCons > optCons+1e-9 {
		t.Errorf("sigma* exceeds the optimum: %v > %v", sCons, optCons)
	}
}

func TestMaxConsumptionIsActuallyOptimal(t *testing.T) {
	// Grid-check on a 2-site game that PGA found the global optimum.
	f := site.Values{1, 0.4}
	k := 3
	cap := 0.3
	_, v, err := MaxConsumption(f, k, cap)
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for i := 0; i <= 1000; i++ {
		q := float64(i) / 1000
		c, err := Consumption(f, strategy.Strategy{q, 1 - q}, k, cap)
		if err != nil {
			t.Fatal(err)
		}
		if c > best {
			best = c
		}
	}
	if v < best-1e-6 {
		t.Errorf("PGA value %v below grid best %v", v, best)
	}
}

func TestSigmaStarGapVanishesAtExtremesPeaksBetween(t *testing.T) {
	// The sigma*-vs-optimum consumption gap is non-monotone in cap: with a
	// tiny capacity consumption is ~cap*k for every strategy (ratio 1);
	// with a huge capacity consumption is coverage, which sigma* optimizes
	// (ratio 1); in between sigma* is strictly suboptimal.
	f := site.Values{1, 0.3}
	k := 3
	ratioAt := func(cap float64) float64 {
		_, _, ratio, err := SigmaStarGap(f, k, cap)
		if err != nil {
			t.Fatal(err)
		}
		if ratio > 1+1e-9 {
			t.Fatalf("ratio %v above 1 at cap=%v", ratio, cap)
		}
		return ratio
	}
	if r := ratioAt(0.001); !numeric.AlmostEqual(r, 1, 1e-4) {
		t.Errorf("tiny-cap ratio = %v, want ~1", r)
	}
	if r := ratioAt(100); !numeric.AlmostEqual(r, 1, 1e-6) {
		t.Errorf("large-cap ratio = %v, want 1", r)
	}
	if r := ratioAt(0.3); r >= 1-1e-4 {
		t.Errorf("mid-cap ratio = %v, want a strict gap", r)
	}
}

func TestMaxConsumptionErrors(t *testing.T) {
	if _, _, err := MaxConsumption(site.Values{0.5, 1}, 2, 1); err == nil {
		t.Error("unsorted f accepted")
	}
	if _, _, err := MaxConsumption(site.Values{1}, 0, 1); !errors.Is(err, ErrPlayers) {
		t.Error("k=0 accepted")
	}
	if _, _, err := MaxConsumption(site.Values{1}, 2, -1); !errors.Is(err, ErrCap) {
		t.Error("negative cap accepted")
	}
}

func randomStrategy(rng *rand.Rand, m int) strategy.Strategy {
	w := make([]float64, m)
	for i := range w {
		w[i] = rng.ExpFloat64() + 1e-9
	}
	p, err := strategy.FromWeights(w)
	if err != nil {
		panic(err)
	}
	return p
}
