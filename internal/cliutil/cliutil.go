// Package cliutil holds the flag-parsing helpers shared by the cmd/ tools:
// parsing comma-separated site values and congestion-policy specs.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"dispersal/internal/policy"
	"dispersal/internal/site"
)

// ParseValues parses a comma-separated list of site values, e.g. "1,0.5,.2",
// and validates the site.Values conventions.
func ParseValues(s string) (site.Values, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("cliutil: empty value list")
	}
	parts := strings.Split(s, ",")
	f := make(site.Values, 0, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("cliutil: value %d (%q): %w", i+1, p, err)
		}
		f = append(f, v)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// ParsePolicy parses a congestion-policy spec:
//
//	exclusive | sharing | constant
//	twopoint:<c2> | powerlaw:<beta> | cooperative:<gamma> | aggressive:<penalty>
func ParsePolicy(s string) (policy.Congestion, error) {
	name, arg, hasArg := strings.Cut(strings.TrimSpace(strings.ToLower(s)), ":")
	parseArg := func() (float64, error) {
		if !hasArg {
			return 0, fmt.Errorf("cliutil: policy %q requires a parameter (e.g. %q)", name, name+":0.5")
		}
		return strconv.ParseFloat(arg, 64)
	}
	switch name {
	case "exclusive", "exc":
		return policy.Exclusive{}, nil
	case "sharing", "share":
		return policy.Sharing{}, nil
	case "constant", "const":
		return policy.Constant{}, nil
	case "twopoint", "cc":
		v, err := parseArg()
		if err != nil {
			return nil, err
		}
		return policy.TwoPoint{C2: v}, nil
	case "powerlaw":
		v, err := parseArg()
		if err != nil {
			return nil, err
		}
		return policy.PowerLaw{Beta: v}, nil
	case "cooperative", "coop":
		v, err := parseArg()
		if err != nil {
			return nil, err
		}
		return policy.Cooperative{Gamma: v}, nil
	case "aggressive", "aggr":
		v, err := parseArg()
		if err != nil {
			return nil, err
		}
		return policy.Aggressive{Penalty: v}, nil
	default:
		return nil, fmt.Errorf("cliutil: unknown policy %q (want exclusive, sharing, constant, twopoint:<c>, powerlaw:<b>, cooperative:<g>, aggressive:<p>)", s)
	}
}

// FormatStrategy renders a strategy vector compactly for terminal output.
func FormatStrategy(p []float64) string {
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = strconv.FormatFloat(v, 'f', 6, 64)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
