package cliutil

import (
	"strings"
	"testing"

	"dispersal/internal/policy"
)

func TestParseValues(t *testing.T) {
	f, err := ParseValues("1, 0.5 ,0.2")
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 3 || f[0] != 1 || f[1] != 0.5 || f[2] != 0.2 {
		t.Errorf("parsed %v", f)
	}
}

func TestParseValuesErrors(t *testing.T) {
	cases := []string{"", "  ", "1,abc", "0.5,1", "1,-1", "1,,2"}
	for _, s := range cases {
		if _, err := ParseValues(s); err == nil {
			t.Errorf("ParseValues(%q) accepted", s)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		name string
	}{
		{"exclusive", "exclusive"},
		{"EXC", "exclusive"},
		{"sharing", "sharing"},
		{"share", "sharing"},
		{"constant", "constant"},
		{"twopoint:0.25", "twopoint(c=0.25)"},
		{"cc:-0.5", "twopoint(c=-0.5)"},
		{"powerlaw:2", "powerlaw(beta=2)"},
		{"cooperative:0.9", "cooperative(gamma=0.9)"},
		{"aggr:1.5", "aggressive(penalty=1.5)"},
	}
	for _, c := range cases {
		p, err := ParsePolicy(c.in)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", c.in, err)
			continue
		}
		if p.Name() != c.name {
			t.Errorf("ParsePolicy(%q) = %s, want %s", c.in, p.Name(), c.name)
		}
	}
}

func TestParsePolicyErrors(t *testing.T) {
	for _, s := range []string{"bogus", "twopoint", "twopoint:x", "powerlaw:", ""} {
		if _, err := ParsePolicy(s); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", s)
		}
	}
}

func TestParsePolicyRoundTripsThroughValidate(t *testing.T) {
	for _, s := range []string{"exclusive", "sharing", "constant", "twopoint:0.3", "powerlaw:1.5", "cooperative:0.8", "aggressive:0.5"} {
		p, err := ParsePolicy(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := policy.Validate(p, 10); err != nil {
			t.Errorf("%q parses to invalid policy: %v", s, err)
		}
	}
}

func TestFormatStrategy(t *testing.T) {
	s := FormatStrategy([]float64{0.5, 0.5})
	if !strings.HasPrefix(s, "[0.5") || !strings.HasSuffix(s, "]") {
		t.Errorf("FormatStrategy = %q", s)
	}
}
