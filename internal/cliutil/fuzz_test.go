package cliutil

import (
	"testing"
)

// FuzzParseValues asserts the parser never panics and that anything it
// accepts is a valid site.Values vector.
func FuzzParseValues(f *testing.F) {
	for _, seed := range []string{
		"1,0.5", "1", "", "1,0.5,0.25", "1,,2", "abc", "1e9,1e-9",
		"-1,-2", "0.5, 0.5", "inf,nan", "1,0.999999999999",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		vals, err := ParseValues(s)
		if err != nil {
			return
		}
		if err := vals.Validate(); err != nil {
			t.Fatalf("ParseValues(%q) returned invalid values %v: %v", s, vals, err)
		}
	})
}

// FuzzParsePolicy asserts the policy parser never panics and that accepted
// policies satisfy the congestion axioms.
func FuzzParsePolicy(f *testing.F) {
	for _, seed := range []string{
		"exclusive", "sharing", "constant", "twopoint:0.3", "twopoint:-0.5",
		"powerlaw:2", "cooperative:0.9", "aggressive:1", "bogus", ":", "twopoint:",
		"POWERLAW:1.5", "aggr:0", "coop:1e-9",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c, err := ParsePolicy(s)
		if err != nil {
			return
		}
		if c.At(1) != 1 {
			t.Fatalf("ParsePolicy(%q) accepted a policy with C(1) = %v", s, c.At(1))
		}
	})
}
