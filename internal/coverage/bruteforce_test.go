package coverage

// Brute-force validation: for small games, every analytic quantity in this
// package is recomputed by exhaustive enumeration over all joint site
// choices, weighting each profile by its probability. This is the ground
// truth the closed forms must match.

import (
	"math/rand/v2"
	"testing"

	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/strategy"
)

// enumerate iterates all M^n assignments of n players to M sites, calling
// visit with the assignment and its probability under the per-player
// distributions probs (probs[i] is player i's strategy).
func enumerate(m, n int, probs []strategy.Strategy, visit func(assign []int, p float64)) {
	assign := make([]int, n)
	total := 1
	for i := 0; i < n; i++ {
		total *= m
	}
	for idx := 0; idx < total; idx++ {
		v := idx
		p := 1.0
		for i := 0; i < n; i++ {
			assign[i] = v % m
			v /= m
			p *= probs[i][assign[i]]
		}
		if p > 0 {
			visit(assign, p)
		}
	}
}

func repeatStrategy(p strategy.Strategy, n int) []strategy.Strategy {
	out := make([]strategy.Strategy, n)
	for i := range out {
		out[i] = p
	}
	return out
}

func TestCoverMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(100, 1))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.IntN(3)
		k := 1 + rng.IntN(4)
		f := site.Random(rng, m, 0.2, 2)
		p := randomStrategy(rng, m)
		var want numeric.Accumulator
		enumerate(m, k, repeatStrategy(p, k), func(assign []int, prob float64) {
			seen := map[int]bool{}
			var cov float64
			for _, x := range assign {
				if !seen[x] {
					seen[x] = true
					cov += f[x]
				}
			}
			want.Add(prob * cov)
		})
		if got := Cover(f, p, k); !numeric.AlmostEqual(got, want.Sum(), 1e-10) {
			t.Fatalf("M=%d k=%d: Cover %v != brute force %v", m, k, got, want.Sum())
		}
	}
}

func TestSiteValueMatchesBruteForce(t *testing.T) {
	// nu_p(x): focal player fixed at x, k-1 opponents play p.
	rng := rand.New(rand.NewPCG(100, 2))
	policies := []policy.Congestion{
		policy.Exclusive{}, policy.Sharing{}, policy.Constant{},
		policy.TwoPoint{C2: -0.3}, policy.Cooperative{Gamma: 0.8},
	}
	for trial := 0; trial < 10; trial++ {
		m := 2 + rng.IntN(3)
		k := 2 + rng.IntN(3)
		f := site.Random(rng, m, 0.2, 2)
		p := randomStrategy(rng, m)
		for _, c := range policies {
			for x := 0; x < m; x++ {
				var want numeric.Accumulator
				enumerate(m, k-1, repeatStrategy(p, k-1), func(assign []int, prob float64) {
					l := 1
					for _, y := range assign {
						if y == x {
							l++
						}
					}
					want.Add(prob * policy.Reward(c, f[x], l))
				})
				if got := SiteValue(f, p, k, c, x); !numeric.AlmostEqual(got, want.Sum(), 1e-10) {
					t.Fatalf("%s M=%d k=%d x=%d: %v != %v", c.Name(), m, k, x, got, want.Sum())
				}
			}
		}
	}
}

func TestCrossPayoffMatchesBruteForce(t *testing.T) {
	// E(rho; sigma^a, pi^b): focal player plays rho, a opponents sigma, b
	// opponents pi.
	rng := rand.New(rand.NewPCG(100, 3))
	for trial := 0; trial < 10; trial++ {
		m := 2 + rng.IntN(2)
		a := rng.IntN(3)
		b := rng.IntN(3)
		f := site.Random(rng, m, 0.2, 2)
		rho := randomStrategy(rng, m)
		sigma := randomStrategy(rng, m)
		pi := randomStrategy(rng, m)
		for _, c := range []policy.Congestion{policy.Exclusive{}, policy.Sharing{}, policy.Aggressive{Penalty: 0.4}} {
			probs := make([]strategy.Strategy, 0, 1+a+b)
			probs = append(probs, rho)
			for i := 0; i < a; i++ {
				probs = append(probs, sigma)
			}
			for i := 0; i < b; i++ {
				probs = append(probs, pi)
			}
			var want numeric.Accumulator
			enumerate(m, 1+a+b, probs, func(assign []int, prob float64) {
				x := assign[0]
				l := 0
				for _, y := range assign {
					if y == x {
						l++
					}
				}
				want.Add(prob * policy.Reward(c, f[x], l))
			})
			got, err := CrossPayoff(f, c, rho, sigma, pi, a, b)
			if err != nil {
				t.Fatal(err)
			}
			if !numeric.AlmostEqual(got, want.Sum(), 1e-10) {
				t.Fatalf("%s M=%d a=%d b=%d: %v != %v", c.Name(), m, a, b, got, want.Sum())
			}
		}
	}
}

func TestInvasionPayoffMatchesBruteForceOverTypes(t *testing.T) {
	// U[rho; (1-eps)sigma + eps*pi]: each opponent independently is a
	// pi-player with probability eps; enumerate both the type vector and
	// the site assignment.
	f := site.Values{1, 0.5}
	rho := strategy.Strategy{0.6, 0.4}
	sigma := strategy.Strategy{0.8, 0.2}
	pi := strategy.Strategy{0.1, 0.9}
	k := 3
	eps := 0.3
	c := policy.Sharing{}

	var want numeric.Accumulator
	// Opponent type vectors: 2^(k-1).
	for types := 0; types < 1<<(k-1); types++ {
		typeProb := 1.0
		probs := []strategy.Strategy{rho}
		for i := 0; i < k-1; i++ {
			if types&(1<<i) != 0 {
				typeProb *= eps
				probs = append(probs, pi)
			} else {
				typeProb *= 1 - eps
				probs = append(probs, sigma)
			}
		}
		enumerate(len(f), k, probs, func(assign []int, prob float64) {
			x := assign[0]
			l := 0
			for _, y := range assign {
				if y == x {
					l++
				}
			}
			want.Add(typeProb * prob * policy.Reward(c, f[x], l))
		})
	}
	got, err := InvasionPayoff(f, c, k, rho, sigma, pi, eps)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(got, want.Sum(), 1e-10) {
		t.Fatalf("InvasionPayoff %v != brute force %v", got, want.Sum())
	}
}
