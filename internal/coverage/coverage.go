// Package coverage implements the payoff and welfare calculus of the
// dispersal game: the coverage functional Cover(p), the site values nu_p(x)
// (Eq. 2 of the paper), expected individual payoffs, and the exact
// cross-strategy payoffs E(rho; sigma^a, pi^b) needed by the ESS analysis.
//
// All quantities here are exact expectations (no sampling); the Monte-Carlo
// engine in internal/game validates them empirically.
package coverage

import (
	"errors"
	"fmt"

	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/strategy"
)

// Validation errors.
var (
	ErrDim     = errors.New("coverage: strategy and value lengths differ")
	ErrPlayers = errors.New("coverage: player count k must be >= 1")
)

// check validates the common (f, p, k) argument triple.
func check(f site.Values, p strategy.Strategy, k int) error {
	if len(f) != len(p) {
		return fmt.Errorf("%w: M=%d sites, strategy over %d", ErrDim, len(f), len(p))
	}
	if k < 1 {
		return fmt.Errorf("%w: k=%d", ErrPlayers, k)
	}
	return nil
}

// Cover returns the expected weighted coverage of symmetric strategy p with
// k players (Eq. 1):
//
//	Cover(p) = sum_x f(x) * (1 - (1-p(x))^k).
func Cover(f site.Values, p strategy.Strategy, k int) float64 {
	var acc numeric.Accumulator
	for x := range f {
		acc.Add(f[x] * (1 - numeric.PowOneMinus(p[x], k)))
	}
	return acc.Sum()
}

// CoverChecked is Cover with argument validation.
func CoverChecked(f site.Values, p strategy.Strategy, k int) (float64, error) {
	if err := check(f, p, k); err != nil {
		return 0, err
	}
	return Cover(f, p, k), nil
}

// Miss returns T(p) = sum_x f(x) * (1-p(x))^k, the expected value left
// uncovered. Maximizing Cover is equivalent to minimizing Miss (Section 2.2).
func Miss(f site.Values, p strategy.Strategy, k int) float64 {
	var acc numeric.Accumulator
	for x := range f {
		acc.Add(f[x] * numeric.PowOneMinus(p[x], k))
	}
	return acc.Sum()
}

// SiteValue returns nu_p(x) (Eq. 2): the expected payoff for exploring site
// x (0-based) when each of the other k-1 players independently plays p,
// under reward policy I(x, l) = f(x) * C(l):
//
//	nu_p(x) = sum_{l=1..k} I(x, l) * P[Binomial(k-1, p(x)) == l-1].
func SiteValue(f site.Values, p strategy.Strategy, k int, c policy.Congestion, x int) float64 {
	q := p[x]
	var acc numeric.Accumulator
	for l := 1; l <= k; l++ {
		w := numeric.BinomialPMF(k-1, l-1, q)
		if w == 0 {
			continue
		}
		acc.Add(policy.Reward(c, f[x], l) * w)
	}
	return acc.Sum()
}

// SiteValues returns nu_p(x) for every site.
func SiteValues(f site.Values, p strategy.Strategy, k int, c policy.Congestion) []float64 {
	out := make([]float64, len(f))
	for x := range f {
		out[x] = SiteValue(f, p, k, c, x)
	}
	return out
}

// ExclusiveSiteValue is the closed form of nu_p(x) under the exclusive
// policy: f(x) * (1 - p(x))^(k-1) (Section 2.1). It is used on hot paths and
// cross-checked against SiteValue in the tests.
func ExclusiveSiteValue(f site.Values, p strategy.Strategy, k, x int) float64 {
	return f[x] * numeric.PowOneMinus(p[x], k-1)
}

// ExpectedPayoff returns the expected payoff of a focal player playing rho
// while the other k-1 players play p: sum_x rho(x) * nu_p(x). With rho == p
// this is the symmetric-profile individual welfare (the quantity maximized
// by the blue curve of Figure 1).
func ExpectedPayoff(f site.Values, rho, p strategy.Strategy, k int, c policy.Congestion) float64 {
	var acc numeric.Accumulator
	for x := range f {
		if rho[x] == 0 {
			continue
		}
		acc.Add(rho[x] * SiteValue(f, p, k, c, x))
	}
	return acc.Sum()
}

// CrossPayoff returns the exact payoff E(rho; sigma^a, pi^b) of a focal
// player using rho against a opponents playing sigma and b opponents playing
// pi, with a + b == k - 1 (Section 1.4). The occupancy of the focal site
// among opponents is the sum of two independent binomials, expanded exactly:
//
//	E = sum_x rho(x) sum_{i<=a} sum_{j<=b}
//	     Bin(a,i,sigma(x)) * Bin(b,j,pi(x)) * f(x) * C(1+i+j).
//
// Complexity O(M * a * b).
func CrossPayoff(f site.Values, c policy.Congestion, rho, sigma, pi strategy.Strategy, a, b int) (float64, error) {
	if len(f) != len(rho) || len(f) != len(sigma) || len(f) != len(pi) {
		return 0, ErrDim
	}
	if a < 0 || b < 0 {
		return 0, fmt.Errorf("%w: a=%d b=%d", ErrPlayers, a, b)
	}
	var acc numeric.Accumulator
	for x := range f {
		r := rho[x]
		if r == 0 {
			continue
		}
		var inner numeric.Accumulator
		for i := 0; i <= a; i++ {
			wi := numeric.BinomialPMF(a, i, sigma[x])
			if wi == 0 {
				continue
			}
			for j := 0; j <= b; j++ {
				wj := numeric.BinomialPMF(b, j, pi[x])
				if wj == 0 {
					continue
				}
				inner.Add(wi * wj * policy.Reward(c, f[x], 1+i+j))
			}
		}
		acc.Add(r * inner.Sum())
	}
	return acc.Sum(), nil
}

// InvasionPayoff returns U[rho; (1-eps)sigma + eps*pi] (Eq. 3): the average
// payoff of a rho-player matched against k-1 opponents drawn from a
// population with a (1-eps) fraction of sigma-players and eps of pi-players.
// It expands Eq. 3 term by term over the number of pi-opponents.
func InvasionPayoff(f site.Values, c policy.Congestion, k int, rho, sigma, pi strategy.Strategy, eps float64) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("%w: k=%d", ErrPlayers, k)
	}
	var acc numeric.Accumulator
	for m := 0; m <= k-1; m++ {
		// m opponents play pi, k-1-m play sigma.
		w := numeric.BinomialPMF(k-1, m, eps)
		if w == 0 {
			continue
		}
		e, err := CrossPayoff(f, c, rho, sigma, pi, k-1-m, m)
		if err != nil {
			return 0, err
		}
		acc.Add(w * e)
	}
	return acc.Sum(), nil
}

// InvasionPayoffMixture computes the same quantity as InvasionPayoff via the
// marginal shortcut: because congestion payoffs depend only on the count of
// opponents at the focal site, and each opponent's site choice has marginal
// law (1-eps)sigma + eps*pi, U equals ExpectedPayoff against the mixture.
// The two implementations are cross-validated in the tests; this one is
// O(M*k) instead of O(M*k^3).
func InvasionPayoffMixture(f site.Values, c policy.Congestion, k int, rho, sigma, pi strategy.Strategy, eps float64) (float64, error) {
	mix, err := strategy.Mix(sigma, pi, eps)
	if err != nil {
		return 0, err
	}
	if err := check(f, mix, k); err != nil {
		return 0, err
	}
	return ExpectedPayoff(f, rho, mix, k, c), nil
}

// BestAchievable returns sum_{x<=k} f(x), the coverage of a fully
// coordinated assignment of the k players to the k best sites — the
// comparator of Observation 1.
func BestAchievable(f site.Values, k int) float64 {
	return f.PrefixSum(k)
}

// ObservationOneBound returns (1 - 1/e) * BestAchievable(f, k), the lower
// bound that Cover(p*) must exceed by Observation 1.
func ObservationOneBound(f site.Values, k int) float64 {
	const oneMinusInvE = 1 - 1/2.718281828459045235360287471352662497757
	return oneMinusInvE * BestAchievable(f, k)
}
