package coverage

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/strategy"
)

func TestCoverHandComputed(t *testing.T) {
	f := site.Values{1, 0.3}
	p := strategy.Strategy{0.5, 0.5}
	// k=2: 1*(1-0.25) + 0.3*(1-0.25) = 0.975.
	if got := Cover(f, p, 2); !numeric.AlmostEqual(got, 0.975, 1e-12) {
		t.Errorf("Cover = %v, want 0.975", got)
	}
	// k=1: 1*0.5 + 0.3*0.5 = 0.65.
	if got := Cover(f, p, 1); !numeric.AlmostEqual(got, 0.65, 1e-12) {
		t.Errorf("Cover k=1 = %v, want 0.65", got)
	}
}

func TestCoverPointMass(t *testing.T) {
	f := site.Values{2, 1}
	p := strategy.Delta(2, 0)
	// Everyone on site 1: coverage = f(1) regardless of k.
	for _, k := range []int{1, 2, 10} {
		if got := Cover(f, p, k); !numeric.AlmostEqual(got, 2, 1e-12) {
			t.Errorf("k=%d Cover = %v, want 2", k, got)
		}
	}
}

func TestCoverPlusMissIsTotal(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 50; trial++ {
		m := 1 + rng.IntN(20)
		k := 1 + rng.IntN(10)
		f := site.Random(rng, m, 0.1, 5)
		p := randomStrategy(rng, m)
		total := f.Sum()
		if got := Cover(f, p, k) + Miss(f, p, k); !numeric.AlmostEqual(got, total, 1e-9) {
			t.Fatalf("Cover+Miss = %v, want %v", got, total)
		}
	}
}

func TestCoverMonotoneInK(t *testing.T) {
	f := site.Geometric(5, 1, 0.7)
	p := strategy.Uniform(5)
	prev := 0.0
	for k := 1; k <= 12; k++ {
		c := Cover(f, p, k)
		if c < prev-1e-12 {
			t.Fatalf("coverage decreased at k=%d: %v < %v", k, c, prev)
		}
		prev = c
	}
	// And approaches the full total.
	if got := Cover(f, p, 500); !numeric.AlmostEqual(got, f.Sum(), 1e-6) {
		t.Errorf("large-k coverage = %v, want ~%v", got, f.Sum())
	}
}

func TestCoverChecked(t *testing.T) {
	f := site.Values{1, 0.5}
	if _, err := CoverChecked(f, strategy.Uniform(3), 2); !errors.Is(err, ErrDim) {
		t.Errorf("dim mismatch: %v", err)
	}
	if _, err := CoverChecked(f, strategy.Uniform(2), 0); !errors.Is(err, ErrPlayers) {
		t.Errorf("k=0: %v", err)
	}
	if got, err := CoverChecked(f, strategy.Uniform(2), 2); err != nil || got <= 0 {
		t.Errorf("valid call: %v, %v", got, err)
	}
}

func TestSiteValueExclusiveClosedForm(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	c := policy.Exclusive{}
	for trial := 0; trial < 50; trial++ {
		m := 1 + rng.IntN(10)
		k := 1 + rng.IntN(12)
		f := site.Random(rng, m, 0.1, 3)
		p := randomStrategy(rng, m)
		for x := range f {
			general := SiteValue(f, p, k, c, x)
			closed := ExclusiveSiteValue(f, p, k, x)
			if !numeric.AlmostEqual(general, closed, 1e-10) {
				t.Fatalf("x=%d k=%d: general %v != closed %v", x, k, general, closed)
			}
		}
	}
}

func TestSiteValueSharingTwoPlayers(t *testing.T) {
	// k=2 sharing: nu(x) = f(x) * [(1-q) + q/2] = f(x)(1 - q/2).
	f := site.Values{1, 0.5}
	p := strategy.Strategy{0.6, 0.4}
	for x := range f {
		want := f[x] * (1 - p[x]/2)
		if got := SiteValue(f, p, 2, policy.Sharing{}, x); !numeric.AlmostEqual(got, want, 1e-12) {
			t.Errorf("x=%d: %v, want %v", x, got, want)
		}
	}
}

func TestSiteValueConstantPolicy(t *testing.T) {
	// C == 1: nu(x) = f(x) always.
	f := site.Geometric(4, 1, 0.5)
	p := strategy.Uniform(4)
	for x := range f {
		if got := SiteValue(f, p, 7, policy.Constant{}, x); !numeric.AlmostEqual(got, f[x], 1e-12) {
			t.Errorf("x=%d: %v, want %v", x, got, f[x])
		}
	}
}

func TestSiteValuesVector(t *testing.T) {
	f := site.Values{1, 0.3}
	p := strategy.Strategy{0.7, 0.3}
	vs := SiteValues(f, p, 2, policy.Exclusive{})
	if len(vs) != 2 {
		t.Fatalf("len = %d", len(vs))
	}
	if !numeric.AlmostEqual(vs[0], 0.3, 1e-12) || !numeric.AlmostEqual(vs[1], 0.21, 1e-12) {
		t.Errorf("SiteValues = %v", vs)
	}
}

func TestExpectedPayoffSingleSite(t *testing.T) {
	// One site, k players, sharing: payoff = f * E[1/(1+Bin(k-1,1))] = f/k.
	f := site.Values{3}
	p := strategy.Strategy{1}
	for _, k := range []int{1, 2, 5} {
		want := 3 / float64(k)
		if got := ExpectedPayoff(f, p, p, k, policy.Sharing{}); !numeric.AlmostEqual(got, want, 1e-12) {
			t.Errorf("k=%d: %v, want %v", k, got, want)
		}
	}
}

func TestCrossPayoffDegeneratesToExpectedPayoff(t *testing.T) {
	// E(rho; p^{k-1}, pi^0) must equal ExpectedPayoff(rho against p).
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 30; trial++ {
		m := 1 + rng.IntN(8)
		k := 1 + rng.IntN(8)
		f := site.Random(rng, m, 0.1, 2)
		rho := randomStrategy(rng, m)
		p := randomStrategy(rng, m)
		pi := randomStrategy(rng, m)
		for _, c := range []policy.Congestion{policy.Exclusive{}, policy.Sharing{}, policy.TwoPoint{C2: -0.3}} {
			got, err := CrossPayoff(f, c, rho, p, pi, k-1, 0)
			if err != nil {
				t.Fatal(err)
			}
			want := ExpectedPayoff(f, rho, p, k, c)
			if !numeric.AlmostEqual(got, want, 1e-9) {
				t.Fatalf("%s k=%d: cross %v != expected %v", c.Name(), k, got, want)
			}
		}
	}
}

func TestCrossPayoffSymmetricInOpponentSplit(t *testing.T) {
	// When sigma == pi, the split (a, b) must not matter.
	f := site.Values{1, 0.6, 0.2}
	rho := strategy.Strategy{0.5, 0.3, 0.2}
	sigma := strategy.Strategy{0.4, 0.4, 0.2}
	c := policy.Sharing{}
	ref, err := CrossPayoff(f, c, rho, sigma, sigma, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a <= 4; a++ {
		got, err := CrossPayoff(f, c, rho, sigma, sigma, a, 4-a)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqual(got, ref, 1e-10) {
			t.Errorf("split (%d,%d): %v != %v", a, 4-a, got, ref)
		}
	}
}

func TestCrossPayoffErrors(t *testing.T) {
	f := site.Values{1}
	one := strategy.Strategy{1}
	two := strategy.Uniform(2)
	if _, err := CrossPayoff(f, policy.Sharing{}, two, one, one, 1, 0); !errors.Is(err, ErrDim) {
		t.Errorf("dim: %v", err)
	}
	if _, err := CrossPayoff(f, policy.Sharing{}, one, one, one, -1, 0); !errors.Is(err, ErrPlayers) {
		t.Errorf("negative a: %v", err)
	}
}

func TestInvasionPayoffMatchesMixture(t *testing.T) {
	// Eq. (3) expansion vs marginal-mixture shortcut: must agree exactly
	// for congestion policies.
	rng := rand.New(rand.NewPCG(9, 10))
	for trial := 0; trial < 25; trial++ {
		m := 1 + rng.IntN(6)
		k := 2 + rng.IntN(6)
		eps := rng.Float64()
		f := site.Random(rng, m, 0.2, 2)
		rho := randomStrategy(rng, m)
		sg := randomStrategy(rng, m)
		pi := randomStrategy(rng, m)
		for _, c := range []policy.Congestion{policy.Exclusive{}, policy.Sharing{}, policy.Aggressive{Penalty: 0.5}} {
			a, err := InvasionPayoff(f, c, k, rho, sg, pi, eps)
			if err != nil {
				t.Fatal(err)
			}
			b, err := InvasionPayoffMixture(f, c, k, rho, sg, pi, eps)
			if err != nil {
				t.Fatal(err)
			}
			if !numeric.AlmostEqual(a, b, 1e-9) {
				t.Fatalf("%s k=%d eps=%v: Eq3 %v != mixture %v", c.Name(), k, eps, a, b)
			}
		}
	}
}

func TestInvasionPayoffEpsZero(t *testing.T) {
	// eps = 0 reduces to the pure resident game.
	f := site.Values{1, 0.4}
	sg := strategy.Strategy{0.7, 0.3}
	pi := strategy.Strategy{0.1, 0.9}
	got, err := InvasionPayoff(f, policy.Exclusive{}, 3, sg, sg, pi, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := ExpectedPayoff(f, sg, sg, 3, policy.Exclusive{})
	if !numeric.AlmostEqual(got, want, 1e-12) {
		t.Errorf("eps=0: %v != %v", got, want)
	}
}

func TestInvasionPayoffBadK(t *testing.T) {
	f := site.Values{1}
	one := strategy.Strategy{1}
	if _, err := InvasionPayoff(f, policy.Sharing{}, 0, one, one, one, 0.1); !errors.Is(err, ErrPlayers) {
		t.Errorf("k=0: %v", err)
	}
}

func TestObservationOneBound(t *testing.T) {
	f := site.Values{1, 1, 1}
	want := (1 - 1/math.E) * 2
	if got := ObservationOneBound(f, 2); !numeric.AlmostEqual(got, want, 1e-12) {
		t.Errorf("bound = %v, want %v", got, want)
	}
	if got := BestAchievable(f, 2); got != 2 {
		t.Errorf("BestAchievable = %v", got)
	}
	if got := BestAchievable(f, 10); got != 3 {
		t.Errorf("BestAchievable clamps: %v", got)
	}
}

func TestObservationOneHoldsForUniformFirstK(t *testing.T) {
	// The proof of Observation 1: Cover(uniform over top k) already beats
	// the bound.
	rng := rand.New(rand.NewPCG(11, 12))
	for trial := 0; trial < 40; trial++ {
		m := 2 + rng.IntN(30)
		k := 1 + rng.IntN(m)
		f := site.Random(rng, m, 0.05, 4)
		ph := strategy.UniformFirst(m, k)
		if Cover(f, ph, k) <= ObservationOneBound(f, k)-1e-12 {
			t.Fatalf("Observation 1 violated: M=%d k=%d", m, k)
		}
	}
}

func TestCoverShiftTowardUncoveredQuick(t *testing.T) {
	// Property from the Theorem 4 proof: moving mass epsilon from a
	// lower-marginal site to a higher-marginal one increases coverage.
	f := site.Values{1, 0.3}
	k := 3
	prop := func(raw float64) bool {
		q := 0.1 + 0.8*math.Abs(math.Mod(raw, 1))
		p := strategy.Strategy{q, 1 - q}
		// Marginal of site x: f(x)*k*(1-p(x))^(k-1).
		m0 := f[0] * 3 * math.Pow(1-p[0], 2)
		m1 := f[1] * 3 * math.Pow(1-p[1], 2)
		eps := 1e-4
		var shifted strategy.Strategy
		if m0 > m1 {
			shifted = strategy.Strategy{q + eps, 1 - q - eps}
		} else if m1 > m0 {
			shifted = strategy.Strategy{q - eps, 1 - q + eps}
		} else {
			return true
		}
		return Cover(f, shifted, k) > Cover(f, p, k)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomStrategy draws a Dirichlet-ish random distribution over m sites.
func randomStrategy(rng *rand.Rand, m int) strategy.Strategy {
	w := make([]float64, m)
	for i := range w {
		w[i] = rng.ExpFloat64()
		if w[i] <= 0 {
			w[i] = 1e-9
		}
	}
	p, err := strategy.FromWeights(w)
	if err != nil {
		panic(err)
	}
	return p
}
