// Package dynamics implements the evolutionary and learning dynamics used to
// probe the stability results of the paper: replicator dynamics on the
// strategy simplex, damped best-response iteration, and finite-population
// Wright-Fisher invasion experiments that test ESS resistance empirically.
//
// The replicator flow for the symmetric dispersal game is
//
//	dp(x)/dt = p(x) * (nu_p(x) - sum_y p(y) nu_p(y)),
//
// whose interior rest points are exactly the IFD (all explored sites share
// the same value). Observation 2 then implies trajectories converge to the
// unique symmetric equilibrium for congestion policies, which the tests and
// experiment E11 verify numerically.
package dynamics

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"dispersal/internal/coverage"
	"dispersal/internal/ifd"
	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/strategy"
)

// Errors returned by the dynamics drivers.
var (
	ErrSteps    = errors.New("dynamics: step count must be >= 1")
	ErrStepSize = errors.New("dynamics: step size must be positive")
	ErrPop      = errors.New("dynamics: population size must be >= 2")
)

// ReplicatorOptions configure Replicator.
type ReplicatorOptions struct {
	// Steps is the number of Euler steps (default 10000).
	Steps int
	// Dt is the Euler step size (default 0.1).
	Dt float64
	// Tol stops the integration early when the L-infinity drift falls
	// below it (default 1e-13).
	Tol float64
	// RecordEvery, when > 0, appends the state to the returned trajectory
	// every RecordEvery steps.
	RecordEvery int
	// Floor keeps a tiny positive mass on every site so that the interior
	// flow can reach sites the initial condition misses (default 0; set to
	// e.g. 1e-9 when starting from sparse initial conditions).
	Floor float64
}

func (o ReplicatorOptions) withDefaults() (ReplicatorOptions, error) {
	if o.Steps == 0 {
		o.Steps = 10000
	}
	if o.Steps < 1 {
		return o, fmt.Errorf("%w: %d", ErrSteps, o.Steps)
	}
	if o.Dt == 0 {
		o.Dt = 0.1
	}
	if o.Dt <= 0 {
		return o, fmt.Errorf("%w: %v", ErrStepSize, o.Dt)
	}
	if o.Tol == 0 {
		o.Tol = 1e-13
	}
	return o, nil
}

// ReplicatorResult carries the outcome of a replicator integration.
type ReplicatorResult struct {
	// Final is the state after the last step.
	Final strategy.Strategy
	// Steps is the number of steps actually taken.
	Steps int
	// Converged reports whether the drift tolerance was reached.
	Converged bool
	// Trajectory holds recorded states when RecordEvery > 0 (including the
	// initial state).
	Trajectory []strategy.Strategy
}

// cancelCheckStride is how many Euler steps the integrators take between
// context checks.
const cancelCheckStride = 64

// Replicator integrates the replicator dynamics from init under (f, k, c).
// Payoffs may be negative (aggressive policies); the update uses the
// exponential (Maynard Smith) form p <- p * exp(dt * (nu - avg)), which is
// positivity-preserving for any payoff range and has the same rest points.
func Replicator(f site.Values, k int, c policy.Congestion, init strategy.Strategy, opts ReplicatorOptions) (ReplicatorResult, error) {
	return ReplicatorContext(context.Background(), f, k, c, init, opts)
}

// ReplicatorContext is Replicator under a context: a cancelled or expired
// ctx stops the integration promptly and returns ctx.Err().
func ReplicatorContext(ctx context.Context, f site.Values, k int, c policy.Congestion, init strategy.Strategy, opts ReplicatorOptions) (ReplicatorResult, error) {
	if err := f.Validate(); err != nil {
		return ReplicatorResult{}, err
	}
	if len(init) != len(f) {
		return ReplicatorResult{}, fmt.Errorf("dynamics: init has %d sites, want %d", len(init), len(f))
	}
	if err := init.Validate(); err != nil {
		return ReplicatorResult{}, err
	}
	opts, err := opts.withDefaults()
	if err != nil {
		return ReplicatorResult{}, err
	}
	p := init.Clone()
	if opts.Floor > 0 {
		for x := range p {
			if p[x] < opts.Floor {
				p[x] = opts.Floor
			}
		}
		if _, err := p.Normalize(); err != nil {
			return ReplicatorResult{}, err
		}
	}
	res := ReplicatorResult{}
	if opts.RecordEvery > 0 {
		res.Trajectory = append(res.Trajectory, p.Clone())
	}
	values := make([]float64, len(p))
	for step := 1; step <= opts.Steps; step++ {
		if step%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return ReplicatorResult{}, err
			}
		}
		var avg numeric.Accumulator
		for x := range p {
			values[x] = coverage.SiteValue(f, p, k, c, x)
			avg.Add(p[x] * values[x])
		}
		mean := avg.Sum()
		drift := 0.0
		for x := range p {
			d := math.Abs(p[x] * (values[x] - mean))
			if d > drift {
				drift = d
			}
		}
		if drift < opts.Tol {
			res.Final = p
			res.Steps = step - 1
			res.Converged = true
			return res, nil
		}
		for x := range p {
			if p[x] == 0 {
				continue
			}
			g := opts.Dt * (values[x] - mean)
			// Clamp the exponent for numerical safety under extreme
			// aggressive payoffs.
			p[x] *= math.Exp(numeric.Clamp(g, -30, 30))
		}
		if _, err := p.Normalize(); err != nil {
			return ReplicatorResult{}, err
		}
		if opts.RecordEvery > 0 && step%opts.RecordEvery == 0 {
			res.Trajectory = append(res.Trajectory, p.Clone())
		}
	}
	res.Final = p
	res.Steps = opts.Steps
	return res, nil
}

// BestResponseOptions configure BestResponse.
type BestResponseOptions struct {
	// Iters bounds the iterations (default 50000).
	Iters int
	// Tol is the exploitability tolerance: iteration stops once
	// max_x nu_p(x) - sum_x p(x) nu_p(x) drops below Tol (default 1e-9).
	Tol float64
}

func (o BestResponseOptions) withDefaults() (BestResponseOptions, error) {
	if o.Iters == 0 {
		o.Iters = 50000
	}
	if o.Iters < 1 {
		return o, fmt.Errorf("%w: %d", ErrSteps, o.Iters)
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	if o.Tol < 0 {
		return o, fmt.Errorf("%w: tol %v", ErrStepSize, o.Tol)
	}
	return o, nil
}

// BestResponse runs fictitious-play dynamics: at step t the state moves a
// 1/(t+2) fraction toward the exact best response against itself (ties
// split uniformly). The time-averaged play converges to the symmetric
// equilibrium in this class of games; iteration stops once the
// exploitability max_x nu_p(x) - E_p[nu_p] falls below opts.Tol. It returns
// the final state and the number of iterations used.
func BestResponse(f site.Values, k int, c policy.Congestion, init strategy.Strategy, opts BestResponseOptions) (strategy.Strategy, int, error) {
	return BestResponseContext(context.Background(), f, k, c, init, opts)
}

// BestResponseContext is BestResponse under a context.
func BestResponseContext(ctx context.Context, f site.Values, k int, c policy.Congestion, init strategy.Strategy, opts BestResponseOptions) (strategy.Strategy, int, error) {
	if err := f.Validate(); err != nil {
		return nil, 0, err
	}
	if err := init.Validate(); err != nil {
		return nil, 0, err
	}
	if len(init) != len(f) {
		return nil, 0, fmt.Errorf("dynamics: init has %d sites, want %d", len(init), len(f))
	}
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, 0, err
	}
	p := init.Clone()
	values := make([]float64, len(p))
	for it := 1; it <= opts.Iters; it++ {
		if it%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
		}
		for x := range p {
			values[x] = coverage.SiteValue(f, p, k, c, x)
		}
		_, best := numeric.MaxIndex(values)
		var avg numeric.Accumulator
		for x := range p {
			avg.Add(p[x] * values[x])
		}
		if best-avg.Sum() < opts.Tol {
			return p, it, nil
		}
		// Uniform mixture over (near-)tied best responses.
		ties := 0
		for _, v := range values {
			if best-v <= 1e-12*(1+math.Abs(best)) {
				ties++
			}
		}
		step := 1 / float64(it+2)
		for x := range p {
			target := 0.0
			if best-values[x] <= 1e-12*(1+math.Abs(best)) {
				target = 1 / float64(ties)
			}
			p[x] += step * (target - p[x])
		}
	}
	return p, opts.Iters, nil
}

// InvasionConfig drives a finite-population Wright-Fisher invasion
// experiment: a population of N agents, a (1-eps) fraction playing the
// resident and eps the mutant, matched uniformly at random into k-tuples
// each generation; reproduction is payoff-proportional with selection
// strength s.
type InvasionConfig struct {
	// F, K, C define the game.
	F site.Values
	K int
	C policy.Congestion
	// Resident and Mutant are the two competing strategies.
	Resident, Mutant strategy.Strategy
	// PopSize is the population size N (default 1000).
	PopSize int
	// InitialMutantFrac is eps (default 0.05).
	InitialMutantFrac float64
	// Generations to simulate (default 200).
	Generations int
	// GamesPerGen is the number of k-tuple games each agent plays per
	// generation; payoffs are averaged before selection, which reduces the
	// sampling noise of single games (default 4).
	GamesPerGen int
	// Selection is the linear selection strength: fitness_i =
	// max(0, 1 + Selection * (avgPayoff_i - populationMean)). Linear
	// fitness keeps selection unbiased in expected payoff (an exponential
	// map would favour high-variance strategies regardless of mean).
	// Default 1.0.
	Selection float64
	// Seed makes the run reproducible.
	Seed uint64
}

func (c InvasionConfig) withDefaults() InvasionConfig {
	if c.PopSize == 0 {
		c.PopSize = 1000
	}
	if c.InitialMutantFrac == 0 {
		c.InitialMutantFrac = 0.05
	}
	if c.Generations == 0 {
		c.Generations = 200
	}
	if c.GamesPerGen == 0 {
		c.GamesPerGen = 4
	}
	if c.Selection == 0 {
		c.Selection = 1
	}
	return c
}

// InvasionResult reports a Wright-Fisher run.
type InvasionResult struct {
	// MutantFrac is the mutant fraction per generation (Generations+1
	// entries including the initial state).
	MutantFrac []float64
	// Extinct reports whether the mutant died out.
	Extinct bool
	// Fixed reports whether the mutant took over the whole population.
	Fixed bool
}

// Invasion runs the finite-population experiment. Each generation every
// agent plays one k-tuple game (tuples drawn by random permutation; a final
// partial tuple is padded with resampled agents), then the next generation
// is sampled payoff-proportionally.
func Invasion(cfg InvasionConfig) (InvasionResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.F.Validate(); err != nil {
		return InvasionResult{}, err
	}
	if cfg.K < 1 {
		return InvasionResult{}, fmt.Errorf("%w: k=%d", ErrSteps, cfg.K)
	}
	if cfg.PopSize < 2 {
		return InvasionResult{}, fmt.Errorf("%w: N=%d", ErrPop, cfg.PopSize)
	}
	if err := cfg.Resident.Validate(); err != nil {
		return InvasionResult{}, fmt.Errorf("resident: %w", err)
	}
	if err := cfg.Mutant.Validate(); err != nil {
		return InvasionResult{}, fmt.Errorf("mutant: %w", err)
	}
	resSampler, err := strategy.NewSampler(cfg.Resident)
	if err != nil {
		return InvasionResult{}, err
	}
	mutSampler, err := strategy.NewSampler(cfg.Mutant)
	if err != nil {
		return InvasionResult{}, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x1f123bb5))

	n := cfg.PopSize
	// isMutant[i] tags agent i's type.
	isMutant := make([]bool, n)
	mutants := int(math.Round(cfg.InitialMutantFrac * float64(n)))
	if mutants < 1 {
		mutants = 1
	}
	for i := 0; i < mutants; i++ {
		isMutant[i] = true
	}
	rng.Shuffle(n, func(i, j int) { isMutant[i], isMutant[j] = isMutant[j], isMutant[i] })

	res := InvasionResult{MutantFrac: make([]float64, 0, cfg.Generations+1)}
	res.MutantFrac = append(res.MutantFrac, float64(mutants)/float64(n))

	perm := make([]int, n)
	payoff := make([]float64, n)
	choices := make([]int, cfg.K)
	members := make([]int, cfg.K)
	counts := map[int]int{}
	fitness := make([]float64, n)
	next := make([]bool, n)

	for gen := 0; gen < cfg.Generations; gen++ {
		for i := range payoff {
			payoff[i] = 0
		}
		for round := 0; round < cfg.GamesPerGen; round++ {
			// Match into k-tuples by random permutation.
			for i := range perm {
				perm[i] = i
			}
			rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			for start := 0; start < n; start += cfg.K {
				for slot := 0; slot < cfg.K; slot++ {
					idx := start + slot
					if idx < n {
						members[slot] = perm[idx]
					} else {
						// Pad the final tuple with random already-played
						// agents; only the real members get paid.
						members[slot] = perm[rng.IntN(n)]
					}
				}
				clear(counts)
				for slot := 0; slot < cfg.K; slot++ {
					var x int
					if isMutant[members[slot]] {
						x = mutSampler.Sample(rng)
					} else {
						x = resSampler.Sample(rng)
					}
					choices[slot] = x
					counts[x]++
				}
				for slot := 0; slot < cfg.K; slot++ {
					idx := start + slot
					if idx >= n {
						continue
					}
					x := choices[slot]
					payoff[perm[idx]] += policy.Reward(cfg.C, cfg.F[x], counts[x])
				}
			}
		}
		// Linear payoff-proportional reproduction on per-generation
		// average payoffs.
		var meanPay float64
		for i := range payoff {
			payoff[i] /= float64(cfg.GamesPerGen)
			meanPay += payoff[i]
		}
		meanPay /= float64(n)
		var totalFit float64
		for i := range fitness {
			fitness[i] = 1 + cfg.Selection*(payoff[i]-meanPay)
			if fitness[i] < 0 {
				fitness[i] = 0
			}
			totalFit += fitness[i]
		}
		if totalFit <= 0 {
			// Degenerate selection (all fitness clamped away): fall back
			// to neutral drift for this generation.
			for i := range fitness {
				fitness[i] = 1
			}
			totalFit = float64(n)
		}
		for i := range next {
			r := rng.Float64() * totalFit
			acc := 0.0
			pick := n - 1
			for j := 0; j < n; j++ {
				acc += fitness[j]
				if r <= acc {
					pick = j
					break
				}
			}
			next[i] = isMutant[pick]
		}
		copy(isMutant, next)
		mutants = 0
		for _, b := range isMutant {
			if b {
				mutants++
			}
		}
		res.MutantFrac = append(res.MutantFrac, float64(mutants)/float64(n))
		if mutants == 0 {
			res.Extinct = true
			break
		}
		if mutants == n {
			res.Fixed = true
			break
		}
	}
	return res, nil
}

// ConvergesToIFD integrates the replicator dynamics from init and reports
// the total-variation distance of the final state to the IFD of (f, k, c).
// It is a convenience wrapper used by experiment E11 and the tests.
func ConvergesToIFD(f site.Values, k int, c policy.Congestion, init strategy.Strategy, opts ReplicatorOptions) (float64, error) {
	eq, _, err := ifd.Solve(f, k, c)
	if err != nil {
		return 0, err
	}
	r, err := Replicator(f, k, c, init, opts)
	if err != nil {
		return 0, err
	}
	return r.Final.TV(eq), nil
}
