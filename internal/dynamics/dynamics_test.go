package dynamics

import (
	"errors"
	"testing"

	"dispersal/internal/ifd"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/strategy"
)

func TestReplicatorConvergesToIFDExclusive(t *testing.T) {
	f := site.TwoSite(0.3)
	k := 2
	dist, err := ConvergesToIFD(f, k, policy.Exclusive{}, strategy.Uniform(2), ReplicatorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dist > 1e-6 {
		t.Errorf("replicator missed the IFD by TV=%v", dist)
	}
}

func TestReplicatorConvergesAcrossPolicies(t *testing.T) {
	f := site.Geometric(5, 1, 0.7)
	k := 3
	policies := []policy.Congestion{
		policy.Exclusive{},
		policy.Sharing{},
		policy.TwoPoint{C2: 0.25},
		policy.TwoPoint{C2: -0.25},
		policy.PowerLaw{Beta: 2},
	}
	for _, c := range policies {
		dist, err := ConvergesToIFD(f, k, c, strategy.Uniform(5), ReplicatorOptions{Steps: 60000})
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if dist > 1e-4 {
			t.Errorf("%s: TV to IFD = %v", c.Name(), dist)
		}
	}
}

func TestReplicatorFromSkewedStart(t *testing.T) {
	// Start nearly concentrated; the floor lets mass flow back.
	f := site.TwoSite(0.5)
	init := strategy.Strategy{0.999, 0.001}
	r, err := Replicator(f, 2, policy.Exclusive{}, init, ReplicatorOptions{Steps: 50000})
	if err != nil {
		t.Fatal(err)
	}
	eq, _, err := ifd.Exclusive(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d := r.Final.TV(eq); d > 1e-5 {
		t.Errorf("TV = %v from skewed start", d)
	}
}

func TestReplicatorRestPointIsFixed(t *testing.T) {
	// Starting exactly at the IFD, the dynamics must not move.
	f := site.Geometric(4, 1, 0.6)
	k := 3
	eq, _, err := ifd.Exclusive(f, k)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Replicator(f, k, policy.Exclusive{}, eq, ReplicatorOptions{Steps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Error("IFD start did not register as converged")
	}
	if d := r.Final.TV(eq); d > 1e-9 {
		t.Errorf("rest point drifted by %v", d)
	}
}

func TestReplicatorTrajectoryRecording(t *testing.T) {
	f := site.TwoSite(0.5)
	r, err := Replicator(f, 2, policy.Sharing{}, strategy.Uniform(2),
		ReplicatorOptions{Steps: 100, RecordEvery: 10, Tol: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trajectory) < 5 {
		t.Errorf("trajectory has %d states", len(r.Trajectory))
	}
	for i, p := range r.Trajectory {
		if err := p.Validate(); err != nil {
			t.Errorf("trajectory[%d] invalid: %v", i, err)
		}
	}
}

func TestReplicatorAggressivePolicyStaysOnSimplex(t *testing.T) {
	// Negative payoffs exercise the exponential update's clamping.
	f := site.TwoSite(0.4)
	r, err := Replicator(f, 4, policy.Aggressive{Penalty: 2}, strategy.Uniform(2),
		ReplicatorOptions{Steps: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Final.Validate(); err != nil {
		t.Errorf("final state invalid: %v", err)
	}
}

func TestReplicatorErrors(t *testing.T) {
	f := site.TwoSite(0.5)
	if _, err := Replicator(f, 2, policy.Sharing{}, strategy.Uniform(3), ReplicatorOptions{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := Replicator(f, 2, policy.Sharing{}, strategy.Uniform(2), ReplicatorOptions{Steps: -1}); !errors.Is(err, ErrSteps) {
		t.Error("negative steps accepted")
	}
	if _, err := Replicator(f, 2, policy.Sharing{}, strategy.Uniform(2), ReplicatorOptions{Dt: -1}); !errors.Is(err, ErrStepSize) {
		t.Error("negative dt accepted")
	}
	if _, err := Replicator(site.Values{0.5, 1}, 2, policy.Sharing{}, strategy.Uniform(2), ReplicatorOptions{}); err == nil {
		t.Error("unsorted f accepted")
	}
}

func TestBestResponseFindsEquilibrium(t *testing.T) {
	f := site.Geometric(4, 1, 0.7)
	k := 3
	for _, c := range []policy.Congestion{policy.Exclusive{}, policy.Sharing{}} {
		p, _, err := BestResponse(f, k, c, strategy.Uniform(4), BestResponseOptions{})
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		eq, _, err := ifd.Solve(f, k, c)
		if err != nil {
			t.Fatal(err)
		}
		if d := p.TV(eq); d > 5e-3 {
			t.Errorf("%s: best-response fixed point off by TV=%v", c.Name(), d)
		}
	}
}

func TestBestResponseErrors(t *testing.T) {
	f := site.TwoSite(0.5)
	u := strategy.Uniform(2)
	if _, _, err := BestResponse(f, 2, policy.Sharing{}, strategy.Uniform(3), BestResponseOptions{}); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, _, err := BestResponse(f, 2, policy.Sharing{}, u, BestResponseOptions{Tol: -1}); !errors.Is(err, ErrStepSize) {
		t.Error("negative tol accepted")
	}
	if _, _, err := BestResponse(f, 2, policy.Sharing{}, u, BestResponseOptions{Iters: -3}); !errors.Is(err, ErrSteps) {
		t.Error("negative iters accepted")
	}
	if _, _, err := BestResponse(site.Values{0.5, 1}, 2, policy.Sharing{}, u, BestResponseOptions{}); err == nil {
		t.Error("unsorted f accepted")
	}
}

func TestBestResponseAlreadyAtEquilibrium(t *testing.T) {
	f := site.TwoSite(0.8)
	eq, _, err := ifd.Exclusive(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, iters, err := BestResponse(f, 2, policy.Exclusive{}, eq, BestResponseOptions{Tol: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if iters != 1 {
		t.Errorf("took %d iterations from the equilibrium", iters)
	}
	if d := p.TV(eq); d > 1e-9 {
		t.Errorf("moved away from equilibrium by %v", d)
	}
}

func TestInvasionMutantRepelledAtESS(t *testing.T) {
	// Theorem 3, finite-population check: a mutant deviating from sigma*
	// under the exclusive policy should (usually) shrink.
	f := site.TwoSite(0.5)
	k := 2
	sigma, _, err := ifd.Exclusive(f, k)
	if err != nil {
		t.Fatal(err)
	}
	mutant := strategy.Strategy{0.95, 0.05} // overweights the top site
	cfg := InvasionConfig{
		F: f, K: k, C: policy.Exclusive{},
		Resident: sigma, Mutant: mutant,
		PopSize: 2000, InitialMutantFrac: 0.10,
		Generations: 300, GamesPerGen: 8, Selection: 3, Seed: 7,
	}
	res, err := Invasion(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := res.MutantFrac[0]
	end := res.MutantFrac[len(res.MutantFrac)-1]
	if !(res.Extinct || end < start/2) {
		t.Errorf("mutant not repelled: %v -> %v (extinct=%v)", start, end, res.Extinct)
	}
}

func TestInvasionResidentBeatenWhenUnstable(t *testing.T) {
	// Flip the roles: a uniform resident on skewed values is invaded by
	// the IFD mutant.
	f := site.TwoSite(0.2)
	k := 2
	sigma, _, err := ifd.Exclusive(f, k)
	if err != nil {
		t.Fatal(err)
	}
	cfg := InvasionConfig{
		F: f, K: k, C: policy.Exclusive{},
		Resident: strategy.Uniform(2), Mutant: sigma,
		PopSize: 2000, InitialMutantFrac: 0.10,
		Generations: 300, GamesPerGen: 8, Selection: 3, Seed: 11,
	}
	res, err := Invasion(cfg)
	if err != nil {
		t.Fatal(err)
	}
	end := res.MutantFrac[len(res.MutantFrac)-1]
	if !(res.Fixed || end > 0.3) {
		t.Errorf("advantageous mutant failed to grow: %v -> %v", res.MutantFrac[0], end)
	}
}

func TestInvasionValidation(t *testing.T) {
	f := site.TwoSite(0.5)
	u := strategy.Uniform(2)
	bad := InvasionConfig{F: f, K: 0, C: policy.Exclusive{}, Resident: u, Mutant: u}
	if _, err := Invasion(bad); err == nil {
		t.Error("k=0 accepted")
	}
	bad = InvasionConfig{F: f, K: 2, C: policy.Exclusive{}, Resident: u, Mutant: u, PopSize: 1}
	if _, err := Invasion(bad); !errors.Is(err, ErrPop) {
		t.Error("N=1 accepted")
	}
	bad = InvasionConfig{F: f, K: 2, C: policy.Exclusive{}, Resident: strategy.Strategy{0.5, 0.6}, Mutant: u}
	if _, err := Invasion(bad); err == nil {
		t.Error("invalid resident accepted")
	}
}

func TestInvasionDeterministicPerSeed(t *testing.T) {
	f := site.TwoSite(0.5)
	u := strategy.Uniform(2)
	d := strategy.Strategy{0.8, 0.2}
	cfg := InvasionConfig{F: f, K: 2, C: policy.Sharing{}, Resident: u, Mutant: d,
		PopSize: 200, Generations: 20, Seed: 5}
	a, err := Invasion(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Invasion(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.MutantFrac) != len(b.MutantFrac) {
		t.Fatal("trajectory lengths differ")
	}
	for i := range a.MutantFrac {
		if a.MutantFrac[i] != b.MutantFrac[i] {
			t.Fatal("same seed diverged")
		}
	}
}
