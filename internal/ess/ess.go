// Package ess implements the Evolutionary Stable Strategy machinery of
// Section 1.4: exact cross-strategy payoffs under k-tuple random matching,
// the two-condition ESS characterization with its index m_pi, and randomized
// uninvadability audits used to verify Theorem 3 (sigma* is an ESS under the
// exclusive policy) numerically.
package ess

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"

	"dispersal/internal/coverage"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/strategy"
)

// Errors returned by the audit functions.
var (
	ErrDim = errors.New("ess: mismatched dimensions")
)

// Payoff returns E(rho; sigma^a, pi^b), the expected payoff of a rho-player
// against a sigma-players and b pi-players, with a+b = k-1 implied by the
// caller. It is a thin, readable wrapper over coverage.CrossPayoff.
func Payoff(f site.Values, c policy.Congestion, rho, sigma, pi strategy.Strategy, a, b int) (float64, error) {
	return coverage.CrossPayoff(f, c, rho, sigma, pi, a, b)
}

// Verdict is the outcome of testing one mutant against a resident.
type Verdict struct {
	// MIndex is the characterization index m_pi: the number of leading
	// levels at which resident and mutant tie before the resident's strict
	// advantage appears. Valid only when Stable.
	MIndex int
	// Stable reports whether the ESS characterization conditions hold
	// against this mutant.
	Stable bool
	// Margin is the resident's payoff advantage at level MIndex (strictly
	// positive when Stable).
	Margin float64
	// Reason describes a failure, empty when Stable.
	Reason string
}

// Characterize tests the ESS characterization of Section 1.4 for resident
// sigma against mutant pi: it searches for the index m in [0, k-1] with
//
//	E(sigma; sigma^(k-m-1), pi^m) > E(pi; sigma^(k-m-1), pi^m)
//	E(sigma; sigma^(k-l-1), pi^l) = E(pi; sigma^(k-l-1), pi^l)  for l < m.
//
// Ties are resolved with tolerance tol (absolute, on payoff differences).
func Characterize(f site.Values, c policy.Congestion, k int, sigma, pi strategy.Strategy, tol float64) (Verdict, error) {
	if len(f) != len(sigma) || len(f) != len(pi) {
		return Verdict{}, ErrDim
	}
	for m := 0; m <= k-1; m++ {
		es, err := Payoff(f, c, sigma, sigma, pi, k-m-1, m)
		if err != nil {
			return Verdict{}, err
		}
		ep, err := Payoff(f, c, pi, sigma, pi, k-m-1, m)
		if err != nil {
			return Verdict{}, err
		}
		d := es - ep
		switch {
		case d > tol:
			return Verdict{MIndex: m, Stable: true, Margin: d}, nil
		case d < -tol:
			return Verdict{
				MIndex: m,
				Margin: d,
				Reason: fmt.Sprintf("mutant strictly better at level m=%d (margin %.3e)", m, d),
			}, nil
		default:
			// Tie within tolerance: move to the next level.
		}
	}
	return Verdict{
		MIndex: k - 1,
		Reason: "resident and mutant tie at every level: neutral drift, not an ESS against this mutant",
	}, nil
}

// InvasionMargin returns U[sigma; mix] - U[pi; mix] for the post-invasion
// population mix = (1-eps)sigma + eps*pi (Eq. 3). sigma is uninvadable by pi
// at invasion size eps iff the margin is strictly positive.
func InvasionMargin(f site.Values, c policy.Congestion, k int, sigma, pi strategy.Strategy, eps float64) (float64, error) {
	us, err := coverage.InvasionPayoffMixture(f, c, k, sigma, sigma, pi, eps)
	if err != nil {
		return 0, err
	}
	up, err := coverage.InvasionPayoffMixture(f, c, k, pi, sigma, pi, eps)
	if err != nil {
		return 0, err
	}
	return us - up, nil
}

// StrongStability checks the strengthened criterion proved in Section 3:
// for mutants pi supported inside the resident's support,
// E(sigma; pi^l, sigma^(k-l-1)) > E(pi; pi^l, sigma^(k-l-1)) for every
// 1 <= l <= k-2 (not just l = m_pi). It returns the minimum margin across
// levels, which must be positive for distinct mutants, together with the
// level attaining it.
func StrongStability(f site.Values, c policy.Congestion, k int, sigma, pi strategy.Strategy) (minMargin float64, atLevel int, err error) {
	if k < 3 {
		// No levels in [1, k-2]; the criterion is vacuous.
		return 0, -1, nil
	}
	first := true
	for l := 1; l <= k-2; l++ {
		es, err := Payoff(f, c, sigma, pi, sigma, l, k-l-1)
		if err != nil {
			return 0, 0, err
		}
		ep, err := Payoff(f, c, pi, pi, sigma, l, k-l-1)
		if err != nil {
			return 0, 0, err
		}
		if d := es - ep; first || d < minMargin {
			minMargin, atLevel, first = d, l, false
		}
	}
	return minMargin, atLevel, nil
}

// AuditReport summarizes an uninvadability audit of a resident strategy.
type AuditReport struct {
	// Mutants is the number of mutants tested.
	Mutants int
	// Failures counts mutants violating the characterization.
	Failures int
	// WorstMargin is the smallest strict margin observed among stable
	// verdicts (small positive margins indicate near-neutral mutants).
	WorstMargin float64
	// FirstFailure, if Failures > 0, is a witness mutant.
	FirstFailure strategy.Strategy
	// FirstFailureReason explains the witness.
	FirstFailureReason string
}

// Audit tests the resident sigma against every provided mutant with
// Characterize and aggregates the outcome. Mutants equal to sigma (within
// 1e-12 in L-infinity) are skipped: the definition of ESS quantifies over
// pi != sigma.
func Audit(f site.Values, c policy.Congestion, k int, sigma strategy.Strategy, mutants []strategy.Strategy, tol float64) (AuditReport, error) {
	return AuditContext(context.Background(), f, c, k, sigma, mutants, tol)
}

// AuditContext is Audit under a context: cancellation is checked between
// mutants, so a deadline interrupts large panels promptly.
func AuditContext(ctx context.Context, f site.Values, c policy.Congestion, k int, sigma strategy.Strategy, mutants []strategy.Strategy, tol float64) (AuditReport, error) {
	rep := AuditReport{WorstMargin: -1}
	for _, pi := range mutants {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		if sigma.LInf(pi) < 1e-12 {
			continue
		}
		rep.Mutants++
		v, err := Characterize(f, c, k, sigma, pi, tol)
		if err != nil {
			return rep, err
		}
		if !v.Stable {
			rep.Failures++
			if rep.FirstFailure == nil {
				rep.FirstFailure = pi.Clone()
				rep.FirstFailureReason = v.Reason
			}
			continue
		}
		if rep.WorstMargin < 0 || v.Margin < rep.WorstMargin {
			rep.WorstMargin = v.Margin
		}
	}
	return rep, nil
}

// MutantFamily generates a diverse panel of mutant strategies against a
// resident over m sites: structured deviations (point masses, uniform,
// support truncations, value-proportional) plus n random draws. All mutants
// are valid distributions.
func MutantFamily(rng *rand.Rand, resident strategy.Strategy, f site.Values, n int) []strategy.Strategy {
	m := len(resident)
	var out []strategy.Strategy
	// Vertices.
	for x := 0; x < m; x++ {
		out = append(out, strategy.Delta(m, x))
	}
	// Uniform and truncated uniforms.
	out = append(out, strategy.Uniform(m))
	for _, w := range []int{1, 2, m / 2} {
		if w >= 1 && w < m {
			out = append(out, strategy.UniformFirst(m, w))
		}
	}
	// Value-proportional.
	if prop, err := strategy.Proportional(f); err == nil {
		out = append(out, prop)
	}
	// Local perturbations of the resident.
	for i := 0; i < 4; i++ {
		pert := resident.Clone()
		x := rng.IntN(m)
		y := rng.IntN(m)
		if x != y {
			d := 0.05 * rng.Float64() * pert[x]
			pert[x] -= d
			pert[y] += d
		}
		if pert.Validate() == nil {
			out = append(out, pert)
		}
	}
	// Random Dirichlet-like mutants.
	for i := 0; i < n; i++ {
		w := make([]float64, m)
		for j := range w {
			w[j] = rng.ExpFloat64()
			if w[j] <= 0 {
				w[j] = 1e-9
			}
		}
		if p, err := strategy.FromWeights(w); err == nil {
			out = append(out, p)
		}
	}
	// Sparse random mutants (random support pairs).
	for i := 0; i < n/2; i++ {
		x, y := rng.IntN(m), rng.IntN(m)
		if x == y {
			continue
		}
		t := rng.Float64()
		p := make(strategy.Strategy, m)
		p[x], p[y] = t, 1-t
		out = append(out, p)
	}
	return out
}
