package ess

import (
	"math/rand/v2"
	"testing"

	"dispersal/internal/ifd"
	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/strategy"
)

const tol = 1e-10

// TestTheorem3SigmaStarIsESS is the paper's Theorem 3 in numerical form:
// under the exclusive policy, sigma* survives the characterization test
// against a large panel of mutants across many random games.
func TestTheorem3SigmaStarIsESS(t *testing.T) {
	rng := rand.New(rand.NewPCG(1805, 1319))
	for trial := 0; trial < 15; trial++ {
		m := 2 + rng.IntN(8)
		k := 2 + rng.IntN(6)
		f := site.Random(rng, m, 0.1, 3)
		sigma, _, err := ifd.Exclusive(f, k)
		if err != nil {
			t.Fatal(err)
		}
		mutants := MutantFamily(rng, sigma, f, 20)
		rep, err := Audit(f, policy.Exclusive{}, k, sigma, mutants, tol)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failures > 0 {
			t.Fatalf("M=%d k=%d: %d/%d mutants defeat sigma*: %s (mutant %v)",
				m, k, rep.Failures, rep.Mutants, rep.FirstFailureReason, rep.FirstFailure)
		}
		if rep.Mutants == 0 {
			t.Fatalf("no mutants tested")
		}
	}
}

func TestCharacterizeMutantOutsideSupport(t *testing.T) {
	// Section 3: mutants whose support leaves [1, W] lose already at m=0.
	f := site.Geometric(6, 1, 0.3) // steep: W < 6 for small k
	k := 2
	sigma, res, err := ifd.Exclusive(f, k)
	if err != nil {
		t.Fatal(err)
	}
	if res.W >= 6 {
		t.Skip("need truncated support for this scenario")
	}
	pi := strategy.Delta(6, 5) // worst site, outside support
	v, err := Characterize(f, policy.Exclusive{}, k, sigma, pi, tol)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Stable || v.MIndex != 0 {
		t.Errorf("outside-support mutant: verdict %+v, want stable at m=0", v)
	}
}

func TestCharacterizeMutantInsideSupportTiesAtZero(t *testing.T) {
	// Mutants supported inside [1, W] tie at m=0 (both earn nu against
	// sigma^(k-1)) and lose at m=1.
	f := site.TwoSite(0.5)
	k := 3
	sigma, _, err := ifd.Exclusive(f, k)
	if err != nil {
		t.Fatal(err)
	}
	pi := strategy.Strategy{0.9, 0.1}
	v, err := Characterize(f, policy.Exclusive{}, k, sigma, pi, tol)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Stable {
		t.Fatalf("verdict %+v", v)
	}
	if v.MIndex != 1 {
		t.Errorf("m_pi = %d, want 1 (Eq. 11 ties at level 0)", v.MIndex)
	}
}

func TestCharacterizeDetectsUnstableResident(t *testing.T) {
	// A non-equilibrium resident (uniform when values are skewed) is
	// invadable by the IFD itself at m=0.
	f := site.TwoSite(0.2)
	k := 2
	resident := strategy.Uniform(2)
	pi, _, err := ifd.Exclusive(f, k)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Characterize(f, policy.Exclusive{}, k, resident, pi, tol)
	if err != nil {
		t.Fatal(err)
	}
	if v.Stable {
		t.Errorf("uniform resident reported stable against sigma*: %+v", v)
	}
}

func TestCharacterizeNeutralDrift(t *testing.T) {
	// Under the constant policy every strategy earns f-weighted payoff
	// independent of opponents; two argmax point masses tie at all levels.
	f := site.Values{1, 1}
	sigma := strategy.Delta(2, 0)
	pi := strategy.Delta(2, 1)
	v, err := Characterize(f, policy.Constant{}, 3, sigma, pi, tol)
	if err != nil {
		t.Fatal(err)
	}
	if v.Stable {
		t.Errorf("neutral mutant reported defeated: %+v", v)
	}
	if v.Reason == "" {
		t.Error("want a drift explanation")
	}
}

func TestCharacterizeDimMismatch(t *testing.T) {
	f := site.TwoSite(0.5)
	if _, err := Characterize(f, policy.Exclusive{}, 2, strategy.Uniform(3), strategy.Uniform(2), tol); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestInvasionMarginPositiveForSmallEps(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 2))
	for trial := 0; trial < 10; trial++ {
		m := 2 + rng.IntN(5)
		k := 2 + rng.IntN(5)
		f := site.Random(rng, m, 0.2, 2)
		sigma, _, err := ifd.Exclusive(f, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, pi := range MutantFamily(rng, sigma, f, 6) {
			if sigma.LInf(pi) < 1e-9 {
				continue
			}
			margin, err := InvasionMargin(f, policy.Exclusive{}, k, sigma, pi, 0.01)
			if err != nil {
				t.Fatal(err)
			}
			if margin <= 0 {
				t.Fatalf("M=%d k=%d: mutant %v invades at eps=0.01 (margin %v)", m, k, pi, margin)
			}
		}
	}
}

func TestInvasionMarginZeroAgainstSelf(t *testing.T) {
	f := site.TwoSite(0.4)
	sigma, _, err := ifd.Exclusive(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	margin, err := InvasionMargin(f, policy.Exclusive{}, 3, sigma, sigma, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(margin, 0, 1e-12) {
		t.Errorf("self margin = %v", margin)
	}
}

func TestStrongStabilityAllLevels(t *testing.T) {
	// Section 3 proves strict inequality for every level 1 <= l <= k-2 for
	// in-support mutants — stronger than the characterization needs.
	f := site.TwoSite(0.6)
	k := 6
	sigma, _, err := ifd.Exclusive(f, k)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(10, 20))
	for trial := 0; trial < 20; trial++ {
		q := rng.Float64()
		pi := strategy.Strategy{q, 1 - q}
		if sigma.LInf(pi) < 1e-9 {
			continue
		}
		min, level, err := StrongStability(f, policy.Exclusive{}, k, sigma, pi)
		if err != nil {
			t.Fatal(err)
		}
		if min <= 0 {
			t.Fatalf("strict stability fails at level %d for mutant %v: margin %v", level, pi, min)
		}
	}
}

func TestStrongStabilityVacuousForSmallK(t *testing.T) {
	f := site.TwoSite(0.5)
	sigma, _, err := ifd.Exclusive(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	min, level, err := StrongStability(f, policy.Exclusive{}, 2, sigma, strategy.Uniform(2))
	if err != nil {
		t.Fatal(err)
	}
	if min != 0 || level != -1 {
		t.Errorf("k=2 should be vacuous: %v, %d", min, level)
	}
}

func TestSharingIFDIsAlsoUninvadableByCharacterization(t *testing.T) {
	// The IFD is an ESS for other congestion policies too (the literature
	// result the paper cites); verify for sharing on a small game.
	f := site.TwoSite(0.7)
	k := 3
	sigma, _, err := ifd.Solve(f, k, policy.Sharing{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(6, 7))
	rep, err := Audit(f, policy.Sharing{}, k, sigma, MutantFamily(rng, sigma, f, 15), 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failures > 0 {
		t.Errorf("sharing IFD invadable: %s", rep.FirstFailureReason)
	}
}

func TestAuditSkipsResidentItself(t *testing.T) {
	f := site.TwoSite(0.5)
	sigma, _, err := ifd.Exclusive(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Audit(f, policy.Exclusive{}, 2, sigma, []strategy.Strategy{sigma.Clone()}, tol)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mutants != 0 {
		t.Errorf("resident counted as mutant: %+v", rep)
	}
}

func TestMutantFamilyValid(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 3))
	f := site.Geometric(5, 1, 0.8)
	resident := strategy.Uniform(5)
	for i, p := range MutantFamily(rng, resident, f, 10) {
		if err := p.Validate(); err != nil {
			t.Errorf("mutant %d invalid: %v", i, err)
		}
	}
}

func TestPayoffAgainstMixedOpponents(t *testing.T) {
	// Hand check: M=1 forces everyone to the single site. Exclusive, k=3:
	// focal payoff 0 regardless of the opponent split.
	f := site.Values{2}
	one := strategy.Strategy{1}
	for a := 0; a <= 2; a++ {
		got, err := Payoff(f, policy.Exclusive{}, one, one, one, a, 2-a)
		if err != nil {
			t.Fatal(err)
		}
		if got != 0 {
			t.Errorf("a=%d: payoff %v, want 0", a, got)
		}
	}
	// Sharing, k=3, single site: payoff = 2/3.
	got, err := Payoff(f, policy.Sharing{}, one, one, one, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(got, 2.0/3, 1e-12) {
		t.Errorf("sharing payoff = %v, want 2/3", got)
	}
}
