package experiments

import (
	"fmt"
	"math"

	"dispersal/internal/asymptotic"
	"dispersal/internal/numeric"
	"dispersal/internal/site"
	"dispersal/internal/table"
)

// E18Asymptotics verifies the large-k structure of sigma* derived from the
// paper's closed form: the exact miss identity Miss = (W-1)*nu + tail, the
// log-criterion support approximation, and the 1/(k-1) convergence to the
// uniform distribution with the predicted first-order correction.
func E18Asymptotics() (Report, error) {
	pass := true
	tb := table.New("k", "W exact", "W approx", "Miss(sigma*)", "(W-1)nu+tail", "max |(k-1)(sigma*-1/M) - limit|")

	fWide := site.Geometric(40, 1, 0.9) // for the support sweep
	fFull := site.Values{1, 0.8, 0.6, 0.4}
	limit := asymptotic.LimitCorrection(fFull)

	prevDeviation := math.Inf(1)
	for _, k := range []int{2, 4, 8, 16, 32, 128, 512} {
		wExact, err := asymptotic.SupportSize(fWide, k)
		if err != nil {
			return Report{ID: "E18"}, err
		}
		wApprox, err := asymptotic.ApproxSupportSize(fWide, k)
		if err != nil {
			return Report{ID: "E18"}, err
		}
		miss, pred, err := asymptotic.MissIdentity(fWide, k)
		if err != nil {
			return Report{ID: "E18"}, err
		}
		if !numeric.AlmostEqual(miss, pred, 1e-9) {
			pass = false
		}
		devStr := "support not full"
		if dev, err := asymptotic.ScaledDeviation(fFull, k); err == nil {
			var worst float64
			for x := range dev {
				if d := math.Abs(dev[x] - limit[x]); d > worst {
					worst = d
				}
			}
			devStr = fmt.Sprintf("%.6f", worst)
			if worst > prevDeviation+1e-9 {
				pass = false
			}
			prevDeviation = worst
		}
		tb.AddRowf(k, wExact, wApprox, miss, pred, devStr)
	}
	if prevDeviation > 0.02 {
		pass = false
	}

	kFull, err := asymptotic.PlayersForFullSupport(fWide, 0)
	if err != nil {
		return Report{ID: "E18"}, err
	}
	return Report{
		ID:    "E18",
		Title: "Asymptotics of sigma*: support growth, miss identity, uniform limit",
		PaperClaim: "(derived from the paper's closed form) Miss(sigma*) = (W-1)*nu + tail exactly; " +
			"W(k) follows the log-criterion; sigma* -> uniform at rate 1/(k-1)",
		Table: tb,
		Notes: []string{
			fmt.Sprintf("smallest k with full support on the 40-site geometric landscape: %d", kFull),
		},
		Pass: pass,
	}, nil
}
