package experiments

import (
	"context"
	"fmt"
	"math"

	"dispersal/internal/asymptotic"
	"dispersal/internal/numeric"
	"dispersal/internal/site"
	"dispersal/internal/sweep"
	"dispersal/internal/table"
)

// E18Asymptotics verifies the large-k structure of sigma* derived from the
// paper's closed form: the exact miss identity Miss = (W-1)*nu + tail, the
// log-criterion support approximation, and the 1/(k-1) convergence to the
// uniform distribution with the predicted first-order correction.
func E18Asymptotics() (Report, error) {
	return E18AsymptoticsContext(context.Background())
}

// E18AsymptoticsContext is E18 under a context: the per-k solves fan out
// across the sweep worker pool (they are independent), while the
// monotonicity checks that couple consecutive k values run on the collected
// rows afterwards.
func E18AsymptoticsContext(ctx context.Context) (Report, error) {
	pass := true
	tb := table.New("k", "W exact", "W approx", "Miss(sigma*)", "(W-1)nu+tail", "max |(k-1)(sigma*-1/M) - limit|")

	fWide := site.Geometric(40, 1, 0.9) // for the support sweep
	fFull := site.Values{1, 0.8, 0.6, 0.4}
	limit := asymptotic.LimitCorrection(fFull)

	type row struct {
		k               int
		wExact, wApprox int
		miss, pred      float64
		hasDev          bool
		worstDev        float64
	}
	ks := []int{2, 4, 8, 16, 32, 128, 512}
	rows, err := sweep.Map(ctx, ks, 0, func(_ context.Context, _ int, k int) (row, error) {
		wExact, err := asymptotic.SupportSize(fWide, k)
		if err != nil {
			return row{}, err
		}
		wApprox, err := asymptotic.ApproxSupportSize(fWide, k)
		if err != nil {
			return row{}, err
		}
		miss, pred, err := asymptotic.MissIdentity(fWide, k)
		if err != nil {
			return row{}, err
		}
		r := row{k: k, wExact: wExact, wApprox: wApprox, miss: miss, pred: pred}
		if dev, err := asymptotic.ScaledDeviation(fFull, k); err == nil {
			r.hasDev = true
			for x := range dev {
				if d := math.Abs(dev[x] - limit[x]); d > r.worstDev {
					r.worstDev = d
				}
			}
		}
		return r, nil
	})
	if err != nil {
		return Report{ID: "E18"}, err
	}

	prevDeviation := math.Inf(1)
	for _, r := range rows {
		if !numeric.AlmostEqual(r.miss, r.pred, 1e-9) {
			pass = false
		}
		devStr := "support not full"
		if r.hasDev {
			devStr = fmt.Sprintf("%.6f", r.worstDev)
			if r.worstDev > prevDeviation+1e-9 {
				pass = false
			}
			prevDeviation = r.worstDev
		}
		tb.AddRowf(r.k, r.wExact, r.wApprox, r.miss, r.pred, devStr)
	}
	if prevDeviation > 0.02 {
		pass = false
	}

	kFull, err := asymptotic.PlayersForFullSupport(fWide, 0)
	if err != nil {
		return Report{ID: "E18"}, err
	}
	return Report{
		ID:    "E18",
		Title: "Asymptotics of sigma*: support growth, miss identity, uniform limit",
		PaperClaim: "(derived from the paper's closed form) Miss(sigma*) = (W-1)*nu + tail exactly; " +
			"W(k) follows the log-criterion; sigma* -> uniform at rate 1/(k-1)",
		Table: tb,
		Notes: []string{
			fmt.Sprintf("smallest k with full support on the 40-site geometric landscape: %d", kFull),
		},
		Pass: pass,
	}, nil
}
