package experiments

import (
	"fmt"

	"dispersal/internal/coverage"
	"dispersal/internal/game"
	"dispersal/internal/ifd"
	"dispersal/internal/infer"
	"dispersal/internal/mechanism"
	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/table"
)

// E22MechanismDiscovery runs the constructive form of Theorem 6: a
// coordinate-descent search over table congestion policies, knowing nothing
// about the paper's analysis, lands on the exclusive policy and its
// coverage on every tested landscape.
func E22MechanismDiscovery() (Report, error) {
	tb := table.New("landscape", "k", "optimized coverage", "sigma* coverage", "max |C(l)| found")
	pass := true
	cases := []struct {
		name string
		f    site.Values
		k    int
	}{
		{"two-site f2=0.3", site.TwoSite(0.3), 2},
		{"geometric(8, 0.75)", site.Geometric(8, 1, 0.75), 3},
		{"slow-decay(12, 3)", site.SlowDecay(12, 3), 3},
		{"zipf(10, 1)", site.Zipf(10, 1, 1), 4},
	}
	for _, c := range cases {
		d, err := mechanism.Optimize(c.f, c.k, mechanism.Options{Seed: 22})
		if err != nil {
			return Report{ID: "E22"}, err
		}
		sigma, _, err := ifd.Exclusive(c.f, c.k)
		if err != nil {
			return Report{ID: "E22"}, err
		}
		want := coverage.Cover(c.f, sigma, c.k)
		tb.AddRowf(c.name, c.k, d.Coverage, want, d.MaxLevelMagnitude())
		if !numeric.AlmostEqual(d.Coverage, want, 1e-3) {
			pass = false
		}
		if d.MaxLevelMagnitude() > 0.05 {
			pass = false
		}
	}
	return Report{
		ID:    "E22",
		Title: "Theorem 6, constructively: policy search discovers the exclusive policy",
		PaperClaim: "the exclusive policy is the unique congestion policy with optimal " +
			"equilibrium coverage; a blind optimizer over table policies must therefore find it",
		Table: tb,
		Pass:  pass,
	}, nil
}

// E23InverseIFD closes the loop between theory and the simulator: occupancy
// observed in simulated equilibrium play is inverted back into the site
// values that generated it, with error shrinking in the sample size.
func E23InverseIFD() (Report, error) {
	f := site.Geometric(5, 1, 0.75)
	k := 3
	sigma, _, err := ifd.Exclusive(f, k)
	if err != nil {
		return Report{ID: "E23"}, err
	}
	tb := table.New("simulated rounds", "max relative error on support")
	pass := true
	prev := 2.0
	shrank := false
	for i, rounds := range []int{2_000, 20_000, 200_000, 2_000_000} {
		res, err := game.Simulate(game.Config{
			F: f, K: k, C: policy.Exclusive{}, Rounds: rounds, Seed: uint64(230 + i),
		}, sigma)
		if err != nil {
			return Report{ID: "E23"}, err
		}
		est, err := infer.Values(res.Occupancy, k, policy.Exclusive{}, 1e-4)
		if err != nil {
			return Report{ID: "E23"}, err
		}
		worst, err := est.MaxRelativeError(f)
		if err != nil {
			return Report{ID: "E23"}, err
		}
		tb.AddRowf(rounds, worst)
		if worst < prev {
			shrank = true
		}
		prev = worst
	}
	if prev > 0.01 || !shrank {
		pass = false
	}
	// And the exact-inversion sanity check across policies.
	for _, c := range []policy.Congestion{policy.Exclusive{}, policy.Sharing{}, policy.PowerLaw{Beta: 2}} {
		eq, _, err := ifd.Solve(f, k, c)
		if err != nil {
			return Report{ID: "E23"}, err
		}
		est, err := infer.Values(eq, k, c, 1e-12)
		if err != nil {
			return Report{ID: "E23"}, err
		}
		worst, err := est.MaxRelativeError(f)
		if err != nil {
			return Report{ID: "E23"}, err
		}
		if worst > 1e-6 {
			pass = false
		}
	}
	return Report{
		ID:    "E23",
		Title: "Inverse IFD: observed occupancy recovers the site values",
		PaperClaim: "(IFD literature, Section 1.3) equilibrium occupancy identifies relative " +
			"patch quality; simulated equilibrium play inverts back to the generating values",
		Table: tb,
		Notes: []string{fmt.Sprintf("exact-occupancy inversion verified for exclusive, sharing, and powerlaw policies on M=%d, k=%d", len(f), k)},
		Pass:  pass,
	}, nil
}
