package experiments

import (
	"context"
	"fmt"
	"math"

	"dispersal/internal/coverage"
	"dispersal/internal/ifd"
	"dispersal/internal/optimize"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/table"
)

// E24DriftingLandscape is E24 with a background context.
func E24DriftingLandscape() (Report, error) {
	return E24DriftingLandscapeContext(context.Background())
}

// E24DriftingLandscapeContext tracks the dispersal game over a drifting
// landscape — the time-varying regime the depletion and foraging examples
// gesture at. Every frame's equilibrium is solved through the warm-start
// path (ifd.SolveWarm seeded by the previous frame) and cross-checked
// against an independent cold solve; per frame it reports the equilibrium
// value, the equilibrium and optimal coverages, and the SPoA. The paper's
// static guarantees must hold frame-wise: SPoA >= 1 always, and the warm
// path must agree with the cold solver to solver tolerance.
func E24DriftingLandscapeContext(ctx context.Context) (Report, error) {
	const (
		k      = 8
		frames = 32
		amp    = 0.02
	)
	base := site.Geometric(16, 1, 0.85)
	c := policy.Sharing{}

	tb := table.New("frame", "nu", "Cover(IFD)", "Cover(p*)", "SPoA", "warm")
	pass := true
	var st *ifd.WarmState
	warmed := 0
	worstNu, worstP := 0.0, 0.0
	minSPoA := math.Inf(1)
	for t := 0; t < frames; t++ {
		f := site.Drifted(base, t, amp)
		pWarm, nuWarm, next, err := ifd.SolveWarm(ctx, st, f, k, c)
		if err != nil {
			return Report{ID: "E24"}, err
		}
		st = next
		if next.Warmed() {
			warmed++
		}
		pCold, nuCold, err := ifd.SolveContext(ctx, f, k, c)
		if err != nil {
			return Report{ID: "E24"}, err
		}
		if d := math.Abs(nuWarm-nuCold) / (1 + math.Abs(nuCold)); d > worstNu {
			worstNu = d
		}
		if d := pWarm.LInf(pCold); d > worstP {
			worstP = d
		}
		opt, _, err := optimize.MaxCoverage(f, k)
		if err != nil {
			return Report{ID: "E24"}, err
		}
		eqCover := coverage.Cover(f, pWarm, k)
		optCover := coverage.Cover(f, opt, k)
		spoa := optCover / eqCover
		if spoa < minSPoA {
			minSPoA = spoa
		}
		if spoa < 1-1e-9 {
			pass = false
		}
		if t%4 == 0 {
			tb.AddRowf(t, nuWarm, eqCover, optCover, spoa, next.Warmed())
		}
	}
	if worstNu > 1e-9 || worstP > 1e-6 {
		pass = false
	}
	// Frame 0 has no seed; every later frame of a 2% drift should warm.
	if warmed < frames-2 {
		pass = false
	}
	return Report{
		ID:         "E24",
		Title:      "Drifting landscapes: SPoA and coverage under time-varying f",
		PaperClaim: "frame-wise SPoA >= 1 under sharing; warm-started equilibria match cold solves",
		Table:      tb,
		Notes: []string{
			fmt.Sprintf("%d/%d frames warm-started; worst warm-vs-cold deviation: |dnu|/(1+|nu|) = %.2g, LInf(p) = %.2g",
				warmed, frames, worstNu, worstP),
			fmt.Sprintf("min frame SPoA = %.6f (sharing stays inefficient but bounded on every frame)", minSPoA),
		},
		Pass: pass,
	}, nil
}
