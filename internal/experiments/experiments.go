package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"

	"dispersal/internal/coverage"
	"dispersal/internal/dynamics"
	"dispersal/internal/ess"
	"dispersal/internal/game"
	"dispersal/internal/grants"
	"dispersal/internal/ifd"
	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/search"
	"dispersal/internal/site"
	"dispersal/internal/spoa"
	"dispersal/internal/strategy"
	"dispersal/internal/table"
)

// familyGrid returns the named value-function instances shared by several
// experiments.
func familyGrid(k int) []struct {
	name string
	f    site.Values
} {
	return []struct {
		name string
		f    site.Values
	}{
		{"two-site f2=0.3", site.TwoSite(0.3)},
		{"two-site f2=0.5", site.TwoSite(0.5)},
		{"geometric(20, 0.8)", site.Geometric(20, 1, 0.8)},
		{"zipf(30, s=1)", site.Zipf(30, 1, 1)},
		{"uniform(10)", site.Uniform(10, 1)},
		{fmt.Sprintf("slow-decay(4k, k=%d)", k), site.SlowDecay(4*k, k)},
		{"linear(15, 1..0.5)", site.Linear(15, 1, 0.5)},
	}
}

// E3Observation1 checks Cover(sigma*) > (1 - 1/e) * sum_{x<=k} f(x) across
// the family grid and a k sweep.
func E3Observation1() (Report, error) {
	tb := table.New("value function", "k", "Cover(sigma*)", "(1-1/e)*best-k", "ratio")
	pass := true
	for _, k := range []int{2, 3, 5, 10} {
		for _, fam := range familyGrid(k) {
			sigma, _, err := ifd.Exclusive(fam.f, k)
			if err != nil {
				return Report{ID: "E3"}, err
			}
			cov := coverage.Cover(fam.f, sigma, k)
			bound := coverage.ObservationOneBound(fam.f, k)
			tb.AddRowf(fam.name, k, cov, bound, cov/bound)
			if cov <= bound {
				pass = false
			}
		}
	}
	return Report{
		ID:         "E3",
		Title:      "Observation 1: optimal coverage beats (1-1/e) of the coordinated best",
		PaperClaim: "Cover(p*) > (1 - 1/e) * sum_{x<=k} f(x) for every value function",
		Table:      tb,
		Pass:       pass,
	}, nil
}

// E4Theorem3ESS audits sigma* against mutant panels across the family grid.
func E4Theorem3ESS() (Report, error) {
	rng := rand.New(rand.NewPCG(3, 1805))
	tb := table.New("value function", "k", "mutants", "invasions", "worst margin")
	pass := true
	for _, k := range []int{2, 3, 6} {
		for _, fam := range familyGrid(k) {
			sigma, _, err := ifd.Exclusive(fam.f, k)
			if err != nil {
				return Report{ID: "E4"}, err
			}
			mutants := ess.MutantFamily(rng, sigma, fam.f, 30)
			rep, err := ess.Audit(fam.f, policy.Exclusive{}, k, sigma, mutants, 1e-9)
			if err != nil {
				return Report{ID: "E4"}, err
			}
			tb.AddRowf(fam.name, k, rep.Mutants, rep.Failures, rep.WorstMargin)
			if rep.Failures > 0 {
				pass = false
			}
		}
	}
	return Report{
		ID:         "E4",
		Title:      "Theorem 3: sigma* is an ESS under the exclusive policy",
		PaperClaim: "no mutant strategy can invade a sigma*-playing population under Iexc",
		Table:      tb,
		Pass:       pass,
	}, nil
}

// E5Theorem4Optimality compares Cover(sigma*) against named rival
// strategies on every family.
func E5Theorem4Optimality() (Report, error) {
	k := 4
	tb := table.New("value function", "sigma*", "uniform", "top-k uniform", "proportional", "greedy", "sharing IFD")
	pass := true
	for _, fam := range familyGrid(k) {
		m := len(fam.f)
		sigma, _, err := ifd.Exclusive(fam.f, k)
		if err != nil {
			return Report{ID: "E5"}, err
		}
		prop, err := strategy.Proportional(fam.f)
		if err != nil {
			return Report{ID: "E5"}, err
		}
		shareEq, _, err := ifd.Solve(fam.f, k, policy.Sharing{})
		if err != nil {
			return Report{ID: "E5"}, err
		}
		rivals := []strategy.Strategy{
			strategy.Uniform(m),
			strategy.UniformFirst(m, k),
			prop,
			strategy.Delta(m, 0),
			shareEq,
		}
		best := coverage.Cover(fam.f, sigma, k)
		row := []any{fam.name, best}
		for _, r := range rivals {
			c := coverage.Cover(fam.f, r, k)
			row = append(row, c)
			if c > best+1e-9 {
				pass = false
			}
		}
		tb.AddRowf(row...)
	}
	return Report{
		ID:         "E5",
		Title:      "Theorem 4: sigma* maximizes coverage among symmetric strategies",
		PaperClaim: "Cover(sigma*) >= Cover(sigma) for every sigma, with equality only at sigma*",
		Table:      tb,
		Pass:       pass,
	}, nil
}

// E6Corollary5 sweeps SPoA(Cexc, f) over the grid; all values must be 1.
func E6Corollary5() (Report, error) {
	tb := table.New("value function", "k", "SPoA(exclusive)")
	pass := true
	worst := 1.0
	for _, k := range []int{2, 4, 8} {
		for _, fam := range familyGrid(k) {
			inst, err := spoa.Compute(fam.f, k, policy.Exclusive{})
			if err != nil {
				return Report{ID: "E6"}, err
			}
			tb.AddRowf(fam.name, k, inst.Ratio)
			if math.Abs(inst.Ratio-1) > 1e-6 {
				pass = false
			}
			if inst.Ratio > worst {
				worst = inst.Ratio
			}
		}
	}
	return Report{
		ID:         "E6",
		Title:      "Corollary 5: SPoA of the exclusive policy is exactly 1",
		PaperClaim: "SPoA(Cexc) = 1",
		Table:      tb,
		Notes:      []string{fmt.Sprintf("largest measured ratio: %.9f", worst)},
		Pass:       pass,
	}, nil
}

// E7Theorem6Criticality shows SPoA(C) > 1 for every non-exclusive policy on
// the slow-decay witness from the Theorem 6 proof.
func E7Theorem6Criticality() (Report, error) {
	k := 4
	f := site.SlowDecay(4*k, k)
	tb := table.New("policy", "SPoA on slow-decay f", "equilibrium coverage", "optimal coverage")
	pass := true
	policies := []policy.Congestion{
		policy.Exclusive{},
		policy.Sharing{},
		policy.Constant{},
		policy.TwoPoint{C2: 0.25},
		policy.TwoPoint{C2: -0.25},
		policy.PowerLaw{Beta: 2},
		policy.Cooperative{Gamma: 0.9},
		policy.Aggressive{Penalty: 0.5},
	}
	for _, c := range policies {
		inst, err := spoa.Compute(f, k, c)
		if err != nil {
			return Report{ID: "E7"}, err
		}
		tb.AddRowf(c.Name(), inst.Ratio, inst.EqCoverage, inst.OptCoverage)
		exclusive := policy.IsExclusive(c, k)
		if exclusive && math.Abs(inst.Ratio-1) > 1e-6 {
			pass = false
		}
		if !exclusive && inst.Ratio <= 1+1e-9 {
			pass = false
		}
	}
	return Report{
		ID:         "E7",
		Title:      "Theorem 6: every non-exclusive policy has SPoA > 1",
		PaperClaim: "for any congestion function C != Cexc there is a value function with SPoA(C, f) > 1",
		Table:      tb,
		Pass:       pass,
	}, nil
}

// E8SharingSPoABound sweeps random games and verifies the Vetta/Kleinberg-
// Oren bound SPoA(share) <= 2, reporting the worst case found.
func E8SharingSPoABound() (Report, error) {
	rng := rand.New(rand.NewPCG(8, 8))
	tb := table.New("game", "M", "k", "SPoA(sharing)")
	pass := true
	worst := spoa.Instance{Ratio: 1}
	for trial := 0; trial < 40; trial++ {
		m := 2 + rng.IntN(25)
		k := 2 + rng.IntN(10)
		f := site.Random(rng, m, 0.05, 5)
		inst, err := spoa.Compute(f, k, policy.Sharing{})
		if err != nil {
			return Report{ID: "E8"}, err
		}
		if inst.Ratio > worst.Ratio {
			worst = inst
			tb.AddRowf(fmt.Sprintf("random #%d (new worst)", trial), m, k, inst.Ratio)
		}
		if inst.Ratio > 2+1e-9 || inst.Ratio < 1-1e-9 {
			pass = false
		}
	}
	wc, err := spoa.WorstCase(policy.Sharing{}, 4, []int{2, 8, 16, 32}, 200, 17)
	if err != nil {
		return Report{ID: "E8"}, err
	}
	tb.AddRowf("adversarial search", len(wc.F), wc.K, wc.Ratio)
	if wc.Ratio > 2+1e-9 {
		pass = false
	}
	return Report{
		ID:         "E8",
		Title:      "Sharing policy SPoA stays below 2",
		PaperClaim: "SPoA(Cshare) <= 2 (via Vetta / Kleinberg-Oren)",
		Table:      tb,
		Notes:      []string{fmt.Sprintf("worst ratio found: %.6f (bound 2)", wc.Ratio)},
		Pass:       pass,
	}, nil
}

// E9ConstantPolicyAnarchy shows SPoA(C==1) growing like k on near-uniform
// value functions.
func E9ConstantPolicyAnarchy() (Report, error) {
	tb := table.New("k", "M", "SPoA(constant)", "SPoA / k")
	pass := true
	prev := 0.0
	for _, k := range []int{2, 4, 8, 16, 32} {
		m := 4 * k
		f := site.Linear(m, 1, 0.95)
		inst, err := spoa.Compute(f, k, policy.Constant{})
		if err != nil {
			return Report{ID: "E9"}, err
		}
		tb.AddRowf(k, m, inst.Ratio, inst.Ratio/float64(k))
		if inst.Ratio <= prev {
			pass = false
		}
		prev = inst.Ratio
	}
	if prev < 16 { // at k=32 the gap should be a large fraction of k
		pass = false
	}
	return Report{
		ID:         "E9",
		Title:      "C == 1 policy: anarchy grows like k",
		PaperClaim: "taking C == 1 yields SPoA of roughly k on slowly decreasing value functions",
		Table:      tb,
		Pass:       pass,
	}, nil
}

// E10MonteCarloValidation cross-checks the Monte-Carlo engine against the
// analytic coverage and payoff on several games.
func E10MonteCarloValidation() (Report, error) {
	tb := table.New("game", "analytic cover", "simulated cover", "|z|", "analytic payoff", "simulated payoff")
	pass := true
	rows := []struct {
		name string
		f    site.Values
		k    int
		c    policy.Congestion
	}{
		{"two-site, exclusive", site.TwoSite(0.3), 2, policy.Exclusive{}},
		{"two-site, sharing", site.TwoSite(0.5), 2, policy.Sharing{}},
		{"geometric, aggressive", site.Geometric(8, 1, 0.7), 4, policy.Aggressive{Penalty: 0.5}},
		{"zipf, powerlaw", site.Zipf(12, 1, 1), 6, policy.PowerLaw{Beta: 2}},
	}
	for i, r := range rows {
		eq, _, err := ifd.Solve(r.f, r.k, r.c)
		if err != nil {
			return Report{ID: "E10"}, err
		}
		wantCover := coverage.Cover(r.f, eq, r.k)
		wantPay := coverage.ExpectedPayoff(r.f, eq, eq, r.k, r.c)
		res, err := game.Simulate(game.Config{
			F: r.f, K: r.k, C: r.c, Rounds: 400_000, Seed: uint64(100 + i),
		}, eq)
		if err != nil {
			return Report{ID: "E10"}, err
		}
		z := math.Abs(res.Coverage.Mean-wantCover) / (res.Coverage.CI95/1.96 + 1e-15)
		tb.AddRowf(r.name, wantCover, res.Coverage.Mean, z, wantPay, res.Payoff.Mean)
		if z > 5 {
			pass = false
		}
		if math.Abs(res.Payoff.Mean-wantPay) > 5*(res.Payoff.CI95/1.96)+1e-9 {
			pass = false
		}
	}
	return Report{
		ID:         "E10",
		Title:      "Monte-Carlo engine matches the analytic calculus",
		PaperClaim: "(methodological) Eq. 1 and Eq. 2 describe the simulated game",
		Table:      tb,
		Pass:       pass,
	}, nil
}

// E11ReplicatorConvergence integrates replicator dynamics to the IFD for
// several policies.
func E11ReplicatorConvergence() (Report, error) {
	f := site.Geometric(6, 1, 0.7)
	k := 3
	tb := table.New("policy", "TV(final, IFD)", "steps", "converged")
	pass := true
	for _, c := range []policy.Congestion{
		policy.Exclusive{}, policy.Sharing{}, policy.TwoPoint{C2: -0.25}, policy.PowerLaw{Beta: 2},
	} {
		eq, _, err := ifd.Solve(f, k, c)
		if err != nil {
			return Report{ID: "E11"}, err
		}
		r, err := dynamics.Replicator(f, k, c, strategy.Uniform(6), dynamics.ReplicatorOptions{Steps: 60000})
		if err != nil {
			return Report{ID: "E11"}, err
		}
		tv := r.Final.TV(eq)
		tb.AddRowf(c.Name(), tv, r.Steps, r.Converged)
		if tv > 1e-4 {
			pass = false
		}
	}
	return Report{
		ID:         "E11",
		Title:      "Replicator dynamics converge to the IFD",
		PaperClaim: "the IFD is the unique symmetric equilibrium (Observation 2) and evolutionarily attracting",
		Table:      tb,
		Pass:       pass,
	}, nil
}

// E12BayesianSearch verifies the round-1 identity with sigma* and compares
// expected discovery times across algorithms.
func E12BayesianSearch() (Report, error) {
	prior := site.Zipf(30, 1, 1)
	k := 4
	round1, err := search.RoundOneDistribution(prior, k)
	if err != nil {
		return Report{ID: "E12"}, err
	}
	sigma, _, err := ifd.Exclusive(prior, k)
	if err != nil {
		return Report{ID: "E12"}, err
	}
	identity := round1.LInf(sigma) == 0

	tb := table.New("algorithm", "mean discovery round", "95% CI", "found frac")
	results := map[search.Algorithm]float64{}
	for _, a := range []search.Algorithm{
		search.StrategyAStar, search.StrategyPrior, search.StrategyUniform,
		search.StrategyGreedy, search.StrategyCoordinated,
	} {
		res, err := search.Run(search.Config{
			Prior: prior, K: k, Algorithm: a, Trials: 20_000, Seed: 12,
		})
		if err != nil {
			return Report{ID: "E12"}, err
		}
		results[a] = res.Time.Mean
		tb.AddRowf(a.String(), res.Time.Mean, res.Time.CI95, res.FoundFrac)
	}
	pass := identity &&
		results[search.StrategyAStar] <= results[search.StrategyUniform] &&
		results[search.StrategyAStar] <= results[search.StrategyGreedy] &&
		results[search.StrategyAStar] >= results[search.StrategyCoordinated]-0.05
	notes := []string{
		fmt.Sprintf("round-1 law of the sigma*-based searcher equals sigma* exactly: %v", identity),
		"only round 1 of A* is specified in the paper; the multi-round extension here " +
			"is a myopic per-searcher re-application of sigma* (see docs/ARCHITECTURE.md, modelling substitutions) " +
			"and is compared against uncoordinated baselines, not against the true A*",
	}
	return Report{
		ID:         "E12",
		Title:      "Bayesian parallel search: sigma* is round 1 of A*",
		PaperClaim: "algorithm sigma* is identical to the first round of A* [24]; uncoordinated sigma*-search approaches coordinated performance",
		Table:      tb,
		Notes:      notes,
		Pass:       pass,
	}, nil
}

// E13GrantMechanism compares the Kleinberg-Oren reward redesign with the
// exclusive congestion policy, including sensitivity to a misestimated k.
func E13GrantMechanism() (Report, error) {
	k := 6
	f := site.SlowDecay(24, k)
	out, err := grants.Compare(f, k)
	if err != nil {
		return Report{ID: "E13"}, err
	}
	tb := table.New("design k", "true k", "grant coverage frac", "exclusive coverage frac")
	pass := numeric.AlmostEqual(out.GrantCoverage, out.OptCoverage, 1e-4) &&
		numeric.AlmostEqual(out.ExclusiveCoverage, out.OptCoverage, 1e-6)
	sawDegradation := false
	for _, designK := range []int{2, 3, 6, 12, 24} {
		gFrac, eFrac, err := grants.MisestimatedK(f, designK, k)
		if err != nil {
			return Report{ID: "E13"}, err
		}
		tb.AddRowf(designK, k, gFrac, eFrac)
		if !numeric.AlmostEqual(eFrac, 1, 1e-6) {
			pass = false
		}
		if designK != k && gFrac < 1-1e-4 {
			sawDegradation = true
		}
	}
	if !sawDegradation {
		pass = false
	}
	return Report{
		ID:    "E13",
		Title: "Grant mechanism [23] vs the exclusive congestion policy",
		PaperClaim: "reward redesign achieves optimal coverage but requires knowing k; " +
			"the exclusive policy is k-free and always optimal",
		Table: tb,
		Notes: []string{fmt.Sprintf(
			"with k known exactly: optimum %.6f, grants %.6f, exclusive %.6f, plain sharing %.6f",
			out.OptCoverage, out.GrantCoverage, out.ExclusiveCoverage, out.SharingCoverage)},
		Pass: pass,
	}, nil
}
