package experiments

import (
	"strings"
	"testing"

	"dispersal/internal/numeric"
)

func TestFigure1PanelLeftEndpoints(t *testing.T) {
	p, err := Figure1Panel(0.3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.C) != 11 || p.C[0] != -0.5 || p.C[10] != 0.5 {
		t.Fatalf("grid: %v", p.C)
	}
	// Hand-computed values for f=(1,0.3), k=2 (see derivation in tests of
	// internal/ifd): optimum coverage with alpha = 0.3/1.3.
	alpha := 0.3 / 1.3
	wantOpt := 1*(1-alpha*alpha) + 0.3*(1-(1-alpha)*(1-alpha))
	for _, v := range p.Optimum {
		if !numeric.AlmostEqual(v, wantOpt, 1e-9) {
			t.Fatalf("optimum series %v, want constant %v", v, wantOpt)
		}
	}
	// ESS at c=0 equals the optimum.
	if !numeric.AlmostEqual(p.ESS[5], wantOpt, 1e-6) {
		t.Errorf("ESS(c=0) = %v, want %v", p.ESS[5], wantOpt)
	}
	// ESS at c=0.5 (sharing): boundary equilibrium (1,0), coverage 1.
	if !numeric.AlmostEqual(p.ESS[10], 1, 1e-6) {
		t.Errorf("ESS(c=0.5) = %v, want 1", p.ESS[10])
	}
	// Welfare-optimal coverage at c=0: symmetric (1/2,1/2), coverage 0.975.
	if !numeric.AlmostEqual(p.Welfare[5], 0.975, 1e-6) {
		t.Errorf("Welfare(c=0) = %v, want 0.975", p.Welfare[5])
	}
	// At k=2 and c=0.5 the welfare optimum coincides with the coverage
	// optimum (marginal conditions match; see figure1.go verify()).
	if !numeric.AlmostEqual(p.Welfare[10], wantOpt, 1e-6) {
		t.Errorf("Welfare(c=0.5) = %v, want %v", p.Welfare[10], wantOpt)
	}
}

func TestFigure1PanelESSPeaksAtZero(t *testing.T) {
	for _, f2 := range []float64{0.3, 0.5} {
		p, err := Figure1Panel(f2, 21)
		if err != nil {
			t.Fatal(err)
		}
		_, peak := numeric.MaxIndex(p.ESS)
		if !numeric.AlmostEqual(peak, p.ESS[10], 1e-9) {
			t.Errorf("f2=%v: ESS peak %v is not at c=0 (%v)", f2, peak, p.ESS[10])
		}
	}
}

func TestFigure1Verify(t *testing.T) {
	p, err := Figure1Panel(0.5, 21)
	if err != nil {
		t.Fatal(err)
	}
	ok, notes := p.verify()
	if !ok {
		t.Errorf("verify failed: %v", notes)
	}
	// A panel missing c=0 must fail verification.
	p2 := p
	p2.C = numeric.Linspace(-0.5, 0.5, 20) // even count skips 0
	if ok, _ := p2.verify(); ok {
		t.Error("grid without c=0 verified")
	}
}

func TestFigure1Chart(t *testing.T) {
	p, err := Figure1Panel(0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	ch := p.Chart()
	if len(ch.Series) != 3 {
		t.Fatalf("series: %d", len(ch.Series))
	}
	var b strings.Builder
	if err := ch.RenderASCII(&b, 40, 10); err != nil {
		t.Fatal(err)
	}
	if err := ch.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if err := ch.RenderSVG(&b, 300, 200); err != nil {
		t.Fatal(err)
	}
}

func TestReportRendering(t *testing.T) {
	rep, err := E3Observation1()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Error("E3 failed")
	}
	var b strings.Builder
	if err := rep.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "E3") || !strings.Contains(b.String(), "PASS") {
		t.Errorf("render: %q", b.String())
	}
	b.Reset()
	if err := rep.RenderMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "## E3") {
		t.Errorf("markdown: %q", b.String())
	}
}

func TestSummaryCountsPasses(t *testing.T) {
	reports := []Report{
		{ID: "A", Title: "a", Pass: true},
		{ID: "B", Title: "b", Pass: false},
	}
	s := Summary(reports)
	if !strings.Contains(s, "1/2") {
		t.Errorf("summary: %q", s)
	}
	if !strings.Contains(s, "FAIL") {
		t.Errorf("summary missing FAIL: %q", s)
	}
}

// The individual experiment smoke tests below keep the fast theorem checks
// (E3-E7, E9, E11, E13) under direct test; the slower stochastic ones
// (E1/E2/E8/E10/E12) are exercised via `go test -run TestAllExperiments`
// and the benchmarks.

func TestFastExperimentsPass(t *testing.T) {
	for _, run := range []func() (Report, error){
		E3Observation1,
		E5Theorem4Optimality,
		E6Corollary5,
		E7Theorem6Criticality,
		E9ConstantPolicyAnarchy,
		E13GrantMechanism,
		E14TravelCosts,
		E15CapacityConstraint,
		E16SpeciesCompetition,
		E17PureEquilibria,
		E18Asymptotics,
		E20NoisyValues,
	} {
		rep, err := run()
		if err != nil {
			t.Fatalf("%s: %v", rep.ID, err)
		}
		if !rep.Pass {
			t.Errorf("%s (%s) failed:\n%s", rep.ID, rep.Title, rep.Table.String())
		}
	}
}

func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite is slow; run without -short")
	}
	for _, rep := range All() {
		if !rep.Pass {
			var b strings.Builder
			_ = rep.Render(&b)
			t.Errorf("%s failed:\n%s", rep.ID, b.String())
		}
	}
}

func TestCompetitionSweepSeriesShape(t *testing.T) {
	// Thin direct test of the E21 machinery at low resolution.
	series, err := CompetitionSweep(fTestLandscape(), []int{2, 4}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series: %d", len(series))
	}
	for _, s := range series {
		if len(s.C) != 11 || len(s.Fraction) != 11 {
			t.Fatalf("k=%d: grid sizes %d/%d", s.K, len(s.C), len(s.Fraction))
		}
		mid := len(s.C) / 2
		if !numeric.AlmostEqual(s.Fraction[mid], 1, 1e-6) {
			t.Errorf("k=%d: fraction at c=0 is %v, want 1", s.K, s.Fraction[mid])
		}
		for i, v := range s.Fraction {
			if v > 1+1e-7 {
				t.Errorf("k=%d: fraction %v > 1 at index %d", s.K, v, i)
			}
		}
	}
}

func fTestLandscape() []float64 {
	out := make([]float64, 8)
	v := 1.0
	for i := range out {
		out[i] = v
		v *= 0.8
	}
	return out
}
