package experiments

// Experiments E14-E17 cover the extensions the paper proposes but leaves
// open (Sections 1.2, 5.1 and 5.2): travel costs, per-individual consumption
// capacity, interspecies competition, and the pure-equilibrium landscape.
// They are ablations of the paper's modelling assumptions: each quantifies
// how far the headline result (exclusive policy => optimal coverage)
// survives when one assumption is relaxed.
//
// Each experiment's case grid is independent, so the cases fan out across
// the sweep worker pool; the pass/fail verdicts are computed on the
// collected rows, keeping table order and verdict logic identical to the
// sequential version.

import (
	"context"
	"fmt"
	"math"

	"dispersal/internal/capacity"
	"dispersal/internal/coverage"
	"dispersal/internal/ifd"
	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/pureeq"
	"dispersal/internal/site"
	"dispersal/internal/species"
	"dispersal/internal/sweep"
	"dispersal/internal/table"
	"dispersal/internal/travelcost"
)

// E14TravelCosts measures how travel costs (Section 5.1's first open
// extension) distort the exclusive-policy equilibrium away from optimal
// coverage.
func E14TravelCosts() (Report, error) {
	return E14TravelCostsContext(context.Background())
}

// E14TravelCostsContext is E14 under a context.
func E14TravelCostsContext(ctx context.Context) (Report, error) {
	f := site.Geometric(10, 1, 0.85)
	k := 4
	tb := table.New("travel-cost profile", "eq coverage", "cost-free optimum", "fraction retained")
	pass := true

	profiles := []struct {
		name string
		t    travelcost.Costs
	}{
		{"zero", travelcost.Uniform(10, 0)},
		{"uniform 0.05", travelcost.Uniform(10, 0.05)},
		{"near-to-far 0..0.3", travelcost.Linear(10, 0, 0.3)},
		{"far-to-near 0.3..0", travelcost.Linear(10, 0.3, 0)},
		{"best site blocked", append(travelcost.Costs{0.6}, travelcost.Uniform(9, 0)...)},
	}
	type row struct{ eqCover, optCover float64 }
	rows, err := sweep.Map(ctx, profiles, 0, func(_ context.Context, _ int, pr struct {
		name string
		t    travelcost.Costs
	}) (row, error) {
		eqCover, optCover, err := travelcost.CoverageDistortion(f, pr.t, k)
		return row{eqCover, optCover}, err
	})
	if err != nil {
		return Report{ID: "E14"}, err
	}
	for i, pr := range profiles {
		eqCover, optCover := rows[i].eqCover, rows[i].optCover
		frac := eqCover / optCover
		tb.AddRowf(pr.name, eqCover, optCover, frac)
		if eqCover > optCover+1e-9 {
			pass = false
		}
		switch pr.name {
		case "zero", "uniform 0.05":
			// Uniform costs shift payoffs, not the strategy: optimality
			// must be retained exactly.
			if !numeric.AlmostEqual(frac, 1, 1e-6) {
				pass = false
			}
		case "far-to-near 0.3..0", "best site blocked":
			// Skewed costs must show a strict distortion.
			if frac >= 1-1e-6 {
				pass = false
			}
		}
	}
	return Report{
		ID:    "E14",
		Title: "Extension (Sec 5.1): travel costs distort the exclusive equilibrium",
		PaperClaim: "the paper's model omits per-site visiting costs and leaves them to future " +
			"work; uniform costs are harmless, skewed costs break SPoA = 1",
		Table: tb,
		Pass:  pass,
	}, nil
}

// E15CapacityConstraint measures the gap between sigma* and the
// consumption-optimal strategy under a per-individual consumption capacity
// (Section 5.1's second open extension).
func E15CapacityConstraint() (Report, error) {
	return E15CapacityConstraintContext(context.Background())
}

// E15CapacityConstraintContext is E15 under a context.
func E15CapacityConstraintContext(ctx context.Context) (Report, error) {
	f := site.Values{1, 0.3}
	k := 4
	tb := table.New("capacity per individual", "Consume(sigma*)", "optimal consumption", "ratio")
	pass := true
	sawGap := false
	caps := []float64{0.02, 0.1, 0.25, 0.5, 1, math.Inf(1)}
	type row struct{ sCons, optCons, ratio float64 }
	rows, err := sweep.Map(ctx, caps, 0, func(_ context.Context, _ int, cap float64) (row, error) {
		sCons, optCons, ratio, err := capacity.SigmaStarGap(f, k, cap)
		return row{sCons, optCons, ratio}, err
	})
	if err != nil {
		return Report{ID: "E15"}, err
	}
	for i, cap := range caps {
		sCons, optCons, ratio := rows[i].sCons, rows[i].optCons, rows[i].ratio
		label := fmt.Sprintf("%g", cap)
		if math.IsInf(cap, 1) {
			label = "unbounded (paper's model)"
		}
		tb.AddRowf(label, sCons, optCons, ratio)
		if ratio > 1+1e-9 {
			pass = false
		}
		if math.IsInf(cap, 1) && !numeric.AlmostEqual(ratio, 1, 1e-6) {
			pass = false
		}
		if !math.IsInf(cap, 1) && ratio < 1-1e-4 {
			sawGap = true
		}
	}
	if !sawGap {
		pass = false
	}
	return Report{
		ID:    "E15",
		Title: "Extension (Sec 5.1): per-individual consumption capacity",
		PaperClaim: "coverage assumes one player consumes a full site; with a finite capacity " +
			"sigma* is no longer consumption-optimal at intermediate capacities and exactly " +
			"optimal again as the capacity grows",
		Table: tb,
		Pass:  pass,
	}, nil
}

// E16SpeciesCompetition reproduces the Section 5.2 thought experiment: an
// aggressive (exclusive-policy) species vs a peaceful (sharing) species on
// shared patches, feeding at different times.
func E16SpeciesCompetition() (Report, error) {
	return E16SpeciesCompetitionContext(context.Background())
}

type speciesMatchup struct {
	name string
	a, b species.Species
	// wantAWins: A's alternating intake should exceed B's.
	wantAWins bool
}

// E16SpeciesCompetitionContext is E16 under a context.
func E16SpeciesCompetitionContext(ctx context.Context) (Report, error) {
	k := 6
	f := site.SlowDecay(4*k, k)
	tb := table.New("matchup (A vs B)", "A intake", "B intake", "A advantage")
	pass := true

	matchups := []speciesMatchup{
		{
			"exclusive vs sharing",
			species.Species{Name: "exclusive", K: k, C: policy.Exclusive{}},
			species.Species{Name: "sharing", K: k, C: policy.Sharing{}},
			true,
		},
		{
			"exclusive vs constant",
			species.Species{Name: "exclusive", K: k, C: policy.Exclusive{}},
			species.Species{Name: "constant", K: k, C: policy.Constant{}},
			true,
		},
		{
			"aggressive vs sharing",
			species.Species{Name: "aggressive", K: k, C: policy.Aggressive{Penalty: 0.5}},
			species.Species{Name: "sharing", K: k, C: policy.Sharing{}},
			true,
		},
		{
			"sharing vs sharing (control)",
			species.Species{Name: "sharing", K: k, C: policy.Sharing{}},
			species.Species{Name: "sharing", K: k, C: policy.Sharing{}},
			false,
		},
	}
	outs, err := sweep.Map(ctx, matchups, 0, func(_ context.Context, _ int, mu speciesMatchup) (species.Outcome, error) {
		return species.Intakes(f, mu.a, mu.b)
	})
	if err != nil {
		return Report{ID: "E16"}, err
	}
	for i, mu := range matchups {
		out := outs[i]
		adv := out.Alternating.A / out.Alternating.B
		tb.AddRowf(mu.name, out.Alternating.A, out.Alternating.B, adv)
		if mu.wantAWins && adv <= 1 {
			pass = false
		}
		if !mu.wantAWins && !numeric.AlmostEqual(adv, 1, 1e-9) {
			pass = false
		}
	}
	return Report{
		ID:    "E16",
		Title: "Extension (Sec 5.2): aggressive species out-consume peaceful ones",
		PaperClaim: "a species with costly conspecific collisions covers shared patches better " +
			"and starves a peaceful competitor feeding at different times",
		Table: tb,
		Pass:  pass,
	}, nil
}

// E17PureEquilibria verifies the Section 1.2 discussion: pure equilibria
// multiply factorially with k and require coordination to select, while
// the symmetric equilibrium is unique.
func E17PureEquilibria() (Report, error) {
	return E17PureEquilibriaContext(context.Background())
}

// E17PureEquilibriaContext is E17 under a context: each (M, k) enumeration
// runs on its own worker and the exponential profile scans themselves honour
// ctx.
func E17PureEquilibriaContext(ctx context.Context) (Report, error) {
	tb := table.New("M", "k", "pure NE", "k!", "pure-NE coverage", "symmetric (sigma*) coverage")
	pass := true
	cases := []struct{ m, k int }{{4, 2}, {5, 3}, {6, 4}, {7, 5}}
	type row struct {
		sum      pureeq.Summary
		symCover float64
	}
	rows, err := sweep.Map(ctx, cases, 0, func(ctx context.Context, _ int, kc struct{ m, k int }) (row, error) {
		f := site.Geometric(kc.m, 1, 0.8)
		sum, err := pureeq.EnumerateContext(ctx, f, kc.k, policy.Exclusive{}, 0)
		if err != nil {
			return row{}, err
		}
		sigma, _, err := ifd.Exclusive(f, kc.k)
		if err != nil {
			return row{}, err
		}
		return row{sum: sum, symCover: coverage.Cover(f, sigma, kc.k)}, nil
	})
	if err != nil {
		return Report{ID: "E17"}, err
	}
	for i, kc := range cases {
		sum, symCover := rows[i].sum, rows[i].symCover
		tb.AddRowf(kc.m, kc.k, sum.Equilibria, pureeq.Factorial(kc.k), sum.BestCoverage, symCover)
		if sum.Equilibria != pureeq.Factorial(kc.k) {
			pass = false
		}
		if sum.BestCoverage < symCover {
			pass = false
		}
	}
	return Report{
		ID:    "E17",
		Title: "Section 1.2: pure equilibria multiply factorially; symmetric one is unique",
		PaperClaim: "the number of pure equilibria grows exponentially with the players and " +
			"selecting one requires coordination, motivating the symmetric analysis",
		Table: tb,
		Notes: []string{
			"pure equilibria under the exclusive policy reach the full-coordination coverage " +
				"sum_{x<=k} f(x); the gap to the symmetric coverage is the price of no coordination",
		},
		Pass: pass,
	}, nil
}
