package experiments

import (
	"context"
	"fmt"
	"math"

	"dispersal/internal/coverage"
	"dispersal/internal/ifd"
	"dispersal/internal/numeric"
	"dispersal/internal/optimize"
	"dispersal/internal/plot"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/sweep"
	"dispersal/internal/table"
)

// Figure1Points is the default resolution of the Figure 1 sweep.
const Figure1Points = 101

// Panel holds the three series of one Figure 1 panel: coverage as a
// function of the competition parameter c for the two-point policy family
// Cc (C(1)=1, C(2)=c), with k=2 players and sites f=(1, F2).
type Panel struct {
	// F2 is the second site's value (0.3 for the left panel, 0.5 right).
	F2 float64
	// C is the competition-parameter grid (the x-axis, [-0.5, 0.5]).
	C []float64
	// ESS is Cover(IFD(Cc)) per grid point — the red series.
	ESS []float64
	// Optimum is the best symmetric coverage (constant; green).
	Optimum []float64
	// Welfare is the coverage of the welfare-maximizing symmetric strategy
	// per grid point — the blue series.
	Welfare []float64
}

// Figure1Panel computes one panel of Figure 1 on a grid of points values of
// c spanning [-0.5, 0.5].
func Figure1Panel(f2 float64, points int) (Panel, error) {
	return Figure1PanelContext(context.Background(), f2, points)
}

// Figure1PanelContext computes the panel with its grid points fanned out
// across the sweep worker pool; a cancelled ctx aborts the remaining points
// and returns ctx.Err(). Results are independent of the worker count: each
// grid point owns a deterministic seed.
func Figure1PanelContext(ctx context.Context, f2 float64, points int) (Panel, error) {
	if points < 2 {
		points = Figure1Points
	}
	const k = 2
	f := site.TwoSite(f2)
	p := Panel{
		F2:      f2,
		C:       numeric.Linspace(-0.5, 0.5, points),
		ESS:     make([]float64, points),
		Optimum: make([]float64, points),
		Welfare: make([]float64, points),
	}
	opt, _, err := optimize.MaxCoverage(f, k)
	if err != nil {
		return Panel{}, err
	}
	optCover := coverage.Cover(f, opt, k)
	type point struct{ ess, welfare float64 }
	pts, err := sweep.Map(ctx, p.C, 0, func(ctx context.Context, i int, c float64) (point, error) {
		pol := policy.TwoPoint{C2: c}
		eq, _, err := ifd.Solve(f, k, pol)
		if err != nil {
			return point{}, fmt.Errorf("c=%v: %w", c, err)
		}
		w, _, err := optimize.MaxWelfareContext(ctx, f, k, pol, 6, 1805+uint64(i))
		if err != nil {
			return point{}, fmt.Errorf("c=%v welfare: %w", c, err)
		}
		return point{ess: coverage.Cover(f, eq, k), welfare: coverage.Cover(f, w, k)}, nil
	})
	if err != nil {
		return Panel{}, err
	}
	for i, pt := range pts {
		p.ESS[i] = pt.ess
		p.Optimum[i] = optCover
		p.Welfare[i] = pt.welfare
	}
	return p, nil
}

// Chart converts the panel into a renderable chart with the paper's
// series names and colors (red ESS, green optimum, blue welfare optimum).
func (p Panel) Chart() *plot.Chart {
	return &plot.Chart{
		Title:  fmt.Sprintf("Figure 1: coverage vs competition (f(x1)=1, f(x2)=%g, k=2)", p.F2),
		XLabel: "c",
		YLabel: "Coverage",
		Series: []plot.Series{
			{Name: "ESS", X: p.C, Y: p.ESS},
			{Name: "Optimum Coverage", X: p.C, Y: p.Optimum},
			{Name: "Welfare Optimum", X: p.C, Y: p.Welfare},
		},
	}
}

// verify checks the qualitative structure the paper's Figure 1 exhibits:
//
//  1. the ESS coverage is maximal at c = 0 (the exclusive policy) and
//     touches the optimum there (Theorems 4 + 6);
//  2. the ESS coverage is strictly below the optimum away from c = 0;
//  3. all series lie within [f(1), f(1)+f(2)];
//  4. at c = 0.5 (the sharing policy at k = 2) the welfare optimum
//     coincides with the coverage optimum (the k=2 sharing marginal
//     condition f(x)(1-p(x)) matches the coverage KKT condition).
func (p Panel) verify() (bool, []string) {
	var notes []string
	ok := true

	zeroIdx := -1
	for i, c := range p.C {
		if math.Abs(c) < 1e-12 {
			zeroIdx = i
			break
		}
	}
	if zeroIdx < 0 {
		return false, []string{"grid does not contain c=0"}
	}
	if !numeric.AlmostEqual(p.ESS[zeroIdx], p.Optimum[zeroIdx], 1e-6) {
		ok = false
		notes = append(notes, fmt.Sprintf("ESS at c=0 (%.6f) != optimum (%.6f)", p.ESS[zeroIdx], p.Optimum[zeroIdx]))
	} else {
		notes = append(notes, fmt.Sprintf("ESS touches the optimum at c=0: coverage %.6f", p.ESS[zeroIdx]))
	}
	for i, c := range p.C {
		if p.ESS[i] > p.Optimum[i]+1e-7 {
			ok = false
			notes = append(notes, fmt.Sprintf("ESS exceeds optimum at c=%v", c))
			break
		}
	}
	// Strictly below optimum at the extremes.
	if !(p.ESS[0] < p.Optimum[0]-1e-6 && p.ESS[len(p.C)-1] < p.Optimum[len(p.C)-1]-1e-6) {
		ok = false
		notes = append(notes, "ESS is not strictly suboptimal at c=-0.5 / c=0.5")
	}
	last := len(p.C) - 1
	if numeric.AlmostEqual(p.Welfare[last], p.Optimum[last], 1e-5) {
		notes = append(notes, "welfare optimum meets the coverage optimum at c=0.5 (sharing), as in the paper's figure")
	} else {
		ok = false
		notes = append(notes, fmt.Sprintf("welfare optimum at c=0.5 (%.6f) does not meet the optimum (%.6f)", p.Welfare[last], p.Optimum[last]))
	}
	return ok, notes
}

// report builds the experiment report for one panel.
func figure1Report(ctx context.Context, id string, f2 float64) (Report, error) {
	panel, err := Figure1PanelContext(ctx, f2, Figure1Points)
	if err != nil {
		return Report{ID: id}, err
	}
	ok, notes := panel.verify()
	tb := table.New("c", "ESS coverage", "Optimum coverage", "Welfare-opt coverage")
	for i, c := range panel.C {
		// Table rows at the paper-legible resolution (every 0.1).
		if math.Mod(math.Abs(c)+1e-9, 0.1) > 2e-9 {
			continue
		}
		tb.AddRowf(fmt.Sprintf("%+.1f", c), panel.ESS[i], panel.Optimum[i], panel.Welfare[i])
	}
	return Report{
		ID:    id,
		Title: fmt.Sprintf("Figure 1 (f2=%g): coverage vs competition extent", f2),
		PaperClaim: "coverage of the ESS peaks exactly at the exclusive policy c=0, where it " +
			"equals the optimal symmetric coverage; it is strictly below optimal for every other c",
		Table:  tb,
		Charts: []*plot.Chart{panel.Chart()},
		Notes:  notes,
		Pass:   ok,
	}, nil
}

// E1Figure1Left reproduces the left panel of Figure 1 (f = (1, 0.3)).
func E1Figure1Left() (Report, error) { return figure1Report(context.Background(), "E1", 0.3) }

// E1Figure1LeftContext is E1Figure1Left under a context.
func E1Figure1LeftContext(ctx context.Context) (Report, error) { return figure1Report(ctx, "E1", 0.3) }

// E2Figure1Right reproduces the right panel of Figure 1 (f = (1, 0.5)).
func E2Figure1Right() (Report, error) { return figure1Report(context.Background(), "E2", 0.5) }

// E2Figure1RightContext is E2Figure1Right under a context.
func E2Figure1RightContext(ctx context.Context) (Report, error) { return figure1Report(ctx, "E2", 0.5) }
