package experiments

// E21 is a derived figure the paper does not include but that its Figure 1
// invites: Figure 1 plots coverage against the competition parameter c for
// k = 2 only. Here the same sweep runs at k in {2, 4, 8} on a richer
// landscape, confirming that the "peak at the exclusive policy" shape is
// not an artifact of the two-player, two-site setting.

import (
	"context"
	"fmt"
	"math"

	"dispersal/internal/coverage"
	"dispersal/internal/ifd"
	"dispersal/internal/numeric"
	"dispersal/internal/optimize"
	"dispersal/internal/plot"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/sweep"
	"dispersal/internal/table"
)

// SweepSeries holds normalized ESS coverage (ESS coverage divided by the
// optimal coverage) as a function of the two-point competition parameter c,
// for one player count.
type SweepSeries struct {
	K        int
	C        []float64
	Fraction []float64 // Cover(IFD(Cc)) / Cover(sigma*)
}

// CompetitionSweep computes normalized equilibrium coverage across the
// two-point family Cc for each requested player count on value function f.
func CompetitionSweep(f site.Values, ks []int, points int) ([]SweepSeries, error) {
	return CompetitionSweepContext(context.Background(), f, ks, points)
}

// CompetitionSweepContext fans the (k, c) grid out across the sweep worker
// pool; a cancelled ctx aborts the remaining grid points.
func CompetitionSweepContext(ctx context.Context, f site.Values, ks []int, points int) ([]SweepSeries, error) {
	if points < 3 {
		points = 41
	}
	grid := numeric.Linspace(-0.5, 0.5, points)
	return sweep.Map(ctx, ks, 0, func(ctx context.Context, _ int, k int) (SweepSeries, error) {
		opt, _, err := optimize.MaxCoverage(f, k)
		if err != nil {
			return SweepSeries{}, err
		}
		optCover := coverage.Cover(f, opt, k)
		fractions, err := sweep.Map(ctx, grid, 0, func(_ context.Context, _ int, c float64) (float64, error) {
			eq, _, err := ifd.Solve(f, k, policy.TwoPoint{C2: c})
			if err != nil {
				return 0, fmt.Errorf("k=%d c=%v: %w", k, c, err)
			}
			return coverage.Cover(f, eq, k) / optCover, nil
		})
		if err != nil {
			return SweepSeries{}, err
		}
		return SweepSeries{K: k, C: grid, Fraction: fractions}, nil
	})
}

// E21CompetitionSweepLargerGames generalizes Figure 1 beyond k = 2.
func E21CompetitionSweepLargerGames() (Report, error) {
	return E21CompetitionSweepLargerGamesContext(context.Background())
}

// E21CompetitionSweepLargerGamesContext is E21 under a context.
func E21CompetitionSweepLargerGamesContext(ctx context.Context) (Report, error) {
	f := site.Geometric(12, 1, 0.8)
	ks := []int{2, 4, 8}
	series, err := CompetitionSweepContext(ctx, f, ks, 41)
	if err != nil {
		return Report{ID: "E21"}, err
	}
	pass := true
	tb := table.New("k", "fraction at c=-0.5", "fraction at c=0 (exclusive)", "fraction at c=+0.5", "peak at c=0?")
	chart := &plot.Chart{
		Title:  "Normalized ESS coverage vs competition c (geometric 12-site landscape)",
		XLabel: "c",
		YLabel: "Cover(IFD)/Cover(sigma*)",
	}
	for _, s := range series {
		mid := len(s.C) / 2
		_, peak := numeric.MaxIndex(s.Fraction)
		peakAtZero := numeric.AlmostEqual(peak, s.Fraction[mid], 1e-9) &&
			numeric.AlmostEqual(s.Fraction[mid], 1, 1e-6)
		if !peakAtZero {
			pass = false
		}
		if !(s.Fraction[0] < 1-1e-6 && s.Fraction[len(s.C)-1] < 1-1e-6) {
			pass = false
		}
		tb.AddRowf(s.K, s.Fraction[0], s.Fraction[mid], s.Fraction[len(s.C)-1], peakAtZero)
		chart.Series = append(chart.Series, plot.Series{
			Name: fmt.Sprintf("k=%d", s.K), X: s.C, Y: s.Fraction,
		})
	}
	// The penalty for wrong policies grows with k on this landscape at the
	// sharing end (more players, more collisions to mis-handle).
	lastAtShare := math.Inf(1)
	for _, s := range series {
		frac := s.Fraction[len(s.C)-1]
		if frac > lastAtShare+1e-9 {
			pass = false
		}
		lastAtShare = frac
	}
	return Report{
		ID:    "E21",
		Title: "Figure 1 generalized: coverage peak at c=0 persists for k > 2",
		PaperClaim: "(extension of Figure 1) the ESS-coverage peak at the exclusive policy is " +
			"not special to k=2, M=2; the relative penalty at the sharing end grows with k",
		Table:  tb,
		Charts: []*plot.Chart{chart},
		Pass:   pass,
	}, nil
}
