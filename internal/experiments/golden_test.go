package experiments

// Golden tests pin the rendered report output of the deterministic
// experiments (closed-form solves on fixed grids, no randomness), so a
// refactor of the report/table/solver layers cannot silently change the
// published paper numbers. Regenerate the fixtures after an intentional
// change with
//
//	go test ./internal/experiments -run TestGoldenReports -update
//
// The fixtures assume IEEE-754 float64 evaluation without fused
// multiply-add reassociation; they are generated and verified on amd64.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden report fixtures")

// goldenCases lists the experiments whose output is pinned: every one is
// deterministic (fixed grids, closed-form or convex solves, no RNG).
func goldenCases() []struct {
	name string
	run  func() (Report, error)
} {
	return []struct {
		name string
		run  func() (Report, error)
	}{
		{"E3", E3Observation1},
		{"E5", E5Theorem4Optimality},
		{"E6", E6Corollary5},
		{"E7", E7Theorem6Criticality},
	}
}

// renderBoth renders the text and Markdown forms into one fixture, so both
// render paths are pinned.
func renderBoth(t *testing.T, rep Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	buf.WriteString("--- markdown ---\n")
	if err := rep.RenderMarkdown(&buf); err != nil {
		t.Fatalf("RenderMarkdown: %v", err)
	}
	return buf.Bytes()
}

func TestGoldenReports(t *testing.T) {
	for _, tc := range goldenCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rep, err := tc.run()
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if !rep.Pass {
				t.Fatalf("%s does not reproduce the paper's claim", tc.name)
			}
			got := renderBoth(t, rep)
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture %s (run with -update to create it): %v", path, err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: rendered report drifted from %s;\nif the change is intentional, regenerate with -update.\n--- got ---\n%s\n--- want ---\n%s",
					tc.name, path, got, want)
			}
		})
	}
}

// TestGoldenStability re-runs one golden experiment and demands identical
// bytes, guarding the determinism assumption the fixtures rest on.
func TestGoldenStability(t *testing.T) {
	rep1, err := E6Corollary5()
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := E6Corollary5()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(renderBoth(t, rep1), renderBoth(t, rep2)) {
		t.Error("E6 renders differently across two runs; golden fixtures would flake")
	}
}
