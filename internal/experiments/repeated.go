package experiments

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"dispersal/internal/coverage"
	"dispersal/internal/ifd"
	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/repeated"
	"dispersal/internal/site"
	"dispersal/internal/strategy"
	"dispersal/internal/table"
)

// E19RepeatedDepletion studies the repeated game with depletion and
// regrowth (Section 5.1's "other forms of repetition"): the exclusive
// policy's per-bout coverage advantage compounds into the highest
// sustainable harvest at every regrowth rate.
func E19RepeatedDepletion() (Report, error) {
	f := site.Geometric(8, 1, 0.8)
	k := 4
	tb := table.New("regrowth r", "exclusive", "sharing", "constant", "exclusive advantage over sharing")
	pass := true
	for _, r := range []float64{0.05, 0.2, 0.5, 0.9, 1.0} {
		row := map[string]float64{}
		for _, c := range []policy.Congestion{policy.Exclusive{}, policy.Sharing{}, policy.Constant{}} {
			res, err := repeated.MeanField(repeated.Config{
				F: f, K: k, C: c, Regrowth: r, Bouts: 800, Adaptive: true,
			})
			if err != nil {
				return Report{ID: "E19"}, err
			}
			row[c.Name()] = res.Harvest.Mean
		}
		adv := row["exclusive"] / row["sharing"]
		tb.AddRowf(r, row["exclusive"], row["sharing"], row["constant"], adv)
		if row["exclusive"] < row["sharing"]-1e-9 || row["exclusive"] < row["constant"]-1e-9 {
			pass = false
		}
	}
	// At r = 1 the repeated game degenerates to i.i.d. one-shot games; the
	// exclusive harvest must equal Cover(sigma*).
	eq, _, err := ifd.Exclusive(f, k)
	if err != nil {
		return Report{ID: "E19"}, err
	}
	oneShot := coverage.Cover(f, eq, k)
	res, err := repeated.MeanField(repeated.Config{
		F: f, K: k, C: policy.Exclusive{}, Regrowth: 1, Bouts: 50, Adaptive: true,
	})
	if err != nil {
		return Report{ID: "E19"}, err
	}
	if !numeric.AlmostEqual(res.Harvest.Mean, oneShot, 1e-9) {
		pass = false
	}
	return Report{
		ID:    "E19",
		Title: "Extension (Sec 5.1): repeated foraging with depletion and regrowth",
		PaperClaim: "(open problem in the paper) the exclusive policy's one-shot coverage " +
			"optimality compounds: it sustains the highest long-run harvest at every regrowth rate",
		Table: tb,
		Notes: []string{fmt.Sprintf("r=1 sanity: repeated harvest %.9f == one-shot coverage %.9f", res.Harvest.Mean, oneShot)},
		Pass:  pass,
	}, nil
}

// E20NoisyValues measures the robustness of sigma* to misestimated site
// values: players compute sigma* on a multiplicatively perturbed
// value vector and are scored on the true one. Coverage degrades gracefully
// (secondorder near zero noise) because sigma* sits at a smooth optimum.
func E20NoisyValues() (Report, error) {
	f := site.Geometric(12, 1, 0.75)
	k := 4
	rng := rand.New(rand.NewPCG(20, 20))
	opt := coverage.Cover(f, mustSigma(f, k), k)

	tb := table.New("noise level delta", "mean coverage fraction", "min coverage fraction")
	pass := true
	prevMean := 1.0
	const trials = 200
	for _, delta := range []float64{0, 0.05, 0.1, 0.25, 0.5, 1.0} {
		var mean numeric.Accumulator
		min := 1.0
		for trial := 0; trial < trials; trial++ {
			perturbed := perturbedSigma(rng, f, k, delta)
			frac := coverage.Cover(f, perturbed, k) / opt
			mean.Add(frac)
			if frac < min {
				min = frac
			}
			if frac > 1+1e-9 {
				pass = false // nothing beats the optimum on the true values
			}
		}
		m := mean.Sum() / trials
		tb.AddRowf(delta, m, min)
		if m > prevMean+1e-6 {
			pass = false // degradation should be monotone in noise
		}
		prevMean = m
		switch delta {
		case 0.0:
			if !numeric.AlmostEqual(m, 1, 1e-9) {
				pass = false
			}
		case 0.1:
			if m < 0.99 { // graceful: 10% value noise costs under 1% coverage
				pass = false
			}
		}
	}
	return Report{
		ID:    "E20",
		Title: "Robustness: sigma* under misestimated site values",
		PaperClaim: "(implicit in the model) players know f exactly; this ablation shows the " +
			"coverage optimum is flat enough that moderate estimation noise costs little coverage",
		Table: tb,
		Pass:  pass,
	}, nil
}

func mustSigma(f site.Values, k int) strategy.Strategy {
	p, _, err := ifd.Exclusive(f, k)
	if err != nil {
		panic(err)
	}
	return p
}

// perturbedSigma computes sigma* on f(x) * (1 + delta*U[-1,1]) — re-sorted,
// as the solver requires — and maps the strategy back to the true site
// indices.
func perturbedSigma(rng *rand.Rand, f site.Values, k int, delta float64) strategy.Strategy {
	m := len(f)
	type pair struct {
		idx int
		v   float64
	}
	noisy := make([]pair, m)
	for x, v := range f {
		noisy[x] = pair{x, v * (1 + delta*(2*rng.Float64()-1))}
		if noisy[x].v <= 0 {
			noisy[x].v = 1e-9
		}
	}
	sort.Slice(noisy, func(a, b int) bool { return noisy[a].v > noisy[b].v })
	fv := make(site.Values, m)
	for i, p := range noisy {
		fv[i] = p.v
	}
	sigma := mustSigma(fv, k)
	out := make(strategy.Strategy, m)
	for i, p := range noisy {
		out[p.idx] = sigma[i]
	}
	return out
}
