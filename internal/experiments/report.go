// Package experiments implements the paper-reproduction harness: one entry
// point per experiment in the docs/ARCHITECTURE.md index (E1-E23, plus the E24
// drifting-landscape extension), each returning a structured Report with a
// rendered table, optional charts, and a Pass flag recording whether the
// paper's qualitative claim held on this run.
//
// cmd/paperbench renders all reports (and regenerates EXPERIMENTS.md);
// bench_test.go at the module root wraps each entry point in a testing.B
// benchmark.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync/atomic"

	"dispersal/internal/plot"
	"dispersal/internal/sweep"
	"dispersal/internal/table"
)

// Report is the outcome of one experiment.
type Report struct {
	// ID is the experiment identifier from the docs/ARCHITECTURE.md index (e.g. "E1").
	ID string
	// Title is a one-line description.
	Title string
	// PaperClaim states what the paper asserts.
	PaperClaim string
	// Table holds the measured rows.
	Table *table.Table
	// Charts holds optional figures (E1/E2).
	Charts []*plot.Chart
	// Notes carries free-form observations.
	Notes []string
	// Pass records whether the claim held numerically.
	Pass bool
}

// Render writes a human-readable report section.
func (r *Report) Render(w io.Writer) error {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	if _, err := fmt.Fprintf(w, "== %s: %s [%s]\n", r.ID, r.Title, status); err != nil {
		return err
	}
	if r.PaperClaim != "" {
		if _, err := fmt.Fprintf(w, "   paper: %s\n", r.PaperClaim); err != nil {
			return err
		}
	}
	if r.Table != nil {
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
		if err := r.Table.Render(w); err != nil {
			return err
		}
	}
	for _, c := range r.Charts {
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
		if err := c.RenderASCII(w, 64, 16); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "   note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// RenderMarkdown writes the report as a Markdown section (used to build
// EXPERIMENTS.md).
func (r *Report) RenderMarkdown(w io.Writer) error {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	if _, err := fmt.Fprintf(w, "## %s — %s\n\n**Status: %s.** %s\n\n", r.ID, r.Title, status, r.PaperClaim); err != nil {
		return err
	}
	if r.Table != nil {
		if err := r.Table.RenderMarkdown(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "- %s\n", n); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Runner is one experiment entry point under a context.
type Runner func(ctx context.Context) (Report, error)

// noCtx adapts a context-free experiment to the Runner shape.
func noCtx(run func() (Report, error)) Runner {
	return func(context.Context) (Report, error) { return run() }
}

// entry names one experiment of the suite, so that cancelled runs can still
// report which experiments never finished.
type entry struct {
	id  string
	run Runner
}

// suite lists every experiment in docs/ARCHITECTURE.md index order.
func suite() []entry {
	return []entry{
		{"E1", E1Figure1LeftContext},
		{"E2", E2Figure1RightContext},
		{"E3", noCtx(E3Observation1)},
		{"E4", noCtx(E4Theorem3ESS)},
		{"E5", noCtx(E5Theorem4Optimality)},
		{"E6", noCtx(E6Corollary5)},
		{"E7", noCtx(E7Theorem6Criticality)},
		{"E8", noCtx(E8SharingSPoABound)},
		{"E9", noCtx(E9ConstantPolicyAnarchy)},
		{"E10", noCtx(E10MonteCarloValidation)},
		{"E11", noCtx(E11ReplicatorConvergence)},
		{"E12", noCtx(E12BayesianSearch)},
		{"E13", noCtx(E13GrantMechanism)},
		{"E14", E14TravelCostsContext},
		{"E15", E15CapacityConstraintContext},
		{"E16", E16SpeciesCompetitionContext},
		{"E17", E17PureEquilibriaContext},
		{"E18", E18AsymptoticsContext},
		{"E19", noCtx(E19RepeatedDepletion)},
		{"E20", noCtx(E20NoisyValues)},
		{"E21", E21CompetitionSweepLargerGamesContext},
		{"E22", noCtx(E22MechanismDiscovery)},
		{"E23", noCtx(E23InverseIFD)},
		{"E24", E24DriftingLandscapeContext},
	}
}

// All runs every experiment in order. Experiments are independent; an error
// in one is recorded in its report (Pass=false) rather than aborting the
// suite.
func All() []Report {
	reports, _ := AllContext(context.Background(), 1)
	return reports
}

// AllContext runs the suite across a bounded worker pool (workers <= 0
// selects GOMAXPROCS; 1 reproduces the sequential behaviour). Reports come
// back in index order regardless of completion order. A cancelled ctx stops
// launching new experiments; experiments that never ran (or were aborted)
// report Pass=false with the context error noted, and the abort error is
// returned. A suite whose every experiment completed returns a nil error
// even if the context expired just after the last one finished.
func AllContext(ctx context.Context, workers int) ([]Report, error) {
	entries := suite()
	var cut atomic.Bool // an in-flight experiment was cancelled mid-run
	reports, err := sweep.Map(ctx, entries, workers, func(ctx context.Context, _ int, e entry) (Report, error) {
		rep, err := e.run(ctx)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				cut.Store(true)
			}
			rep.Pass = false
			rep.Notes = append(rep.Notes, fmt.Sprintf("experiment error: %v", err))
		}
		if rep.ID == "" {
			rep.ID = e.id
		}
		return rep, nil // item errors are folded into the report
	})
	if err != nil {
		// Cancelled: fill in the experiments that never started. If every
		// report landed intact before the cancellation, the suite is whole
		// and the late cancellation is not an abort.
		aborted := cut.Load()
		for i := range reports {
			if reports[i].ID == "" {
				aborted = true
				reports[i] = Report{
					ID:    entries[i].id,
					Title: "(not run)",
					Notes: []string{fmt.Sprintf("suite aborted: %v", err)},
				}
			}
		}
		if !aborted {
			err = nil
		}
	}
	return reports, err
}

// Summary renders a one-line-per-experiment pass/fail overview.
func Summary(reports []Report) string {
	var b strings.Builder
	passed := 0
	for _, r := range reports {
		status := "PASS"
		if r.Pass {
			passed++
		} else {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "%-4s %-52s %s\n", r.ID, r.Title, status)
	}
	fmt.Fprintf(&b, "%d/%d experiments reproduce the paper's claims\n", passed, len(reports))
	return b.String()
}
