// Package experiments implements the paper-reproduction harness: one entry
// point per experiment in DESIGN.md's index (E1-E23), each returning a
// structured Report with a rendered table, optional charts, and a Pass flag
// recording whether the paper's qualitative claim held on this run.
//
// cmd/paperbench renders all reports (and regenerates EXPERIMENTS.md);
// bench_test.go at the module root wraps each entry point in a testing.B
// benchmark.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"dispersal/internal/plot"
	"dispersal/internal/table"
)

// Report is the outcome of one experiment.
type Report struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "E1").
	ID string
	// Title is a one-line description.
	Title string
	// PaperClaim states what the paper asserts.
	PaperClaim string
	// Table holds the measured rows.
	Table *table.Table
	// Charts holds optional figures (E1/E2).
	Charts []*plot.Chart
	// Notes carries free-form observations.
	Notes []string
	// Pass records whether the claim held numerically.
	Pass bool
}

// Render writes a human-readable report section.
func (r *Report) Render(w io.Writer) error {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	if _, err := fmt.Fprintf(w, "== %s: %s [%s]\n", r.ID, r.Title, status); err != nil {
		return err
	}
	if r.PaperClaim != "" {
		if _, err := fmt.Fprintf(w, "   paper: %s\n", r.PaperClaim); err != nil {
			return err
		}
	}
	if r.Table != nil {
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
		if err := r.Table.Render(w); err != nil {
			return err
		}
	}
	for _, c := range r.Charts {
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
		if err := c.RenderASCII(w, 64, 16); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "   note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// RenderMarkdown writes the report as a Markdown section (used to build
// EXPERIMENTS.md).
func (r *Report) RenderMarkdown(w io.Writer) error {
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	if _, err := fmt.Fprintf(w, "## %s — %s\n\n**Status: %s.** %s\n\n", r.ID, r.Title, status, r.PaperClaim); err != nil {
		return err
	}
	if r.Table != nil {
		if err := r.Table.RenderMarkdown(w); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "- %s\n", n); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// All runs every experiment in order. Experiments are independent; an error
// in one is recorded in its report (Pass=false) rather than aborting the
// suite.
func All() []Report {
	runners := []func() (Report, error){
		E1Figure1Left,
		E2Figure1Right,
		E3Observation1,
		E4Theorem3ESS,
		E5Theorem4Optimality,
		E6Corollary5,
		E7Theorem6Criticality,
		E8SharingSPoABound,
		E9ConstantPolicyAnarchy,
		E10MonteCarloValidation,
		E11ReplicatorConvergence,
		E12BayesianSearch,
		E13GrantMechanism,
		E14TravelCosts,
		E15CapacityConstraint,
		E16SpeciesCompetition,
		E17PureEquilibria,
		E18Asymptotics,
		E19RepeatedDepletion,
		E20NoisyValues,
		E21CompetitionSweepLargerGames,
		E22MechanismDiscovery,
		E23InverseIFD,
	}
	out := make([]Report, 0, len(runners))
	for _, run := range runners {
		rep, err := run()
		if err != nil {
			rep.Pass = false
			rep.Notes = append(rep.Notes, fmt.Sprintf("experiment error: %v", err))
		}
		out = append(out, rep)
	}
	return out
}

// Summary renders a one-line-per-experiment pass/fail overview.
func Summary(reports []Report) string {
	var b strings.Builder
	passed := 0
	for _, r := range reports {
		status := "PASS"
		if r.Pass {
			passed++
		} else {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "%-4s %-52s %s\n", r.ID, r.Title, status)
	}
	fmt.Fprintf(&b, "%d/%d experiments reproduce the paper's claims\n", passed, len(reports))
	return b.String()
}
