// Package game is the Monte-Carlo engine for the one-shot dispersal game:
// k players sample sites from their strategies, collide, and collect rewards
// under a congestion policy. It validates the analytic quantities of
// internal/coverage empirically and powers the stochastic experiments.
//
// Rounds are sharded across a worker pool; each worker owns a deterministic
// PCG stream derived from the configured seed, so results are reproducible
// for a fixed (seed, workers) pair and statistically equivalent across
// worker counts. Per-worker statistics merge via Welford combination, so the
// engine is lock-free on the hot path.
package game

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"

	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/stats"
	"dispersal/internal/strategy"
)

// Errors returned by the simulator.
var (
	ErrRounds  = errors.New("game: rounds must be >= 1")
	ErrPlayers = errors.New("game: player count k must be >= 1")
	ErrProfile = errors.New("game: profile must supply one strategy per player")
)

// Config describes a simulation.
type Config struct {
	// F is the site-value function.
	F site.Values
	// K is the number of players.
	K int
	// C is the congestion policy.
	C policy.Congestion
	// Rounds is the number of independent one-shot games to play.
	Rounds int
	// Workers is the worker-pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// Seed makes the run reproducible.
	Seed uint64
}

func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers > cfg.Rounds {
		cfg.Workers = cfg.Rounds
	}
	return cfg
}

func (cfg Config) validate() error {
	if err := cfg.F.Validate(); err != nil {
		return err
	}
	if cfg.K < 1 {
		return fmt.Errorf("%w: k=%d", ErrPlayers, cfg.K)
	}
	if cfg.Rounds < 1 {
		return fmt.Errorf("%w: rounds=%d", ErrRounds, cfg.Rounds)
	}
	return policy.Validate(cfg.C, cfg.K)
}

// Result aggregates per-round statistics of a simulation.
type Result struct {
	// Coverage summarizes the realized weighted coverage per round.
	Coverage stats.Summary
	// Payoff summarizes per-player realized payoffs.
	Payoff stats.Summary
	// CollisionFrac summarizes the per-round fraction of players that
	// shared their site with at least one other player.
	CollisionFrac stats.Summary
	// DistinctSites summarizes the per-round count of distinct visited
	// sites.
	DistinctSites stats.Summary
	// Occupancy[x] is the empirical probability that a given player chose
	// site x (averaged over players and rounds).
	Occupancy []float64
	// Rounds echoes the number of rounds simulated.
	Rounds int
}

// Simulate plays cfg.Rounds one-shot games in which every player draws its
// site independently from p.
func Simulate(cfg Config, p strategy.Strategy) (Result, error) {
	return SimulateContext(context.Background(), cfg, p)
}

// SimulateContext is Simulate under a context: a cancelled or expired ctx
// stops the worker pool promptly and returns ctx.Err().
func SimulateContext(ctx context.Context, cfg Config, p strategy.Strategy) (Result, error) {
	if len(p) != len(cfg.F) {
		return Result{}, fmt.Errorf("%w: %d sites, strategy over %d", ErrProfile, len(cfg.F), len(p))
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	smp, err := strategy.NewSampler(p)
	if err != nil {
		return Result{}, err
	}
	samplers := make([]*strategy.Sampler, cfg.K)
	for i := range samplers {
		samplers[i] = smp
	}
	return run(ctx, cfg.withDefaults(), samplers)
}

// SimulateProfile plays an asymmetric profile: player i draws from
// profile[i]. len(profile) must equal cfg.K.
func SimulateProfile(cfg Config, profile []strategy.Strategy) (Result, error) {
	return SimulateProfileContext(context.Background(), cfg, profile)
}

// SimulateProfileContext is SimulateProfile under a context.
func SimulateProfileContext(ctx context.Context, cfg Config, profile []strategy.Strategy) (Result, error) {
	if len(profile) != cfg.K {
		return Result{}, fmt.Errorf("%w: k=%d, got %d strategies", ErrProfile, cfg.K, len(profile))
	}
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	samplers := make([]*strategy.Sampler, cfg.K)
	for i, p := range profile {
		if len(p) != len(cfg.F) {
			return Result{}, fmt.Errorf("%w: player %d strategy has %d sites, want %d",
				ErrProfile, i+1, len(p), len(cfg.F))
		}
		s, err := strategy.NewSampler(p)
		if err != nil {
			return Result{}, fmt.Errorf("player %d: %w", i+1, err)
		}
		samplers[i] = s
	}
	return run(ctx, cfg.withDefaults(), samplers)
}

// workerState carries one worker's private accumulators.
type workerState struct {
	coverage  stats.Welford
	payoff    stats.Welford
	collision stats.Welford
	distinct  stats.Welford
	occupancy []int64
}

// cancelCheckStride is how many rounds a worker plays between context
// checks: frequent enough that a deadline stops multi-second runs within
// microseconds of work, rare enough to keep the hot path free of channel
// operations.
const cancelCheckStride = 256

func run(ctx context.Context, cfg Config, samplers []*strategy.Sampler) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	m := len(cfg.F)
	workers := cfg.Workers
	states := make([]workerState, workers)
	done := ctx.Done()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Split rounds as evenly as possible.
		lo := cfg.Rounds * w / workers
		hi := cfg.Rounds * (w + 1) / workers
		if hi == lo {
			continue
		}
		wg.Add(1)
		go func(w, rounds int) {
			defer wg.Done()
			st := &states[w]
			st.occupancy = make([]int64, m)
			rng := rand.New(rand.NewPCG(cfg.Seed, uint64(w)+0x5bf0_3635))
			choices := make([]int, cfg.K)
			counts := make([]int, m)
			touched := make([]int, 0, cfg.K)
			for r := 0; r < rounds; r++ {
				if r%cancelCheckStride == 0 {
					select {
					case <-done:
						return
					default:
					}
				}
				playRound(cfg, samplers, rng, choices, counts, &touched, st)
			}
		}(w, hi-lo)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	var res Result
	var cov, pay, col, dis stats.Welford
	occ := make([]int64, m)
	for i := range states {
		cov.Merge(states[i].coverage)
		pay.Merge(states[i].payoff)
		col.Merge(states[i].collision)
		dis.Merge(states[i].distinct)
		for x, c := range states[i].occupancy {
			occ[x] += c
		}
	}
	res.Coverage = cov.Summarize()
	res.Payoff = pay.Summarize()
	res.CollisionFrac = col.Summarize()
	res.DistinctSites = dis.Summarize()
	res.Occupancy = make([]float64, m)
	totalChoices := float64(cfg.Rounds) * float64(cfg.K)
	for x, c := range occ {
		res.Occupancy[x] = float64(c) / totalChoices
	}
	res.Rounds = cfg.Rounds
	return res, nil
}

// playRound executes one one-shot game, updating the worker state in place.
// counts must be all-zero on entry and is restored to all-zero on exit via
// the touched list, keeping the per-round cost O(k) independent of M.
func playRound(cfg Config, samplers []*strategy.Sampler, rng *rand.Rand,
	choices, counts []int, touched *[]int, st *workerState) {

	*touched = (*touched)[:0]
	for i := range choices {
		x := samplers[i].Sample(rng)
		choices[i] = x
		if counts[x] == 0 {
			*touched = append(*touched, x)
		}
		counts[x]++
		st.occupancy[x]++
	}

	var roundCoverage float64
	colliding := 0
	for _, x := range *touched {
		roundCoverage += cfg.F[x]
		if counts[x] > 1 {
			colliding += counts[x]
		}
	}
	for i := range choices {
		x := choices[i]
		st.payoff.Add(policy.Reward(cfg.C, cfg.F[x], counts[x]))
	}
	st.coverage.Add(roundCoverage)
	st.collision.Add(float64(colliding) / float64(cfg.K))
	st.distinct.Add(float64(len(*touched)))

	for _, x := range *touched {
		counts[x] = 0
	}
}
