package game

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"dispersal/internal/coverage"
	"dispersal/internal/ifd"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/strategy"
)

func baseConfig() Config {
	return Config{
		F:      site.TwoSite(0.3),
		K:      2,
		C:      policy.Exclusive{},
		Rounds: 50_000,
		Seed:   1,
	}
}

func TestSimulateMatchesAnalyticCoverage(t *testing.T) {
	games := []struct {
		f site.Values
		k int
		c policy.Congestion
		p strategy.Strategy
	}{
		{site.TwoSite(0.3), 2, policy.Exclusive{}, strategy.Uniform(2)},
		{site.TwoSite(0.5), 2, policy.Sharing{}, strategy.Strategy{0.7, 0.3}},
		{site.Geometric(6, 1, 0.6), 4, policy.TwoPoint{C2: -0.25}, strategy.Uniform(6)},
		{site.Zipf(10, 1, 1), 5, policy.Sharing{}, strategy.UniformFirst(10, 5)},
	}
	for _, g := range games {
		cfg := Config{F: g.f, K: g.k, C: g.c, Rounds: 200_000, Seed: 42}
		res, err := Simulate(cfg, g.p)
		if err != nil {
			t.Fatal(err)
		}
		want := coverage.Cover(g.f, g.p, g.k)
		if d := math.Abs(res.Coverage.Mean - want); d > 4*res.Coverage.CI95+1e-9 {
			t.Errorf("M=%d k=%d %s: empirical coverage %v vs analytic %v (CI %v)",
				len(g.f), g.k, g.c.Name(), res.Coverage.Mean, want, res.Coverage.CI95)
		}
		wantPay := coverage.ExpectedPayoff(g.f, g.p, g.p, g.k, g.c)
		if d := math.Abs(res.Payoff.Mean - wantPay); d > 4*res.Payoff.CI95+1e-9 {
			t.Errorf("payoff: empirical %v vs analytic %v", res.Payoff.Mean, wantPay)
		}
	}
}

func TestSimulateOccupancyMatchesStrategy(t *testing.T) {
	p := strategy.Strategy{0.6, 0.3, 0.1}
	cfg := Config{F: site.Values{1, 0.5, 0.2}, K: 3, C: policy.Sharing{}, Rounds: 100_000, Seed: 7}
	res, err := Simulate(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	for x := range p {
		if d := math.Abs(res.Occupancy[x] - p[x]); d > 0.01 {
			t.Errorf("site %d occupancy %v, want %v", x, res.Occupancy[x], p[x])
		}
	}
}

func TestSimulateAtEquilibriumPayoffMatchesNu(t *testing.T) {
	// At the IFD, the mean payoff must match the equilibrium value nu.
	f := site.Geometric(5, 1, 0.7)
	k := 3
	sigma, res0, err := ifd.Exclusive(f, k)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{F: f, K: k, C: policy.Exclusive{}, Rounds: 300_000, Seed: 11}
	res, err := Simulate(cfg, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(res.Payoff.Mean - res0.Nu); d > 4*res.Payoff.CI95+1e-9 {
		t.Errorf("payoff %v vs nu %v", res.Payoff.Mean, res0.Nu)
	}
}

func TestSimulateDeterministicForSeedAndWorkers(t *testing.T) {
	cfg := baseConfig()
	cfg.Workers = 4
	a, err := Simulate(cfg, strategy.Uniform(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg, strategy.Uniform(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Coverage.Mean != b.Coverage.Mean || a.Payoff.Mean != b.Payoff.Mean {
		t.Error("same seed+workers produced different results")
	}
}

func TestSimulateWorkerCountInvariantInDistribution(t *testing.T) {
	// Different worker counts give statistically equivalent results.
	cfg := baseConfig()
	cfg.Rounds = 200_000
	p := strategy.Uniform(2)
	cfg.Workers = 1
	a, err := Simulate(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	b, err := Simulate(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(a.Coverage.Mean - b.Coverage.Mean); d > 4*(a.Coverage.CI95+b.Coverage.CI95) {
		t.Errorf("worker counts disagree: %v vs %v", a.Coverage.Mean, b.Coverage.Mean)
	}
}

func TestSimulateProfileAsymmetric(t *testing.T) {
	// Two players on disjoint sites never collide: coverage is exactly
	// f(1)+f(2) every round, payoffs are full values.
	f := site.TwoSite(0.3)
	cfg := Config{F: f, K: 2, C: policy.Exclusive{}, Rounds: 10_000, Seed: 3}
	res, err := SimulateProfile(cfg, []strategy.Strategy{
		strategy.Delta(2, 0),
		strategy.Delta(2, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage.Mean != 1.3 || res.Coverage.StdDev != 0 {
		t.Errorf("coverage %v +- %v, want exactly 1.3", res.Coverage.Mean, res.Coverage.StdDev)
	}
	if res.CollisionFrac.Mean != 0 {
		t.Errorf("collisions %v, want 0", res.CollisionFrac.Mean)
	}
	if res.DistinctSites.Mean != 2 {
		t.Errorf("distinct sites %v, want 2", res.DistinctSites.Mean)
	}
}

func TestSimulateFullCollision(t *testing.T) {
	// Everyone forced to site 1 under exclusive: zero payoff, full
	// collision, coverage = f(1).
	f := site.TwoSite(0.5)
	cfg := Config{F: f, K: 4, C: policy.Exclusive{}, Rounds: 5_000, Seed: 9}
	res, err := Simulate(cfg, strategy.Delta(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Payoff.Mean != 0 {
		t.Errorf("payoff %v, want 0", res.Payoff.Mean)
	}
	if res.CollisionFrac.Mean != 1 {
		t.Errorf("collision frac %v, want 1", res.CollisionFrac.Mean)
	}
	if res.Coverage.Mean != 1 {
		t.Errorf("coverage %v, want 1", res.Coverage.Mean)
	}
}

func TestSimulateSingleWorkerSmallRounds(t *testing.T) {
	cfg := baseConfig()
	cfg.Rounds = 3
	cfg.Workers = 16 // more workers than rounds: must clamp, not hang
	res, err := Simulate(cfg, strategy.Uniform(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 3 || res.Coverage.N != 3 {
		t.Errorf("rounds: %+v", res)
	}
}

func TestSimulateErrors(t *testing.T) {
	cfg := baseConfig()
	if _, err := Simulate(cfg, strategy.Uniform(3)); !errors.Is(err, ErrProfile) {
		t.Errorf("dim mismatch: %v", err)
	}
	if _, err := Simulate(cfg, strategy.Strategy{0.5, 0.6}); err == nil {
		t.Error("invalid strategy accepted")
	}
	cfg.Rounds = 0
	if _, err := Simulate(cfg, strategy.Uniform(2)); !errors.Is(err, ErrRounds) {
		t.Errorf("rounds=0: %v", err)
	}
	cfg = baseConfig()
	cfg.K = 0
	if _, err := Simulate(cfg, strategy.Uniform(2)); !errors.Is(err, ErrPlayers) {
		t.Errorf("k=0: %v", err)
	}
	cfg = baseConfig()
	cfg.F = site.Values{0.3, 1}
	if _, err := Simulate(cfg, strategy.Uniform(2)); err == nil {
		t.Error("unsorted values accepted")
	}
}

func TestSimulateProfileErrors(t *testing.T) {
	cfg := baseConfig()
	if _, err := SimulateProfile(cfg, []strategy.Strategy{strategy.Uniform(2)}); !errors.Is(err, ErrProfile) {
		t.Errorf("wrong profile size: %v", err)
	}
	if _, err := SimulateProfile(cfg, []strategy.Strategy{
		strategy.Uniform(2), strategy.Uniform(5),
	}); !errors.Is(err, ErrProfile) {
		t.Errorf("mismatched player strategy: %v", err)
	}
}

func TestCollisionFracMatchesAnalytic(t *testing.T) {
	// For k=2 uniform over 2 sites, both collide with probability 1/2, so
	// expected colliding fraction is 1/2.
	cfg := baseConfig()
	cfg.Rounds = 200_000
	res, err := Simulate(cfg, strategy.Uniform(2))
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(res.CollisionFrac.Mean - 0.5); d > 0.01 {
		t.Errorf("collision frac %v, want 0.5", res.CollisionFrac.Mean)
	}
}

func BenchmarkSimulate(b *testing.B) {
	f := site.Zipf(100, 1, 1)
	p, _, err := ifd.Exclusive(f, 10)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{F: f, K: 10, C: policy.Exclusive{}, Rounds: 10_000, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(cfg, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateSerialVsParallel(b *testing.B) {
	f := site.Zipf(50, 1, 1)
	p := strategy.Uniform(50)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := Config{F: f, K: 8, C: policy.Sharing{}, Rounds: 50_000, Seed: 1, Workers: workers}
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(cfg, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
