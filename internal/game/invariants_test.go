package game

// Invariant tests: structural properties that must hold for every
// simulation regardless of game parameters.

import (
	"math"
	"math/rand/v2"
	"testing"

	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/strategy"
)

func TestSimulationInvariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(55, 66))
	for trial := 0; trial < 15; trial++ {
		m := 1 + rng.IntN(12)
		k := 1 + rng.IntN(9)
		f := site.Random(rng, m, 0.1, 3)
		p := randomStrategy(rng, m)
		cfg := Config{F: f, K: k, C: policy.Sharing{}, Rounds: 5000, Seed: uint64(trial)}
		res, err := Simulate(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		// Occupancy is a probability vector.
		var occ float64
		for _, q := range res.Occupancy {
			if q < 0 {
				t.Fatalf("negative occupancy %v", q)
			}
			occ += q
		}
		if !numeric.AlmostEqual(occ, 1, 1e-9) {
			t.Fatalf("occupancy sums to %v", occ)
		}
		// Distinct sites within [1, min(k, M)].
		maxDistinct := float64(minInt(k, m))
		if res.DistinctSites.Mean < 1-1e-12 || res.DistinctSites.Mean > maxDistinct+1e-12 {
			t.Fatalf("distinct sites mean %v out of [1, %v]", res.DistinctSites.Mean, maxDistinct)
		}
		// Coverage within (0, sum f].
		if res.Coverage.Mean <= 0 || res.Coverage.Mean > f.Sum()+1e-9 {
			t.Fatalf("coverage mean %v out of range", res.Coverage.Mean)
		}
		// Collision fraction within [0, 1].
		if res.CollisionFrac.Mean < 0 || res.CollisionFrac.Mean > 1 {
			t.Fatalf("collision fraction %v", res.CollisionFrac.Mean)
		}
		// Under sharing, total payoff k*E[payoff] == E[coverage]: shared
		// rewards sum to the value of visited sites.
		if d := math.Abs(float64(k)*res.Payoff.Mean - res.Coverage.Mean); d > 1e-9 {
			t.Fatalf("sharing conservation: k*payoff %v != coverage %v",
				float64(k)*res.Payoff.Mean, res.Coverage.Mean)
		}
	}
}

func TestSharingConservationIsExactPerRound(t *testing.T) {
	// The invariant above holds per realized round, not just on average;
	// with one worker and tiny rounds it is machine-exact already tested
	// via means; here we confirm with k=1 where payoff == coverage.
	f := site.TwoSite(0.4)
	cfg := Config{F: f, K: 1, C: policy.Sharing{}, Rounds: 2000, Seed: 8}
	res, err := Simulate(cfg, strategy.Uniform(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Payoff.Mean != res.Coverage.Mean {
		t.Errorf("k=1: payoff %v != coverage %v", res.Payoff.Mean, res.Coverage.Mean)
	}
	if res.CollisionFrac.Mean != 0 {
		t.Errorf("k=1 collisions: %v", res.CollisionFrac.Mean)
	}
}

func TestExclusivePayoffNeverExceedsCoverage(t *testing.T) {
	// Under the exclusive policy, total realized payoff (k * mean) is at
	// most the realized coverage: collided sites contribute coverage but
	// no payoff.
	rng := rand.New(rand.NewPCG(77, 88))
	for trial := 0; trial < 10; trial++ {
		m := 2 + rng.IntN(6)
		k := 2 + rng.IntN(5)
		f := site.Random(rng, m, 0.2, 2)
		p := randomStrategy(rng, m)
		cfg := Config{F: f, K: k, C: policy.Exclusive{}, Rounds: 3000, Seed: uint64(trial)}
		res, err := Simulate(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if float64(k)*res.Payoff.Mean > res.Coverage.Mean+1e-9 {
			t.Fatalf("payoffs exceed coverage: %v > %v",
				float64(k)*res.Payoff.Mean, res.Coverage.Mean)
		}
	}
}

func randomStrategy(rng *rand.Rand, m int) strategy.Strategy {
	w := make([]float64, m)
	for i := range w {
		w[i] = rng.ExpFloat64() + 1e-9
	}
	p, err := strategy.FromWeights(w)
	if err != nil {
		panic(err)
	}
	return p
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
