// Package grants reconstructs the Kleinberg-Oren [23] style mechanism the
// paper contrasts with congestion-policy design (Section 1.6): a central
// entity (a research foundation) keeps the sharing policy fixed but re-picks
// the rewards r(x) attached to sites (grant sizes attached to topics) so
// that the sharing-policy equilibrium lands on the coverage-optimal
// distribution sigma* of the true value function f.
//
// Two properties matter for the comparison with the exclusive policy:
//
//  1. The reward redesign requires knowing the number of players k — the
//     exclusive congestion policy does not (Section 1.1). MisestimatedK
//     quantifies the coverage lost when the design-time k is wrong.
//  2. The mechanism divorces rewards from values: r(x) != f(x), which is
//     infeasible in ecological settings where f(x) is the amount of food.
package grants

import (
	"errors"
	"fmt"

	"dispersal/internal/coverage"
	"dispersal/internal/ifd"
	"dispersal/internal/optimize"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/strategy"
)

// ErrPlayers is returned for invalid player counts.
var ErrPlayers = errors.New("grants: player count k must be >= 2")

// Design is a reward redesign for the sharing policy.
type Design struct {
	// Rewards is the redesigned reward vector r (a valid site.Values).
	Rewards site.Values
	// Target is the coverage-optimal strategy sigma* of the true values
	// that the design implements as the sharing equilibrium.
	Target strategy.Strategy
	// Nu is the common equilibrium payoff under the design.
	Nu float64
}

// shareGee is g(q) = E[1/(1 + Binomial(k-1, q))] = (1 - (1-q)^k) / (k q),
// the sharing-policy congestion discount (g(0) = 1).
func shareGee(k int, q float64) float64 {
	return ifd.Gee(policy.Sharing{}, k, q)
}

// Rewards computes the reward redesign for the game (f, k): the returned
// Design.Rewards, played under the sharing policy by k players, has its
// unique IFD at sigma*(f, k), so the equilibrium coverage (measured with the
// TRUE values f) is optimal.
//
// Construction: on the support of sigma*, set r(x) = nu / g(sigma*(x)) with
// g the sharing discount and nu := 1 (rewards are scale-free); off support,
// set r(x) = 0.9 * nu * f(x)/f(W+1) <= 0.9 * nu so unexplored sites stay
// strictly unattractive. The vector is then rescaled to preserve the total
// budget sum r = sum f.
func Rewards(f site.Values, k int) (Design, error) {
	if err := f.Validate(); err != nil {
		return Design{}, err
	}
	if k < 2 {
		return Design{}, fmt.Errorf("%w: k=%d", ErrPlayers, k)
	}
	target, _, err := optimize.MaxCoverage(f, k)
	if err != nil {
		return Design{}, err
	}
	m := len(f)
	w, ok := target.IsPrefixSupport(1e-12)
	if !ok {
		return Design{}, fmt.Errorf("grants: optimal strategy support is not a prefix (got %v)", target)
	}
	const nu = 1.0
	r := make(site.Values, m)
	for x := 0; x < w; x++ {
		r[x] = nu / shareGee(k, target[x])
	}
	for x := w; x < m; x++ {
		// Strictly below nu, decreasing with the true value ordering.
		r[x] = 0.9 * nu * f[x] / f[w-1]
		if r[x] >= r[w-1] {
			r[x] = 0.9 * r[w-1]
		}
	}
	// Budget-preserving rescale (equilibria are invariant to scaling).
	scale := f.Sum() / r.Sum()
	for x := range r {
		r[x] *= scale
	}
	if err := r.Validate(); err != nil {
		return Design{}, fmt.Errorf("grants: designed rewards invalid: %w", err)
	}
	return Design{Rewards: r, Target: target, Nu: nu * scale}, nil
}

// EquilibriumCoverage returns the coverage — measured with the true values
// f — of the sharing-policy equilibrium induced by the reward vector r when
// k players actually show up.
func EquilibriumCoverage(f, r site.Values, k int) (float64, strategy.Strategy, error) {
	if len(f) != len(r) {
		return 0, nil, errors.New("grants: reward and value dimensions differ")
	}
	eq, _, err := ifd.Solve(r, k, policy.Sharing{})
	if err != nil {
		return 0, nil, err
	}
	return coverage.Cover(f, eq, k), eq, nil
}

// Outcome compares mechanisms on one game.
type Outcome struct {
	// OptCoverage is Cover(sigma*), the ceiling.
	OptCoverage float64
	// GrantCoverage is the coverage achieved by the reward redesign.
	GrantCoverage float64
	// ExclusiveCoverage is the coverage achieved by switching the
	// congestion policy to exclusive and leaving rewards = values.
	ExclusiveCoverage float64
	// SharingCoverage is the do-nothing baseline: sharing policy with
	// rewards = values.
	SharingCoverage float64
}

// Compare evaluates the grant mechanism, the exclusive congestion policy,
// and the untouched sharing baseline on the same game.
func Compare(f site.Values, k int) (Outcome, error) {
	opt, _, err := optimize.MaxCoverage(f, k)
	if err != nil {
		return Outcome{}, err
	}
	out := Outcome{OptCoverage: coverage.Cover(f, opt, k)}

	design, err := Rewards(f, k)
	if err != nil {
		return Outcome{}, err
	}
	out.GrantCoverage, _, err = EquilibriumCoverage(f, design.Rewards, k)
	if err != nil {
		return Outcome{}, err
	}

	excl, _, err := ifd.Exclusive(f, k)
	if err != nil {
		return Outcome{}, err
	}
	out.ExclusiveCoverage = coverage.Cover(f, excl, k)

	shareEq, _, err := ifd.Solve(f, k, policy.Sharing{})
	if err != nil {
		return Outcome{}, err
	}
	out.SharingCoverage = coverage.Cover(f, shareEq, k)
	return out, nil
}

// MisestimatedK designs rewards for designK players but lets trueK players
// play, returning the achieved coverage fraction (achieved / optimal at
// trueK). The exclusive policy's specification does not depend on k, so its
// fraction is 1 by Theorem 4 regardless of the misestimate; the gap between
// the two is experiment E13.
func MisestimatedK(f site.Values, designK, trueK int) (grantFrac, exclusiveFrac float64, err error) {
	design, err := Rewards(f, designK)
	if err != nil {
		return 0, 0, err
	}
	opt, _, err := optimize.MaxCoverage(f, trueK)
	if err != nil {
		return 0, 0, err
	}
	optCover := coverage.Cover(f, opt, trueK)

	grantCover, _, err := EquilibriumCoverage(f, design.Rewards, trueK)
	if err != nil {
		return 0, 0, err
	}
	excl, _, err := ifd.Exclusive(f, trueK)
	if err != nil {
		return 0, 0, err
	}
	exclCover := coverage.Cover(f, excl, trueK)
	return grantCover / optCover, exclCover / optCover, nil
}
