package grants

import (
	"errors"
	"math/rand/v2"
	"testing"

	"dispersal/internal/ifd"
	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/site"
)

func TestRewardsImplementSigmaStarUnderSharing(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 11))
	for trial := 0; trial < 25; trial++ {
		m := 2 + rng.IntN(12)
		k := 2 + rng.IntN(8)
		f := site.Random(rng, m, 0.1, 4)
		design, err := Rewards(f, k)
		if err != nil {
			t.Fatal(err)
		}
		eq, _, err := ifd.Solve(design.Rewards, k, policy.Sharing{})
		if err != nil {
			t.Fatal(err)
		}
		if d := eq.LInf(design.Target); d > 1e-6 {
			t.Fatalf("M=%d k=%d: sharing equilibrium misses sigma* by %v", m, k, d)
		}
	}
}

func TestRewardsAreValidAndBudgetPreserving(t *testing.T) {
	f := site.Geometric(10, 1, 0.8)
	design, err := Rewards(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := design.Rewards.Validate(); err != nil {
		t.Errorf("rewards invalid: %v", err)
	}
	if !numeric.AlmostEqual(design.Rewards.Sum(), f.Sum(), 1e-9) {
		t.Errorf("budget changed: %v vs %v", design.Rewards.Sum(), f.Sum())
	}
}

func TestRewardsErrors(t *testing.T) {
	if _, err := Rewards(site.Values{1, 0.5}, 1); !errors.Is(err, ErrPlayers) {
		t.Error("k=1 accepted")
	}
	if _, err := Rewards(site.Values{0.5, 1}, 3); err == nil {
		t.Error("unsorted f accepted")
	}
}

func TestCompareGrantAndExclusiveBothOptimal(t *testing.T) {
	// With k known exactly, both mechanisms reach the optimum; plain
	// sharing does not (on a slow-decay instance with a real gap).
	k := 4
	f := site.SlowDecay(16, k)
	out, err := Compare(f, k)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(out.GrantCoverage, out.OptCoverage, 1e-4) {
		t.Errorf("grant mechanism suboptimal: %v vs %v", out.GrantCoverage, out.OptCoverage)
	}
	if !numeric.AlmostEqual(out.ExclusiveCoverage, out.OptCoverage, 1e-6) {
		t.Errorf("exclusive policy suboptimal: %v vs %v", out.ExclusiveCoverage, out.OptCoverage)
	}
	if out.SharingCoverage >= out.OptCoverage-1e-9 {
		t.Errorf("sharing baseline unexpectedly optimal: %v vs %v", out.SharingCoverage, out.OptCoverage)
	}
}

func TestMisestimatedKDegradesGrantsNotExclusive(t *testing.T) {
	k := 6
	f := site.SlowDecay(24, k)
	grantFrac, exclFrac, err := MisestimatedK(f, 2, k) // designed for 2, played by 6
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(exclFrac, 1, 1e-6) {
		t.Errorf("exclusive fraction = %v, want 1 (k-free mechanism)", exclFrac)
	}
	if grantFrac >= exclFrac-1e-6 {
		t.Errorf("misdesigned grants (%v) should fall below exclusive (%v)", grantFrac, exclFrac)
	}
	if grantFrac <= 0 || grantFrac > 1+1e-9 {
		t.Errorf("grant fraction out of range: %v", grantFrac)
	}
}

func TestMisestimatedKExactEstimateIsOptimal(t *testing.T) {
	f := site.Geometric(8, 1, 0.7)
	grantFrac, exclFrac, err := MisestimatedK(f, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(grantFrac, 1, 1e-4) {
		t.Errorf("exact-k grant fraction = %v, want 1", grantFrac)
	}
	if !numeric.AlmostEqual(exclFrac, 1, 1e-6) {
		t.Errorf("exclusive fraction = %v, want 1", exclFrac)
	}
}

func TestEquilibriumCoverageDimCheck(t *testing.T) {
	if _, _, err := EquilibriumCoverage(site.Values{1, 0.5}, site.Values{1}, 2); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestShareGeeClosedForm(t *testing.T) {
	// g(q) = (1-(1-q)^k)/(kq) for q > 0.
	for _, k := range []int{2, 3, 8} {
		for _, q := range []float64{0.1, 0.5, 0.9, 1} {
			want := (1 - numeric.PowOneMinus(q, k)) / (float64(k) * q)
			if got := shareGee(k, q); !numeric.AlmostEqual(got, want, 1e-10) {
				t.Errorf("k=%d q=%v: %v != %v", k, q, got, want)
			}
		}
		if got := shareGee(k, 0); !numeric.AlmostEqual(got, 1, 1e-12) {
			t.Errorf("g(0) = %v", got)
		}
	}
}
