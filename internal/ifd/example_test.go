package ifd_test

import (
	"fmt"

	"dispersal/internal/ifd"
	"dispersal/internal/policy"
	"dispersal/internal/site"
)

// The paper's running two-site instance: sigma* in closed form.
func ExampleExclusive() {
	f := site.TwoSite(0.3) // f = (1, 0.3)
	sigma, res, err := ifd.Exclusive(f, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("W = %d, alpha = %.4f\n", res.W, res.Alpha)
	fmt.Printf("sigma* = [%.4f %.4f]\n", sigma[0], sigma[1])
	// Output:
	// W = 2, alpha = 0.2308
	// sigma* = [0.7692 0.2308]
}

// The general solver handles any congestion policy; here the sharing
// policy pushes all equilibrium mass onto the top site.
func ExampleSolve() {
	f := site.TwoSite(0.5)
	eq, nu, err := ifd.Solve(f, 2, policy.Sharing{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("equilibrium = [%.3f %.3f], nu = %.3f\n", eq[0], eq[1], nu)
	// Output:
	// equilibrium = [1.000 0.000], nu = 0.500
}

// Check validates the IFD conditions of a candidate strategy.
func ExampleCheck() {
	f := site.TwoSite(0.3)
	sigma, _, err := ifd.Exclusive(f, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(ifd.Check(f, sigma, 2, policy.Exclusive{}, 1e-9) == nil)
	// Output:
	// true
}
