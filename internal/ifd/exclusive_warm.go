package ifd

// Incremental sigma* for time-varying landscapes.
//
// The exclusive policy's closed form re-derives the support boundary
//
//	W = argmax { y : S(y) <= 1 },  S(y) = sum_{x<=y} (1 - (f(y)/f(x))^(1/(k-1))),
//
// with a fresh inner sum per candidate y — O(W^2) power evaluations per
// solve. On a drifting landscape W moves by O(drift) per frame, so
// ExclusiveWarm instead starts the boundary search at the previous frame's
// W and walks it up or down (S is non-decreasing in y, so the walk is
// exact), evaluating S(y) in O(1) from a lazily extended prefix sum of
// f(x)^(-1/(k-1)). The whole solve costs O(W + |W - W_prev|) power
// evaluations instead of O(W^2).

import (
	"fmt"
	"math"

	"dispersal/internal/numeric"
	"dispersal/internal/site"
	"dispersal/internal/solve"
	"dispersal/internal/strategy"
)

// ExclusiveWarm returns the IFD under the exclusive reward policy like
// Exclusive, seeding the support-boundary search from prev — the state of a
// previous solve of a nearby landscape — when prev carries a compatible
// sigma* part (same site count and player count; the closed form is
// policy-free, so any producer qualifies). The third result reports whether
// the incremental path ran; a nil or incompatible prev, or k = 1, falls
// back to the cold closed form.
//
// The incremental path evaluates the same closed form as Exclusive through
// algebraically identical (prefix-sum factored) expressions, so results
// match the cold solver to floating-point tolerance on every input; the
// boundary walk itself is exact by the monotonicity of the partial sums.
func ExclusiveWarm(prev *solve.State, f site.Values, k int) (strategy.Strategy, Result, bool, error) {
	if k < 2 || !prev.CompatibleSigma(f, k) {
		p, res, err := Exclusive(f, k)
		return p, res, false, err
	}
	if err := f.Validate(); err != nil {
		return nil, Result{}, false, err
	}
	m := len(f)
	inv := 1 / float64(k-1)

	// terms[x] = f(x)^(-1/(k-1)); prefix[n] = sum_{x<n} terms[x], Kahan
	// compensated. Both extend lazily to the highest boundary candidate the
	// walk probes, so a stable W costs O(W) power evaluations and a moving
	// one O(W + drift).
	terms := make([]float64, 0, m)
	prefix := make([]float64, 1, m+1) // prefix[0] = 0
	var acc numeric.Accumulator
	extend := func(n int) {
		for len(terms) < n {
			t := math.Pow(f[len(terms)], -inv)
			terms = append(terms, t)
			acc.Add(t)
			prefix = append(prefix, acc.Sum())
		}
	}
	// S(y) = sum_{x<=y} (1 - (f(y)/f(x))^(1/(k-1))) = y - f(y)^(1/(k-1)) *
	// prefix[y]: the cold scan's partial sum in prefix-factored form.
	s := func(y int) float64 {
		extend(y)
		return float64(y) - math.Pow(f[y-1], inv)*prefix[y]
	}

	// Walk the boundary from the previous frame's W. S is non-decreasing in
	// y and W is the largest y with S(y) <= 1, so each step is exact.
	w, _, _ := prev.Sigma()
	if w < 1 {
		w = 1
	}
	if w > m {
		w = m
	}
	// The monotone step lives in the loop post-clause: each iteration moves
	// w one site toward its bound, so the walk is a counter bounded by m
	// (which the ctxloop gate can see structurally).
	if s(w) <= 1 {
		for ; w+1 <= m && s(w+1) <= 1; w++ {
		}
	} else {
		for ; w > 1 && s(w) > 1; w-- {
		}
	}
	extend(w)

	// alpha = (W-1) / sum_{x<=W} f(x)^(-1/(k-1)), then the Pareto form.
	alpha := float64(w-1) / prefix[w]
	p := make(strategy.Strategy, m)
	for x := 0; x < w; x++ {
		p[x] = 1 - alpha*terms[x]
	}
	// Same boundary guard as the cold solver: rounding can push masses at a
	// tied support edge slightly negative.
	for x := range p {
		if p[x] < 0 {
			p[x] = 0
		}
	}
	if _, err := p.Normalize(); err != nil {
		return nil, Result{}, false, fmt.Errorf("%w: %v", ErrSolveFailed, err)
	}
	nu := math.Pow(alpha, float64(k-1))
	if w == 1 {
		nu = 0 // single-site support with k >= 2: collisions are certain
	}
	return p, Result{W: w, Alpha: alpha, Nu: nu}, true, nil
}
