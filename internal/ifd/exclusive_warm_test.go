package ifd

import (
	"math"
	"math/rand/v2"
	"testing"

	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/solve"
)

// stateOf packages a cold Exclusive result as a solver-core state, the way
// the root Game records it.
func stateOf(f site.Values, k int, res Result) *solve.State {
	return solve.New(f, k, policy.Exclusive{}).WithSigma(res.W, res.Alpha, res.Nu)
}

// TestExclusiveWarmMatchesColdOnDrift chains the incremental tracker along
// drifting landscapes and checks every frame against the cold closed form.
func TestExclusiveWarmMatchesColdOnDrift(t *testing.T) {
	for _, k := range []int{2, 3, 8, 33} {
		base := site.Geometric(24, 1, 0.85)
		var prev *solve.State
		for frame := 0; frame < 40; frame++ {
			f := site.Values(site.Drifted(base, frame, 0.04))
			coldP, coldRes, err := Exclusive(f, k)
			if err != nil {
				t.Fatalf("k=%d frame %d cold: %v", k, frame, err)
			}
			warmP, warmRes, warmed, err := ExclusiveWarm(prev, f, k)
			if err != nil {
				t.Fatalf("k=%d frame %d warm: %v", k, frame, err)
			}
			if frame > 0 && !warmed {
				t.Fatalf("k=%d frame %d: incremental path did not engage", k, frame)
			}
			if warmRes.W != coldRes.W {
				t.Fatalf("k=%d frame %d: W = %d warm vs %d cold", k, frame, warmRes.W, coldRes.W)
			}
			if d := math.Abs(warmRes.Alpha - coldRes.Alpha); d > 1e-10*(1+math.Abs(coldRes.Alpha)) {
				t.Fatalf("k=%d frame %d: alpha diverged by %g", k, frame, d)
			}
			if d := math.Abs(warmRes.Nu - coldRes.Nu); d > 1e-9*(1+math.Abs(coldRes.Nu)) {
				t.Fatalf("k=%d frame %d: nu diverged by %g", k, frame, d)
			}
			if d := warmP.LInf(coldP); d > 1e-9 {
				t.Fatalf("k=%d frame %d: strategies diverged by %g", k, frame, d)
			}
			prev = stateOf(f, k, warmRes)
		}
	}
}

// TestExclusiveWarmTracksMovingBoundary drives the support boundary W
// through large moves (shrinking and growing tails) and checks the walk
// lands exactly where the cold scan does.
func TestExclusiveWarmTracksMovingBoundary(t *testing.T) {
	k := 5
	rng := rand.New(rand.NewPCG(7, 11))
	m := 40
	f := site.Values(site.Geometric(m, 1, 0.95))
	prev := (*solve.State)(nil)
	lastW := 0
	sawMove := false
	for step := 0; step < 30; step++ {
		// Random multiplicative shocks re-sorted into a valid landscape:
		// big enough to move W by several sites between steps.
		g := f.Clone()
		for i := range g {
			g[i] *= math.Exp(0.5 * (rng.Float64() - 0.5))
		}
		f = site.Values(site.Sorted(g))
		coldP, coldRes, err := Exclusive(f, k)
		if err != nil {
			t.Fatalf("step %d cold: %v", step, err)
		}
		warmP, warmRes, _, err := ExclusiveWarm(prev, f, k)
		if err != nil {
			t.Fatalf("step %d warm: %v", step, err)
		}
		if warmRes.W != coldRes.W {
			t.Fatalf("step %d: W = %d warm vs %d cold", step, warmRes.W, coldRes.W)
		}
		if d := warmP.LInf(coldP); d > 1e-9 {
			t.Fatalf("step %d: strategies diverged by %g", step, d)
		}
		if step > 0 && warmRes.W != lastW {
			sawMove = true
		}
		lastW = warmRes.W
		prev = stateOf(f, k, warmRes)
	}
	if !sawMove {
		t.Fatal("boundary never moved; the test exercised nothing")
	}
}

// TestExclusiveWarmFallsBackCold verifies the compatibility gates: nil
// state, k = 1, and shape mismatches all answer through the cold form with
// warmed = false.
func TestExclusiveWarmFallsBackCold(t *testing.T) {
	f := site.Values{1, 0.6, 0.3}
	coldP, coldRes, err := Exclusive(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, prev *solve.State, k int) {
		t.Helper()
		p, res, warmed, err := ExclusiveWarm(prev, f, k)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if warmed {
			t.Fatalf("%s: incremental path engaged without a compatible seed", name)
		}
		if k == 3 && (res.W != coldRes.W || p.LInf(coldP) > 0) {
			t.Fatalf("%s: fallback diverged from cold", name)
		}
	}
	check("nil state", nil, 3)
	check("eq-only state", solve.New(f, 3, policy.Exclusive{}).WithEq(coldP, coldRes.Nu, false), 3)
	check("wrong k", stateOf(f, 4, coldRes), 3)
	check("wrong site count", stateOf(site.Values{1, 0.5}, 3, Result{W: 1}), 3)
	check("k=1", stateOf(f, 1, Result{W: 1}), 1)

	// A wildly stale W seed (clamped into range) still lands on the right
	// boundary — the walk is exact, not heuristic.
	p, res, warmed, err := ExclusiveWarm(stateOf(f, 3, Result{W: 9999}), f, 3)
	if err != nil || !warmed {
		t.Fatalf("stale seed: warmed=%v err=%v", warmed, err)
	}
	if res.W != coldRes.W || p.LInf(coldP) > 1e-12 {
		t.Fatalf("stale seed diverged: W=%d vs %d", res.W, coldRes.W)
	}
}
