// Package ifd computes Ideal Free Distributions — the unique symmetric Nash
// equilibria of the dispersal game (Observation 2 of the paper).
//
// Two solvers are provided. Exclusive implements the paper's closed-form
// pseudocode for sigma* under the exclusive policy Cexc (Section 2.1):
//
//	sigma*(x) = 1 - alpha / f(x)^(1/(k-1))   for x <= W, else 0,
//	W     = argmax { y : sum_{x<=y} (1 - (f(y)/f(x))^(1/(k-1))) <= 1 },
//	alpha = (W-1) / sum_{x<=W} f(x)^(-1/(k-1)).
//
// Solve handles any congestion policy by exploiting the factorization
// nu_p(x) = f(x) * g(p(x)) with g(q) = E[C(1 + Binomial(k-1, q))], which is
// strictly decreasing in q whenever C is not constant on {1..k}; it bisects
// on the common equilibrium value nu, inverting g per site with Brent's
// method.
package ifd

import (
	"context"
	"errors"
	"fmt"
	"math"

	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/solve"
	"dispersal/internal/strategy"
)

// Errors returned by the solvers and the checker.
var (
	ErrPlayers     = errors.New("ifd: player count k must be >= 1")
	ErrNotIFD      = errors.New("ifd: strategy violates the IFD conditions")
	ErrSolveFailed = errors.New("ifd: equilibrium search failed")
)

// Result carries the structural quantities of a closed-form sigma*.
type Result struct {
	// W is the support size: sigma*(x) > 0 exactly for x in [1, W].
	W int
	// Alpha is the normalization factor of the Pareto form.
	Alpha float64
	// Nu is the common equilibrium value nu_p(x) = alpha^(k-1) on the
	// support.
	Nu float64
}

// Exclusive returns the IFD sigma* under the exclusive reward policy,
// following the paper's pseudocode exactly. For k = 1 the game degenerates
// to a single searcher whose unique equilibrium (and optimum) is the point
// mass on the most valuable site.
func Exclusive(f site.Values, k int) (strategy.Strategy, Result, error) {
	if err := f.Validate(); err != nil {
		return nil, Result{}, err
	}
	if k < 1 {
		return nil, Result{}, fmt.Errorf("%w: k=%d", ErrPlayers, k)
	}
	m := len(f)
	if k == 1 {
		return strategy.Delta(m, 0), Result{W: 1, Alpha: 0, Nu: f[0]}, nil
	}
	inv := 1 / float64(k-1)

	// W = largest y such that sum_{x<=y} (1 - (f(y)/f(x))^(1/(k-1))) <= 1.
	// The partial sums are non-decreasing in y, so a linear scan with early
	// exit is exact.
	w := 1
	for y := 2; y <= m; y++ {
		var s numeric.Accumulator
		fy := f[y-1]
		for x := 0; x < y; x++ {
			s.Add(1 - math.Pow(fy/f[x], inv))
		}
		if s.Sum() <= 1 {
			w = y
		} else {
			break
		}
	}

	// alpha = (W-1) / sum_{x<=W} f(x)^(-1/(k-1)).
	var denom numeric.Accumulator
	for x := 0; x < w; x++ {
		denom.Add(math.Pow(f[x], -inv))
	}
	alpha := float64(w-1) / denom.Sum()

	p := make(strategy.Strategy, m)
	for x := 0; x < w; x++ {
		p[x] = 1 - alpha*math.Pow(f[x], -inv)
	}
	// Guard against rounding pushing masses slightly negative (tied values
	// at the support boundary) and renormalize the residue.
	for x := range p {
		if p[x] < 0 {
			p[x] = 0
		}
	}
	if _, err := p.Normalize(); err != nil {
		return nil, Result{}, fmt.Errorf("%w: %v", ErrSolveFailed, err)
	}
	nu := math.Pow(alpha, float64(k-1))
	if w == 1 {
		nu = 0 // single-site support with k >= 2: collisions are certain
	}
	return p, Result{W: w, Alpha: alpha, Nu: nu}, nil
}

// Gee returns g(q) = E[C(1 + Binomial(k-1, q))] = sum_{l=1..k} C(l) *
// P[Bin(k-1, q) = l-1], the congestion-discount factor at visit probability
// q. nu_p(x) = f(x) * Gee(c, k, p(x)) for congestion policies.
func Gee(c policy.Congestion, k int, q float64) float64 {
	var acc numeric.Accumulator
	for l := 1; l <= k; l++ {
		w := numeric.BinomialPMF(k-1, l-1, q)
		if w == 0 {
			continue
		}
		acc.Add(c.At(l) * w)
	}
	return acc.Sum()
}

// Solve returns the IFD of the game (f, k, C) and its equilibrium value nu.
// C must be a valid congestion policy (C(1) = 1, non-increasing up to k).
//
// For policies constant on {1..k} (e.g. policy.Constant), every distribution
// over the maximum-value sites is an equilibrium; Solve returns the uniform
// split over the tied argmax sites together with nu = f(1).
func Solve(f site.Values, k int, c policy.Congestion) (strategy.Strategy, float64, error) {
	return SolveContext(context.Background(), f, k, c)
}

// SolveContext is Solve under a context: cancellation is honored between
// per-site inversions and bisection iterations, so a caller's deadline
// actually stops the numeric work on large games.
func SolveContext(ctx context.Context, f site.Values, k int, c policy.Congestion) (strategy.Strategy, float64, error) {
	if err := f.Validate(); err != nil {
		return nil, 0, err
	}
	if k < 1 {
		return nil, 0, fmt.Errorf("%w: k=%d", ErrPlayers, k)
	}
	if err := policy.Validate(c, k); err != nil {
		return nil, 0, err
	}
	m := len(f)
	if k == 1 || m == 1 {
		p := strategy.Delta(m, 0)
		if m == 1 {
			return p, f[0] * Gee(c, k, 1), nil
		}
		return p, f[0], nil
	}
	if solve.ConstantOnRange(c, k) {
		// Degenerate: value of a site never depends on congestion. Spread
		// over the argmax ties for symmetry.
		top := f[0]
		n := 0
		for _, v := range f {
			// Exact on purpose: ties with the argmax mean literally equal
			// values, not values within tolerance.
			if numeric.EqualExact(v, top) {
				n++
			}
		}
		p := make(strategy.Strategy, m)
		for i := 0; i < n; i++ {
			p[i] = 1 / float64(n)
		}
		return p, top, nil
	}

	levels := solve.Levels(c, k)         // C(1..k), evaluated once for the solve
	gAtOne := solve.GeeLevels(levels, 1) // minimum of g
	// Mass placed on site x at candidate equilibrium value nu.
	massAt := func(nu float64) (strategy.Strategy, float64, error) {
		return siteMasses(ctx, f, levels, gAtOne, nu, nil)
	}

	// Bracket nu: at nu = f(1), no site takes mass (total 0 <= 1); at
	// nu = min_x f(x)*g(1) - margin, every site takes mass 1 (total m >= 1).
	hi := f[0]
	lo := f[m-1] * gAtOne
	if gAtOne < 0 {
		lo = f[0] * gAtOne
	}
	lo -= 1 + math.Abs(lo)*1e-3 // strict margin so all sites saturate
	// Bisection on total mass - 1 (monotone non-increasing in nu), via the
	// solver core's shared excess bisection (bit-identical to the loop this
	// solver used to carry inline).
	nu, err := solve.BisectExcess(func(cand float64) (float64, error) {
		_, tot, err := massAt(cand)
		return tot - 1, err
	}, lo, hi, 1e-14)
	if err != nil {
		return nil, 0, err
	}
	p, _, err := massAt(nu)
	if err != nil {
		return nil, 0, err
	}
	if _, err := p.Normalize(); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrSolveFailed, err)
	}
	return p, nu, nil
}

// Check verifies the IFD conditions for p under (f, k, C) within tol:
// all explored sites share a common value nu, and every unexplored site
// would yield at most nu (Section 1.3). It returns nil when the conditions
// hold.
func Check(f site.Values, p strategy.Strategy, k int, c policy.Congestion, tol float64) error {
	if len(f) != len(p) {
		return fmt.Errorf("%w: dimension mismatch", ErrNotIFD)
	}
	if err := p.Validate(); err != nil {
		return err
	}
	// Common equilibrium value over the support.
	nu := math.Inf(-1)
	first := true
	for x := range f {
		if p[x] <= tol {
			continue
		}
		v := f[x] * Gee(c, k, p[x])
		if first {
			nu, first = v, false
			continue
		}
		if !numeric.AlmostEqual(v, nu, tol) {
			return fmt.Errorf("%w: explored sites have unequal values (%v vs %v at site %d)",
				ErrNotIFD, nu, v, x+1)
		}
	}
	if first {
		return fmt.Errorf("%w: empty support", ErrNotIFD)
	}
	// Unexplored sites must not be strictly better.
	for x := range f {
		if p[x] > tol {
			continue
		}
		if v := f[x] * Gee(c, k, 0); v > nu+tol*(1+math.Abs(nu)) {
			return fmt.Errorf("%w: unexplored site %d yields %v > equilibrium value %v",
				ErrNotIFD, x+1, v, nu)
		}
	}
	return nil
}
