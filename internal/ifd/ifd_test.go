package ifd

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"dispersal/internal/coverage"
	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/strategy"
)

func TestExclusiveTwoSiteHandComputed(t *testing.T) {
	// k=2, f=(1, 0.3): alpha = 1/(1 + 1/0.3) = 0.3/1.3.
	f := site.TwoSite(0.3)
	p, res, err := Exclusive(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	alpha := 0.3 / 1.3
	if !numeric.AlmostEqual(res.Alpha, alpha, 1e-12) {
		t.Errorf("alpha = %v, want %v", res.Alpha, alpha)
	}
	if res.W != 2 {
		t.Errorf("W = %d, want 2", res.W)
	}
	if !numeric.AlmostEqual(p[0], 1-alpha, 1e-12) {
		t.Errorf("p(1) = %v, want %v", p[0], 1-alpha)
	}
	if !numeric.AlmostEqual(p[1], 1-alpha/0.3, 1e-12) {
		t.Errorf("p(2) = %v, want %v", p[1], 1-alpha/0.3)
	}
	// Equilibrium value nu = alpha^(k-1) = alpha.
	if !numeric.AlmostEqual(res.Nu, alpha, 1e-12) {
		t.Errorf("nu = %v, want %v", res.Nu, alpha)
	}
}

func TestExclusiveUniformValuesGivesUniformStrategy(t *testing.T) {
	f := site.Uniform(6, 2)
	p, res, err := Exclusive(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.W != 6 {
		t.Errorf("W = %d, want 6", res.W)
	}
	for _, v := range p {
		if !numeric.AlmostEqual(v, 1.0/6, 1e-12) {
			t.Fatalf("p = %v, want uniform", p)
		}
	}
}

func TestExclusiveSatisfiesIFDConditions(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.IntN(30)
		k := 2 + rng.IntN(12)
		f := site.Random(rng, m, 0.05, 5)
		p, res, err := Exclusive(f, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("invalid sigma*: %v", err)
		}
		if err := Check(f, p, k, policy.Exclusive{}, 1e-8); err != nil {
			t.Fatalf("M=%d k=%d: %v", m, k, err)
		}
		// Support is a prefix of length W.
		w, ok := p.IsPrefixSupport(1e-12)
		if !ok || w != res.W {
			t.Fatalf("support: got (%d, %v), want prefix of %d", w, ok, res.W)
		}
	}
}

func TestExclusiveKOne(t *testing.T) {
	f := site.Values{3, 2, 1}
	p, res, err := Exclusive(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 1 || res.W != 1 || res.Nu != 3 {
		t.Errorf("k=1: p=%v res=%+v", p, res)
	}
}

func TestExclusiveSingleSite(t *testing.T) {
	f := site.Values{5}
	p, res, err := Exclusive(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 1 || res.W != 1 {
		t.Errorf("single site: p=%v res=%+v", p, res)
	}
	if res.Nu != 0 {
		t.Errorf("nu with certain collisions = %v, want 0", res.Nu)
	}
}

func TestExclusiveRejectsBadInput(t *testing.T) {
	if _, _, err := Exclusive(site.Values{1, 2}, 2); err == nil {
		t.Error("unsorted f accepted")
	}
	if _, _, err := Exclusive(site.Values{1}, 0); !errors.Is(err, ErrPlayers) {
		t.Error("k=0 accepted")
	}
	if _, _, err := Exclusive(nil, 2); err == nil {
		t.Error("nil f accepted")
	}
}

func TestExclusiveSupportShrinksWithSkew(t *testing.T) {
	// Steep value decay concentrates the IFD on fewer sites.
	k := 3
	flat := site.Geometric(20, 1, 0.99)
	steep := site.Geometric(20, 1, 0.2)
	_, rFlat, err := Exclusive(flat, k)
	if err != nil {
		t.Fatal(err)
	}
	_, rSteep, err := Exclusive(steep, k)
	if err != nil {
		t.Fatal(err)
	}
	if rSteep.W >= rFlat.W {
		t.Errorf("W(steep)=%d should be < W(flat)=%d", rSteep.W, rFlat.W)
	}
}

func TestGeeBoundaries(t *testing.T) {
	// g(0) = C(1) = 1; g(1) = C(k).
	for _, c := range policy.Standard() {
		for _, k := range []int{2, 5, 9} {
			if got := Gee(c, k, 0); !numeric.AlmostEqual(got, 1, 1e-12) {
				t.Errorf("%s k=%d: g(0) = %v", c.Name(), k, got)
			}
			if got, want := Gee(c, k, 1), c.At(k); !numeric.AlmostEqual(got, want, 1e-12) {
				t.Errorf("%s k=%d: g(1) = %v, want %v", c.Name(), k, got, want)
			}
		}
	}
}

func TestGeeMonotone(t *testing.T) {
	for _, c := range policy.Standard() {
		prev := math.Inf(1)
		for _, q := range numeric.Linspace(0, 1, 101) {
			g := Gee(c, 6, q)
			if g > prev+1e-12 {
				t.Fatalf("%s: g increased at q=%v", c.Name(), q)
			}
			prev = g
		}
	}
}

func TestGeeMatchesSiteValue(t *testing.T) {
	// f(x)*g(p(x)) must equal coverage.SiteValue.
	f := site.Values{1, 0.6, 0.2}
	p := strategy.Strategy{0.5, 0.3, 0.2}
	for _, c := range policy.Standard() {
		for x := range f {
			want := coverage.SiteValue(f, p, 5, c, x)
			got := f[x] * Gee(c, 5, p[x])
			if !numeric.AlmostEqual(got, want, 1e-10) {
				t.Errorf("%s x=%d: %v != %v", c.Name(), x, got, want)
			}
		}
	}
}

func TestSolveMatchesClosedFormOnExclusive(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.IntN(15)
		k := 2 + rng.IntN(8)
		f := site.Random(rng, m, 0.1, 3)
		want, res, err := Exclusive(f, k)
		if err != nil {
			t.Fatal(err)
		}
		got, nu, err := Solve(f, k, policy.Exclusive{})
		if err != nil {
			t.Fatal(err)
		}
		if d := want.LInf(got); d > 1e-7 {
			t.Fatalf("M=%d k=%d: solver deviates from closed form by %v\nwant %v\ngot  %v", m, k, d, want, got)
		}
		if !numeric.AlmostEqual(nu, res.Nu, 1e-6) {
			t.Fatalf("nu: %v vs %v", nu, res.Nu)
		}
	}
}

func TestSolveSharingSatisfiesIFD(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	policies := []policy.Congestion{
		policy.Sharing{},
		policy.TwoPoint{C2: 0.25},
		policy.TwoPoint{C2: -0.25},
		policy.PowerLaw{Beta: 2},
		policy.Cooperative{Gamma: 0.9},
		policy.Aggressive{Penalty: 0.5},
	}
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.IntN(10)
		k := 2 + rng.IntN(6)
		f := site.Random(rng, m, 0.2, 4)
		for _, c := range policies {
			p, _, err := Solve(f, k, c)
			if err != nil {
				t.Fatalf("%s: %v", c.Name(), err)
			}
			if err := Check(f, p, k, c, 1e-6); err != nil {
				t.Fatalf("%s M=%d k=%d: %v (p=%v)", c.Name(), m, k, err, p)
			}
		}
	}
}

func TestSolveConstantPolicyConcentratesOnArgmax(t *testing.T) {
	f := site.Values{2, 2, 1}
	p, nu, err := Solve(f, 5, policy.Constant{})
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(p[0], 0.5, 1e-12) || !numeric.AlmostEqual(p[1], 0.5, 1e-12) || p[2] != 0 {
		t.Errorf("constant policy IFD = %v, want mass on tied argmax", p)
	}
	if nu != 2 {
		t.Errorf("nu = %v, want 2", nu)
	}
}

func TestSolveSharingTwoSitesHandComputed(t *testing.T) {
	// k=2, sharing, f=(1, 0.5). g(q) = (1-q) + q/2 = 1 - q/2.
	// Interior equilibrium: 1*(1 - p1/2) = 0.5*(1 - p2/2), p1+p2 = 1.
	// => 1 - p1/2 = 0.5 - 0.25(1-p1) => 1 - p1/2 = 0.25 + 0.25 p1
	// => 0.75 = 0.75 p1 => p1 = 1. Boundary: all mass on site 1,
	// value site1 = 1*(1-1/2) = 0.5, site2 = 0.5 <= 0.5. Equilibrium.
	f := site.TwoSite(0.5)
	p, nu, err := Solve(f, 2, policy.Sharing{})
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(p[0], 1, 1e-6) {
		t.Errorf("p = %v, want all mass on site 1", p)
	}
	if !numeric.AlmostEqual(nu, 0.5, 1e-6) {
		t.Errorf("nu = %v, want 0.5", nu)
	}
}

func TestSolveSharingInteriorHandComputed(t *testing.T) {
	// k=2, sharing, f=(1, 0.8): interior since f2 > nu at boundary.
	// 1 - p/2 = 0.8*(1 - (1-p)/2) = 0.8*(0.5 + p/2) = 0.4 + 0.4p
	// => 0.6 = 0.9p => p = 2/3.
	f := site.TwoSite(0.8)
	p, _, err := Solve(f, 2, policy.Sharing{})
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(p[0], 2.0/3, 1e-6) {
		t.Errorf("p(1) = %v, want 2/3", p[0])
	}
}

func TestSolveKOne(t *testing.T) {
	f := site.Values{2, 1}
	p, nu, err := Solve(f, 1, policy.Sharing{})
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 1 || nu != 2 {
		t.Errorf("k=1: p=%v nu=%v", p, nu)
	}
}

func TestSolveSingleSite(t *testing.T) {
	f := site.Values{4}
	p, nu, err := Solve(f, 3, policy.Sharing{})
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 1 {
		t.Errorf("p = %v", p)
	}
	// nu = f * g(1) = 4 * C(3) = 4/3.
	if !numeric.AlmostEqual(nu, 4.0/3, 1e-9) {
		t.Errorf("nu = %v, want 4/3", nu)
	}
}

func TestSolveRejectsInvalidPolicy(t *testing.T) {
	bad := policy.Table{Head: []float64{1, 0.2, 0.9}, Tail: 0} // non-monotone
	if _, _, err := Solve(site.Values{1, 0.5}, 3, bad); err == nil {
		t.Error("non-monotone policy accepted")
	}
}

func TestSolveRejectsBadGame(t *testing.T) {
	if _, _, err := Solve(site.Values{1, 0.5}, 0, policy.Sharing{}); !errors.Is(err, ErrPlayers) {
		t.Error("k=0 accepted")
	}
	if _, _, err := Solve(site.Values{0.5, 1}, 2, policy.Sharing{}); err == nil {
		t.Error("unsorted f accepted")
	}
}

func TestCheckDetectsViolations(t *testing.T) {
	f := site.TwoSite(0.3)
	// Uniform is not the IFD here.
	if err := Check(f, strategy.Uniform(2), 2, policy.Exclusive{}, 1e-9); !errors.Is(err, ErrNotIFD) {
		t.Errorf("uniform accepted as IFD: %v", err)
	}
	// Point mass on site 2 leaves site 1 strictly better.
	if err := Check(f, strategy.Delta(2, 1), 2, policy.Exclusive{}, 1e-9); !errors.Is(err, ErrNotIFD) {
		t.Errorf("delta(2) accepted as IFD: %v", err)
	}
	// Dimension mismatch.
	if err := Check(f, strategy.Uniform(3), 2, policy.Exclusive{}, 1e-9); !errors.Is(err, ErrNotIFD) {
		t.Errorf("dim mismatch: %v", err)
	}
}

func TestCheckAcceptsKnownIFD(t *testing.T) {
	f := site.TwoSite(0.3)
	p, _, err := Exclusive(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(f, p, 2, policy.Exclusive{}, 1e-9); err != nil {
		t.Errorf("true IFD rejected: %v", err)
	}
}

func TestIFDUniquenessAcrossSolvers(t *testing.T) {
	// Observation 2: the symmetric NE is unique; both solvers and any
	// IFD-satisfying strategy must coincide.
	f := site.Geometric(8, 1, 0.75)
	k := 4
	a, _, err := Exclusive(f, k)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Solve(f, k, policy.Exclusive{})
	if err != nil {
		t.Fatal(err)
	}
	if d := a.LInf(b); d > 1e-7 {
		t.Errorf("solvers disagree by %v", d)
	}
}

func TestExclusiveAggressionRaisesNothing(t *testing.T) {
	// Sanity: IFDs under increasingly negative two-point policies spread
	// mass more evenly (higher entropy) than sharing.
	f := site.Geometric(6, 1, 0.6)
	k := 3
	pShare, _, err := Solve(f, k, policy.TwoPoint{C2: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	pAggr, _, err := Solve(f, k, policy.TwoPoint{C2: -0.4})
	if err != nil {
		t.Fatal(err)
	}
	if pAggr.Entropy() <= pShare.Entropy() {
		t.Errorf("aggression should spread the IFD: H(aggr)=%v <= H(share)=%v",
			pAggr.Entropy(), pShare.Entropy())
	}
}
