package ifd

import (
	"math"
	"testing"
	"testing/quick"

	"dispersal/internal/coverage"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/strategy"
)

// gameFromRaw deterministically builds a valid random game from quick's raw
// float/byte material.
func gameFromRaw(mRaw, kRaw uint8, shape float64) (site.Values, int) {
	m := int(mRaw%20) + 2
	k := int(kRaw%10) + 2
	ratio := 0.2 + 0.79*math.Abs(math.Mod(shape, 1))
	return site.Geometric(m, 1, ratio), k
}

func TestQuickSigmaStarIsDistributionWithPrefixSupport(t *testing.T) {
	prop := func(mRaw, kRaw uint8, shape float64) bool {
		f, k := gameFromRaw(mRaw, kRaw, shape)
		p, res, err := Exclusive(f, k)
		if err != nil {
			return false
		}
		if p.Validate() != nil {
			return false
		}
		w, ok := p.IsPrefixSupport(1e-12)
		return ok && w == res.W
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickSigmaStarSatisfiesIFD(t *testing.T) {
	prop := func(mRaw, kRaw uint8, shape float64) bool {
		f, k := gameFromRaw(mRaw, kRaw, shape)
		p, _, err := Exclusive(f, k)
		if err != nil {
			return false
		}
		return Check(f, p, k, policy.Exclusive{}, 1e-7) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickSigmaStarBeatsUniformCoverage(t *testing.T) {
	prop := func(mRaw, kRaw uint8, shape float64) bool {
		f, k := gameFromRaw(mRaw, kRaw, shape)
		p, _, err := Exclusive(f, k)
		if err != nil {
			return false
		}
		return coverage.Cover(f, p, k) >= coverage.Cover(f, strategy.Uniform(len(f)), k)-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickGeneralSolverSatisfiesIFDForTwoPointFamily(t *testing.T) {
	prop := func(mRaw, kRaw uint8, shape, c2Raw float64) bool {
		f, k := gameFromRaw(mRaw, kRaw, shape)
		c2 := math.Mod(math.Abs(c2Raw), 1) - 0.5 // in [-0.5, 0.5)
		pol := policy.TwoPoint{C2: c2}
		p, _, err := Solve(f, k, pol)
		if err != nil {
			return false
		}
		return Check(f, p, k, pol, 1e-5) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickEquilibriumValueBelowTopSite(t *testing.T) {
	// nu <= f(1): no one can earn more than the best site pays a lone
	// visitor.
	prop := func(mRaw, kRaw uint8, shape float64) bool {
		f, k := gameFromRaw(mRaw, kRaw, shape)
		for _, c := range []policy.Congestion{policy.Exclusive{}, policy.Sharing{}} {
			_, nu, err := Solve(f, k, c)
			if err != nil {
				return false
			}
			if nu > f[0]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickMorePlayersLowerEquilibriumPayoff(t *testing.T) {
	// Under the exclusive policy, adding players can only reduce the
	// per-player equilibrium payoff nu.
	prop := func(mRaw, kRaw uint8, shape float64) bool {
		f, k := gameFromRaw(mRaw, kRaw, shape)
		_, r1, err := Exclusive(f, k)
		if err != nil {
			return false
		}
		_, r2, err := Exclusive(f, k+1)
		if err != nil {
			return false
		}
		return r2.Nu <= r1.Nu+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickCoverageImprovesWithPlayers(t *testing.T) {
	// Group coverage of sigma*(k) is non-decreasing in k even though the
	// strategy changes with k.
	prop := func(mRaw, kRaw uint8, shape float64) bool {
		f, k := gameFromRaw(mRaw, kRaw, shape)
		p1, _, err := Exclusive(f, k)
		if err != nil {
			return false
		}
		p2, _, err := Exclusive(f, k+1)
		if err != nil {
			return false
		}
		return coverage.Cover(f, p2, k+1) >= coverage.Cover(f, p1, k)-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
