package ifd

// Warm-start equilibrium solving for time-varying landscapes.
//
// Solving a drifting sequence f_0, f_1, ... of value functions from scratch
// wastes everything an adjacent solve already established: the equilibrium
// value nu moves by O(drift), and so do the per-site visit probabilities.
// SolveWarm seeds the outer root-find on nu with a drift-scaled bracket
// around the previous solution's nu (falling back to the cold bracket on
// failure) and narrows every per-site Brent inversion around the previous
// per-site mass, which turns the cold solver's ~50 full-width bisection
// passes into a handful of bracketed Brent steps.
//
// The state threaded through the solves is the solver-core contract
// internal/solve.State, shared with the coverage water-filling, the
// exclusive sigma* tracker and the SPoA pipeline — any of those can seed
// this solver and vice versa.

import (
	"context"
	"errors"
	"fmt"
	"math"

	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/solve"
	"dispersal/internal/strategy"
)

// WarmState is the solver-core state record; it is an alias of solve.State,
// the contract every equilibrium-adjacent solver consumes and emits. The
// equilibrium part carries the per-site visit probabilities and the common
// value nu that SolveWarm seeds from. A WarmState is immutable after
// creation and safe to share between goroutines.
type WarmState = solve.State

// NewWarmState rehydrates solver state from an externally known equilibrium
// — e.g. one recovered from a result cache — so a trajectory can stay warm
// across frames that were not solved locally. p must be the equilibrium
// strategy of (f, k, c) and nu its equilibrium value; a wrong seed cannot
// corrupt a later solve (the bracket verification falls back to a cold
// solve), it can only waste the warm attempt.
func NewWarmState(f site.Values, k int, c policy.Congestion, p strategy.Strategy, nu float64) *WarmState {
	return solve.New(f, k, c).WithEq(p, nu, false)
}

// siteMasses returns the per-site masses taken at candidate equilibrium
// value nu together with their total. levels is the precomputed congestion
// table C(1..k) (solve.Levels). hint, when non-nil, is a previous
// solution's per-site mass vector: each Brent inversion is then bracketed in
// a verified narrow interval around hint[x] instead of [0, 1]. With a nil
// hint the numerics are exactly those of the cold solver.
func siteMasses(ctx context.Context, f site.Values, levels []float64, gAtOne, nu float64, hint strategy.Strategy) (strategy.Strategy, float64, error) {
	m := len(f)
	p := make(strategy.Strategy, m)
	var total numeric.Accumulator
	for x := 0; x < m; x++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		fx := f[x]
		if fx <= nu {
			continue // site unexplored: f(x)*g(0) = f(x) <= nu
		}
		target := nu / fx
		if target <= gAtOne {
			p[x] = 1
			total.Add(1)
			continue
		}
		h := func(q float64) float64 {
			return solve.GeeLevels(levels, q) - target
		}
		lo, hi := 0.0, 1.0
		if hint != nil {
			lo, hi = solve.SeedBracket(h, hint[x], seedBracketHalfWidth)
		}
		q, err := numeric.Brent(h, lo, hi, 1e-15, 200)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: inverting g at site %d: %v", ErrSolveFailed, x+1, err)
		}
		p[x] = q
		total.Add(q)
	}
	return p, total.Sum(), nil
}

// seedBracketHalfWidth is the initial half-width of a warm per-site
// inversion bracket around the previous solution's mass.
const seedBracketHalfWidth = 0.01

// SolveWarm returns the IFD of the game (f, k, C) like SolveContext, seeding
// the search from prev — the state of a previous solve of a nearby landscape
// — when prev carries a compatible equilibrium part (same site count, player
// count and policy). It always returns the state of the solve it performed,
// for threading through the next step of a trajectory; the caller may merge
// it with other solvers' parts (solve.Merge) and pass the combined state
// anywhere the contract is consumed.
//
// A nil or incompatible prev, a degenerate game (k = 1, a single site, a
// congestion-free policy) and any warm bracket that fails to capture the new
// equilibrium all fall back to the cold solver, so SolveWarm never trades
// correctness for speed: its result matches SolveContext up to the solvers'
// shared numerical tolerance on every input.
func SolveWarm(ctx context.Context, prev *WarmState, f site.Values, k int, c policy.Congestion) (strategy.Strategy, float64, *WarmState, error) {
	if prev.CompatibleEq(f, k, c) && !degenerate(f, k, c) {
		p, nu, ok, err := solveWarmCore(ctx, prev, f, k, c)
		if err != nil {
			return nil, 0, nil, err
		}
		if ok {
			return p, nu, solve.New(f, k, c).WithEq(p, nu, true), nil
		}
	}
	p, nu, err := SolveContext(ctx, f, k, c)
	if err != nil {
		return nil, 0, nil, err
	}
	return p, nu, solve.New(f, k, c).WithEq(p, nu, false), nil
}

// degenerate reports the cases the cold solver answers in closed form, where
// warm seeding has nothing to accelerate.
func degenerate(f site.Values, k int, c policy.Congestion) bool {
	return k == 1 || len(f) == 1 || solve.ConstantOnRange(c, k)
}

// warmExpandFactor grows the nu bracket each time an endpoint fails its sign
// check; warmMaxExpand bounds the growth before falling back cold.
const (
	warmExpandFactor = 8
	warmMaxExpand    = 6
)

// solveWarmCore attempts the warm solve proper. ok = false (with a nil
// error) asks the caller to fall back to the cold solver; only context
// errors propagate as errors, so a numerical oddity on the warm path can
// never fail a solve the cold path would have completed.
func solveWarmCore(ctx context.Context, prev *WarmState, f site.Values, k int, c policy.Congestion) (strategy.Strategy, float64, bool, error) {
	if err := f.Validate(); err != nil {
		return nil, 0, false, nil // let the cold path report the input error
	}
	if err := policy.Validate(c, k); err != nil {
		return nil, 0, false, nil
	}
	m := len(f)
	levels := solve.Levels(c, k)
	gAtOne := solve.GeeLevels(levels, 1)

	// Cold bracket bounds: signs are guaranteed at these by construction
	// (every site saturates below loC; no site takes mass at hiC), so the
	// warm bracket never needs to expand past them.
	hiC := f[0]
	loC := f[m-1] * gAtOne
	if gAtOne < 0 {
		loC = f[0] * gAtOne
	}
	loC -= 1 + math.Abs(loC)*1e-3

	// Excess mass at candidate value nu: positive below the equilibrium
	// value, negative above it (total site mass is non-increasing in nu).
	// Each evaluation refreshes the per-site hints with its own masses —
	// successive candidate values are close together, so the latest masses
	// seed the next round of inversions tighter than the previous frame's.
	var solveErr error
	hint := prev.EqRef()
	excess := func(nu float64) float64 {
		if solveErr != nil {
			return 0
		}
		p, tot, err := siteMasses(ctx, f, levels, gAtOne, nu, hint)
		if err != nil {
			solveErr = err
			return 0
		}
		hint = p
		return tot - 1
	}

	// Drift-scaled initial bracket around the previous nu.
	prevNu := prev.Nu()
	drift := prev.Drift(f)
	w := (2*drift + 1e-9) * (1 + math.Abs(prevNu))
	lo := math.Max(loC, prevNu-w)
	hi := math.Min(hiC, prevNu+w)

	// Establish the sign condition excess(lo) >= 0 >= excess(hi), expanding
	// geometrically on whichever side fails. A failed endpoint is still a
	// valid endpoint for the other side (monotonicity), and every probed
	// value is carried forward, so no evaluation is wasted.
	elo := excess(lo)
	ehi, ehiKnown := 0.0, false
	for i := 0; elo < 0 && i < warmMaxExpand && solveErr == nil; i++ {
		hi, ehi, ehiKnown = lo, elo, true
		if numeric.EqualExact(lo, loC) { // expansion pinned at the clamp boundary
			break
		}
		w *= warmExpandFactor
		lo = math.Max(loC, prevNu-w)
		elo = excess(lo)
	}
	if !ehiKnown {
		ehi = excess(hi)
	}
	for i := 0; ehi > 0 && i < warmMaxExpand && solveErr == nil; i++ {
		lo, elo = hi, ehi                // excess(lo) = ehi > 0 holds
		if numeric.EqualExact(hi, hiC) { // expansion pinned at the clamp boundary
			break
		}
		w *= warmExpandFactor
		hi = math.Min(hiC, prevNu+w)
		ehi = excess(hi)
	}
	if solveErr != nil {
		return warmFail(solveErr)
	}
	if elo < 0 || ehi > 0 {
		return nil, 0, false, nil // bracket failed: cold fallback
	}

	var nu float64
	switch {
	case elo == 0:
		nu = lo
	case ehi == 0:
		nu = hi
	default:
		root, err := numeric.BrentSeeded(excess, lo, hi, elo, ehi, 1e-14*(1+math.Abs(prevNu)), 200)
		if solveErr != nil {
			return warmFail(solveErr)
		}
		if err != nil {
			return nil, 0, false, nil
		}
		nu = root
	}

	p, _, err := siteMasses(ctx, f, levels, gAtOne, nu, hint)
	if err != nil {
		return warmFail(err)
	}
	if _, err := p.Normalize(); err != nil {
		return nil, 0, false, nil
	}
	return p, nu, true, nil
}

// warmFail routes a warm-path failure: context errors abort the solve,
// anything else requests the cold fallback.
func warmFail(err error) (strategy.Strategy, float64, bool, error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return nil, 0, false, err
	}
	return nil, 0, false, nil
}
