package ifd

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"

	"dispersal/internal/policy"
	"dispersal/internal/site"
)

// allPolicies is the full policy zoo of the wire codec, exercised by the
// warm/cold equivalence property test.
func allPolicies() []policy.Congestion {
	return []policy.Congestion{
		policy.Exclusive{},
		policy.Sharing{},
		policy.Constant{},
		policy.TwoPoint{C2: 0.4},
		policy.PowerLaw{Beta: 1.5},
		policy.Cooperative{Gamma: 0.85},
		policy.Aggressive{Penalty: 0.5},
		mustTable([]float64{1, 0.6, 0.3}, 0.1),
	}
}

func mustTable(head []float64, tail float64) policy.Congestion {
	c, err := policy.NewTable(head, tail)
	if err != nil {
		panic(err)
	}
	return c
}

// driftFrames generates a deterministic sequence of valid (sorted, positive)
// landscapes drifting multiplicatively from base.
func driftFrames(base site.Values, frames int, amp float64, seed uint64) []site.Values {
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	out := make([]site.Values, frames)
	cur := base.Clone()
	for t := range out {
		next := make(site.Values, len(cur))
		for i, v := range cur {
			next[i] = v * (1 + amp*(2*rng.Float64()-1))
		}
		next = site.Sorted(next)
		out[t] = next
		cur = next
	}
	return out
}

// TestSolveWarmMatchesColdAllPolicies is the warm/cold equivalence property
// test: over drifting landscape sequences, the warm-started solve must agree
// with an independent cold solve on every frame, for every policy of the
// zoo.
func TestSolveWarmMatchesColdAllPolicies(t *testing.T) {
	ctx := context.Background()
	base := site.Geometric(12, 1, 0.85)
	const k = 6
	for _, c := range allPolicies() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			var st *WarmState
			warmed := 0
			for fi, f := range driftFrames(base, 24, 0.02, 42) {
				pw, nuW, next, err := SolveWarm(ctx, st, f, k, c)
				if err != nil {
					t.Fatalf("frame %d: SolveWarm: %v", fi, err)
				}
				pc, nuC, err := Solve(f, k, c)
				if err != nil {
					t.Fatalf("frame %d: cold Solve: %v", fi, err)
				}
				if d := math.Abs(nuW - nuC); d > 1e-9*(1+math.Abs(nuC)) {
					t.Fatalf("frame %d: nu diverged: warm %v cold %v (|d|=%g)", fi, nuW, nuC, d)
				}
				if d := pw.LInf(pc); d > 1e-6 {
					t.Fatalf("frame %d: strategy diverged: LInf=%g", fi, d)
				}
				if err := Check(f, pw, k, c, 1e-6); err != nil {
					t.Fatalf("frame %d: warm result is not an IFD: %v", fi, err)
				}
				if next.Warmed() {
					warmed++
				}
				st = next
			}
			if degenerate(base, k, c) {
				if warmed != 0 {
					t.Fatalf("degenerate policy took the warm path %d times", warmed)
				}
			} else if warmed < 20 {
				t.Fatalf("warm path used on only %d/24 frames", warmed)
			}
		})
	}
}

// TestSolveWarmColdFallbacks checks that incompatible or absent state takes
// the cold path and still solves correctly.
func TestSolveWarmColdFallbacks(t *testing.T) {
	ctx := context.Background()
	f := site.Geometric(8, 1, 0.8)
	c := policy.Sharing{}

	p, nu, st, err := SolveWarm(ctx, nil, f, 4, c)
	if err != nil {
		t.Fatalf("cold SolveWarm: %v", err)
	}
	if st.Warmed() {
		t.Fatal("nil prev must not report a warm solve")
	}
	if err := Check(f, p, 4, c, 1e-6); err != nil {
		t.Fatalf("cold result invalid: %v", err)
	}
	if st.Nu() != nu {
		t.Fatalf("state nu %v != returned nu %v", st.Nu(), nu)
	}

	// Wrong k, wrong m, wrong policy: all must fall back cold, not fail.
	for name, tc := range map[string]struct {
		f site.Values
		k int
		c policy.Congestion
	}{
		"players": {f, 5, c},
		"sites":   {site.Geometric(9, 1, 0.8), 4, c},
		"policy":  {f, 4, policy.PowerLaw{Beta: 2}},
	} {
		_, _, st2, err := SolveWarm(ctx, st, tc.f, tc.k, tc.c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st2.Warmed() {
			t.Fatalf("%s: incompatible state must not warm-start", name)
		}
	}
}

// TestSolveWarmRehydrated seeds from a NewWarmState built out of a cold
// solution, as the serving stack does after a cache hit.
func TestSolveWarmRehydrated(t *testing.T) {
	ctx := context.Background()
	f := site.Zipf(10, 1, 1)
	const k = 5
	c := policy.PowerLaw{Beta: 2}
	p, nu, err := Solve(f, k, c)
	if err != nil {
		t.Fatal(err)
	}
	st := NewWarmState(f, k, c, p, nu)
	if got := st.Strategy(); got.LInf(p) != 0 {
		t.Fatal("rehydrated state strategy mismatch")
	}

	f2 := f.Clone()
	for i := range f2 {
		f2[i] *= 1.01
	}
	pw, nuW, next, err := SolveWarm(ctx, st, f2, k, c)
	if err != nil {
		t.Fatal(err)
	}
	if !next.Warmed() {
		t.Fatal("rehydrated state should enable the warm path")
	}
	pc, nuC, err := Solve(f2, k, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nuW-nuC) > 1e-9*(1+math.Abs(nuC)) || pw.LInf(pc) > 1e-6 {
		t.Fatalf("rehydrated warm solve diverged: nu %v vs %v", nuW, nuC)
	}
}

// TestSolveWarmStaleSeed feeds a wildly wrong warm state (a jump, not a
// drift) and requires a correct answer regardless of which path ran.
func TestSolveWarmStaleSeed(t *testing.T) {
	ctx := context.Background()
	const k = 4
	c := policy.Sharing{}
	f1 := site.Geometric(8, 1, 0.9)
	_, _, st, err := SolveWarm(ctx, nil, f1, k, c)
	if err != nil {
		t.Fatal(err)
	}
	f2 := site.Geometric(8, 100, 0.3) // completely different landscape
	pw, nuW, _, err := SolveWarm(ctx, st, f2, k, c)
	if err != nil {
		t.Fatal(err)
	}
	pc, nuC, err := Solve(f2, k, c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nuW-nuC) > 1e-9*(1+math.Abs(nuC)) || pw.LInf(pc) > 1e-6 {
		t.Fatalf("stale-seed solve diverged: nu %v vs %v", nuW, nuC)
	}
}

// TestSolveWarmCancellation verifies the warm path honors context
// cancellation like the cold one.
func TestSolveWarmCancellation(t *testing.T) {
	f := site.Geometric(64, 1, 0.95)
	const k = 32
	c := policy.Sharing{}
	_, _, st, err := SolveWarm(context.Background(), nil, f, k, c)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := SolveWarm(ctx, st, f, k, c); err == nil {
		t.Fatal("cancelled warm solve must fail")
	}
}

// BenchmarkWarmVsCold quantifies the per-frame speedup on a drifting
// sequence; cmd/paperbench -trajectory reports the same ratio end to end.
func BenchmarkWarmVsCold(b *testing.B) {
	base := site.Geometric(32, 1, 0.9)
	const k = 48
	c := policy.Sharing{}
	frames := driftFrames(base, 64, 0.015, 7)
	ctx := context.Background()

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, f := range frames {
				if _, _, err := Solve(f, k, c); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var st *WarmState
			for _, f := range frames {
				var err error
				_, _, st, err = SolveWarm(ctx, st, f, k, c)
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
