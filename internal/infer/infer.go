// Package infer inverts the Ideal Free Distribution: given the observed
// occupancy of sites by a population at equilibrium, it recovers the
// relative site values f(x). This is the classical empirical use of IFD
// theory in ecology (the papers the reproduction's Section 1.3 cites
// measure animal distributions to infer patch quality); here it doubles as
// a consistency check of the whole pipeline — values simulated through the
// Monte-Carlo engine must invert back to themselves (experiment E23).
//
// At a symmetric equilibrium of a congestion policy C, every explored site
// satisfies f(x) * g(p(x)) = nu with g(q) = E[C(1 + Binomial(k-1, q))], so
//
//	f(x) = nu / g(p(x))   for sites with p(x) > 0,
//
// and unexplored sites only admit the bound f(x) <= nu. Estimate plugs in
// observed occupancy frequencies and normalizes to f_hat(1) = 1.
package infer

import (
	"errors"
	"fmt"
	"math"

	"dispersal/internal/ifd"
	"dispersal/internal/policy"
)

// Errors returned by the estimator.
var (
	ErrPlayers     = errors.New("infer: player count k must be >= 2")
	ErrOccupancy   = errors.New("infer: occupancy must be a probability vector")
	ErrEmpty       = errors.New("infer: no site has positive occupancy")
	ErrDegenerateG = errors.New("infer: congestion discount vanished; cannot invert")
)

// Estimate is the recovered relative value profile.
type Estimate struct {
	// Rel holds the inferred values normalized so the largest is 1.
	// Unexplored sites carry their upper bound (see Bounded).
	Rel []float64
	// InSupport reports whether each site had positive observed occupancy
	// (only those values are point-identified; the rest are bounds).
	InSupport []bool
	// Nu is the inferred common equilibrium payoff in the same normalized
	// units.
	Nu float64
}

// Values recovers relative site values from observed per-player occupancy
// probabilities occ (occ[x] estimates p(x); they should sum to ~1), under
// the assumption that the population plays the symmetric equilibrium of
// congestion policy c with k players per game.
func Values(occ []float64, k int, c policy.Congestion, tol float64) (Estimate, error) {
	if k < 2 {
		return Estimate{}, fmt.Errorf("%w: k=%d", ErrPlayers, k)
	}
	if len(occ) == 0 {
		return Estimate{}, ErrEmpty
	}
	var sum float64
	for x, q := range occ {
		if math.IsNaN(q) || q < 0 || q > 1 {
			return Estimate{}, fmt.Errorf("%w: occ(%d) = %v", ErrOccupancy, x+1, q)
		}
		sum += q
	}
	if math.Abs(sum-1) > 0.05 {
		return Estimate{}, fmt.Errorf("%w: total %v", ErrOccupancy, sum)
	}
	if tol <= 0 {
		tol = 1e-9
	}
	est := Estimate{
		Rel:       make([]float64, len(occ)),
		InSupport: make([]bool, len(occ)),
	}
	// Invert on the support with nu = 1, then renormalize.
	anySupport := false
	for x, q := range occ {
		if q <= tol {
			continue
		}
		g := ifd.Gee(c, k, q)
		if g <= 0 {
			return Estimate{}, fmt.Errorf("%w at site %d (g=%v)", ErrDegenerateG, x+1, g)
		}
		est.Rel[x] = 1 / g
		est.InSupport[x] = true
		anySupport = true
	}
	if !anySupport {
		return Estimate{}, ErrEmpty
	}
	// Unexplored sites: f(x) <= nu, i.e. 1 in the pre-normalized units.
	for x := range est.Rel {
		if !est.InSupport[x] {
			est.Rel[x] = 1
		}
	}
	// Normalize to max 1.
	max := 0.0
	for _, v := range est.Rel {
		if v > max {
			max = v
		}
	}
	for x := range est.Rel {
		est.Rel[x] /= max
	}
	est.Nu = 1 / max
	return est, nil
}

// MaxRelativeError compares the estimate to the true values on the
// identified support (both are rescaled so their first in-support entries
// agree) and returns the largest relative error over in-support sites.
func (e Estimate) MaxRelativeError(truth []float64) (float64, error) {
	if len(truth) != len(e.Rel) {
		return 0, fmt.Errorf("infer: %d true values for %d sites", len(truth), len(e.Rel))
	}
	// Scale match on the first in-support site.
	ref := -1
	for x, in := range e.InSupport {
		if in {
			ref = x
			break
		}
	}
	if ref < 0 {
		return 0, ErrEmpty
	}
	scale := truth[ref] / e.Rel[ref]
	var worst float64
	for x, in := range e.InSupport {
		if !in {
			continue
		}
		err := math.Abs(e.Rel[x]*scale-truth[x]) / truth[x]
		if err > worst {
			worst = err
		}
	}
	return worst, nil
}
