package infer

import (
	"errors"
	"math"
	"testing"

	"dispersal/internal/game"
	"dispersal/internal/ifd"
	"dispersal/internal/policy"
	"dispersal/internal/site"
)

func TestExactOccupancyRecoversValuesExclusive(t *testing.T) {
	// Feed the estimator the *exact* equilibrium occupancy: recovery must
	// be exact on the support.
	f := site.Geometric(6, 1, 0.7)
	k := 3
	sigma, _, err := ifd.Exclusive(f, k)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Values(sigma, k, policy.Exclusive{}, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := est.MaxRelativeError(f)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 1e-9 {
		t.Errorf("exact inversion error %v", worst)
	}
}

func TestExactOccupancyRecoversValuesSharing(t *testing.T) {
	f := site.TwoSite(0.8)
	k := 2
	eq, _, err := ifd.Solve(f, k, policy.Sharing{})
	if err != nil {
		t.Fatal(err)
	}
	est, err := Values(eq, k, policy.Sharing{}, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	worst, err := est.MaxRelativeError(f)
	if err != nil {
		t.Fatal(err)
	}
	if worst > 1e-6 {
		t.Errorf("sharing inversion error %v", worst)
	}
}

func TestUnexploredSitesCarryUpperBound(t *testing.T) {
	// Steep landscape: sigma* skips the tail; the estimate must mark those
	// sites out of support and bound them by nu.
	f := site.Geometric(8, 1, 0.3)
	k := 2
	sigma, res, err := ifd.Exclusive(f, k)
	if err != nil {
		t.Fatal(err)
	}
	if res.W >= 8 {
		t.Skip("need a truncated support")
	}
	est, err := Values(sigma, k, policy.Exclusive{}, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	for x := res.W; x < 8; x++ {
		if est.InSupport[x] {
			t.Errorf("site %d should be out of support", x+1)
		}
		// The bound holds for the true values: f(x) <= nu.
		if f[x] > res.Nu+1e-9 {
			t.Errorf("true value violates the inferred bound at %d", x+1)
		}
	}
}

func TestEstimatorConsistencyFromSimulation(t *testing.T) {
	// End-to-end: simulate equilibrium play, estimate values from the
	// observed occupancy, and watch the error shrink with the sample size.
	f := site.Geometric(5, 1, 0.75)
	k := 3
	sigma, _, err := ifd.Exclusive(f, k)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, rounds := range []int{2_000, 50_000, 1_000_000} {
		res, err := game.Simulate(game.Config{
			F: f, K: k, C: policy.Exclusive{}, Rounds: rounds, Seed: 23,
		}, sigma)
		if err != nil {
			t.Fatal(err)
		}
		est, err := Values(res.Occupancy, k, policy.Exclusive{}, 1e-4)
		if err != nil {
			t.Fatal(err)
		}
		worst, err := est.MaxRelativeError(f)
		if err != nil {
			t.Fatal(err)
		}
		if worst > prev*1.5 { // allow sampling noise, demand the trend
			t.Errorf("error did not shrink: %v after %v (rounds=%d)", worst, prev, rounds)
		}
		prev = worst
	}
	if prev > 0.01 {
		t.Errorf("estimator error at 1M rounds still %v", prev)
	}
}

func TestValuesValidation(t *testing.T) {
	if _, err := Values([]float64{0.5, 0.5}, 1, policy.Exclusive{}, 0); !errors.Is(err, ErrPlayers) {
		t.Error("k=1 accepted")
	}
	if _, err := Values(nil, 2, policy.Exclusive{}, 0); !errors.Is(err, ErrEmpty) {
		t.Error("empty occupancy accepted")
	}
	if _, err := Values([]float64{1.5, -0.5}, 2, policy.Exclusive{}, 0); !errors.Is(err, ErrOccupancy) {
		t.Error("invalid probabilities accepted")
	}
	if _, err := Values([]float64{0.2, 0.2}, 2, policy.Exclusive{}, 0); !errors.Is(err, ErrOccupancy) {
		t.Error("non-normalized occupancy accepted")
	}
	if _, err := Values([]float64{0, 0}, 2, policy.Exclusive{}, 0); err == nil {
		t.Error("all-zero occupancy accepted")
	}
}

func TestMaxRelativeErrorValidation(t *testing.T) {
	est := Estimate{Rel: []float64{1, 0.5}, InSupport: []bool{true, true}}
	if _, err := est.MaxRelativeError([]float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	empty := Estimate{Rel: []float64{1}, InSupport: []bool{false}}
	if _, err := empty.MaxRelativeError([]float64{1}); !errors.Is(err, ErrEmpty) {
		t.Error("no-support estimate accepted")
	}
}

func TestNuConsistency(t *testing.T) {
	// The inferred nu (in f(1)=1 units) must match alpha^(k-1)/f(1) for
	// the exclusive policy.
	f := site.TwoSite(0.5)
	k := 3
	sigma, res, err := ifd.Exclusive(f, k)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Values(sigma, k, policy.Exclusive{}, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Nu / f[0]
	if math.Abs(est.Nu-want) > 1e-9 {
		t.Errorf("inferred nu %v, want %v", est.Nu, want)
	}
}
