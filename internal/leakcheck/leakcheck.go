// Package leakcheck fails a test binary that exits with goroutines still
// running. The serving packages (server, peer, statestore) own background
// goroutines — snapshot loops, peer fetch rounds, HTTP keep-alive readers —
// and a test that forgets to Close its server leaks them silently: the test
// passes, and the bug (a shutdown path that does not actually shut down)
// ships. Installing VerifyTestMain turns that leak into a test failure that
// prints the offending stacks.
//
// Usage, once per test package:
//
//	func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
//
// The check retries with a short backoff before declaring a leak, so
// goroutines that are merely late (an HTTP reader draining a closing
// connection) settle instead of flaking.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"
)

// M is the subset of *testing.M VerifyTestMain needs; it is an interface so
// the package can test its own verdict logic without spawning a process.
type M interface {
	Run() int
}

// VerifyTestMain runs the package's tests and then fails the binary if
// goroutines beyond the standard runtime/testing set are still alive. It
// does not run the leak check after an already-failing run: the leak is
// usually downstream of the failure and would only bury it.
func VerifyTestMain(m M) {
	code := m.Run()
	if code == 0 {
		if leaked := Settle(3 * time.Second); len(leaked) > 0 {
			fmt.Fprintf(os.Stderr, "leakcheck: %d leaked goroutine(s) at exit:\n\n%s\n",
				len(leaked), strings.Join(leaked, "\n\n"))
			code = 1
		}
	}
	os.Exit(code)
}

// Settle polls Leaked with a short backoff until it comes back empty or the
// deadline passes, and returns the final verdict. Late-but-terminating
// goroutines settle; stuck ones are reported.
func Settle(deadline time.Duration) []string {
	const step = 25 * time.Millisecond
	var leaked []string
	for waited := time.Duration(0); ; waited += step {
		leaked = Leaked()
		if len(leaked) == 0 || waited >= deadline {
			return leaked
		}
		time.Sleep(step)
	}
}

// Leaked returns the stack of every live goroutine that is not part of the
// standard runtime/testing machinery, one formatted stack per entry.
func Leaked() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var leaked []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g != "" && !expected(g) {
			leaked = append(leaked, strings.TrimSpace(g))
		}
	}
	return leaked
}

// expected reports whether a goroutine stack belongs to the runtime, the
// testing framework, or this package's own polling — the set every healthy
// test binary has at exit.
func expected(stack string) bool {
	for _, marker := range []string{
		// The goroutine running the leak check itself.
		"leakcheck.Leaked",
		// The testing main goroutine and test runners parked in t.Run.
		"testing.Main(",
		"testing.(*T).Run(",
		"testing.runTests(",
		"testing.(*M).before",
		// Runtime helpers: GC workers, finalizer, scavenger and friends all
		// announce themselves as created by the runtime.
		"created by runtime.",
		// Signal plumbing installed lazily by os/signal.
		"os/signal.signal_recv",
		"os/signal.loop",
		"runtime.ensureSigM",
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}
