package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestCleanAtRest: an idle test binary has no unexpected goroutines.
func TestCleanAtRest(t *testing.T) {
	if leaked := Settle(3 * time.Second); len(leaked) > 0 {
		t.Fatalf("unexpected goroutines at rest:\n%v", leaked)
	}
}

// TestDetectsBlockedGoroutine: a goroutine parked on a channel is reported,
// and is reported gone once released.
func TestDetectsBlockedGoroutine(t *testing.T) {
	release := make(chan struct{})
	parked := make(chan struct{})
	go func() {
		close(parked)
		<-release
	}()
	<-parked

	found := false
	for _, g := range Leaked() {
		if strings.Contains(g, "TestDetectsBlockedGoroutine") {
			found = true
		}
	}
	if !found {
		t.Fatal("blocked goroutine not reported by Leaked")
	}

	close(release)
	if leaked := Settle(3 * time.Second); len(leaked) > 0 {
		t.Fatalf("goroutines still reported after release:\n%v", leaked)
	}
}

// TestSettleWaitsOutLateGoroutines: a goroutine that exits on its own within
// the deadline does not produce a verdict.
func TestSettleWaitsOutLateGoroutines(t *testing.T) {
	go time.Sleep(100 * time.Millisecond)
	if leaked := Settle(3 * time.Second); len(leaked) > 0 {
		t.Fatalf("late-but-terminating goroutine reported as leak:\n%v", leaked)
	}
}

// TestMain installs the verifier on this package too: the checker checks
// itself.
func TestMain(m *testing.M) { VerifyTestMain(m) }
