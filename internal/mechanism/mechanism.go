// Package mechanism searches the space of congestion policies for the one
// whose equilibrium maximizes coverage — the mechanism-design question the
// paper answers analytically (Theorems 4 and 6: the exclusive policy, and
// only it, is optimal for every value function). This package answers it
// constructively: a designer who had never read the paper, armed only with
// the IFD solver and a coverage oracle, would *find* Cexc by optimization.
// Experiment E22 runs that discovery on several landscapes.
//
// The search space is the set of table policies C(1) = 1,
// C(l) = levels[l-2] for 2 <= l <= k (constant beyond), with levels in
// [lo, hi] and the non-increasing constraint enforced by projection.
// The objective Cover(IFD(C)) is piecewise smooth in the levels, so
// coordinate descent with shrinking step sizes plus multi-start is
// sufficient and dependency-free.
package mechanism

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"

	"dispersal/internal/coverage"
	"dispersal/internal/ifd"
	"dispersal/internal/policy"
	"dispersal/internal/site"
)

// Errors returned by the optimizer.
var (
	ErrPlayers = errors.New("mechanism: player count k must be >= 2")
	ErrBounds  = errors.New("mechanism: invalid level bounds")
)

// Design is a candidate congestion policy in the search space.
type Design struct {
	// Levels holds C(2), ..., C(k); C(1) is fixed to 1 and C(l > k) =
	// Levels[k-2].
	Levels []float64
	// Coverage is the equilibrium coverage it induces on the target f.
	Coverage float64
}

// Policy materializes the design as a policy.Congestion.
func (d Design) Policy() policy.Congestion {
	head := make([]float64, len(d.Levels)+1)
	head[0] = 1
	copy(head[1:], d.Levels)
	tail := 0.0
	if n := len(d.Levels); n > 0 {
		tail = d.Levels[n-1]
	}
	return policy.Table{Head: head, Tail: tail}
}

// Options configure Optimize.
type Options struct {
	// Lo and Hi bound each level (defaults -1 and 1).
	Lo, Hi float64
	// Starts is the number of random restarts in addition to the
	// structured ones (default 6).
	Starts int
	// Sweeps is the number of coordinate-descent sweeps per start
	// (default 40).
	Sweeps int
	// Seed drives the random restarts.
	Seed uint64
}

func (o Options) withDefaults() (Options, error) {
	if o.Lo == 0 && o.Hi == 0 {
		o.Lo, o.Hi = -1, 1
	}
	if o.Hi <= o.Lo {
		return o, fmt.Errorf("%w: [%v, %v]", ErrBounds, o.Lo, o.Hi)
	}
	if o.Starts <= 0 {
		o.Starts = 6
	}
	if o.Sweeps <= 0 {
		o.Sweeps = 40
	}
	return o, nil
}

// project enforces 1 >= C(2) >= C(3) >= ... and the [lo, hi] box by a
// simple monotone pass (isotonic clipping: each level is clamped below its
// predecessor).
func project(levels []float64, lo, hi float64) {
	prev := 1.0
	for i := range levels {
		if levels[i] > hi {
			levels[i] = hi
		}
		if levels[i] < lo {
			levels[i] = lo
		}
		if levels[i] > prev {
			levels[i] = prev
		}
		prev = levels[i]
	}
}

// equilibriumCoverage evaluates the objective for a level vector.
func equilibriumCoverage(f site.Values, k int, levels []float64) (float64, error) {
	d := Design{Levels: levels}
	eq, _, err := ifd.Solve(f, k, d.Policy())
	if err != nil {
		return 0, err
	}
	return coverage.Cover(f, eq, k), nil
}

// Optimize searches for the congestion policy maximizing equilibrium
// coverage on the game (f, k). It returns the best design found. By
// Theorems 4 and 6 the global optimum is the exclusive policy (all levels
// 0); the tests and experiment E22 confirm the optimizer lands there.
func Optimize(f site.Values, k int, opts Options) (Design, error) {
	return OptimizeContext(context.Background(), f, k, opts)
}

// OptimizeContext is Optimize under a context: cancellation is checked per
// coordinate-descent sweep, so a deadline interrupts long searches between
// objective evaluations.
func OptimizeContext(ctx context.Context, f site.Values, k int, opts Options) (Design, error) {
	if err := f.Validate(); err != nil {
		return Design{}, err
	}
	if k < 2 {
		return Design{}, fmt.Errorf("%w: k=%d", ErrPlayers, k)
	}
	opts, err := opts.withDefaults()
	if err != nil {
		return Design{}, err
	}
	n := k - 1 // levels C(2..k)
	rng := rand.New(rand.NewPCG(opts.Seed, 0x41c64e6d))

	starts := [][]float64{
		sharingLevels(k), // C(l) = 1/l
		constantLevels(n, opts.Hi),
		constantLevels(n, opts.Lo),
		constantLevels(n, 0.5),
	}
	for s := 0; s < opts.Starts; s++ {
		lv := make([]float64, n)
		for i := range lv {
			lv[i] = opts.Lo + rng.Float64()*(opts.Hi-opts.Lo)
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(lv)))
		starts = append(starts, lv)
	}

	var best Design
	first := true
	for _, start := range starts {
		lv := make([]float64, n)
		copy(lv, start)
		project(lv, opts.Lo, opts.Hi)
		cur, err := equilibriumCoverage(f, k, lv)
		if err != nil {
			return Design{}, err
		}
		step := (opts.Hi - opts.Lo) / 4
		for sweep := 0; sweep < opts.Sweeps; sweep++ {
			if err := ctx.Err(); err != nil {
				return Design{}, err
			}
			improved := false
			for i := 0; i < n; i++ {
				for _, dir := range []float64{+1, -1} {
					cand := make([]float64, n)
					copy(cand, lv)
					cand[i] += dir * step
					project(cand, opts.Lo, opts.Hi)
					v, err := equilibriumCoverage(f, k, cand)
					if err != nil {
						continue // infeasible candidate; skip
					}
					if v > cur+1e-12 {
						copy(lv, cand)
						cur = v
						improved = true
					}
				}
			}
			if !improved {
				step /= 2
				if step < 1e-10 {
					break
				}
			}
		}
		if first || cur > best.Coverage {
			best = Design{Levels: lv, Coverage: cur}
			first = false
		}
	}
	return best, nil
}

// MaxLevelMagnitude returns the largest |C(l)| over the design's levels —
// the distance from the exclusive policy in the sup norm.
func (d Design) MaxLevelMagnitude() float64 {
	var m float64
	for _, v := range d.Levels {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

func sharingLevels(k int) []float64 {
	lv := make([]float64, k-1)
	for l := 2; l <= k; l++ {
		lv[l-2] = 1 / float64(l)
	}
	return lv
}

func constantLevels(n int, v float64) []float64 {
	lv := make([]float64, n)
	for i := range lv {
		lv[i] = v
	}
	return lv
}
