package mechanism

import (
	"errors"
	"testing"

	"dispersal/internal/coverage"
	"dispersal/internal/ifd"
	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/site"
)

func TestOptimizeRecoversExclusivePolicy(t *testing.T) {
	// Theorem 6, constructively: the best table policy has all levels at 0
	// (within search resolution) and achieves the sigma* coverage.
	cases := []struct {
		name string
		f    site.Values
		k    int
	}{
		{"two-site", site.TwoSite(0.3), 2},
		{"geometric", site.Geometric(8, 1, 0.75), 3},
		{"slow-decay", site.SlowDecay(12, 3), 3},
	}
	for _, c := range cases {
		d, err := Optimize(c.f, c.k, Options{Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		sigma, _, err := ifd.Exclusive(c.f, c.k)
		if err != nil {
			t.Fatal(err)
		}
		want := coverage.Cover(c.f, sigma, c.k)
		if !numeric.AlmostEqual(d.Coverage, want, 1e-4) {
			t.Errorf("%s: optimized coverage %v, optimum %v (levels %v)",
				c.name, d.Coverage, want, d.Levels)
		}
		if d.MaxLevelMagnitude() > 0.05 {
			t.Errorf("%s: optimizer did not land near Cexc: levels %v", c.name, d.Levels)
		}
	}
}

func TestOptimizeBeatsSharingStart(t *testing.T) {
	f := site.SlowDecay(12, 3)
	k := 3
	d, err := Optimize(f, k, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	shareEq, _, err := ifd.Solve(f, k, policy.Sharing{})
	if err != nil {
		t.Fatal(err)
	}
	shareCover := coverage.Cover(f, shareEq, k)
	if d.Coverage <= shareCover {
		t.Errorf("optimizer (%v) no better than sharing (%v)", d.Coverage, shareCover)
	}
}

func TestDesignPolicyIsValidCongestion(t *testing.T) {
	d := Design{Levels: []float64{0.5, 0.2, -0.1}}
	if err := policy.Validate(d.Policy(), 10); err != nil {
		t.Errorf("materialized policy invalid: %v", err)
	}
	if got := d.Policy().At(1); got != 1 {
		t.Errorf("C(1) = %v", got)
	}
	if got := d.Policy().At(3); got != 0.2 {
		t.Errorf("C(3) = %v", got)
	}
	if got := d.Policy().At(99); got != -0.1 {
		t.Errorf("tail C(99) = %v", got)
	}
}

func TestDesignPolicyEmptyLevels(t *testing.T) {
	d := Design{}
	if got := d.Policy().At(2); got != 0 {
		t.Errorf("empty design tail = %v", got)
	}
}

func TestProject(t *testing.T) {
	lv := []float64{2, 0.5, 0.9, -3}
	project(lv, -1, 1)
	// Clamped to [−1,1] and non-increasing.
	want := []float64{1, 0.5, 0.5, -1}
	for i := range lv {
		if lv[i] != want[i] {
			t.Errorf("project = %v, want %v", lv, want)
			break
		}
	}
}

func TestMaxLevelMagnitude(t *testing.T) {
	d := Design{Levels: []float64{0.1, -0.7, 0.3}}
	if got := d.MaxLevelMagnitude(); got != 0.7 {
		t.Errorf("MaxLevelMagnitude = %v", got)
	}
	if got := (Design{}).MaxLevelMagnitude(); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

func TestOptimizeErrors(t *testing.T) {
	if _, err := Optimize(site.Values{1, 0.5}, 1, Options{}); !errors.Is(err, ErrPlayers) {
		t.Error("k=1 accepted")
	}
	if _, err := Optimize(site.Values{0.5, 1}, 2, Options{}); err == nil {
		t.Error("unsorted f accepted")
	}
	if _, err := Optimize(site.Values{1, 0.5}, 2, Options{Lo: 1, Hi: 0}); !errors.Is(err, ErrBounds) {
		t.Error("inverted bounds accepted")
	}
}

func TestSharingLevels(t *testing.T) {
	lv := sharingLevels(4)
	want := []float64{0.5, 1.0 / 3, 0.25}
	for i := range lv {
		if !numeric.AlmostEqual(lv[i], want[i], 1e-12) {
			t.Errorf("sharingLevels = %v", lv)
			break
		}
	}
}
