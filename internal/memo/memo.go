// Package memo provides a tiny concurrency-safe lazy cell used by the
// dispersal Analysis session: compute-once-on-demand with singleflight
// semantics, but — unlike sync.Once — errors are not cached, so a
// computation aborted by a cancelled context can be retried later without
// poisoning the cell.
package memo

import "sync"

// Cell lazily holds one value of type T. The zero value is ready to use.
type Cell[T any] struct {
	mu   sync.Mutex
	done bool
	val  T
}

// Get returns the cached value, computing it with compute on first use.
// Concurrent callers block until the in-flight computation finishes, so
// compute runs at most once per successful fill (singleflight). When
// compute fails, the error is returned and nothing is cached: the next Get
// runs compute again.
func (c *Cell[T]) Get(compute func() (T, error)) (T, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return c.val, nil
	}
	v, err := compute()
	if err != nil {
		var zero T
		return zero, err
	}
	c.val, c.done = v, true
	return v, nil
}

// Done reports whether the cell has been filled.
func (c *Cell[T]) Done() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done
}
