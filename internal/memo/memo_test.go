package memo

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCellComputesOnce(t *testing.T) {
	var c Cell[int]
	var computes atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				v, err := c.Get(func() (int, error) {
					computes.Add(1)
					return 42, nil
				})
				if err != nil || v != 42 {
					t.Errorf("Get = %d, %v", v, err)
				}
			}
		}()
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	if !c.Done() {
		t.Fatal("cell not marked done")
	}
}

func TestCellRetriesAfterError(t *testing.T) {
	var c Cell[string]
	boom := errors.New("boom")
	if _, err := c.Get(func() (string, error) { return "", boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Done() {
		t.Fatal("error was cached")
	}
	v, err := c.Get(func() (string, error) { return "ok", nil })
	if err != nil || v != "ok" {
		t.Fatalf("retry: %q, %v", v, err)
	}
}
