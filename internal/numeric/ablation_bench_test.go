package numeric

// Ablation benchmarks for the numeric-kernel design choices: compensated
// vs naive summation, log-space vs direct binomial PMFs, PowOneMinus vs
// math.Pow, and Brent vs plain bisection on a representative root.

import (
	"math"
	"math/rand/v2"
	"testing"
)

var benchSink float64

func benchVector(n int) []float64 {
	rng := rand.New(rand.NewPCG(1, 1))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * math.Pow(10, float64(rng.IntN(12)-6))
	}
	return xs
}

func BenchmarkSumKahan(b *testing.B) {
	xs := benchVector(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = KahanSum(xs)
	}
}

func BenchmarkSumNaive(b *testing.B) {
	xs := benchVector(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s float64
		for _, x := range xs {
			s += x
		}
		benchSink = s
	}
}

func BenchmarkBinomialPMFLogSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = BinomialPMF(500, 137, 0.3)
	}
}

func BenchmarkBinomialPMFSmallDirect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = BinomialPMF(12, 5, 0.3)
	}
}

func BenchmarkPowOneMinus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = PowOneMinus(1e-7, 64)
	}
}

func BenchmarkPowOneMinusViaMathPow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchSink = math.Pow(1-1e-7, 64)
	}
}

func benchRoot(f func(func(float64) float64, float64, float64, float64, int) (float64, error), b *testing.B) {
	g := func(x float64) float64 { return math.Exp(x) - 2 - x }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := f(g, 0, 3, 1e-13, 300)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = r
	}
}

func BenchmarkRootBrent(b *testing.B)  { benchRoot(Brent, b) }
func BenchmarkRootBisect(b *testing.B) { benchRoot(Bisect, b) }

func BenchmarkProjectSimplexSmall(b *testing.B) {
	v := benchVector(16)
	out := make([]float64, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ProjectSimplex(v, out)
	}
}

func BenchmarkProjectSimplexLarge(b *testing.B) {
	v := benchVector(512)
	out := make([]float64, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ProjectSimplex(v, out)
	}
}
