package numeric

import (
	"math"
	"testing"
)

// FuzzProjectSimplex asserts the projection always returns a valid
// distribution for finite inputs, no matter how adversarial.
func FuzzProjectSimplex(f *testing.F) {
	f.Add(0.5, -3.0, 1e300)
	f.Add(0.0, 0.0, 0.0)
	f.Add(-1e-300, 1e-300, 7.0)
	f.Fuzz(func(t *testing.T, a, b, c float64) {
		for _, v := range []float64{a, b, c} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
		}
		p := ProjectSimplex([]float64{a, b, c}, nil)
		var sum float64
		for _, x := range p {
			if x < 0 || math.IsNaN(x) {
				t.Fatalf("projection of (%v,%v,%v) produced %v", a, b, c, p)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("projection of (%v,%v,%v) sums to %v", a, b, c, sum)
		}
	})
}

// FuzzBinomialPMF asserts the PMF stays within [0, 1] and never panics for
// arbitrary arguments.
func FuzzBinomialPMF(f *testing.F) {
	f.Add(10, 3, 0.5)
	f.Add(0, 0, 0.0)
	f.Add(500, 250, 1e-12)
	f.Fuzz(func(t *testing.T, n, k int, p float64) {
		if n < 0 || n > 100000 {
			return
		}
		got := BinomialPMF(n, k, p)
		if math.IsNaN(got) || got < 0 || got > 1+1e-12 {
			t.Fatalf("BinomialPMF(%d, %d, %v) = %v", n, k, p, got)
		}
	})
}
