// Package numeric provides the small numerical kernel used throughout the
// dispersal library: numerically stable binomial probabilities, compensated
// summation, root finding, simplex projection, and float comparison helpers.
//
// Everything here is dependency-free (standard library only) and allocation
// conscious; several routines are on the hot path of the IFD solvers and the
// Monte-Carlo engine.
package numeric

import (
	"errors"
	"math"
)

// Eps is the default absolute tolerance used by the comparison helpers.
const Eps = 1e-12

// ErrBracket is returned by the root finders when the supplied interval does
// not bracket a sign change.
var ErrBracket = errors.New("numeric: interval does not bracket a root")

// ErrNoConverge is returned when an iterative method exhausts its iteration
// budget without reaching the requested tolerance.
var ErrNoConverge = errors.New("numeric: iteration did not converge")

// AlmostEqual reports whether a and b differ by at most tol in absolute
// value, or by at most tol in relative value for large magnitudes.
func AlmostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}

// EqualExact reports whether a and b are the same float64 value (plain ==).
// It exists for the floateq static-analysis gate: solver code may not spell
// raw float equality, so every intentional exact comparison goes through
// this named helper and reads as a decision rather than an accident. Use it
// where bit identity is semantic — argmax tie detection, "did the clamp pin
// this endpoint to the boundary?", constant-policy detection (where a
// tolerance would change which solver runs) — and AlmostEqual everywhere a
// tolerance is meant. NaN compares unequal to everything, itself included.
func EqualExact(a, b float64) bool { return a == b }

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n must be at least 2; n == 1 returns just lo.
func Linspace(lo, hi float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	if n == 1 {
		out[0] = lo
		return out
	}
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi // avoid accumulated drift at the endpoint
	return out
}

// KahanSum returns the compensated (Kahan–Babuska) sum of xs. It is used
// wherever coverage or probability masses of very different magnitudes are
// accumulated.
func KahanSum(xs []float64) float64 {
	var sum, c float64
	for _, x := range xs {
		t := sum + x
		if math.Abs(sum) >= math.Abs(x) {
			c += (sum - t) + x
		} else {
			c += (x - t) + sum
		}
		sum = t
	}
	return sum + c
}

// Accumulator is an incremental Kahan–Babuska summator.
type Accumulator struct {
	sum, c float64
}

// Add folds x into the accumulator.
func (a *Accumulator) Add(x float64) {
	t := a.sum + x
	if math.Abs(a.sum) >= math.Abs(x) {
		a.c += (a.sum - t) + x
	} else {
		a.c += (x - t) + a.sum
	}
	a.sum = t
}

// Sum returns the compensated total.
func (a *Accumulator) Sum() float64 { return a.sum + a.c }

// Reset clears the accumulator to zero.
func (a *Accumulator) Reset() { a.sum, a.c = 0, 0 }

// LogBinomialCoeff returns log(n choose k) computed via lgamma, valid for
// 0 <= k <= n up to very large n without overflow.
func LogBinomialCoeff(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln - lk - lnk
}

// BinomialCoeff returns (n choose k) as a float64. It is exact for small
// arguments and falls back to the log-space computation otherwise.
func BinomialCoeff(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	if n <= 60 {
		// Exact multiplicative evaluation.
		res := 1.0
		for i := 1; i <= k; i++ {
			res = res * float64(n-k+i) / float64(i)
		}
		return res
	}
	return math.Exp(LogBinomialCoeff(n, k))
}

// BinomialPMF returns P[Binomial(n, p) == k], computed in log space for
// numerical stability when n is large or p is extreme.
func BinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n || p < 0 || p > 1 {
		return 0
	}
	if p == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p == 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lp := LogBinomialCoeff(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(lp)
}

// PowOneMinus returns (1-p)^n computed via exp(n*log1p(-p)) so that tiny p
// does not lose precision. Used by every coverage evaluation.
func PowOneMinus(p float64, n int) float64 {
	if n == 0 {
		return 1
	}
	if p <= 0 {
		if p == 0 {
			return 1
		}
		return math.Pow(1-p, float64(n))
	}
	if p >= 1 {
		if p == 1 {
			return 0
		}
		return math.Pow(1-p, float64(n))
	}
	return math.Exp(float64(n) * math.Log1p(-p))
}

// Bisect finds a root of f in [lo, hi] to within tol using bisection. f(lo)
// and f(hi) must have opposite signs (zero endpoints are accepted as roots).
func Bisect(f func(float64) float64, lo, hi, tol float64, maxIter int) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, ErrBracket
	}
	for i := 0; i < maxIter; i++ {
		mid := lo + (hi-lo)/2
		fm := f(mid)
		if fm == 0 || (hi-lo)/2 < tol {
			return mid, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, ErrNoConverge
}

// Brent finds a root of f in [lo, hi] using Brent's method (inverse
// quadratic interpolation with bisection fallback). It converges much faster
// than plain bisection on smooth functions and is used by the general IFD
// solver's inner inversion.
func Brent(f func(float64) float64, lo, hi, tol float64, maxIter int) (float64, error) {
	return BrentSeeded(f, lo, hi, f(lo), f(hi), tol, maxIter)
}

// BrentSeeded is Brent for callers that have already evaluated the
// endpoints: flo and fhi must equal f(lo) and f(hi). The warm-start
// equilibrium solver uses it to avoid re-running its (expensive) excess-mass
// evaluation at bracket endpoints it just probed.
func BrentSeeded(f func(float64) float64, lo, hi, flo, fhi, tol float64, maxIter int) (float64, error) {
	a, b := lo, hi
	fa, fb := flo, fhi
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, ErrBracket
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < maxIter; i++ {
		if fb == 0 || math.Abs(b-a) < tol {
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant.
			s = b - fb*(b-a)/(fb-fa)
		}
		cond := (s < (3*a+b)/4 && s < b) || (s > (3*a+b)/4 && s > b)
		if cond ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol) {
			s = (a + b) / 2
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d, c, fc = c, b, fb
		if (fa > 0) != (fs > 0) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return b, ErrNoConverge
}

// ProjectSimplex projects v onto the probability simplex
// {p : p_i >= 0, sum p_i = 1} in Euclidean norm, using the O(n log n)
// sort-and-threshold algorithm. The input is not modified; the projection is
// written into out (which must have len(v)) and returned. If out is nil a
// fresh slice is allocated.
func ProjectSimplex(v []float64, out []float64) []float64 {
	n := len(v)
	if out == nil {
		out = make([]float64, n)
	}
	if n == 0 {
		return out
	}
	// Sort a copy in decreasing order.
	u := make([]float64, n)
	copy(u, v)
	insertionSortDesc(u)
	var cum float64
	rho, theta := -1, 0.0
	for i := 0; i < n; i++ {
		cum += u[i]
		t := (cum - 1) / float64(i+1)
		if u[i]-t > 0 {
			rho, theta = i, t
		}
	}
	if rho < 0 {
		// Degenerate input (all -inf etc.); fall back to uniform.
		for i := range out {
			out[i] = 1 / float64(n)
		}
		return out
	}
	for i, x := range v {
		p := x - theta
		if p < 0 {
			p = 0
		}
		out[i] = p
	}
	// Renormalize away rounding drift.
	s := KahanSum(out)
	if s > 0 {
		for i := range out {
			out[i] /= s
		}
	}
	return out
}

// insertionSortDesc sorts u in place in decreasing order. The simplex
// projection is called with short vectors in hot loops; insertion sort avoids
// the interface overhead of sort.Float64s and is faster below ~64 elements.
// For long vectors it degrades gracefully (projection is not hot there).
func insertionSortDesc(u []float64) {
	if len(u) > 64 {
		heapSortDesc(u)
		return
	}
	for i := 1; i < len(u); i++ {
		x := u[i]
		j := i - 1
		for j >= 0 && u[j] < x {
			u[j+1] = u[j]
			j--
		}
		u[j+1] = x
	}
}

func heapSortDesc(u []float64) {
	n := len(u)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownMin(u, i, n)
	}
	for end := n - 1; end > 0; end-- {
		u[0], u[end] = u[end], u[0]
		siftDownMin(u, 0, end)
	}
}

// siftDownMin maintains a min-heap; extracting minima to the back yields a
// descending order.
func siftDownMin(u []float64, i, n int) {
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && u[r] < u[l] {
			m = r
		}
		if u[i] <= u[m] {
			return
		}
		u[i], u[m] = u[m], u[i]
		i = m
	}
}

// Dot returns the inner product of a and b (which must have equal length),
// with compensated accumulation.
func Dot(a, b []float64) float64 {
	var acc Accumulator
	for i := range a {
		acc.Add(a[i] * b[i])
	}
	return acc.Sum()
}

// MaxIndex returns the index of the maximum element of xs (first occurrence)
// and the maximum itself. It panics on empty input.
func MaxIndex(xs []float64) (int, float64) {
	idx, best := 0, xs[0]
	for i, x := range xs[1:] {
		if x > best {
			idx, best = i+1, x
		}
	}
	return idx, best
}

// MinIndex returns the index of the minimum element of xs (first occurrence)
// and the minimum itself. It panics on empty input.
func MinIndex(xs []float64) (int, float64) {
	idx, best := 0, xs[0]
	for i, x := range xs[1:] {
		if x < best {
			idx, best = i+1, x
		}
	}
	return idx, best
}
