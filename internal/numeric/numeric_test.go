package numeric

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-13, 1e-12, true},
		{1, 1.1, 1e-12, false},
		{1e15, 1e15 + 1, 1e-12, true}, // relative tolerance kicks in
		{0, 1e-13, 1e-12, true},
		{-1, 1, 1e-12, false},
	}
	for _, c := range cases {
		if got := AlmostEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("AlmostEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %v", got)
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(-0.5, 0.5, 11)
	if len(xs) != 11 {
		t.Fatalf("len = %d, want 11", len(xs))
	}
	if xs[0] != -0.5 || xs[10] != 0.5 {
		t.Errorf("endpoints = %v, %v", xs[0], xs[10])
	}
	if !AlmostEqual(xs[5], 0, 1e-12) {
		t.Errorf("midpoint = %v, want 0", xs[5])
	}
	if got := Linspace(3, 7, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("Linspace n=1: %v", got)
	}
	if got := Linspace(0, 1, 0); got != nil {
		t.Errorf("Linspace n=0: %v", got)
	}
}

func TestKahanSumPrecision(t *testing.T) {
	// 1 + 1e-16 added 1e6 times: naive summation loses the small terms.
	xs := make([]float64, 1_000_001)
	xs[0] = 1
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-16
	}
	got := KahanSum(xs)
	want := 1 + 1e-10
	if math.Abs(got-want) > 1e-14 {
		t.Errorf("KahanSum = %.18f, want %.18f", got, want)
	}
}

func TestAccumulatorMatchesKahanSum(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64() * math.Pow(10, float64(rng.IntN(20)-10))
	}
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	if got, want := acc.Sum(), KahanSum(xs); !AlmostEqual(got, want, 1e-9) {
		t.Errorf("Accumulator = %v, KahanSum = %v", got, want)
	}
	acc.Reset()
	if acc.Sum() != 0 {
		t.Errorf("after Reset, Sum = %v", acc.Sum())
	}
}

func TestBinomialCoeffSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{52, 5, 2598960}, {4, 5, 0}, {4, -1, 0},
	}
	for _, c := range cases {
		if got := BinomialCoeff(c.n, c.k); got != c.want {
			t.Errorf("BinomialCoeff(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialCoeffLargeConsistency(t *testing.T) {
	// Pascal identity in the log-space regime.
	for _, n := range []int{61, 100, 500} {
		for _, k := range []int{1, 7, n / 2} {
			lhs := BinomialCoeff(n, k)
			rhs := BinomialCoeff(n-1, k-1) + BinomialCoeff(n-1, k)
			if !AlmostEqual(lhs, rhs, 1e-10) {
				t.Errorf("Pascal fails at n=%d k=%d: %v vs %v", n, k, lhs, rhs)
			}
		}
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 2, 7, 40, 200} {
		for _, p := range []float64{0, 0.01, 0.3, 0.5, 0.99, 1} {
			var acc Accumulator
			for k := 0; k <= n; k++ {
				acc.Add(BinomialPMF(n, k, p))
			}
			if !AlmostEqual(acc.Sum(), 1, 1e-10) {
				t.Errorf("sum of PMF(n=%d, p=%v) = %v", n, p, acc.Sum())
			}
		}
	}
}

func TestBinomialPMFEdge(t *testing.T) {
	if got := BinomialPMF(10, 0, 0); got != 1 {
		t.Errorf("PMF(10,0,0) = %v", got)
	}
	if got := BinomialPMF(10, 10, 1); got != 1 {
		t.Errorf("PMF(10,10,1) = %v", got)
	}
	if got := BinomialPMF(10, 3, 0); got != 0 {
		t.Errorf("PMF(10,3,0) = %v", got)
	}
	if got := BinomialPMF(10, 11, 0.5); got != 0 {
		t.Errorf("PMF(10,11,.5) = %v", got)
	}
	if got := BinomialPMF(10, 3, -0.1); got != 0 {
		t.Errorf("PMF negative p = %v", got)
	}
}

func TestBinomialPMFMatchesDirect(t *testing.T) {
	for k := 0; k <= 12; k++ {
		want := BinomialCoeff(12, k) * math.Pow(0.3, float64(k)) * math.Pow(0.7, float64(12-k))
		if got := BinomialPMF(12, k, 0.3); !AlmostEqual(got, want, 1e-12) {
			t.Errorf("PMF(12,%d,0.3) = %v, want %v", k, got, want)
		}
	}
}

func TestPowOneMinus(t *testing.T) {
	cases := []struct {
		p    float64
		n    int
		want float64
	}{
		{0, 5, 1}, {1, 5, 0}, {0.5, 2, 0.25}, {0.3, 0, 1},
	}
	for _, c := range cases {
		if got := PowOneMinus(c.p, c.n); !AlmostEqual(got, c.want, 1e-14) {
			t.Errorf("PowOneMinus(%v,%d) = %v, want %v", c.p, c.n, got, c.want)
		}
	}
	// Tiny p: direct 1-p loses bits, log1p path must not.
	p := 1e-14
	got := PowOneMinus(p, 1000)
	want := math.Exp(1000 * math.Log1p(-p))
	if !AlmostEqual(got, want, 1e-15) {
		t.Errorf("tiny-p: %v vs %v", got, want)
	}
}

func TestPowOneMinusQuick(t *testing.T) {
	f := func(pRaw float64, nRaw uint8) bool {
		p := math.Abs(math.Mod(pRaw, 1))
		n := int(nRaw%50) + 1
		got := PowOneMinus(p, n)
		want := math.Pow(1-p, float64(n))
		return AlmostEqual(got, want, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !AlmostEqual(root, math.Sqrt2, 1e-10) {
		t.Errorf("root = %v, want sqrt(2)", root)
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-12, 100); err != ErrBracket {
		t.Errorf("want ErrBracket, got %v", err)
	}
}

func TestBisectEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x }
	if r, err := Bisect(f, 0, 1, 1e-12, 100); err != nil || r != 0 {
		t.Errorf("lo endpoint: %v, %v", r, err)
	}
	if r, err := Bisect(f, -1, 0, 1e-12, 100); err != nil || r != 0 {
		t.Errorf("hi endpoint: %v, %v", r, err)
	}
}

func TestBrent(t *testing.T) {
	fns := []struct {
		name   string
		f      func(float64) float64
		lo, hi float64
		want   float64
	}{
		{"sqrt2", func(x float64) float64 { return x*x - 2 }, 0, 2, math.Sqrt2},
		{"cos", math.Cos, 0, 3, math.Pi / 2},
		{"cubic", func(x float64) float64 { return (x - 0.3) * (x*x + 1) }, -1, 1, 0.3},
		{"exp", func(x float64) float64 { return math.Exp(x) - 5 }, 0, 3, math.Log(5)},
	}
	for _, c := range fns {
		root, err := Brent(c.f, c.lo, c.hi, 1e-13, 200)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !AlmostEqual(root, c.want, 1e-9) {
			t.Errorf("%s: root = %v, want %v", c.name, root, c.want)
		}
	}
}

func TestBrentNoBracket(t *testing.T) {
	if _, err := Brent(func(x float64) float64 { return 1 + x*x }, -1, 1, 1e-12, 100); err != ErrBracket {
		t.Errorf("want ErrBracket, got %v", err)
	}
}

func TestProjectSimplexAlreadyOnSimplex(t *testing.T) {
	v := []float64{0.2, 0.3, 0.5}
	got := ProjectSimplex(v, nil)
	for i := range v {
		if !AlmostEqual(got[i], v[i], 1e-12) {
			t.Errorf("projection moved a simplex point: %v -> %v", v, got)
			break
		}
	}
}

func TestProjectSimplexKnown(t *testing.T) {
	// Projection of (2, 0) onto the simplex is (1, 0).
	got := ProjectSimplex([]float64{2, 0}, nil)
	if !AlmostEqual(got[0], 1, 1e-12) || !AlmostEqual(got[1], 0, 1e-12) {
		t.Errorf("got %v, want [1 0]", got)
	}
	// Projection of (0.5, 0.5, 0.5): uniform excess removed -> (1/3, 1/3, 1/3).
	got = ProjectSimplex([]float64{0.5, 0.5, 0.5}, nil)
	for _, g := range got {
		if !AlmostEqual(g, 1.0/3, 1e-12) {
			t.Errorf("got %v, want uniform", got)
			break
		}
	}
}

func TestProjectSimplexProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 || len(raw) > 100 {
			return true
		}
		for i := range raw {
			if math.IsNaN(raw[i]) || math.IsInf(raw[i], 0) {
				return true
			}
			raw[i] = math.Mod(raw[i], 100)
		}
		p := ProjectSimplex(raw, nil)
		var sum float64
		for _, x := range p {
			if x < 0 {
				return false
			}
			sum += x
		}
		if !AlmostEqual(sum, 1, 1e-9) {
			return false
		}
		// Idempotence.
		q := ProjectSimplex(p, nil)
		for i := range p {
			if !AlmostEqual(p[i], q[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestProjectSimplexLargeVector(t *testing.T) {
	// Exercises the heap-sort path (> 64 elements).
	rng := rand.New(rand.NewPCG(7, 7))
	v := make([]float64, 300)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	p := ProjectSimplex(v, nil)
	var sum float64
	for _, x := range p {
		if x < 0 {
			t.Fatalf("negative mass %v", x)
		}
		sum += x
	}
	if !AlmostEqual(sum, 1, 1e-9) {
		t.Errorf("sum = %v", sum)
	}
}

func TestProjectSimplexReuseBuffer(t *testing.T) {
	out := make([]float64, 3)
	got := ProjectSimplex([]float64{1, 2, 3}, out)
	if &got[0] != &out[0] {
		t.Error("output buffer was not reused")
	}
}

func TestHeapSortDesc(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	u := make([]float64, 200)
	for i := range u {
		u[i] = rng.Float64()
	}
	heapSortDesc(u)
	for i := 1; i < len(u); i++ {
		if u[i-1] < u[i] {
			t.Fatalf("not descending at %d: %v < %v", i, u[i-1], u[i])
		}
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Errorf("empty Dot = %v", got)
	}
}

func TestMaxMinIndex(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if i, v := MaxIndex(xs); i != 5 || v != 9 {
		t.Errorf("MaxIndex = %d, %v", i, v)
	}
	if i, v := MinIndex(xs); i != 1 || v != 1 {
		t.Errorf("MinIndex = %d, %v", i, v)
	}
	// First occurrence on ties.
	if i, _ := MaxIndex([]float64{2, 2}); i != 0 {
		t.Errorf("tie MaxIndex = %d", i)
	}
}
