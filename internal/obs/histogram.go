package obs

// Lock-free log-bucketed latency histograms. An observation is one atomic
// add into the bucket its magnitude selects plus one atomic add into the
// running sum — no locks, no allocation, ~20ns — so the serving hot paths
// can record every request, frame and stage unconditionally.
//
// Buckets are powers of two in microseconds: bucket i (i < histBuckets-1)
// holds observations d with d < 2^i µs and d >= 2^(i-1) µs (bucket 0 holds
// the sub-microsecond tail), so the finite upper bounds run 1µs, 2µs, 4µs,
// ... up to ~67s, with one overflow (+Inf) bucket above. Log spacing keeps
// the relative quantile error under a factor of two everywhere from
// microsecond cache hits to minute-long cold solves — the shape of data
// the warm-serving stack produces — in 28 words of memory.

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count; the last bucket is the +Inf overflow.
const histBuckets = 28

// bucketOf selects the bucket for one observation.
func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	us := uint64(d / time.Microsecond)
	i := bits.Len64(us)
	if i >= histBuckets-1 {
		return histBuckets - 1
	}
	return i
}

// BucketBound returns bucket i's inclusive upper bound in seconds
// (+Inf for the overflow bucket).
func BucketBound(i int) float64 {
	if i >= histBuckets-1 {
		return math.Inf(1)
	}
	return float64(uint64(1)<<uint(i)) / 1e6
}

// Histogram is one lock-free latency histogram. Obtain from
// Registry.Histogram; the nil Histogram discards observations, so
// uninstrumented call sites cost a nil check.
type Histogram struct {
	desc   desc
	counts [histBuckets]atomic.Uint64
	sumNS  atomic.Int64
}

// Observe records one duration. Safe on nil and for concurrent use.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.counts[bucketOf(d)].Add(1)
	h.sumNS.Add(int64(d))
}

// HistSnapshot is one consistent read of a histogram: per-bucket counts
// (not cumulative), their total, and the sum of observations.
type HistSnapshot struct {
	Counts [histBuckets]uint64
	Total  uint64
	SumNS  int64
}

// Snapshot reads the buckets once each. The total is derived from that
// single pass, so cumulative counts computed from a snapshot are monotone
// and end exactly at Total even when recording races the read; only SumNS
// is read separately and may lag or lead by in-flight observations.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Total += c
	}
	s.SumNS = h.sumNS.Load()
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) from the snapshot as the
// upper bound of the bucket holding it — a conservative estimate, at most
// 2x the true value by construction. It returns 0 on an empty snapshot and
// the largest finite bound when the quantile lands in the overflow bucket.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Total == 0 {
		return 0
	}
	target := uint64(q * float64(s.Total))
	if target < 1 {
		target = 1
	}
	if target > s.Total {
		target = s.Total
	}
	cum := uint64(0)
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if i >= histBuckets-1 {
				return time.Duration(uint64(1)<<uint(histBuckets-2)) * time.Microsecond
			}
			return time.Duration(uint64(1)<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(uint64(1)<<uint(histBuckets-2)) * time.Microsecond
}

// Mean returns the mean observation, or 0 when empty.
func (s HistSnapshot) Mean() time.Duration {
	if s.Total == 0 {
		return 0
	}
	return time.Duration(uint64(s.SumNS) / s.Total)
}

// Summary is the /statsz face of one histogram: count plus headline
// quantiles in milliseconds. Quantiles are log-bucket estimates (upper
// bucket bounds), not exact order statistics.
type Summary struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// Summarize renders the histogram's current Summary (zero on nil).
func (h *Histogram) Summarize() Summary {
	s := h.Snapshot()
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return Summary{
		Count:  s.Total,
		MeanMS: ms(s.Mean()),
		P50MS:  ms(s.Quantile(0.50)),
		P90MS:  ms(s.Quantile(0.90)),
		P99MS:  ms(s.Quantile(0.99)),
	}
}
