package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestBucketOf pins the bucket boundaries: bucket 0 is the sub-microsecond
// tail, bucket i holds durations in [2^(i-1), 2^i) microseconds, and
// everything at or beyond the last finite bound lands in the overflow.
func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-time.Second, 0},
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 1},
		{2 * time.Microsecond, 2},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 3},
		{1023 * time.Microsecond, 10},
		{1024 * time.Microsecond, 11},
		{time.Hour, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestBucketBound verifies the bounds double and the last is +Inf, and
// that every observation lands at or under its bucket's bound.
func TestBucketBound(t *testing.T) {
	if !math.IsInf(BucketBound(histBuckets-1), 1) {
		t.Fatalf("last bucket bound = %v, want +Inf", BucketBound(histBuckets-1))
	}
	for i := 1; i < histBuckets-1; i++ {
		if got, want := BucketBound(i), 2*BucketBound(i-1); got != want {
			t.Errorf("BucketBound(%d) = %v, want %v", i, got, want)
		}
	}
	for _, d := range []time.Duration{time.Nanosecond, time.Microsecond, 333 * time.Microsecond, 5 * time.Second} {
		b := bucketOf(d)
		if secs := d.Seconds(); secs > BucketBound(b) {
			t.Errorf("duration %v lands in bucket %d with bound %v < itself", d, b, BucketBound(b))
		}
	}
}

// TestHistogramSnapshotAndQuantile feeds a known distribution and checks
// total, mean, and the conservative (upper-bound) quantile estimates.
func TestHistogramSnapshotAndQuantile(t *testing.T) {
	var h Histogram
	// 90 fast observations at 3µs, 10 slow ones at 3ms.
	for i := 0; i < 90; i++ {
		h.Observe(3 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(3 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Total != 100 {
		t.Fatalf("Total = %d, want 100", s.Total)
	}
	wantSum := int64(90*3*time.Microsecond + 10*3*time.Millisecond)
	if s.SumNS != wantSum {
		t.Fatalf("SumNS = %d, want %d", s.SumNS, wantSum)
	}
	// p50 and p90 land in the 3µs bucket (bound 4µs); p99 in the 3ms
	// bucket (bound ~4.1ms). The estimate is the bucket's upper bound.
	if got := s.Quantile(0.50); got != 4*time.Microsecond {
		t.Errorf("p50 = %v, want 4µs", got)
	}
	if got := s.Quantile(0.90); got != 4*time.Microsecond {
		t.Errorf("p90 = %v, want 4µs", got)
	}
	if got := s.Quantile(0.99); got != 4096*time.Microsecond {
		t.Errorf("p99 = %v, want 4.096ms", got)
	}
	if got, want := s.Mean(), time.Duration(wantSum/100); got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
}

// TestHistogramEmptyAndNil pins the zero-value behaviors the serving code
// leans on: empty snapshots quantile to zero, and the nil histogram
// swallows observations without panicking.
func TestHistogramEmptyAndNil(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Total != 0 || s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatalf("empty histogram: Total=%d p99=%v mean=%v, want zeros", s.Total, s.Quantile(0.99), s.Mean())
	}
	var nilH *Histogram
	nilH.Observe(time.Second) // must not panic
	if s := nilH.Snapshot(); s.Total != 0 {
		t.Fatalf("nil histogram Total = %d, want 0", s.Total)
	}
	if sum := nilH.Summarize(); sum.Count != 0 {
		t.Fatalf("nil histogram Summarize count = %d, want 0", sum.Count)
	}
}

// TestHistogramSnapshotMonotoneUnderRace hammers one histogram from
// writers while snapshotting, asserting every snapshot's cumulative
// counts end exactly at its Total — the no-torn-scrape guarantee.
func TestHistogramSnapshotMonotoneUnderRace(t *testing.T) {
	var h Histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			d := time.Duration(seed+1) * time.Microsecond
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(d)
					h.Observe(d * 1000)
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		cum := uint64(0)
		for _, c := range s.Counts {
			cum += c
		}
		if cum != s.Total {
			t.Fatalf("snapshot %d: cumulative %d != Total %d", i, cum, s.Total)
		}
	}
	close(stop)
	wg.Wait()
}

func TestSummarize(t *testing.T) {
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Microsecond)
	}
	sum := h.Summarize()
	if sum.Count != 10 {
		t.Fatalf("Count = %d, want 10", sum.Count)
	}
	if sum.P50MS <= 0 || sum.P99MS < sum.P50MS || sum.P90MS < sum.P50MS {
		t.Fatalf("quantiles not ordered: %+v", sum)
	}
}
