// Package obs is the dispersald observability kernel: latency histograms,
// a counter/gauge registry with Prometheus text exposition, bounded rings
// of request traces, and request-ID plumbing — all stdlib-only, matching
// the module's zero-dependency rule.
//
// The kernel is built for hot paths. Histograms are lock-free
// (log-bucketed atomic counters, one add per observation), counters are a
// single atomic add, and traces append spans under a per-trace mutex that
// is never contended in the common one-goroutine-per-request shape.
// Everything is nil-safe: a nil *Registry hands out nil instruments whose
// methods no-op, so an uninstrumented build of the same call sites costs a
// nil check — which is exactly how `paperbench -obs-overhead` measures the
// instrumentation tax.
//
// Scrapes are wait-free with respect to recording: WritePrometheus reads
// each bucket once into a snapshot and derives the cumulative counts and
// totals from that snapshot, so a scrape concurrent with recording is
// internally consistent (cumulative buckets monotone, +Inf equal to the
// count) even though it may be mid-observation stale by one sample.
//
// Request IDs tie the pieces together: the server accepts or mints an
// X-Request-ID per request (NewRequestID), carries it in the context
// (WithRequestID/RequestID), stamps it on every structured log line and
// span trace, and propagates it on peer warm-state HTTP hops — so one slow
// request correlates across every replica it touched.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
)

// Label is one constant key=value pair attached to an instrument at
// registration (e.g. stage="decode"). Labels distinguish instruments of
// one family; they are fixed for the instrument's lifetime.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing count. The nil Counter discards.
type Counter struct {
	desc desc
	v    atomic.Int64
}

// Inc adds one. Safe on nil.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n < 0 is ignored — counters only go up). Safe on nil.
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value reads the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// gauge is a point-in-time reading supplied by a callback at scrape time —
// the cheap-`runtime`-read shape: nothing is recorded between scrapes.
type gauge struct {
	desc desc
	fn   func() float64
}

// desc is the identity of one instrument: its family name, help text and
// constant labels.
type desc struct {
	name   string
	help   string
	labels []Label
}

// key renders the registry identity (family name + rendered label set).
func (d desc) key() string { return d.name + renderLabels(d.labels, nil) }

// metricKind discriminates the exposition TYPE of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// family groups every instrument sharing one name; exposition emits HELP
// and TYPE once per family.
type family struct {
	name string
	kind metricKind
	help string

	counters   []*Counter
	gauges     []*gauge
	histograms []*Histogram
}

// Registry holds the process's instruments and renders them. Construct
// with NewRegistry; the nil Registry is a safe no-op factory (nil
// instruments, empty exposition), which is how uninstrumented baselines
// are built. All methods are safe for concurrent use, though instruments
// are normally all registered at construction time.
type Registry struct {
	mu       sync.Mutex
	families []*family          // registration order
	byFam    map[string]*family // family name -> entry
	byKey    map[string]any     // instrument identity -> instrument
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byFam: make(map[string]*family),
		byKey: make(map[string]any),
	}
}

// familyFor finds or creates name's family, enforcing one kind per family.
// Caller holds r.mu.
func (r *Registry) familyFor(name, help string, kind metricKind) *family {
	f, ok := r.byFam[name]
	if !ok {
		f = &family{name: name, kind: kind, help: help}
		r.byFam[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: family %s registered as two different kinds", name))
	}
	return f
}

// Counter registers (or returns the existing) counter name{labels...}.
// Safe on a nil registry, which returns the nil no-op counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	d := desc{name: name, help: help, labels: labels}
	if existing, ok := r.byKey[d.key()]; ok {
		return existing.(*Counter)
	}
	c := &Counter{desc: d}
	r.byKey[d.key()] = c
	f := r.familyFor(name, help, kindCounter)
	f.counters = append(f.counters, c)
	return c
}

// GaugeFunc registers a callback gauge: fn is read at every scrape. Safe
// on a nil registry (the registration is dropped).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	d := desc{name: name, help: help, labels: labels}
	if _, ok := r.byKey[d.key()]; ok {
		return
	}
	g := &gauge{desc: d, fn: fn}
	r.byKey[d.key()] = g
	f := r.familyFor(name, help, kindGauge)
	f.gauges = append(f.gauges, g)
}

// Histogram registers (or returns the existing) histogram name{labels...}.
// Safe on a nil registry, which returns the nil no-op histogram.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	d := desc{name: name, help: help, labels: labels}
	if existing, ok := r.byKey[d.key()]; ok {
		return existing.(*Histogram)
	}
	h := &Histogram{desc: d}
	r.byKey[d.key()] = h
	f := r.familyFor(name, help, kindHistogram)
	f.histograms = append(f.histograms, h)
	return h
}

// renderLabels renders a label set as {k="v",...} with extra appended
// last; it returns "" for an empty set. Values are escaped per the
// Prometheus text format (backslash, quote, newline).
func renderLabels(labels []Label, extra []Label) string {
	if len(labels)+len(extra) == 0 {
		return ""
	}
	out := "{"
	first := true
	emit := func(l Label) string {
		s := ""
		if !first {
			s = ","
		}
		first = false
		return s + l.Key + `="` + escapeLabel(l.Value) + `"`
	}
	for _, l := range labels {
		out += emit(l)
	}
	for _, l := range extra {
		out += emit(l)
	}
	return out + "}"
}

func escapeLabel(v string) string {
	needs := false
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' || v[i] == '"' || v[i] == '\n' {
			needs = true
			break
		}
	}
	if !needs {
		return v
	}
	out := make([]byte, 0, len(v)+4)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

// formatFloat renders a sample value; integers render without an exponent
// so counters read naturally.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ridAlphabetOK reports whether an externally supplied request ID is safe
// to echo into logs, headers and traces: ASCII letters, digits and a few
// separators only.
func ridAlphabetOK(id string) bool {
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == ':':
		default:
			return false
		}
	}
	return true
}

// RequestIDHeader is the HTTP header carrying the request ID: accepted or
// minted at ingress, echoed on the response, and propagated on peer
// warm-state hops so one request correlates across replicas.
const RequestIDHeader = "X-Request-ID"

// MaxRequestIDLen bounds an accepted X-Request-ID; longer (or otherwise
// unsafe) client values are replaced by a minted ID.
const MaxRequestIDLen = 64

// ridFallback feeds NewRequestID when the system randomness source fails —
// still unique within the process, which is all correlation needs.
var ridFallback atomic.Uint64

// NewRequestID mints a fresh 16-hex-character request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "r" + strconv.FormatUint(ridFallback.Add(1), 16)
	}
	return hex.EncodeToString(b[:])
}

// AcceptRequestID returns the client-supplied ID when it is usable
// (non-empty, bounded, safe alphabet) and a freshly minted one otherwise.
func AcceptRequestID(supplied string) string {
	if supplied != "" && len(supplied) <= MaxRequestIDLen && ridAlphabetOK(supplied) {
		return supplied
	}
	return NewRequestID()
}
