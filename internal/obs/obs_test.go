package obs

import (
	"strings"
	"testing"
)

// TestRegistryDedupe: registering the same name+labels twice must return
// the same instrument, and distinct label values distinct instruments.
func TestRegistryDedupe(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "help")
	if a != b {
		t.Fatal("identical registrations returned distinct counters")
	}
	c := r.Counter("x_total", "help", L("k", "v"))
	if c == a {
		t.Fatal("labeled registration returned the unlabeled counter")
	}
	h1 := r.Histogram("h_seconds", "help", L("stage", "a"))
	h2 := r.Histogram("h_seconds", "help", L("stage", "a"))
	h3 := r.Histogram("h_seconds", "help", L("stage", "b"))
	if h1 != h2 || h1 == h3 {
		t.Fatal("histogram dedupe by name+labels broken")
	}
}

// TestRegistryKindConflictPanics: one family name cannot carry two TYPEs.
func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering clash as a histogram after a counter did not panic")
		}
	}()
	r.Histogram("clash", "help")
}

// TestNilRegistry: the nil registry is the uninstrumented build — nil
// instruments, dropped gauges, no panics anywhere.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "h")
	if c != nil {
		t.Fatal("nil registry returned a live counter")
	}
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	h := r.Histogram("y", "h")
	if h != nil {
		t.Fatal("nil registry returned a live histogram")
	}
	r.GaugeFunc("z", "h", func() float64 { return 1 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition: err=%v out=%q, want empty", err, sb.String())
	}
}

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "h")
	c.Inc()
	c.Add(4)
	c.Add(-3) // counters only go up; negative adds are dropped
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
}

// TestNewRequestID: minted IDs are 16 hex chars and unique.
func TestNewRequestID(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if len(id) != 16 || !ridAlphabetOK(id) {
			t.Fatalf("minted ID %q: want 16 safe chars", id)
		}
		if seen[id] {
			t.Fatalf("minted ID %q repeated", id)
		}
		seen[id] = true
	}
}

// TestAcceptRequestID pins the accept-or-mint rules for client headers.
func TestAcceptRequestID(t *testing.T) {
	for _, ok := range []string{"abc", "A-b_c.d:e", "0123456789", strings.Repeat("x", MaxRequestIDLen)} {
		if got := AcceptRequestID(ok); got != ok {
			t.Errorf("AcceptRequestID(%q) = %q, want the supplied ID", ok, got)
		}
	}
	for _, bad := range []string{"", "has space", "quo\"te", "new\nline", "smuggl\r", strings.Repeat("x", MaxRequestIDLen+1), "émoji"} {
		got := AcceptRequestID(bad)
		if got == bad || len(got) != 16 || !ridAlphabetOK(got) {
			t.Errorf("AcceptRequestID(%q) = %q, want a freshly minted safe ID", bad, got)
		}
	}
}

func TestRenderLabelsEscaping(t *testing.T) {
	got := renderLabels([]Label{L("a", `x"y\z`)}, []Label{L("le", "+Inf")})
	want := `{a="x\"y\\z",le="+Inf"}`
	if got != want {
		t.Fatalf("renderLabels = %s, want %s", got, want)
	}
	if renderLabels(nil, nil) != "" {
		t.Fatal("empty label set should render as the empty string")
	}
}
