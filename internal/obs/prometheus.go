package obs

// Prometheus text exposition (text format 0.0.4): every registered family
// renders one # HELP line, one # TYPE line, then its samples, in
// registration order — no map iteration anywhere, so consecutive scrapes
// of an idle registry are byte-identical. Histograms render the standard
// cumulative _bucket{le=...} series (ending at le="+Inf" equal to _count),
// plus _sum and _count, all derived from one per-instrument snapshot so a
// scrape racing recorders is still internally monotone.

import (
	"bufio"
	"io"
	"math"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text format.
// Safe on a nil registry (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range families {
		bw.WriteString("# HELP " + f.name + " " + f.help + "\n")
		bw.WriteString("# TYPE " + f.name + " " + typeName(f.kind) + "\n")
		switch f.kind {
		case kindCounter:
			for _, c := range f.counters {
				bw.WriteString(f.name + renderLabels(c.desc.labels, nil) + " " +
					strconv.FormatInt(c.v.Load(), 10) + "\n")
			}
		case kindGauge:
			for _, g := range f.gauges {
				bw.WriteString(f.name + renderLabels(g.desc.labels, nil) + " " +
					formatFloat(g.fn()) + "\n")
			}
		case kindHistogram:
			for _, h := range f.histograms {
				writeHistogram(bw, f.name, h)
			}
		}
	}
	return bw.Flush()
}

func typeName(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// writeHistogram renders one instrument's cumulative bucket series, sum
// and count from a single snapshot.
func writeHistogram(w *bufio.Writer, name string, h *Histogram) {
	s := h.Snapshot()
	cum := uint64(0)
	for i := 0; i < histBuckets; i++ {
		cum += s.Counts[i]
		le := "+Inf"
		if b := BucketBound(i); !math.IsInf(b, 1) {
			le = formatFloat(b)
		}
		w.WriteString(name + "_bucket" + renderLabels(h.desc.labels, []Label{{Key: "le", Value: le}}) +
			" " + strconv.FormatUint(cum, 10) + "\n")
	}
	w.WriteString(name + "_sum" + renderLabels(h.desc.labels, nil) + " " +
		formatFloat(float64(s.SumNS)/1e9) + "\n")
	w.WriteString(name + "_count" + renderLabels(h.desc.labels, nil) + " " +
		strconv.FormatUint(s.Total, 10) + "\n")
}
