package obs

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWritePrometheusFormat renders one of each instrument kind and pins
// the exposition: HELP/TYPE per family in registration order, counter and
// gauge samples, cumulative histogram buckets ending at le="+Inf" ==
// _count.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_requests_total", "Requests served.", L("handler", "analyze"))
	c.Add(7)
	r.GaugeFunc("app_goroutines", "Live goroutines.", func() float64 { return 12 })
	h := r.Histogram("app_latency_seconds", "Request latency.", L("handler", "analyze"))
	h.Observe(3 * time.Microsecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(3 * time.Millisecond)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP app_requests_total Requests served.\n",
		"# TYPE app_requests_total counter\n",
		`app_requests_total{handler="analyze"} 7` + "\n",
		"# TYPE app_goroutines gauge\n",
		"app_goroutines 12\n",
		"# TYPE app_latency_seconds histogram\n",
		`app_latency_seconds_bucket{handler="analyze",le="+Inf"} 3` + "\n",
		`app_latency_seconds_count{handler="analyze"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// The 4µs bucket holds the two 3µs observations; the 3ms one lands by
	// the 0.004096 bound.
	if !strings.Contains(out, `app_latency_seconds_bucket{handler="analyze",le="4e-06"} 2`+"\n") {
		t.Fatalf("4µs cumulative bucket wrong:\n%s", out)
	}
	if !strings.Contains(out, `app_latency_seconds_bucket{handler="analyze",le="0.004096"} 3`+"\n") {
		t.Fatalf("4.096ms cumulative bucket wrong:\n%s", out)
	}

	// Registration order is deterministic: families appear in the order
	// they were first registered.
	iReq := strings.Index(out, "# HELP app_requests_total")
	iG := strings.Index(out, "# HELP app_goroutines")
	iH := strings.Index(out, "# HELP app_latency_seconds")
	if !(iReq < iG && iG < iH) {
		t.Fatalf("families out of registration order:\n%s", out)
	}

	// Idle registry: two scrapes are byte-identical.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Fatal("consecutive idle scrapes differ")
	}
}

// TestWritePrometheusMonotoneUnderRace scrapes while writers hammer the
// histogram, asserting every scrape's cumulative buckets are monotone and
// end exactly at _count — the wire-level no-torn-scrape guarantee.
func TestWritePrometheusMonotoneUnderRace(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("race_seconds", "h")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			d := time.Duration(seed+1) * 10 * time.Microsecond
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(d)
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		assertHistogramConsistent(t, sb.String(), "race_seconds")
	}
	close(stop)
	wg.Wait()
}

// assertHistogramConsistent parses one family's bucket series out of an
// exposition and asserts cumulative monotonicity and +Inf == _count.
func assertHistogramConsistent(t *testing.T, exposition, name string) {
	t.Helper()
	prev := int64(-1)
	inf := int64(-1)
	count := int64(-1)
	for _, line := range strings.Split(exposition, "\n") {
		switch {
		case strings.HasPrefix(line, name+"_bucket"):
			fields := strings.Fields(line)
			v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("bucket line %q: %v", line, err)
			}
			if v < prev {
				t.Fatalf("cumulative buckets not monotone: %d after %d in %q", v, prev, line)
			}
			prev = v
			if strings.Contains(line, `le="+Inf"`) {
				inf = v
			}
		case strings.HasPrefix(line, name+"_count"):
			fields := strings.Fields(line)
			v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("count line %q: %v", line, err)
			}
			count = v
		}
	}
	if inf < 0 || count < 0 {
		t.Fatalf("exposition missing +Inf bucket or _count for %s:\n%s", name, exposition)
	}
	if inf != count {
		t.Fatalf("+Inf bucket %d != _count %d (torn scrape)", inf, count)
	}
}
