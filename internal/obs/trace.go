package obs

// Span tracing: each request carries a Trace that records named spans
// (decode, queue wait, seed lookup, per-part solve, push enqueue, stream
// write) with start offsets and durations. Finished traces land in a
// bounded Ring of recent requests served on GET /tracez?min_ms=, newest
// first, so "where did the slow request spend its time" is answerable
// after the fact without a profiler attached.
//
// A trace belongs to one request and is touched by one goroutine at a
// time in practice; the per-trace mutex exists for the exceptions (a
// singleflight leader publishing while a follower parks) and is never
// contended enough to matter. Spans beyond maxSpansPerTrace are counted
// but not recorded — a 4096-frame trajectory keeps its histogram signal
// while its trace stays bounded.

import (
	"context"
	"sync"
	"time"
)

// maxSpansPerTrace bounds one trace's recorded spans; excess spans are
// tallied in TruncatedSpans instead.
const maxSpansPerTrace = 512

// SpanRecord is one recorded span in the /tracez wire form: offsets and
// durations in milliseconds relative to the trace start.
type SpanRecord struct {
	Name    string  `json:"name"`
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"dur_ms"`
}

// TraceRecord is one finished trace in the /tracez wire form.
type TraceRecord struct {
	RequestID string       `json:"request_id"`
	Op        string       `json:"op"`
	Start     time.Time    `json:"start"`
	TotalMS   float64      `json:"total_ms"`
	Spans     []SpanRecord `json:"spans"`
	// TruncatedSpans counts spans dropped beyond the per-trace bound.
	TruncatedSpans int `json:"truncated_spans,omitempty"`
}

// Trace accumulates one request's spans. Construct with NewTrace; the nil
// Trace discards everything, so uninstrumented paths share call sites.
type Trace struct {
	op    string
	rid   string
	start time.Time

	mu        sync.Mutex
	spans     []SpanRecord
	truncated int
}

// NewTrace starts a trace for one request. rid should already be in
// AcceptRequestID form.
func NewTrace(op, rid string) *Trace {
	return &Trace{op: op, rid: rid, start: time.Now()}
}

// RequestID returns the trace's request ID ("" on nil).
func (t *Trace) RequestID() string {
	if t == nil {
		return ""
	}
	return t.rid
}

// Span is one in-flight span; close it with End.
type Span struct {
	t     *Trace
	name  string
	start time.Time
}

// StartSpan opens a named span now. Safe on a nil trace (the span still
// measures, records nowhere).
func (t *Trace) StartSpan(name string) Span {
	return Span{t: t, name: name, start: time.Now()}
}

// End closes the span, records it, and returns its duration — callers
// typically feed that into a stage histogram as well.
func (sp Span) End() time.Duration {
	d := time.Since(sp.start)
	sp.record(d)
	return d
}

// EndAt closes the span with an explicit duration (used when the caller
// already measured).
func (sp Span) EndAt(d time.Duration) { sp.record(d) }

func (sp Span) record(d time.Duration) {
	t := sp.t
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpansPerTrace {
		t.truncated++
		return
	}
	t.spans = append(t.spans, SpanRecord{
		Name:    sp.name,
		StartMS: float64(sp.start.Sub(t.start)) / float64(time.Millisecond),
		DurMS:   float64(d) / float64(time.Millisecond),
	})
}

// Finish seals the trace into its wire record. Safe on nil (zero record).
func (t *Trace) Finish() TraceRecord {
	if t == nil {
		return TraceRecord{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return TraceRecord{
		RequestID:      t.rid,
		Op:             t.op,
		Start:          t.start,
		TotalMS:        float64(time.Since(t.start)) / float64(time.Millisecond),
		Spans:          append([]SpanRecord(nil), t.spans...),
		TruncatedSpans: t.truncated,
	}
}

// Ring is a bounded ring of recent finished traces. Construct with
// NewRing; the nil Ring discards. All methods are safe for concurrent use.
type Ring struct {
	mu   sync.Mutex
	buf  []TraceRecord
	next int
	n    int
}

// DefaultRingSize is the trace ring bound when NewRing is given a
// non-positive capacity.
const DefaultRingSize = 256

// NewRing builds a ring keeping the last capacity traces.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Ring{buf: make([]TraceRecord, capacity)}
}

// Add records a finished trace, evicting the oldest beyond capacity.
// Safe on nil.
func (r *Ring) Add(rec TraceRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// Snapshot returns up to limit recent traces whose total is at least
// minTotal, newest first (limit <= 0 means no limit; nil ring returns
// nothing).
func (r *Ring) Snapshot(minTotal time.Duration, limit int) []TraceRecord {
	if r == nil {
		return nil
	}
	minMS := float64(minTotal) / float64(time.Millisecond)
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceRecord, 0, r.n)
	for i := 0; i < r.n; i++ {
		rec := r.buf[(r.next-1-i+len(r.buf)*2)%len(r.buf)]
		if rec.TotalMS < minMS {
			continue
		}
		out = append(out, rec)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// requestIDKey carries the request ID through a context.
type requestIDKey struct{}

// traceKey carries the active trace through a context.
type traceKey struct{}

// WithRequestID returns ctx carrying rid.
func WithRequestID(ctx context.Context, rid string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, rid)
}

// RequestID extracts the request ID from ctx ("" when absent).
func RequestID(ctx context.Context) string {
	rid, _ := ctx.Value(requestIDKey{}).(string)
	return rid
}

// WithTrace returns ctx carrying the trace.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom extracts the active trace from ctx (nil when absent — and the
// nil trace is safe to span against).
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
