package obs

import (
	"context"
	"testing"
	"time"
)

// TestTraceSpans: spans record name, ordering and durations relative to
// the trace start, and Finish seals them with the request ID.
func TestTraceSpans(t *testing.T) {
	tr := NewTrace("analyze", "rid-1")
	sp := tr.StartSpan("decode")
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d < time.Millisecond {
		t.Fatalf("span duration %v, want >= 1ms", d)
	}
	tr.StartSpan("solve").EndAt(42 * time.Millisecond)

	rec := tr.Finish()
	if rec.RequestID != "rid-1" || rec.Op != "analyze" {
		t.Fatalf("record identity = %q/%q, want rid-1/analyze", rec.RequestID, rec.Op)
	}
	if len(rec.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(rec.Spans))
	}
	if rec.Spans[0].Name != "decode" || rec.Spans[1].Name != "solve" {
		t.Fatalf("span names = %q,%q", rec.Spans[0].Name, rec.Spans[1].Name)
	}
	if rec.Spans[1].DurMS != 42 {
		t.Fatalf("EndAt span duration = %v, want 42", rec.Spans[1].DurMS)
	}
	if rec.TotalMS < 1 {
		t.Fatalf("TotalMS = %v, want >= 1", rec.TotalMS)
	}
}

// TestTraceTruncation: spans beyond the per-trace bound are counted, not
// stored — a long trajectory keeps its trace bounded.
func TestTraceTruncation(t *testing.T) {
	tr := NewTrace("trajectory", "rid-2")
	for i := 0; i < maxSpansPerTrace+25; i++ {
		tr.StartSpan("frame").EndAt(time.Microsecond)
	}
	rec := tr.Finish()
	if len(rec.Spans) != maxSpansPerTrace {
		t.Fatalf("stored %d spans, want %d", len(rec.Spans), maxSpansPerTrace)
	}
	if rec.TruncatedSpans != 25 {
		t.Fatalf("TruncatedSpans = %d, want 25", rec.TruncatedSpans)
	}
}

// TestNilTrace: the nil trace is the uninstrumented path — spans still
// measure, nothing records, nothing panics.
func TestNilTrace(t *testing.T) {
	var tr *Trace
	if tr.RequestID() != "" {
		t.Fatal("nil trace has a request ID")
	}
	sp := tr.StartSpan("x")
	if d := sp.End(); d < 0 {
		t.Fatalf("nil-trace span measured %v", d)
	}
	if rec := tr.Finish(); rec.RequestID != "" || len(rec.Spans) != 0 {
		t.Fatalf("nil trace Finish = %+v, want zero record", rec)
	}
}

// TestRingNewestFirst: the ring returns newest first, honors min_ms
// filtering and the limit, and evicts beyond capacity.
func TestRingNewestFirst(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 6; i++ {
		r.Add(TraceRecord{RequestID: string(rune('a' - 1 + i)), TotalMS: float64(i)})
	}
	got := r.Snapshot(0, 0)
	if len(got) != 4 {
		t.Fatalf("ring of 4 returned %d records", len(got))
	}
	for i, want := range []string{"f", "e", "d", "c"} {
		if got[i].RequestID != want {
			t.Fatalf("snapshot[%d] = %q, want %q (newest first, oldest evicted)", i, got[i].RequestID, want)
		}
	}
	if got := r.Snapshot(5*time.Millisecond, 0); len(got) != 2 || got[0].RequestID != "f" {
		t.Fatalf("min filter returned %+v, want f,e", got)
	}
	if got := r.Snapshot(0, 1); len(got) != 1 || got[0].RequestID != "f" {
		t.Fatalf("limit=1 returned %+v, want just f", got)
	}
	var nilRing *Ring
	nilRing.Add(TraceRecord{})
	if nilRing.Snapshot(0, 0) != nil {
		t.Fatal("nil ring snapshot should be nil")
	}
}

// TestContextPlumbing: request ID and trace ride the context and come
// back out; absence yields the safe zero values.
func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if RequestID(ctx) != "" || TraceFrom(ctx) != nil {
		t.Fatal("empty context should carry no rid and no trace")
	}
	tr := NewTrace("op", "rid-3")
	ctx = WithTrace(WithRequestID(ctx, "rid-3"), tr)
	if RequestID(ctx) != "rid-3" {
		t.Fatalf("RequestID = %q, want rid-3", RequestID(ctx))
	}
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom did not return the stored trace")
	}
}
