// Package optimize provides the optimization machinery of the reproduction:
//
//   - MaxCoverage: the symmetric strategy p* maximizing Cover(p), derived
//     independently of the IFD pseudocode from the KKT conditions
//     f(x) * k * (1-p(x))^(k-1) = lambda via water-filling. Theorem 4 says
//     this must coincide with sigma*; the test suite asserts it does,
//     providing a numerical cross-check of the theorem.
//   - ProjectedGradient: generic maximization over the probability simplex.
//   - MaxWelfare: the symmetric strategy maximizing the players' expected
//     individual payoff sum_x p(x) * nu_p(x) — the "Welfare Optimum" (blue)
//     curve of Figure 1 — via multi-start projected gradient with a dense
//     grid fallback for two-site games.
package optimize

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"dispersal/internal/coverage"
	"dispersal/internal/ifd"
	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/solve"
	"dispersal/internal/strategy"
)

// Errors returned by the optimizers.
var (
	ErrPlayers = errors.New("optimize: player count k must be >= 1")
	ErrNoInit  = errors.New("optimize: no feasible starting point")
)

// MaxCoverage returns the symmetric strategy maximizing Cover(p) for the
// game (f, k), together with the KKT multiplier lambda (the common marginal
// coverage of all explored sites). It water-fills on lambda: explored sites
// satisfy p(x) = 1 - (lambda / (k f(x)))^(1/(k-1)).
func MaxCoverage(f site.Values, k int) (strategy.Strategy, float64, error) {
	if err := f.Validate(); err != nil {
		return nil, 0, err
	}
	if k < 1 {
		return nil, 0, fmt.Errorf("%w: k=%d", ErrPlayers, k)
	}
	m := len(f)
	if k == 1 {
		// Coverage is linear in p: optimum is the point mass on site 1.
		return strategy.Delta(m, 0), f[0], nil
	}
	// mass is strictly decreasing in lambda on (0, k*f(1)); mass(0+) = M >= 1
	// and mass(k*f(1)) = 0. Bisect mass(lambda) = 1 through the solver
	// core's shared excess bisection — the same loop the IFD nu search uses,
	// which both solvers used to re-derive inline.
	mass := fillMass(f, k)
	lambda, err := solve.BisectExcess(func(cand float64) (float64, error) {
		return mass(cand) - 1, nil
	}, 0, float64(k)*f[0], 1e-15)
	if err != nil {
		return nil, 0, err
	}
	p, err := fillStrategy(f, k, lambda)
	if err != nil {
		return nil, 0, err
	}
	return p, lambda, nil
}

// fillMass returns the water-filling mass function of (f, k): the total
// probability mass placed when the common marginal coverage is lambda.
func fillMass(f site.Values, k int) func(lambda float64) float64 {
	inv := 1 / float64(k-1)
	kf := float64(k)
	return func(lambda float64) float64 {
		var acc numeric.Accumulator
		for _, fx := range f {
			r := lambda / (kf * fx)
			if r >= 1 {
				continue
			}
			acc.Add(1 - math.Pow(r, inv))
		}
		return acc.Sum()
	}
}

// fillStrategy materializes the water-filled strategy at multiplier lambda.
func fillStrategy(f site.Values, k int, lambda float64) (strategy.Strategy, error) {
	inv := 1 / float64(k-1)
	kf := float64(k)
	p := make(strategy.Strategy, len(f))
	for x, fx := range f {
		r := lambda / (kf * fx)
		if r >= 1 {
			continue
		}
		p[x] = 1 - math.Pow(r, inv)
	}
	if _, err := p.Normalize(); err != nil {
		return nil, err
	}
	return p, nil
}

// maxCoverageWarmExpand grows the warm lambda bracket each time an endpoint
// fails its sign check; the growth is bounded before falling back cold.
const (
	maxCoverageWarmExpandFactor = 8
	maxCoverageWarmMaxExpand    = 6
)

// MaxCoverageWarm is MaxCoverage seeded from prev — the solver-core state
// of a previous solve of a nearby landscape — when prev carries a
// compatible optimum part (same site count and player count; coverage is
// policy-free, so a state produced under any policy qualifies). The lambda
// water-filling then starts from a drift-scaled bracket around the previous
// multiplier, verified by sign checks and refined with Brent's method,
// instead of bisecting the full [0, k*f(1)] range. The third result reports
// whether the warm path ran.
//
// A nil or incompatible prev, k = 1, and any warm bracket that fails to
// capture the new multiplier all fall back to the cold solver, so the
// result always matches MaxCoverage up to the solvers' shared numerical
// tolerance.
func MaxCoverageWarm(prev *solve.State, f site.Values, k int) (strategy.Strategy, float64, bool, error) {
	if k < 2 || !prev.CompatibleOpt(f, k) {
		p, lambda, err := MaxCoverage(f, k)
		return p, lambda, false, err
	}
	if err := f.Validate(); err != nil {
		return nil, 0, false, err
	}
	mass := fillMass(f, k)
	excess := func(lambda float64) float64 { return mass(lambda) - 1 }

	// Cold bracket bounds: excess(0) = M - 1 >= 0 and excess(k*f(1)) = -1,
	// so the warm bracket never needs to expand past them.
	loC, hiC := 0.0, float64(k)*f[0]
	prevL := prev.Lambda()
	w := (2*prev.Drift(f) + 1e-9) * (1 + math.Abs(prevL))
	lo := math.Max(loC, prevL-w)
	hi := math.Min(hiC, prevL+w)

	// Establish excess(lo) >= 0 >= excess(hi), expanding geometrically on
	// whichever side fails; a failed endpoint is a valid endpoint for the
	// other side by monotonicity.
	elo := excess(lo)
	ehi, ehiKnown := 0.0, false
	for i := 0; elo < 0 && i < maxCoverageWarmMaxExpand; i++ {
		hi, ehi, ehiKnown = lo, elo, true
		if numeric.EqualExact(lo, loC) { // expansion pinned at the clamp boundary
			break
		}
		w *= maxCoverageWarmExpandFactor
		lo = math.Max(loC, prevL-w)
		elo = excess(lo)
	}
	if !ehiKnown {
		ehi = excess(hi)
	}
	for i := 0; ehi > 0 && i < maxCoverageWarmMaxExpand; i++ {
		lo, elo = hi, ehi
		if numeric.EqualExact(hi, hiC) { // expansion pinned at the clamp boundary
			break
		}
		w *= maxCoverageWarmExpandFactor
		hi = math.Min(hiC, prevL+w)
		ehi = excess(hi)
	}
	coldFallback := func() (strategy.Strategy, float64, bool, error) {
		p, lambda, err := MaxCoverage(f, k)
		return p, lambda, false, err
	}
	if elo < 0 || ehi > 0 {
		return coldFallback()
	}

	var lambda float64
	switch {
	case elo == 0:
		lambda = lo
	case ehi == 0:
		lambda = hi
	default:
		root, err := numeric.BrentSeeded(excess, lo, hi, elo, ehi, 1e-15*(1+math.Abs(prevL)), 200)
		if err != nil {
			return coldFallback()
		}
		lambda = root
	}
	p, err := fillStrategy(f, k, lambda)
	if err != nil {
		return coldFallback()
	}
	return p, lambda, true, nil
}

// PGOptions configure ProjectedGradient.
type PGOptions struct {
	// MaxIter bounds the iteration count (default 2000).
	MaxIter int
	// Step is the initial step size (default 0.5); backtracking halves it
	// when a step fails to improve the objective.
	Step float64
	// Tol stops the iteration when the simplex-projected move has
	// infinity-norm below it (default 1e-12).
	Tol float64
}

func (o PGOptions) withDefaults() PGOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 2000
	}
	if o.Step <= 0 {
		o.Step = 0.5
	}
	if o.Tol <= 0 {
		o.Tol = 1e-12
	}
	return o
}

// ProjectedGradient maximizes obj over the probability simplex starting from
// init, using gradient ascent with Euclidean projection and backtracking
// line search. grad must write the gradient of obj at p into g.
func ProjectedGradient(obj func(p strategy.Strategy) float64,
	grad func(p strategy.Strategy, g []float64),
	init strategy.Strategy, opts PGOptions) (strategy.Strategy, float64) {
	return ProjectedGradientContext(context.Background(), obj, grad, init, opts)
}

// ProjectedGradientContext is ProjectedGradient under a context: when ctx is
// cancelled the ascent stops and the best point found so far is returned.
func ProjectedGradientContext(ctx context.Context, obj func(p strategy.Strategy) float64,
	grad func(p strategy.Strategy, g []float64),
	init strategy.Strategy, opts PGOptions) (strategy.Strategy, float64) {

	opts = opts.withDefaults()
	n := len(init)
	p := init.Clone()
	g := make([]float64, n)
	cand := make([]float64, n)
	proj := make([]float64, n)
	val := obj(p)
	step := opts.Step
	for iter := 0; iter < opts.MaxIter; iter++ {
		if iter%64 == 0 && ctx.Err() != nil {
			return p, val
		}
		grad(p, g)
		improved := false
		for try := 0; try < 40; try++ {
			for i := range cand {
				cand[i] = p[i] + step*g[i]
			}
			numeric.ProjectSimplex(cand, proj)
			v := obj(strategy.Strategy(proj))
			if v > val+1e-18 {
				// Accept.
				var move float64
				for i := range p {
					if d := math.Abs(proj[i] - p[i]); d > move {
						move = d
					}
				}
				copy(p, proj)
				val = v
				improved = true
				if move < opts.Tol {
					return p, val
				}
				// Gentle step growth after success.
				step = math.Min(step*1.5, 10)
				break
			}
			step /= 2
			if step < 1e-18 {
				return p, val
			}
		}
		if !improved {
			return p, val
		}
	}
	return p, val
}

// GeePrime returns dg/dq where g(q) = E[C(1 + Binomial(k-1, q))]:
//
//	g'(q) = (k-1) * ( E[C(2 + B)] - E[C(1 + B)] ),  B ~ Binomial(k-2, q),
//
// which is <= 0 for non-increasing C. Used by the welfare gradient.
func GeePrime(c policy.Congestion, k int, q float64) float64 {
	if k < 2 {
		return 0
	}
	var acc numeric.Accumulator
	for b := 0; b <= k-2; b++ {
		w := numeric.BinomialPMF(k-2, b, q)
		if w == 0 {
			continue
		}
		acc.Add(w * (c.At(b+2) - c.At(b+1)))
	}
	return float64(k-1) * acc.Sum()
}

// Welfare returns the symmetric individual welfare
// V(p) = sum_x p(x) * nu_p(x) for the game (f, k, C).
func Welfare(f site.Values, p strategy.Strategy, k int, c policy.Congestion) float64 {
	return coverage.ExpectedPayoff(f, p, p, k, c)
}

// MaxWelfare returns the symmetric strategy maximizing Welfare — the blue
// "Welfare Optimum" series in Figure 1 — and its welfare value.
//
// The objective is non-concave for general C, so the search multi-starts
// projected gradient from structured points (uniform, proportional, the
// IFD, vertex point masses) and nStarts seeded random draws; for two-site
// games a dense grid scan with golden-section refinement guards against
// missed local optima.
func MaxWelfare(f site.Values, k int, c policy.Congestion, nStarts int, seed uint64) (strategy.Strategy, float64, error) {
	return MaxWelfareContext(context.Background(), f, k, c, nStarts, seed)
}

// MaxWelfareContext is MaxWelfare under a context: cancellation is checked
// between restarts and inside the projected-gradient inner loop, so a
// deadline interrupts even a single long ascent.
func MaxWelfareContext(ctx context.Context, f site.Values, k int, c policy.Congestion, nStarts int, seed uint64) (strategy.Strategy, float64, error) {
	p, v, _, err := MaxWelfareWarm(ctx, nil, f, k, c, nStarts, seed)
	return p, v, err
}

// MaxWelfareWarm is MaxWelfareContext seeded from prev — the solver-core
// state of a previous solve of a nearby landscape. The welfare objective is
// non-concave and has no bracketed root to narrow, so warm-starting here
// means better start points rather than a smaller search interval: prev's
// equilibrium part (when compatible with (f, k, c)) replaces the multistart
// pool's own cold IFD solve — the one solver MaxWelfare still ran from
// scratch every call — and prev's coverage-optimum part (shape-compatible;
// coverage is policy-free) joins the pool, since the welfare optimum sits
// between the equilibrium and the coverage optimum for every congestion
// family in the paper. The third result reports whether any seeded start
// was used.
//
// Every other start (structured, vertex, random) is identical to the cold
// search, so the warm result matches the cold one whenever the seeded
// starts land in the same basins — in particular a state recorded by this
// exact game's own IFD solve reproduces the cold search bit for bit, and a
// nearby landscape's state moves the found optimum at most by the solver
// tolerance. A nil or incompatible prev runs exactly MaxWelfareContext.
func MaxWelfareWarm(ctx context.Context, prev *solve.State, f site.Values, k int, c policy.Congestion, nStarts int, seed uint64) (strategy.Strategy, float64, bool, error) {
	if err := f.Validate(); err != nil {
		return nil, 0, false, err
	}
	if k < 1 {
		return nil, 0, false, fmt.Errorf("%w: k=%d", ErrPlayers, k)
	}
	m := len(f)
	if k == 1 || m == 1 {
		return strategy.Delta(m, 0), f[0] * ifd.Gee(c, k, 1), false, nil
	}
	obj := func(p strategy.Strategy) float64 { return Welfare(f, p, k, c) }
	grad := func(p strategy.Strategy, g []float64) {
		for x := range p {
			q := p[x]
			g[x] = f[x] * (ifd.Gee(c, k, q) + q*GeePrime(c, k, q))
		}
	}

	starts := []strategy.Strategy{
		strategy.Uniform(m),
		strategy.UniformFirst(m, min(k, m)),
	}
	if prop, err := strategy.Proportional(f); err == nil {
		starts = append(starts, prop)
	}
	warmed := false
	if prev.CompatibleEq(f, k, c) {
		starts = append(starts, prev.Strategy())
		warmed = true
	} else if eq, _, err := ifd.Solve(f, k, c); err == nil {
		starts = append(starts, eq)
	}
	if prev.CompatibleOpt(f, k) {
		starts = append(starts, prev.OptRef().Clone())
		warmed = true
	}
	for x := 0; x < m && x < 4; x++ {
		starts = append(starts, strategy.Delta(m, x))
	}
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	for i := 0; i < nStarts; i++ {
		starts = append(starts, randomPoint(rng, m))
	}
	if len(starts) == 0 {
		return nil, 0, false, ErrNoInit
	}

	var best strategy.Strategy
	bestVal := math.Inf(-1)
	for _, s := range starts {
		if err := ctx.Err(); err != nil {
			return nil, 0, false, err
		}
		p, v := ProjectedGradientContext(ctx, obj, grad, s, PGOptions{})
		if v > bestVal {
			best, bestVal = p.Clone(), v
		}
	}

	if err := ctx.Err(); err != nil {
		return nil, 0, false, err
	}
	if m == 2 {
		// Exhaustive 1-D scan p = (q, 1-q), then golden-section refine.
		phi := func(q float64) float64 {
			return obj(strategy.Strategy{q, 1 - q})
		}
		bestQ, bestPhi := 0.0, phi(0)
		const grid = 4096
		for i := 1; i <= grid; i++ {
			q := float64(i) / grid
			if v := phi(q); v > bestPhi {
				bestQ, bestPhi = q, v
			}
		}
		lo := math.Max(0, bestQ-2.0/grid)
		hi := math.Min(1, bestQ+2.0/grid)
		q := goldenMax(phi, lo, hi, 1e-14)
		if v := phi(q); v > bestVal {
			best, bestVal = strategy.Strategy{q, 1 - q}, v
		}
	}
	return best, bestVal, warmed, nil
}

// goldenMax maximizes phi on [lo, hi] by golden-section search. The
// iteration budget mirrors solve.BisectExcess: the interval shrinks by the
// golden ratio per step, so 400 iterations are far beyond any reachable
// tolerance — the cap only guards against a tol below the local float
// spacing, where b-a stops shrinking and the loop would otherwise spin
// forever (the ctxloop gate).
func goldenMax(phi func(float64) float64, lo, hi, tol float64) float64 {
	const invPhi = 0.6180339887498949
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := phi(c), phi(d)
	for iter := 0; iter < 400 && b-a > tol; iter++ {
		if fc > fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = phi(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = phi(d)
		}
	}
	return (a + b) / 2
}

func randomPoint(rng *rand.Rand, m int) strategy.Strategy {
	w := make([]float64, m)
	for i := range w {
		w[i] = rng.ExpFloat64()
		if w[i] <= 0 {
			w[i] = 1e-9
		}
	}
	p, err := strategy.FromWeights(w)
	if err != nil {
		return strategy.Uniform(m)
	}
	return p
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
