package optimize

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"dispersal/internal/coverage"
	"dispersal/internal/ifd"
	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/strategy"
)

// TestTheorem4MaxCoverageEqualsSigmaStar is the numerical heart of the
// reproduction: the water-filling coverage optimizer (derived from KKT, with
// no reference to equilibrium) must produce exactly the IFD sigma* of the
// exclusive policy, as Theorem 4 asserts.
func TestTheorem4MaxCoverageEqualsSigmaStar(t *testing.T) {
	rng := rand.New(rand.NewPCG(2018, 5))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.IntN(40)
		k := 2 + rng.IntN(15)
		f := site.Random(rng, m, 0.05, 5)
		pStar, _, err := MaxCoverage(f, k)
		if err != nil {
			t.Fatal(err)
		}
		sigma, _, err := ifd.Exclusive(f, k)
		if err != nil {
			t.Fatal(err)
		}
		if d := pStar.LInf(sigma); d > 1e-9 {
			t.Fatalf("M=%d k=%d: optimizer and sigma* differ by %v", m, k, d)
		}
	}
}

func TestMaxCoverageBeatsAlternatives(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 1))
	for trial := 0; trial < 40; trial++ {
		m := 2 + rng.IntN(20)
		k := 1 + rng.IntN(8)
		f := site.Random(rng, m, 0.1, 3)
		pStar, _, err := MaxCoverage(f, k)
		if err != nil {
			t.Fatal(err)
		}
		best := coverage.Cover(f, pStar, k)
		rivals := []strategy.Strategy{
			strategy.Uniform(m),
			strategy.UniformFirst(m, k),
			strategy.Delta(m, 0),
		}
		if prop, err := strategy.Proportional(f); err == nil {
			rivals = append(rivals, prop)
		}
		for i := 0; i < 5; i++ {
			rivals = append(rivals, randomPoint(rng, m))
		}
		for _, r := range rivals {
			if c := coverage.Cover(f, r, k); c > best+1e-9 {
				t.Fatalf("M=%d k=%d: rival coverage %v beats optimum %v", m, k, c, best)
			}
		}
	}
}

func TestMaxCoverageKOne(t *testing.T) {
	f := site.Values{3, 2, 1}
	p, lambda, err := MaxCoverage(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 1 {
		t.Errorf("k=1 optimum = %v, want delta on best site", p)
	}
	if lambda != 3 {
		t.Errorf("lambda = %v", lambda)
	}
}

func TestMaxCoverageErrors(t *testing.T) {
	if _, _, err := MaxCoverage(site.Values{1, 2}, 3); err == nil {
		t.Error("unsorted accepted")
	}
	if _, _, err := MaxCoverage(site.Values{1}, 0); !errors.Is(err, ErrPlayers) {
		t.Error("k=0 accepted")
	}
}

func TestMaxCoverageObservationOne(t *testing.T) {
	// Observation 1: Cover(p*) > (1 - 1/e) * sum_{x<=k} f(x).
	rng := rand.New(rand.NewPCG(6, 6))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.IntN(40)
		k := 1 + rng.IntN(12)
		f := site.Random(rng, m, 0.05, 5)
		p, _, err := MaxCoverage(f, k)
		if err != nil {
			t.Fatal(err)
		}
		if got, bound := coverage.Cover(f, p, k), coverage.ObservationOneBound(f, k); got <= bound {
			t.Fatalf("M=%d k=%d: Cover(p*) = %v <= bound %v", m, k, got, bound)
		}
	}
}

func TestProjectedGradientQuadratic(t *testing.T) {
	// Maximize -(p - target)^2: optimum is the projection of target.
	target := []float64{0.7, 0.2, 0.1}
	obj := func(p strategy.Strategy) float64 {
		var s float64
		for i := range p {
			d := p[i] - target[i]
			s -= d * d
		}
		return s
	}
	grad := func(p strategy.Strategy, g []float64) {
		for i := range p {
			g[i] = -2 * (p[i] - target[i])
		}
	}
	p, v := ProjectedGradient(obj, grad, strategy.Uniform(3), PGOptions{})
	for i := range target {
		if !numeric.AlmostEqual(p[i], target[i], 1e-6) {
			t.Errorf("p = %v, want %v (val %v)", p, target, v)
			break
		}
	}
}

func TestProjectedGradientRespectsSimplex(t *testing.T) {
	// Unbounded linear objective must still end on the simplex vertex.
	obj := func(p strategy.Strategy) float64 { return p[0] }
	grad := func(p strategy.Strategy, g []float64) { g[0], g[1] = 1, 0 }
	p, v := ProjectedGradient(obj, grad, strategy.Uniform(2), PGOptions{})
	if !numeric.AlmostEqual(v, 1, 1e-9) || !numeric.AlmostEqual(p[0], 1, 1e-9) {
		t.Errorf("p = %v, v = %v; want vertex", p, v)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("left the simplex: %v", err)
	}
}

func TestGeePrimeMatchesFiniteDifference(t *testing.T) {
	for _, c := range policy.Standard() {
		for _, k := range []int{2, 3, 7} {
			for _, q := range []float64{0.1, 0.35, 0.8} {
				h := 1e-6
				fd := (ifd.Gee(c, k, q+h) - ifd.Gee(c, k, q-h)) / (2 * h)
				got := GeePrime(c, k, q)
				if !numeric.AlmostEqual(got, fd, 1e-4) {
					t.Errorf("%s k=%d q=%v: GeePrime=%v, fd=%v", c.Name(), k, q, got, fd)
				}
			}
		}
	}
}

func TestGeePrimeNonPositive(t *testing.T) {
	for _, c := range policy.Standard() {
		for _, q := range numeric.Linspace(0, 1, 21) {
			if g := GeePrime(c, 6, q); g > 1e-12 {
				t.Errorf("%s: g'(%v) = %v > 0", c.Name(), q, g)
			}
		}
	}
}

func TestGeePrimeKOne(t *testing.T) {
	if got := GeePrime(policy.Sharing{}, 1, 0.5); got != 0 {
		t.Errorf("k=1 derivative = %v", got)
	}
}

func TestMaxWelfareExclusiveTwoSites(t *testing.T) {
	// Under Cexc with k=2, welfare V(p) = sum f(x) p(x)(1-p(x)). For
	// f=(1,s): V(q) = q(1-q)(1+s), maximized at q=1/2 with V=(1+s)/4.
	for _, s := range []float64{0.3, 0.5} {
		f := site.TwoSite(s)
		p, v, err := MaxWelfare(f, 2, policy.Exclusive{}, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqual(p[0], 0.5, 1e-6) {
			t.Errorf("f2=%v: argmax = %v, want 0.5", s, p[0])
		}
		if want := (1 + s) / 4; !numeric.AlmostEqual(v, want, 1e-9) {
			t.Errorf("f2=%v: welfare = %v, want %v", s, v, want)
		}
	}
}

func TestMaxWelfareConstantPolicy(t *testing.T) {
	// C == 1: welfare = sum p(x) f(x), maximized by the point mass on the
	// best site with value f(1).
	f := site.TwoSite(0.4)
	p, v, err := MaxWelfare(f, 2, policy.Constant{}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(v, 1, 1e-9) {
		t.Errorf("welfare = %v, want 1 (p=%v)", v, p)
	}
}

func TestMaxWelfareBeatsIFDPayoff(t *testing.T) {
	// The welfare optimum is at least the symmetric-equilibrium payoff.
	rng := rand.New(rand.NewPCG(8, 3))
	for trial := 0; trial < 12; trial++ {
		m := 2 + rng.IntN(5)
		k := 2 + rng.IntN(4)
		f := site.Random(rng, m, 0.2, 2)
		for _, c := range []policy.Congestion{policy.Exclusive{}, policy.Sharing{}, policy.TwoPoint{C2: -0.3}} {
			eq, _, err := ifd.Solve(f, k, c)
			if err != nil {
				t.Fatal(err)
			}
			eqWelfare := Welfare(f, eq, k, c)
			_, v, err := MaxWelfare(f, k, c, 6, uint64(trial))
			if err != nil {
				t.Fatal(err)
			}
			if v < eqWelfare-1e-7 {
				t.Fatalf("%s M=%d k=%d: MaxWelfare %v < IFD welfare %v", c.Name(), m, k, v, eqWelfare)
			}
		}
	}
}

func TestMaxWelfareDegenerate(t *testing.T) {
	p, v, err := MaxWelfare(site.Values{2}, 3, policy.Sharing{}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 1 || !numeric.AlmostEqual(v, 2.0/3, 1e-9) {
		t.Errorf("single site: p=%v v=%v", p, v)
	}
	if _, _, err := MaxWelfare(site.Values{1}, 0, policy.Sharing{}, 2, 1); !errors.Is(err, ErrPlayers) {
		t.Error("k=0 accepted")
	}
}

func TestGoldenMax(t *testing.T) {
	got := goldenMax(func(x float64) float64 { return -(x - 0.3) * (x - 0.3) }, 0, 1, 1e-12)
	if math.Abs(got-0.3) > 1e-9 {
		t.Errorf("goldenMax = %v, want 0.3", got)
	}
}

func TestWelfareMatchesCoveragePackage(t *testing.T) {
	f := site.TwoSite(0.5)
	p := strategy.Strategy{0.6, 0.4}
	got := Welfare(f, p, 2, policy.Sharing{})
	want := coverage.ExpectedPayoff(f, p, p, 2, policy.Sharing{})
	if got != want {
		t.Errorf("Welfare = %v, ExpectedPayoff = %v", got, want)
	}
}
