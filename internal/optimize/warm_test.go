package optimize

import (
	"math"
	"math/rand/v2"
	"testing"

	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/solve"
	"dispersal/internal/strategy"
)

// optState packages a MaxCoverage result the way the solver core carries it.
func optState(f site.Values, k int, p strategy.Strategy, lambda float64) *solve.State {
	return solve.New(f, k, policy.Sharing{}).WithOpt(p, lambda, false)
}

// TestMaxCoverageWarmMatchesColdOnDrift chains the warm water-filling along
// drifting landscapes and checks every frame against the cold solver.
func TestMaxCoverageWarmMatchesColdOnDrift(t *testing.T) {
	for _, k := range []int{2, 5, 17} {
		base := site.Geometric(20, 1, 0.88)
		var prev *solve.State
		for frame := 0; frame < 32; frame++ {
			f := site.Values(site.Drifted(base, frame, 0.03))
			coldP, coldL, err := MaxCoverage(f, k)
			if err != nil {
				t.Fatalf("k=%d frame %d cold: %v", k, frame, err)
			}
			warmP, warmL, warmed, err := MaxCoverageWarm(prev, f, k)
			if err != nil {
				t.Fatalf("k=%d frame %d warm: %v", k, frame, err)
			}
			if frame > 0 && !warmed {
				t.Fatalf("k=%d frame %d: warm path did not engage", k, frame)
			}
			if d := math.Abs(warmL-coldL) / (1 + math.Abs(coldL)); d > 1e-9 {
				t.Fatalf("k=%d frame %d: lambda diverged by %g", k, frame, d)
			}
			if d := warmP.LInf(coldP); d > 1e-7 {
				t.Fatalf("k=%d frame %d: strategies diverged by %g", k, frame, d)
			}
			prev = optState(f, k, warmP, warmL)
		}
	}
}

// TestMaxCoverageWarmFarSeedFallsBack hands the warm solver a state from a
// radically different landscape: the drift-scaled bracket may miss, but the
// verified sign checks and the cold fallback must keep the answer right.
func TestMaxCoverageWarmFarSeedFallsBack(t *testing.T) {
	k := 6
	far := site.Values{1000, 900, 800, 700, 600, 500, 400, 300}
	farP, farL, err := MaxCoverage(far, k)
	if err != nil {
		t.Fatal(err)
	}
	near := site.Values(site.Geometric(8, 1, 0.5))
	coldP, coldL, err := MaxCoverage(near, k)
	if err != nil {
		t.Fatal(err)
	}
	warmP, warmL, _, err := MaxCoverageWarm(optState(far, k, farP, farL), near, k)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(warmL-coldL) / (1 + coldL); d > 1e-9 {
		t.Fatalf("far-seeded lambda diverged by %g (%v vs %v)", d, warmL, coldL)
	}
	if d := warmP.LInf(coldP); d > 1e-7 {
		t.Fatalf("far-seeded strategy diverged by %g", d)
	}
}

// TestMaxCoverageWarmRandomShapes fuzzes random landscapes and random (even
// adversarially wrong) lambda seeds: correctness must never depend on the
// seed's quality.
func TestMaxCoverageWarmRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	for trial := 0; trial < 60; trial++ {
		m := 2 + rng.IntN(12)
		k := 2 + rng.IntN(9)
		raw := make([]float64, m)
		for i := range raw {
			raw[i] = math.Exp(2 * rng.NormFloat64())
		}
		f := site.Values(site.Sorted(raw))
		coldP, coldL, err := MaxCoverage(f, k)
		if err != nil {
			t.Fatalf("trial %d cold: %v", trial, err)
		}
		seedP := coldP.Clone()
		seedL := coldL * math.Exp(3*rng.NormFloat64()) // wildly scaled seed
		warmP, warmL, _, err := MaxCoverageWarm(optState(f, k, seedP, seedL), f, k)
		if err != nil {
			t.Fatalf("trial %d warm: %v", trial, err)
		}
		if d := math.Abs(warmL-coldL) / (1 + math.Abs(coldL)); d > 1e-8 {
			t.Fatalf("trial %d (m=%d k=%d): lambda diverged by %g", trial, m, k, d)
		}
		if d := warmP.LInf(coldP); d > 1e-6 {
			t.Fatalf("trial %d (m=%d k=%d): strategy diverged by %g", trial, m, k, d)
		}
	}
}

// TestMaxCoverageWarmIncompatibleSeeds verifies the gates: nil, k = 1 and
// shape mismatches run cold with warmed = false and bit-identical results.
func TestMaxCoverageWarmIncompatibleSeeds(t *testing.T) {
	f := site.Values{1, 0.7, 0.4}
	coldP, coldL, err := MaxCoverage(f, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		prev *solve.State
		k    int
	}{
		{"nil", nil, 3},
		{"eq-only part", solve.New(f, 3, policy.Sharing{}).WithEq(coldP, 0.2, false), 3},
		{"wrong k", optState(f, 4, coldP, coldL), 3},
		{"wrong sites", optState(site.Values{1, 0.5}, 3, strategy.Strategy{0.6, 0.4}, coldL), 3},
		{"k=1", optState(f, 1, coldP, coldL), 1},
	} {
		p, lambda, warmed, err := MaxCoverageWarm(tc.prev, f, tc.k)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if warmed {
			t.Fatalf("%s: warm path engaged without a compatible seed", tc.name)
		}
		if tc.k == 3 && (lambda != coldL || p.LInf(coldP) != 0) {
			t.Fatalf("%s: fallback is not bit-identical to cold", tc.name)
		}
	}
}
