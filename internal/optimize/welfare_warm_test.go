package optimize

// Warm/cold equivalence of the seeded welfare search: MaxWelfareWarm must
// find the same welfare optimum as the cold multistart, whatever state
// seeds it — the last cold multi-start solver of the pipeline gets the same
// guarantee as the bracketed ones.

import (
	"context"
	"math"
	"testing"

	"dispersal/internal/ifd"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/solve"
)

// welfarePolicies spans the congestion families whose welfare landscapes
// differ qualitatively (strict decay, equal sharing, two-point plateaus,
// collision penalties).
func welfarePolicies() []policy.Congestion {
	return []policy.Congestion{
		policy.Sharing{},
		policy.TwoPoint{C2: 0.3},
		policy.PowerLaw{Beta: 1.5},
		policy.Cooperative{Gamma: 0.85},
		policy.Aggressive{Penalty: 0.25},
	}
}

// TestMaxWelfareWarmMatchesColdOnDrift: a state solved on a nearby (±2%
// drifted) landscape seeds the search; the found welfare value must match
// the cold search's within solver tolerance, and the warm path must have
// engaged.
func TestMaxWelfareWarmMatchesColdOnDrift(t *testing.T) {
	ctx := context.Background()
	const k, nStarts, seed = 6, 4, 7
	base := site.Values(site.Geometric(10, 1, 0.85))
	for _, c := range welfarePolicies() {
		t.Run(c.Name(), func(t *testing.T) {
			drifted := site.Values(site.Drifted(base, 3, 0.02))
			_, _, prev, err := ifd.SolveWarm(ctx, nil, drifted, k, c)
			if err != nil {
				t.Fatal(err)
			}
			opt, lambda, err := MaxCoverage(drifted, k)
			if err != nil {
				t.Fatal(err)
			}
			prev = prev.WithOpt(opt, lambda, false)
			if !prev.HasEq() || !prev.HasOpt() {
				t.Fatalf("seed state incomplete: eq=%v opt=%v", prev.HasEq(), prev.HasOpt())
			}

			pCold, vCold, err := MaxWelfareContext(ctx, base, k, c, nStarts, seed)
			if err != nil {
				t.Fatal(err)
			}
			pWarm, vWarm, warmed, err := MaxWelfareWarm(ctx, prev, base, k, c, nStarts, seed)
			if err != nil {
				t.Fatal(err)
			}
			if !warmed {
				t.Fatal("compatible seed did not engage the warm path")
			}
			if d := math.Abs(vWarm-vCold) / (1 + math.Abs(vCold)); d > 1e-6 {
				t.Fatalf("welfare diverged: warm %v vs cold %v (rel %g)", vWarm, vCold, d)
			}
			if err := pWarm.Validate(); err != nil {
				t.Fatal(err)
			}
			_ = pCold
		})
	}
}

// TestMaxWelfareWarmOwnStateIsExact: seeding with the exact game's own
// equilibrium state reproduces the cold search bit for bit — the seeded
// start IS the cold search's internal IFD solve.
func TestMaxWelfareWarmOwnStateIsExact(t *testing.T) {
	ctx := context.Background()
	const k, nStarts, seed = 5, 4, 11
	f := site.Values(site.Geometric(8, 1, 0.8))
	c := policy.Sharing{}
	eq, nu, st, err := ifd.SolveWarm(ctx, nil, f, k, c)
	if err != nil {
		t.Fatal(err)
	}
	_ = eq
	_ = nu
	pCold, vCold, err := MaxWelfareContext(ctx, f, k, c, nStarts, seed)
	if err != nil {
		t.Fatal(err)
	}
	pWarm, vWarm, warmed, err := MaxWelfareWarm(ctx, st, f, k, c, nStarts, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !warmed {
		t.Fatal("own state did not engage the warm path")
	}
	if vWarm != vCold {
		t.Fatalf("welfare differs on identical starts: %v vs %v", vWarm, vCold)
	}
	for i := range pCold {
		if pCold[i] != pWarm[i] {
			t.Fatalf("strategy differs at site %d: %v vs %v", i+1, pCold[i], pWarm[i])
		}
	}
}

// TestMaxWelfareWarmIncompatibleSeedsFallBack: wrong shape, player count or
// policy must leave the search cold and unchanged.
func TestMaxWelfareWarmIncompatibleSeeds(t *testing.T) {
	ctx := context.Background()
	const k, nStarts, seed = 4, 3, 3
	f := site.Values(site.Geometric(6, 1, 0.8))
	c := policy.Sharing{}
	pCold, vCold, err := MaxWelfareContext(ctx, f, k, c, nStarts, seed)
	if err != nil {
		t.Fatal(err)
	}
	otherShape := solve.New(site.Values{1, 0.5}, k, c).
		WithEq([]float64{0.7, 0.3}, 0.2, false).WithOpt([]float64{0.6, 0.4}, 0.5, false)
	otherK := solve.New(f, k+1, c)
	for name, prev := range map[string]*solve.State{
		"nil": nil, "other shape": otherShape, "other k (empty parts)": otherK,
	} {
		pWarm, vWarm, warmed, err := MaxWelfareWarm(ctx, prev, f, k, c, nStarts, seed)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if warmed {
			t.Fatalf("%s: incompatible seed reported warm", name)
		}
		if vWarm != vCold {
			t.Fatalf("%s: fallback changed the welfare: %v vs %v", name, vWarm, vCold)
		}
		if d := pWarm.LInf(pCold); d != 0 {
			t.Fatalf("%s: fallback changed the strategy (LInf %g)", name, d)
		}
	}
}
