package peer

import (
	"context"
	"testing"

	"dispersal/internal/warmcache"
)

// TestCloseIsSafeAndNonTerminal: Close must tolerate a nil client, tolerate
// repetition, and leave the client usable — it drops idle connections, it
// does not retire the client.
func TestCloseIsSafeAndNonTerminal(t *testing.T) {
	var nilClient *Client
	nilClient.Close() // must not panic

	cache := warmcache.New(8)
	cache.Store("warm:k", testState(0.4))
	srv, reqs := donor(t, cache)

	c := NewClient(Config{Peers: []string{srv.URL}})
	if st := c.Fetch(context.Background(), "warm:k"); st == nil {
		t.Fatal("fetch before Close missed")
	}
	c.Close()
	c.Close() // idempotent
	if st := c.Fetch(context.Background(), "warm:k"); st == nil {
		t.Fatal("fetch after Close missed; Close must only drop idle connections")
	}
	if got := reqs.Load(); got != 2 {
		t.Fatalf("donor saw %d requests, want 2", got)
	}
	c.Close()
}
