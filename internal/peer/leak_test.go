package peer

import (
	"testing"

	"dispersal/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine running —
// typically an HTTP keep-alive reader from a Client nobody closed.
func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
