// Package peer is the warm-state federation layer of dispersald: the
// client/server machinery that lets replicas serving the same drifting
// landscapes exchange solver-core states (internal/solve.State) instead of
// each re-solving cold what a sibling already solved.
//
// The exchange has a pull side and a push side, both on /v1/warmstate.
// GET ?key=<LocalityKey> (Handler) answers the statewire encoding of the
// replica's newest cached state for that locality bucket, or 404. POST
// (Pusher.Handler, push.go) receives a statewire push envelope — a batch
// of keyed states another replica replicated here proactively.
//
// The client half is Client: on a local warm-cache miss a replica fetches
// the key from the fleet under one bounded timeout. With a consistent-hash
// ring configured (Config.Ring, the -fleet topology) the fetch is
// ownership-routed: only the key's owner is asked — O(1) fan-out however
// large the fleet — with one successor fallback when the owner errors (a
// clean 404 from the owner ends the round; the owner is authoritative).
// Without a ring (the legacy -peers topology) the client polls every
// configured peer in turn. Concurrent misses on one key collapse onto a
// single round (singleflight), and a key the fleet could not answer is
// memoized negatively for a short TTL — with expired entries swept on a
// TTL cadence and a hard cap, so a churning keyspace cannot grow the memo
// without bound.
//
// Federation is strictly best-effort, inheriting the warm tier's safety
// story: a peer that is down, slow, lying or speaking a future wire version
// costs at most one timeout and a cold solve — every state a peer returns
// is only ever a verified warm seed. No replica ever blocks its own solve
// on another replica beyond the configured timeout.
package peer

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dispersal/internal/obs"
	"dispersal/internal/ring"
	"dispersal/internal/solve"
	"dispersal/internal/statewire"
)

// NormalizeAddr canonicalizes one replica address: whitespace trimmed, an
// http:// scheme added when none is present, trailing slashes dropped. The
// empty string stays empty. Every layer that names replicas — the ring's
// member IDs, the client's peer list, the pusher's targets — must agree on
// this form, or routing silently degrades to cold solving.
func NormalizeAddr(s string) string {
	s = strings.TrimSpace(s)
	if s == "" {
		return ""
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return strings.TrimRight(s, "/")
}

// NormalizeAddrs maps NormalizeAddr over a list, dropping entries that
// normalize to empty.
func NormalizeAddrs(addrs []string) []string {
	out := make([]string, 0, len(addrs))
	for _, a := range addrs {
		if n := NormalizeAddr(a); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// WarmStatePath is the exchange endpoint's URL path.
const WarmStatePath = "/v1/warmstate"

// Source is the donor side's view of a warm cache: a recency- and
// counter-neutral read of one locality bucket's candidates, newest first
// (warmcache.Cache.Peek).
type Source interface {
	Peek(key string) []*solve.State
}

// Handler serves GET WarmStatePath?key=<LocalityKey> from src: 200 with the
// newest candidate's statewire bytes on a hit, 404 on a miss, 400 on a
// missing key. Candidates beyond the newest stay local — within one
// locality bucket they are near-duplicates, not worth the extra bytes.
//
// Every served pull is logged with the caller's propagated X-Request-ID,
// so the request that caused a cross-replica fetch correlates in both
// replicas' logs. A nil logger discards.
func Handler(src Source, logger *slog.Logger) http.HandlerFunc {
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get("key")
		if key == "" {
			http.Error(w, "missing key parameter", http.StatusBadRequest)
			return
		}
		rid := r.Header.Get(obs.RequestIDHeader)
		for _, st := range src.Peek(key) {
			enc, err := statewire.Encode(st)
			if err != nil {
				continue
			}
			logger.Info("warmstate pull served", "rid", rid, "key", key, "hit", true)
			w.Header().Set("Content-Type", "application/octet-stream")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(enc)
			return
		}
		logger.Info("warmstate pull served", "rid", rid, "key", key, "hit", false)
		http.Error(w, "no warm state for key", http.StatusNotFound)
	}
}

// Stats is a point-in-time snapshot of a Client's counters.
type Stats struct {
	// Hits counts fetches answered by some peer with a decodable state.
	Hits int64 `json:"hits"`
	// Misses counts fetch rounds where every peer answered 404 (or failed).
	Misses int64 `json:"misses"`
	// Errors counts individual peer requests that failed: transport errors,
	// timeouts, unexpected statuses, undecodable payloads.
	Errors int64 `json:"errors"`
	// NegativeMemoHits counts fetches suppressed by the negative-result
	// memo before any network traffic.
	NegativeMemoHits int64 `json:"negative_memo_hits"`
	// Fallbacks counts ownership-routed rounds that moved past the key's
	// owner to a successor because the owner errored (never because it
	// answered a clean 404). Always zero without a ring.
	Fallbacks int64 `json:"fallbacks"`
	// LatencyMSTotal accumulates the wall time of all fetch rounds that
	// went to the network, in milliseconds. Do not divide by Hits+Misses
	// yourself — a fresh client has zero rounds; LatencyMSMean carries the
	// zero-guarded quotient.
	LatencyMSTotal float64 `json:"latency_ms_total"`
	// LatencyMSMean is the mean network round latency in milliseconds:
	// LatencyMSTotal over Hits+Misses, or 0 before any round has run.
	LatencyMSMean float64 `json:"latency_ms_mean"`
}

// Config tunes a Client.
type Config struct {
	// Peers lists donor replicas as host:port or http(s)://host:port —
	// the legacy pull topology, polled in order on every miss. Ignored
	// when Ring is set.
	Peers []string
	// Ring, when non-nil, selects ownership routing over the fleet it
	// describes: a fetch asks only the key's owner (successor fallback on
	// owner error), and the member IDs are the replicas' base URLs in
	// NormalizeAddr form. A ring whose only member is self yields the nil
	// no-op client.
	Ring *ring.Ring
	// Timeout bounds one whole fetch round across all peers; <= 0 selects
	// DefaultTimeout. It should be well under the solve time it hopes to
	// save.
	Timeout time.Duration
	// NegativeTTL is how long a no-peer-had-it key is memoized before peers
	// are asked again; <= 0 selects DefaultNegativeTTL.
	NegativeTTL time.Duration
	// Transport overrides the HTTP transport (tests); nil uses
	// http.DefaultTransport (shared process-wide, with its keep-alive
	// connection pool).
	Transport http.RoundTripper
}

// Defaults for Config.
const (
	DefaultTimeout     = 250 * time.Millisecond
	DefaultNegativeTTL = 5 * time.Second
)

// Client fetches warm states from a fixed peer set. Construct with
// NewClient; all methods are safe for concurrent use.
type Client struct {
	peers       []string   // normalized base URLs (pull order; ring mode: the other members)
	ring        *ring.Ring // nil in pull mode
	timeout     time.Duration
	negativeTTL time.Duration
	http        *http.Client

	hits, misses, errors, negHits, fallbacks atomic.Int64
	latencyNS                                atomic.Int64

	mu       sync.Mutex
	inflight map[string]*call
	negative map[string]time.Time // key -> memo expiry
	// negSweep is when the memo is next swept for expired entries; the
	// sweep runs opportunistically inside Fetch so expiry never needs its
	// own goroutine.
	negSweep time.Time
}

// call is one in-flight fetch round other callers of the same key wait on.
type call struct {
	done chan struct{}
	st   *solve.State
}

// maxNegativeEntries caps the negative memo outright: beyond it the sweep
// runs regardless of cadence, and if everything is still live the memo is
// dropped wholesale — re-asking peers is cheaper than an unbounded map.
const maxNegativeEntries = 4096

// NewClient builds a client for the given topology; it returns nil when
// neither peers nor a multi-member ring are configured, and the nil Client
// is a safe no-op (Fetch misses, Stats is zero), so callers thread it
// unconditionally.
func NewClient(cfg Config) *Client {
	var peers []string
	if cfg.Ring != nil {
		peers = cfg.Ring.Others()
	} else {
		peers = NormalizeAddrs(cfg.Peers)
	}
	if len(peers) == 0 {
		return nil
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	ttl := cfg.NegativeTTL
	if ttl <= 0 {
		ttl = DefaultNegativeTTL
	}
	return &Client{
		peers:       peers,
		ring:        cfg.Ring,
		timeout:     timeout,
		negativeTTL: ttl,
		http:        &http.Client{Transport: cfg.Transport},
		inflight:    make(map[string]*call),
		negative:    make(map[string]time.Time),
		negSweep:    time.Now().Add(ttl),
	}
}

// Close releases the client's network resources: it drops the HTTP
// transport's idle keep-alive connections, so their reader goroutines exit
// instead of outliving the client. In-flight fetches are unaffected; the
// client remains usable (a later Fetch just redials). Safe on a nil client
// and safe to call more than once.
func (c *Client) Close() {
	if c == nil {
		return
	}
	c.http.CloseIdleConnections()
}

// Peers returns the normalized peer base URLs (nil on a nil client).
func (c *Client) Peers() []string {
	if c == nil {
		return nil
	}
	return append([]string(nil), c.peers...)
}

// Stats snapshots the counters (zero on a nil client). The latency mean is
// computed here, zero-guarded, so no renderer ever divides a fresh
// client's zero rounds.
func (c *Client) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	s := Stats{
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		Errors:           c.errors.Load(),
		NegativeMemoHits: c.negHits.Load(),
		Fallbacks:        c.fallbacks.Load(),
		LatencyMSTotal:   float64(c.latencyNS.Load()) / float64(time.Millisecond),
	}
	if rounds := s.Hits + s.Misses; rounds > 0 {
		s.LatencyMSMean = s.LatencyMSTotal / float64(rounds)
	}
	return s
}

// Fetch returns the first peer-provided state for key, or nil when no peer
// has one (including the nil client and the negative-memo fast path).
// Concurrent fetches of one key share a single round; every round is
// bounded by the configured timeout regardless of peer count.
func (c *Client) Fetch(ctx context.Context, key string) *solve.State {
	if c == nil || key == "" {
		return nil
	}
	now := time.Now()
	c.mu.Lock()
	c.sweepNegativeLocked(now)
	if expiry, ok := c.negative[key]; ok {
		if now.Before(expiry) {
			c.mu.Unlock()
			c.negHits.Add(1)
			return nil
		}
		delete(c.negative, key)
	}
	if cl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-cl.done:
			return cl.st
		case <-ctx.Done():
			return nil
		}
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.mu.Unlock()

	start := time.Now()
	cl.st = c.fetchRound(ctx, key)
	elapsed := time.Since(start)

	c.mu.Lock()
	delete(c.inflight, key)
	// Memoize only rounds the *peers* could not answer (404s everywhere, a
	// down or stalled sibling): those are worth suppressing for a TTL. A
	// round aborted because the caller's own context ended says nothing
	// about the peers and must not poison the key for later requests.
	if cl.st == nil && ctx.Err() == nil {
		c.negative[key] = time.Now().Add(c.negativeTTL)
		c.sweepNegativeLocked(time.Now())
	}
	c.mu.Unlock()
	close(cl.done)

	c.latencyNS.Add(int64(elapsed))
	if cl.st != nil {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return cl.st
}

// sweepNegativeLocked drops expired negative-memo entries. It runs on a
// TTL cadence (and immediately when the memo is over its hard cap), so the
// memo shrinks even when the expired keys are never looked up again — a
// churning keyspace used to grow it without bound. Caller holds c.mu.
func (c *Client) sweepNegativeLocked(now time.Time) {
	if now.Before(c.negSweep) && len(c.negative) <= maxNegativeEntries {
		return
	}
	for k, exp := range c.negative {
		if now.After(exp) {
			delete(c.negative, k)
		}
	}
	if len(c.negative) > maxNegativeEntries {
		// Everything is live yet the memo is over cap: drop it wholesale —
		// re-asking peers about a few thousand keys is cheaper than an
		// unbounded map.
		c.negative = make(map[string]time.Time)
	}
	c.negSweep = now.Add(c.negativeTTL)
}

// fetchRound performs one network round under the shared deadline:
// ownership-routed when a ring is configured, poll-everyone otherwise.
func (c *Client) fetchRound(ctx context.Context, key string) *solve.State {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	if c.ring != nil {
		return c.fetchOwnerRoute(ctx, key)
	}
	for _, p := range c.peers {
		st, err := c.fetchOne(ctx, p, key)
		if err != nil {
			if !errors.Is(err, errNotFound) {
				c.errors.Add(1)
			}
			if ctx.Err() != nil {
				return nil // round deadline spent; stop asking
			}
			continue
		}
		return st
	}
	return nil
}

// fetchOwnerRoute asks the key's owner, moving to at most one successor
// when the owner errors. A clean 404 ends the round without a fallback:
// the owner is authoritative for its keys, so a cold owner means the fleet
// is cold — that is what keeps the fan-out at one request per miss.
func (c *Client) fetchOwnerRoute(ctx context.Context, key string) *solve.State {
	targets := c.routeTargets(key)
	for i, p := range targets {
		st, err := c.fetchOne(ctx, p, key)
		if err == nil {
			return st
		}
		if errors.Is(err, errNotFound) {
			return nil
		}
		c.errors.Add(1)
		if ctx.Err() != nil {
			return nil // round deadline spent; stop asking
		}
		if i+1 < len(targets) {
			c.fallbacks.Add(1)
		}
	}
	return nil
}

// routeTargets is the preference-ordered request list for key: the owner,
// then its first successor as the error fallback — with self skipped in
// both roles. (The client only fetches after a local miss; when self owns
// the key, the followers are where its pushed replicas live.)
func (c *Client) routeTargets(key string) []string {
	out := make([]string, 0, 2)
	for _, m := range c.ring.Successors(key, c.ring.Size()) {
		if m == c.ring.Self() {
			continue
		}
		out = append(out, m)
		if len(out) == 2 {
			break
		}
	}
	return out
}

// errNotFound distinguishes a clean 404 (peer is healthy, just cold) from a
// peer failure.
var errNotFound = errors.New("peer: no state for key")

// fetchOne performs one GET against one peer, propagating the requesting
// context's request ID so the donor's logs correlate with this replica's.
func (c *Client) fetchOne(ctx context.Context, base, key string) (*solve.State, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		base+WarmStatePath+"?key="+url.QueryEscape(key), nil)
	if err != nil {
		return nil, err
	}
	if rid := obs.RequestID(ctx); rid != "" {
		req.Header.Set(obs.RequestIDHeader, rid)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, errNotFound
	default:
		return nil, fmt.Errorf("peer %s: status %d", base, resp.StatusCode)
	}
	limit := int64(statewire.MaxEncodedSize())
	body, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(body)) > limit {
		return nil, fmt.Errorf("peer %s: payload exceeds %d bytes", base, limit)
	}
	st, err := statewire.Decode(body)
	if err != nil {
		return nil, fmt.Errorf("peer %s: %w", base, err)
	}
	return st, nil
}
