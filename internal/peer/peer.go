// Package peer is the warm-state federation layer of dispersald: a
// client/server pair that lets replicas serving the same drifting
// landscapes exchange solver-core states (internal/solve.State) instead of
// each re-solving cold what a sibling already solved.
//
// The server half is Handler: GET /v1/warmstate?key=<LocalityKey> answers
// the statewire encoding of the replica's newest cached state for that
// locality bucket, or 404. The client half is Client: on a local warm-cache
// miss a replica started with -peers asks each configured peer in turn,
// under one bounded timeout, and seeds its solve from the first state that
// decodes. Concurrent misses on one key collapse onto a single round of
// peer fetches (singleflight), and a key no peer could answer is memoized
// negatively for a short TTL so a burst of cold traffic cannot turn into a
// peer-hammering storm.
//
// Federation is strictly best-effort, inheriting the warm tier's safety
// story: a peer that is down, slow, lying or speaking a future wire version
// costs at most one timeout and a cold solve — every state a peer returns
// is only ever a verified warm seed. No replica ever blocks its own solve
// on another replica beyond the configured timeout.
package peer

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dispersal/internal/solve"
	"dispersal/internal/statewire"
)

// WarmStatePath is the exchange endpoint's URL path.
const WarmStatePath = "/v1/warmstate"

// Source is the donor side's view of a warm cache: a recency- and
// counter-neutral read of one locality bucket's candidates, newest first
// (warmcache.Cache.Peek).
type Source interface {
	Peek(key string) []*solve.State
}

// Handler serves GET WarmStatePath?key=<LocalityKey> from src: 200 with the
// newest candidate's statewire bytes on a hit, 404 on a miss, 400 on a
// missing key. Candidates beyond the newest stay local — within one
// locality bucket they are near-duplicates, not worth the extra bytes.
func Handler(src Source) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.Query().Get("key")
		if key == "" {
			http.Error(w, "missing key parameter", http.StatusBadRequest)
			return
		}
		for _, st := range src.Peek(key) {
			enc, err := statewire.Encode(st)
			if err != nil {
				continue
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(enc)
			return
		}
		http.Error(w, "no warm state for key", http.StatusNotFound)
	}
}

// Stats is a point-in-time snapshot of a Client's counters.
type Stats struct {
	// Hits counts fetches answered by some peer with a decodable state.
	Hits int64 `json:"hits"`
	// Misses counts fetch rounds where every peer answered 404 (or failed).
	Misses int64 `json:"misses"`
	// Errors counts individual peer requests that failed: transport errors,
	// timeouts, unexpected statuses, undecodable payloads.
	Errors int64 `json:"errors"`
	// NegativeMemoHits counts fetches suppressed by the negative-result
	// memo before any network traffic.
	NegativeMemoHits int64 `json:"negative_memo_hits"`
	// LatencyMSTotal accumulates the wall time of all fetch rounds that
	// went to the network, in milliseconds; divide by Hits+Misses for the
	// mean round latency.
	LatencyMSTotal float64 `json:"latency_ms_total"`
}

// Config tunes a Client.
type Config struct {
	// Peers lists donor replicas as host:port or http(s)://host:port.
	Peers []string
	// Timeout bounds one whole fetch round across all peers; <= 0 selects
	// DefaultTimeout. It should be well under the solve time it hopes to
	// save.
	Timeout time.Duration
	// NegativeTTL is how long a no-peer-had-it key is memoized before peers
	// are asked again; <= 0 selects DefaultNegativeTTL.
	NegativeTTL time.Duration
	// Transport overrides the HTTP transport (tests); nil uses
	// http.DefaultTransport (shared process-wide, with its keep-alive
	// connection pool).
	Transport http.RoundTripper
}

// Defaults for Config.
const (
	DefaultTimeout     = 250 * time.Millisecond
	DefaultNegativeTTL = 5 * time.Second
)

// Client fetches warm states from a fixed peer set. Construct with
// NewClient; all methods are safe for concurrent use.
type Client struct {
	peers       []string // normalized base URLs
	timeout     time.Duration
	negativeTTL time.Duration
	http        *http.Client

	hits, misses, errors, negHits atomic.Int64
	latencyNS                     atomic.Int64

	mu       sync.Mutex
	inflight map[string]*call
	negative map[string]time.Time // key -> memo expiry
}

// call is one in-flight fetch round other callers of the same key wait on.
type call struct {
	done chan struct{}
	st   *solve.State
}

// NewClient builds a client for the given peers; it returns nil when no
// peers are configured, and the nil Client is a safe no-op (Fetch misses,
// Stats is zero), so callers thread it unconditionally.
func NewClient(cfg Config) *Client {
	peers := make([]string, 0, len(cfg.Peers))
	for _, p := range cfg.Peers {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		peers = append(peers, strings.TrimRight(p, "/"))
	}
	if len(peers) == 0 {
		return nil
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	ttl := cfg.NegativeTTL
	if ttl <= 0 {
		ttl = DefaultNegativeTTL
	}
	return &Client{
		peers:       peers,
		timeout:     timeout,
		negativeTTL: ttl,
		http:        &http.Client{Transport: cfg.Transport},
		inflight:    make(map[string]*call),
		negative:    make(map[string]time.Time),
	}
}

// Close releases the client's network resources: it drops the HTTP
// transport's idle keep-alive connections, so their reader goroutines exit
// instead of outliving the client. In-flight fetches are unaffected; the
// client remains usable (a later Fetch just redials). Safe on a nil client
// and safe to call more than once.
func (c *Client) Close() {
	if c == nil {
		return
	}
	c.http.CloseIdleConnections()
}

// Peers returns the normalized peer base URLs (nil on a nil client).
func (c *Client) Peers() []string {
	if c == nil {
		return nil
	}
	return append([]string(nil), c.peers...)
}

// Stats snapshots the counters (zero on a nil client).
func (c *Client) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		Errors:           c.errors.Load(),
		NegativeMemoHits: c.negHits.Load(),
		LatencyMSTotal:   float64(c.latencyNS.Load()) / float64(time.Millisecond),
	}
}

// Fetch returns the first peer-provided state for key, or nil when no peer
// has one (including the nil client and the negative-memo fast path).
// Concurrent fetches of one key share a single round; every round is
// bounded by the configured timeout regardless of peer count.
func (c *Client) Fetch(ctx context.Context, key string) *solve.State {
	if c == nil || key == "" {
		return nil
	}
	c.mu.Lock()
	if expiry, ok := c.negative[key]; ok {
		if time.Now().Before(expiry) {
			c.mu.Unlock()
			c.negHits.Add(1)
			return nil
		}
		delete(c.negative, key)
	}
	if cl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		select {
		case <-cl.done:
			return cl.st
		case <-ctx.Done():
			return nil
		}
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.mu.Unlock()

	start := time.Now()
	cl.st = c.fetchRound(ctx, key)
	elapsed := time.Since(start)

	c.mu.Lock()
	delete(c.inflight, key)
	// Memoize only rounds the *peers* could not answer (404s everywhere, a
	// down or stalled sibling): those are worth suppressing for a TTL. A
	// round aborted because the caller's own context ended says nothing
	// about the peers and must not poison the key for later requests.
	if cl.st == nil && ctx.Err() == nil {
		c.negative[key] = time.Now().Add(c.negativeTTL)
		// The memo map only grows on distinct missed keys; prune expired
		// entries opportunistically so it cannot grow without bound.
		if len(c.negative) > 4096 {
			now := time.Now()
			for k, exp := range c.negative {
				if now.After(exp) {
					delete(c.negative, k)
				}
			}
		}
	}
	c.mu.Unlock()
	close(cl.done)

	c.latencyNS.Add(int64(elapsed))
	if cl.st != nil {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return cl.st
}

// fetchRound asks each peer in turn under one shared deadline.
func (c *Client) fetchRound(ctx context.Context, key string) *solve.State {
	ctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	for _, p := range c.peers {
		st, err := c.fetchOne(ctx, p, key)
		if err != nil {
			if !errors.Is(err, errNotFound) {
				c.errors.Add(1)
			}
			if ctx.Err() != nil {
				return nil // round deadline spent; stop asking
			}
			continue
		}
		return st
	}
	return nil
}

// errNotFound distinguishes a clean 404 (peer is healthy, just cold) from a
// peer failure.
var errNotFound = errors.New("peer: no state for key")

// fetchOne performs one GET against one peer.
func (c *Client) fetchOne(ctx context.Context, base, key string) (*solve.State, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		base+WarmStatePath+"?key="+url.QueryEscape(key), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return nil, errNotFound
	default:
		return nil, fmt.Errorf("peer %s: status %d", base, resp.StatusCode)
	}
	limit := int64(statewire.MaxEncodedSize())
	body, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(body)) > limit {
		return nil, fmt.Errorf("peer %s: payload exceeds %d bytes", base, limit)
	}
	st, err := statewire.Decode(body)
	if err != nil {
		return nil, fmt.Errorf("peer %s: %w", base, err)
	}
	return st, nil
}
