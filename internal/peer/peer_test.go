package peer

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/solve"
	"dispersal/internal/statewire"
	"dispersal/internal/strategy"
	"dispersal/internal/warmcache"
)

func testState(nu float64) *solve.State {
	return solve.New(site.Values{1, 0.5}, 2, policy.Sharing{}).
		WithEq(strategy.Strategy{0.75, 0.25}, nu, false)
}

// donor boots an httptest server serving the given cache, returning it with
// a request counter.
func donor(t *testing.T, cache *warmcache.Cache) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var reqs atomic.Int64
	h := Handler(cache, nil)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqs.Add(1)
		h(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &reqs
}

func TestHandlerServesNewestCandidate(t *testing.T) {
	cache := warmcache.New(8)
	cache.Store("warm:k", testState(0.1))
	cache.Store("warm:k", testState(0.2))
	srv, _ := donor(t, cache)

	resp, err := http.Get(srv.URL + WarmStatePath + "?key=warm%3Ak")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	body := make([]byte, statewire.MaxEncodedSize())
	n, _ := resp.Body.Read(body)
	st, err := statewire.Decode(body[:n])
	if err != nil {
		t.Fatal(err)
	}
	if st.Nu() != 0.2 {
		t.Fatalf("served nu=%v, want the newest candidate 0.2", st.Nu())
	}
	// The donor's own telemetry must be untouched by peer traffic.
	if s := cache.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("peer serving moved cache counters: %+v", s)
	}
}

func TestHandlerMissAndBadRequest(t *testing.T) {
	srv, _ := donor(t, warmcache.New(8))
	resp, err := http.Get(srv.URL + WarmStatePath + "?key=absent")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("miss status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + WarmStatePath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("keyless status %d, want 400", resp.StatusCode)
	}
}

func TestClientFetchHit(t *testing.T) {
	cache := warmcache.New(8)
	cache.Store("warm:k", testState(0.7))
	srv, _ := donor(t, cache)
	c := NewClient(Config{Peers: []string{srv.URL}})
	st := c.Fetch(context.Background(), "warm:k")
	if st == nil || st.Nu() != 0.7 {
		t.Fatalf("fetch: %+v", st)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.LatencyMSTotal <= 0 {
		t.Fatalf("latency not recorded: %+v", s)
	}
}

func TestClientTriesPeersInOrderPastFailures(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer dead.Close()
	cache := warmcache.New(8)
	cache.Store("warm:k", testState(0.4))
	alive, _ := donor(t, cache)

	// One unroutable peer, one erroring peer, then the donor.
	c := NewClient(Config{
		Peers:   []string{"127.0.0.1:1", dead.URL, alive.URL},
		Timeout: 2 * time.Second,
	})
	st := c.Fetch(context.Background(), "warm:k")
	if st == nil || st.Nu() != 0.4 {
		t.Fatalf("fetch through failing peers: %+v", st)
	}
	if s := c.Stats(); s.Hits != 1 || s.Errors != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestClientNegativeMemoSuppressesRepeatMisses(t *testing.T) {
	srv, reqs := donor(t, warmcache.New(8))
	c := NewClient(Config{Peers: []string{srv.URL}, NegativeTTL: time.Hour})
	for i := 0; i < 5; i++ {
		if st := c.Fetch(context.Background(), "warm:cold"); st != nil {
			t.Fatal("fetch invented a state")
		}
	}
	if n := reqs.Load(); n != 1 {
		t.Fatalf("peer saw %d requests, want 1 (negative memo)", n)
	}
	s := c.Stats()
	if s.Misses != 1 || s.NegativeMemoHits != 4 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestCallerCancellationDoesNotPoisonTheKey: a round aborted by the
// caller's own context says nothing about the peers, so the next fetch of
// the same key must still go to the network — and succeed.
func TestCallerCancellationDoesNotPoisonTheKey(t *testing.T) {
	cache := warmcache.New(8)
	cache.Store("warm:k", testState(0.8))
	release := make(chan struct{})
	h := Handler(cache, nil)
	var reqs atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if reqs.Add(1) == 1 {
			<-release // stall only the first round
		}
		h(w, r)
	}))
	defer srv.Close()
	defer close(release)

	c := NewClient(Config{Peers: []string{srv.URL}, Timeout: 10 * time.Second, NegativeTTL: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for reqs.Load() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		cancel() // abort the stalled round from the caller's side
	}()
	if st := c.Fetch(ctx, "warm:k"); st != nil {
		t.Fatal("cancelled fetch produced a state")
	}
	// The key must not be negatively memoized: this fetch goes back to the
	// (now responsive) peer and wins.
	st := c.Fetch(context.Background(), "warm:k")
	if st == nil || st.Nu() != 0.8 {
		t.Fatalf("key was poisoned by the caller-side cancellation: %+v", st)
	}
	if s := c.Stats(); s.NegativeMemoHits != 0 {
		t.Fatalf("negative memo engaged: %+v", s)
	}
}

// TestClientSingleflight: concurrent fetches of one key produce one peer
// round.
func TestClientSingleflight(t *testing.T) {
	cache := warmcache.New(8)
	cache.Store("warm:k", testState(0.9))
	var reqs atomic.Int64
	release := make(chan struct{})
	h := Handler(cache, nil)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqs.Add(1)
		<-release
		h(w, r)
	}))
	defer srv.Close()

	c := NewClient(Config{Peers: []string{srv.URL}, Timeout: 5 * time.Second})
	const callers = 8
	var wg sync.WaitGroup
	states := make([]*solve.State, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			states[i] = c.Fetch(context.Background(), "warm:k")
		}(i)
	}
	// Let every goroutine reach the fetch before releasing the donor.
	deadline := time.Now().Add(5 * time.Second)
	for reqs.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := reqs.Load(); n != 1 {
		t.Fatalf("donor saw %d requests from %d concurrent fetches", n, callers)
	}
	for i, st := range states {
		if st == nil || st.Nu() != 0.9 {
			t.Fatalf("caller %d got %+v", i, st)
		}
	}
	if s := c.Stats(); s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestClientTimeoutBoundsTheRound(t *testing.T) {
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	}))
	defer stall.Close()
	c := NewClient(Config{Peers: []string{stall.URL}, Timeout: 50 * time.Millisecond})
	start := time.Now()
	if st := c.Fetch(context.Background(), "warm:k"); st != nil {
		t.Fatal("stalled peer produced a state")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("fetch took %s despite 50ms timeout", elapsed)
	}
	if s := c.Stats(); s.Misses != 1 || s.Errors != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestClientRejectsGarbagePayload(t *testing.T) {
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("not a statewire payload"))
	}))
	defer garbage.Close()
	c := NewClient(Config{Peers: []string{garbage.URL}})
	if st := c.Fetch(context.Background(), "warm:k"); st != nil {
		t.Fatal("garbage payload decoded")
	}
	if s := c.Stats(); s.Errors != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestNilClientIsSafe(t *testing.T) {
	var c *Client
	if c != NewClient(Config{}) {
		t.Fatal("no-peer config should yield the nil client")
	}
	if st := c.Fetch(context.Background(), "warm:k"); st != nil {
		t.Fatal("nil client produced a state")
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil client stats = %+v", s)
	}
	if c.Peers() != nil {
		t.Fatal("nil client has peers")
	}
}
