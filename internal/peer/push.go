// The push half of warm-state federation: where peer.Client pulls a key
// on a local miss, the Pusher replicates freshly solved states ahead of
// demand. Every replica that solves a key hands the state to its Pusher;
// the pusher routes it by ring ownership — an owner pushes to its
// followers (hops=0), a non-owner forwards to the key's owner (hops=1),
// and the owner's receiving handler re-pushes a forwarded state onward to
// the followers. The hop budget makes the longest route
// solver -> owner -> followers; nothing propagates further, so pushes
// cannot loop however the fleet is configured.
//
// Pushing is strictly best-effort and fully decoupled from the solve path:
// Solved only enqueues onto a bounded queue (dropping on backpressure,
// never blocking), and a single supervised worker batches the queue into
// statewire push envelopes POSTed under a short timeout. A dead or slow
// follower costs dropped pushes and error counts — never solve latency.
// Like pulled states, pushed states enter the receiver's warm cache as
// best-effort verified seeds; they can never change results.

package peer

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"dispersal/internal/obs"
	"dispersal/internal/ring"
	"dispersal/internal/solve"
	"dispersal/internal/statewire"
)

// Store is the receiver side's view of a warm cache: where pushed states
// land (warmcache.Cache.Store).
type Store interface {
	Store(key string, st *solve.State)
}

// pushFollowers is how many followers an owner replicates each key to.
// Two replicas besides the owner survive any single-node loss and match
// the fetch path's owner-plus-one-successor route.
const pushFollowers = 2

// Defaults for PusherConfig.
const (
	DefaultPushQueueLen = 256
	DefaultPushBatch    = 16
)

// PusherConfig tunes a Pusher.
type PusherConfig struct {
	// Ring is the fleet topology; member IDs are replica base URLs in
	// NormalizeAddr form. A nil ring, or one whose only member is self,
	// yields the nil no-op Pusher.
	Ring *ring.Ring
	// Timeout bounds one batched POST to one target; <= 0 selects
	// DefaultTimeout.
	Timeout time.Duration
	// QueueLen bounds the enqueue buffer; beyond it Solved drops. <= 0
	// selects DefaultPushQueueLen.
	QueueLen int
	// Batch is how many queued records one envelope carries at most; <= 0
	// selects DefaultPushBatch, and it is capped at
	// statewire.MaxEnvelopeRecords.
	Batch int
	// Transport overrides the HTTP transport (tests); nil uses
	// http.DefaultTransport.
	Transport http.RoundTripper
	// Logger receives supervision and encode-failure logs; nil discards.
	Logger *slog.Logger
}

// PushStats is a point-in-time snapshot of a Pusher's counters.
type PushStats struct {
	// Sent counts records enqueued toward followers (the owner role, plus
	// owner-side re-pushes of forwarded states).
	Sent int64 `json:"sent"`
	// Forwarded counts records enqueued toward a key's owner because a
	// non-owner solved them.
	Forwarded int64 `json:"forwarded"`
	// Applied counts pushed records this replica received and stored.
	Applied int64 `json:"applied"`
	// Dropped counts records shed on backpressure (full queue).
	Dropped int64 `json:"dropped"`
	// Errors counts failed batch deliveries: encode failures, transport
	// errors, timeouts, non-2xx responses.
	Errors int64 `json:"errors"`
}

// pushItem is one queued record bound for one target. rid is the request
// ID of the solve that produced the record, carried onto the push hop's
// X-Request-ID header so the receiver's logs correlate with the
// originating request.
type pushItem struct {
	target string
	hops   int
	rid    string
	rec    statewire.Record
}

// Pusher replicates warm states across a ring-addressed fleet. Construct
// with NewPusher; the nil Pusher is a safe no-op (Solved discards, Stats
// is zero, Close does nothing), so callers thread it unconditionally. All
// methods are safe for concurrent use.
type Pusher struct {
	ring    *ring.Ring
	timeout time.Duration
	batch   int
	http    *http.Client
	log     *slog.Logger

	queue chan pushItem
	stop  chan struct{}
	done  chan struct{}
	once  sync.Once

	sent, forwarded, applied, dropped, errors atomic.Int64
}

// NewPusher builds a pusher for the fleet and starts its worker. It
// returns nil when the ring has nobody to push to.
func NewPusher(cfg PusherConfig) *Pusher {
	if cfg.Ring == nil || cfg.Ring.Size() < 2 {
		return nil
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	queueLen := cfg.QueueLen
	if queueLen <= 0 {
		queueLen = DefaultPushQueueLen
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = DefaultPushBatch
	}
	if batch > statewire.MaxEnvelopeRecords {
		batch = statewire.MaxEnvelopeRecords
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	p := &Pusher{
		ring:    cfg.Ring,
		timeout: timeout,
		batch:   batch,
		http:    &http.Client{Transport: cfg.Transport},
		log:     logger,
		queue:   make(chan pushItem, queueLen),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go p.loop()
	return p
}

// Solved routes a freshly solved (and stored-locally) state into the
// fleet: owners replicate to their followers, non-owners forward to the
// owner. It never blocks — on a full queue the records are shed and
// counted as dropped. The context contributes only the request ID of the
// originating solve (propagated on the push hop's headers); delivery is
// asynchronous and never bound by the context's deadline. Safe on a nil
// pusher.
func (p *Pusher) Solved(ctx context.Context, key string, st *solve.State) {
	if p == nil || key == "" || st == nil {
		return
	}
	rid := obs.RequestID(ctx)
	rec := statewire.Record{Key: key, State: st}
	if p.ring.Owns(key) {
		for _, f := range p.ring.Followers(key, pushFollowers) {
			if p.enqueue(pushItem{target: f, hops: 0, rid: rid, rec: rec}) {
				p.sent.Add(1)
			}
		}
		return
	}
	if p.enqueue(pushItem{target: p.ring.Owner(key), hops: 1, rid: rid, rec: rec}) {
		p.forwarded.Add(1)
	}
}

// enqueue is the non-blocking admission to the worker queue; a full queue
// sheds the record (counted) rather than ever stalling a solve path.
func (p *Pusher) enqueue(it pushItem) bool {
	select {
	case p.queue <- it:
		return true
	default:
		p.dropped.Add(1)
		return false
	}
}

// Handler serves POST WarmStatePath: it decodes one push envelope, stores
// every record into dst, and — when the envelope had hop budget left and
// this replica owns a record's key — re-pushes that record to the key's
// followers (the owner leg of the solver -> owner -> followers route).
// Malformed envelopes reject wholesale with 400; oversized bodies with
// 413. The pusher must be non-nil: a replica without one has no fleet and
// should not register the route.
func (p *Pusher) Handler(dst Store) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		limit := int64(statewire.MaxEnvelopeBytes())
		body, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
		if err != nil {
			http.Error(w, "unreadable body", http.StatusBadRequest)
			return
		}
		if int64(len(body)) > limit {
			http.Error(w, "envelope too large", http.StatusRequestEntityTooLarge)
			return
		}
		hops, recs, err := statewire.DecodeEnvelope(body)
		if err != nil {
			http.Error(w, "bad envelope", http.StatusBadRequest)
			return
		}
		rid := r.Header.Get(obs.RequestIDHeader)
		for _, rec := range recs {
			dst.Store(rec.Key, rec.State)
			p.applied.Add(1)
			if hops > 0 && p.ring.Owns(rec.Key) {
				for _, f := range p.ring.Followers(rec.Key, pushFollowers) {
					if p.enqueue(pushItem{target: f, hops: hops - 1, rid: rid, rec: rec}) {
						p.sent.Add(1)
					}
				}
			}
		}
		p.log.Info("warm-state push applied", "rid", rid, "records", len(recs), "hops", hops)
		w.WriteHeader(http.StatusNoContent)
	}
}

// loop is the push worker: it drains the queue into batched envelopes,
// one POST per (target, hops) group. Pushes are advisory, so a panic must
// not kill the replica — and done must still close so Close never hangs.
func (p *Pusher) loop() {
	defer close(p.done)
	defer func() {
		if r := recover(); r != nil {
			p.log.Error("warm-state push loop panicked", "panic", fmt.Sprint(r))
		}
	}()
	for {
		select {
		case <-p.stop:
			return
		case it := <-p.queue:
			p.flush(it)
		}
	}
}

// flush sends first plus whatever else is already queued (up to the batch
// bound), grouped by destination so each target gets one envelope.
func (p *Pusher) flush(first pushItem) {
	items := append(make([]pushItem, 0, p.batch), first)
collect:
	for len(items) < p.batch {
		select {
		case it := <-p.queue:
			items = append(items, it)
		default:
			break collect
		}
	}
	type dest struct {
		target string
		hops   int
	}
	groups := make(map[dest][]statewire.Record, 2)
	rids := make(map[dest]string, 2) // first non-empty rid per envelope (best-effort correlation)
	order := make([]dest, 0, 2)      // deterministic flush order; map iteration is not
	for _, it := range items {
		d := dest{target: it.target, hops: it.hops}
		if _, ok := groups[d]; !ok {
			order = append(order, d)
		}
		groups[d] = append(groups[d], it.rec)
		if rids[d] == "" {
			rids[d] = it.rid
		}
	}
	for _, d := range order {
		p.send(d.target, d.hops, rids[d], groups[d])
	}
}

// send delivers one envelope to one target under the push timeout. Every
// failure is counted and swallowed: the states are already cached locally
// and reachable by pull, so a failed push costs nothing but freshness.
func (p *Pusher) send(target string, hops int, rid string, recs []statewire.Record) {
	enc, err := statewire.EncodeEnvelope(hops, recs)
	if err != nil {
		p.errors.Add(1)
		p.log.Warn("warm-state push encode failed", "target", target, "err", err)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), p.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+WarmStatePath, bytes.NewReader(enc))
	if err != nil {
		p.errors.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if rid != "" {
		req.Header.Set(obs.RequestIDHeader, rid)
	}
	resp, err := p.http.Do(req)
	if err != nil {
		p.errors.Add(1)
		return
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		p.errors.Add(1)
	}
}

// Stats snapshots the counters (zero on a nil pusher).
func (p *Pusher) Stats() PushStats {
	if p == nil {
		return PushStats{}
	}
	return PushStats{
		Sent:      p.sent.Load(),
		Forwarded: p.forwarded.Load(),
		Applied:   p.applied.Load(),
		Dropped:   p.dropped.Load(),
		Errors:    p.errors.Load(),
	}
}

// Close stops the worker, waits for it to exit, and releases the HTTP
// transport's idle connections. Queued-but-unsent records are discarded —
// they were best-effort from the moment they were enqueued. Safe on a nil
// pusher and safe to call more than once.
func (p *Pusher) Close() {
	if p == nil {
		return
	}
	p.once.Do(func() {
		close(p.stop)
		<-p.done
		p.http.CloseIdleConnections()
	})
}
