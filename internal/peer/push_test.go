package peer

import (
	"bytes"
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dispersal/internal/ring"
	"dispersal/internal/statewire"
	"dispersal/internal/warmcache"
)

// fleetNode is one real HTTP replica of a push-federated test fleet.
type fleetNode struct {
	url    string
	cache  *warmcache.Cache
	pusher *Pusher
}

// startFleet boots n replicas wired for push federation. Listeners come
// first — the ring needs every member URL before any server can be built —
// then each node gets its own ring view, cache, pusher and server.
func startFleet(t *testing.T, n int) []*fleetNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	nodes := make([]*fleetNode, n)
	for i := range nodes {
		r, err := ring.New(urls, urls[i])
		if err != nil {
			t.Fatal(err)
		}
		cache := warmcache.New(32)
		p := NewPusher(PusherConfig{Ring: r, Timeout: 2 * time.Second})
		mux := http.NewServeMux()
		mux.Handle("POST "+WarmStatePath, p.Handler(cache))
		mux.Handle("GET "+WarmStatePath, Handler(cache, nil))
		srv := &http.Server{Handler: mux}
		go srv.Serve(listeners[i])
		t.Cleanup(func() {
			srv.Close()
			p.Close()
		})
		nodes[i] = &fleetNode{url: urls[i], cache: cache, pusher: p}
	}
	return nodes
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("timed out waiting for " + what)
}

// TestPusherOwnerReplicatesToFollowers: the owner of a key pushes a fresh
// state to both followers, who apply it to their caches — the coverage
// that makes the followers real fetch fallbacks.
func TestPusherOwnerReplicatesToFollowers(t *testing.T) {
	nodes := startFleet(t, 3)
	owner := nodes[0]
	key := ownedKey(t, owner.pusher.ring, owner.url, "own")
	owner.pusher.Solved(context.Background(), key, testState(0.5))

	waitFor(t, "both followers to apply the push", func() bool {
		applied := 0
		for _, n := range nodes[1:] {
			if len(n.cache.Peek(key)) > 0 {
				applied++
			}
		}
		return applied == 2
	})
	if s := owner.pusher.Stats(); s.Sent != 2 || s.Forwarded != 0 || s.Dropped != 0 {
		t.Fatalf("owner stats = %+v", s)
	}
	for i, n := range nodes[1:] {
		st := n.cache.Peek(key)
		if len(st) == 0 || st[0].Nu() != 0.5 {
			t.Fatalf("follower %d cache: %+v", i+1, st)
		}
		if s := n.pusher.Stats(); s.Applied != 1 {
			t.Fatalf("follower %d stats = %+v", i+1, s)
		}
	}
}

// TestPusherForwardsThroughOwner: a non-owner that solves a key sends it
// to the owner (hops=1), whose handler stores it and re-pushes hops=0 to
// the followers — so one solve anywhere warms the key's whole replica set.
func TestPusherForwardsThroughOwner(t *testing.T) {
	nodes := startFleet(t, 3)
	solver := nodes[0]
	key := ownedKey(t, solver.pusher.ring, nodes[1].url, "fwd")
	solver.pusher.Solved(context.Background(), key, testState(0.9))

	waitFor(t, "the forwarded state to reach every replica", func() bool {
		for _, n := range nodes {
			if len(n.cache.Peek(key)) == 0 {
				return false
			}
		}
		return true
	})
	if s := solver.pusher.Stats(); s.Forwarded != 1 || s.Sent != 0 {
		t.Fatalf("solver stats = %+v", s)
	}
	// The owner applied the forward and re-pushed to its two followers
	// (the solver gets its own copy back — it already has the state, and a
	// duplicate store is cheaper than a special case).
	if s := nodes[1].pusher.Stats(); s.Applied != 1 || s.Sent != 2 {
		t.Fatalf("owner stats = %+v", s)
	}
	waitFor(t, "the non-owner follower to apply", func() bool {
		return nodes[2].pusher.Stats().Applied == 1
	})
}

// TestPushBackpressureDropsNeverBlocks: with the worker stalled on a slow
// follower and the queue full, Solved sheds records immediately — the
// solve path never waits on push delivery.
func TestPushBackpressureDropsNeverBlocks(t *testing.T) {
	release := make(chan struct{})
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer stall.Close()
	self := "http://self.invalid"
	r, err := ring.New([]string{self, stall.URL}, self)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPusher(PusherConfig{Ring: r, Timeout: 500 * time.Millisecond, QueueLen: 1})
	defer p.Close()
	defer close(release)

	start := time.Now()
	const solves = 40
	for i := 0; i < solves; i++ {
		p.Solved(context.Background(), ownedKey(t, r, self, "bp"), testState(0.1))
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("%d Solved calls took %s; enqueue must never block", solves, elapsed)
	}
	if s := p.Stats(); s.Dropped == 0 {
		t.Fatalf("no records shed under backpressure: %+v", s)
	}
}

// TestPushToDeadFollowerNeverBlocksSolved: a follower that is down costs
// asynchronous push errors, nothing on the Solved path.
func TestPushToDeadFollowerNeverBlocksSolved(t *testing.T) {
	self := "http://self.invalid"
	r, err := ring.New([]string{self, "http://127.0.0.1:1"}, self)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPusher(PusherConfig{Ring: r, Timeout: time.Second})
	defer p.Close()

	start := time.Now()
	p.Solved(context.Background(), ownedKey(t, r, self, "dead"), testState(0.2))
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("Solved took %s with a dead follower", elapsed)
	}
	waitFor(t, "the failed delivery to be counted", func() bool {
		return p.Stats().Errors >= 1
	})
}

// TestPushHandlerRejectsBadEnvelopes: garbage rejects wholesale with 400,
// oversized bodies with 413, and neither stores anything.
func TestPushHandlerRejectsBadEnvelopes(t *testing.T) {
	self := "http://self.invalid"
	r, err := ring.New([]string{self, "http://other.invalid"}, self)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPusher(PusherConfig{Ring: r})
	defer p.Close()
	cache := warmcache.New(8)
	h := p.Handler(cache)

	post := func(body []byte) int {
		rr := httptest.NewRecorder()
		h(rr, httptest.NewRequest(http.MethodPost, WarmStatePath, bytes.NewReader(body)))
		return rr.Code
	}
	if code := post([]byte("not an envelope")); code != http.StatusBadRequest {
		t.Fatalf("garbage: status %d, want 400", code)
	}
	if code := post(make([]byte, statewire.MaxEnvelopeBytes()+1)); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized: status %d, want 413", code)
	}
	if cache.Len() != 0 {
		t.Fatal("rejected envelope stored records")
	}

	enc, err := statewire.EncodeEnvelope(0, []statewire.Record{{Key: "warm:ok", State: testState(0.4)}})
	if err != nil {
		t.Fatal(err)
	}
	if code := post(enc); code != http.StatusNoContent {
		t.Fatalf("valid envelope: status %d, want 204", code)
	}
	if got := cache.Peek("warm:ok"); len(got) == 0 || got[0].Nu() != 0.4 {
		t.Fatalf("pushed record not stored: %+v", got)
	}
	if s := p.Stats(); s.Applied != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestNilPusherIsSafe(t *testing.T) {
	var p *Pusher
	p.Solved(context.Background(), "warm:k", testState(0.1))
	if s := p.Stats(); s != (PushStats{}) {
		t.Fatalf("nil pusher stats = %+v", s)
	}
	p.Close()
	if NewPusher(PusherConfig{}) != nil {
		t.Fatal("ringless config should yield the nil pusher")
	}
	solo, err := ring.New([]string{"http://a:1"}, "http://a:1")
	if err != nil {
		t.Fatal(err)
	}
	if NewPusher(PusherConfig{Ring: solo}) != nil {
		t.Fatal("single-member fleet should yield the nil pusher")
	}
}
