package peer

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dispersal/internal/ring"
	"dispersal/internal/warmcache"
)

// ownedKey finds a locality-style key the given member owns; prefix keeps
// keys from different assertions distinct.
func ownedKey(t *testing.T, r *ring.Ring, owner, prefix string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("warm:%s-%d", prefix, i)
		if r.Owner(k) == owner {
			return k
		}
	}
	t.Fatalf("no key owned by %s", owner)
	return ""
}

// TestRingFetchAsksOnlyOwner: with a ring configured, a fetch is one
// request to the key's owner — a hit comes back from it, and a clean 404
// ends the round without touching any other replica. That O(1) fan-out is
// the point of ownership routing.
func TestRingFetchAsksOnlyOwner(t *testing.T) {
	cacheB := warmcache.New(8)
	srvB, reqsB := donor(t, cacheB)
	srvC, reqsC := donor(t, warmcache.New(8))
	self := "http://self.invalid"
	r, err := ring.New([]string{self, srvB.URL, srvC.URL}, self)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(Config{Ring: r, Timeout: 2 * time.Second})

	hot := ownedKey(t, r, srvB.URL, "hot")
	cacheB.Store(hot, testState(0.6))
	if st := c.Fetch(context.Background(), hot); st == nil || st.Nu() != 0.6 {
		t.Fatalf("owner-routed fetch: %+v", st)
	}

	cold := ownedKey(t, r, srvB.URL, "cold")
	if st := c.Fetch(context.Background(), cold); st != nil {
		t.Fatal("cold key produced a state")
	}

	if n := reqsB.Load(); n != 2 {
		t.Fatalf("owner saw %d requests, want 2 (one per round)", n)
	}
	if n := reqsC.Load(); n != 0 {
		t.Fatalf("non-owner saw %d requests, want 0", n)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Fallbacks != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestRingFallbackToSuccessorWhenOwnerDown: an erroring owner (here:
// unroutable) costs one fallback to the successor, which answers from its
// pushed replica — partial-fleet failure degrades to one extra request,
// not to cold solving.
func TestRingFallbackToSuccessorWhenOwnerDown(t *testing.T) {
	dead := "http://127.0.0.1:1"
	cacheAlive := warmcache.New(8)
	alive, reqsAlive := donor(t, cacheAlive)
	self := "http://self.invalid"
	r, err := ring.New([]string{self, dead, alive.URL}, self)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(Config{Ring: r, Timeout: 2 * time.Second})

	key := ownedKey(t, r, dead, "fall")
	cacheAlive.Store(key, testState(0.3))
	if st := c.Fetch(context.Background(), key); st == nil || st.Nu() != 0.3 {
		t.Fatalf("fallback fetch: %+v", st)
	}
	if n := reqsAlive.Load(); n != 1 {
		t.Fatalf("successor saw %d requests, want 1", n)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Errors != 1 || s.Fallbacks != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestRingSlowOwnerBoundsTheRound: a stalled owner spends the round's
// timeout and nothing more — the successor is not even tried once the
// deadline is gone, so a slow owner can never double the round.
func TestRingSlowOwnerBoundsTheRound(t *testing.T) {
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	}))
	defer stall.Close()
	srvC, reqsC := donor(t, warmcache.New(8))
	self := "http://self.invalid"
	r, err := ring.New([]string{self, stall.URL, srvC.URL}, self)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(Config{Ring: r, Timeout: 50 * time.Millisecond})

	key := ownedKey(t, r, stall.URL, "slow")
	start := time.Now()
	if st := c.Fetch(context.Background(), key); st != nil {
		t.Fatal("stalled owner produced a state")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("round took %s despite 50ms timeout", elapsed)
	}
	if n := reqsC.Load(); n != 0 {
		t.Fatalf("successor saw %d requests after the deadline was spent, want 0", n)
	}
	if s := c.Stats(); s.Misses != 1 || s.Errors != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestNegativeMemoSweepsExpiredEntries: expired negative-memo entries are
// dropped on the TTL cadence even when their keys are never fetched again.
// Before the sweep existed the memo only shrank past a 4096-entry cap, so
// a churning keyspace leaked a map entry per cold key forever.
func TestNegativeMemoSweepsExpiredEntries(t *testing.T) {
	srv, _ := donor(t, warmcache.New(8))
	c := NewClient(Config{Peers: []string{srv.URL}, NegativeTTL: 150 * time.Millisecond})
	const cold = 30
	for i := 0; i < cold; i++ {
		if st := c.Fetch(context.Background(), fmt.Sprintf("warm:churn-%d", i)); st != nil {
			t.Fatal("cold fetch produced a state")
		}
	}
	c.mu.Lock()
	before := len(c.negative)
	c.mu.Unlock()
	if before != cold {
		t.Fatalf("memo holds %d entries, want %d", before, cold)
	}

	time.Sleep(200 * time.Millisecond)
	// One unrelated fetch is enough: the cadenced sweep runs inside it.
	c.Fetch(context.Background(), "warm:churn-trigger")
	c.mu.Lock()
	after := len(c.negative)
	c.mu.Unlock()
	if after > 1 {
		t.Fatalf("memo holds %d entries after the TTL, want at most the trigger key", after)
	}
}

// TestStatsLatencyMeanZeroGuard: a fresh client has zero rounds; the mean
// must be 0, not NaN, and after a round it must be the zero-guarded
// quotient.
func TestStatsLatencyMeanZeroGuard(t *testing.T) {
	c := NewClient(Config{Peers: []string{"http://127.0.0.1:1"}})
	s := c.Stats()
	if s.LatencyMSMean != 0 || math.IsNaN(s.LatencyMSMean) {
		t.Fatalf("fresh client mean = %v, want 0", s.LatencyMSMean)
	}
	c.Fetch(context.Background(), "warm:k")
	s = c.Stats()
	if s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.LatencyMSMean <= 0 || s.LatencyMSMean != s.LatencyMSTotal {
		t.Fatalf("mean = %v after one round of %vms total", s.LatencyMSMean, s.LatencyMSTotal)
	}
}
