// Package plot renders the reproduction's figures without any external
// plotting ecosystem: multi-series ASCII line charts for terminals, CSV
// series for downstream tooling, and self-contained SVG line charts that
// mirror the layout of the paper's Figure 1 (axis labels, legend, reference
// ticks).
package plot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line on a chart. X and Y must have equal length.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is a collection of series with axis metadata.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Validation errors.
var (
	ErrEmpty  = errors.New("plot: chart has no data")
	ErrLength = errors.New("plot: series X/Y lengths differ")
)

// validate checks chart consistency and returns the data bounds.
func (c *Chart) validate() (xmin, xmax, ymin, ymax float64, err error) {
	found := false
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return 0, 0, 0, 0, fmt.Errorf("%w: series %q has %d X, %d Y", ErrLength, s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			found = true
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if !found {
		return 0, 0, 0, 0, ErrEmpty
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	return xmin, xmax, ymin, ymax, nil
}

// seriesMarkers cycle through the series of an ASCII chart.
var seriesMarkers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// RenderASCII draws the chart into a width x height character grid and
// writes it to w, followed by a legend. Points are plotted with one marker
// per series; later series overwrite earlier ones on collisions.
func (c *Chart) RenderASCII(w io.Writer, width, height int) error {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	xmin, xmax, ymin, ymax, err := c.validate()
	if err != nil {
		return err
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		marker := seriesMarkers[si%len(seriesMarkers)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((s.Y[i]-ymin)/(ymax-ymin)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = marker
			}
		}
	}
	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	for i, row := range grid {
		label := "         "
		if i == 0 {
			label = fmt.Sprintf("%8.3f ", ymax)
		} else if i == height-1 {
			label = fmt.Sprintf("%8.3f ", ymin)
		}
		if _, err := fmt.Fprintf(w, "%s|%s\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s+%s\n", strings.Repeat(" ", 9), strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s%-*.3f%*.3f\n", strings.Repeat(" ", 10), width/2, xmin, width-width/2, xmax); err != nil {
		return err
	}
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", seriesMarkers[si%len(seriesMarkers)], s.Name))
	}
	if _, err := fmt.Fprintf(w, "  x: %s   y: %s\n  legend: %s\n", c.XLabel, c.YLabel, strings.Join(legend, " | ")); err != nil {
		return err
	}
	return nil
}

// WriteCSV emits the chart as CSV with an x column followed by one column
// per series. All series must share the same X vector (checked by length
// and values).
func (c *Chart) WriteCSV(w io.Writer) error {
	if len(c.Series) == 0 {
		return ErrEmpty
	}
	base := c.Series[0].X
	for _, s := range c.Series {
		if len(s.X) != len(base) {
			return fmt.Errorf("%w: series %q", ErrLength, s.Name)
		}
		for i := range s.X {
			if s.X[i] != base[i] {
				return fmt.Errorf("plot: series %q has a different X grid", s.Name)
			}
		}
	}
	cols := []string{sanitizeCSV(c.XLabel)}
	for _, s := range c.Series {
		cols = append(cols, sanitizeCSV(s.Name))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i := range base {
		row := []string{formatFloat(base[i])}
		for _, s := range c.Series {
			row = append(row, formatFloat(s.Y[i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func sanitizeCSV(s string) string {
	if s == "" {
		return "x"
	}
	s = strings.ReplaceAll(s, ",", ";")
	s = strings.ReplaceAll(s, "\n", " ")
	return s
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.10g", v)
}

// svgPalette holds the stroke colors of SVG series, chosen to match the
// paper's Figure 1 (red = ESS, green = optimum, blue = welfare optimum).
var svgPalette = []string{"#cc0000", "#00aa44", "#0044cc", "#aa6600", "#7700aa", "#006677"}

// RenderSVG writes a self-contained SVG line chart of the given pixel size.
func (c *Chart) RenderSVG(w io.Writer, width, height int) error {
	if width < 100 {
		width = 100
	}
	if height < 80 {
		height = 80
	}
	xmin, xmax, ymin, ymax, err := c.validate()
	if err != nil {
		return err
	}
	const margin = 55
	plotW := float64(width - 2*margin)
	plotH := float64(height - 2*margin)
	px := func(x float64) float64 { return margin + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return float64(height) - margin - (y-ymin)/(ymax-ymin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	// Axes.
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", px(xmin), py(ymin), px(xmax), py(ymin))
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", px(xmin), py(ymin), px(xmin), py(ymax))
	// Tick labels at the corners and midpoints.
	for _, tx := range []float64{xmin, (xmin + xmax) / 2, xmax} {
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-size="11" text-anchor="middle">%.3g</text>`+"\n", px(tx), float64(height)-margin+16, tx)
	}
	for _, ty := range []float64{ymin, (ymin + ymax) / 2, ymax} {
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-size="11" text-anchor="end">%.3g</text>`+"\n", px(xmin)-6, py(ty)+4, ty)
	}
	// Axis labels and title.
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%g" y="%d" font-size="13" text-anchor="middle">%s</text>`+"\n", px((xmin+xmax)/2), height-10, escapeXML(c.XLabel))
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%g" font-size="13" text-anchor="middle" transform="rotate(-90 14 %g)">%s</text>`+"\n", py((ymin+ymax)/2), py((ymin+ymax)/2), escapeXML(c.YLabel))
	}
	if c.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" text-anchor="middle" font-weight="bold">%s</text>`+"\n", width/2, escapeXML(c.Title))
	}
	// Series.
	for si, s := range c.Series {
		color := svgPalette[si%len(svgPalette)]
		var pts []string
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", px(s.X[i]), py(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.8" points="%s"/>`+"\n", color, strings.Join(pts, " "))
		// Legend entry.
		ly := 34 + 16*si
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n", width-170, ly, width-150, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n", width-144, ly+4, escapeXML(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err = io.WriteString(w, b.String())
	return err
}

func escapeXML(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
