package plot

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func sampleChart() *Chart {
	return &Chart{
		Title:  "demo",
		XLabel: "c",
		YLabel: "Coverage",
		Series: []Series{
			{Name: "ESS", X: []float64{0, 0.5, 1}, Y: []float64{1, 1.1, 0.9}},
			{Name: "Optimum", X: []float64{0, 0.5, 1}, Y: []float64{1.1, 1.1, 1.1}},
		},
	}
}

func TestRenderASCII(t *testing.T) {
	var b strings.Builder
	if err := sampleChart().RenderASCII(&b, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"demo", "ESS", "Optimum", "legend", "*", "o", "Coverage"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderASCIIMinimumDimensionsClamp(t *testing.T) {
	var b strings.Builder
	if err := sampleChart().RenderASCII(&b, 1, 1); err != nil {
		t.Fatal(err)
	}
	if len(b.String()) == 0 {
		t.Error("empty render")
	}
}

func TestRenderASCIIEmptyChart(t *testing.T) {
	c := &Chart{}
	var b strings.Builder
	if err := c.RenderASCII(&b, 40, 10); !errors.Is(err, ErrEmpty) {
		t.Errorf("want ErrEmpty, got %v", err)
	}
}

func TestRenderASCIIMismatchedSeries(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "bad", X: []float64{1}, Y: []float64{1, 2}}}}
	var b strings.Builder
	if err := c.RenderASCII(&b, 40, 10); !errors.Is(err, ErrLength) {
		t.Errorf("want ErrLength, got %v", err)
	}
}

func TestRenderASCIISkipsNaN(t *testing.T) {
	c := &Chart{Series: []Series{{
		Name: "gap",
		X:    []float64{0, 1, 2},
		Y:    []float64{1, math.NaN(), 3},
	}}}
	var b strings.Builder
	if err := c.RenderASCII(&b, 30, 8); err != nil {
		t.Fatal(err)
	}
}

func TestRenderASCIIConstantSeries(t *testing.T) {
	// Degenerate y-range must not divide by zero.
	c := &Chart{Series: []Series{{Name: "flat", X: []float64{0, 1}, Y: []float64{2, 2}}}}
	var b strings.Builder
	if err := c.RenderASCII(&b, 30, 8); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := sampleChart().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines: %q", len(lines), b.String())
	}
	if lines[0] != "c,ESS,Optimum" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0.0,1.0,") {
		t.Errorf("first row = %q", lines[1])
	}
}

func TestWriteCSVRejectsDifferentGrids(t *testing.T) {
	c := &Chart{Series: []Series{
		{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}},
		{Name: "b", X: []float64{0, 2}, Y: []float64{0, 1}},
	}}
	var b strings.Builder
	if err := c.WriteCSV(&b); err == nil {
		t.Error("different X grids accepted")
	}
	c2 := &Chart{}
	if err := c2.WriteCSV(&b); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty chart: %v", err)
	}
}

func TestWriteCSVSanitizesNames(t *testing.T) {
	c := &Chart{
		XLabel: "x,axis",
		Series: []Series{{Name: "a,b\nc", X: []float64{1}, Y: []float64{2}}},
	}
	var b strings.Builder
	if err := c.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	header := strings.Split(b.String(), "\n")[0]
	if strings.Count(header, ",") != 1 {
		t.Errorf("header not sanitized: %q", header)
	}
}

func TestRenderSVG(t *testing.T) {
	var b strings.Builder
	if err := sampleChart().RenderSVG(&b, 640, 480); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"<svg", "</svg>", "polyline", "#cc0000", "ESS", "Coverage"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Errorf("want 2 polylines, got %d", strings.Count(out, "<polyline"))
	}
}

func TestRenderSVGEscapesLabels(t *testing.T) {
	c := sampleChart()
	c.Title = `f(x1)=1 & f(x2)<0.5 "quoted"`
	var b strings.Builder
	if err := c.RenderSVG(&b, 400, 300); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, `& f`) || strings.Contains(out, "<0.5") {
		t.Error("unescaped XML metacharacters in SVG")
	}
	if !strings.Contains(out, "&amp;") || !strings.Contains(out, "&lt;") {
		t.Error("expected escaped entities")
	}
}

func TestRenderSVGEmpty(t *testing.T) {
	c := &Chart{}
	var b strings.Builder
	if err := c.RenderSVG(&b, 400, 300); !errors.Is(err, ErrEmpty) {
		t.Errorf("want ErrEmpty, got %v", err)
	}
}

func TestRenderSVGSizeClamp(t *testing.T) {
	var b strings.Builder
	if err := sampleChart().RenderSVG(&b, 1, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `width="100"`) {
		t.Error("width not clamped")
	}
}
