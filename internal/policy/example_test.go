package policy_test

import (
	"fmt"

	"dispersal/internal/policy"
)

// The congestion families at a glance: what each of 3 colliding players
// receives of a unit-value site.
func ExampleReward() {
	l := 3 // three players on the same site
	for _, c := range []policy.Congestion{
		policy.Exclusive{},
		policy.Sharing{},
		policy.Constant{},
		policy.Aggressive{Penalty: 0.5},
	} {
		fmt.Printf("%-25s %+.3f\n", c.Name(), policy.Reward(c, 1, l))
	}
	// Output:
	// exclusive                 +0.000
	// sharing                   +0.333
	// constant                  +1.000
	// aggressive(penalty=0.5)   -1.000
}

// Validate rejects functions violating the congestion axioms.
func ExampleValidate() {
	rising := policy.Table{Head: []float64{1, 0.2, 0.8}, Tail: 0}
	fmt.Println(policy.Validate(rising, 5) != nil)
	fmt.Println(policy.Validate(policy.Sharing{}, 5) == nil)
	// Output:
	// true
	// true
}
