// Package policy implements congestion reward policies I(x, l) = f(x) * C(l).
//
// A congestion function C maps the number of players l >= 1 sharing a site to
// the fraction of the site value each of them receives. The paper requires
// C(1) = 1 and C non-increasing; C may be negative (aggression) or exceed
// 1/l (cooperation). The central object of the paper is the exclusive policy
// Cexc (C(1)=1, C(l)=0 for l > 1), whose IFD uniquely optimizes coverage.
package policy

import (
	"errors"
	"fmt"
	"math"
)

// Congestion is a congestion function C(l) for l >= 1.
//
// Implementations must satisfy At(1) == 1 and be non-increasing in l;
// Validate checks both over a finite horizon.
type Congestion interface {
	// At returns C(l). l is the total number of players at the site,
	// including the focal player, so l >= 1.
	At(l int) float64
	// Name returns a short human-readable identifier used in tables and
	// figure legends.
	Name() string
}

// Validation errors.
var (
	ErrCOneNotUnit   = errors.New("policy: C(1) must equal 1")
	ErrNotMonotone   = errors.New("policy: C must be non-increasing")
	ErrNotFinite     = errors.New("policy: C must be finite")
	ErrBadMultiplier = errors.New("policy: invalid parameter")
)

// Validate checks the congestion-policy axioms C(1) = 1 and monotonicity for
// l = 1..horizon. Use horizon = k (the player count) in game contexts.
func Validate(c Congestion, horizon int) error {
	if horizon < 1 {
		horizon = 1
	}
	prev := math.Inf(1)
	for l := 1; l <= horizon; l++ {
		v := c.At(l)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: C(%d) = %v", ErrNotFinite, l, v)
		}
		if l == 1 && v != 1 {
			return fmt.Errorf("%w: C(1) = %v", ErrCOneNotUnit, v)
		}
		if v > prev {
			return fmt.Errorf("%w: C(%d) = %v > C(%d) = %v", ErrNotMonotone, l, v, l-1, prev)
		}
		prev = v
	}
	return nil
}

// Reward returns the reward policy value I(x, l) = f(x) * C(l) for a site of
// value fx visited by l players in total.
func Reward(c Congestion, fx float64, l int) float64 {
	return fx * c.At(l)
}

// IsExclusive reports whether c behaves exactly like the exclusive policy on
// l = 1..horizon. Theorem 6 is a statement about this predicate: every
// congestion function for which it is false has SPoA > 1.
func IsExclusive(c Congestion, horizon int) bool {
	if c.At(1) != 1 {
		return false
	}
	for l := 2; l <= horizon; l++ {
		if c.At(l) != 0 {
			return false
		}
	}
	return true
}

// Exclusive is the paper's "Judgment of Solomon" policy Cexc: full reward
// when alone, nothing under any collision.
type Exclusive struct{}

// At implements Congestion.
func (Exclusive) At(l int) float64 {
	if l == 1 {
		return 1
	}
	return 0
}

// Name implements Congestion.
func (Exclusive) Name() string { return "exclusive" }

// Sharing is the scramble-competition policy Cshare(l) = 1/l: colliding
// players split the site value equally. This is the policy studied by
// Kleinberg and Oren [23] and most of the IFD ecology literature.
type Sharing struct{}

// At implements Congestion.
func (Sharing) At(l int) float64 { return 1 / float64(l) }

// Name implements Congestion.
func (Sharing) Name() string { return "sharing" }

// Constant is the no-congestion policy C(l) = 1: every visitor obtains the
// full site value. Its SPoA grows like k (Section 1.2 of the paper).
type Constant struct{}

// At implements Congestion.
func (Constant) At(l int) float64 { return 1 }

// Name implements Congestion.
func (Constant) Name() string { return "constant" }

// TwoPoint is the one-parameter family Cc of Figure 1: C(1) = 1 and
// C(l) = C2 for every l >= 2. C2 = 0 recovers Exclusive; C2 = 0.5 coincides
// with Sharing at l = 2 (and is exactly Sharing in the 2-player games of
// Figure 1); negative C2 models aggression.
type TwoPoint struct {
	// C2 is the per-player multiplier under any collision (l >= 2).
	C2 float64
}

// At implements Congestion.
func (c TwoPoint) At(l int) float64 {
	if l == 1 {
		return 1
	}
	return c.C2
}

// Name implements Congestion.
func (c TwoPoint) Name() string { return fmt.Sprintf("twopoint(c=%g)", c.C2) }

// PowerLaw is C(l) = l^(-Beta). Beta = 0 is Constant, Beta = 1 is Sharing,
// Beta > 1 punishes collisions harder than equal splitting.
type PowerLaw struct {
	// Beta is the congestion exponent; must be >= 0 for monotonicity.
	Beta float64
}

// At implements Congestion.
func (c PowerLaw) At(l int) float64 {
	if l == 1 {
		return 1
	}
	return math.Pow(float64(l), -c.Beta)
}

// Name implements Congestion.
func (c PowerLaw) Name() string { return fmt.Sprintf("powerlaw(beta=%g)", c.Beta) }

// Cooperative is C(l) = Gamma^(l-1) with Gamma in (1/2, 1): visitors lose
// less than their equal share when colliding, modelling synergy at a patch
// (each of l players gets more than f(x)/l for moderate l). It still
// satisfies the congestion axioms since Gamma < 1.
type Cooperative struct {
	// Gamma is the per-extra-player retention factor, in (0, 1).
	Gamma float64
}

// At implements Congestion.
func (c Cooperative) At(l int) float64 {
	return math.Pow(c.Gamma, float64(l-1))
}

// Name implements Congestion.
func (c Cooperative) Name() string { return fmt.Sprintf("cooperative(gamma=%g)", c.Gamma) }

// Aggressive is C(1) = 1 and C(l) = -Penalty*(l-1) for l >= 2: collisions
// hurt, and hurt more the more players pile on (injuries from contests over
// the patch). Penalty must be >= 0.
type Aggressive struct {
	// Penalty is the per-opponent damage coefficient.
	Penalty float64
}

// At implements Congestion.
func (c Aggressive) At(l int) float64 {
	if l == 1 {
		return 1
	}
	return -c.Penalty * float64(l-1)
}

// Name implements Congestion.
func (c Aggressive) Name() string { return fmt.Sprintf("aggressive(penalty=%g)", c.Penalty) }

// Table is a congestion function given by an explicit table for small l and
// a constant tail: C(l) = Head[l-1] for l <= len(Head), and Tail beyond.
type Table struct {
	// Head lists C(1), C(2), ... explicitly. Head[0] must be 1.
	Head []float64
	// Tail is the value of C(l) for l > len(Head).
	Tail float64
}

// At implements Congestion.
func (c Table) At(l int) float64 {
	if l <= 0 {
		return math.NaN()
	}
	if l <= len(c.Head) {
		return c.Head[l-1]
	}
	return c.Tail
}

// Name implements Congestion.
func (c Table) Name() string { return fmt.Sprintf("table(%d+tail)", len(c.Head)) }

// NewTable builds a Table and validates it up to len(head)+1.
func NewTable(head []float64, tail float64) (Table, error) {
	t := Table{Head: append([]float64(nil), head...), Tail: tail}
	if err := Validate(t, len(head)+1); err != nil {
		return Table{}, err
	}
	return t, nil
}

// Standard returns the named standard policies evaluated in the experiments,
// in a stable order suitable for table rows.
func Standard() []Congestion {
	return []Congestion{
		Exclusive{},
		Sharing{},
		Constant{},
		TwoPoint{C2: 0.25},
		TwoPoint{C2: -0.25},
		PowerLaw{Beta: 2},
		Cooperative{Gamma: 0.9},
		Aggressive{Penalty: 0.5},
	}
}
