package policy

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestExclusive(t *testing.T) {
	c := Exclusive{}
	if c.At(1) != 1 {
		t.Errorf("C(1) = %v", c.At(1))
	}
	for l := 2; l <= 10; l++ {
		if c.At(l) != 0 {
			t.Errorf("C(%d) = %v, want 0", l, c.At(l))
		}
	}
	if !IsExclusive(c, 50) {
		t.Error("IsExclusive(Exclusive) = false")
	}
}

func TestSharing(t *testing.T) {
	c := Sharing{}
	for l := 1; l <= 10; l++ {
		if got, want := c.At(l), 1/float64(l); got != want {
			t.Errorf("C(%d) = %v, want %v", l, got, want)
		}
	}
}

func TestConstant(t *testing.T) {
	c := Constant{}
	for l := 1; l <= 10; l++ {
		if c.At(l) != 1 {
			t.Errorf("C(%d) = %v", l, c.At(l))
		}
	}
}

func TestTwoPoint(t *testing.T) {
	c := TwoPoint{C2: -0.3}
	if c.At(1) != 1 {
		t.Errorf("C(1) = %v", c.At(1))
	}
	if c.At(2) != -0.3 || c.At(7) != -0.3 {
		t.Errorf("tail values: %v, %v", c.At(2), c.At(7))
	}
	// c = 0 is exactly exclusive.
	if !IsExclusive(TwoPoint{C2: 0}, 20) {
		t.Error("TwoPoint{0} should be exclusive")
	}
	if IsExclusive(TwoPoint{C2: 0.1}, 20) {
		t.Error("TwoPoint{0.1} should not be exclusive")
	}
}

func TestTwoPointMatchesSharingAtTwoPlayers(t *testing.T) {
	// In the 2-player games of Figure 1, c = 0.5 is the sharing policy.
	c := TwoPoint{C2: 0.5}
	s := Sharing{}
	for l := 1; l <= 2; l++ {
		if c.At(l) != s.At(l) {
			t.Errorf("l=%d: twopoint %v != sharing %v", l, c.At(l), s.At(l))
		}
	}
}

func TestPowerLaw(t *testing.T) {
	if got := (PowerLaw{Beta: 1}).At(4); got != 0.25 {
		t.Errorf("beta=1 C(4) = %v", got)
	}
	if got := (PowerLaw{Beta: 0}).At(9); got != 1 {
		t.Errorf("beta=0 C(9) = %v", got)
	}
	if got := (PowerLaw{Beta: 2}).At(2); got != 0.25 {
		t.Errorf("beta=2 C(2) = %v", got)
	}
}

func TestCooperativeExceedsEqualShare(t *testing.T) {
	c := Cooperative{Gamma: 0.9}
	// Cooperation: each of l players receives more than f/l for small l > 1.
	for l := 2; l <= 5; l++ {
		if c.At(l) <= 1/float64(l) {
			t.Errorf("C(%d) = %v, want > %v (cooperation)", l, c.At(l), 1/float64(l))
		}
	}
}

func TestAggressiveNegative(t *testing.T) {
	c := Aggressive{Penalty: 0.5}
	if c.At(1) != 1 {
		t.Errorf("C(1) = %v", c.At(1))
	}
	if c.At(2) != -0.5 {
		t.Errorf("C(2) = %v", c.At(2))
	}
	if c.At(4) != -1.5 {
		t.Errorf("C(4) = %v", c.At(4))
	}
}

func TestTable(t *testing.T) {
	tab, err := NewTable([]float64{1, 0.4, 0.1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0.4, 0.1, 0, 0}
	for l := 1; l <= 5; l++ {
		if got := tab.At(l); got != want[l-1] {
			t.Errorf("C(%d) = %v, want %v", l, got, want[l-1])
		}
	}
	if !math.IsNaN(tab.At(0)) {
		t.Error("C(0) should be NaN")
	}
}

func TestNewTableRejectsInvalid(t *testing.T) {
	if _, err := NewTable([]float64{0.9, 0.4}, 0); !errors.Is(err, ErrCOneNotUnit) {
		t.Errorf("C(1) != 1: err = %v", err)
	}
	if _, err := NewTable([]float64{1, 0.2, 0.5}, 0); !errors.Is(err, ErrNotMonotone) {
		t.Errorf("non-monotone: err = %v", err)
	}
	if _, err := NewTable([]float64{1, 0.2}, 0.5); !errors.Is(err, ErrNotMonotone) {
		t.Errorf("rising tail: err = %v", err)
	}
	if _, err := NewTable([]float64{1, math.NaN()}, 0); !errors.Is(err, ErrNotFinite) {
		t.Errorf("NaN entry: err = %v", err)
	}
}

func TestValidateStandardPolicies(t *testing.T) {
	for _, c := range Standard() {
		if err := Validate(c, 25); err != nil {
			t.Errorf("standard policy %s invalid: %v", c.Name(), err)
		}
	}
}

func TestValidateHorizonClamp(t *testing.T) {
	if err := Validate(Exclusive{}, 0); err != nil {
		t.Errorf("horizon 0 should clamp to 1: %v", err)
	}
}

func TestReward(t *testing.T) {
	if got := Reward(Sharing{}, 6, 3); got != 2 {
		t.Errorf("Reward = %v, want 2", got)
	}
	if got := Reward(Exclusive{}, 6, 2); got != 0 {
		t.Errorf("Reward under collision = %v, want 0", got)
	}
	if got := Reward(Aggressive{Penalty: 1}, 2, 3); got != -4 {
		t.Errorf("aggressive Reward = %v, want -4", got)
	}
}

func TestNamesAreDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Standard() {
		if seen[c.Name()] {
			t.Errorf("duplicate policy name %q", c.Name())
		}
		seen[c.Name()] = true
	}
}

func TestMonotonicityQuick(t *testing.T) {
	// All parameterized families remain valid congestion functions across
	// their parameter ranges.
	f := func(raw float64) bool {
		u := math.Abs(math.Mod(raw, 1)) // in [0,1)
		policies := []Congestion{
			TwoPoint{C2: u},       // in [0,1)
			TwoPoint{C2: -u},      // negative branch
			PowerLaw{Beta: 3 * u}, // beta in [0,3)
			Cooperative{Gamma: 0.999 - 0.9*u},
			Aggressive{Penalty: 2 * u},
		}
		for _, c := range policies {
			if Validate(c, 30) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIsExclusiveRejectsWrongCOne(t *testing.T) {
	tab := Table{Head: []float64{0.5}, Tail: 0}
	if IsExclusive(tab, 5) {
		t.Error("C(1) != 1 must not be exclusive")
	}
}
