// Package pureeq enumerates the pure (non-symmetric) Nash equilibria the
// paper discusses in Section 1.2: the dispersal game also has pure
// equilibria, but their number grows exponentially with the number of
// players ("choosing an equilibrium among those requires coordination"),
// which is why the paper restricts attention to symmetric equilibria.
//
// Experiment E17 verifies the discussion quantitatively: under the
// exclusive policy with strictly decreasing values and M >= k, the pure
// equilibria are exactly the k! assignments of players to the top-k sites,
// all with the full-coordination coverage sum_{x<=k} f(x).
package pureeq

import (
	"context"
	"errors"
	"fmt"
	"math"

	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/solve"
)

// Errors returned by the enumerator.
var (
	ErrPlayers  = errors.New("pureeq: player count k must be >= 1")
	ErrTooLarge = errors.New("pureeq: profile space exceeds the enumeration limit")
)

// Profile assigns each player a site (0-based).
type Profile []int

// Clone returns an independent copy.
func (p Profile) Clone() Profile {
	out := make(Profile, len(p))
	copy(out, p)
	return out
}

// Coverage returns the total value of the sites visited by the profile.
func (p Profile) Coverage(f site.Values) float64 {
	seen := make(map[int]bool, len(p))
	var acc numeric.Accumulator
	for _, x := range p {
		if !seen[x] {
			seen[x] = true
			acc.Add(f[x])
		}
	}
	return acc.Sum()
}

// IsNash reports whether the profile is a pure Nash equilibrium of the game
// (f, C): no player can strictly gain by unilaterally moving to another
// site. Ties are broken with tolerance tol (a deviation must improve by
// more than tol to count).
func IsNash(f site.Values, c policy.Congestion, p Profile, tol float64) bool {
	m := len(f)
	counts := make([]int, m)
	for _, x := range p {
		counts[x]++
	}
	for _, x := range p {
		current := policy.Reward(c, f[x], counts[x])
		for y := 0; y < m; y++ {
			if y == x {
				continue
			}
			if policy.Reward(c, f[y], counts[y]+1) > current+tol {
				return false
			}
		}
	}
	return true
}

// Summary aggregates an enumeration.
type Summary struct {
	// Profiles is the number of pure profiles examined (M^k).
	Profiles int
	// Equilibria is the number of pure Nash equilibria found.
	Equilibria int
	// BestCoverage and WorstCoverage bound the coverage across equilibria
	// (both 0 when none exist).
	BestCoverage, WorstCoverage float64
	// Witnesses holds up to MaxWitnesses example equilibria.
	Witnesses []Profile
}

// MaxWitnesses caps the stored example equilibria.
const MaxWitnesses = 8

// Enumerate brute-forces all M^k pure profiles of the game (f, k, C) and
// summarizes the Nash equilibria among them. limit guards the state-space
// size (M^k <= limit, default 1<<22 when limit <= 0).
func Enumerate(f site.Values, k int, c policy.Congestion, limit int) (Summary, error) {
	return EnumerateContext(context.Background(), f, k, c, limit)
}

// EnumerateContext is Enumerate under a context: the exponential profile
// scan checks for cancellation every few thousand profiles, so a deadline
// bounds the brute force even when M^k is huge.
func EnumerateContext(ctx context.Context, f site.Values, k int, c policy.Congestion, limit int) (Summary, error) {
	if err := f.Validate(); err != nil {
		return Summary{}, err
	}
	if k < 1 {
		return Summary{}, fmt.Errorf("%w: k=%d", ErrPlayers, k)
	}
	if err := policy.Validate(c, k); err != nil {
		return Summary{}, err
	}
	if limit <= 0 {
		limit = 1 << 22
	}
	m := len(f)
	total := 1
	for i := 0; i < k; i++ {
		if total > limit/m {
			return Summary{}, fmt.Errorf("%w: %d^%d > %d", ErrTooLarge, m, k, limit)
		}
		total *= m
	}
	sum := Summary{
		Profiles:      total,
		BestCoverage:  math.Inf(-1),
		WorstCoverage: math.Inf(1),
	}
	// Precompute the reward table I(x, l) = f(x) * C(l) from the solver
	// core's congestion level table instead of re-deriving f(x)*C(l) policy
	// call by policy call inside the profile scan. Occupancies stay in
	// [1, k]: a deviating player frees its own site before joining another,
	// so a target site holds at most k-1 others.
	levels := solve.Levels(c, k)
	reward := make([][]float64, m)
	for x := 0; x < m; x++ {
		row := make([]float64, k+1)
		for l := 1; l <= k; l++ {
			row[l] = f[x] * levels[l-1]
		}
		reward[x] = row
	}
	// Walk the profile space in base-M odometer order — the same order the
	// old per-index decode produced — maintaining the site occupancy counts
	// incrementally (amortized O(1) per profile instead of O(k)).
	profile := make(Profile, k)
	counts := make([]int, m)
	counts[0] = k
	for idx := 0; idx < total; idx++ {
		if idx%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return sum, err
			}
		}
		if isNashTable(reward, profile, counts, 1e-12) {
			sum.Equilibria++
			cov := profile.Coverage(f)
			if cov > sum.BestCoverage {
				sum.BestCoverage = cov
			}
			if cov < sum.WorstCoverage {
				sum.WorstCoverage = cov
			}
			if len(sum.Witnesses) < MaxWitnesses {
				sum.Witnesses = append(sum.Witnesses, profile.Clone())
			}
		}
		// Odometer increment with carry, least-significant player first.
		for i := 0; i < k; i++ {
			counts[profile[i]]--
			profile[i]++
			if profile[i] < m {
				counts[profile[i]]++
				break
			}
			profile[i] = 0
			counts[0]++
		}
	}
	if sum.Equilibria == 0 {
		sum.BestCoverage, sum.WorstCoverage = 0, 0
	}
	return sum, nil
}

// isNashTable is IsNash over a precomputed reward table and maintained
// occupancy counts: no player may gain more than tol by a unilateral move.
func isNashTable(reward [][]float64, p Profile, counts []int, tol float64) bool {
	for _, x := range p {
		current := reward[x][counts[x]]
		for y := range reward {
			if y == x {
				continue
			}
			if reward[y][counts[y]+1] > current+tol {
				return false
			}
		}
	}
	return true
}

// Factorial returns k! as an int (valid for k <= 20).
func Factorial(k int) int {
	out := 1
	for i := 2; i <= k; i++ {
		out *= i
	}
	return out
}
