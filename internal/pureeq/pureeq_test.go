package pureeq

import (
	"errors"
	"math/rand/v2"
	"testing"

	"dispersal/internal/coverage"
	"dispersal/internal/ifd"
	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/site"
)

func TestExclusivePureEquilibriaAreTopKPermutations(t *testing.T) {
	// Strictly decreasing values, M >= k: the pure NE under the exclusive
	// policy are exactly the k! one-to-one assignments onto the top-k
	// sites, each achieving the full-coordination coverage.
	cases := []struct{ m, k int }{
		{3, 2}, {4, 3}, {5, 3}, {6, 4},
	}
	for _, c := range cases {
		f := site.Geometric(c.m, 1, 0.8)
		sum, err := Enumerate(f, c.k, policy.Exclusive{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := Factorial(c.k); sum.Equilibria != want {
			t.Errorf("M=%d k=%d: %d pure NE, want %d = k!", c.m, c.k, sum.Equilibria, want)
		}
		wantCover := f.PrefixSum(c.k)
		if !numeric.AlmostEqual(sum.BestCoverage, wantCover, 1e-12) ||
			!numeric.AlmostEqual(sum.WorstCoverage, wantCover, 1e-12) {
			t.Errorf("M=%d k=%d: coverage range [%v, %v], want %v",
				c.m, c.k, sum.WorstCoverage, sum.BestCoverage, wantCover)
		}
	}
}

func TestPureEquilibriaBeatSymmetricCoverage(t *testing.T) {
	// Pure NE under the exclusive policy reach the full-coordination
	// coverage, which strictly exceeds the best symmetric coverage when
	// collisions are possible — the coordination premium of Section 1.2.
	f := site.Geometric(5, 1, 0.7)
	k := 3
	sum, err := Enumerate(f, k, policy.Exclusive{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sigma, _, err := ifd.Exclusive(f, k)
	if err != nil {
		t.Fatal(err)
	}
	symCover := coverage.Cover(f, sigma, k)
	if sum.BestCoverage <= symCover {
		t.Errorf("pure NE coverage %v should exceed symmetric optimum %v",
			sum.BestCoverage, symCover)
	}
}

func TestIsNashDetectsDeviations(t *testing.T) {
	f := site.Values{1, 0.5, 0.2}
	c := policy.Exclusive{}
	if !IsNash(f, c, Profile{0, 1}, 1e-12) {
		t.Error("top-2 assignment rejected")
	}
	// Both on site 1: each gets 0 and deviating to an empty site pays.
	if IsNash(f, c, Profile{0, 0}, 1e-12) {
		t.Error("full collision accepted as NE")
	}
	// One player on the worst site with a better empty site available.
	if IsNash(f, c, Profile{0, 2}, 1e-12) {
		t.Error("dominated placement accepted as NE")
	}
}

func TestSharingPureEquilibriaUniformSites(t *testing.T) {
	// Two identical sites, two players, sharing: the spread profiles (each
	// on its own site, payoff 1) are NE; the collided profiles (payoff 1/2
	// each, deviation pays 1) are not.
	f := site.Values{1, 1}
	sum, err := Enumerate(f, 2, policy.Sharing{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Equilibria != 2 {
		t.Errorf("equilibria = %d, want 2 (the two spread assignments)", sum.Equilibria)
	}
}

func TestConstantPolicyEveryoneOnTop(t *testing.T) {
	// C == 1 with strictly decreasing values: the unique pure NE is all
	// players on site 1.
	f := site.Values{1, 0.9}
	sum, err := Enumerate(f, 3, policy.Constant{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Equilibria != 1 {
		t.Errorf("equilibria = %d, want 1", sum.Equilibria)
	}
	if sum.BestCoverage != 1 {
		t.Errorf("coverage = %v, want 1", sum.BestCoverage)
	}
	if len(sum.Witnesses) != 1 || sum.Witnesses[0][0] != 0 {
		t.Errorf("witness = %v", sum.Witnesses)
	}
}

func TestEnumerateLimit(t *testing.T) {
	f := site.Uniform(10, 1)
	if _, err := Enumerate(f, 10, policy.Exclusive{}, 1000); !errors.Is(err, ErrTooLarge) {
		t.Error("oversized enumeration accepted")
	}
}

func TestEnumerateErrors(t *testing.T) {
	if _, err := Enumerate(site.Values{1}, 0, policy.Exclusive{}, 0); !errors.Is(err, ErrPlayers) {
		t.Error("k=0 accepted")
	}
	if _, err := Enumerate(site.Values{0.5, 1}, 2, policy.Exclusive{}, 0); err == nil {
		t.Error("unsorted f accepted")
	}
}

func TestProfileCoverage(t *testing.T) {
	f := site.Values{3, 2, 1}
	if got := (Profile{0, 0, 2}).Coverage(f); got != 4 {
		t.Errorf("Coverage = %v, want 4", got)
	}
	if got := (Profile{1}).Coverage(f); got != 2 {
		t.Errorf("Coverage = %v, want 2", got)
	}
}

func TestFactorial(t *testing.T) {
	want := map[int]int{0: 1, 1: 1, 2: 2, 3: 6, 5: 120}
	for k, v := range want {
		if got := Factorial(k); got != v {
			t.Errorf("Factorial(%d) = %d, want %d", k, got, v)
		}
	}
}

func TestWitnessCap(t *testing.T) {
	// 4 sites, 4 players, exclusive, strict values: 24 equilibria but at
	// most MaxWitnesses stored.
	f := site.Geometric(4, 1, 0.9)
	sum, err := Enumerate(f, 4, policy.Exclusive{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Equilibria != 24 {
		t.Errorf("equilibria = %d", sum.Equilibria)
	}
	if len(sum.Witnesses) != MaxWitnesses {
		t.Errorf("witnesses = %d, want %d", len(sum.Witnesses), MaxWitnesses)
	}
}

// TestEnumerateMatchesDirectIsNash differentially checks the table-backed
// incremental scan against the exported per-profile IsNash on random games:
// the refactor onto the solver core's level table must not change which
// profiles count as equilibria, nor the enumeration order of the witnesses.
func TestEnumerateMatchesDirectIsNash(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 4))
	policies := []policy.Congestion{
		policy.Exclusive{}, policy.Sharing{}, policy.Constant{},
		policy.TwoPoint{C2: 0.4}, policy.PowerLaw{Beta: 1.2},
		policy.Cooperative{Gamma: 0.7}, policy.Aggressive{Penalty: 0.25},
	}
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.IntN(3)
		k := 2 + rng.IntN(3)
		raw := make([]float64, m)
		for i := range raw {
			raw[i] = 0.1 + rng.Float64()
		}
		f := site.Values(site.Sorted(raw))
		c := policies[trial%len(policies)]
		got, err := Enumerate(f, k, c, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Reference: the old-style decode-and-check scan.
		want := 0
		var witnesses []Profile
		total := 1
		for i := 0; i < k; i++ {
			total *= m
		}
		profile := make(Profile, k)
		for idx := 0; idx < total; idx++ {
			v := idx
			for i := 0; i < k; i++ {
				profile[i] = v % m
				v /= m
			}
			if IsNash(f, c, profile, 1e-12) {
				want++
				if len(witnesses) < MaxWitnesses {
					witnesses = append(witnesses, profile.Clone())
				}
			}
		}
		if got.Equilibria != want {
			t.Fatalf("trial %d (%s, m=%d k=%d): %d equilibria, reference found %d",
				trial, c.Name(), m, k, got.Equilibria, want)
		}
		if len(got.Witnesses) != len(witnesses) {
			t.Fatalf("trial %d: witness count %d vs %d", trial, len(got.Witnesses), len(witnesses))
		}
		for i := range witnesses {
			for j := range witnesses[i] {
				if got.Witnesses[i][j] != witnesses[i][j] {
					t.Fatalf("trial %d: witness %d differs: %v vs %v", trial, i, got.Witnesses[i], witnesses[i])
				}
			}
		}
	}
}
