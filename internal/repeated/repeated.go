// Package repeated implements a repeated dispersal game with resource
// depletion and regrowth — the "other forms of repetition" the paper leaves
// open in Section 5.1. Patches carry stocks that are consumed when visited
// and regrow toward their base value between bouts:
//
//	s_post(x) = s(x) * P[site x unvisited]           (consumption)
//	s_next(x) = s_post(x) + r * (f(x) - s_post(x))   (regrowth, r in [0,1])
//
// Players re-equilibrate every bout: they play the IFD of their congestion
// policy on the *current* stock vector (the adaptive mode), or keep playing
// the static IFD of the base values. In steady state the per-bout group
// harvest equals the per-bout regrowth inflow, so policies that cover the
// current stocks better (Theorem 4: the exclusive policy is the best among
// them) keep stocks lower and sustain a strictly higher long-run harvest —
// experiment E19.
//
// Both a deterministic mean-field recursion (expected stocks) and a
// stochastic Monte-Carlo simulator are provided; the tests check that they
// agree on policy ordering and that the mean-field fixed point is stable.
package repeated

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"

	"dispersal/internal/ifd"
	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/stats"
	"dispersal/internal/strategy"
)

// Errors returned by the drivers.
var (
	ErrRegrowth = errors.New("repeated: regrowth rate must be in [0, 1]")
	ErrBouts    = errors.New("repeated: bouts must be >= 1")
	ErrPlayers  = errors.New("repeated: player count k must be >= 1")
)

// stockFloor is the stock level below which a patch is treated as empty
// for equilibrium computation (avoids degenerate zero-value sites).
const stockFloor = 1e-12

// Config describes a repeated-foraging run.
type Config struct {
	// F is the base (carrying-capacity) value of each patch, sorted
	// non-increasing as usual.
	F site.Values
	// K is the number of players per bout.
	K int
	// C is the congestion policy.
	C policy.Congestion
	// Regrowth is the per-bout recovery fraction r in [0, 1].
	Regrowth float64
	// Bouts is the number of bouts to run.
	Bouts int
	// BurnIn is the number of initial bouts excluded from the harvest
	// statistics (default Bouts/4).
	BurnIn int
	// Adaptive selects per-bout re-equilibration on current stocks; when
	// false, players keep the static IFD of F.
	Adaptive bool
	// Seed drives the Monte-Carlo simulator (unused by MeanField).
	Seed uint64
}

func (cfg Config) validate() (Config, error) {
	if err := cfg.F.Validate(); err != nil {
		return cfg, err
	}
	if cfg.K < 1 {
		return cfg, fmt.Errorf("%w: k=%d", ErrPlayers, cfg.K)
	}
	if cfg.Regrowth < 0 || cfg.Regrowth > 1 {
		return cfg, fmt.Errorf("%w: r=%v", ErrRegrowth, cfg.Regrowth)
	}
	if cfg.Bouts < 1 {
		return cfg, fmt.Errorf("%w: %d", ErrBouts, cfg.Bouts)
	}
	if cfg.BurnIn <= 0 {
		cfg.BurnIn = cfg.Bouts / 4
	}
	if cfg.BurnIn >= cfg.Bouts {
		cfg.BurnIn = cfg.Bouts - 1
	}
	if err := policy.Validate(cfg.C, cfg.K); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// Result summarizes a repeated run.
type Result struct {
	// Harvest summarizes the per-bout group harvest after burn-in.
	Harvest stats.Summary
	// FinalStocks is the stock vector after the last bout.
	FinalStocks []float64
	// MeanStock is the average total stock after burn-in.
	MeanStock float64
}

// EquilibriumOnStocks computes the strategy the players adopt on an
// arbitrary (possibly unsorted, possibly partially depleted) stock vector:
// patches below the stock floor are ignored, the rest are solved as a
// dispersal game in sorted order, and the solution is mapped back to the
// original indexing. Exported for reuse by the robustness experiment.
func EquilibriumOnStocks(stocks []float64, k int, c policy.Congestion) (strategy.Strategy, error) {
	m := len(stocks)
	type pair struct {
		idx int
		v   float64
	}
	alive := make([]pair, 0, m)
	for i, v := range stocks {
		if v > stockFloor {
			alive = append(alive, pair{i, v})
		}
	}
	out := make(strategy.Strategy, m)
	if len(alive) == 0 {
		// Nothing worth visiting: spread uniformly (harvest will be ~0).
		for i := range out {
			out[i] = 1 / float64(m)
		}
		return out, nil
	}
	sort.Slice(alive, func(a, b int) bool { return alive[a].v > alive[b].v })
	f := make(site.Values, len(alive))
	for i, p := range alive {
		f[i] = p.v
	}
	eq, _, err := ifd.Solve(f, k, c)
	if err != nil {
		return nil, err
	}
	for i, p := range alive {
		out[p.idx] = eq[i]
	}
	return out, nil
}

// MeanField iterates the deterministic expected-stock recursion.
func MeanField(cfg Config) (Result, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return Result{}, err
	}
	m := len(cfg.F)
	stocks := make([]float64, m)
	copy(stocks, cfg.F)

	var static strategy.Strategy
	if !cfg.Adaptive {
		static, _, err = ifd.Solve(cfg.F, cfg.K, cfg.C)
		if err != nil {
			return Result{}, err
		}
	}

	var harvest stats.Welford
	var stockSum numeric.Accumulator
	counted := 0
	for bout := 0; bout < cfg.Bouts; bout++ {
		p := static
		if cfg.Adaptive {
			p, err = EquilibriumOnStocks(stocks, cfg.K, cfg.C)
			if err != nil {
				return Result{}, err
			}
		}
		var bh numeric.Accumulator
		for x := 0; x < m; x++ {
			miss := numeric.PowOneMinus(p[x], cfg.K)
			bh.Add(stocks[x] * (1 - miss))
			post := stocks[x] * miss
			stocks[x] = post + cfg.Regrowth*(cfg.F[x]-post)
		}
		if bout >= cfg.BurnIn {
			harvest.Add(bh.Sum())
			var tot numeric.Accumulator
			for _, s := range stocks {
				tot.Add(s)
			}
			stockSum.Add(tot.Sum())
			counted++
		}
	}
	res := Result{
		Harvest:     harvest.Summarize(),
		FinalStocks: stocks,
	}
	if counted > 0 {
		res.MeanStock = stockSum.Sum() / float64(counted)
	}
	return res, nil
}

// Simulate runs the stochastic counterpart: players sample sites, visited
// patches lose their entire current stock, stocks regrow.
func Simulate(cfg Config) (Result, error) {
	cfg, err := cfg.validate()
	if err != nil {
		return Result{}, err
	}
	m := len(cfg.F)
	stocks := make([]float64, m)
	copy(stocks, cfg.F)
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x4ad3c4f1))

	var staticSampler *strategy.Sampler
	if !cfg.Adaptive {
		p, _, err := ifd.Solve(cfg.F, cfg.K, cfg.C)
		if err != nil {
			return Result{}, err
		}
		staticSampler, err = strategy.NewSampler(p)
		if err != nil {
			return Result{}, err
		}
	}

	var harvest stats.Welford
	var stockSum numeric.Accumulator
	counted := 0
	visited := make([]bool, m)
	touched := make([]int, 0, cfg.K)
	for bout := 0; bout < cfg.Bouts; bout++ {
		smp := staticSampler
		if cfg.Adaptive {
			p, err := EquilibriumOnStocks(stocks, cfg.K, cfg.C)
			if err != nil {
				return Result{}, err
			}
			smp, err = strategy.NewSampler(p)
			if err != nil {
				return Result{}, err
			}
		}
		touched = touched[:0]
		var bh float64
		for i := 0; i < cfg.K; i++ {
			x := smp.Sample(rng)
			if !visited[x] {
				visited[x] = true
				touched = append(touched, x)
				bh += stocks[x]
			}
		}
		for _, x := range touched {
			stocks[x] = 0
			visited[x] = false
		}
		for x := 0; x < m; x++ {
			stocks[x] += cfg.Regrowth * (cfg.F[x] - stocks[x])
		}
		if bout >= cfg.BurnIn {
			harvest.Add(bh)
			var tot numeric.Accumulator
			for _, s := range stocks {
				tot.Add(s)
			}
			stockSum.Add(tot.Sum())
			counted++
		}
	}
	res := Result{
		Harvest:     harvest.Summarize(),
		FinalStocks: stocks,
	}
	if counted > 0 {
		res.MeanStock = stockSum.Sum() / float64(counted)
	}
	return res, nil
}
