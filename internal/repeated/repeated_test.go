package repeated

import (
	"errors"
	"math"
	"testing"

	"dispersal/internal/coverage"
	"dispersal/internal/ifd"
	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/strategy"
)

func baseConfig() Config {
	return Config{
		F:        site.Geometric(8, 1, 0.8),
		K:        4,
		C:        policy.Exclusive{},
		Regrowth: 0.3,
		Bouts:    400,
		Adaptive: true,
	}
}

func TestMeanFieldFullRegrowthMatchesOneShot(t *testing.T) {
	// r = 1 restores stocks fully every bout: each bout is the one-shot
	// game, and the harvest equals Cover(IFD).
	cfg := baseConfig()
	cfg.Regrowth = 1
	res, err := MeanField(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eq, _, err := ifd.Solve(cfg.F, cfg.K, cfg.C)
	if err != nil {
		t.Fatal(err)
	}
	want := coverage.Cover(cfg.F, eq, cfg.K)
	if !numeric.AlmostEqual(res.Harvest.Mean, want, 1e-9) {
		t.Errorf("harvest %v, want one-shot coverage %v", res.Harvest.Mean, want)
	}
	if res.Harvest.StdDev > 1e-9 {
		t.Errorf("full-regrowth harvest should be constant, stddev %v", res.Harvest.StdDev)
	}
}

func TestMeanFieldZeroRegrowthDecaysToZero(t *testing.T) {
	cfg := baseConfig()
	cfg.Regrowth = 0
	cfg.Bouts = 2000
	cfg.BurnIn = 1900
	res, err := MeanField(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Harvest.Mean > 1e-6 {
		t.Errorf("no regrowth but sustained harvest %v", res.Harvest.Mean)
	}
}

func TestMeanFieldSteadyStateHarvestEqualsInflow(t *testing.T) {
	// In steady state, harvest per bout == regrowth inflow == r * (total F
	// - total post-consumption stock). Check the identity at the final
	// state.
	cfg := baseConfig()
	cfg.Bouts = 3000
	cfg.BurnIn = 2990
	res, err := MeanField(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Harvest.StdDev > 1e-6*(1+res.Harvest.Mean) {
		t.Fatalf("not in steady state: stddev %v", res.Harvest.StdDev)
	}
	// One more bout from the final stocks reproduces the same harvest.
	p, err := EquilibriumOnStocks(res.FinalStocks, cfg.K, cfg.C)
	if err != nil {
		t.Fatal(err)
	}
	var harvest float64
	for x := range res.FinalStocks {
		harvest += res.FinalStocks[x] * (1 - numeric.PowOneMinus(p[x], cfg.K))
	}
	if !numeric.AlmostEqual(harvest, res.Harvest.Mean, 1e-6) {
		t.Errorf("fixed-point harvest %v vs steady mean %v", harvest, res.Harvest.Mean)
	}
}

func TestExclusiveSustainsHighestHarvest(t *testing.T) {
	// The Theorem-4 advantage compounds over bouts: at every regrowth rate
	// the exclusive policy's adaptive play sustains at least the harvest
	// of sharing and constant policies.
	for _, r := range []float64{0.05, 0.2, 0.5, 0.9} {
		harvests := map[string]float64{}
		for _, c := range []policy.Congestion{policy.Exclusive{}, policy.Sharing{}, policy.Constant{}} {
			cfg := baseConfig()
			cfg.C = c
			cfg.Regrowth = r
			cfg.Bouts = 600
			res, err := MeanField(cfg)
			if err != nil {
				t.Fatal(err)
			}
			harvests[c.Name()] = res.Harvest.Mean
		}
		if harvests["exclusive"] < harvests["sharing"]-1e-9 {
			t.Errorf("r=%v: exclusive %v < sharing %v", r, harvests["exclusive"], harvests["sharing"])
		}
		if harvests["exclusive"] < harvests["constant"]-1e-9 {
			t.Errorf("r=%v: exclusive %v < constant %v", r, harvests["exclusive"], harvests["constant"])
		}
	}
}

func TestAdaptiveBeatsStatic(t *testing.T) {
	// Re-equilibrating on current stocks harvests at least as much as
	// replaying the static strategy, for the exclusive policy.
	cfg := baseConfig()
	cfg.Regrowth = 0.15
	cfg.Bouts = 800
	adaptive, err := MeanField(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Adaptive = false
	static, err := MeanField(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Harvest.Mean < static.Harvest.Mean-1e-9 {
		t.Errorf("adaptive %v < static %v", adaptive.Harvest.Mean, static.Harvest.Mean)
	}
}

func TestSimulateAgreesWithMeanFieldOrdering(t *testing.T) {
	// The stochastic simulator preserves the exclusive > sharing harvest
	// ordering (absolute values differ: stock dynamics are nonlinear).
	run := func(c policy.Congestion) float64 {
		cfg := baseConfig()
		cfg.C = c
		cfg.Regrowth = 0.2
		cfg.Bouts = 4000
		cfg.Seed = 11
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Harvest.Mean
	}
	excl := run(policy.Exclusive{})
	shar := run(policy.Sharing{})
	if excl <= shar {
		t.Errorf("simulated: exclusive %v <= sharing %v", excl, shar)
	}
}

func TestSimulateFullRegrowthMatchesCoverage(t *testing.T) {
	cfg := baseConfig()
	cfg.Regrowth = 1
	cfg.Bouts = 40000
	cfg.Seed = 5
	// With full regrowth the adaptive equilibrium equals the static one;
	// use the static mode to keep the test fast.
	cfg.Adaptive = false
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eq, _, err := ifd.Solve(cfg.F, cfg.K, cfg.C)
	if err != nil {
		t.Fatal(err)
	}
	want := coverage.Cover(cfg.F, eq, cfg.K)
	if d := math.Abs(res.Harvest.Mean - want); d > 4*res.Harvest.CI95+1e-9 {
		t.Errorf("simulated %v vs analytic %v", res.Harvest.Mean, want)
	}
}

func TestEquilibriumOnStocksUnsorted(t *testing.T) {
	// Depleted stocks out of order: the helper must solve correctly and
	// map back.
	stocks := []float64{0.2, 0.9, 0.5}
	p, err := EquilibriumOnStocks(stocks, 3, policy.Exclusive{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The IFD on sorted (0.9, 0.5, 0.2) gives decreasing probabilities;
	// mapped back, site 2 (0.9) gets the most mass.
	if !(p[1] > p[2] && p[2] > p[0]) {
		t.Errorf("mass ordering wrong: %v for stocks %v", p, stocks)
	}
	// And it is a genuine equilibrium of the sorted game.
	sorted := site.Values{0.9, 0.5, 0.2}
	ordered := strategy.Strategy{p[1], p[2], p[0]}
	if err := ifd.Check(sorted, ordered, 3, policy.Exclusive{}, 1e-6); err != nil {
		t.Errorf("not an IFD: %v", err)
	}
}

func TestEquilibriumOnStocksAllEmpty(t *testing.T) {
	p, err := EquilibriumOnStocks([]float64{0, 0, 0}, 2, policy.Exclusive{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("fallback not a distribution: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := baseConfig()
	cfg.Regrowth = 1.5
	if _, err := MeanField(cfg); !errors.Is(err, ErrRegrowth) {
		t.Error("r>1 accepted")
	}
	cfg = baseConfig()
	cfg.Bouts = 0
	if _, err := MeanField(cfg); !errors.Is(err, ErrBouts) {
		t.Error("bouts=0 accepted")
	}
	cfg = baseConfig()
	cfg.K = 0
	if _, err := Simulate(cfg); !errors.Is(err, ErrPlayers) {
		t.Error("k=0 accepted")
	}
	cfg = baseConfig()
	cfg.F = site.Values{0.5, 1}
	if _, err := MeanField(cfg); err == nil {
		t.Error("unsorted F accepted")
	}
}

func TestSimulateDeterministicPerSeed(t *testing.T) {
	cfg := baseConfig()
	cfg.Bouts = 200
	cfg.Seed = 9
	a, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Harvest.Mean != b.Harvest.Mean {
		t.Error("same seed diverged")
	}
}
