package rescache

// In-flight frame chains: the singleflight idea lifted from single keys to
// whole key sequences. A trajectory stream is a chain of frame keys solved
// in order; when N identical streams run concurrently, per-key singleflight
// alone still lets a follower overtake the leader (its cache hits are
// cheap) and become the computer of the next frame — correct, but the
// overtaker solves from a re-seeded warm chain, so results can drift in
// the low-order bits between streams. Registering the chain itself keeps
// the roles fixed: the first stream to announce a signature leads and
// publishes every frame result; followers wait per frame and emit the
// leader's exact values, so N identical concurrent trajectories are
// byte-identical and cost one solve per frame. A leader that disconnects
// aborts the chain from its cursor, and followers fall back to the
// per-key path — coalescing degrades, correctness never.

import (
	"context"
	"strconv"
	"sync"
)

// Chains is a registry of in-flight frame chains keyed by signature (a
// digest of every frame key in order, so only byte-identical frame
// sequences share a chain).
type Chains[V any] struct {
	mu     sync.Mutex
	chains map[string]*Chain[V]
}

// NewChains builds an empty chain registry.
func NewChains[V any]() *Chains[V] {
	return &Chains[V]{chains: make(map[string]*Chain[V])}
}

// ChainSig digests a frame-key sequence into a chain signature.
func ChainSig(keys []string) string {
	h := uint64(0xcbf29ce484222325)
	for _, k := range keys {
		for i := 0; i < len(k); i++ {
			h ^= uint64(k[i])
			h *= 0x100000001b3
		}
		// Separate keys so boundaries participate in the digest.
		h ^= '\x1f'
		h *= 0x100000001b3
	}
	return strconv.FormatUint(h, 16) + ":" + strconv.Itoa(len(keys))
}

// Join attaches the caller to the chain named sig with n frames, creating
// it if absent. The second result reports the caller's role: true for the
// leader (who must Publish every frame, or Abort) and false for a
// follower (who Waits). A signature collision with a different frame
// count — practically impossible, the count is part of the signature —
// returns a nil chain: the caller runs solo on the per-key path.
func (c *Chains[V]) Join(sig string, n int) (*Chain[V], bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ch, ok := c.chains[sig]; ok {
		if len(ch.slots) != n {
			return nil, false
		}
		ch.mu.Lock()
		ch.refs++
		ch.mu.Unlock()
		return ch, false
	}
	ch := &Chain[V]{sig: sig, reg: c, refs: 1, aborted: n + 1, slots: make([]chainSlot[V], n)}
	for i := range ch.slots {
		ch.slots[i].ready = make(chan struct{})
	}
	c.chains[sig] = ch
	return ch, true
}

// Chain is one in-flight frame chain. The leader publishes results in
// frame order; followers wait on them. A Chain keeps working after it is
// removed from the registry — late followers simply read the published
// slots.
type Chain[V any] struct {
	sig string
	reg *Chains[V]

	mu   sync.Mutex
	refs int
	// aborted is the first frame index no result will ever arrive for;
	// len(slots)+1 means "none" (the chain is, or may yet complete,
	// whole).
	aborted int
	slots   []chainSlot[V]
}

// chainSlot is one frame's publication: ready closes when the result is
// set or the chain aborts at or before the slot.
type chainSlot[V any] struct {
	ready     chan struct{}
	val       V
	published bool
}

// Publish records frame i's result and wakes its waiters. Leader only;
// publishing a frame twice or after Abort covers it is a no-op.
func (ch *Chain[V]) Publish(i int, v V) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if i < 0 || i >= len(ch.slots) || i >= ch.aborted || ch.slots[i].published {
		return
	}
	ch.slots[i].val = v
	ch.slots[i].published = true
	close(ch.slots[i].ready)
}

// Abort marks every unpublished frame from i on as never coming and wakes
// its waiters; they fall back to computing. A parking or failing leader
// must call it (Leave aborts at 0 as a backstop).
func (ch *Chain[V]) Abort(i int) {
	if i < 0 {
		i = 0
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if i >= ch.aborted {
		return
	}
	ch.aborted = i
	for j := i; j < len(ch.slots); j++ {
		if !ch.slots[j].published {
			close(ch.slots[j].ready)
		}
	}
}

// Wait blocks until frame i is published, the chain aborts at or before i,
// or ctx expires. ok reports whether a value arrived; on false (and a nil
// error) the follower computes the frame itself.
func (ch *Chain[V]) Wait(ctx context.Context, i int) (v V, ok bool, err error) {
	if i < 0 || i >= len(ch.slots) {
		return v, false, nil
	}
	select {
	case <-ch.slots[i].ready:
	case <-ctx.Done():
		return v, false, ctx.Err()
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if !ch.slots[i].published {
		return v, false, nil
	}
	return ch.slots[i].val, true, nil
}

// Leave detaches a participant. A leaving leader that has not published
// its whole chain aborts the remainder (done is the first frame it did not
// publish). The chain is removed from the registry when the last
// participant leaves, so a fresh identical stream later starts a fresh
// chain (and finds every frame in the result cache anyway).
func (ch *Chain[V]) Leave(leader bool, done int) {
	if leader {
		if done < len(ch.slots) {
			ch.Abort(done)
		}
	}
	ch.mu.Lock()
	ch.refs--
	last := ch.refs == 0
	ch.mu.Unlock()
	if last {
		ch.reg.mu.Lock()
		if ch.reg.chains[ch.sig] == ch {
			delete(ch.reg.chains, ch.sig)
		}
		ch.reg.mu.Unlock()
	}
}

// Len reports the chain's frame count.
func (ch *Chain[V]) Len() int { return len(ch.slots) }

// Active reports how many chains are currently registered.
func (c *Chains[V]) Active() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.chains)
}
