package rescache

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestDoOutcomeClassifies(t *testing.T) {
	c := New[int](16)
	ctx := context.Background()
	v, outcome, err := c.DoOutcome(ctx, "k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 || outcome != Computed {
		t.Fatalf("first call = (%d, %v, %v), want (7, Computed, nil)", v, outcome, err)
	}
	v, outcome, err = c.DoOutcome(ctx, "k", func() (int, error) { t.Error("recompute"); return 0, nil })
	if err != nil || v != 7 || outcome != Hit {
		t.Fatalf("second call = (%d, %v, %v), want (7, Hit, nil)", v, outcome, err)
	}
}

func TestDoOutcomeShared(t *testing.T) {
	c := New[int](16)
	ctx := context.Background()
	enter := make(chan struct{})
	unblock := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, outcome, err := c.DoOutcome(ctx, "k", func() (int, error) {
			close(enter)
			<-unblock
			return 7, nil
		})
		if err != nil || outcome != Computed {
			t.Errorf("leader outcome = %v, %v", outcome, err)
		}
	}()
	<-enter
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		v, outcome, err := c.DoOutcome(ctx, "k", func() (int, error) { t.Error("waiter computed"); return 0, nil })
		if err != nil || v != 7 || outcome != Shared {
			t.Errorf("waiter = (%d, %v, %v), want (7, Shared, nil)", v, outcome, err)
		}
	}()
	// Let the waiter reach the in-flight wait before releasing the leader.
	time.Sleep(time.Millisecond)
	close(unblock)
	<-done
	<-waiterDone
}

func TestChainLeaderThenFollowers(t *testing.T) {
	reg := NewChains[int]()
	sig := ChainSig([]string{"f0", "f1", "f2"})
	leader, lead := reg.Join(sig, 3)
	if !lead || leader == nil {
		t.Fatal("first join is not the leader")
	}
	follower, lead2 := reg.Join(sig, 3)
	if lead2 || follower != leader {
		t.Fatal("second join did not follow the leader's chain")
	}

	ctx := context.Background()
	results := make(chan int, 3)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			v, ok, err := follower.Wait(ctx, i)
			if err != nil || !ok {
				t.Errorf("Wait(%d) = (%v, %v)", i, ok, err)
				return
			}
			results <- v
		}
		follower.Leave(false, 0)
	}()
	for i := 0; i < 3; i++ {
		leader.Publish(i, 100+i)
	}
	leader.Leave(true, 3)
	wg.Wait()
	close(results)
	want := 100
	for v := range results {
		if v != want {
			t.Fatalf("follower got %d, want %d", v, want)
		}
		want++
	}
	if reg.Active() != 0 {
		t.Fatalf("%d chains still registered after everyone left", reg.Active())
	}
}

func TestChainAbortReleasesFollowers(t *testing.T) {
	reg := NewChains[int]()
	sig := ChainSig([]string{"f0", "f1"})
	leader, _ := reg.Join(sig, 2)
	follower, _ := reg.Join(sig, 2)

	leader.Publish(0, 1)
	if v, ok, err := follower.Wait(context.Background(), 0); err != nil || !ok || v != 1 {
		t.Fatalf("Wait(0) = (%d, %v, %v)", v, ok, err)
	}
	// The leader parks after frame 0; Leave aborts the remainder.
	leader.Leave(true, 1)
	if _, ok, err := follower.Wait(context.Background(), 1); err != nil || ok {
		t.Fatalf("Wait(1) after abort = (%v, %v), want ok=false (fall back to computing)", ok, err)
	}
	follower.Leave(false, 0)
}

func TestChainWaitHonorsContext(t *testing.T) {
	reg := NewChains[int]()
	leader, _ := reg.Join(ChainSig([]string{"f0"}), 1)
	follower, _ := reg.Join(ChainSig([]string{"f0"}), 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := follower.Wait(ctx, 0); err != context.Canceled {
		t.Fatalf("Wait on a dead ctx = %v, want context.Canceled", err)
	}
	leader.Leave(true, 0)
	follower.Leave(false, 0)
}

func TestChainLateFollowerReadsPublished(t *testing.T) {
	reg := NewChains[int]()
	sig := ChainSig([]string{"f0", "f1"})
	leader, _ := reg.Join(sig, 2)
	leader.Publish(0, 10)
	// A follower joining mid-chain reads already-published slots instantly.
	follower, lead := reg.Join(sig, 2)
	if lead {
		t.Fatal("mid-chain join became the leader")
	}
	if v, ok, _ := follower.Wait(context.Background(), 0); !ok || v != 10 {
		t.Fatalf("late Wait(0) = (%d, %v)", v, ok)
	}
	leader.Publish(1, 11)
	leader.Leave(true, 2)
	if v, ok, _ := follower.Wait(context.Background(), 1); !ok || v != 11 {
		t.Fatalf("Wait(1) after leader left = (%d, %v)", v, ok)
	}
	follower.Leave(false, 0)
}

func TestChainSigDistinguishes(t *testing.T) {
	if ChainSig([]string{"ab", "c"}) == ChainSig([]string{"a", "bc"}) {
		t.Fatal("boundary shift collides")
	}
	if ChainSig([]string{"a", "b"}) == ChainSig([]string{"a", "b", "c"}) {
		t.Fatal("different lengths collide")
	}
	if ChainSig([]string{"a", "b"}) != ChainSig([]string{"a", "b"}) {
		t.Fatal("identical sequences differ")
	}
}

func TestChainJoinCountMismatchRunsSolo(t *testing.T) {
	reg := NewChains[int]()
	sig := ChainSig([]string{"f0"})
	leader, _ := reg.Join(sig, 1)
	// A forged signature with a different count must not attach.
	if ch, lead := reg.Join(sig, 2); ch != nil || lead {
		t.Fatalf("mismatched join = (%v, %v), want (nil, false)", ch, lead)
	}
	leader.Leave(true, 1)
}
