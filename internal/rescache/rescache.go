// Package rescache is the result cache of the dispersald server: a sharded
// LRU keyed by canonical spec bytes, with singleflight semantics so that
// concurrent identical requests solve once and share the result.
//
// Do is the single entry point. A key present in the cache returns
// immediately (a hit); a key being computed by another goroutine blocks the
// caller until that computation lands and shares it (a collapse); otherwise
// the caller computes, fills the cache and answers everyone. Failed
// computations are never cached — like the memo package, an error (e.g. a
// request deadline) does not poison the key, and the next request
// recomputes.
package rescache

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
)

// shardCount is the number of independent LRU shards; keys are distributed
// by FNV-1a hash. More shards means less lock contention under concurrent
// load at the cost of slightly uneven capacity use.
const shardCount = 16

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts Do calls answered from a filled entry.
	Hits int64 `json:"hits"`
	// Misses counts Do calls that ran compute themselves.
	Misses int64 `json:"misses"`
	// Shared counts Do calls collapsed onto another caller's in-flight
	// compute (the singleflight saves; neither hits nor misses).
	Shared int64 `json:"shared"`
	// Evictions counts entries dropped by the LRU policy.
	Evictions int64 `json:"evictions"`
	// Entries is the current number of cached values across all shards.
	Entries int64 `json:"entries"`
}

// Cache is a sharded LRU with singleflight fills. The zero value is not
// usable; construct with New.
type Cache[V any] struct {
	shards [shardCount]shard[V]

	hits, misses, shared, evictions atomic.Int64
}

type shard[V any] struct {
	mu sync.Mutex
	// capacity bounds len(items); the least-recently-used entry is evicted
	// beyond it.
	capacity int
	// ll orders entries most-recently-used first; element values are
	// *entry[V].
	ll *list.List
	// items indexes ll by key.
	items map[string]*list.Element
	// inflight tracks keys currently being computed, so latecomers can
	// wait instead of recomputing.
	inflight map[string]*call[V]
}

type entry[V any] struct {
	key string
	val V
}

// call is one in-flight computation; done is closed once val/err are set.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New builds a cache holding at most capacity values in total (split evenly
// across the shards, so the effective per-key bound is approximate).
// capacity <= 0 selects a default of 4096.
func New[V any](capacity int) *Cache[V] {
	if capacity <= 0 {
		capacity = 4096
	}
	perShard := (capacity + shardCount - 1) / shardCount
	c := &Cache[V]{}
	for i := range c.shards {
		c.shards[i] = shard[V]{
			capacity: perShard,
			ll:       list.New(),
			items:    make(map[string]*list.Element),
			inflight: make(map[string]*call[V]),
		}
	}
	return c
}

// fnv1a is the 64-bit FNV-1a hash of s, allocation-free.
func fnv1a(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

func (c *Cache[V]) shard(key string) *shard[V] {
	return &c.shards[fnv1a(key)%shardCount]
}

// Outcome classifies how one DoOutcome call was answered.
type Outcome int

const (
	// Computed: this caller ran compute itself (or the computation, or a
	// waited-on ctx, failed).
	Computed Outcome = iota
	// Hit: answered from a filled entry.
	Hit
	// Shared: collapsed onto another caller's in-flight compute.
	Shared
)

// Do returns the value for key, computing it with compute on a miss. The
// second result reports whether this caller avoided solver work: true for a
// cache hit or a successful singleflight collapse, false when this caller
// ran compute itself (or the computation failed).
//
// Concurrent Do calls with the same key run compute exactly once; the
// others block until it lands. A waiting caller whose ctx expires gives up
// with ctx.Err() (the leader keeps computing — its own context governs the
// solve). Errors from compute are returned to the leader and every waiter
// but never cached.
func (c *Cache[V]) Do(ctx context.Context, key string, compute func() (V, error)) (V, bool, error) {
	v, outcome, err := c.DoOutcome(ctx, key, compute)
	return v, outcome != Computed, err
}

// DoOutcome is Do with the answer's provenance instead of a boolean: Hit,
// Shared or Computed. The session layer counts Hit and Shared trajectory
// frames as coalesced — solver work another stream (or an earlier request)
// already paid for.
func (c *Cache[V]) DoOutcome(ctx context.Context, key string, compute func() (V, error)) (V, Outcome, error) {
	s := c.shard(key)
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		v := el.Value.(*entry[V]).val
		s.mu.Unlock()
		c.hits.Add(1)
		return v, Hit, nil
	}
	if cl, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		select {
		case <-cl.done:
			c.shared.Add(1)
			if cl.err != nil {
				return cl.val, Computed, cl.err
			}
			return cl.val, Shared, nil
		case <-ctx.Done():
			var zero V
			return zero, Computed, ctx.Err()
		}
	}
	cl := &call[V]{done: make(chan struct{})}
	s.inflight[key] = cl
	s.mu.Unlock()
	c.misses.Add(1)

	cl.val, cl.err = compute()

	s.mu.Lock()
	delete(s.inflight, key)
	if cl.err == nil {
		s.insertLocked(key, cl.val, &c.evictions)
	}
	s.mu.Unlock()
	close(cl.done)
	return cl.val, Computed, cl.err
}

// insertLocked adds (key, val) as the most-recent entry, evicting from the
// tail beyond capacity. The shard lock must be held.
func (s *shard[V]) insertLocked(key string, val V, evictions *atomic.Int64) {
	if el, ok := s.items[key]; ok {
		// A racing fill landed first; refresh the value and recency.
		el.Value.(*entry[V]).val = val
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&entry[V]{key: key, val: val})
	for s.ll.Len() > s.capacity {
		back := s.ll.Back()
		s.ll.Remove(back)
		delete(s.items, back.Value.(*entry[V]).key)
		evictions.Add(1)
	}
}

// Get peeks at key without computing, refreshing recency on a hit. It does
// not touch the hit/miss counters; Do is the accounted path.
func (c *Cache[V]) Get(key string) (V, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		return el.Value.(*entry[V]).val, true
	}
	var zero V
	return zero, false
}

// Len returns the current number of cached values.
func (c *Cache[V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the counters.
func (c *Cache[V]) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Shared:    c.shared.Load(),
		Evictions: c.evictions.Load(),
		Entries:   int64(c.Len()),
	}
}
