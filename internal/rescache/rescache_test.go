package rescache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoHitMissAccounting(t *testing.T) {
	c := New[int](8)
	ctx := context.Background()
	calls := 0
	compute := func() (int, error) { calls++; return 42, nil }

	v, cached, err := c.Do(ctx, "k", compute)
	if err != nil || v != 42 || cached {
		t.Fatalf("first Do = (%v, %v, %v), want (42, false, nil)", v, cached, err)
	}
	v, cached, err = c.Do(ctx, "k", compute)
	if err != nil || v != 42 || !cached {
		t.Fatalf("second Do = (%v, %v, %v), want (42, true, nil)", v, cached, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Shared != 0 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
}

func TestSingleflightCollapse(t *testing.T) {
	c := New[int](8)
	ctx := context.Background()

	const waiters = 31
	var computes atomic.Int64
	entered := make(chan struct{})        // closed when the leader is inside compute
	release := make(chan struct{})        // closed to let the leader finish
	leaderDone := make(chan struct{})     // leader's Do returned
	results := make(chan bool, waiters+1) // cached flags

	go func() {
		v, cached, err := c.Do(ctx, "k", func() (int, error) {
			computes.Add(1)
			close(entered)
			<-release
			return 7, nil
		})
		if err != nil || v != 7 {
			t.Errorf("leader Do = (%v, %v)", v, err)
		}
		results <- cached
		close(leaderDone)
	}()
	<-entered

	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, cached, err := c.Do(ctx, "k", func() (int, error) {
				computes.Add(1)
				return -1, nil
			})
			if err != nil || v != 7 {
				t.Errorf("waiter Do = (%v, %v)", v, err)
			}
			results <- cached
		}()
	}
	// Everyone either joins the in-flight call or (if they arrive after the
	// fill) hits the cache; both paths must avoid a second compute.
	close(release)
	<-leaderDone
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times under %d concurrent calls, want 1", n, waiters+1)
	}
	close(results)
	cachedCount := 0
	for cached := range results {
		if cached {
			cachedCount++
		}
	}
	if cachedCount != waiters {
		t.Errorf("%d of %d callers reported cached, want %d (all but the leader)", cachedCount, waiters+1, waiters)
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.Shared != waiters {
		t.Errorf("hits+shared = %d, want %d", st.Hits+st.Shared, waiters)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New[int](8)
	ctx := context.Background()
	boom := errors.New("boom")
	calls := 0

	_, cached, err := c.Do(ctx, "k", func() (int, error) { calls++; return 0, boom })
	if !errors.Is(err, boom) || cached {
		t.Fatalf("failing Do = (cached=%v, err=%v)", cached, err)
	}
	if c.Len() != 0 {
		t.Fatalf("failed computation was cached: %d entries", c.Len())
	}
	v, cached, err := c.Do(ctx, "k", func() (int, error) { calls++; return 9, nil })
	if err != nil || v != 9 || cached {
		t.Fatalf("retry Do = (%v, %v, %v), want fresh 9", v, cached, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (error retried)", calls)
	}
}

func TestWaiterHonorsContext(t *testing.T) {
	c := New[int](8)
	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = c.Do(context.Background(), "k", func() (int, error) {
			close(entered)
			<-release
			return 1, nil
		})
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, cached, err := c.Do(ctx, "k", func() (int, error) { return -1, nil })
	if !errors.Is(err, context.Canceled) || cached {
		t.Fatalf("cancelled waiter Do = (cached=%v, err=%v), want context.Canceled", cached, err)
	}
	close(release)
	<-done
}

// sameShardKeys returns n distinct keys hashing to one shard, so LRU order
// is deterministic.
func sameShardKeys(n int) []string {
	target := fnv1a("anchor") % shardCount
	out := make([]string, 0, n)
	for i := 0; len(out) < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		if fnv1a(k)%shardCount == target {
			out = append(out, k)
		}
	}
	return out
}

func TestLRUEvictionAndRecency(t *testing.T) {
	c := New[int](2 * shardCount) // two entries per shard
	ctx := context.Background()
	keys := sameShardKeys(3)
	x, y, z := keys[0], keys[1], keys[2]
	put := func(key string, v int) {
		t.Helper()
		if _, _, err := c.Do(ctx, key, func() (int, error) { return v, nil }); err != nil {
			t.Fatalf("Do(%s): %v", key, err)
		}
	}
	put(x, 1)
	put(y, 2)
	put(x, -1) // hit: refreshes x's recency, keeps value 1
	put(z, 3)  // shard full: evicts y, the least recently used
	if _, ok := c.Get(y); ok {
		t.Error("y survived eviction despite being least recently used")
	}
	if v, ok := c.Get(x); !ok || v != 1 {
		t.Errorf("x = (%v, %v), want (1, true): recency refresh failed", v, ok)
	}
	if v, ok := c.Get(z); !ok || v != 3 {
		t.Errorf("z = (%v, %v), want (3, true)", v, ok)
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

func TestLRURecencyAcrossCapacity(t *testing.T) {
	c := New[string](shardCount * 2) // two entries per shard
	ctx := context.Background()
	// Hammer one shard's worth of keys through Do and verify the cache
	// never exceeds its configured total capacity.
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		_, _, _ = c.Do(ctx, key, func() (string, error) { return key, nil })
	}
	if c.Len() > shardCount*2 {
		t.Errorf("cache holds %d entries, capacity %d", c.Len(), shardCount*2)
	}
	st := c.Stats()
	if st.Misses != 100 {
		t.Errorf("misses = %d, want 100", st.Misses)
	}
	if st.Evictions == 0 {
		t.Error("no evictions under 100 inserts into capacity 32")
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := New[int](64)
	ctx := context.Background()
	var wg sync.WaitGroup
	var computes atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("key-%d", i%16)
				v, _, err := c.Do(ctx, key, func() (int, error) {
					computes.Add(1)
					return i % 16, nil
				})
				if err != nil {
					t.Errorf("Do(%s): %v", key, err)
				}
				_ = v
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if got := st.Hits + st.Misses + st.Shared; got != 8*200 {
		t.Errorf("accounted calls = %d, want %d", got, 8*200)
	}
	if st.Entries != 16 {
		t.Errorf("entries = %d, want 16", st.Entries)
	}
}
