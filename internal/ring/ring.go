// Package ring assigns the warm-state locality keyspace
// (speccodec.LocalityKey) to the replicas of a dispersald fleet by
// consistent hashing: every key has exactly one owner, every replica can
// compute any key's owner locally, and membership changes remap only the
// departed member's share of the keyspace instead of reshuffling
// everything.
//
// The ring is static: the full member list (`-fleet`, self included) is
// configuration, identical on every replica, and a Ring never mutates.
// Each member is projected onto the hash circle at VirtualNodes points
// (FNV-1a of "member#i"), which evens out the per-member key share; a key
// is owned by the member of the first virtual node at or clockwise of the
// key's own hash. Successors continue clockwise over distinct members —
// the owner's followers, which hold pushed replicas of the owner's keys
// and serve as the fetch fallback when the owner errors.
//
// Determinism is load-bearing: two replicas that disagree on a key's owner
// route fetches and pushes past each other, which degrades the warm tier
// to cold solving without any error surfacing. Owner therefore depends
// only on the sorted member list and the key bytes — no maps are ranged,
// no randomness, no per-process state.
package ring

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// VirtualNodes is how many points each member occupies on the hash circle.
// At 128 the expected per-member share of a 3-replica fleet is within a few
// percent of 1/3; the whole ring is still only a few KiB.
const VirtualNodes = 128

// ErrConfig reports an unusable membership list (empty, duplicated, or one
// that does not contain self).
var ErrConfig = errors.New("ring: invalid fleet configuration")

// Ring is an immutable consistent-hash ring over a fleet's member IDs.
// Construct with New; all methods are safe for concurrent use.
type Ring struct {
	self    string
	members []string // sorted, unique
	vnodes  []vnode  // sorted by hash (ties by member index)
}

// vnode is one point on the hash circle.
type vnode struct {
	hash   uint64
	member int // index into members
}

// New builds the ring for the given members with self as the local
// replica. Members must be non-empty, free of duplicates (after dropping
// empty strings), and contain self — every replica of a fleet must be
// constructed from the same list, so a misspelled or missing entry is a
// configuration error, not something to repair silently.
func New(members []string, self string) (*Ring, error) {
	clean := make([]string, 0, len(members))
	for _, m := range members {
		if m != "" {
			clean = append(clean, m)
		}
	}
	if len(clean) == 0 {
		return nil, fmt.Errorf("%w: no members", ErrConfig)
	}
	sort.Strings(clean)
	for i := 1; i < len(clean); i++ {
		if clean[i] == clean[i-1] {
			return nil, fmt.Errorf("%w: duplicate member %q", ErrConfig, clean[i])
		}
	}
	selfIdx := sort.SearchStrings(clean, self)
	if selfIdx == len(clean) || clean[selfIdx] != self {
		return nil, fmt.Errorf("%w: self %q is not in the member list", ErrConfig, self)
	}

	vnodes := make([]vnode, 0, len(clean)*VirtualNodes)
	for i, m := range clean {
		for v := 0; v < VirtualNodes; v++ {
			vnodes = append(vnodes, vnode{hash: hashString(m + "#" + strconv.Itoa(v)), member: i})
		}
	}
	sort.Slice(vnodes, func(a, b int) bool {
		if vnodes[a].hash != vnodes[b].hash {
			return vnodes[a].hash < vnodes[b].hash
		}
		return vnodes[a].member < vnodes[b].member
	})
	return &Ring{self: self, members: clean, vnodes: vnodes}, nil
}

// hashString is the ring's hash: FNV-1a 64 (standard library, stable
// across processes, platforms and Go versions — the same key must hash
// identically on every replica) passed through a 64-bit finalizer. The
// finalizer matters: raw FNV-1a barely diffuses the last few input bytes,
// so keys differing only in a trailing digit — exactly what quantized
// locality keys look like — land in one tiny arc and all map to one
// member. The multiply-xorshift rounds (MurmurHash3's fmix64 constants)
// spread them over the whole circle.
func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Self returns the local replica's member ID.
func (r *Ring) Self() string { return r.self }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// Members returns the sorted member list (a copy).
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Others returns every member except self, in sorted order.
func (r *Ring) Others() []string {
	out := make([]string, 0, len(r.members)-1)
	for _, m := range r.members {
		if m != r.self {
			out = append(out, m)
		}
	}
	return out
}

// start returns the index of the first virtual node at or clockwise of
// key's hash.
func (r *Ring) start(key string) int {
	h := hashString(key)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		return 0 // wrap past the top of the circle
	}
	return i
}

// Owner returns the member that owns key: the member of the first virtual
// node at or clockwise of the key's hash. Every replica of a fleet
// computes the same owner for the same key.
func (r *Ring) Owner(key string) string {
	return r.members[r.vnodes[r.start(key)].member]
}

// Owns reports whether the local replica owns key.
func (r *Ring) Owns(key string) bool { return r.Owner(key) == r.self }

// Successors returns up to n distinct members in clockwise preference
// order starting with the key's owner: the fetch-routing order (owner
// first, fallbacks after) and, shifted by one, the owner's followers.
func (r *Ring) Successors(key string, n int) []string {
	if n > len(r.members) {
		n = len(r.members)
	}
	if n <= 0 {
		return nil
	}
	out := make([]string, 0, n)
	seen := make([]bool, len(r.members))
	for i, walked := r.start(key), 0; walked < len(r.vnodes) && len(out) < n; walked++ {
		m := r.vnodes[i].member
		if !seen[m] {
			seen[m] = true
			out = append(out, r.members[m])
		}
		if i++; i == len(r.vnodes) {
			i = 0
		}
	}
	return out
}

// Followers returns up to n distinct members clockwise after the key's
// owner — the replicas an owner pushes the key's fresh states to, and the
// places a fetch falls back to when the owner errors.
func (r *Ring) Followers(key string, n int) []string {
	succ := r.Successors(key, n+1)
	if len(succ) <= 1 {
		return nil
	}
	return succ[1:]
}
