package ring

import (
	"errors"
	"fmt"
	"testing"
)

func members3() []string {
	return []string{"http://a:1", "http://b:1", "http://c:1"}
}

func mustRing(t *testing.T, members []string, self string) *Ring {
	t.Helper()
	r, err := New(members, self)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRejectsBadConfig(t *testing.T) {
	cases := []struct {
		name    string
		members []string
		self    string
	}{
		{"empty", nil, "http://a:1"},
		{"all blank", []string{"", ""}, "http://a:1"},
		{"duplicate", []string{"http://a:1", "http://a:1", "http://b:1"}, "http://a:1"},
		{"self absent", members3(), "http://d:1"},
		{"self blank", members3(), ""},
	}
	for _, tc := range cases {
		if _, err := New(tc.members, tc.self); !errors.Is(err, ErrConfig) {
			t.Errorf("%s: err = %v, want ErrConfig", tc.name, err)
		}
	}
}

// TestOwnerAgreesAcrossReplicas: the whole design rests on every replica
// computing the same owner from the same member list, whoever it is itself
// and however the list was ordered.
func TestOwnerAgreesAcrossReplicas(t *testing.T) {
	a := mustRing(t, members3(), "http://a:1")
	b := mustRing(t, []string{"http://c:1", "http://a:1", "http://b:1"}, "http://b:1")
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("warm:key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("replicas disagree on owner of %q: %q vs %q", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestOwnerIsAMemberAndOwnsMatches(t *testing.T) {
	r := mustRing(t, members3(), "http://b:1")
	owned := 0
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("warm:key-%d", i)
		o := r.Owner(key)
		found := false
		for _, m := range r.Members() {
			if m == o {
				found = true
			}
		}
		if !found {
			t.Fatalf("owner %q of %q is not a member", o, key)
		}
		if r.Owns(key) != (o == r.Self()) {
			t.Fatalf("Owns(%q) disagrees with Owner", key)
		}
		if o == r.Self() {
			owned++
		}
	}
	if owned == 0 || owned == 300 {
		t.Fatalf("self owns %d/300 keys; expected a proper share", owned)
	}
}

// TestBalance: with virtual nodes, no member's share of a 3-way split
// should stray wildly from a third.
func TestBalance(t *testing.T) {
	r := mustRing(t, members3(), "http://a:1")
	counts := map[string]int{}
	const n = 9000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("warm:key-%d", i))]++
	}
	for _, m := range r.Members() {
		share := float64(counts[m]) / n
		if share < 0.15 || share > 0.55 {
			t.Errorf("member %s owns %.1f%% of the keyspace; want a rough third", m, 100*share)
		}
	}
}

// TestMinimalRemapping: removing one member of four must remap only
// (roughly) that member's quarter of the keyspace — the property plain
// mod-N hashing lacks and the reason the ring exists.
func TestMinimalRemapping(t *testing.T) {
	four := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	big := mustRing(t, four, "http://a:1")
	small := mustRing(t, four[:3], "http://a:1")
	const n = 4000
	moved := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("warm:key-%d", i)
		before := big.Owner(key)
		if before == "http://d:1" {
			continue // its keys must move; they don't count either way
		}
		if small.Owner(key) != before {
			moved++
		}
	}
	if frac := float64(moved) / n; frac > 0.05 {
		t.Errorf("%.1f%% of surviving members' keys remapped; consistent hashing should move almost none", 100*frac)
	}
}

func TestSuccessorsDistinctOwnerFirst(t *testing.T) {
	r := mustRing(t, members3(), "http://a:1")
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("warm:key-%d", i)
		succ := r.Successors(key, 3)
		if len(succ) != 3 {
			t.Fatalf("Successors(%q, 3) = %v, want all 3 members", key, succ)
		}
		if succ[0] != r.Owner(key) {
			t.Fatalf("Successors(%q)[0] = %q, owner is %q", key, succ[0], r.Owner(key))
		}
		seen := map[string]bool{}
		for _, m := range succ {
			if seen[m] {
				t.Fatalf("Successors(%q) repeats %q: %v", key, m, succ)
			}
			seen[m] = true
		}
	}
	if got := r.Successors("warm:k", 0); got != nil {
		t.Errorf("Successors(_, 0) = %v, want nil", got)
	}
	if got := r.Successors("warm:k", 99); len(got) != 3 {
		t.Errorf("Successors(_, 99) = %v, want capped at the member count", got)
	}
}

func TestFollowersExcludeOwner(t *testing.T) {
	r := mustRing(t, members3(), "http://a:1")
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("warm:key-%d", i)
		owner := r.Owner(key)
		for _, f := range r.Followers(key, 2) {
			if f == owner {
				t.Fatalf("follower set of %q contains its owner %q", key, owner)
			}
		}
		if n := len(r.Followers(key, 2)); n != 2 {
			t.Fatalf("Followers(%q, 2) has %d members, want 2 in a 3-fleet", key, n)
		}
	}
}

func TestSingleMemberFleet(t *testing.T) {
	r := mustRing(t, []string{"http://a:1"}, "http://a:1")
	if !r.Owns("warm:anything") {
		t.Error("sole member does not own the keyspace")
	}
	if f := r.Followers("warm:anything", 2); f != nil {
		t.Errorf("sole member has followers %v", f)
	}
	if o := r.Others(); len(o) != 0 {
		t.Errorf("sole member has others %v", o)
	}
}
