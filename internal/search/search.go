// Package search implements the Bayesian parallel search substrate that the
// paper connects sigma* to (Section 2.1): a treasure is hidden in one of M
// boxes according to a prior proportional to f, and k searchers — unable to
// coordinate — each open one box per round until someone finds it.
//
// The paper observes that algorithm sigma* "is actually identical to the
// first round in the algorithm A* used in [Korman-Rodeh 2017]". The full A*
// specification is not reproduced in the paper, so this package implements
// the documented structure faithfully at round 1 and extends it in the
// natural way: each searcher keeps a private posterior (the prior with its
// already-opened boxes removed, renormalized) and replays the sigma* rule on
// it every round. RoundOneDistribution exposes the exact round-1 law so the
// identity with sigma* can be asserted; experiment E12 does exactly that.
//
// Baselines:
//   - StrategyUniform: open a uniformly random unopened box.
//   - StrategyGreedy: open the best unopened box (all searchers collide).
//   - StrategyCoordinated: full coordination — searcher i opens boxes
//     i, i+k, i+2k, ... in value order (a lower bound on search time).
//   - StrategyPrior: sample each round from the static normalized prior.
package search

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"dispersal/internal/ifd"
	"dispersal/internal/site"
	"dispersal/internal/stats"
	"dispersal/internal/strategy"
)

// Algorithm selects the searcher behaviour simulated by Run.
type Algorithm int

// Available search algorithms.
const (
	// StrategyAStar is the sigma*-based algorithm: round 1 plays sigma* on
	// the prior; later rounds replay sigma* on each searcher's residual
	// posterior.
	StrategyAStar Algorithm = iota
	// StrategyUniform opens a uniformly random unopened box each round.
	StrategyUniform
	// StrategyGreedy deterministically opens the best unopened box.
	StrategyGreedy
	// StrategyCoordinated assigns box x to searcher x mod k (full
	// coordination; not available to selfish searchers).
	StrategyCoordinated
	// StrategyPrior samples every round from the normalized prior,
	// skipping boxes the searcher has already opened.
	StrategyPrior
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case StrategyAStar:
		return "sigma*-iterated"
	case StrategyUniform:
		return "uniform"
	case StrategyGreedy:
		return "greedy"
	case StrategyCoordinated:
		return "coordinated"
	case StrategyPrior:
		return "prior-sampling"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// Errors returned by the simulator.
var (
	ErrTrials      = errors.New("search: trials must be >= 1")
	ErrPlayers     = errors.New("search: searcher count k must be >= 1")
	ErrRounds      = errors.New("search: max rounds must be >= 1")
	ErrNoIdeaWhere = errors.New("search: prior has no positive mass")
)

// Config describes a search experiment.
type Config struct {
	// Prior holds the box weights; the treasure is in box x with
	// probability Prior[x] / sum(Prior). It must be sorted non-increasing
	// (site.Values convention).
	Prior site.Values
	// K is the number of searchers.
	K int
	// Algorithm selects the searcher behaviour.
	Algorithm Algorithm
	// Trials is the number of independent experiments.
	Trials int
	// MaxRounds caps each experiment; a trial that exhausts it records
	// MaxRounds+1 (censored). Default M (every searcher can visit every
	// box).
	MaxRounds int
	// Seed makes the run reproducible.
	Seed uint64
}

// Result summarizes a search experiment.
type Result struct {
	// Time summarizes the discovery round (1-based) across trials;
	// censored trials count as MaxRounds+1.
	Time stats.Summary
	// Censored is the number of trials that hit MaxRounds without finding
	// the treasure.
	Censored int
	// FoundFrac is the fraction of trials in which the treasure was found.
	FoundFrac float64
}

// RoundOneDistribution returns the distribution with which a sigma*-based
// searcher opens boxes in round 1: exactly ifd.Exclusive on the prior. The
// identity asserted by the paper (Section 2.1) is that this equals the IFD
// of the dispersal game with value function equal to the prior.
func RoundOneDistribution(prior site.Values, k int) (strategy.Strategy, error) {
	p, _, err := ifd.Exclusive(prior, k)
	return p, err
}

// Run simulates the configured experiment and reports discovery-time
// statistics.
func Run(cfg Config) (Result, error) {
	if err := cfg.Prior.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.K < 1 {
		return Result{}, fmt.Errorf("%w: k=%d", ErrPlayers, cfg.K)
	}
	if cfg.Trials < 1 {
		return Result{}, fmt.Errorf("%w: trials=%d", ErrTrials, cfg.Trials)
	}
	m := len(cfg.Prior)
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = m
	}
	if cfg.MaxRounds < 1 {
		return Result{}, fmt.Errorf("%w: maxRounds=%d", ErrRounds, cfg.MaxRounds)
	}

	rng := rand.New(rand.NewPCG(cfg.Seed, 0x8f1bbcdc))
	prior := cfg.Prior.Normalized()
	priorSampler, err := strategy.NewSampler(strategy.Strategy(prior))
	if err != nil {
		return Result{}, fmt.Errorf("%w: %v", ErrNoIdeaWhere, err)
	}

	var tally stats.Welford
	censored := 0
	searchers := make([]*searcherState, cfg.K)
	for trial := 0; trial < cfg.Trials; trial++ {
		treasure := priorSampler.Sample(rng)
		for i := range searchers {
			searchers[i] = newSearcherState(m)
		}
		found := 0
		for round := 1; round <= cfg.MaxRounds; round++ {
			hit := false
			for i, st := range searchers {
				box := pickBox(cfg, rng, st, prior, i, round)
				if box < 0 {
					continue // searcher has exhausted all boxes
				}
				st.open(box)
				if box == treasure {
					hit = true
				}
			}
			if hit {
				found = round
				break
			}
		}
		if found == 0 {
			censored++
			tally.Add(float64(cfg.MaxRounds + 1))
		} else {
			tally.Add(float64(found))
		}
	}
	return Result{
		Time:      tally.Summarize(),
		Censored:  censored,
		FoundFrac: 1 - float64(censored)/float64(cfg.Trials),
	}, nil
}

// searcherState tracks a single searcher's opened boxes.
type searcherState struct {
	opened []bool
	nOpen  int
}

func newSearcherState(m int) *searcherState {
	return &searcherState{opened: make([]bool, m)}
}

func (s *searcherState) open(box int) {
	if !s.opened[box] {
		s.opened[box] = true
		s.nOpen++
	}
}

// pickBox chooses the next box for searcher i per the configured algorithm.
// Returns -1 when the searcher has opened everything.
func pickBox(cfg Config, rng *rand.Rand, st *searcherState, prior site.Values, i, round int) int {
	m := len(prior)
	if st.nOpen >= m {
		return -1
	}
	switch cfg.Algorithm {
	case StrategyCoordinated:
		// Box order for searcher i: i, i+k, i+2k, ... (values sorted
		// non-increasing, so this is the optimal coordinated sweep).
		idx := i + (round-1)*cfg.K
		if idx >= m {
			return -1
		}
		return idx

	case StrategyGreedy:
		for x := 0; x < m; x++ {
			if !st.opened[x] {
				return x
			}
		}
		return -1

	case StrategyUniform:
		return sampleUnopenedUniform(rng, st)

	case StrategyPrior:
		return sampleUnopenedWeighted(rng, st, prior)

	case StrategyAStar:
		return sampleSigmaStar(rng, st, prior, cfg.K)

	default:
		return sampleUnopenedUniform(rng, st)
	}
}

func sampleUnopenedUniform(rng *rand.Rand, st *searcherState) int {
	m := len(st.opened)
	remaining := m - st.nOpen
	if remaining <= 0 {
		return -1
	}
	n := rng.IntN(remaining)
	for x := 0; x < m; x++ {
		if st.opened[x] {
			continue
		}
		if n == 0 {
			return x
		}
		n--
	}
	return -1
}

func sampleUnopenedWeighted(rng *rand.Rand, st *searcherState, prior site.Values) int {
	var total float64
	for x, w := range prior {
		if !st.opened[x] {
			total += w
		}
	}
	if total <= 0 {
		return sampleUnopenedUniform(rng, st)
	}
	r := rng.Float64() * total
	acc := 0.0
	last := -1
	for x, w := range prior {
		if st.opened[x] {
			continue
		}
		acc += w
		last = x
		if r <= acc {
			return x
		}
	}
	return last
}

// sampleSigmaStar draws from sigma* computed on the searcher's residual
// posterior (unopened boxes, renormalized). The residual values stay sorted
// because removing entries from a sorted vector preserves order.
func sampleSigmaStar(rng *rand.Rand, st *searcherState, prior site.Values, k int) int {
	m := len(prior)
	residual := make(site.Values, 0, m-st.nOpen)
	index := make([]int, 0, m-st.nOpen)
	for x := 0; x < m; x++ {
		if !st.opened[x] {
			residual = append(residual, prior[x])
			index = append(index, x)
		}
	}
	if len(residual) == 0 {
		return -1
	}
	sigma, _, err := ifd.Exclusive(residual, k)
	if err != nil {
		return sampleUnopenedUniform(rng, st)
	}
	r := rng.Float64()
	acc := 0.0
	for j, q := range sigma {
		acc += q
		if r <= acc {
			return index[j]
		}
	}
	return index[len(index)-1]
}
