package search

import (
	"errors"
	"testing"

	"dispersal/internal/ifd"
	"dispersal/internal/site"
)

func TestRoundOneDistributionEqualsSigmaStar(t *testing.T) {
	// The paper's Section 2.1 identity: round 1 of A* == sigma*.
	prior := site.Geometric(12, 1, 0.8)
	for _, k := range []int{2, 3, 7} {
		fromSearch, err := RoundOneDistribution(prior, k)
		if err != nil {
			t.Fatal(err)
		}
		sigma, _, err := ifd.Exclusive(prior, k)
		if err != nil {
			t.Fatal(err)
		}
		if d := fromSearch.LInf(sigma); d != 0 {
			t.Errorf("k=%d: round-1 law differs from sigma* by %v", k, d)
		}
	}
}

func TestRunCoordinatedSingleSearcherIsValueOrder(t *testing.T) {
	// One coordinated searcher opens boxes in value order; with a
	// deterministic treasure distribution we can check the mean directly.
	prior := site.Values{1, 1, 1, 1} // treasure uniform over 4 boxes
	res, err := Run(Config{Prior: prior, K: 1, Algorithm: StrategyCoordinated, Trials: 20000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// E[T] = (1+2+3+4)/4 = 2.5.
	if d := res.Time.Mean - 2.5; d > 0.1 || d < -0.1 {
		t.Errorf("coordinated mean time = %v, want ~2.5", res.Time.Mean)
	}
	if res.Censored != 0 {
		t.Errorf("censored = %d", res.Censored)
	}
	if res.FoundFrac != 1 {
		t.Errorf("found frac = %v", res.FoundFrac)
	}
}

func TestRunGreedyCollidesAndIsSlowOnFlatPrior(t *testing.T) {
	// All greedy searchers open the same boxes: k searchers are no faster
	// than one, so on a flat prior greedy is roughly k times slower than
	// coordinated.
	prior := site.Uniform(20, 1)
	k := 4
	greedy, err := Run(Config{Prior: prior, K: k, Algorithm: StrategyGreedy, Trials: 4000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := Run(Config{Prior: prior, K: k, Algorithm: StrategyCoordinated, Trials: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Time.Mean < 2.5*coord.Time.Mean {
		t.Errorf("greedy %v should be ~%dx slower than coordinated %v",
			greedy.Time.Mean, k, coord.Time.Mean)
	}
}

func TestRunAStarBeatsUncoordinatedBaselines(t *testing.T) {
	prior := site.Zipf(30, 1, 1)
	k := 4
	cfg := func(a Algorithm, seed uint64) Config {
		return Config{Prior: prior, K: k, Algorithm: a, Trials: 6000, Seed: seed}
	}
	astar, err := Run(cfg(StrategyAStar, 10))
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := Run(cfg(StrategyGreedy, 11))
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := Run(cfg(StrategyUniform, 12))
	if err != nil {
		t.Fatal(err)
	}
	if astar.Time.Mean >= greedy.Time.Mean {
		t.Errorf("A* (%v) should beat greedy (%v) on a skewed prior", astar.Time.Mean, greedy.Time.Mean)
	}
	if astar.Time.Mean >= uniform.Time.Mean {
		t.Errorf("A* (%v) should beat uniform (%v)", astar.Time.Mean, uniform.Time.Mean)
	}
	coord, err := Run(cfg(StrategyCoordinated, 13))
	if err != nil {
		t.Fatal(err)
	}
	if astar.Time.Mean < coord.Time.Mean {
		t.Errorf("A* (%v) should not beat full coordination (%v)", astar.Time.Mean, coord.Time.Mean)
	}
}

func TestRunEveryAlgorithmTerminates(t *testing.T) {
	prior := site.Geometric(8, 1, 0.7)
	for _, a := range []Algorithm{StrategyAStar, StrategyUniform, StrategyGreedy, StrategyCoordinated, StrategyPrior} {
		res, err := Run(Config{Prior: prior, K: 3, Algorithm: a, Trials: 500, Seed: 4})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		// With MaxRounds = M every searcher can sweep every box, so the
		// treasure is always found by round M (greedy/uniform/A*) or the
		// sweep covers all boxes (coordinated).
		if res.FoundFrac < 1 {
			t.Errorf("%s: found frac %v", a, res.FoundFrac)
		}
	}
}

func TestRunCensoring(t *testing.T) {
	prior := site.Uniform(50, 1)
	res, err := Run(Config{Prior: prior, K: 1, Algorithm: StrategyUniform,
		Trials: 2000, MaxRounds: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// One uniform probe into 50 boxes: found with probability 1/50.
	if res.FoundFrac > 0.1 {
		t.Errorf("found frac %v, want ~0.02", res.FoundFrac)
	}
	if res.Censored == 0 {
		t.Error("expected censored trials")
	}
}

func TestRunValidation(t *testing.T) {
	prior := site.TwoSite(0.5)
	if _, err := Run(Config{Prior: prior, K: 0, Algorithm: StrategyUniform, Trials: 1}); !errors.Is(err, ErrPlayers) {
		t.Error("k=0 accepted")
	}
	if _, err := Run(Config{Prior: prior, K: 1, Algorithm: StrategyUniform, Trials: 0}); !errors.Is(err, ErrTrials) {
		t.Error("trials=0 accepted")
	}
	if _, err := Run(Config{Prior: prior, K: 1, Algorithm: StrategyUniform, Trials: 1, MaxRounds: -2}); !errors.Is(err, ErrRounds) {
		t.Error("negative rounds accepted")
	}
	if _, err := Run(Config{Prior: site.Values{0.5, 1}, K: 1, Algorithm: StrategyUniform, Trials: 1}); err == nil {
		t.Error("unsorted prior accepted")
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	prior := site.Zipf(10, 1, 1)
	cfg := Config{Prior: prior, K: 2, Algorithm: StrategyAStar, Trials: 300, Seed: 9}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time.Mean != b.Time.Mean {
		t.Error("same seed diverged")
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		StrategyAStar:       "sigma*-iterated",
		StrategyUniform:     "uniform",
		StrategyGreedy:      "greedy",
		StrategyCoordinated: "coordinated",
		StrategyPrior:       "prior-sampling",
		Algorithm(99):       "algorithm(99)",
	}
	for a, want := range names {
		if got := a.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(a), got, want)
		}
	}
}
