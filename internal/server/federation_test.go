package server

// Tests of the warm-state federation paths: snapshot persistence across a
// restart (Config.StateDir), the /v1/warmstate donor endpoint, and
// peer-seeded solving (Config.Peers) with its /statsz counters.

import (
	"math"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dispersal/internal/site"
	"dispersal/internal/statewire"
)

// federationSpec is a landscape big enough that warm seeding is observable
// yet quick to solve in tests.
func federationSpec() (values []float64, k int) {
	return site.Geometric(8, 1, 0.85), 6
}

// TestRestartWithStateDirServesFirstRequestWarm: warm a server backed by a
// state directory, close it (final snapshot), boot a fresh server on the
// same directory, and ask about a near-identical landscape. The restarted
// replica's very first repeat-locality solve must be warm-seeded from the
// loaded snapshot.
func TestRestartWithStateDirServesFirstRequestWarm(t *testing.T) {
	dir := t.TempDir()
	values, k := federationSpec()

	first, ts1 := newTestServer(t, Config{Timeout: 30 * time.Second, StateDir: dir})
	resp, payload := postJSON(t, ts1.URL+"/v1/analyze", specJSON(values, k, "sharing"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warming analyze: %s\n%s", resp.Status, payload)
	}
	want := decodeAnalyze(t, payload)
	ts1.Close()
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}

	second, ts2 := newTestServer(t, Config{Timeout: 30 * time.Second, StateDir: dir})
	defer second.Close()
	resp, payload = postJSON(t, ts2.URL+"/v1/analyze", specJSON(perturb(values, 1e-4), k, "sharing"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart analyze: %s\n%s", resp.Status, payload)
	}
	got := decodeAnalyze(t, payload)
	if got.Cached {
		t.Fatal("post-restart request answered from the exact cache; nothing was proven")
	}

	stats := getStats(t, ts2.URL)
	if stats.WarmCache.Loaded < 1 {
		t.Errorf("loaded = %d, want >= 1 snapshot-seeded state", stats.WarmCache.Loaded)
	}
	if stats.WarmCache.Seeded != 1 {
		t.Errorf("seeded = %d, want exactly 1 (the first request, from the snapshot)", stats.WarmCache.Seeded)
	}
	if stats.WarmCache.Fallback != 0 {
		t.Errorf("fallback = %d, want 0", stats.WarmCache.Fallback)
	}
	if d := math.Abs(want.Result.Nu - got.Result.Nu); d > 1e-2*(1+math.Abs(want.Result.Nu)) {
		t.Errorf("nu moved implausibly far across the restart: %v vs %v", want.Result.Nu, got.Result.Nu)
	}
}

// TestRestartToleratesCorruptSnapshot: a damaged snapshot file must leave
// the replica booting cold, not failing.
func TestRestartToleratesCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	writeCorruptSnapshot(t, dir)
	s, ts := newTestServer(t, Config{Timeout: 30 * time.Second, StateDir: dir})
	defer s.Close()
	values, k := federationSpec()
	resp, payload := postJSON(t, ts.URL+"/v1/analyze", specJSON(values, k, "sharing"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze over corrupt snapshot: %s\n%s", resp.Status, payload)
	}
	if stats := getStats(t, ts.URL); stats.WarmCache.Loaded != 0 {
		t.Errorf("loaded = %d from a corrupt snapshot", stats.WarmCache.Loaded)
	}
}

// TestPeerSeedsColdReplica: replica A solves and thus holds warm state;
// replica B, cold but configured with A as a peer, must answer its first
// matching request with a peer-seeded warm solve and count it on /statsz.
func TestPeerSeedsColdReplica(t *testing.T) {
	values, k := federationSpec()

	a, tsA := newTestServer(t, Config{Timeout: 30 * time.Second})
	defer a.Close()
	resp, payload := postJSON(t, tsA.URL+"/v1/analyze", specJSON(values, k, "sharing"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warming replica A: %s\n%s", resp.Status, payload)
	}
	want := decodeAnalyze(t, payload)

	b, tsB := newTestServer(t, Config{
		Timeout:     30 * time.Second,
		Peers:       []string{tsA.URL},
		PeerTimeout: 5 * time.Second,
	})
	defer b.Close()
	resp, payload = postJSON(t, tsB.URL+"/v1/analyze", specJSON(perturb(values, 1e-4), k, "sharing"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replica B analyze: %s\n%s", resp.Status, payload)
	}
	got := decodeAnalyze(t, payload)

	stats := getStats(t, tsB.URL)
	if !stats.Peers.Enabled {
		t.Error("peers.enabled = false on a federated replica")
	}
	if stats.Peers.Hits != 1 {
		t.Errorf("peer hits = %d, want 1", stats.Peers.Hits)
	}
	if stats.Peers.Seeded != 1 {
		t.Errorf("peer-seeded solves = %d, want 1", stats.Peers.Seeded)
	}
	if stats.WarmCache.Seeded != 1 {
		t.Errorf("warm-seeded solves = %d, want 1", stats.WarmCache.Seeded)
	}
	if stats.Peers.LatencyMSTotal <= 0 {
		t.Errorf("peer latency not recorded: %+v", stats.Peers)
	}
	if d := math.Abs(want.Result.Nu - got.Result.Nu); d > 1e-2*(1+math.Abs(want.Result.Nu)) {
		t.Errorf("nu moved implausibly far across the federation: %v vs %v", want.Result.Nu, got.Result.Nu)
	}

	// The adopted state now lives in B's local cache: a further nearby
	// request must seed locally, without new peer traffic.
	resp, _ = postJSON(t, tsB.URL+"/v1/analyze", specJSON(perturb(values, 2e-4), k, "sharing"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second replica B analyze: %s", resp.Status)
	}
	stats = getStats(t, tsB.URL)
	if stats.Peers.Hits != 1 {
		t.Errorf("peer hits grew to %d on a locally-warm key", stats.Peers.Hits)
	}
	if stats.WarmCache.Seeded != 2 {
		t.Errorf("warm-seeded solves = %d, want 2", stats.WarmCache.Seeded)
	}
}

// TestDeadPeerIsHarmless: an unreachable peer costs a bounded fetch and a
// cold solve, nothing more — and repeated misses on the same key are
// suppressed by the negative memo.
func TestDeadPeerIsHarmless(t *testing.T) {
	values, k := federationSpec()
	b, ts := newTestServer(t, Config{
		Timeout:     30 * time.Second,
		Peers:       []string{"127.0.0.1:1"},
		PeerTimeout: 200 * time.Millisecond,
	})
	defer b.Close()

	resp, payload := postJSON(t, ts.URL+"/v1/analyze", specJSON(values, k, "sharing"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze with dead peer: %s\n%s", resp.Status, payload)
	}
	stats := getStats(t, ts.URL)
	if stats.Peers.Misses != 1 || stats.Peers.Errors < 1 {
		t.Errorf("peer stats = %+v, want 1 miss and >= 1 error", stats.Peers)
	}
	if stats.WarmCache.Seeded != 0 || stats.Solves != 1 {
		t.Errorf("dead peer changed solving: %+v", stats)
	}
}

// TestWarmStateEndpointSpeaksStatewire: the donor endpoint's payload must
// decode as a statewire state for the requested locality bucket.
func TestWarmStateEndpointSpeaksStatewire(t *testing.T) {
	values, k := federationSpec()
	s, ts := newTestServer(t, Config{Timeout: 30 * time.Second})
	defer s.Close()
	postJSON(t, ts.URL+"/v1/analyze", specJSON(values, k, "sharing"))

	entries := s.warm.Entries()
	if len(entries) == 0 {
		t.Fatal("no warm state after an analyze")
	}
	u := ts.URL + "/v1/warmstate?key=" + url.QueryEscape(entries[0].Key)
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmstate status %s", resp.Status)
	}
	body := make([]byte, statewire.MaxEncodedSize())
	n := 0
	for {
		m, err := resp.Body.Read(body[n:])
		n += m
		if err != nil {
			break
		}
	}
	st, err := statewire.Decode(body[:n])
	if err != nil {
		t.Fatal(err)
	}
	if st.Players() != k || len(st.Landscape()) != len(values) {
		t.Fatalf("served state shape (%d sites, %d players), want (%d, %d)",
			len(st.Landscape()), st.Players(), len(values), k)
	}
}

// writeCorruptSnapshot plants an unusable snapshot file in dir.
func writeCorruptSnapshot(t *testing.T, dir string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, "warmstate.snap"), []byte("GARBAGE"), 0o644); err != nil {
		t.Fatal(err)
	}
}
