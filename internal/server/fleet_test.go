package server

// Tests of the ownership-routed fleet (Config.Fleet/SelfID): push
// replication of fresh solves, warm serving under partial-fleet failure,
// the /statsz ring section, and the standalone fallback on a bad fleet
// configuration.

import (
	"net"
	"net/http"
	"testing"
	"time"
)

// startFleetServers boots n dispersald replicas wired as one
// ownership-routed fleet. Listeners come first — every replica's Config
// needs the full URL list before any server exists — and serve[i]=false
// leaves replica i configured but dead (its listener closed), for
// partial-fleet tests.
func startFleetServers(t *testing.T, n int, serve []bool) ([]*Server, []string) {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	servers := make([]*Server, n)
	for i := range servers {
		if serve != nil && !serve[i] {
			listeners[i].Close() // connections now refuse fast
			continue
		}
		s := New(Config{
			Timeout:     30 * time.Second,
			Fleet:       urls,
			SelfID:      urls[i],
			PeerTimeout: 5 * time.Second,
		})
		hs := &http.Server{Handler: s}
		go hs.Serve(listeners[i])
		t.Cleanup(func() {
			hs.Close()
			if err := s.Close(); err != nil {
				t.Errorf("server close: %v", err)
			}
		})
		servers[i] = s
	}
	return servers, urls
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("timed out waiting for " + what)
}

// TestFleetPushPropagatesFreshSolves: one solve anywhere in a 3-replica
// fleet reaches every replica's warm cache — the solver keeps its own
// copy, and the solver -> owner -> followers push route covers the rest —
// so the next nearby request on any replica seeds locally, with zero
// fetch traffic.
func TestFleetPushPropagatesFreshSolves(t *testing.T) {
	servers, urls := startFleetServers(t, 3, nil)
	values, k := federationSpec()

	resp, payload := postJSON(t, urls[0]+"/v1/analyze", specJSON(values, k, "sharing"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet analyze: %s\n%s", resp.Status, payload)
	}
	waitUntil(t, "the push to reach every replica", func() bool {
		for _, s := range servers {
			if s.warm.Len() == 0 {
				return false
			}
		}
		return true
	})

	// A nearby request on another replica now seeds from its own cache:
	// warm solve, no peer fetch.
	resp, payload = postJSON(t, urls[1]+"/v1/analyze", specJSON(perturb(values, 1e-4), k, "sharing"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower analyze: %s\n%s", resp.Status, payload)
	}
	stats := getStats(t, urls[1])
	if stats.WarmCache.Seeded != 1 {
		t.Errorf("warm-seeded solves = %d, want 1 (from the pushed state)", stats.WarmCache.Seeded)
	}
	if rounds := stats.Peers.Hits + stats.Peers.Misses; rounds != 0 {
		t.Errorf("replica went to the network %d times despite the pushed state", rounds)
	}

	// The solver's /statsz ring section reflects the fleet and the pushes.
	stats = getStats(t, urls[0])
	if !stats.Ring.Enabled || stats.Ring.Members != 3 || stats.Ring.Self == "" {
		t.Errorf("ring section = %+v, want an enabled 3-member fleet", stats.Ring)
	}
	if stats.Ring.PushesSent+stats.Ring.Forwarded < 1 {
		t.Errorf("solver pushed nothing: %+v", stats.Ring)
	}
	if stats.Ring.PushesDropped != 0 || stats.Ring.PushErrors != 0 {
		t.Errorf("pushes failed in a healthy fleet: %+v", stats.Ring)
	}
	// Every replica holds the bucket; exactly one of them owns it.
	owned := int64(0)
	for _, u := range urls {
		owned += getStats(t, u).Ring.OwnedKeys
	}
	if owned != 1 {
		t.Errorf("fleet-wide owned_keys = %d, want exactly 1 owner of the bucket", owned)
	}
}

// TestFleetServesWarmWithDeadMember: with one configured replica dead, a
// solve on one live replica still warms the other — by push or by an
// owner-or-successor fetch — and nothing blocks or errors the request
// path. Partial-fleet failure degrades to at most a fallback, never to a
// hang or a cold fleet.
func TestFleetServesWarmWithDeadMember(t *testing.T) {
	_, urls := startFleetServers(t, 3, []bool{true, true, false})
	values, k := federationSpec()

	resp, payload := postJSON(t, urls[0]+"/v1/analyze", specJSON(values, k, "sharing"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze with dead member: %s\n%s", resp.Status, payload)
	}

	start := time.Now()
	resp, payload = postJSON(t, urls[1]+"/v1/analyze", specJSON(perturb(values, 1e-4), k, "sharing"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second replica analyze: %s\n%s", resp.Status, payload)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("request took %s under partial-fleet failure", elapsed)
	}
	stats := getStats(t, urls[1])
	if stats.WarmCache.Seeded != 1 {
		t.Errorf("warm-seeded solves = %d, want 1 despite the dead member", stats.WarmCache.Seeded)
	}
	if stats.Solves != 1 {
		t.Errorf("solves = %d, want 1", stats.Solves)
	}
}

// TestFleetBadConfigRunsStandalone: a fleet list that does not contain
// self is a configuration error, but a warm-tier one — the server must
// come up standalone and serve, with the ring disabled on /statsz.
func TestFleetBadConfigRunsStandalone(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Timeout: 30 * time.Second,
		Fleet:   []string{"http://a:1", "http://b:1"},
		SelfID:  "http://not-in-fleet:1",
	})
	_ = s
	values, k := federationSpec()
	resp, payload := postJSON(t, ts.URL+"/v1/analyze", specJSON(values, k, "sharing"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("standalone analyze: %s\n%s", resp.Status, payload)
	}
	stats := getStats(t, ts.URL)
	if stats.Ring.Enabled {
		t.Errorf("ring enabled despite a bad fleet configuration: %+v", stats.Ring)
	}
	if stats.Peers.Enabled {
		t.Errorf("peer client enabled off a rejected fleet: %+v", stats.Peers)
	}
}
