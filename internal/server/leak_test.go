package server

import (
	"testing"

	"dispersal/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine running — a
// snapshot loop that outlives Close, a peer fetch that never returns, a
// keep-alive reader nobody shut down.
func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
