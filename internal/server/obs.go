package server

// The server's observability surface: one obs.Registry of request/stage
// latency histograms and runtime gauges rendered on GET /metricsz
// (Prometheus text format) and summarized on /statsz, plus a bounded ring
// of per-request span traces served on GET /tracez?min_ms=. Every request
// carries an X-Request-ID — accepted from the client or minted at ingress,
// echoed on the response, threaded through the context onto every
// structured log line, span trace and peer warm-state hop.
//
// The whole surface is optional: Config.DisableObs builds a server whose
// instruments are all nil (the obs package's nil instruments no-op), which
// is how `paperbench -obs-overhead` measures the instrumentation tax as
// the difference between two otherwise identical servers.

import (
	"context"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"dispersal/internal/obs"
)

// serverObs bundles the server's instruments. Built by newServerObs; the
// disabled form holds nil instruments throughout, so call sites are
// unconditional.
type serverObs struct {
	reg    *obs.Registry
	traces *obs.Ring

	// reqAnalyze/reqSweep/reqTrajectory time whole requests, one family
	// split by handler label.
	reqAnalyze    *obs.Histogram
	reqSweep      *obs.Histogram
	reqTrajectory *obs.Histogram

	// The stage family splits a request's time by where it went: body
	// decode, scheduler queue wait, warm-seed lookup (local bucket vs peer
	// fetch), the equilibrium and optimum/SPoA solver parts, push
	// enqueueing, NDJSON stream writes, and a chain follower's wait on its
	// leader.
	stageDecode    *obs.Histogram
	stageQueueWait *obs.Histogram
	stageSeedLocal *obs.Histogram
	stageSeedPeer  *obs.Histogram
	stageSolveEq   *obs.Histogram
	stageSolveOpt  *obs.Histogram
	stagePushEnq   *obs.Histogram
	stageWrite     *obs.Histogram
	stageChainWait *obs.Histogram

	// frame times one trajectory frame end to end (solve or cache hit to
	// emitted line).
	frame *obs.Histogram

	solvesTotal *obs.Counter
}

// newServerObs builds the instrument set. With enabled false everything is
// nil and every recording site degrades to a nil check.
func newServerObs(enabled bool) *serverObs {
	o := &serverObs{}
	if !enabled {
		return o
	}
	o.reg = obs.NewRegistry()
	o.traces = obs.NewRing(obs.DefaultRingSize)

	const reqName = "dispersald_request_seconds"
	const reqHelp = "Request latency by handler."
	o.reqAnalyze = o.reg.Histogram(reqName, reqHelp, obs.L("handler", "analyze"))
	o.reqSweep = o.reg.Histogram(reqName, reqHelp, obs.L("handler", "sweep"))
	o.reqTrajectory = o.reg.Histogram(reqName, reqHelp, obs.L("handler", "trajectory"))

	const stageName = "dispersald_stage_seconds"
	const stageHelp = "Time spent per request stage."
	stage := func(s string) *obs.Histogram { return o.reg.Histogram(stageName, stageHelp, obs.L("stage", s)) }
	o.stageDecode = stage("decode")
	o.stageQueueWait = stage("queue_wait")
	o.stageSeedLocal = stage("seed_local")
	o.stageSeedPeer = stage("seed_peer")
	o.stageSolveEq = stage("solve_eq")
	o.stageSolveOpt = stage("solve_opt")
	o.stagePushEnq = stage("push_enqueue")
	o.stageWrite = stage("write")
	o.stageChainWait = stage("chain_wait")

	o.frame = o.reg.Histogram("dispersald_trajectory_frame_seconds",
		"One trajectory frame end to end: solve or cache hit through the emitted line.")

	o.solvesTotal = o.reg.Counter("dispersald_solves_total",
		"Underlying solver runs — the count the caches exist to minimize.")

	o.reg.GaugeFunc("dispersald_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	o.reg.GaugeFunc("dispersald_heap_inuse_bytes", "Bytes in in-use heap spans.",
		func() float64 { var m runtime.MemStats; runtime.ReadMemStats(&m); return float64(m.HeapInuse) })
	o.reg.GaugeFunc("dispersald_gc_pause_seconds", "Cumulative GC stop-the-world pause time.",
		func() float64 { var m runtime.MemStats; runtime.ReadMemStats(&m); return float64(m.PauseTotalNs) / 1e9 })
	return o
}

// observeSpan opens a named span on ctx's trace and returns a closer that
// records the duration into both the trace and the stage histogram. Both
// the trace and the histogram may be nil.
func observeSpan(ctx context.Context, name string, h *obs.Histogram) func() {
	sp := obs.TraceFrom(ctx).StartSpan(name)
	return func() { h.Observe(sp.End()) }
}

// tracedOp maps a request to its trace/latency handler label ("" for
// endpoints that are not traced: health, stats, scrapes, peer exchange).
func tracedOp(r *http.Request) string {
	if r.Method != http.MethodPost {
		return ""
	}
	switch r.URL.Path {
	case "/v1/analyze":
		return "analyze"
	case "/v1/sweep":
		return "sweep"
	case "/v1/trajectory":
		return "trajectory"
	}
	return ""
}

// withObs is the ingress middleware: it accepts or mints the request ID,
// echoes it on the response, threads it (plus a span trace and a latency
// observation for the solve endpoints) through the request context.
func (s *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := obs.AcceptRequestID(r.Header.Get(obs.RequestIDHeader))
		w.Header().Set(obs.RequestIDHeader, rid)
		ctx := obs.WithRequestID(r.Context(), rid)

		op := tracedOp(r)
		var tr *obs.Trace
		var hist *obs.Histogram
		if op != "" {
			switch op {
			case "analyze":
				hist = s.o.reqAnalyze
			case "sweep":
				hist = s.o.reqSweep
			case "trajectory":
				hist = s.o.reqTrajectory
			}
			if s.o.traces != nil {
				tr = obs.NewTrace(op, rid)
				ctx = obs.WithTrace(ctx, tr)
			}
		}
		start := time.Now()
		next.ServeHTTP(w, r.WithContext(ctx))
		if op != "" {
			hist.Observe(time.Since(start))
		}
		if tr != nil {
			s.o.traces.Add(tr.Finish())
		}
	})
}

// handleMetricsz serves GET /metricsz: the registry in the Prometheus text
// exposition format. A server built with DisableObs serves an empty body.
func (s *Server) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.o.reg.WritePrometheus(w)
}

// tracezResponse is the GET /tracez body.
type tracezResponse struct {
	Traces []obs.TraceRecord `json:"traces"`
}

// handleTracez serves GET /tracez?min_ms=&limit=: recent request traces,
// newest first, filtered to totals of at least min_ms milliseconds.
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var minTotal time.Duration
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, "request",
				&strconv.NumError{Func: "min_ms", Num: v, Err: strconv.ErrSyntax})
			return
		}
		minTotal = time.Duration(ms * float64(time.Millisecond))
	}
	limit := 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "request",
				&strconv.NumError{Func: "limit", Num: v, Err: strconv.ErrSyntax})
			return
		}
		limit = n
	}
	recs := s.o.traces.Snapshot(minTotal, limit)
	if recs == nil {
		recs = []obs.TraceRecord{}
	}
	writeJSON(w, http.StatusOK, tracezResponse{Traces: recs})
}

// runtimeStats is the /statsz runtime section (satellite of the /metricsz
// gauges, for the humans already reading /statsz).
type runtimeStats struct {
	Goroutines     int     `json:"goroutines"`
	HeapInuseBytes uint64  `json:"heap_inuse_bytes"`
	GCPauseTotalMS float64 `json:"gc_pause_total_ms"`
}

func readRuntimeStats() runtimeStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return runtimeStats{
		Goroutines:     runtime.NumGoroutine(),
		HeapInuseBytes: m.HeapInuse,
		GCPauseTotalMS: float64(m.PauseTotalNs) / 1e6,
	}
}

// latencyStats summarizes the headline histograms for /statsz: whole
// requests by handler, per-frame and scheduler/chain waits, and the two
// solver parts.
func (o *serverObs) latencyStats() map[string]obs.Summary {
	if o.reg == nil {
		return nil
	}
	return map[string]obs.Summary{
		"analyze":          o.reqAnalyze.Summarize(),
		"sweep":            o.reqSweep.Summarize(),
		"trajectory":       o.reqTrajectory.Summarize(),
		"trajectory_frame": o.frame.Summarize(),
		"queue_wait":       o.stageQueueWait.Summarize(),
		"chain_wait":       o.stageChainWait.Summarize(),
		"solve_eq":         o.stageSolveEq.Summarize(),
		"solve_opt":        o.stageSolveOpt.Summarize(),
	}
}
