package server

// Tests of the observability surface: the /metricsz Prometheus exposition
// (strict line-format checks, torn-scrape resistance under load), the
// /tracez span ring, X-Request-ID accept/mint/echo and its propagation to
// a peer replica's structured logs, and the /statsz runtime and latency
// sections.

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dispersal/internal/obs"
)

// syncWriter makes a bytes.Buffer safe as an slog sink for a live server.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, payload
}

// parseExposition strictly parses a Prometheus text exposition: every
// sample line must parse as `name[{labels}] value`, every sampled family
// must have both # HELP and # TYPE lines before its first sample, and the
// returned map carries each family's TYPE.
func parseExposition(t *testing.T, body string) map[string]string {
	t.Helper()
	types := make(map[string]string)
	helps := make(map[string]bool)
	sampled := make(map[string]bool)
	baseOf := func(name string) string {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && types[base] == "histogram" {
				return base
			}
		}
		return name
	}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			fields := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(fields) != 2 || fields[1] == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			helps[fields[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			switch fields[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown TYPE %q", ln+1, line)
			}
			if sampled[fields[0]] {
				t.Fatalf("line %d: TYPE for %s after its samples", ln+1, fields[0])
			}
			types[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment form: %q", ln+1, line)
		}
		// Sample line: name[{labels}] value.
		name := line
		rest := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			j := strings.IndexByte(line, '}')
			if j < i {
				t.Fatalf("line %d: unterminated label set: %q", ln+1, line)
			}
			rest = strings.TrimSpace(line[j+1:])
		} else {
			fields := strings.Fields(line)
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed sample: %q", ln+1, line)
			}
			name, rest = fields[0], fields[1]
		}
		if _, err := strconv.ParseFloat(rest, 64); err != nil {
			t.Fatalf("line %d: sample value %q does not parse: %v", ln+1, rest, err)
		}
		base := baseOf(name)
		if !helps[base] || types[base] == "" {
			t.Fatalf("line %d: sample for %s (family %s) before HELP+TYPE", ln+1, name, base)
		}
		sampled[base] = true
	}
	return types
}

// assertHistogramSeries checks one labeled histogram series: cumulative
// buckets monotone in exposition order, the +Inf bucket present and equal
// to the series' _count.
func assertHistogramSeries(t *testing.T, body, family, labels string) uint64 {
	t.Helper()
	prev := int64(-1)
	inf := int64(-1)
	count := int64(-1)
	sawBucket := false
	for _, line := range strings.Split(body, "\n") {
		switch {
		case strings.HasPrefix(line, family+"_bucket{"+labels):
			sawBucket = true
			fields := strings.Fields(line)
			v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("bucket line %q: %v", line, err)
			}
			if v < prev {
				t.Fatalf("%s{%s}: cumulative buckets not monotone (%d after %d)", family, labels, v, prev)
			}
			prev = v
			if strings.Contains(line, `le="+Inf"`) {
				inf = v
			}
		case strings.HasPrefix(line, family+"_count{"+labels) || (labels == "" && strings.HasPrefix(line, family+"_count ")):
			fields := strings.Fields(line)
			v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if err != nil {
				t.Fatalf("count line %q: %v", line, err)
			}
			count = v
		case labels == "" && strings.HasPrefix(line, family+"_bucket{le="):
			sawBucket = true
			fields := strings.Fields(line)
			v, _ := strconv.ParseInt(fields[len(fields)-1], 10, 64)
			if v < prev {
				t.Fatalf("%s: cumulative buckets not monotone (%d after %d)", family, v, prev)
			}
			prev = v
			if strings.Contains(line, `le="+Inf"`) {
				inf = v
			}
		}
	}
	if !sawBucket || inf < 0 || count < 0 {
		t.Fatalf("%s{%s}: missing bucket series, +Inf or _count", family, labels)
	}
	if inf != count {
		t.Fatalf("%s{%s}: +Inf bucket %d != _count %d (torn scrape)", family, labels, inf, count)
	}
	return uint64(count)
}

// TestMetricszExposition drives each traced handler once and checks the
// scrape end to end: strict format, the per-handler request histograms,
// the stage split, the frame histogram, the solver counter, and the
// runtime gauges.
func TestMetricszExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{Timeout: 30 * time.Second})

	if resp, payload := postJSON(t, ts.URL+"/v1/analyze", exclusiveSpec); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %s\n%s", resp.Status, payload)
	}
	if resp, payload := postJSON(t, ts.URL+"/v1/sweep", `{"specs":[`+exclusiveSpec+`]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %s\n%s", resp.Status, payload)
	}
	if resp, payload := postJSON(t, ts.URL+"/v1/trajectory", trajectoryBody(6, 4, 3, 0.02)); resp.StatusCode != http.StatusOK {
		t.Fatalf("trajectory: %s\n%s", resp.Status, payload)
	}

	resp, payload := getBody(t, ts.URL+"/metricsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metricsz Content-Type = %q, want the 0.0.4 text format", ct)
	}
	body := string(payload)
	types := parseExposition(t, body)

	for family, kind := range map[string]string{
		"dispersald_request_seconds":          "histogram",
		"dispersald_stage_seconds":            "histogram",
		"dispersald_trajectory_frame_seconds": "histogram",
		"dispersald_solves_total":             "counter",
		"dispersald_goroutines":               "gauge",
		"dispersald_heap_inuse_bytes":         "gauge",
		"dispersald_gc_pause_seconds":         "gauge",
	} {
		if types[family] != kind {
			t.Errorf("family %s: TYPE %q, want %q", family, types[family], kind)
		}
	}

	// One request per handler: each per-handler series counts exactly 1.
	for _, handler := range []string{"analyze", "sweep", "trajectory"} {
		if n := assertHistogramSeries(t, body, "dispersald_request_seconds", `handler="`+handler+`"`); n != 1 {
			t.Errorf("request_seconds{handler=%q} count = %d, want 1", handler, n)
		}
	}
	// The solve stages ran (analyze+sweep+trajectory all solve), decode ran
	// per request, and the trajectory stream wrote frames.
	for _, stage := range []string{"decode", "solve_eq", "solve_opt", "write", "queue_wait"} {
		if n := assertHistogramSeries(t, body, "dispersald_stage_seconds", `stage="`+stage+`"`); n == 0 {
			t.Errorf("stage_seconds{stage=%q} never observed", stage)
		}
	}
	if n := assertHistogramSeries(t, body, "dispersald_trajectory_frame_seconds", ""); n != 3 {
		t.Errorf("trajectory_frame_seconds count = %d, want 3 (one per frame)", n)
	}
}

// TestMetricszNoTornScrape scrapes concurrently with request load and
// asserts every exposition is internally consistent. Run with -race this
// also proves the scrape path is data-race-free.
func TestMetricszNoTornScrape(t *testing.T) {
	_, ts := newTestServer(t, Config{Timeout: 30 * time.Second})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(exclusiveSpec))
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}()
	}
	for i := 0; i < 30; i++ {
		resp, payload := getBody(t, ts.URL+"/metricsz")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape %d: %s", i, resp.Status)
		}
		body := string(payload)
		parseExposition(t, body)
		assertHistogramSeries(t, body, "dispersald_request_seconds", `handler="analyze"`)
	}
	close(stop)
	wg.Wait()
}

// TestRequestIDAcceptMintEcho pins the ingress rules: a usable client ID
// is echoed verbatim, a missing or unsafe one is replaced by a minted ID.
func TestRequestIDAcceptMintEcho(t *testing.T) {
	_, ts := newTestServer(t, Config{Timeout: 30 * time.Second})

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze", strings.NewReader(exclusiveSpec))
	req.Header.Set(obs.RequestIDHeader, "client-rid-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.RequestIDHeader); got != "client-rid-1" {
		t.Fatalf("usable client ID not echoed: got %q", got)
	}

	for _, supplied := range []string{"", "has space", strings.Repeat("x", obs.MaxRequestIDLen+1)} {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze", strings.NewReader(exclusiveSpec))
		if supplied != "" {
			req.Header.Set(obs.RequestIDHeader, supplied)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		got := resp.Header.Get(obs.RequestIDHeader)
		if got == supplied || len(got) != 16 {
			t.Fatalf("unsafe client ID %q: response carries %q, want a minted 16-char ID", supplied, got)
		}
	}
}

// TestTracez drives one traced request and reads it back: the client's
// request ID, the op, and the decode/solve spans must all be there, the
// min_ms filter and limit must apply, and bad parameters must 400.
func TestTracez(t *testing.T) {
	_, ts := newTestServer(t, Config{Timeout: 30 * time.Second})

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze", strings.NewReader(exclusiveSpec))
	req.Header.Set(obs.RequestIDHeader, "trace-rid-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	httpResp, payload := getBody(t, ts.URL+"/tracez")
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("tracez: %s\n%s", httpResp.Status, payload)
	}
	var out tracezResponse
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatalf("decode tracez: %v\n%s", err, payload)
	}
	var found *obs.TraceRecord
	for i := range out.Traces {
		if out.Traces[i].RequestID == "trace-rid-7" {
			found = &out.Traces[i]
			break
		}
	}
	if found == nil {
		t.Fatalf("trace-rid-7 not in /tracez: %s", payload)
	}
	if found.Op != "analyze" {
		t.Errorf("trace op = %q, want analyze", found.Op)
	}
	spans := make(map[string]bool)
	for _, sp := range found.Spans {
		spans[sp.Name] = true
	}
	for _, want := range []string{"decode", "solve_eq", "solve_opt"} {
		if !spans[want] {
			t.Errorf("trace missing span %q (has %v)", want, found.Spans)
		}
	}

	// An absurd min_ms filters the trace out; the response is still a
	// well-formed empty list, not null.
	_, payload = getBody(t, ts.URL+"/tracez?min_ms=3600000")
	var filtered tracezResponse
	if err := json.Unmarshal(payload, &filtered); err != nil {
		t.Fatalf("decode filtered tracez: %v", err)
	}
	if filtered.Traces == nil || len(filtered.Traces) != 0 {
		t.Errorf("min_ms filter: got %v, want empty non-null list", filtered.Traces)
	}

	for _, q := range []string{"min_ms=nope", "min_ms=-1", "limit=0", "limit=x"} {
		resp, _ := getBody(t, ts.URL+"/tracez?"+q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("tracez?%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestStatszRuntimeAndLatency: /statsz carries the runtime gauge section
// and per-handler latency summaries once requests have flowed.
func TestStatszRuntimeAndLatency(t *testing.T) {
	_, ts := newTestServer(t, Config{Timeout: 30 * time.Second})
	if resp, payload := postJSON(t, ts.URL+"/v1/analyze", exclusiveSpec); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %s\n%s", resp.Status, payload)
	}

	stats := getStats(t, ts.URL)
	if stats.Runtime.Goroutines < 1 {
		t.Errorf("runtime.goroutines = %d, want >= 1", stats.Runtime.Goroutines)
	}
	if stats.Runtime.HeapInuseBytes == 0 {
		t.Error("runtime.heap_inuse_bytes = 0")
	}
	lat, ok := stats.Latency["analyze"]
	if !ok {
		t.Fatalf("statsz latency lacks the analyze summary: %+v", stats.Latency)
	}
	if lat.Count != 1 {
		t.Errorf("analyze latency count = %d, want 1", lat.Count)
	}
	if lat.P50MS <= 0 || lat.P99MS < lat.P50MS {
		t.Errorf("analyze latency quantiles malformed: %+v", lat)
	}
}

// TestDisableObs: the uninstrumented build still serves — requests work,
// the ID is still echoed (correlation stays), /metricsz is empty and
// /tracez is an empty list.
func TestDisableObs(t *testing.T) {
	_, ts := newTestServer(t, Config{Timeout: 30 * time.Second, DisableObs: true})

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze", strings.NewReader(exclusiveSpec))
	req.Header.Set(obs.RequestIDHeader, "noobs-rid")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze with DisableObs: %s\n%s", resp.Status, payload)
	}
	if got := resp.Header.Get(obs.RequestIDHeader); got != "noobs-rid" {
		t.Errorf("DisableObs dropped the request-ID echo: %q", got)
	}

	mResp, mPayload := getBody(t, ts.URL+"/metricsz")
	if mResp.StatusCode != http.StatusOK || len(mPayload) != 0 {
		t.Errorf("DisableObs /metricsz: status %d body %q, want 200 and empty", mResp.StatusCode, mPayload)
	}
	tResp, tPayload := getBody(t, ts.URL+"/tracez")
	if tResp.StatusCode != http.StatusOK {
		t.Fatalf("DisableObs /tracez: %s", tResp.Status)
	}
	var out tracezResponse
	if err := json.Unmarshal(tPayload, &out); err != nil || out.Traces == nil || len(out.Traces) != 0 {
		t.Errorf("DisableObs /tracez: %q, want an empty non-null list (err %v)", tPayload, err)
	}
}

// TestPeerRequestIDCorrelation proves the cross-replica story: a request
// to replica B that peer-fetches warm state from replica A leaves B's
// client-supplied request ID in BOTH replicas' structured logs and in B's
// trace.
func TestPeerRequestIDCorrelation(t *testing.T) {
	values, k := federationSpec()

	var logA, logB syncWriter
	_, tsA := newTestServer(t, Config{
		Timeout: 30 * time.Second,
		Logger:  slog.New(slog.NewTextHandler(&logA, nil)),
	})
	if resp, payload := postJSON(t, tsA.URL+"/v1/analyze", specJSON(values, k, "sharing")); resp.StatusCode != http.StatusOK {
		t.Fatalf("warming A: %s\n%s", resp.Status, payload)
	}

	_, tsB := newTestServer(t, Config{
		Timeout:     30 * time.Second,
		Peers:       []string{tsA.URL},
		PeerTimeout: 2 * time.Second,
		Logger:      slog.New(slog.NewTextHandler(&logB, nil)),
	})

	const rid = "fleet-corr-42"
	req, _ := http.NewRequest(http.MethodPost, tsB.URL+"/v1/analyze",
		strings.NewReader(specJSON(perturb(values, 1e-4), k, "sharing")))
	req.Header.Set(obs.RequestIDHeader, rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze via B: %s\n%s", resp.Status, payload)
	}
	stats := getStats(t, tsB.URL)
	if stats.Peers.Hits != 1 {
		t.Fatalf("peer hits = %d, want 1 — the request never took the peer hop", stats.Peers.Hits)
	}

	if !strings.Contains(logB.String(), "rid="+rid) {
		t.Errorf("replica B's logs lack rid=%s:\n%s", rid, logB.String())
	}
	if !strings.Contains(logA.String(), "rid="+rid) {
		t.Errorf("replica A's logs lack rid=%s — the ID did not cross the peer hop:\n%s", rid, logA.String())
	}

	_, tPayload := getBody(t, tsB.URL+"/tracez")
	if !strings.Contains(string(tPayload), rid) {
		t.Errorf("replica B's /tracez lacks %s:\n%s", rid, tPayload)
	}
}
