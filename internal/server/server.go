// Package server implements the dispersald HTTP API: equilibrium/SPoA
// analysis of dispersal games over a canonical-spec result cache.
//
// Endpoints:
//
//	POST /v1/analyze     one game spec in the speccodec wire form; responds
//	                     with the game's IFD, coverage optimum and SPoA.
//	POST /v1/sweep       {"specs": [spec, ...]}; fans the batch out onto
//	                     dispersal.Sweep and answers per item.
//	POST /v1/trajectory  {"spec": spec, "frames": [[...], ...]} — or
//	                     {"spec": spec, "deltas": [[...], ...]} with
//	                     server-side Game.Evolve-style drift accumulation —
//	                     solves the spec's game over a sequence of drifting
//	                     landscapes, warm-starting each frame from the
//	                     previous one, and streams one NDJSON result line
//	                     per frame. Streams are sessions (internal/session):
//	                     admitted against a per-client frame budget and a
//	                     global cap (typed 429 with Retry-After), scheduled
//	                     round-robin across streams on a bounded worker
//	                     pool, coalesced when byte-identical streams run
//	                     concurrently, and resumable after a disconnect with
//	                     ?session=<id>&resume=<seq> (typed 410 when gone).
//	GET  /v1/warmstate   peer exchange, pull side: the statewire encoding
//	                     of this replica's warm state for ?key=<LocalityKey>.
//	POST /v1/warmstate   peer exchange, push side (fleet mode only): a
//	                     statewire push envelope of states another replica
//	                     replicated here proactively.
//	GET  /healthz        liveness.
//	GET  /statsz         cache, warm-cache, federation, ring and request
//	                     counters.
//
// Identical game specs — across clients, across analyze, sweep and
// trajectory frames, however the JSON was spelled — share one cache entry
// keyed by speccodec.CacheKey (trajectory frames use the frame-substituted
// speccodec.FrameKey, which is the same keyspace), and concurrent identical
// requests collapse onto a single solve (singleflight). Near-identical
// specs additionally share warm solver state: every solve stores its
// solver-core state (internal/solve.State) in a locality-keyed warm cache
// (internal/warmcache, keyed by speccodec.LocalityKey), and a solve whose
// exact key misses seeds from any state recorded for a sufficiently near
// landscape, falling back cold when the seed does not pay off. Each request
// runs under a deadline (Config.Timeout) propagated as a context through
// every solver; an exceeded deadline answers 504 — or, mid-stream on a
// trajectory, a terminal error line — and is never cached.
//
// The warm tier federates across process boundaries, always best-effort.
// With Config.StateDir the warm cache is snapshotted to disk
// (internal/statestore) and reloaded at construction, so a restarted
// replica answers its first repeat-locality request warm. With Config.Fleet
// (the preferred topology) the replicas share the locality keyspace through
// a consistent-hash ring (internal/ring): a local warm-cache miss asks only
// the key's owner — O(1) fan-out however large the fleet, with one
// successor fallback when the owner errors — and every fresh solve is
// pushed (internal/peer.Pusher; batched, bounded queue, drop on
// backpressure) to the key's owner and on to its followers, so the next
// miss anywhere finds the state where routing looks for it. The legacy
// Config.Peers topology instead polls every sibling on each miss. Neither
// path can change a result: federated states are warm seeds like any other,
// verified against the actual landscape with a cold fallback.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"dispersal"
	"dispersal/internal/obs"
	"dispersal/internal/peer"
	"dispersal/internal/rescache"
	"dispersal/internal/ring"
	"dispersal/internal/session"
	"dispersal/internal/solve"
	"dispersal/internal/speccodec"
	"dispersal/internal/statestore"
	"dispersal/internal/warmcache"
)

// maxBodyBytes bounds request bodies; specs are small.
const maxBodyBytes = 4 << 20

// maxSweepItems bounds one sweep batch.
const maxSweepItems = 4096

// maxTrajectoryFrames bounds one trajectory request.
const maxTrajectoryFrames = 4096

// Config tunes a Server.
type Config struct {
	// Workers bounds the sweep fan-out pool; 0 selects GOMAXPROCS.
	Workers int
	// CacheSize is the total number of cached analyses; <= 0 selects the
	// rescache default.
	CacheSize int
	// WarmCacheSize is the number of locality-keyed warm solver states
	// kept for cross-request warm-starting; <= 0 selects the warmcache
	// default.
	WarmCacheSize int
	// Timeout is the per-request deadline delivered to the solvers via
	// context; 0 means no deadline.
	Timeout time.Duration
	// StateDir, when non-empty, makes the warm cache persistent: its
	// contents are snapshotted there periodically (and on Close), and
	// loaded back at construction so a restarted replica boots warm.
	StateDir string
	// SnapshotInterval is the warm-state snapshot cadence under StateDir;
	// <= 0 selects statestore.DefaultInterval.
	SnapshotInterval time.Duration
	// Peers lists sibling replicas (host:port or http(s)://host:port)
	// consulted for warm state on a local warm-cache miss, via their
	// GET /v1/warmstate endpoints — the legacy poll-everyone topology.
	// Ignored when Fleet is set.
	Peers []string
	// Fleet lists every replica of an ownership-routed fleet, self
	// included, as base URLs. When set (with SelfID), warm-state fetches
	// route to each key's ring owner and fresh solves are pushed to the
	// owner's replica set. An unusable fleet configuration is logged and
	// the server runs standalone — serving must not die over a warm-tier
	// option.
	Fleet []string
	// SelfID is this replica's own entry in Fleet (its advertised base
	// URL). Required with Fleet.
	SelfID string
	// PeerTimeout bounds one whole peer-fetch round, and one push
	// delivery; <= 0 selects peer.DefaultTimeout.
	PeerTimeout time.Duration
	// MaxSessions bounds concurrently attached trajectory streams; <= 0
	// selects the session default. Excess streams answer 429.
	MaxSessions int
	// ClientRate is the per-client trajectory frame budget refill rate in
	// frames per second; <= 0 selects the session default.
	ClientRate float64
	// FrameBudget is the per-client trajectory token bucket capacity in
	// frames — also the largest single stream one client can open; <= 0
	// selects the session default.
	FrameBudget int
	// Logger receives the server's structured log lines (one per request,
	// plus warm-tier and federation events), each carrying the request ID
	// when one is in scope. Nil discards.
	Logger *slog.Logger
	// DisableObs builds the server without its observability instruments:
	// no registry, no histograms, no trace ring — every recording site
	// degrades to a nil check. `paperbench -obs-overhead` compares this
	// build against the default to bound the instrumentation tax.
	DisableObs bool

	// sessionClock, when non-nil, drives the session registry's budget
	// refills and park TTLs. In-package tests install a session.FakeClock;
	// everyone else gets the wall clock.
	sessionClock session.Clock
}

// Analysis is the wire form of one analyzed game: the deterministic
// quantities of the paper's headline results.
type Analysis struct {
	// M is the number of sites, K the player count, Policy the congestion
	// policy's display name.
	M      int    `json:"m"`
	K      int    `json:"k"`
	Policy string `json:"policy"`
	// IFD is the unique symmetric equilibrium, Nu its common payoff.
	IFD []float64 `json:"ifd"`
	Nu  float64   `json:"nu"`
	// Optimum is the coverage-maximizing symmetric strategy and
	// OptCoverage its coverage; EqCoverage is the worst symmetric
	// equilibrium's coverage and SPoA the ratio.
	Optimum     []float64 `json:"optimum"`
	OptCoverage float64   `json:"opt_coverage"`
	EqCoverage  float64   `json:"eq_coverage"`
	SPoA        float64   `json:"spoa"`
}

// Server is the dispersald request handler. Construct with New; it
// implements http.Handler.
type Server struct {
	cfg Config
	mux *http.ServeMux
	// handler is mux wrapped in the observability middleware (request IDs,
	// traces, request latency) — what ServeHTTP actually runs.
	handler http.Handler
	log     *slog.Logger
	// o carries the observability instruments; with Config.DisableObs they
	// are all nil and recording sites no-op.
	o     *serverObs
	cache *rescache.Cache[Analysis]
	// warm shares solver-core states across requests, keyed by landscape
	// locality (speccodec.LocalityKey): an isolated analyze request or a
	// fresh trajectory chain warm-starts from any sufficiently near past
	// solve.
	warm *warmcache.Cache
	// peers, when non-nil, extends the warm tier across replicas: a local
	// warm-cache miss asks the configured siblings before solving cold.
	peers *peer.Client
	// ring, when non-nil, is the fleet's keyspace assignment (Config.Fleet)
	// shared by the client's fetch routing and the pusher.
	ring *ring.Ring
	// pusher, when non-nil, replicates fresh solves across the fleet.
	pusher *peer.Pusher
	// snap, when non-nil, persists the warm cache under Config.StateDir.
	snap *statestore.Snapshotter
	// sessions admits, schedules and resumes trajectory streams; chains
	// coalesces byte-identical concurrent streams onto one solve per frame.
	sessions *session.Registry
	chains   *rescache.Chains[Analysis]
	// loadedStates counts the states seeded from a boot-time snapshot.
	loadedStates int64
	start        time.Time

	// solves counts underlying solver runs — the quantity the cache
	// exists to minimize. analyzeReqs/sweepReqs/sweepItems and
	// trajectoryReqs/trajectoryFrames/trajectoryWarmed count traffic;
	// trajectoryWarmed counts frames answered by a warm-started solve.
	solves, analyzeReqs, sweepReqs, sweepItems         atomic.Int64
	trajectoryReqs, trajectoryFrames, trajectoryWarmed atomic.Int64
	// warmSeeded counts solves where a warm-cache seed produced a warm
	// solve; warmFallback counts solves where a seed was found but the
	// solver fell back cold (bracket miss or incompatible state).
	// peerSeeded is the subset of warmSeeded whose seed came from a peer
	// rather than the local cache — the count federation exists to grow.
	warmSeeded, warmFallback, peerSeeded atomic.Int64
	// sessionCoalesced counts trajectory frames answered without fresh
	// solver work: cache hits, singleflight collapses and chain follows.
	sessionCoalesced atomic.Int64
}

// New builds a Server with its cache and routes.
func New(cfg Config) *Server {
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		log:   logger,
		o:     newServerObs(!cfg.DisableObs),
		cache: rescache.New[Analysis](cfg.CacheSize),
		warm:  warmcache.New(cfg.WarmCacheSize),
		start: time.Now(),
	}
	s.sessions = session.NewRegistry(session.Config{
		MaxSessions: cfg.MaxSessions,
		FrameBudget: cfg.FrameBudget,
		ClientRate:  cfg.ClientRate,
		Workers:     cfg.Workers,
		Clock:       cfg.sessionClock,
	})
	if wait := s.o.stageQueueWait; wait != nil {
		s.sessions.Scheduler().SetWaitObserver(wait.Observe)
	}
	s.chains = rescache.NewChains[Analysis]()
	peerCfg := peer.Config{Peers: cfg.Peers, Timeout: cfg.PeerTimeout}
	if len(cfg.Fleet) > 0 {
		r, err := ring.New(peer.NormalizeAddrs(cfg.Fleet), peer.NormalizeAddr(cfg.SelfID))
		if err != nil {
			// The fleet is a warm-tier option; serving must not die over it.
			s.log.Warn("fleet configuration unusable, running standalone", "err", err)
		} else {
			s.ring = r
			peerCfg = peer.Config{Ring: r, Timeout: cfg.PeerTimeout}
			s.pusher = peer.NewPusher(peer.PusherConfig{
				Ring:    r,
				Timeout: cfg.PeerTimeout,
				Logger:  s.log,
			})
		}
	}
	s.peers = peer.NewClient(peerCfg)
	if cfg.StateDir != "" {
		entries, err := statestore.Load(cfg.StateDir)
		if err != nil {
			s.log.Warn("warm-state snapshot unusable, booting cold", "err", err)
		}
		s.loadedStates = int64(statestore.Seed(s.warm, entries))
		if s.loadedStates > 0 {
			s.log.Info("warm-state snapshot seeded", "states", s.loadedStates, "path", statestore.Path(cfg.StateDir))
		}
		s.snap = statestore.NewSnapshotter(cfg.StateDir, cfg.SnapshotInterval, s.warm, s.log)
		s.snap.Start()
	}
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/trajectory", s.handleTrajectory)
	s.mux.HandleFunc("GET "+peer.WarmStatePath, peer.Handler(s.warm, s.log))
	if s.pusher != nil {
		s.mux.HandleFunc("POST "+peer.WarmStatePath, s.pusher.Handler(s.warm))
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	s.mux.HandleFunc("GET /tracez", s.handleTracez)
	s.handler = s.withObs(s.mux)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// Close releases the server's background resources: it stops the push
// worker, drops the peer client's idle connections, stops the snapshot
// loop and writes a final warm-state snapshot, so a clean shutdown
// persists everything the last tick missed. Safe on a server built without
// a fleet, peers or a state directory, and safe to call more than once.
func (s *Server) Close() error {
	s.pusher.Close()
	s.peers.Close()
	if s.snap == nil {
		return nil
	}
	return s.snap.Close()
}

// Solves reports how many solver runs the server has performed; repeated
// identical requests must not grow it.
func (s *Server) Solves() int64 { return s.solves.Load() }

// CacheStats snapshots the result-cache counters.
func (s *Server) CacheStats() rescache.Stats { return s.cache.Stats() }

// apiError is the JSON error body. Kind is machine-readable: "syntax",
// "spec", "policy", "request", "timeout", "internal", "rate_limit" (429,
// frame budget exhausted), "sessions" (429, session cap) or "gone" (410,
// unresumable stream).
type apiError struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, kind string, err error) {
	writeJSON(w, status, apiError{Error: err.Error(), Kind: kind})
}

// decodeKind maps a speccodec error onto its wire kind.
func decodeKind(err error) string {
	switch {
	case errors.Is(err, speccodec.ErrSyntax):
		return "syntax"
	case errors.Is(err, speccodec.ErrSpec):
		return "spec"
	case errors.Is(err, speccodec.ErrPolicy):
		return "policy"
	default:
		return "request"
	}
}

// requestContext applies the per-request deadline.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.Timeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.Timeout)
	}
	return context.WithCancel(r.Context())
}

// solve computes the full deterministic analysis of one game through a
// memoizing session, honoring ctx between solver stages. The second result
// reports whether the request's primary equilibrium solve was warm-seeded
// (from a trajectory chain or a warm-cache state); the SPoA stage always
// warm-starts off that first solve's state intra-request, which is not
// counted — the flag tracks cross-solve reuse, the quantity the warm
// telemetry exists to measure.
func (s *Server) solve(ctx context.Context, a *dispersal.Analysis) (Analysis, bool, error) {
	s.solves.Add(1)
	s.o.solvesTotal.Inc()
	if err := ctx.Err(); err != nil {
		return Analysis{}, false, err
	}
	endEq := observeSpan(ctx, "solve_eq", s.o.stageSolveEq)
	ifd, nu, err := a.IFDContext(ctx)
	endEq()
	if err != nil {
		return Analysis{}, false, err
	}
	warm := a.Game().Warmed()
	endOpt := observeSpan(ctx, "solve_opt", s.o.stageSolveOpt)
	inst, err := a.SPoAContext(ctx)
	endOpt()
	if err != nil {
		return Analysis{}, warm, err
	}
	g := a.Game()
	return Analysis{
		M:           len(g.Values()),
		K:           g.Players(),
		Policy:      g.Policy().Name(),
		IFD:         ifd,
		Nu:          nu,
		Optimum:     inst.Optimum,
		OptCoverage: inst.OptCoverage,
		EqCoverage:  inst.EqCoverage,
		SPoA:        inst.Ratio,
	}, warm, nil
}

// seedAndSolve runs one analysis with warm-cache threading: a state stored
// under the spec's locality key (any sufficiently near past solve) seeds
// the game — consulting the peer replicas when the local cache misses — the
// solve runs, and the resulting state is stored back for the next nearby
// request. The seeded/fallback counters record whether a found seed
// actually produced a warm solve. A locality-key failure only disables the
// warm path — the solve itself proceeds cold.
func (s *Server) seedAndSolve(ctx context.Context, a *dispersal.Analysis, spec dispersal.Spec) (Analysis, error) {
	lkey, lerr := speccodec.LocalityKey(spec)
	seeded, fromPeer := false, false
	if lerr == nil {
		if st := s.seedLookup(ctx, lkey, spec.Values); st != nil {
			a.Game().SeedState(st.state)
			seeded, fromPeer = true, st.fromPeer
		}
	}
	res, warm, err := s.solve(ctx, a)
	if err != nil {
		return res, err
	}
	if seeded {
		if warm {
			s.warmSeeded.Add(1)
			if fromPeer {
				s.peerSeeded.Add(1)
			}
		} else {
			s.warmFallback.Add(1)
		}
	}
	if lerr == nil {
		st := a.Game().StateSnapshot()
		s.warm.Store(lkey, st)
		// Replicate the fresh solve toward the key's owner and followers;
		// Solved never blocks (bounded queue, drop on backpressure).
		endPush := observeSpan(ctx, "push_enqueue", s.o.stagePushEnq)
		s.pusher.Solved(ctx, lkey, st)
		endPush()
	}
	return res, nil
}

// seedResult is one warm seed plus where it came from.
type seedResult struct {
	state    *solve.State
	fromPeer bool
}

// seedLookup finds a warm seed for the locality key: the local cache first,
// then — on a miss, when federation is configured — the peer replicas. A
// peer-provided state is adopted into the local cache, so one fetch warms
// the whole bucket for later requests.
func (s *Server) seedLookup(ctx context.Context, lkey string, f dispersal.Values) *seedResult {
	endLocal := observeSpan(ctx, "seed_local", s.o.stageSeedLocal)
	st := s.warm.Lookup(lkey, f)
	endLocal()
	if st != nil {
		return &seedResult{state: st}
	}
	endPeer := observeSpan(ctx, "seed_peer", s.o.stageSeedPeer)
	st = s.peers.Fetch(ctx, lkey)
	endPeer()
	if st != nil {
		s.warm.Store(lkey, st)
		return &seedResult{state: st, fromPeer: true}
	}
	return nil
}

// cachedSolve answers one spec through the cache, collapsing concurrent
// identical requests onto one solve. The game is only constructed on a
// miss, and the miss path threads the warm cache.
func (s *Server) cachedSolve(ctx context.Context, spec dispersal.Spec) (Analysis, bool, error) {
	key, err := speccodec.CacheKey(spec)
	if err != nil {
		return Analysis{}, false, err
	}
	return s.cache.Do(ctx, key, func() (Analysis, error) {
		g, err := dispersal.FromSpec(spec)
		if err != nil {
			return Analysis{}, err
		}
		return s.seedAndSolve(ctx, g.Analyze(), spec)
	})
}

// cachedSolveAnalysis is cachedSolve for a session whose game already
// exists (the sweep path, where dispersal.Sweep constructed it): the
// session is reused on a miss instead of building a second identical game.
func (s *Server) cachedSolveAnalysis(ctx context.Context, a *dispersal.Analysis) (Analysis, bool, error) {
	spec := a.Game().Spec()
	key, err := speccodec.CacheKey(spec)
	if err != nil {
		return Analysis{}, false, err
	}
	return s.cache.Do(ctx, key, func() (Analysis, error) {
		return s.seedAndSolve(ctx, a, spec)
	})
}

// analyzeResponse is the /v1/analyze body.
type analyzeResponse struct {
	Cached    bool     `json:"cached"`
	ElapsedMS float64  `json:"elapsed_ms"`
	Result    Analysis `json:"result"`
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.analyzeReqs.Add(1)
	endDecode := observeSpan(r.Context(), "decode", s.o.stageDecode)
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		endDecode()
		writeError(w, http.StatusBadRequest, "request", err)
		return
	}
	spec, err := speccodec.Decode(body)
	endDecode()
	if err != nil {
		writeError(w, http.StatusBadRequest, decodeKind(err), err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	start := time.Now()
	res, cached, err := s.cachedSolve(ctx, spec)
	if err != nil {
		s.writeSolveError(w, err)
		return
	}
	s.log.Info("analyze", "rid", obs.RequestID(ctx),
		"m", res.M, "k", res.K, "policy", res.Policy, "cached", cached,
		"elapsed", time.Since(start).Round(time.Microsecond))
	writeJSON(w, http.StatusOK, analyzeResponse{
		Cached:    cached,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
		Result:    res,
	})
}

// writeSolveError maps solver failures: expired deadlines (and clients that
// went away) answer 504, everything else 500.
func (s *Server) writeSolveError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		writeError(w, http.StatusGatewayTimeout, "timeout", err)
		return
	}
	writeError(w, http.StatusInternalServerError, "internal", err)
}

// sweepRequest is the /v1/sweep body: a list of specs in the speccodec wire
// form.
type sweepRequest struct {
	Specs []json.RawMessage `json:"specs"`
}

// sweepItemResponse is one item of the /v1/sweep answer. Error, when
// non-empty, explains why Result is absent.
type sweepItemResponse struct {
	Index  int       `json:"index"`
	Tag    string    `json:"tag,omitempty"`
	Cached bool      `json:"cached"`
	Result *Analysis `json:"result,omitempty"`
	Error  string    `json:"error,omitempty"`
}

// sweepResponse is the /v1/sweep body.
type sweepResponse struct {
	ElapsedMS float64             `json:"elapsed_ms"`
	Results   []sweepItemResponse `json:"results"`
}

// cachedItem carries one sweep item's analysis plus whether it was served
// from cache.
type cachedItem struct {
	res    Analysis
	cached bool
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.sweepReqs.Add(1)
	endDecode := observeSpan(r.Context(), "decode", s.o.stageDecode)
	decoded := false
	endDecodeOnce := func() {
		if !decoded {
			decoded = true
			endDecode()
		}
	}
	defer endDecodeOnce()
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "request", err)
		return
	}
	var req sweepRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "syntax", fmt.Errorf("sweep body: %w", err))
		return
	}
	if len(req.Specs) == 0 {
		writeError(w, http.StatusBadRequest, "request", errors.New("sweep body has no specs"))
		return
	}
	if len(req.Specs) > maxSweepItems {
		writeError(w, http.StatusBadRequest, "request",
			fmt.Errorf("sweep of %d specs exceeds the limit of %d", len(req.Specs), maxSweepItems))
		return
	}
	specs := make([]dispersal.Spec, len(req.Specs))
	for i, raw := range req.Specs {
		spec, err := speccodec.Decode(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, decodeKind(err), fmt.Errorf("spec %d: %w", i, err))
			return
		}
		specs[i] = spec
	}
	endDecodeOnce()
	s.sweepItems.Add(int64(len(specs)))

	ctx, cancel := s.requestContext(r)
	defer cancel()
	start := time.Now()
	results, err := dispersal.Sweep(ctx, specs,
		func(ctx context.Context, a *dispersal.Analysis) (cachedItem, error) {
			res, cached, err := s.cachedSolveAnalysis(ctx, a)
			return cachedItem{res: res, cached: cached}, err
		},
		dispersal.WithWorkers(s.cfg.Workers))
	if err != nil {
		s.writeSolveError(w, err)
		return
	}
	resp := sweepResponse{
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
		Results:   make([]sweepItemResponse, len(results)),
	}
	for i, it := range results {
		item := sweepItemResponse{Index: it.Index, Tag: it.Tag, Cached: it.Value.cached}
		if it.Err != nil {
			item.Error = it.Err.Error()
		} else {
			res := it.Value.res
			item.Result = &res
		}
		resp.Results[i] = item
	}
	s.log.Info("sweep", "rid", obs.RequestID(ctx), "specs", len(specs),
		"elapsed", time.Since(start).Round(time.Microsecond))
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// warmCacheStats is the /statsz warm-cache section: the store's own
// counters plus the server-level outcome counters (a "seeded" solve took
// the warm path off a cached state; a "fallback" found a state but solved
// cold anyway; "loaded" states were seeded from a boot-time snapshot).
type warmCacheStats struct {
	warmcache.Stats
	Seeded   int64 `json:"seeded"`
	Fallback int64 `json:"fallback"`
	Loaded   int64 `json:"loaded"`
}

// peerStats is the /statsz federation section: the exchange client's own
// counters plus the server-level outcome counter ("seeded" solves took the
// warm path off a peer-provided state).
type peerStats struct {
	Enabled bool `json:"enabled"`
	peer.Stats
	Seeded int64 `json:"seeded"`
}

// ringStats is the /statsz ownership-routing section: the fleet topology
// plus the push/fetch counters that prove replication is flowing (or
// shedding). OwnedKeys is computed on demand — how many of the warm
// cache's buckets this replica is the ring owner of.
type ringStats struct {
	Enabled bool `json:"enabled"`
	// Members is the fleet size, Self this replica's member ID.
	Members int    `json:"members"`
	Self    string `json:"self,omitempty"`
	// OwnedKeys counts locally cached buckets this replica owns.
	OwnedKeys int64 `json:"owned_keys"`
	// PushesSent/Forwarded/PushesApplied/PushesDropped/PushErrors mirror
	// peer.PushStats; Fallbacks mirrors the fetch client's successor
	// fallbacks.
	PushesSent    int64 `json:"pushes_sent"`
	PushesApplied int64 `json:"pushes_applied"`
	Forwarded     int64 `json:"forwarded"`
	Fallbacks     int64 `json:"fallbacks"`
	PushesDropped int64 `json:"pushes_dropped"`
	PushErrors    int64 `json:"push_errors"`
}

// sessionStats is the /statsz sessions section: the registry's own
// counters plus the server-level ones ("coalesced" trajectory frames were
// answered without fresh solver work — a cache hit, a singleflight
// collapse or a chain follow; "chains" counts in-flight coalescing
// chains).
type sessionStats struct {
	session.Stats
	Coalesced int64 `json:"coalesced"`
	Chains    int   `json:"chains"`
}

// statsResponse is the /statsz body.
type statsResponse struct {
	UptimeS   float64        `json:"uptime_s"`
	Workers   int            `json:"workers"`
	TimeoutMS float64        `json:"timeout_ms"`
	Runtime   runtimeStats   `json:"runtime"`
	Cache     rescache.Stats `json:"cache"`
	WarmCache warmCacheStats `json:"warm_cache"`
	Peers     peerStats      `json:"peers"`
	Ring      ringStats      `json:"ring"`
	Sessions  sessionStats   `json:"sessions"`
	// Latency summarizes the headline obs histograms (count plus log-bucket
	// quantile estimates); absent on a DisableObs build. The full-resolution
	// histograms live on /metricsz.
	Latency  map[string]obs.Summary `json:"latency,omitempty"`
	Solves   int64                  `json:"solves"`
	Requests struct {
		Analyze          int64 `json:"analyze"`
		Sweep            int64 `json:"sweep"`
		SweepItems       int64 `json:"sweep_items"`
		Trajectory       int64 `json:"trajectory"`
		TrajectoryFrames int64 `json:"trajectory_frames"`
		TrajectoryWarmed int64 `json:"trajectory_warmed"`
	} `json:"requests"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	var resp statsResponse
	resp.UptimeS = time.Since(s.start).Seconds()
	resp.Workers = s.cfg.Workers
	resp.TimeoutMS = float64(s.cfg.Timeout) / float64(time.Millisecond)
	resp.Runtime = readRuntimeStats()
	resp.Latency = s.o.latencyStats()
	resp.Cache = s.cache.Stats()
	resp.WarmCache = warmCacheStats{
		Stats:    s.warm.Stats(),
		Seeded:   s.warmSeeded.Load(),
		Fallback: s.warmFallback.Load(),
		Loaded:   s.loadedStates,
	}
	resp.Peers = peerStats{
		Enabled: s.peers != nil,
		Stats:   s.peers.Stats(),
		Seeded:  s.peerSeeded.Load(),
	}
	if s.ring != nil {
		push := s.pusher.Stats()
		resp.Ring = ringStats{
			Enabled:       true,
			Members:       s.ring.Size(),
			Self:          s.ring.Self(),
			PushesSent:    push.Sent,
			PushesApplied: push.Applied,
			Forwarded:     push.Forwarded,
			Fallbacks:     resp.Peers.Fallbacks,
			PushesDropped: push.Dropped,
			PushErrors:    push.Errors,
		}
		for _, key := range s.warm.Keys() {
			if s.ring.Owns(key) {
				resp.Ring.OwnedKeys++
			}
		}
	}
	resp.Sessions = sessionStats{
		Stats:     s.sessions.Stats(),
		Coalesced: s.sessionCoalesced.Load(),
		Chains:    s.chains.Active(),
	}
	resp.Solves = s.solves.Load()
	resp.Requests.Analyze = s.analyzeReqs.Load()
	resp.Requests.Sweep = s.sweepReqs.Load()
	resp.Requests.SweepItems = s.sweepItems.Load()
	resp.Requests.Trajectory = s.trajectoryReqs.Load()
	resp.Requests.TrajectoryFrames = s.trajectoryFrames.Load()
	resp.Requests.TrajectoryWarmed = s.trajectoryWarmed.Load()
	writeJSON(w, http.StatusOK, resp)
}
