package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

const exclusiveSpec = `{"values":[1,0.5],"k":2,"policy":{"name":"exclusive"}}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, payload
}

func decodeAnalyze(t *testing.T, payload []byte) analyzeResponse {
	t.Helper()
	var out analyzeResponse
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatalf("decode analyze response: %v\n%s", err, payload)
	}
	return out
}

func TestAnalyzeCacheHitMiss(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	resp, payload := postJSON(t, ts.URL+"/v1/analyze", exclusiveSpec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first analyze: %s\n%s", resp.Status, payload)
	}
	first := decodeAnalyze(t, payload)
	if first.Cached {
		t.Error("first request reported cached")
	}
	if first.Result.SPoA < 0.999999 || first.Result.SPoA > 1.000001 {
		t.Errorf("exclusive SPoA = %v, want 1 (Corollary 5)", first.Result.SPoA)
	}
	if len(first.Result.IFD) != 2 {
		t.Errorf("IFD has %d entries, want 2", len(first.Result.IFD))
	}

	// Same game, different spelling, plus seed/tag noise: must hit.
	respelled := `{"tag":"noise","seed":123,"k":2,"policy":{"name":"exclusive"},"values":[1,0.5]}`
	resp, payload = postJSON(t, ts.URL+"/v1/analyze", respelled)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second analyze: %s\n%s", resp.Status, payload)
	}
	second := decodeAnalyze(t, payload)
	if !second.Cached {
		t.Error("identical game (respelled) missed the cache")
	}
	if second.Result.SPoA != first.Result.SPoA || second.Result.Nu != first.Result.Nu {
		t.Error("cached result differs from the first solve")
	}

	if n := s.Solves(); n != 1 {
		t.Errorf("server performed %d solves for 2 identical requests, want 1", n)
	}
	st := s.CacheStats()
	if st.Misses != 1 || st.Hits+st.Shared != 1 {
		t.Errorf("cache stats = %+v, want 1 miss and 1 hit", st)
	}
}

func TestSingleflightCollapse32(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
				strings.NewReader(exclusiveSpec))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			payload, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s: %s", resp.Status, payload)
				return
			}
			var out analyzeResponse
			if err := json.Unmarshal(payload, &out); err != nil {
				errs <- err
				return
			}
			if out.Result.SPoA < 0.999999 || out.Result.SPoA > 1.000001 {
				errs <- fmt.Errorf("SPoA = %v", out.Result.SPoA)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// However the 32 requests interleaved — all racing, all serialized, or
	// anything between — the solver may only ever have run once: racers
	// collapse onto the in-flight call and laggards hit the cache.
	if n := s.Solves(); n != 1 {
		t.Errorf("server performed %d solves under 32 identical concurrent requests, want 1", n)
	}
	st := s.CacheStats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.Shared != n-1 {
		t.Errorf("hits+shared = %d, want %d", st.Hits+st.Shared, n-1)
	}
}

func TestAnalyzeRejectsInvalidSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
		kind string
	}{
		{"malformed JSON", `{"values":`, "syntax"},
		{"unknown field", `{"values":[1],"k":1,"policy":{"name":"exclusive"},"x":1}`, "syntax"},
		{"empty values", `{"values":[],"k":1,"policy":{"name":"exclusive"}}`, "spec"},
		{"non-monotone values", `{"values":[0.5,1],"k":2,"policy":{"name":"exclusive"}}`, "spec"},
		{"zero players", `{"values":[1],"k":0,"policy":{"name":"exclusive"}}`, "spec"},
		{"unknown policy", `{"values":[1],"k":1,"policy":{"name":"mystery"}}`, "policy"},
		{"bad parameter", `{"values":[1],"k":2,"policy":{"name":"twopoint","c2":2}}`, "policy"},
	}
	for _, tc := range cases {
		resp, payload := postJSON(t, ts.URL+"/v1/analyze", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s, want 400\n%s", tc.name, resp.Status, payload)
			continue
		}
		var apiErr apiError
		if err := json.Unmarshal(payload, &apiErr); err != nil {
			t.Errorf("%s: error body is not JSON: %v", tc.name, err)
			continue
		}
		if apiErr.Kind != tc.kind {
			t.Errorf("%s: kind %q, want %q (%s)", tc.name, apiErr.Kind, tc.kind, apiErr.Error)
		}
	}
}

func TestAnalyzeDeadlineAnswers504(t *testing.T) {
	s, ts := newTestServer(t, Config{Timeout: time.Nanosecond})

	resp, payload := postJSON(t, ts.URL+"/v1/analyze", exclusiveSpec)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %s, want 504\n%s", resp.Status, payload)
	}
	var apiErr apiError
	if err := json.Unmarshal(payload, &apiErr); err != nil {
		t.Fatalf("error body: %v", err)
	}
	if apiErr.Kind != "timeout" {
		t.Errorf("kind %q, want timeout", apiErr.Kind)
	}
	// The failed solve must not be cached: a server with a sane timeout
	// would recompute. (The cache holds no entry for the key.)
	if st := s.CacheStats(); st.Entries != 0 {
		t.Errorf("deadline-exceeded result was cached: %+v", st)
	}
}

func TestSweepEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4})

	specs := []string{
		`{"values":[1,0.5],"k":2,"policy":{"name":"exclusive"},"tag":"a"}`,
		`{"values":[1,0.5],"k":2,"policy":{"name":"sharing"},"tag":"b"}`,
		`{"values":[1,0.5,0.25],"k":3,"policy":{"name":"twopoint","c2":0.25},"tag":"c"}`,
		// Same game as "a" up to seed/tag: must not solve again.
		`{"values":[1,0.5],"k":2,"policy":{"name":"exclusive"},"tag":"dup","seed":5}`,
	}
	body := `{"specs":[` + strings.Join(specs, ",") + `]}`
	resp, payload := postJSON(t, ts.URL+"/v1/sweep", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %s\n%s", resp.Status, payload)
	}
	var out sweepResponse
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatalf("decode sweep response: %v\n%s", err, payload)
	}
	if len(out.Results) != len(specs) {
		t.Fatalf("%d results for %d specs", len(out.Results), len(specs))
	}
	tags := map[string]sweepItemResponse{}
	for _, item := range out.Results {
		if item.Error != "" {
			t.Errorf("item %d (%s) failed: %s", item.Index, item.Tag, item.Error)
		}
		if item.Result == nil {
			t.Fatalf("item %d has no result", item.Index)
		}
		tags[item.Tag] = item
	}
	if tags["a"].Result.SPoA != tags["dup"].Result.SPoA {
		t.Error("duplicate spec disagrees with the original")
	}
	if tags["b"].Result.SPoA <= 1 {
		t.Errorf("sharing SPoA = %v, want > 1 on two unequal sites", tags["b"].Result.SPoA)
	}
	// 4 items, 3 distinct games.
	if n := s.Solves(); n != 3 {
		t.Errorf("sweep performed %d solves, want 3 (one per distinct game)", n)
	}

	// A follow-up analyze of a swept game is a pure cache hit.
	resp, payload = postJSON(t, ts.URL+"/v1/analyze", specs[1])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze after sweep: %s", resp.Status)
	}
	if got := decodeAnalyze(t, payload); !got.Cached {
		t.Error("analyze after sweep missed the cache shared with /v1/sweep")
	}
	if n := s.Solves(); n != 3 {
		t.Errorf("analyze after sweep re-solved: %d solves", n)
	}
}

func TestSweepRejectsBadBatches(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"not JSON", `specs`, http.StatusBadRequest},
		{"no specs", `{"specs":[]}`, http.StatusBadRequest},
		{"invalid item", `{"specs":[{"values":[1],"k":1,"policy":{"name":"exclusive"}},{"values":[1],"k":0,"policy":{"name":"exclusive"}}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, payload := postJSON(t, ts.URL+"/v1/sweep", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %s, want %d\n%s", tc.name, resp.Status, tc.status, payload)
		}
	}
}

func TestHealthzAndStatsz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, Timeout: time.Second})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %s", resp.Status)
	}

	// Warm the cache with one request, then read the counters back.
	postJSON(t, ts.URL+"/v1/analyze", exclusiveSpec)
	resp2, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	payload, _ := io.ReadAll(resp2.Body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("statsz: %s", resp2.Status)
	}
	var stats statsResponse
	if err := json.Unmarshal(payload, &stats); err != nil {
		t.Fatalf("statsz body: %v\n%s", err, payload)
	}
	if stats.Requests.Analyze != 1 || stats.Solves != 1 || stats.Cache.Entries != 1 {
		t.Errorf("statsz = %+v, want 1 analyze request, 1 solve, 1 entry", stats)
	}
	if stats.Workers != 2 || stats.TimeoutMS != 1000 {
		t.Errorf("statsz config echo = workers %d, timeout %v", stats.Workers, stats.TimeoutMS)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/analyze: %s, want 405", resp.Status)
	}
	resp2, err := http.Post(ts.URL+"/healthz", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz: %s, want 405", resp2.Status)
	}
}

// TestRepeatedRequestDoesNoSolverWork is the acceptance demonstration: the
// second identical request is answered entirely from cache.
func TestRepeatedRequestDoesNoSolverWork(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	spec := `{"values":[1,0.8,0.6,0.4,0.2],"k":4,"policy":{"name":"powerlaw","beta":2}}`

	postJSON(t, ts.URL+"/v1/analyze", spec)
	before := s.Solves()
	resp, payload := postJSON(t, ts.URL+"/v1/analyze", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat: %s", resp.Status)
	}
	if out := decodeAnalyze(t, payload); !out.Cached {
		t.Error("repeat request not served from cache")
	}
	if after := s.Solves(); after != before {
		t.Errorf("repeat request did solver work: %d -> %d solves", before, after)
	}
}
