package server

// The multi-tenant session harness: real HTTP streams against an in-process
// server, driven concurrently, with a fake clock behind the admission
// limiter where determinism needs one. Everything here runs under the
// package's leakcheck TestMain and is -race clean: the suite is the proof
// for the session layer's concurrency claims — fairness, coalescing
// byte-identity, slot release on disconnect, resumption, and typed
// admission refusals.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dispersal/internal/session"
)

// rawLine is one NDJSON line with the result kept as raw bytes, so tests
// can assert byte-identity of payloads across streams (re-marshaling would
// launder differences away).
type rawLine struct {
	Seq    int64           `json:"seq"`
	Frame  int             `json:"frame"`
	Result json.RawMessage `json:"result"`
	Error  string          `json:"error"`
	Kind   string          `json:"kind"`
	Done   bool            `json:"done"`
	Frames int             `json:"frames"`
}

// postStream POSTs a trajectory for the given client key and returns the
// response; the caller owns the body.
func postStream(url, body, client string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if client != "" {
		req.Header.Set("X-Client-Key", client)
	}
	return http.DefaultClient.Do(req)
}

// readLines drains an NDJSON body into parsed lines.
func readLines(body io.Reader) ([]rawLine, error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []rawLine
	for sc.Scan() {
		var ln rawLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			return nil, fmt.Errorf("bad line %q: %w", sc.Bytes(), err)
		}
		lines = append(lines, ln)
	}
	return lines, sc.Err()
}

// runStream posts a whole trajectory and returns its parsed lines.
func runStream(url, body, client string) ([]rawLine, int, error) {
	resp, err := postStream(url, body, client)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		payload, _ := io.ReadAll(resp.Body)
		return nil, resp.StatusCode, fmt.Errorf("status %d: %s", resp.StatusCode, payload)
	}
	lines, err := readLines(resp.Body)
	return lines, resp.StatusCode, err
}

// frameLines strips the final done line, asserting it exists.
func frameLines(t *testing.T, lines []rawLine) ([]rawLine, rawLine) {
	t.Helper()
	if len(lines) == 0 {
		t.Fatal("empty stream")
	}
	last := lines[len(lines)-1]
	if !last.Done {
		t.Fatalf("last line is not a done line: %+v", last)
	}
	return lines[:len(lines)-1], last
}

// TestSessionCoalescingByteIdentical is the coalescing correctness
// property: N identical concurrent streams must (a) produce frame result
// payloads byte-identical to each other AND to a lone stream on a fresh
// server, and (b) cost exactly one solve per unique frame, visible in both
// Solves() and the /statsz sessions.coalesced counter.
func TestSessionCoalescingByteIdentical(t *testing.T) {
	const streams, n = 4, 8
	body := trajectoryBody(8, 5, n, 0.02)

	// The reference: the same trajectory alone on its own server.
	_, lone := newTestServer(t, Config{})
	refLines, _, err := runStream(lone.URL+"/v1/trajectory", body, "ref")
	if err != nil {
		t.Fatal(err)
	}
	refFrames, _ := frameLines(t, refLines)

	s, ts := newTestServer(t, Config{})
	var wg sync.WaitGroup
	results := make([][]rawLine, streams)
	errs := make([]error, streams)
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lines, _, err := runStream(ts.URL+"/v1/trajectory", body, fmt.Sprintf("client%d", i))
			results[i], errs[i] = lines, err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
	}

	for i, lines := range results {
		frames, done := frameLines(t, lines)
		if len(frames) != n || done.Frames != n {
			t.Fatalf("stream %d delivered %d frames (done says %d), want %d", i, len(frames), done.Frames, n)
		}
		for f, fr := range frames {
			if fr.Frame != f || fr.Error != "" {
				t.Fatalf("stream %d line %d: %+v", i, f, fr)
			}
			if string(fr.Result) != string(refFrames[f].Result) {
				t.Errorf("stream %d frame %d result differs from the lone stream:\n%s\nvs\n%s",
					i, f, fr.Result, refFrames[f].Result)
			}
		}
	}

	// Exactly one solve per unique frame, however many streams asked.
	if got := s.Solves(); got != n {
		t.Fatalf("%d streams x %d frames cost %d solves, want exactly %d", streams, n, got, n)
	}
	// Every frame of every non-leader stream was coalesced.
	if got := s.sessionCoalesced.Load(); got != int64((streams-1)*n) {
		t.Fatalf("coalesced = %d, want %d", got, (streams-1)*n)
	}
	// And /statsz reports the same through the wire.
	sresp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	var stats struct {
		Sessions struct {
			Active    int   `json:"active"`
			Opened    int64 `json:"opened"`
			Coalesced int64 `json:"coalesced"`
			Rejected  int64 `json:"rejected"`
		} `json:"sessions"`
	}
	if err := json.Unmarshal(payload, &stats); err != nil {
		t.Fatalf("statsz: %v\n%s", err, payload)
	}
	if stats.Sessions.Active != 0 || stats.Sessions.Opened != int64(streams) ||
		stats.Sessions.Coalesced != int64((streams-1)*n) || stats.Sessions.Rejected != 0 {
		t.Fatalf("statsz sessions = %+v", stats.Sessions)
	}
}

// TestSessionFairnessOverHTTP runs one greedy stream and four short ones
// concurrently and requires each short stream to complete within a small
// number of greedy frames of its own admission — round-robin scheduling
// over live HTTP, not just over the scheduler in isolation (that property
// runs 100 seeds in internal/session). Progress is measured from each
// short's admission (its response headers arrive before its first solve),
// so client-side connection setup latency is not charged to the scheduler.
func TestSessionFairnessOverHTTP(t *testing.T) {
	const greedyFrames, shortFrames, shorts = 64, 8, 4
	const bound = 32
	_, ts := newTestServer(t, Config{Workers: 2})

	// Distinct player counts make every stream's frame keys distinct: no
	// cache or chain sharing, pure scheduling.
	greedyBody := trajectoryBody(6, 3, greedyFrames, 0.02)

	var greedySeen atomic.Int64
	greedyDone := make(chan error, 1)
	resp, err := postStream(ts.URL+"/v1/trajectory", greedyBody, "greedy")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	go func() {
		for sc.Scan() {
			greedySeen.Add(1)
		}
		greedyDone <- sc.Err()
	}()

	var wg sync.WaitGroup
	admittedAt := make([]int64, shorts)
	finishedAt := make([]int64, shorts)
	errs := make([]error, shorts)
	for i := 0; i < shorts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := trajectoryBody(6, 4+i, shortFrames, 0.02)
			resp, err := postStream(ts.URL+"/v1/trajectory", body, fmt.Sprintf("short%d", i))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			admittedAt[i] = greedySeen.Load()
			lines, err := readLines(resp.Body)
			finishedAt[i] = greedySeen.Load()
			if err != nil {
				errs[i] = err
				return
			}
			if len(lines) != shortFrames+1 || !lines[len(lines)-1].Done {
				errs[i] = fmt.Errorf("short stream %d delivered %d lines", i, len(lines))
			}
		}(i)
	}
	wg.Wait()
	if err := <-greedyDone; err != nil {
		t.Fatalf("greedy stream: %v", err)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("short stream %d: %v", i, err)
		}
		// greedySeen lags the server (client-side read), which can only
		// shrink the measured window, never inflate it past the bound by
		// scheduler fault: a short stream needs ~8 scheduling rounds, so
		// under round-robin the greedy stream advances ~8 frames meanwhile.
		if got := finishedAt[i] - admittedAt[i]; got >= bound {
			t.Errorf("greedy advanced %d frames while short stream %d ran, want < %d (starvation)",
				got, i, bound)
		}
	}
}

// parkedStream opens a stream, reads lines until seq wantSeq, disconnects,
// and waits for the server to park the session. It returns the session id
// and the lines read before the disconnect.
func parkedStream(t *testing.T, s *Server, url, body, client string, wantSeq int64) (string, []rawLine) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-Key", client)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	id := resp.Header.Get("X-Session-ID")
	if id == "" {
		t.Fatal("stream has no X-Session-ID header")
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var seen []rawLine
	for int64(len(seen)) < wantSeq && sc.Scan() {
		var ln rawLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			t.Fatalf("bad line %q: %v", sc.Bytes(), err)
		}
		seen = append(seen, ln)
	}
	cancel()
	waitParked(t, s, 1)
	return id, seen
}

// waitParked polls until the registry reports n parked sessions and no
// attached ones.
func waitParked(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := s.sessions.Stats()
		if st.Active == 0 && st.Parked == n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("session never parked: %+v", s.sessions.Stats())
}

// TestSessionDisconnectReleasesSlot is the failure-mode property: with a
// one-session registry, a mid-stream disconnect must release the slot (and
// any queued frames) so the next client gets in — while the parked stream
// stays resumable rather than lost.
func TestSessionDisconnectReleasesSlot(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxSessions: 1})
	// Big per-frame solves, so the stream is reliably still attached when
	// the concurrent open and the disconnect land.
	body := trajectoryBody(48, 64, 64, 0.01)

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/trajectory", strings.NewReader(body))
	req.Header.Set("X-Client-Key", "first")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no first line: %v", sc.Err())
	}

	// While the first stream is attached, the cap answers a typed 429.
	r2, err := postStream(ts.URL+"/v1/trajectory", trajectoryBody(6, 4, 4, 0.02), "second")
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("concurrent open at the cap: status %d: %s", r2.StatusCode, payload)
	}
	if r2.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	var apiErr apiError
	if err := json.Unmarshal(payload, &apiErr); err != nil || apiErr.Kind != "sessions" {
		t.Fatalf("429 body = %s, want kind \"sessions\"", payload)
	}

	cancel()
	waitParked(t, s, 1)

	// The disconnect released the only slot: a fresh stream now runs whole.
	lines, _, err := runStream(ts.URL+"/v1/trajectory", trajectoryBody(6, 4, 4, 0.02), "second")
	if err != nil {
		t.Fatalf("stream after disconnect: %v", err)
	}
	if frames, done := frameLines(t, lines); len(frames) != 4 || done.Frames != 4 {
		t.Fatalf("post-disconnect stream: %d frames, done %+v", len(frames), done)
	}
}

// TestSessionResumeReplaysAndCompletes disconnects a stream mid-flight and
// resumes it: the replayed lines plus the live remainder must reassemble
// into exactly the full trajectory, contiguous seqs and all, with the done
// totals covering both legs.
func TestSessionResumeReplaysAndCompletes(t *testing.T) {
	const n = 8
	s, ts := newTestServer(t, Config{})
	// Slow frames so the disconnect lands mid-stream, not after the end.
	body := trajectoryBody(48, 64, n, 0.01)
	id, seen := parkedStream(t, s, ts.URL+"/v1/trajectory", body, "alice", 1)

	// A foreign client must not be able to take over the stream.
	resp, err := postStream(ts.URL+fmt.Sprintf("/v1/trajectory?session=%s&resume=%d", id, seen[len(seen)-1].Seq), "", "mallory")
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("foreign resume: status %d: %s", resp.StatusCode, payload)
	}

	rest, _, err := runStream(ts.URL+fmt.Sprintf("/v1/trajectory?session=%s&resume=%d", id, seen[len(seen)-1].Seq), "", "alice")
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	all := append(append([]rawLine(nil), seen...), rest...)
	frames, done := frameLines(t, all)
	if len(frames) != n || done.Frames != n {
		t.Fatalf("reassembled stream has %d frames, done says %d, want %d", len(frames), done.Frames, n)
	}
	for i, fr := range frames {
		if fr.Seq != int64(i+1) {
			t.Fatalf("line %d has seq %d: replay left a gap or a duplicate", i, fr.Seq)
		}
		if fr.Frame != i || fr.Error != "" || len(fr.Result) == 0 {
			t.Fatalf("reassembled frame %d: %+v", i, fr)
		}
	}
	if done.Seq != int64(n+1) {
		t.Fatalf("done line seq %d, want %d", done.Seq, n+1)
	}
	if st := s.sessions.Stats(); st.Resumed != 1 || st.Active != 0 || st.Parked != 0 {
		t.Fatalf("registry after resume: %+v", st)
	}
}

// TestSessionResumeGone exercises the typed-410 contract: unknown ids,
// completed streams, tokens ahead of the stream, and parked sessions whose
// TTL expired on the fake clock.
func TestSessionResumeGone(t *testing.T) {
	clock := session.NewFakeClock(time.Unix(1000, 0))
	s, ts := newTestServer(t, Config{sessionClock: clock})

	expectGone := func(q string) {
		t.Helper()
		resp, err := postStream(ts.URL+"/v1/trajectory?"+q, "", "alice")
		if err != nil {
			t.Fatal(err)
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusGone {
			t.Fatalf("resume %q: status %d: %s", q, resp.StatusCode, payload)
		}
		var apiErr apiError
		if err := json.Unmarshal(payload, &apiErr); err != nil || apiErr.Kind != "gone" {
			t.Fatalf("resume %q body = %s, want kind \"gone\"", q, payload)
		}
	}

	expectGone("session=s999&resume=0")

	// A completed stream is gone, not parked.
	lines, _, err := runStream(ts.URL+"/v1/trajectory", trajectoryBody(6, 4, 3, 0.02), "alice")
	if err != nil {
		t.Fatal(err)
	}
	frameLines(t, lines)
	expectGone("session=s1&resume=3")

	// A parked stream with a token from the future.
	id, _ := parkedStream(t, s, ts.URL+"/v1/trajectory", trajectoryBody(48, 64, 16, 0.01), "alice", 1)
	expectGone(fmt.Sprintf("session=%s&resume=999", id))

	// And the same stream once its park TTL expires.
	clock.Advance(session.DefaultParkTTL + time.Second)
	expectGone(fmt.Sprintf("session=%s&resume=1", id))
	if st := s.sessions.Stats(); st.Parked != 0 {
		t.Fatalf("expired session still parked: %+v", st)
	}
}

// TestSessionRateLimit429AndRefill drains a client's frame budget, expects
// the typed 429 with a Retry-After header, refills deterministically on
// the fake clock, and watches admission recover.
func TestSessionRateLimit429AndRefill(t *testing.T) {
	clock := session.NewFakeClock(time.Unix(1000, 0))
	_, ts := newTestServer(t, Config{FrameBudget: 32, ClientRate: 16, sessionClock: clock})

	// 24 of the 32 budget frames.
	if _, _, err := runStream(ts.URL+"/v1/trajectory", trajectoryBody(6, 4, 24, 0.02), "rl"); err != nil {
		t.Fatal(err)
	}
	// 8 remain; another 24-frame stream must be refused with the wait.
	resp, err := postStream(ts.URL+"/v1/trajectory", trajectoryBody(6, 4, 24, 0.02), "rl")
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overdrawn stream: status %d: %s", resp.StatusCode, payload)
	}
	var apiErr apiError
	if err := json.Unmarshal(payload, &apiErr); err != nil || apiErr.Kind != "rate_limit" {
		t.Fatalf("429 body = %s, want kind \"rate_limit\"", payload)
	}
	// 16 missing tokens at 16/s: Retry-After must say 1 second.
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", ra)
	}
	// Another client is unaffected by rl's exhaustion.
	if _, _, err := runStream(ts.URL+"/v1/trajectory", trajectoryBody(6, 4, 24, 0.02), "other"); err != nil {
		t.Fatalf("independent client: %v", err)
	}
	// Advance exactly the advertised wait: the budget refills and the
	// refused stream now fits.
	clock.Advance(time.Second)
	if _, _, err := runStream(ts.URL+"/v1/trajectory", trajectoryBody(6, 4, 24, 0.02), "rl"); err != nil {
		t.Fatalf("stream after refill: %v", err)
	}
}

// TestSessionMalformedSpecBurnsNoBudget is the admission-ordering fix: a
// request that fails validation must consume nothing from the client's
// frame budget, because admission happens strictly after validation.
func TestSessionMalformedSpecBurnsNoBudget(t *testing.T) {
	// The fake clock freezes refill, so the balance comparison is exact.
	clock := session.NewFakeClock(time.Unix(1000, 0))
	s, ts := newTestServer(t, Config{FrameBudget: 32, ClientRate: 1, sessionClock: clock})

	// Establish a bucket below capacity so "unchanged" is distinguishable
	// from "fresh".
	if _, _, err := runStream(ts.URL+"/v1/trajectory", trajectoryBody(6, 4, 4, 0.02), "fix"); err != nil {
		t.Fatal(err)
	}
	before := s.sessions.Tokens("fix")
	if before != 28 {
		t.Fatalf("budget after a 4-frame stream = %v, want 28", before)
	}

	// Ascending values violate the spec's ordering convention: typed 400.
	bad := `{"spec": {"values": [1, 0.5], "k": 2, "policy": {"name": "sharing"}}, "frames": [[0.5, 1]]}`
	resp, err := postStream(ts.URL+"/v1/trajectory", bad, "fix")
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed stream: status %d: %s", resp.StatusCode, payload)
	}
	var apiErr apiError
	if err := json.Unmarshal(payload, &apiErr); err != nil || apiErr.Kind != "spec" {
		t.Fatalf("400 body = %s, want kind \"spec\"", payload)
	}
	if after := s.sessions.Tokens("fix"); after != before {
		t.Fatalf("rejected request changed the budget: %v -> %v", before, after)
	}
	if st := s.sessions.Stats(); st.Opened != 1 {
		t.Fatalf("rejected request opened a session: %+v", st)
	}
}
