package server

// POST /v1/trajectory: time-varying landscape solving over the warm-start
// path. A trajectory request names one base game spec and a sequence of
// landscape frames; the server evolves the game frame by frame
// (dispersal.Game.EvolveTo), so every equilibrium solve seeds from the
// previous frame's solution, and streams one NDJSON line per frame as it
// completes. Per-frame results are cached under frame-substituted spec keys
// (speccodec.FrameKey), and a cache hit re-seeds the warm chain from the
// cached equilibrium (Game.SeedWarm) so the frames after it stay warm.
//
// Streams are sessions (internal/session). A validated request is admitted
// against the client's frame budget (token bucket; refusals are typed 429s
// with Retry-After) and a global session cap; admitted streams solve their
// frames through a fair round-robin scheduler on a bounded slot pool, so a
// greedy 4096-frame stream delays a concurrent 8-frame stream by one frame
// per round instead of a whole trajectory. Identical concurrent streams
// coalesce: the first to announce its frame-key chain leads and solves,
// the rest follow its published results byte for byte (one solve per
// unique frame, fleet of clients or not). Every emitted line carries a
// monotonic sequence token and lands in a bounded replay window; a
// disconnected stream parks and can be resumed with
// ?session=<id>&resume=<seq>, replaying the missed lines — a token out of
// the window, or an expired session, answers a typed 410.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"time"

	"dispersal"
	"dispersal/internal/obs"
	"dispersal/internal/rescache"
	"dispersal/internal/session"
	"dispersal/internal/speccodec"
)

// trajectoryRequest is the /v1/trajectory body: a base game spec in the
// speccodec wire form plus the drifting landscapes to solve it over, in
// exactly one of two forms. "frames" carries absolute value vectors, each
// subject to the same conventions as a spec's values. "deltas" carries
// per-site increments applied server-side, Game.Evolve style: frame i is
// frame i-1 plus deltas[i] (starting from the spec's values), which keeps
// long fine-grained trajectories to one small vector per step on the wire.
type trajectoryRequest struct {
	Spec   json.RawMessage `json:"spec"`
	Frames [][]float64     `json:"frames"`
	Deltas [][]float64     `json:"deltas"`
}

// resolveFrames materializes the request's landscape sequence: the frames
// form is returned as-is, the deltas form is accumulated from the spec's
// base values. Every returned frame is validated, so stream-time evolution
// cannot fail on landscape shape — and validation happens strictly before
// session admission, so a malformed spec cannot consume a rate-limit
// token.
func resolveFrames(spec dispersal.Spec, req trajectoryRequest) ([][]float64, error) {
	if len(req.Frames) > 0 && len(req.Deltas) > 0 {
		return nil, errors.New("trajectory body has both frames and deltas; send exactly one")
	}
	if len(req.Frames) > 0 {
		for i, fr := range req.Frames {
			if err := dispersal.Values(fr).Validate(); err != nil {
				return nil, fmt.Errorf("frame %d: %w", i, err)
			}
		}
		return req.Frames, nil
	}
	frames := make([][]float64, len(req.Deltas))
	cur := append([]float64(nil), spec.Values...)
	for i, d := range req.Deltas {
		if len(d) != len(cur) {
			return nil, fmt.Errorf("delta %d has %d entries for %d sites", i, len(d), len(cur))
		}
		next := make([]float64, len(cur))
		for j := range cur {
			next[j] = cur[j] + d[j]
		}
		if err := dispersal.Values(next).Validate(); err != nil {
			return nil, fmt.Errorf("delta %d yields an invalid landscape: %w", i, err)
		}
		frames[i] = next
		cur = next
	}
	return frames, nil
}

// trajectoryFrame is one streamed NDJSON line of the response. Seq is the
// line's resume token (monotonic per session, starting at 1). Result is
// present on success; Error/Kind report the terminal failure of the stream
// (no further frames follow an error line).
type trajectoryFrame struct {
	Seq       int64     `json:"seq"`
	Frame     int       `json:"frame"`
	Cached    bool      `json:"cached"`
	Warm      bool      `json:"warm"`
	ElapsedMS float64   `json:"elapsed_ms"`
	Result    *Analysis `json:"result,omitempty"`
	Error     string    `json:"error,omitempty"`
	Kind      string    `json:"kind,omitempty"`
}

// trajectoryDone is the final NDJSON line: totals for the whole stream,
// disconnections and resumes included.
type trajectoryDone struct {
	Seq       int64   `json:"seq"`
	Done      bool    `json:"done"`
	Frames    int     `json:"frames"`
	Warmed    int     `json:"warmed"`
	Cached    int     `json:"cached"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// trajectoryState is the solving loop's working state — and, verbatim, the
// checkpoint a parked stream retains: the validated frames with their
// precomputed cache keys, the warm chain's current game, the next-frame
// cursor and the running totals. A resumed stream picks the loop up from
// here.
type trajectoryState struct {
	spec   dispersal.Spec
	frames [][]float64
	keys   []string
	cur    *dispersal.Game
	next   int
	done   trajectoryDone
	// resumed streams stay off the chain registry: their chain, if any,
	// was aborted at park, and the result cache already holds their past.
	resumed bool
}

// clientKey is the admission identity of a request: the X-Client-Key
// header when present (multi-tenant deployments put the tenant or API key
// there), else the remote host.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-Client-Key"); k != "" {
		return k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// writeAdmissionError maps session admission failures onto the wire:
// RetryError answers 429 with a Retry-After header, ErrGone answers 410.
func (s *Server) writeAdmissionError(w http.ResponseWriter, err error) {
	var re *session.RetryError
	if errors.As(err, &re) {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(re.After)))
		writeError(w, http.StatusTooManyRequests, re.Reason, err)
		return
	}
	if errors.Is(err, session.ErrGone) {
		writeError(w, http.StatusGone, "gone", err)
		return
	}
	writeError(w, http.StatusInternalServerError, "internal", err)
}

// retryAfterSeconds rounds a wait up to whole seconds, at least one — the
// Retry-After header has second granularity.
func retryAfterSeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) handleTrajectory(w http.ResponseWriter, r *http.Request) {
	s.trajectoryReqs.Add(1)
	if q := r.URL.Query(); q.Get("session") != "" || q.Get("resume") != "" {
		s.resumeTrajectory(w, r)
		return
	}
	endDecode := observeSpan(r.Context(), "decode", s.o.stageDecode)
	decoded := false
	endDecodeOnce := func() {
		if !decoded {
			decoded = true
			endDecode()
		}
	}
	defer endDecodeOnce()
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "request", err)
		return
	}
	var req trajectoryRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "syntax", fmt.Errorf("trajectory body: %w", err))
		return
	}
	if len(req.Spec) == 0 {
		writeError(w, http.StatusBadRequest, "request", errors.New("trajectory body has no spec"))
		return
	}
	spec, err := speccodec.Decode(req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, decodeKind(err), err)
		return
	}
	if len(req.Frames) == 0 && len(req.Deltas) == 0 {
		writeError(w, http.StatusBadRequest, "request", errors.New("trajectory body has no frames or deltas"))
		return
	}
	if n := max(len(req.Frames), len(req.Deltas)); n > maxTrajectoryFrames {
		writeError(w, http.StatusBadRequest, "request",
			fmt.Errorf("trajectory of %d frames exceeds the limit of %d", n, maxTrajectoryFrames))
		return
	}
	// Materialize and validate every frame (accumulating the deltas form)
	// before the first byte of the stream, so frame errors are ordinary
	// typed 400s rather than mid-stream failures.
	frames, err := resolveFrames(spec, req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "spec", err)
		return
	}
	base, err := dispersal.FromSpec(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "spec", err)
		return
	}
	keys := make([]string, len(frames))
	for i, fr := range frames {
		k, err := speccodec.FrameKey(spec, fr)
		if err != nil {
			writeError(w, http.StatusBadRequest, "spec", fmt.Errorf("frame %d: %w", i, err))
			return
		}
		keys[i] = k
	}
	endDecodeOnce()

	// Admission comes strictly after every validation above: a request the
	// server rejects must cost its client nothing.
	sess, err := s.sessions.Open(clientKey(r), len(frames))
	if err != nil {
		s.writeAdmissionError(w, err)
		return
	}
	st := &trajectoryState{
		spec:   spec,
		frames: frames,
		keys:   keys,
		cur:    base,
		done:   trajectoryDone{Done: true},
	}
	s.streamTrajectory(w, r, sess, st, nil)
}

// resumeTrajectory re-attaches a parked stream: ?session=<id>&resume=<seq>
// replays the recorded lines after seq and continues solving from the
// parked checkpoint. The body is ignored — the session already holds the
// validated request.
func (s *Server) resumeTrajectory(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	id, seqStr := q.Get("session"), q.Get("resume")
	if id == "" || seqStr == "" {
		writeError(w, http.StatusBadRequest, "request",
			errors.New("resuming needs both ?session=<id> and ?resume=<seq>"))
		return
	}
	after, err := strconv.ParseInt(seqStr, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "request", fmt.Errorf("resume token: %w", err))
		return
	}
	sess, replay, checkpoint, err := s.sessions.Resume(id, clientKey(r), after)
	if err != nil {
		s.writeAdmissionError(w, err)
		return
	}
	st, ok := checkpoint.(*trajectoryState)
	if !ok || st == nil {
		s.sessions.Close(sess)
		writeError(w, http.StatusInternalServerError, "internal",
			errors.New("session has no trajectory continuation"))
		return
	}
	st.resumed = true
	s.streamTrajectory(w, r, sess, st, replay)
}

// streamTrajectory runs the solving loop of one attached stream: replay
// first (on resume), then one scheduler-fair, chain-coalesced solve per
// remaining frame. It owns the session until it returns: a completed or
// terminally failed stream is Closed, a disconnected or deadline-expired
// one is Parked resumable.
func (s *Server) streamTrajectory(w http.ResponseWriter, r *http.Request, sess *session.Session, st *trajectoryState, replay []session.Line) {
	ctx, cancel := s.requestContext(r)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Session-ID", sess.ID)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Send the headers now: the client learns its session id at
		// admission, before the first frame has solved.
		flusher.Flush()
	}
	write := func(raw []byte) {
		endWrite := observeSpan(ctx, "write", s.o.stageWrite)
		_, _ = w.Write(raw)
		if flusher != nil {
			flusher.Flush()
		}
		endWrite()
	}
	for _, ln := range replay {
		write(ln.Raw)
	}
	// emit assigns the line's sequence token, records it in the replay
	// window and streams it out.
	emitFrame := func(fr trajectoryFrame) {
		fr.Seq = sess.NextSeq()
		raw, err := json.Marshal(fr)
		if err != nil {
			return
		}
		raw = append(raw, '\n')
		sess.Record(fr.Seq, raw, s.sessions.ReplayWindow())
		write(raw)
	}

	// Identical concurrent streams coalesce through the chain registry:
	// the leader solves and publishes, followers emit its exact results.
	// Resumed streams run the per-key path only.
	var chain *rescache.Chain[Analysis]
	var lead bool
	if !st.resumed {
		chain, lead = s.chains.Join(rescache.ChainSig(st.keys), len(st.keys))
	}
	if chain != nil {
		defer func() { chain.Leave(lead, st.next) }()
	}

	start := time.Now()
	parkedElapsed := st.done.ElapsedMS
	elapsed := func() float64 {
		return parkedElapsed + float64(time.Since(start))/float64(time.Millisecond)
	}
	// park detaches the stream resumable: slot released, window and
	// checkpoint kept. The deferred chain.Leave aborts followers from the
	// parked cursor so they fall back to solving.
	park := func() {
		st.done.ElapsedMS = elapsed()
		s.sessions.Park(sess, st)
	}
	finish := func() {
		st.done.Seq = sess.NextSeq()
		st.done.ElapsedMS = elapsed()
		raw, err := json.Marshal(st.done)
		if err == nil {
			raw = append(raw, '\n')
			sess.Record(st.done.Seq, raw, s.sessions.ReplayWindow())
			write(raw)
		}
		s.sessions.Close(sess)
	}

	for st.next < len(st.frames) {
		i := st.next
		fr := st.frames[i]
		frameStart := time.Now()
		next, err := st.cur.EvolveTo(dispersal.Values(fr))
		if err != nil { // pre-validated; unreachable in practice
			emitFrame(trajectoryFrame{Frame: i, Error: err.Error(), Kind: "spec"})
			finish()
			return
		}
		key := st.keys[i]
		lkey, lkeyErr := speccodec.FrameLocalityKey(st.spec, fr)

		var res Analysis
		var cached, frameWarm, seeded, followed bool
		if chain != nil && !lead {
			// Follower: the leader's published result, byte for byte. A
			// chain aborted at or before this frame falls through to the
			// per-key path. The wait is the follower's whole exposure to the
			// leader's pace, so it is spanned and histogrammed.
			endWait := observeSpan(ctx, "chain_wait", s.o.stageChainWait)
			v, ok, werr := chain.Wait(ctx, i)
			endWait()
			if werr != nil {
				park()
				return
			}
			if ok {
				res, cached, followed = v, true, true
			}
		}
		if !followed {
			if i == 0 && st.done.Frames == 0 && lkeyErr == nil {
				// The first frame has no chain to inherit from; a
				// warm-cache state near its landscape — local, else a
				// peer's — takes that role. Later frames seed from their
				// predecessor, which is always at least as close.
				if sd := s.seedLookup(ctx, lkey, dispersal.Values(fr)); sd != nil {
					next.SeedState(sd.state)
					seeded = true
				}
			}
			if v, ok := s.cache.Get(key); ok {
				// An already-cached frame needs no scheduler slot.
				res, cached = v, true
			} else {
				// The scheduler feeds the queue-wait histogram itself (wait
				// observer); the span records this stream's wall time in line.
				spWait := obs.TraceFrom(ctx).StartSpan("queue_wait")
				release, aerr := s.sessions.Scheduler().Acquire(ctx)
				spWait.End()
				if aerr != nil {
					park()
					return
				}
				var outcome rescache.Outcome
				var serr error
				res, outcome, serr = s.cache.DoOutcome(ctx, key, func() (Analysis, error) {
					r0, warm, err := s.solve(ctx, next.Analyze())
					frameWarm = warm
					return r0, err
				})
				release()
				if serr != nil {
					if errors.Is(serr, context.Canceled) {
						// The client hung up; park silently, resumable.
						park()
						return
					}
					if errors.Is(serr, context.DeadlineExceeded) {
						// Deadline, client still attached: report it and
						// park — the client may resume under a fresh one.
						emitFrame(trajectoryFrame{Frame: i, Error: serr.Error(), Kind: "timeout",
							ElapsedMS: float64(time.Since(frameStart)) / float64(time.Millisecond)})
						park()
						return
					}
					emitFrame(trajectoryFrame{Frame: i, Error: serr.Error(), Kind: "internal",
						ElapsedMS: float64(time.Since(frameStart)) / float64(time.Millisecond)})
					finish()
					return
				}
				cached = outcome != rescache.Computed
			}
			if lead {
				chain.Publish(i, res)
			}
		}

		warm := !cached && frameWarm
		if seeded && !cached {
			if warm {
				s.warmSeeded.Add(1)
			} else {
				s.warmFallback.Add(1)
			}
		}
		if cached {
			// Re-seed the warm chain from the shared equilibrium so the
			// frames after a coalesced or cached one still warm-start.
			next.SeedWarm(res.IFD, res.Nu)
			st.done.Cached++
			s.sessionCoalesced.Add(1)
		} else if warm {
			st.done.Warmed++
			s.trajectoryWarmed.Add(1)
		}
		if lkeyErr == nil {
			// Every frame's state goes to the warm cache: a later isolated
			// analyze near any point of this drift path starts warm.
			s.warm.Store(lkey, next.StateSnapshot())
		}
		s.trajectoryFrames.Add(1)
		st.done.Frames++
		resCopy := res
		emitFrame(trajectoryFrame{
			Frame:     i,
			Cached:    cached,
			Warm:      warm,
			ElapsedMS: float64(time.Since(frameStart)) / float64(time.Millisecond),
			Result:    &resCopy,
		})
		s.o.frame.Observe(time.Since(frameStart))
		st.cur = next
		st.next++
	}
	finish()
	s.log.Info("trajectory", "rid", obs.RequestID(ctx), "session", sess.ID,
		"frames", st.done.Frames, "warmed", st.done.Warmed, "cached", st.done.Cached,
		"elapsed", time.Since(start).Round(time.Microsecond))
}
