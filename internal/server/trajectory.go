package server

// POST /v1/trajectory: time-varying landscape solving over the warm-start
// path. A trajectory request names one base game spec and a sequence of
// landscape frames; the server evolves the game frame by frame
// (dispersal.Game.EvolveTo), so every equilibrium solve seeds from the
// previous frame's solution, and streams one NDJSON line per frame as it
// completes. Per-frame results are cached under frame-substituted spec keys
// (speccodec.FrameKey), and a cache hit re-seeds the warm chain from the
// cached equilibrium (Game.SeedWarm) so the frames after it stay warm.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"dispersal"
	"dispersal/internal/speccodec"
)

// trajectoryRequest is the /v1/trajectory body: a base game spec in the
// speccodec wire form plus the drifting landscapes to solve it over, in
// exactly one of two forms. "frames" carries absolute value vectors, each
// subject to the same conventions as a spec's values. "deltas" carries
// per-site increments applied server-side, Game.Evolve style: frame i is
// frame i-1 plus deltas[i] (starting from the spec's values), which keeps
// long fine-grained trajectories to one small vector per step on the wire.
type trajectoryRequest struct {
	Spec   json.RawMessage `json:"spec"`
	Frames [][]float64     `json:"frames"`
	Deltas [][]float64     `json:"deltas"`
}

// resolveFrames materializes the request's landscape sequence: the frames
// form is returned as-is, the deltas form is accumulated from the spec's
// base values. Every returned frame is validated, so stream-time evolution
// cannot fail on landscape shape.
func resolveFrames(spec dispersal.Spec, req trajectoryRequest) ([][]float64, error) {
	if len(req.Frames) > 0 && len(req.Deltas) > 0 {
		return nil, errors.New("trajectory body has both frames and deltas; send exactly one")
	}
	if len(req.Frames) > 0 {
		for i, fr := range req.Frames {
			if err := dispersal.Values(fr).Validate(); err != nil {
				return nil, fmt.Errorf("frame %d: %w", i, err)
			}
		}
		return req.Frames, nil
	}
	frames := make([][]float64, len(req.Deltas))
	cur := append([]float64(nil), spec.Values...)
	for i, d := range req.Deltas {
		if len(d) != len(cur) {
			return nil, fmt.Errorf("delta %d has %d entries for %d sites", i, len(d), len(cur))
		}
		next := make([]float64, len(cur))
		for j := range cur {
			next[j] = cur[j] + d[j]
		}
		if err := dispersal.Values(next).Validate(); err != nil {
			return nil, fmt.Errorf("delta %d yields an invalid landscape: %w", i, err)
		}
		frames[i] = next
		cur = next
	}
	return frames, nil
}

// trajectoryFrame is one streamed NDJSON line of the response. Result is
// present on success; Error/Kind report the terminal failure of the stream
// (no further frames follow an error line).
type trajectoryFrame struct {
	Frame     int       `json:"frame"`
	Cached    bool      `json:"cached"`
	Warm      bool      `json:"warm"`
	ElapsedMS float64   `json:"elapsed_ms"`
	Result    *Analysis `json:"result,omitempty"`
	Error     string    `json:"error,omitempty"`
	Kind      string    `json:"kind,omitempty"`
}

// trajectoryDone is the final NDJSON line: totals for the whole stream.
type trajectoryDone struct {
	Done      bool    `json:"done"`
	Frames    int     `json:"frames"`
	Warmed    int     `json:"warmed"`
	Cached    int     `json:"cached"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

func (s *Server) handleTrajectory(w http.ResponseWriter, r *http.Request) {
	s.trajectoryReqs.Add(1)
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "request", err)
		return
	}
	var req trajectoryRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "syntax", fmt.Errorf("trajectory body: %w", err))
		return
	}
	if len(req.Spec) == 0 {
		writeError(w, http.StatusBadRequest, "request", errors.New("trajectory body has no spec"))
		return
	}
	spec, err := speccodec.Decode(req.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, decodeKind(err), err)
		return
	}
	if len(req.Frames) == 0 && len(req.Deltas) == 0 {
		writeError(w, http.StatusBadRequest, "request", errors.New("trajectory body has no frames or deltas"))
		return
	}
	if n := max(len(req.Frames), len(req.Deltas)); n > maxTrajectoryFrames {
		writeError(w, http.StatusBadRequest, "request",
			fmt.Errorf("trajectory of %d frames exceeds the limit of %d", n, maxTrajectoryFrames))
		return
	}
	// Materialize and validate every frame (accumulating the deltas form)
	// before the first byte of the stream, so frame errors are ordinary
	// typed 400s rather than mid-stream failures.
	frames, err := resolveFrames(spec, req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "spec", err)
		return
	}
	base, err := dispersal.FromSpec(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "spec", err)
		return
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(v any) {
		_ = enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}

	start := time.Now()
	cur := base
	done := trajectoryDone{Done: true}
	for i, fr := range frames {
		frameStart := time.Now()
		next, err := cur.EvolveTo(dispersal.Values(fr))
		if err != nil { // pre-validated; unreachable in practice
			emit(trajectoryFrame{Frame: i, Error: err.Error(), Kind: "spec"})
			break
		}
		key, err := speccodec.FrameKey(spec, fr)
		if err != nil {
			emit(trajectoryFrame{Frame: i, Error: err.Error(), Kind: "internal"})
			break
		}
		lkey, lkeyErr := speccodec.FrameLocalityKey(spec, fr)
		seeded := false
		if i == 0 && lkeyErr == nil {
			// The first frame has no chain to inherit from; a warm-cache
			// state near its landscape — local, else a peer's — takes that
			// role. Later frames seed from their predecessor, which is
			// always at least as close.
			if st := s.seedLookup(ctx, lkey, dispersal.Values(fr)); st != nil {
				next.SeedState(st.state)
				seeded = true
			}
		}
		var frameWarm bool
		res, cached, err := s.cache.Do(ctx, key, func() (Analysis, error) {
			r, warm, err := s.solve(ctx, next.Analyze())
			frameWarm = warm
			return r, err
		})
		if err != nil {
			kind := "internal"
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				kind = "timeout"
			}
			emit(trajectoryFrame{Frame: i, Error: err.Error(), Kind: kind,
				ElapsedMS: float64(time.Since(frameStart)) / float64(time.Millisecond)})
			break
		}
		warm := !cached && frameWarm
		if seeded && !cached {
			if warm {
				s.warmSeeded.Add(1)
			} else {
				s.warmFallback.Add(1)
			}
		}
		if cached {
			// Re-seed the warm chain from the cached equilibrium so the
			// frames after a cache hit still warm-start.
			next.SeedWarm(res.IFD, res.Nu)
			done.Cached++
		} else if warm {
			done.Warmed++
			s.trajectoryWarmed.Add(1)
		}
		if lkeyErr == nil {
			// Every frame's state goes to the warm cache: a later isolated
			// analyze near any point of this drift path starts warm.
			s.warm.Store(lkey, next.StateSnapshot())
		}
		s.trajectoryFrames.Add(1)
		done.Frames++
		resCopy := res
		emit(trajectoryFrame{
			Frame:     i,
			Cached:    cached,
			Warm:      warm,
			ElapsedMS: float64(time.Since(frameStart)) / float64(time.Millisecond),
			Result:    &resCopy,
		})
		cur = next
	}
	done.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	emit(done)
	s.cfg.Logf("trajectory of %d frames (%d warmed, %d cached) in %s",
		done.Frames, done.Warmed, done.Cached, time.Since(start).Round(time.Microsecond))
}
