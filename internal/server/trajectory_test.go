package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"dispersal/internal/site"
)

// trajectoryBody builds a /v1/trajectory request: a sharing-policy base game
// and n frames of the standard drift model (site.Drifted over a geometric
// base).
func trajectoryBody(m, k, n int, amp float64) string {
	base := site.Geometric(m, 1, 0.85)
	frames := make([][]float64, n)
	for t := range frames {
		frames[t] = site.Drifted(base, t, amp)
	}
	req := map[string]any{
		"spec": map[string]any{
			"values": base,
			"k":      k,
			"policy": map[string]any{"name": "sharing"},
		},
		"frames": frames,
	}
	b, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// decodeTrajectory splits an NDJSON trajectory response into frame lines
// and the final done line.
func decodeTrajectory(t *testing.T, payload []byte) ([]trajectoryFrame, trajectoryDone) {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(string(payload)), "\n")
	if len(lines) == 0 {
		t.Fatal("empty trajectory response")
	}
	var done trajectoryDone
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &done); err != nil || !done.Done {
		t.Fatalf("last line is not a done line: %q (err %v)", lines[len(lines)-1], err)
	}
	frames := make([]trajectoryFrame, 0, len(lines)-1)
	for _, ln := range lines[:len(lines)-1] {
		var fr trajectoryFrame
		if err := json.Unmarshal([]byte(ln), &fr); err != nil {
			t.Fatalf("bad frame line %q: %v", ln, err)
		}
		frames = append(frames, fr)
	}
	return frames, done
}

// TestTrajectoryFrameOrderingAndWarmth checks the streamed lines arrive in
// frame order, every frame carries a result, and the warm-start path
// actually engages after the first frame.
func TestTrajectoryFrameOrderingAndWarmth(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const n = 12
	resp, payload := postJSON(t, ts.URL+"/v1/trajectory", trajectoryBody(8, 5, n, 0.02))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, payload)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	frames, done := decodeTrajectory(t, payload)
	if len(frames) != n || done.Frames != n {
		t.Fatalf("got %d frame lines, done reports %d, want %d", len(frames), done.Frames, n)
	}
	warmed := 0
	for i, fr := range frames {
		if fr.Frame != i {
			t.Fatalf("frame line %d reports index %d: stream out of order", i, fr.Frame)
		}
		if fr.Error != "" || fr.Result == nil {
			t.Fatalf("frame %d failed: %s", i, fr.Error)
		}
		if fr.Result.M != 8 || fr.Result.K != 5 {
			t.Fatalf("frame %d result for wrong game: m=%d k=%d", i, fr.Result.M, fr.Result.K)
		}
		if fr.Warm {
			warmed++
		}
	}
	if frames[0].Warm {
		t.Fatal("frame 0 has no previous solution and cannot be warm")
	}
	if warmed < n-2 {
		t.Fatalf("only %d/%d frames warm-started", warmed, n)
	}
	if done.Warmed != warmed {
		t.Fatalf("done line counts %d warmed, stream shows %d", done.Warmed, warmed)
	}
}

// TestTrajectoryPerFrameCaching re-runs an identical trajectory and expects
// every frame served from cache with zero new solver work; a third request
// shifted by one frame must reuse the overlap.
func TestTrajectoryPerFrameCaching(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	const n = 6
	body := trajectoryBody(6, 4, n, 0.02)

	_, payload := postJSON(t, ts.URL+"/v1/trajectory", body)
	frames, _ := decodeTrajectory(t, payload)
	for i, fr := range frames {
		if fr.Cached {
			t.Fatalf("first pass frame %d claims cached", i)
		}
	}
	solvesAfterCold := s.Solves()

	_, payload = postJSON(t, ts.URL+"/v1/trajectory", body)
	frames, done := decodeTrajectory(t, payload)
	if done.Cached != n {
		t.Fatalf("warm pass cached %d/%d frames", done.Cached, n)
	}
	for i, fr := range frames {
		if !fr.Cached || fr.Result == nil {
			t.Fatalf("second pass frame %d missed the cache", i)
		}
	}
	if s.Solves() != solvesAfterCold {
		t.Fatalf("cached trajectory did solver work: %d -> %d", solvesAfterCold, s.Solves())
	}
}

// TestTrajectorySharesCacheWithAnalyze proves the frame keyspace is the
// analyze keyspace: an analyze request for the same landscape pre-fills the
// trajectory's first frame.
func TestTrajectorySharesCacheWithAnalyze(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := trajectoryBody(6, 4, 3, 0.02)
	var req struct {
		Spec   json.RawMessage `json:"spec"`
		Frames [][]float64     `json:"frames"`
	}
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	frame0, _ := json.Marshal(req.Frames[0])
	analyzeBody := fmt.Sprintf(`{"values":%s,"k":4,"policy":{"name":"sharing"}}`, frame0)
	if resp, payload := postJSON(t, ts.URL+"/v1/analyze", analyzeBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d %s", resp.StatusCode, payload)
	}

	_, payload := postJSON(t, ts.URL+"/v1/trajectory", body)
	frames, _ := decodeTrajectory(t, payload)
	if !frames[0].Cached {
		t.Fatal("frame 0 should be served from the analyze request's cache entry")
	}
	// The cache hit must re-seed the chain: frame 1 still warm-starts.
	if !frames[1].Warm {
		t.Fatal("frame 1 should warm-start from the rehydrated cached equilibrium")
	}
}

// TestTrajectoryRejectsBadRequests exercises the typed 400 contract before
// any streaming starts.
func TestTrajectoryRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body, kind string
	}{
		{"syntax", `{"spec": nope`, "syntax"},
		{"no spec", `{"frames": [[1, 0.5]]}`, "request"},
		{"bad spec", `{"spec": {"values": [1], "k": 0, "policy": {"name": "sharing"}}, "frames": [[1]]}`, "spec"},
		{"bad policy", `{"spec": {"values": [1], "k": 2, "policy": {"name": "nope"}}, "frames": [[1]]}`, "policy"},
		{"no frames", `{"spec": {"values": [1, 0.5], "k": 2, "policy": {"name": "sharing"}}, "frames": []}`, "request"},
		{"bad frame", `{"spec": {"values": [1, 0.5], "k": 2, "policy": {"name": "sharing"}}, "frames": [[0.5, 1]]}`, "spec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, payload := postJSON(t, ts.URL+"/v1/trajectory", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d: %s", resp.StatusCode, payload)
			}
			var apiErr apiError
			if err := json.Unmarshal(payload, &apiErr); err != nil {
				t.Fatalf("decode error body: %v", err)
			}
			if apiErr.Kind != tc.kind {
				t.Fatalf("kind %q, want %q (%s)", apiErr.Kind, tc.kind, payload)
			}
		})
	}
}

// TestTrajectoryMidStreamCancellation disconnects the client after the
// first streamed frame and verifies the server abandons the remaining
// frames instead of solving the whole trajectory for nobody.
func TestTrajectoryMidStreamCancellation(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// Big enough per-frame solves that cancellation lands mid-stream.
	const n = 64
	body := trajectoryBody(48, 64, n, 0.01)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/trajectory", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Read exactly one frame line off the live stream, then hang up.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no first frame line: %v", sc.Err())
	}
	var first trajectoryFrame
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("bad first line %q: %v", sc.Bytes(), err)
	}
	if first.Frame != 0 || first.Error != "" {
		t.Fatalf("unexpected first line: %+v", first)
	}
	cancel()

	// The handler must stop solving: the frame counter has to settle well
	// short of the full trajectory.
	deadline := time.Now().Add(10 * time.Second)
	var settled, last int64 = -1, -1
	for time.Now().Before(deadline) {
		cur := s.trajectoryFrames.Load()
		if cur == last {
			settled = cur
			break
		}
		last = cur
		time.Sleep(200 * time.Millisecond)
	}
	if settled < 0 {
		t.Fatal("trajectory frame counter never settled after cancellation")
	}
	if settled >= n {
		t.Fatalf("server completed all %d frames after client disconnect", n)
	}
}
