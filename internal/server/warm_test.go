package server

// Tests of the cross-request warm-state threading: the locality-keyed warm
// cache behind /v1/analyze and /v1/trajectory, its /statsz counters, and
// the trajectory deltas request form.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"testing"
	"time"

	"dispersal/internal/site"
)

// specJSON renders a sharing-policy spec over the given values.
func specJSON(values []float64, k int, policy string) string {
	b, err := json.Marshal(map[string]any{
		"values": values,
		"k":      k,
		"policy": map[string]any{"name": policy},
	})
	if err != nil {
		panic(err)
	}
	return string(b)
}

// perturb scales every value by (1 + eps): enough to change the exact
// cache key, small enough to stay in the same locality buckets for the
// mid-bucket landscapes the tests choose.
func perturb(values []float64, eps float64) []float64 {
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = v * (1 + eps)
	}
	return out
}

func getStats(t *testing.T, url string) statsResponse {
	t.Helper()
	resp, err := http.Get(url + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	var stats statsResponse
	if err := json.Unmarshal(payload, &stats); err != nil {
		t.Fatalf("statsz body: %v\n%s", err, payload)
	}
	return stats
}

// TestAnalyzeWarmCacheHitsOnNearIdenticalLandscapes: two isolated analyze
// requests on near-identical (but not identical) landscapes miss the exact
// result cache yet share warm state — the second solve is seeded from the
// first's, the /statsz warm-cache counters say so, and the answers agree to
// solver tolerance.
func TestAnalyzeWarmCacheHitsOnNearIdenticalLandscapes(t *testing.T) {
	_, ts := newTestServer(t, Config{Timeout: 30 * time.Second})
	base := site.Geometric(8, 1, 0.85)
	k := 6

	resp1, payload1 := postJSON(t, ts.URL+"/v1/analyze", specJSON(base, k, "sharing"))
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first analyze: %s\n%s", resp1.Status, payload1)
	}
	first := decodeAnalyze(t, payload1)

	resp2, payload2 := postJSON(t, ts.URL+"/v1/analyze", specJSON(perturb(base, 1e-4), k, "sharing"))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second analyze: %s\n%s", resp2.Status, payload2)
	}
	second := decodeAnalyze(t, payload2)
	if second.Cached {
		t.Fatal("perturbed landscape answered from the exact cache; the test exercised nothing")
	}

	stats := getStats(t, ts.URL)
	if stats.WarmCache.Hits < 1 {
		t.Errorf("warm cache hits = %d, want >= 1", stats.WarmCache.Hits)
	}
	if stats.WarmCache.Seeded < 1 {
		t.Errorf("warm-seeded solves = %d, want >= 1", stats.WarmCache.Seeded)
	}
	if stats.WarmCache.Stores < 2 {
		t.Errorf("warm cache stores = %d, want >= 2", stats.WarmCache.Stores)
	}
	if stats.Solves != 2 {
		t.Errorf("solves = %d, want 2 (both requests must still solve)", stats.Solves)
	}

	// A 1e-4 landscape change moves the answers by O(1e-4) at most; the
	// warm seeding must not have moved them further.
	if d := math.Abs(first.Result.Nu - second.Result.Nu); d > 1e-2*(1+math.Abs(first.Result.Nu)) {
		t.Errorf("nu moved implausibly far under perturbation: %v vs %v", first.Result.Nu, second.Result.Nu)
	}
	if d := math.Abs(first.Result.SPoA - second.Result.SPoA); d > 1e-2*(1+first.Result.SPoA) {
		t.Errorf("SPoA moved implausibly far: %v vs %v", first.Result.SPoA, second.Result.SPoA)
	}
}

// TestAnalyzeWarmFallbackCountsColdSolves: the constant policy is
// degenerate — its equilibrium answers in closed form and the warm path
// never engages — so a warm-cache seed is found but cannot pay off, and the
// server must count the fallback rather than the seed.
func TestAnalyzeWarmFallbackCountsColdSolves(t *testing.T) {
	_, ts := newTestServer(t, Config{Timeout: 30 * time.Second})
	base := site.Geometric(6, 1, 0.85)
	postJSON(t, ts.URL+"/v1/analyze", specJSON(base, 4, "constant"))
	resp, payload := postJSON(t, ts.URL+"/v1/analyze", specJSON(perturb(base, 1e-4), 4, "constant"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second analyze: %s\n%s", resp.Status, payload)
	}
	stats := getStats(t, ts.URL)
	if stats.WarmCache.Hits < 1 {
		t.Errorf("warm cache hits = %d, want >= 1", stats.WarmCache.Hits)
	}
	if stats.WarmCache.Fallback < 1 {
		t.Errorf("warm fallbacks = %d, want >= 1 (constant policy cannot warm)", stats.WarmCache.Fallback)
	}
	if stats.WarmCache.Seeded != 0 {
		t.Errorf("warm-seeded solves = %d, want 0", stats.WarmCache.Seeded)
	}
}

// TestTrajectorySeedsAnalyzeAcrossRequests: a trajectory populates the warm
// cache along its drift path, and a later isolated analyze near one of its
// frames starts warm.
func TestTrajectorySeedsAnalyzeAcrossRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Timeout: 30 * time.Second})
	resp, payload := postJSON(t, ts.URL+"/v1/trajectory", trajectoryBody(8, 6, 6, 0.001))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trajectory: %s\n%s", resp.Status, payload)
	}
	base := site.Geometric(8, 1, 0.85) // trajectoryBody's base landscape
	resp2, payload2 := postJSON(t, ts.URL+"/v1/analyze", specJSON(perturb(base, 1e-4), 6, "sharing"))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %s\n%s", resp2.Status, payload2)
	}
	if decodeAnalyze(t, payload2).Cached {
		t.Fatal("perturbed analyze answered from the exact cache; the test exercised nothing")
	}
	stats := getStats(t, ts.URL)
	if stats.WarmCache.Seeded < 1 {
		t.Errorf("analyze near a trajectory frame did not warm-start (seeded = %d)", stats.WarmCache.Seeded)
	}
}

// deltasBody builds the deltas form of trajectoryBody's drift sequence.
func deltasBody(m, k, n int, amp float64) string {
	base := site.Geometric(m, 1, 0.85)
	prev := append([]float64(nil), base...)
	deltas := make([][]float64, n)
	for step := range deltas {
		frame := site.Drifted(base, step, amp)
		d := make([]float64, m)
		for i := range d {
			d[i] = frame[i] - prev[i]
		}
		deltas[step] = d
		prev = frame
	}
	req := map[string]any{
		"spec": map[string]any{
			"values": base,
			"k":      k,
			"policy": map[string]any{"name": "sharing"},
		},
		"deltas": deltas,
	}
	b, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// TestTrajectoryDeltasFormMatchesFrames: the deltas form must stream the
// same per-frame analyses as the equivalent absolute-frames request (to
// accumulation rounding and solver tolerance) and stay warm.
func TestTrajectoryDeltasFormMatchesFrames(t *testing.T) {
	const (
		m, k, n = 8, 5, 6
		amp     = 0.01
	)
	_, tsFrames := newTestServer(t, Config{Timeout: 30 * time.Second})
	_, tsDeltas := newTestServer(t, Config{Timeout: 30 * time.Second})

	respF, payloadF := postJSON(t, tsFrames.URL+"/v1/trajectory", trajectoryBody(m, k, n, amp))
	if respF.StatusCode != http.StatusOK {
		t.Fatalf("frames form: %s\n%s", respF.Status, payloadF)
	}
	framesOut, doneF := decodeTrajectory(t, payloadF)

	respD, payloadD := postJSON(t, tsDeltas.URL+"/v1/trajectory", deltasBody(m, k, n, amp))
	if respD.StatusCode != http.StatusOK {
		t.Fatalf("deltas form: %s\n%s", respD.Status, payloadD)
	}
	deltasOut, doneD := decodeTrajectory(t, payloadD)

	if doneF.Frames != n || doneD.Frames != n {
		t.Fatalf("frame counts: frames form %d, deltas form %d, want %d", doneF.Frames, doneD.Frames, n)
	}
	if doneD.Warmed < n-2 {
		t.Errorf("deltas form warmed only %d/%d frames", doneD.Warmed, n)
	}
	for i := range framesOut {
		rf, rd := framesOut[i].Result, deltasOut[i].Result
		if rf == nil || rd == nil {
			t.Fatalf("frame %d missing a result", i)
		}
		if d := math.Abs(rf.Nu-rd.Nu) / (1 + math.Abs(rf.Nu)); d > 1e-6 {
			t.Errorf("frame %d: nu differs by %g between forms", i, d)
		}
		if d := math.Abs(rf.SPoA-rd.SPoA) / (1 + rf.SPoA); d > 1e-6 {
			t.Errorf("frame %d: SPoA differs by %g between forms", i, d)
		}
	}
}

// TestTrajectoryDeltasValidation: malformed deltas requests answer typed
// 400s before the stream starts.
func TestTrajectoryDeltasValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Timeout: 30 * time.Second})
	spec := `{"values":[1,0.5],"k":2,"policy":{"name":"sharing"}}`
	for name, tc := range map[string]struct {
		body string
		kind string
	}{
		"both forms": {
			body: fmt.Sprintf(`{"spec":%s,"frames":[[1,0.5]],"deltas":[[0,0]]}`, spec),
			kind: "spec",
		},
		"neither form": {
			body: fmt.Sprintf(`{"spec":%s}`, spec),
			kind: "request",
		},
		"wrong delta length": {
			body: fmt.Sprintf(`{"spec":%s,"deltas":[[0.1]]}`, spec),
			kind: "spec",
		},
		"delta breaks positivity": {
			body: fmt.Sprintf(`{"spec":%s,"deltas":[[0,-0.6]]}`, spec),
			kind: "spec",
		},
		"delta breaks ordering": {
			body: fmt.Sprintf(`{"spec":%s,"deltas":[[0,0.7]]}`, spec),
			kind: "spec",
		},
	} {
		resp, payload := postJSON(t, ts.URL+"/v1/trajectory", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s, want 400\n%s", name, resp.Status, payload)
			continue
		}
		var apiErr apiError
		if err := json.Unmarshal(payload, &apiErr); err != nil {
			t.Errorf("%s: non-JSON error body %s", name, payload)
			continue
		}
		if apiErr.Kind != tc.kind {
			t.Errorf("%s: kind %q, want %q (%s)", name, apiErr.Kind, tc.kind, apiErr.Error)
		}
	}
}
