package session

import (
	"sync"
	"time"
)

// maxClients bounds the limiter's bucket map. Beyond it, buckets that have
// refilled back to capacity are swept on the next admission — a full bucket
// is indistinguishable from a fresh one, so dropping it loses nothing.
const maxClients = 65536

// bucket is one client's token balance. Tokens are frames: admitting an
// n-frame stream withdraws n at once, so a client's burst is bounded by the
// bucket capacity (the frame budget) and its sustained throughput by the
// refill rate.
type bucket struct {
	tokens float64
	last   time.Time
}

// refill credits the time elapsed since the last touch at rate tokens per
// second, saturating at capacity.
func (b *bucket) refill(now time.Time, capacity, rate float64) {
	dt := now.Sub(b.last).Seconds()
	if dt <= 0 {
		return
	}
	b.tokens += dt * rate
	if b.tokens > capacity {
		b.tokens = capacity
	}
	b.last = now
}

// Limiter is the per-client admission gate: a keyed set of token buckets,
// the checkRateLimit(key, limit, window) idiom with fractional refill. A
// fresh client starts with a full bucket of capacity tokens (its frame
// budget) refilling at rate tokens per second.
type Limiter struct {
	clock    Clock
	capacity float64
	rate     float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

// NewLimiter builds a limiter handing each client capacity burst tokens
// refilled at rate per second. clock == nil selects the wall clock.
func NewLimiter(capacity int, rate float64, clock Clock) *Limiter {
	if clock == nil {
		clock = RealClock()
	}
	return &Limiter{
		clock:    clock,
		capacity: float64(capacity),
		rate:     rate,
		buckets:  make(map[string]*bucket),
	}
}

// Take withdraws n tokens from client's bucket. On success the second
// result is zero; on refusal it is how long the client must wait for n
// tokens to accrue (the Retry-After answer). A request larger than the
// bucket capacity is refused with the wait computed the same way — the
// budget caps a single stream's size by design.
func (l *Limiter) Take(client string, n int) (bool, time.Duration) {
	now := l.clock.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[client]
	if b == nil {
		if len(l.buckets) >= maxClients {
			l.sweepLocked(now)
		}
		b = &bucket{tokens: l.capacity, last: now}
		l.buckets[client] = b
	}
	b.refill(now, l.capacity, l.rate)
	need := float64(n)
	if need <= b.tokens {
		b.tokens -= need
		return true, 0
	}
	wait := time.Duration((need - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// Tokens reports client's current balance after refill — the introspection
// hook the admission tests assert budgets on. A client with no bucket yet
// reports the full capacity.
func (l *Limiter) Tokens(client string) float64 {
	now := l.clock.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[client]
	if b == nil {
		return l.capacity
	}
	b.refill(now, l.capacity, l.rate)
	return b.tokens
}

// sweepLocked drops every bucket that has refilled to capacity; the caller
// holds l.mu. Run only when the map is at its bound, so a scan is rare.
func (l *Limiter) sweepLocked(now time.Time) {
	for key, b := range l.buckets {
		b.refill(now, l.capacity, l.rate)
		if b.tokens >= l.capacity {
			delete(l.buckets, key)
		}
	}
}
