package session

import (
	"testing"
	"time"
)

func TestLimiterFreshClientHasFullBudget(t *testing.T) {
	clock := NewFakeClock(time.Unix(1000, 0))
	l := NewLimiter(100, 10, clock)
	if got := l.Tokens("a"); got != 100 {
		t.Fatalf("fresh client has %v tokens, want 100", got)
	}
	if ok, _ := l.Take("a", 100); !ok {
		t.Fatal("taking the whole fresh budget refused")
	}
	if got := l.Tokens("a"); got != 0 {
		t.Fatalf("after draining, %v tokens remain, want 0", got)
	}
}

func TestLimiterRefusalReportsWait(t *testing.T) {
	clock := NewFakeClock(time.Unix(1000, 0))
	l := NewLimiter(100, 10, clock)
	if ok, _ := l.Take("a", 100); !ok {
		t.Fatal("initial take refused")
	}
	ok, wait := l.Take("a", 50)
	if ok {
		t.Fatal("overdrawn take admitted")
	}
	// 50 tokens at 10/s is 5s away.
	if wait != 5*time.Second {
		t.Fatalf("wait = %v, want 5s", wait)
	}
}

func TestLimiterRefillsOnFakeClock(t *testing.T) {
	clock := NewFakeClock(time.Unix(1000, 0))
	l := NewLimiter(100, 10, clock)
	l.Take("a", 100)
	if ok, _ := l.Take("a", 20); ok {
		t.Fatal("empty bucket admitted a stream")
	}
	clock.Advance(2 * time.Second) // +20 tokens
	if ok, wait := l.Take("a", 20); !ok {
		t.Fatalf("refilled bucket refused a 20-frame stream (wait %v)", wait)
	}
	if got := l.Tokens("a"); got != 0 {
		t.Fatalf("after refilled take, %v tokens remain, want 0", got)
	}
}

func TestLimiterRefillSaturatesAtCapacity(t *testing.T) {
	clock := NewFakeClock(time.Unix(1000, 0))
	l := NewLimiter(100, 10, clock)
	l.Take("a", 10)
	clock.Advance(time.Hour)
	if got := l.Tokens("a"); got != 100 {
		t.Fatalf("after an hour, %v tokens, want capacity 100", got)
	}
}

func TestLimiterOversizedRequestRefused(t *testing.T) {
	clock := NewFakeClock(time.Unix(1000, 0))
	l := NewLimiter(100, 10, clock)
	ok, wait := l.Take("a", 250)
	if ok {
		t.Fatal("stream larger than the whole budget admitted")
	}
	// The wait is computed the same way (150 missing tokens at 10/s); the
	// caller sees an ordinary 429 answer, not a special case.
	if wait != 15*time.Second {
		t.Fatalf("wait = %v, want 15s", wait)
	}
	// The refusal must not have charged anything.
	if got := l.Tokens("a"); got != 100 {
		t.Fatalf("refused take left %v tokens, want 100", got)
	}
}

func TestLimiterClientsAreIndependent(t *testing.T) {
	clock := NewFakeClock(time.Unix(1000, 0))
	l := NewLimiter(100, 10, clock)
	l.Take("greedy", 100)
	if ok, _ := l.Take("other", 100); !ok {
		t.Fatal("one client's exhaustion refused another client")
	}
}
