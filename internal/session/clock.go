package session

import (
	"sync"
	"time"
)

// Clock abstracts time for the admission buckets and park TTLs so the
// concurrency tests can drive refills and expiries deterministically
// instead of sleeping.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// RealClock returns the wall clock, the production Clock.
func RealClock() Clock { return realClock{} }

// FakeClock is a manually advanced Clock: Now returns the same instant
// until Advance moves it. Safe for concurrent use.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock returns a FakeClock reading start.
func NewFakeClock(start time.Time) *FakeClock { return &FakeClock{t: start} }

// Now returns the clock's current instant.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}
