package session

import (
	"testing"

	"dispersal/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine running. The
// session layer is deliberately goroutine-free (the scheduler blocks
// callers instead of running a pool), so anything this catches is a test's
// own stray worker.
func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
