package session

import (
	"context"
	"runtime"
	"sync"
	"time"
)

// Scheduler interleaves frame solves across active streams fairly. Slots
// are a bounded worker budget; admission to a slot is strict FIFO. Because
// a stream solves its frames sequentially — it acquires a slot, solves one
// frame, releases, and re-enqueues for the next frame at the tail — FIFO
// over streams with at most one pending frame each IS round-robin: every
// active stream gets one frame per scheduling round, so a 256-frame stream
// and an 8-frame stream admitted together cost each other one frame of
// latency per round, not a whole stream. The blocking shape (callers wait
// in Acquire rather than handing work to pool goroutines) keeps the
// scheduler free of background goroutines: nothing to supervise, nothing
// to leak.
type Scheduler struct {
	mu      sync.Mutex
	workers int
	running int
	queue   []*waiter
	// observeWait, when non-nil, receives the enqueue-to-grant wait of
	// every successful Acquire — the queue-wait histogram feed. Set once at
	// construction time (SetWaitObserver), before the scheduler is shared.
	observeWait func(time.Duration)
}

// waiter is one stream's pending frame. ready is closed when the waiter is
// granted a slot; granted disambiguates the grant/cancel race.
type waiter struct {
	ready   chan struct{}
	granted bool
}

// NewScheduler builds a scheduler with the given number of concurrent
// slots; workers <= 0 selects GOMAXPROCS.
func NewScheduler(workers int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Scheduler{workers: workers}
}

// SetWaitObserver installs fn as the queue-wait observer: it receives the
// enqueue-to-grant duration of every granted slot, turning scheduler
// contention into a latency distribution instead of only the instantaneous
// Queued gauge. Call before the scheduler is shared across goroutines.
func (s *Scheduler) SetWaitObserver(fn func(time.Duration)) {
	s.mu.Lock()
	s.observeWait = fn
	s.mu.Unlock()
}

// Acquire blocks until the caller holds one of the scheduler's slots, then
// returns the release function for it. The caller must call release exactly
// once. A ctx expiring while queued abandons the place in line and returns
// ctx.Err() — a disconnected stream's queued frame costs nobody a slot.
func (s *Scheduler) Acquire(ctx context.Context) (release func(), err error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	w := &waiter{ready: make(chan struct{})}
	s.mu.Lock()
	s.queue = append(s.queue, w)
	observe := s.observeWait
	s.dispatchLocked()
	s.mu.Unlock()

	select {
	case <-w.ready:
		if observe != nil {
			observe(time.Since(start))
		}
		return s.release, nil
	case <-ctx.Done():
		s.mu.Lock()
		defer s.mu.Unlock()
		if w.granted {
			// The grant raced the cancellation; give the slot back.
			s.running--
			s.dispatchLocked()
			return nil, ctx.Err()
		}
		for i, q := range s.queue {
			if q == w {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		return nil, ctx.Err()
	}
}

func (s *Scheduler) release() {
	s.mu.Lock()
	s.running--
	s.dispatchLocked()
	s.mu.Unlock()
}

// dispatchLocked grants free slots to the head of the queue; the caller
// holds s.mu.
func (s *Scheduler) dispatchLocked() {
	for s.running < s.workers && len(s.queue) > 0 {
		w := s.queue[0]
		s.queue = s.queue[1:]
		w.granted = true
		s.running++
		close(w.ready)
	}
}

// Queued reports how many frames are waiting for a slot.
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Workers reports the slot budget.
func (s *Scheduler) Workers() int { return s.workers }
