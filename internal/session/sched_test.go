package session

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSchedulerBoundsConcurrency(t *testing.T) {
	s := NewScheduler(3)
	ctx := context.Background()
	var running, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := s.Acquire(ctx)
			if err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			n := running.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			running.Add(-1)
			release()
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d with 3 workers", p)
	}
	if q := s.Queued(); q != 0 {
		t.Fatalf("%d waiters still queued after all released", q)
	}
}

func TestSchedulerCancelWhileQueued(t *testing.T) {
	s := NewScheduler(1)
	release, err := s.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx)
		errc <- err
	}()
	for s.Queued() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("queued Acquire returned %v, want context.Canceled", err)
	}
	if q := s.Queued(); q != 0 {
		t.Fatalf("cancelled waiter left %d queued", q)
	}
	// The slot must still be usable: release it and re-acquire.
	release()
	release2, err := s.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release2()
}

func TestSchedulerCancelledBeforeAcquire(t *testing.T) {
	s := NewScheduler(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Acquire(ctx); err != context.Canceled {
		t.Fatalf("Acquire on a dead ctx returned %v, want context.Canceled", err)
	}
}

// TestSchedulerFairnessProperty is the fairness property of the issue: one
// greedy 256-frame stream and four 8-frame streams admitted together, each
// stream holding at most one pending frame (the handler's shape — acquire,
// solve one frame, release, re-enqueue). FIFO over such streams is
// round-robin, so every short stream must complete while the greedy stream
// is still early in its run: strictly before its 64th frame, an 8x margin
// over the ~8 rounds the shorts actually need. 100 seeded runs, each with
// a different admission order and per-stream work profile.
func TestSchedulerFairnessProperty(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fairnessRound(t, seed)
		})
	}
}

func fairnessRound(t *testing.T, seed int64) {
	const (
		greedyFrames = 256
		shortFrames  = 8
		shortStreams = 4
		greedyBound  = 64
	)
	rng := rand.New(rand.NewSource(seed))
	s := NewScheduler(2)
	ctx := context.Background()

	type stream struct {
		frames int
		short  bool
		spin   int // deterministic per-stream work knob
	}
	streams := []stream{{frames: greedyFrames, spin: 50 + rng.Intn(200)}}
	for i := 0; i < shortStreams; i++ {
		streams = append(streams, stream{frames: shortFrames, short: true, spin: 50 + rng.Intn(200)})
	}
	rng.Shuffle(len(streams), func(i, j int) { streams[i], streams[j] = streams[j], streams[i] })

	var greedyDone atomic.Int64
	var mu sync.Mutex
	var finishedAt []int64
	var wg, ready sync.WaitGroup
	// "Admitted together": every stream is launched and standing at the
	// barrier before any of them enqueues its first frame. Without this the
	// first goroutine can run its entire loop before the runtime ever
	// schedules the others — a harness artifact, not scheduler unfairness.
	start := make(chan struct{})
	for _, st := range streams {
		wg.Add(1)
		ready.Add(1)
		go func(st stream) {
			defer wg.Done()
			ready.Done()
			<-start
			sink := 0.0
			for i := 0; i < st.frames; i++ {
				release, err := s.Acquire(ctx)
				if err != nil {
					t.Errorf("Acquire: %v", err)
					return
				}
				for j := 0; j < st.spin*100; j++ {
					sink += float64(j)
				}
				// A real frame blocks in the solver and the response write
				// while holding its slot; yield to model that, so the other
				// streams actually pile up in the queue (on one CPU a
				// never-blocking loop would otherwise run to completion
				// before anyone else is scheduled).
				runtime.Gosched()
				if !st.short {
					greedyDone.Add(1)
				}
				release()
			}
			_ = sink
			if st.short {
				mu.Lock()
				finishedAt = append(finishedAt, greedyDone.Load())
				mu.Unlock()
			}
		}(st)
	}
	ready.Wait()
	close(start)
	wg.Wait()

	if len(finishedAt) != shortStreams {
		t.Fatalf("%d short streams finished, want %d", len(finishedAt), shortStreams)
	}
	for _, g := range finishedAt {
		if g >= greedyBound {
			t.Errorf("a short stream finished only at greedy frame %d, want < %d (starvation)", g, greedyBound)
		}
	}
}

// TestSchedulerWaitObserver: every granted Acquire reports its
// enqueue-to-grant wait to the installed observer — an uncontended grant
// near zero, a grant behind a held slot at least the hold time — and a
// cancelled waiter reports nothing.
func TestSchedulerWaitObserver(t *testing.T) {
	s := NewScheduler(1)
	var mu sync.Mutex
	var waits []time.Duration
	s.SetWaitObserver(func(d time.Duration) {
		mu.Lock()
		waits = append(waits, d)
		mu.Unlock()
	})

	ctx := context.Background()
	release, err := s.Acquire(ctx)
	if err != nil {
		t.Fatal(err)
	}

	const hold = 50 * time.Millisecond
	granted := make(chan struct{})
	go func() {
		r, err := s.Acquire(ctx)
		if err != nil {
			t.Errorf("queued Acquire: %v", err)
			close(granted)
			return
		}
		close(granted)
		r()
	}()

	// A waiter that gives up must not feed the observer.
	cancelCtx, cancel := context.WithCancel(ctx)
	cancelled := make(chan struct{})
	go func() {
		defer close(cancelled)
		if _, err := s.Acquire(cancelCtx); err == nil {
			t.Error("cancelled Acquire succeeded")
		}
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	<-cancelled

	time.Sleep(hold)
	release()
	<-granted

	mu.Lock()
	defer mu.Unlock()
	if len(waits) != 2 {
		t.Fatalf("observer saw %d waits, want 2 (the cancelled waiter must not report): %v", len(waits), waits)
	}
	if waits[0] > 20*time.Millisecond {
		t.Errorf("uncontended grant waited %v, want ~0", waits[0])
	}
	if waits[1] < hold/2 {
		t.Errorf("queued grant reported %v, want >= %v", waits[1], hold/2)
	}
}
