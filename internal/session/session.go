// Package session makes trajectory streams first-class citizens of the
// dispersald server: admitted, scheduled and resumable instead of being
// anonymous goroutines racing each other for the solver.
//
// Three mechanisms, one Registry:
//
//   - Admission. Each client (API key header or remote host) owns a token
//     bucket of frames (Limiter): opening an n-frame stream withdraws n
//     tokens, refilled at a configured rate, so a greedy client exhausts
//     its own budget — not the pool — and is told when to retry
//     (RetryError carries the Retry-After answer). A global cap bounds
//     concurrently attached streams.
//
//   - Fair scheduling. Every admitted stream solves its frames through the
//     Registry's Scheduler, which hands out bounded worker slots in FIFO
//     order. One pending frame per stream makes FIFO round-robin: short
//     streams finish early even while a long stream grinds on.
//
//   - Resumption. Every NDJSON line a stream emits carries a monotonic
//     sequence token and is recorded in a bounded per-session replay
//     window. A disconnected stream parks — its slot and queued frame are
//     released, its warm chain and window are kept for a TTL — and a
//     client that reconnects with ?session=<id>&resume=<seq> replays the
//     lines it missed and continues live. A token that has slid out of the
//     window (or a session that expired) answers ErrGone, the typed 410.
package session

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for Config fields left zero.
const (
	DefaultMaxSessions  = 256
	DefaultFrameBudget  = 4096
	DefaultClientRate   = 512
	DefaultReplayWindow = 64
	DefaultParkTTL      = 2 * time.Minute
)

// ErrGone reports an unresumable stream: the session is unknown, expired,
// finished, owned by another client, still attached, or the resume token
// has slid out of the replay window. The HTTP layer answers 410.
var ErrGone = errors.New("session is gone or the resume token is out of its replay window")

// RetryError is an admission rejection: the request is declined now but
// may succeed after After. Reason is the wire kind — "rate_limit" for an
// exhausted frame budget, "sessions" for the global session cap. The HTTP
// layer answers 429 with a Retry-After header.
type RetryError struct {
	Reason string
	After  time.Duration
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("admission refused (%s); retry after %s", e.Reason, e.After)
}

// Line is one recorded NDJSON line, addressable by its sequence token.
type Line struct {
	Seq int64
	Raw []byte
}

// Session is one trajectory stream's identity and replay state. The
// solving loop itself lives in the HTTP handler; the session carries what
// must survive a disconnect.
type Session struct {
	// ID names the session on the wire (the X-Session-ID header and the
	// ?session= resume parameter); Client is the admission key it belongs
	// to — a resume from a different client is refused.
	ID     string
	Client string

	mu       sync.Mutex
	seq      int64
	window   []Line
	parked   bool
	parkedAt time.Time
	// checkpoint is the handler's opaque continuation (warm chain, frame
	// cursor, running totals), stashed at park and returned at resume.
	checkpoint any
}

// NextSeq allocates the next sequence token; the first line of a stream is
// seq 1.
func (s *Session) NextSeq() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	return s.seq
}

// Record appends an emitted line to the replay window, dropping the oldest
// beyond the window bound.
func (s *Session) Record(seq int64, raw []byte, window int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.window = append(s.window, Line{Seq: seq, Raw: raw})
	if over := len(s.window) - window; over > 0 {
		s.window = append([]Line(nil), s.window[over:]...)
	}
}

// replayLocked returns copies of the lines after seq, or ErrGone when the
// token is stale (ahead of the stream) or out of the window (the line
// after it has already been dropped).
func (s *Session) replayLocked(after int64) ([]Line, error) {
	if after > s.seq || after < 0 {
		return nil, ErrGone
	}
	if after < s.seq && (len(s.window) == 0 || s.window[0].Seq > after+1) {
		return nil, ErrGone
	}
	var lines []Line
	for _, ln := range s.window {
		if ln.Seq > after {
			lines = append(lines, ln)
		}
	}
	return lines, nil
}

// Config tunes a Registry. Zero fields select the defaults above;
// Clock == nil selects the wall clock.
type Config struct {
	// MaxSessions bounds concurrently attached streams.
	MaxSessions int
	// FrameBudget is the per-client token bucket capacity, in frames.
	FrameBudget int
	// ClientRate is the per-client refill rate, frames per second.
	ClientRate float64
	// Workers is the scheduler's slot budget; <= 0 selects GOMAXPROCS.
	Workers int
	// ReplayWindow is the number of emitted lines kept per session.
	ReplayWindow int
	// ParkTTL is how long a parked (disconnected) session stays resumable.
	ParkTTL time.Duration
	// Clock drives refills and TTLs; tests install a FakeClock.
	Clock Clock
}

// Registry is the set of active and parked trajectory sessions plus their
// shared admission limiter and frame scheduler.
type Registry struct {
	cfg     Config
	clock   Clock
	limiter *Limiter
	sched   *Scheduler

	mu       sync.Mutex
	sessions map[string]*Session
	active   int
	nextID   int64

	opened, rejected, resumed atomic.Int64
}

// NewRegistry builds a registry from cfg, applying defaults.
func NewRegistry(cfg Config) *Registry {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.FrameBudget <= 0 {
		cfg.FrameBudget = DefaultFrameBudget
	}
	if cfg.ClientRate <= 0 {
		cfg.ClientRate = DefaultClientRate
	}
	if cfg.ReplayWindow <= 0 {
		cfg.ReplayWindow = DefaultReplayWindow
	}
	if cfg.ParkTTL <= 0 {
		cfg.ParkTTL = DefaultParkTTL
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock()
	}
	return &Registry{
		cfg:      cfg,
		clock:    cfg.Clock,
		limiter:  NewLimiter(cfg.FrameBudget, cfg.ClientRate, cfg.Clock),
		sched:    NewScheduler(cfg.Workers),
		sessions: make(map[string]*Session),
	}
}

// Scheduler returns the shared frame scheduler.
func (r *Registry) Scheduler() *Scheduler { return r.sched }

// ReplayWindow reports the per-session replay window bound, for Record.
func (r *Registry) ReplayWindow() int { return r.cfg.ReplayWindow }

// Tokens reports client's current frame budget balance.
func (r *Registry) Tokens(client string) float64 { return r.limiter.Tokens(client) }

// Open admits a new frames-frame stream for client: the global session cap
// and the client's frame budget are both charged, in that order, and a
// refusal of either is a *RetryError. Admission happens only after the
// request has fully validated — the caller must not Open on a request it
// might still reject — so malformed requests can never burn budget.
func (r *Registry) Open(client string, frames int) (*Session, error) {
	r.mu.Lock()
	r.purgeLocked()
	if r.active >= r.cfg.MaxSessions {
		r.mu.Unlock()
		r.rejected.Add(1)
		return nil, &RetryError{Reason: "sessions", After: time.Second}
	}
	r.active++
	r.nextID++
	id := r.nextID
	r.mu.Unlock()

	if ok, wait := r.limiter.Take(client, frames); !ok {
		r.mu.Lock()
		r.active--
		r.mu.Unlock()
		r.rejected.Add(1)
		return nil, &RetryError{Reason: "rate_limit", After: wait}
	}

	s := &Session{ID: fmt.Sprintf("s%d", id), Client: client}
	r.mu.Lock()
	r.sessions[s.ID] = s
	r.mu.Unlock()
	r.opened.Add(1)
	return s, nil
}

// Park detaches a disconnected session: its attached slot is released
// immediately, its replay window and checkpoint are kept for ParkTTL so
// the client can resume.
func (r *Registry) Park(s *Session, checkpoint any) {
	now := r.clock.Now()
	s.mu.Lock()
	s.parked = true
	s.parkedAt = now
	s.checkpoint = checkpoint
	s.mu.Unlock()

	r.mu.Lock()
	r.active--
	r.mu.Unlock()
}

// Close removes a finished session and releases its slot.
func (r *Registry) Close(s *Session) {
	r.mu.Lock()
	delete(r.sessions, s.ID)
	r.active--
	r.mu.Unlock()
}

// Resume re-attaches a parked session for client: the lines after seq are
// replayed from the window and the handler continues from the returned
// checkpoint. Unknown, expired, still-attached or foreign sessions — and
// tokens outside the replay window — answer ErrGone; a full registry
// answers *RetryError like Open.
func (r *Registry) Resume(id, client string, seq int64) (*Session, []Line, any, error) {
	r.mu.Lock()
	r.purgeLocked()
	s := r.sessions[id]
	if s == nil {
		r.mu.Unlock()
		return nil, nil, nil, ErrGone
	}
	if r.active >= r.cfg.MaxSessions {
		r.mu.Unlock()
		r.rejected.Add(1)
		return nil, nil, nil, &RetryError{Reason: "sessions", After: time.Second}
	}

	s.mu.Lock()
	if !s.parked || s.Client != client {
		s.mu.Unlock()
		r.mu.Unlock()
		return nil, nil, nil, ErrGone
	}
	lines, err := s.replayLocked(seq)
	if err != nil {
		s.mu.Unlock()
		r.mu.Unlock()
		return nil, nil, nil, err
	}
	s.parked = false
	checkpoint := s.checkpoint
	s.checkpoint = nil
	s.mu.Unlock()

	r.active++
	r.mu.Unlock()
	r.resumed.Add(1)
	return s, lines, checkpoint, nil
}

// purgeLocked drops parked sessions whose TTL has passed; the caller holds
// r.mu. Parked sessions hold no slot, so expiry is bookkeeping only.
func (r *Registry) purgeLocked() {
	now := r.clock.Now()
	for id, s := range r.sessions {
		s.mu.Lock()
		expired := s.parked && now.Sub(s.parkedAt) > r.cfg.ParkTTL
		s.mu.Unlock()
		if expired {
			delete(r.sessions, id)
		}
	}
}

// Stats is the registry's /statsz section (the server composes the frame
// coalescing counter in beside these).
type Stats struct {
	// Active counts attached streams, Parked disconnected-but-resumable
	// ones, QueuedFrames the frames waiting for a scheduler slot.
	Active       int `json:"active"`
	Parked       int `json:"parked"`
	QueuedFrames int `json:"queued_frames"`
	// Opened / Rejected / Resumed count admissions, 429s and successful
	// resumes over the registry's lifetime.
	Opened   int64 `json:"opened"`
	Rejected int64 `json:"rejected"`
	Resumed  int64 `json:"resumed"`
}

// Stats snapshots the counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	parked := 0
	for _, s := range r.sessions {
		s.mu.Lock()
		if s.parked {
			parked++
		}
		s.mu.Unlock()
	}
	st := Stats{
		Active: r.active,
		Parked: parked,
	}
	r.mu.Unlock()
	st.QueuedFrames = r.sched.Queued()
	st.Opened = r.opened.Load()
	st.Rejected = r.rejected.Load()
	st.Resumed = r.resumed.Load()
	return st
}
