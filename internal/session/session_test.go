package session

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func testRegistry(t *testing.T, cfg Config) (*Registry, *FakeClock) {
	t.Helper()
	clock := NewFakeClock(time.Unix(1000, 0))
	cfg.Clock = clock
	return NewRegistry(cfg), clock
}

func TestRegistryOpenCloseLifecycle(t *testing.T) {
	r, _ := testRegistry(t, Config{MaxSessions: 4})
	s, err := r.Open("alice", 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.ID == "" || s.Client != "alice" {
		t.Fatalf("session = %+v", s)
	}
	if st := r.Stats(); st.Active != 1 || st.Opened != 1 {
		t.Fatalf("stats after open = %+v", st)
	}
	r.Close(s)
	if st := r.Stats(); st.Active != 0 {
		t.Fatalf("stats after close = %+v", st)
	}
}

func TestRegistrySessionCap(t *testing.T) {
	r, _ := testRegistry(t, Config{MaxSessions: 2})
	a, _ := r.Open("c1", 1)
	b, _ := r.Open("c2", 1)
	_, err := r.Open("c3", 1)
	var re *RetryError
	if !errors.As(err, &re) || re.Reason != "sessions" {
		t.Fatalf("over-cap Open returned %v, want RetryError{sessions}", err)
	}
	if re.After <= 0 {
		t.Fatalf("RetryError.After = %v, want > 0", re.After)
	}
	if st := r.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	// Closing one stream frees the slot.
	r.Close(a)
	c, err := r.Open("c3", 1)
	if err != nil {
		t.Fatalf("Open after a Close: %v", err)
	}
	r.Close(b)
	r.Close(c)
}

func TestRegistryRateLimit(t *testing.T) {
	r, clock := testRegistry(t, Config{MaxSessions: 8, FrameBudget: 100, ClientRate: 10})
	s, err := r.Open("alice", 100)
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Open("alice", 50)
	var re *RetryError
	if !errors.As(err, &re) || re.Reason != "rate_limit" {
		t.Fatalf("overdrawn Open returned %v, want RetryError{rate_limit}", err)
	}
	if re.After != 5*time.Second {
		t.Fatalf("After = %v, want 5s (50 frames at 10/s)", re.After)
	}
	// A refused Open must not hold a session slot.
	if st := r.Stats(); st.Active != 1 {
		t.Fatalf("active = %d after refusal, want 1", st.Active)
	}
	// Budgets are per client: bob opens fine.
	b, err := r.Open("bob", 100)
	if err != nil {
		t.Fatalf("independent client refused: %v", err)
	}
	// And alice recovers once the bucket refills.
	clock.Advance(5 * time.Second)
	a2, err := r.Open("alice", 50)
	if err != nil {
		t.Fatalf("Open after refill: %v", err)
	}
	r.Close(s)
	r.Close(b)
	r.Close(a2)
}

func recordLines(s *Session, r *Registry, n int) {
	for i := 0; i < n; i++ {
		seq := s.NextSeq()
		s.Record(seq, []byte(fmt.Sprintf("line%d\n", seq)), r.ReplayWindow())
	}
}

func TestRegistryParkResumeReplay(t *testing.T) {
	r, _ := testRegistry(t, Config{MaxSessions: 4})
	s, err := r.Open("alice", 8)
	if err != nil {
		t.Fatal(err)
	}
	recordLines(s, r, 5)
	r.Park(s, "checkpoint-state")
	if st := r.Stats(); st.Active != 0 || st.Parked != 1 {
		t.Fatalf("stats after park = %+v", st)
	}

	// Client saw lines 1..3; resume replays 4 and 5.
	s2, replay, cp, err := r.Resume(s.ID, "alice", 3)
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s {
		t.Fatal("Resume returned a different session")
	}
	if cp != "checkpoint-state" {
		t.Fatalf("checkpoint = %v", cp)
	}
	if len(replay) != 2 || replay[0].Seq != 4 || replay[1].Seq != 5 {
		t.Fatalf("replay = %+v, want seqs 4,5", replay)
	}
	if string(replay[0].Raw) != "line4\n" {
		t.Fatalf("replay[0] = %q", replay[0].Raw)
	}
	if st := r.Stats(); st.Active != 1 || st.Parked != 0 || st.Resumed != 1 {
		t.Fatalf("stats after resume = %+v", st)
	}
	r.Close(s2)
}

func TestRegistryResumeGoneCases(t *testing.T) {
	r, _ := testRegistry(t, Config{MaxSessions: 4})
	s, _ := r.Open("alice", 8)
	recordLines(s, r, 3)

	// Still attached: not resumable.
	if _, _, _, err := r.Resume(s.ID, "alice", 0); !errors.Is(err, ErrGone) {
		t.Fatalf("resume of an attached session: %v, want ErrGone", err)
	}
	r.Park(s, nil)

	// Unknown id.
	if _, _, _, err := r.Resume("nope", "alice", 0); !errors.Is(err, ErrGone) {
		t.Fatalf("resume of unknown id: %v, want ErrGone", err)
	}
	// Foreign client.
	if _, _, _, err := r.Resume(s.ID, "mallory", 0); !errors.Is(err, ErrGone) {
		t.Fatalf("resume by another client: %v, want ErrGone", err)
	}
	// Token ahead of the stream.
	if _, _, _, err := r.Resume(s.ID, "alice", 99); !errors.Is(err, ErrGone) {
		t.Fatalf("resume past the stream head: %v, want ErrGone", err)
	}
	// The legit resume still works after the failed attempts.
	if _, _, _, err := r.Resume(s.ID, "alice", 3); err != nil {
		t.Fatalf("legit resume: %v", err)
	}
	r.Close(s)
}

func TestRegistryResumeOutOfWindow(t *testing.T) {
	r, _ := testRegistry(t, Config{MaxSessions: 4, ReplayWindow: 4})
	s, _ := r.Open("alice", 8)
	recordLines(s, r, 10) // window holds seqs 7..10
	r.Park(s, nil)
	if _, _, _, err := r.Resume(s.ID, "alice", 2); !errors.Is(err, ErrGone) {
		t.Fatalf("out-of-window resume: %v, want ErrGone", err)
	}
	// The boundary token (everything after it is still held) works.
	s2, replay, _, err := r.Resume(s.ID, "alice", 6)
	if err != nil {
		t.Fatalf("boundary resume: %v", err)
	}
	if len(replay) != 4 || replay[0].Seq != 7 {
		t.Fatalf("boundary replay = %+v", replay)
	}
	r.Close(s2)
}

func TestRegistryResumeAtHead(t *testing.T) {
	r, _ := testRegistry(t, Config{MaxSessions: 4, ReplayWindow: 4})
	s, _ := r.Open("alice", 8)
	recordLines(s, r, 10)
	r.Park(s, nil)
	// The client saw everything; nothing to replay, resume continues live.
	s2, replay, _, err := r.Resume(s.ID, "alice", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != 0 {
		t.Fatalf("replay = %+v, want empty", replay)
	}
	r.Close(s2)
}

func TestRegistryParkTTLExpiry(t *testing.T) {
	r, clock := testRegistry(t, Config{MaxSessions: 4, ParkTTL: time.Minute})
	s, _ := r.Open("alice", 8)
	recordLines(s, r, 2)
	r.Park(s, nil)

	clock.Advance(59 * time.Second)
	s2, _, _, err := r.Resume(s.ID, "alice", 2)
	if err != nil {
		t.Fatalf("resume within TTL: %v", err)
	}
	r.Park(s2, nil)

	clock.Advance(61 * time.Second)
	if _, _, _, err := r.Resume(s.ID, "alice", 2); !errors.Is(err, ErrGone) {
		t.Fatalf("resume after TTL: %v, want ErrGone", err)
	}
	// The expired session is purged, not just refused.
	if st := r.Stats(); st.Parked != 0 {
		t.Fatalf("parked = %d after expiry, want 0", st.Parked)
	}
}

func TestRegistryParkedHoldsNoSlot(t *testing.T) {
	r, _ := testRegistry(t, Config{MaxSessions: 1})
	s, err := r.Open("alice", 8)
	if err != nil {
		t.Fatal(err)
	}
	r.Park(s, nil)
	// The parked session freed the only slot; a new stream gets in.
	b, err := r.Open("bob", 8)
	if err != nil {
		t.Fatalf("Open with a parked session holding the registry: %v", err)
	}
	// And resuming while the registry is full is a retryable refusal, not
	// a Gone — the stream still exists.
	_, _, _, err = r.Resume(s.ID, "alice", 0)
	var re *RetryError
	if !errors.As(err, &re) || re.Reason != "sessions" {
		t.Fatalf("resume into a full registry: %v, want RetryError{sessions}", err)
	}
	r.Close(b)
	if _, _, _, err := r.Resume(s.ID, "alice", 0); err != nil {
		t.Fatalf("resume after a slot freed: %v", err)
	}
	r.Close(s)
}
