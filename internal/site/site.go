// Package site defines site-value functions — the f(x) of the dispersal
// game — together with the generator families used across the experiments.
//
// A Values vector is indexed 0-based in code (site x in the paper is
// Values[x-1]) and must be sorted in non-increasing order with strictly
// positive entries, matching the paper's convention f(x) >= f(x+1) > 0.
package site

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"dispersal/internal/numeric"
)

// Values is a vector of site values f(1) >= f(2) >= ... >= f(M) > 0.
type Values []float64

// Validation errors.
var (
	ErrEmpty     = errors.New("site: empty value vector")
	ErrNotSorted = errors.New("site: values must be non-increasing")
	ErrNegative  = errors.New("site: values must be strictly positive")
	ErrNotFinite = errors.New("site: values must be finite")
)

// Validate checks the paper's conventions: non-empty, finite, strictly
// positive, and non-increasing.
func (f Values) Validate() error {
	if len(f) == 0 {
		return ErrEmpty
	}
	for i, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: f(%d) = %v", ErrNotFinite, i+1, v)
		}
		if v <= 0 {
			return fmt.Errorf("%w: f(%d) = %v", ErrNegative, i+1, v)
		}
		if i > 0 && f[i-1] < v {
			return fmt.Errorf("%w: f(%d) = %v < f(%d) = %v", ErrNotSorted, i, f[i-1], i+1, v)
		}
	}
	return nil
}

// M returns the number of sites.
func (f Values) M() int { return len(f) }

// Sum returns the total value of all sites, the full-coordination coverage
// ceiling when k >= M.
func (f Values) Sum() float64 { return numeric.KahanSum(f) }

// PrefixSum returns sum_{x <= n} f(x); for n = k this is the best achievable
// coverage under full coordination (Observation 1's comparator).
func (f Values) PrefixSum(n int) float64 {
	if n > len(f) {
		n = len(f)
	}
	if n <= 0 {
		return 0
	}
	return numeric.KahanSum(f[:n])
}

// Clone returns an independent copy.
func (f Values) Clone() Values {
	out := make(Values, len(f))
	copy(out, f)
	return out
}

// Normalized returns a copy scaled so the values sum to 1 (a prior
// distribution, as used by the Bayesian-search substrate).
func (f Values) Normalized() Values {
	s := f.Sum()
	out := make(Values, len(f))
	for i, v := range f {
		out[i] = v / s
	}
	return out
}

// Sorted returns a copy sorted in non-increasing order. Use it to coerce
// arbitrary positive vectors into the paper's convention.
func Sorted(raw []float64) Values {
	out := make(Values, len(raw))
	copy(out, raw)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// Uniform returns M sites all of value v.
func Uniform(m int, v float64) Values {
	out := make(Values, m)
	for i := range out {
		out[i] = v
	}
	return out
}

// Geometric returns M sites with f(x) = top * ratio^(x-1), ratio in (0, 1].
func Geometric(m int, top, ratio float64) Values {
	out := make(Values, m)
	v := top
	for i := range out {
		out[i] = v
		v *= ratio
	}
	return out
}

// Zipf returns M sites with f(x) = top / x^s. s = 1 is the classic Zipf
// law; s = 0 degenerates to a uniform vector.
func Zipf(m int, top, s float64) Values {
	out := make(Values, m)
	for i := range out {
		out[i] = top / math.Pow(float64(i+1), s)
	}
	return out
}

// Linear returns M sites interpolating linearly from hi down to lo.
func Linear(m int, hi, lo float64) Values {
	out := make(Values, m)
	if m == 1 {
		out[0] = hi
		return out
	}
	for i := range out {
		t := float64(i) / float64(m-1)
		out[i] = hi + t*(lo-hi)
	}
	return out
}

// SlowDecay builds the strictly decreasing, slowly decaying value function
// used in the proof of Theorem 6: for every x <= y,
// f(y)/f(x) >= f(M)/f(1) > (1 - 1/(2k))^(k-1), which forces the IFD support
// W >= 2k. Concretely it interpolates geometrically between 1 and
// bottom = (1 - 1/(2k))^(k-1) + margin.
func SlowDecay(m, k int) Values {
	if k < 2 {
		k = 2
	}
	floor := math.Pow(1-1/(2*float64(k)), float64(k-1))
	bottom := floor + (1-floor)*0.5 // comfortably above the Theorem 6 threshold
	if m == 1 {
		return Values{1}
	}
	ratio := math.Pow(bottom, 1/float64(m-1))
	return Geometric(m, 1, ratio)
}

// TwoSite returns the 2-site instances of Figure 1: f = (1, second).
func TwoSite(second float64) Values { return Values{1, second} }

// Drifted returns frame t of a deterministic time-varying landscape: base
// scaled per site by a smooth multiplicative oscillation of relative
// amplitude amp, f_t(x) = base(x) * (1 + amp*sin(t/5 + x)). It is the
// standard drift model shared by the E24 experiment and the paperbench
// -trajectory benchmark; amp must be small relative to the base's
// neighboring-value gaps or the frame violates the sort convention
// (Validate on the result catches it).
func Drifted(base Values, t int, amp float64) Values {
	out := base.Clone()
	for i := range out {
		out[i] *= 1 + amp*math.Sin(float64(t)/5+float64(i))
	}
	return out
}

// Random returns M sites drawn i.i.d. from Uniform(lo, hi) and then sorted
// non-increasingly. lo must be > 0.
func Random(rng *rand.Rand, m int, lo, hi float64) Values {
	raw := make([]float64, m)
	for i := range raw {
		raw[i] = lo + rng.Float64()*(hi-lo)
	}
	return Sorted(raw)
}

// RandomExponential returns M sites with i.i.d. Exp(1/mean) values, sorted
// non-increasingly; a heavy-tailed patch-quality model common in foraging
// studies.
func RandomExponential(rng *rand.Rand, m int, mean float64) Values {
	raw := make([]float64, m)
	for i := range raw {
		raw[i] = rng.ExpFloat64() * mean
		if raw[i] <= 0 {
			raw[i] = mean * 1e-12
		}
	}
	return Sorted(raw)
}

// Equal reports whether two value vectors agree within tol elementwise.
func (f Values) Equal(g Values, tol float64) bool {
	if len(f) != len(g) {
		return false
	}
	for i := range f {
		if !numeric.AlmostEqual(f[i], g[i], tol) {
			return false
		}
	}
	return true
}

// LocalityGrid is the canonical resolution of logarithmic value
// quantization: values are bucketed by round(ln(v) * LocalityGrid), i.e.
// into buckets of roughly 1/LocalityGrid (~3%) relative width — the scale
// at which a warm solver state recorded for one landscape still pays off as
// a seed for another. The warm-cache key (speccodec.LocalityKey) and the
// sweep's warm-chaining order both quantize on this grid, so "same bucket"
// means the same thing everywhere in the system.
const LocalityGrid = 32

// LogBuckets quantizes every value onto the logarithmic grid:
// out[i] = round(ln(vals[i]) * grid). It fails on non-positive values (the
// logarithm of a valid site value is always defined; anything else is a
// caller bug surfaced rather than bucketed arbitrarily).
func LogBuckets(vals []float64, grid int) ([]int64, error) {
	out := make([]int64, len(vals))
	for i, v := range vals {
		if v <= 0 {
			return nil, fmt.Errorf("%w: f(%d) = %v", ErrNegative, i+1, v)
		}
		out[i] = int64(math.Round(math.Log(v) * float64(grid)))
	}
	return out, nil
}
