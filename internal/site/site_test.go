package site

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestValidateAccepts(t *testing.T) {
	good := []Values{
		{1},
		{1, 0.3},
		{5, 5, 5},
		{3, 2, 1},
		Geometric(10, 1, 0.9),
		Zipf(20, 1, 1),
		SlowDecay(30, 4),
	}
	for _, f := range good {
		if err := f.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", f, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		f    Values
		want error
	}{
		{Values{}, ErrEmpty},
		{nil, ErrEmpty},
		{Values{1, 2}, ErrNotSorted},
		{Values{1, 0}, ErrNegative},
		{Values{1, -1}, ErrNegative},
		{Values{math.NaN()}, ErrNotFinite},
		{Values{math.Inf(1), 1}, ErrNotFinite},
	}
	for _, c := range cases {
		if err := c.f.Validate(); !errors.Is(err, c.want) {
			t.Errorf("Validate(%v) = %v, want %v", c.f, err, c.want)
		}
	}
}

func TestSums(t *testing.T) {
	f := Values{3, 2, 1}
	if got := f.Sum(); got != 6 {
		t.Errorf("Sum = %v", got)
	}
	if got := f.PrefixSum(2); got != 5 {
		t.Errorf("PrefixSum(2) = %v", got)
	}
	if got := f.PrefixSum(10); got != 6 {
		t.Errorf("PrefixSum(10) = %v (should clamp)", got)
	}
	if got := f.PrefixSum(0); got != 0 {
		t.Errorf("PrefixSum(0) = %v", got)
	}
	if got := f.PrefixSum(-1); got != 0 {
		t.Errorf("PrefixSum(-1) = %v", got)
	}
	if got := f.M(); got != 3 {
		t.Errorf("M = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	f := Values{2, 1}
	g := f.Clone()
	g[0] = 99
	if f[0] != 2 {
		t.Error("Clone aliases the original")
	}
}

func TestNormalized(t *testing.T) {
	f := Values{3, 1}
	n := f.Normalized()
	if !almostEq(n[0], 0.75) || !almostEq(n[1], 0.25) {
		t.Errorf("Normalized = %v", n)
	}
	if f[0] != 3 {
		t.Error("Normalized mutated the input")
	}
}

func TestSorted(t *testing.T) {
	f := Sorted([]float64{1, 3, 2})
	want := Values{3, 2, 1}
	if !f.Equal(want, 0) {
		t.Errorf("Sorted = %v, want %v", f, want)
	}
	if err := f.Validate(); err != nil {
		t.Errorf("sorted output invalid: %v", err)
	}
}

func TestGenerators(t *testing.T) {
	t.Run("uniform", func(t *testing.T) {
		f := Uniform(4, 2.5)
		if len(f) != 4 || f[0] != 2.5 || f[3] != 2.5 {
			t.Errorf("Uniform = %v", f)
		}
		mustValidate(t, f)
	})
	t.Run("geometric", func(t *testing.T) {
		f := Geometric(3, 8, 0.5)
		want := Values{8, 4, 2}
		if !f.Equal(want, 1e-12) {
			t.Errorf("Geometric = %v, want %v", f, want)
		}
		mustValidate(t, f)
	})
	t.Run("zipf", func(t *testing.T) {
		f := Zipf(3, 6, 1)
		want := Values{6, 3, 2}
		if !f.Equal(want, 1e-12) {
			t.Errorf("Zipf = %v, want %v", f, want)
		}
		mustValidate(t, f)
	})
	t.Run("zipf s=0 is uniform", func(t *testing.T) {
		f := Zipf(5, 2, 0)
		if !f.Equal(Uniform(5, 2), 1e-12) {
			t.Errorf("Zipf(s=0) = %v", f)
		}
	})
	t.Run("linear", func(t *testing.T) {
		f := Linear(3, 4, 2)
		want := Values{4, 3, 2}
		if !f.Equal(want, 1e-12) {
			t.Errorf("Linear = %v, want %v", f, want)
		}
		mustValidate(t, f)
	})
	t.Run("linear single", func(t *testing.T) {
		f := Linear(1, 4, 2)
		if len(f) != 1 || f[0] != 4 {
			t.Errorf("Linear(1) = %v", f)
		}
	})
	t.Run("twosite", func(t *testing.T) {
		f := TwoSite(0.3)
		if f[0] != 1 || f[1] != 0.3 {
			t.Errorf("TwoSite = %v", f)
		}
		mustValidate(t, f)
	})
}

func TestSlowDecaySatisfiesTheorem6Bound(t *testing.T) {
	for _, k := range []int{2, 3, 5, 10} {
		for _, m := range []int{10, 50, 100} {
			f := SlowDecay(m, k)
			mustValidate(t, f)
			floor := math.Pow(1-1/(2*float64(k)), float64(k-1))
			ratio := f[m-1] / f[0]
			if ratio <= floor {
				t.Errorf("SlowDecay(%d,%d): f(M)/f(1) = %v <= bound %v", m, k, ratio, floor)
			}
			// Strictly decreasing as Theorem 6 requires.
			for i := 1; i < m; i++ {
				if f[i] >= f[i-1] {
					t.Fatalf("SlowDecay(%d,%d) not strictly decreasing at %d", m, k, i)
				}
			}
		}
	}
}

func TestSlowDecayDegenerate(t *testing.T) {
	f := SlowDecay(1, 5)
	if len(f) != 1 || f[0] != 1 {
		t.Errorf("SlowDecay(1,5) = %v", f)
	}
	// k < 2 is coerced rather than panicking.
	g := SlowDecay(10, 0)
	mustValidate(t, g)
}

func TestRandomGenerators(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 0))
	f := Random(rng, 50, 0.1, 10)
	mustValidate(t, f)
	for _, v := range f {
		if v < 0.1 || v > 10 {
			t.Fatalf("Random out of range: %v", v)
		}
	}
	g := RandomExponential(rng, 50, 2)
	mustValidate(t, g)
}

func TestRandomIsDeterministicPerSeed(t *testing.T) {
	a := Random(rand.New(rand.NewPCG(1, 2)), 10, 0, 1)
	b := Random(rand.New(rand.NewPCG(1, 2)), 10, 0, 1)
	if !a.Equal(b, 0) {
		t.Error("same seed produced different vectors")
	}
}

func TestEqual(t *testing.T) {
	if !(Values{1, 2}).Equal(Values{1, 2 + 1e-13}, 1e-12) {
		t.Error("Equal too strict")
	}
	if (Values{1, 2}).Equal(Values{1}, 1e-12) {
		t.Error("Equal ignores length")
	}
	if (Values{1}).Equal(Values{2}, 1e-12) {
		t.Error("Equal ignores values")
	}
}

func TestGeneratorsAlwaysValidQuick(t *testing.T) {
	f := func(mRaw, kRaw uint8, ratioRaw float64) bool {
		m := int(mRaw%100) + 1
		k := int(kRaw%20) + 2
		ratio := 0.1 + 0.9*math.Abs(math.Mod(ratioRaw, 1))
		gens := []Values{
			Geometric(m, 1, ratio),
			Zipf(m, 1, 2*ratio),
			Linear(m, 2, 1),
			SlowDecay(m, k),
			Uniform(m, 1),
		}
		for _, g := range gens {
			if g.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func mustValidate(t *testing.T, f Values) {
	t.Helper()
	if err := f.Validate(); err != nil {
		t.Fatalf("invalid values %v: %v", f, err)
	}
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }
