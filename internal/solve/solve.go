// Package solve is the shared solver-core contract of the dispersal system.
//
// Every equilibrium-adjacent solver — the general IFD bisection
// (internal/ifd.SolveWarm), the exclusive policy's closed-form sigma*
// (internal/ifd.ExclusiveWarm), the coverage water-filling
// (internal/optimize.MaxCoverageWarm) and the SPoA pipeline
// (internal/spoa.ComputeWarm) — consumes and emits the same State: an
// immutable record of one game's solved artifacts. A State produced by any
// solver can seed any other, so warm-starting is a property of the solve
// pipeline rather than of one solver: a trajectory frame's equilibrium solve
// seeds the same frame's SPoA equilibrium re-solve, the previous frame's
// optimum seeds this frame's water-filling, and a state recovered from the
// server's locality-keyed cache (internal/warmcache) seeds an isolated
// request's entire analysis.
//
// The package also hosts the numeric plumbing those solvers used to
// re-derive independently: the monotone excess bisection behind both the
// equilibrium value nu and the KKT multiplier lambda (BisectExcess), the
// verified warm bracket around a previous per-site mass (SeedBracket), and
// the congestion-level table C(1..k) that the congestion expectation, the
// welfare gradient and the pure-equilibrium enumerator each evaluated call
// by call (Levels).
package solve

import (
	"math"

	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/strategy"
)

// State records the reusable artifacts of solves of one game (f, k, C). It
// carries up to three independent parts — the symmetric equilibrium, the
// coverage optimum, and the exclusive sigma* structure — each present only
// when the corresponding solver has run. A State is immutable after
// creation and safe to share between goroutines; the With* builders return
// extended copies.
//
// Validity rules: the equilibrium part is tied to (f, k, C); the optimum
// and sigma* parts depend only on (f, k) — coverage and the exclusive
// closed form are policy-free — so they remain consumable across policies.
// A consumer seeding from a State whose landscape differs from its own gets
// a warm *seed*, not an answer: every warm path verifies its bracket and
// falls back to a cold solve, so a stale or mismatched State can waste a
// warm attempt but never change a result beyond solver tolerance.
type State struct {
	f   site.Values
	k   int
	pol string // policy display name, parameters included

	// Equilibrium part: the IFD and its common value nu. warm records
	// whether the solve that produced it was itself warm-seeded (telemetry
	// for benchmarks, the trajectory endpoint and the warm cache).
	hasEq bool
	eq    strategy.Strategy
	nu    float64
	warm  bool

	// Coverage-optimum part: the coverage-maximizing symmetric strategy and
	// its KKT multiplier lambda (the water-filling level). optWarm records
	// whether the producing water-filling was warm-seeded.
	hasOpt  bool
	opt     strategy.Strategy
	lambda  float64
	optWarm bool

	// Exclusive sigma* part: the closed form's support boundary W,
	// normalization alpha and equilibrium value nu — the structure the
	// incremental boundary tracker updates in O(drift) per frame.
	hasSigma   bool
	sigmaW     int
	sigmaAlpha float64
	sigmaNu    float64
}

// New returns an empty State for the game (f, k, c). The landscape is
// cloned; the policy is recorded by display name (parameters included), the
// same identity the warm compatibility checks use.
func New(f site.Values, k int, c policy.Congestion) *State {
	return &State{f: f.Clone(), k: k, pol: c.Name()}
}

// NewNamed is New for callers that hold a policy's display name rather than
// a live policy value — the state wire codec (internal/statewire), which
// rehydrates states in another process where only the recorded name
// travelled. The warm compatibility checks compare names, so a state built
// from the name a live policy would have reported is indistinguishable from
// one built with New.
func NewNamed(f site.Values, k int, policyName string) *State {
	return &State{f: f.Clone(), k: k, pol: policyName}
}

// clone returns a shallow copy ready for a With* extension. Strategy slices
// are shared — parts are immutable once set, so sharing is safe.
func (s *State) clone() *State {
	out := *s
	return &out
}

// WithEq returns a copy of the state carrying the equilibrium part
// (eq, nu), with warm recording whether the producing solve was
// warm-seeded. eq is cloned.
func (s *State) WithEq(eq strategy.Strategy, nu float64, warm bool) *State {
	out := s.clone()
	out.hasEq, out.eq, out.nu, out.warm = true, eq.Clone(), nu, warm
	return out
}

// WithOpt returns a copy of the state carrying the coverage-optimum part
// (opt, lambda), with warm recording whether the producing water-filling
// was warm-seeded. opt is cloned.
func (s *State) WithOpt(opt strategy.Strategy, lambda float64, warm bool) *State {
	out := s.clone()
	out.hasOpt, out.opt, out.lambda, out.optWarm = true, opt.Clone(), lambda, warm
	return out
}

// WithSigma returns a copy of the state carrying the exclusive sigma*
// structure (support boundary w, normalization alpha, equilibrium value nu).
func (s *State) WithSigma(w int, alpha, nu float64) *State {
	out := s.clone()
	out.hasSigma, out.sigmaW, out.sigmaAlpha, out.sigmaNu = true, w, alpha, nu
	return out
}

// Merge fills the parts missing from s with the corresponding parts of old,
// provided old describes the same game shape (site count and player count).
// It is the accumulation step of a Game's state across its solvers: an
// equilibrium solve merges over a previous SPoA state so the optimum part
// survives, and vice versa. Either argument may be nil.
func Merge(s, old *State) *State {
	if s == nil {
		return old
	}
	if old == nil || old.k != s.k || len(old.f) != len(s.f) {
		return s
	}
	out := s
	if !s.hasEq && old.hasEq && old.pol == s.pol {
		out = out.clone()
		out.hasEq, out.eq, out.nu, out.warm = true, old.eq, old.nu, old.warm
	}
	if !s.hasOpt && old.hasOpt {
		out = out.clone()
		out.hasOpt, out.opt, out.lambda, out.optWarm = true, old.opt, old.lambda, old.optWarm
	}
	if !s.hasSigma && old.hasSigma {
		out = out.clone()
		out.hasSigma, out.sigmaW, out.sigmaAlpha, out.sigmaNu = true, old.sigmaW, old.sigmaAlpha, old.sigmaNu
	}
	return out
}

// Landscape returns the state's landscape as a read-only view (not a copy;
// callers must not mutate it).
func (s *State) Landscape() site.Values { return s.f }

// Players returns the state's player count.
func (s *State) Players() int { return s.k }

// PolicyName returns the display name of the policy the state was solved
// under.
func (s *State) PolicyName() string { return s.pol }

// HasEq reports whether the state carries an equilibrium part.
func (s *State) HasEq() bool { return s != nil && s.hasEq }

// Nu returns the equilibrium value of the state's equilibrium part (0 when
// absent).
func (s *State) Nu() float64 {
	if s == nil {
		return 0
	}
	return s.nu
}

// Strategy returns a copy of the state's equilibrium strategy (nil when
// absent).
func (s *State) Strategy() strategy.Strategy {
	if s == nil || !s.hasEq {
		return nil
	}
	return s.eq.Clone()
}

// EqRef returns the state's equilibrium strategy as a read-only view, for
// solver-internal seeding without a copy. nil when absent.
func (s *State) EqRef() strategy.Strategy {
	if s == nil || !s.hasEq {
		return nil
	}
	return s.eq
}

// Warmed reports whether the solve that produced the equilibrium part took
// the warm-start path (as opposed to a cold solve or a fallback).
func (s *State) Warmed() bool { return s != nil && s.hasEq && s.warm }

// HasOpt reports whether the state carries a coverage-optimum part.
func (s *State) HasOpt() bool { return s != nil && s.hasOpt }

// Lambda returns the KKT multiplier of the optimum part (0 when absent).
func (s *State) Lambda() float64 {
	if s == nil {
		return 0
	}
	return s.lambda
}

// OptRef returns the state's coverage-optimal strategy as a read-only view.
// nil when absent.
func (s *State) OptRef() strategy.Strategy {
	if s == nil || !s.hasOpt {
		return nil
	}
	return s.opt
}

// OptWarmed reports whether the water-filling that produced the optimum
// part took the warm-start path.
func (s *State) OptWarmed() bool { return s != nil && s.hasOpt && s.optWarm }

// HasSigma reports whether the state carries the exclusive sigma*
// structure.
func (s *State) HasSigma() bool { return s != nil && s.hasSigma }

// Sigma returns the exclusive sigma* structure (support boundary W,
// normalization alpha, equilibrium value nu); zeros when absent.
func (s *State) Sigma() (w int, alpha, nu float64) {
	if s == nil || !s.hasSigma {
		return 0, 0, 0
	}
	return s.sigmaW, s.sigmaAlpha, s.sigmaNu
}

// CompatibleEq reports whether the state's equilibrium part can seed a
// solve of (f, k, c): the part is present and the site count, player count
// and (identically parameterized) policy match. The landscapes themselves
// need not match — that is the point of warm seeding.
func (s *State) CompatibleEq(f site.Values, k int, c policy.Congestion) bool {
	return s != nil && s.hasEq && s.k == k && len(s.f) == len(f) && len(s.eq) == len(f) && s.pol == c.Name()
}

// CompatibleOpt reports whether the state's optimum part can seed a
// coverage water-filling of (f, k). Coverage is policy-free, so only the
// shape must match.
func (s *State) CompatibleOpt(f site.Values, k int) bool {
	return s != nil && s.hasOpt && s.k == k && len(s.f) == len(f) && len(s.opt) == len(f)
}

// CompatibleSigma reports whether the state's sigma* part can seed the
// incremental boundary tracker on (f, k). The exclusive closed form is
// policy-free, so only the shape must match.
func (s *State) CompatibleSigma(f site.Values, k int) bool {
	return s != nil && s.hasSigma && s.k == k && len(s.f) == len(f)
}

// Drift returns the maximum relative per-site change from the state's
// landscape to f — the scale every warm bracket is sized by. It assumes
// len(f) == len(s.Landscape()); callers gate on the Compatible* checks.
func (s *State) Drift(f site.Values) float64 {
	drift := 0.0
	for x := range f {
		if d := math.Abs(f[x]-s.f[x]) / s.f[x]; d > drift {
			drift = d
		}
	}
	return drift
}

// ConstantOnRange reports whether C(l) == C(1) for all l in [1, k]; in that
// case congestion never matters and the equilibrium concentrates on the
// argmax sites. Shared by the IFD solvers and the SPoA pipeline, which each
// used to carry their own copy.
func ConstantOnRange(c policy.Congestion, k int) bool {
	c1 := c.At(1)
	for l := 2; l <= k; l++ {
		// Exact comparison on purpose: this detects the degenerate
		// constant-policy case, and a tolerance here would reroute
		// near-constant games onto the argmax shortcut and change results.
		if !numeric.EqualExact(c.At(l), c1) {
			return false
		}
	}
	return true
}

// Levels returns the congestion table C(1..k) evaluated once: Levels(c,
// k)[l-1] == c.At(l). The congestion expectation g(q), the welfare gradient
// and the pure-equilibrium enumerator all consume C level by level in hot
// loops; evaluating the policy once up front replaces per-iteration At
// calls (a math.Pow for the power-law family) with slice reads.
func Levels(c policy.Congestion, k int) []float64 {
	out := make([]float64, k)
	for l := 1; l <= k; l++ {
		out[l-1] = c.At(l)
	}
	return out
}

// GeeLevels returns g(q) = E[C(1 + Binomial(k-1, q))] evaluated over a
// precomputed level table (levels[l-1] = C(l), len(levels) = k). It is the
// table-backed form of the ifd package's Gee.
func GeeLevels(levels []float64, q float64) float64 {
	k := len(levels)
	var acc numeric.Accumulator
	for l := 1; l <= k; l++ {
		w := numeric.BinomialPMF(k-1, l-1, q)
		if w == 0 {
			continue
		}
		acc.Add(levels[l-1] * w)
	}
	return acc.Sum()
}

// BisectExcess finds the root of a non-increasing excess function on [lo,
// hi] by bisection, maintaining excess(lo) >= 0 >= excess(hi). It is the
// loop both the equilibrium value search (excess = total site mass - 1 as a
// function of nu) and the coverage water-filling (excess = total optimal
// mass - 1 as a function of lambda) previously re-derived inline; the
// midpoint update, the 200-iteration budget and the relative stopping rule
// replicate those loops exactly, so refactored callers return bit-identical
// values. An error from excess aborts the search.
func BisectExcess(excess func(float64) (float64, error), lo, hi, relTol float64) (float64, error) {
	for iter := 0; iter < 200; iter++ {
		mid := lo + (hi-lo)/2
		e, err := excess(mid)
		if err != nil {
			return 0, err
		}
		if e > 0 {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < relTol*(1+math.Abs(hi)) {
			break
		}
	}
	return lo + (hi-lo)/2, nil
}

// SeedBracket narrows the inversion interval for h (strictly decreasing on
// [0, 1]) around the seed q0 with the given half-width. Each probe is sound
// regardless of where the root actually is: monotonicity means a probe with
// h >= 0 is a valid lower end and one with h <= 0 a valid upper end, so a
// stale seed degrades to at worst two wasted evaluations, never a wrong
// bracket.
func SeedBracket(h func(float64) float64, q0, halfWidth float64) (lo, hi float64) {
	lo, hi = 0, 1
	if !(q0 > 0 && q0 < 1) {
		return lo, hi
	}
	if a := q0 - halfWidth; a > lo {
		if h(a) >= 0 {
			lo = a
		} else {
			hi = a
		}
	}
	if b := q0 + halfWidth; b < hi && b > lo {
		if h(b) <= 0 {
			hi = b
		} else {
			lo = b
		}
	}
	return lo, hi
}
