package solve

import (
	"math"
	"testing"

	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/strategy"
)

func TestStatePartsAndCompatibility(t *testing.T) {
	f := site.Values{1, 0.8, 0.5}
	c := policy.Sharing{}
	st := New(f, 3, c)
	if st.HasEq() || st.HasOpt() || st.HasSigma() {
		t.Fatalf("fresh state claims parts: %+v", st)
	}
	eq := strategy.Strategy{0.5, 0.3, 0.2}
	st2 := st.WithEq(eq, 0.4, true)
	if st.HasEq() {
		t.Fatal("WithEq mutated the receiver")
	}
	if !st2.HasEq() || !st2.Warmed() || st2.Nu() != 0.4 {
		t.Fatalf("eq part not recorded: %+v", st2)
	}
	eq[0] = 99 // the state must have cloned
	if st2.EqRef()[0] == 99 {
		t.Fatal("WithEq aliased the caller's slice")
	}
	if !st2.CompatibleEq(f, 3, policy.Sharing{}) {
		t.Fatal("state incompatible with its own game")
	}
	if st2.CompatibleEq(f, 4, policy.Sharing{}) {
		t.Fatal("compatible across player counts")
	}
	if st2.CompatibleEq(f, 3, policy.Exclusive{}) {
		t.Fatal("compatible across policies")
	}
	if st2.CompatibleEq(site.Values{1, 0.5}, 3, policy.Sharing{}) {
		t.Fatal("compatible across site counts")
	}
	// Drifted landscape of the same shape stays compatible: that is the
	// point of warm seeding.
	if !st2.CompatibleEq(site.Values{1.1, 0.7, 0.55}, 3, policy.Sharing{}) {
		t.Fatal("incompatible with a drifted landscape")
	}

	st3 := st2.WithOpt(strategy.Strategy{0.6, 0.3, 0.1}, 1.25, false)
	if !st3.CompatibleOpt(f, 3) || st3.Lambda() != 1.25 {
		t.Fatalf("opt part not recorded: %+v", st3)
	}
	if st3.CompatibleOpt(f, 2) {
		t.Fatal("opt compatible across player counts")
	}
	// Opt and sigma parts are policy-free: no policy argument to get wrong.
	st4 := st3.WithSigma(2, 0.7, 0.49)
	w, alpha, nu := st4.Sigma()
	if !st4.CompatibleSigma(f, 3) || w != 2 || alpha != 0.7 || nu != 0.49 {
		t.Fatalf("sigma part not recorded: w=%d alpha=%v nu=%v", w, alpha, nu)
	}
}

func TestMergeFillsMissingParts(t *testing.T) {
	f := site.Values{1, 0.5}
	c := policy.Sharing{}
	eqState := New(f, 2, c).WithEq(strategy.Strategy{0.7, 0.3}, 0.5, false)
	optState := New(f, 2, c).WithOpt(strategy.Strategy{0.6, 0.4}, 1.1, false)

	m := Merge(eqState, optState)
	if !m.HasEq() || !m.HasOpt() {
		t.Fatalf("merge lost parts: eq=%v opt=%v", m.HasEq(), m.HasOpt())
	}
	if m.Nu() != 0.5 || m.Lambda() != 1.1 {
		t.Fatalf("merge mixed values: nu=%v lambda=%v", m.Nu(), m.Lambda())
	}
	// The newer state's parts win.
	newer := New(f, 2, c).WithEq(strategy.Strategy{0.8, 0.2}, 0.6, true)
	m2 := Merge(newer, eqState)
	if m2.Nu() != 0.6 || !m2.Warmed() {
		t.Fatalf("merge overwrote the newer eq part: nu=%v", m2.Nu())
	}
	// Mismatched shapes do not merge.
	other := New(site.Values{1, 0.5, 0.25}, 2, c).WithOpt(strategy.Strategy{0.5, 0.3, 0.2}, 2, false)
	if m3 := Merge(eqState, other); m3.HasOpt() {
		t.Fatal("merged an opt part across site counts")
	}
	// The eq part is policy-bound even in a merge.
	excl := New(f, 2, policy.Exclusive{}).WithEq(strategy.Strategy{1, 0}, 1, false)
	if m4 := Merge(New(f, 2, c).WithOpt(strategy.Strategy{0.6, 0.4}, 1.1, false), excl); m4.HasEq() {
		t.Fatal("merged an eq part across policies")
	}
	if Merge(nil, eqState) != eqState || Merge(eqState, nil) != eqState {
		t.Fatal("nil merge identities broken")
	}
}

func TestNilStateAccessors(t *testing.T) {
	var s *State
	if s.HasEq() || s.HasOpt() || s.HasSigma() || s.Warmed() {
		t.Fatal("nil state claims parts")
	}
	if s.Nu() != 0 || s.Lambda() != 0 || s.Strategy() != nil || s.EqRef() != nil || s.OptRef() != nil {
		t.Fatal("nil state returned non-zero artifacts")
	}
	if s.CompatibleEq(site.Values{1}, 1, policy.Sharing{}) || s.CompatibleOpt(site.Values{1}, 1) || s.CompatibleSigma(site.Values{1}, 1) {
		t.Fatal("nil state claims compatibility")
	}
}

func TestLevelsMatchesPolicyAt(t *testing.T) {
	for _, c := range []policy.Congestion{
		policy.Exclusive{}, policy.Sharing{}, policy.Constant{},
		policy.TwoPoint{C2: 0.4}, policy.PowerLaw{Beta: 1.3},
		policy.Cooperative{Gamma: 0.8}, policy.Aggressive{Penalty: 0.2},
	} {
		levels := Levels(c, 9)
		for l := 1; l <= 9; l++ {
			if levels[l-1] != c.At(l) {
				t.Fatalf("%s: Levels[%d] = %v != At(%d) = %v", c.Name(), l-1, levels[l-1], l, c.At(l))
			}
		}
	}
}

func TestGeeLevelsMatchesDirectExpectation(t *testing.T) {
	c := policy.Sharing{}
	k := 7
	levels := Levels(c, k)
	for _, q := range []float64{0, 0.01, 0.3, 0.5, 0.99, 1} {
		// Reference: the direct expectation over C(1 + Binomial(k-1, q)).
		var acc numeric.Accumulator
		for l := 1; l <= k; l++ {
			w := numeric.BinomialPMF(k-1, l-1, q)
			if w == 0 {
				continue
			}
			acc.Add(c.At(l) * w)
		}
		if got, want := GeeLevels(levels, q), acc.Sum(); got != want {
			t.Fatalf("GeeLevels(%v) = %v, direct = %v", q, got, want)
		}
	}
}

func TestBisectExcessReplicatesInlineLoop(t *testing.T) {
	// The historical inline loop of the cold IFD nu search, verbatim.
	inline := func(eval func(float64) float64, lo, hi, relTol float64) float64 {
		nlo, nhi := lo, hi
		for iter := 0; iter < 200; iter++ {
			mid := nlo + (nhi-nlo)/2
			if eval(mid) > 0 {
				nlo = mid
			} else {
				nhi = mid
			}
			if nhi-nlo < relTol*(1+math.Abs(nhi)) {
				break
			}
		}
		return nlo + (nhi-nlo)/2
	}
	eval := func(x float64) float64 { return 2.5 - x*x } // root at sqrt(2.5)
	want := inline(eval, 0, 10, 1e-14)
	got, err := BisectExcess(func(x float64) (float64, error) { return eval(x), nil }, 0, 10, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("BisectExcess = %v, inline loop = %v (must be bit-identical)", got, want)
	}
}

func TestSeedBracketSoundness(t *testing.T) {
	// h strictly decreasing with root at 0.37.
	h := func(q float64) float64 { return 0.37 - q }
	const hw = 0.01
	for _, q0 := range []float64{0, 0.37, 0.369, 0.2, 0.9, 1} {
		lo, hi := SeedBracket(h, q0, hw)
		if !(lo <= 0.37 && 0.37 <= hi) {
			t.Fatalf("seed %v: bracket [%v, %v] lost the root", q0, lo, hi)
		}
		if h(lo) < 0 || h(hi) > 0 {
			t.Fatalf("seed %v: bracket [%v, %v] has wrong signs", q0, lo, hi)
		}
	}
	// An accurate seed must actually narrow the interval.
	lo, hi := SeedBracket(h, 0.37, hw)
	if hi-lo > 2*hw+1e-12 {
		t.Fatalf("accurate seed did not narrow: [%v, %v]", lo, hi)
	}
}

func TestDrift(t *testing.T) {
	st := New(site.Values{1, 0.5}, 2, policy.Sharing{})
	if d := st.Drift(site.Values{1, 0.5}); d != 0 {
		t.Fatalf("zero drift = %v", d)
	}
	if d := st.Drift(site.Values{1.1, 0.5}); math.Abs(d-0.1) > 1e-12 {
		t.Fatalf("drift = %v, want 0.1", d)
	}
}
