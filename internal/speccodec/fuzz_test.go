package speccodec_test

import (
	"errors"
	"testing"

	"dispersal"
	"dispersal/internal/speccodec"
)

// FuzzDecode drives Decode with arbitrary bytes and enforces its contract:
// it never panics, every failure wraps exactly one of the three typed
// errors, and every accepted spec is a valid, canonically re-encodable game
// description. Run the seeds with go test; explore with
//
//	go test -fuzz=FuzzDecode ./internal/speccodec
func FuzzDecode(f *testing.F) {
	seeds := []string{
		``,
		`{`,
		`null`,
		`[]`,
		`{"values":[1,0.5],"k":2,"policy":{"name":"exclusive"}}`,
		`{"values":[1,0.5],"k":2,"policy":{"name":"sharing"},"seed":9,"tag":"x"}`,
		`{"values":[1],"k":1,"policy":{"name":"twopoint","c2":0.25}}`,
		`{"values":[1],"k":4,"policy":{"name":"powerlaw","beta":2}}`,
		`{"values":[1],"k":4,"policy":{"name":"cooperative","gamma":0.9}}`,
		`{"values":[1],"k":4,"policy":{"name":"aggressive","penalty":0.5}}`,
		`{"values":[3,2,1],"k":2,"policy":{"name":"table","head":[1,0.5],"tail":0}}`,
		`{"values":[NaN],"k":2,"policy":{"name":"exclusive"}}`,
		`{"values":[1e999],"k":2,"policy":{"name":"exclusive"}}`,
		`{"values":[-1],"k":2,"policy":{"name":"exclusive"}}`,
		`{"values":[0.5,1],"k":2,"policy":{"name":"exclusive"}}`,
		`{"values":[1],"k":0,"policy":{"name":"exclusive"}}`,
		`{"values":[1],"k":-9,"policy":{"name":"exclusive"}}`,
		`{"values":[1],"k":2,"policy":{"name":"twopoint"}}`,
		`{"values":[1],"k":2,"policy":{"name":"twopoint","c2":7}}`,
		`{"values":[1],"k":2,"policy":{"name":"nope"}}`,
		`{"values":[1],"k":2,"policy":{"name":"exclusive"},"extra":true}`,
		`{"values":[1],"k":2,"policy":{"name":"exclusive"}}trailing`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := speccodec.Decode(data) // must not panic on any input
		if err != nil {
			if !errors.Is(err, speccodec.ErrSyntax) &&
				!errors.Is(err, speccodec.ErrSpec) &&
				!errors.Is(err, speccodec.ErrPolicy) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Accepted specs must build a real game...
		if _, err := dispersal.FromSpec(spec); err != nil {
			t.Fatalf("decoded spec rejected by FromSpec: %v\ninput: %q", err, data)
		}
		// ...and canonicalize stably: encode, decode, encode again.
		b, err := speccodec.Encode(spec)
		if err != nil {
			t.Fatalf("accepted spec does not encode: %v\ninput: %q", err, data)
		}
		again, err := speccodec.Decode(b)
		if err != nil {
			t.Fatalf("canonical form does not decode: %v\nencoded: %q", err, b)
		}
		b2, err := speccodec.Encode(again)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if string(b) != string(b2) {
			t.Fatalf("canonical form unstable:\n  %s\n  %s", b, b2)
		}
	})
}
